#!/bin/sh
# Tier-1 verify gate: build, vet, satelint (the project's determinism /
# concurrency invariant linter, see DESIGN.md "Static analysis"), tests.
# Set RACE=1 to append the race-detector pass (scripts/race.sh).
set -eu
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...
echo "== go vet =="
go vet ./...
echo "== satelint =="
# The committed baseline is empty (the tree lints clean); it exists so an
# incremental adoption of a future rule has somewhere to park findings,
# and so CI runs the exact invocation developers run locally.
go run ./cmd/satelint -baseline .satelint-baseline.json ./...
echo "== go test =="
go test ./...
echo "== obs/chaos race =="
# The observability subsystem is concurrent by construction (atomic metric
# recording under HTTP scrapes); always gate it and the controller that
# mounts it under the race detector. The controller run includes the chaos
# suite (controller_chaos_test.go, DESIGN.md §10): injected solver-failure
# streaks under link-failure injection, racing /recompute requests, and
# cancel-mid-solve shutdown — the paths where a data race would hide.
go test -race ./internal/obs/... ./internal/solve/... ./internal/controller/... ./internal/sim/...
echo "== bench smoke =="
./scripts/bench.sh smoke
if [ "${RACE:-0}" = "1" ]; then
	echo "== race =="
	./scripts/race.sh
fi
echo "check.sh: all gates passed"
