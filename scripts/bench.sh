#!/bin/sh
# Core benchmark runner with three modes:
#
#   bench.sh smoke        - every core benchmark once (-benchtime=1x): catches
#                           benchmarks that crash or regress to non-compiling.
#                           Wired into scripts/check.sh.
#   bench.sh full         - real measurement (-benchtime=3x -count=2) of the
#                           core set; appends a perf-trajectory snapshot to
#                           BENCH_<YYYY-MM-DD>.json and prints per-benchmark
#                           deltas against the most recent previous snapshot.
#   bench.sh full --gate  - same, but exits nonzero when any benchmark
#                           regresses more than 10% in ns/op or allocs/op
#                           against the previous snapshot.
#
# The core set covers the hot paths the perf PRs target: SaTE inference at
# two scales in both dtypes, warm vs cold cycle replay, the zero-allocation
# tape-reuse step, the matmul kernel, and the k-shortest path search.
set -eu
cd "$(dirname "$0")/.."

MODE="${1:-smoke}"
GATE="${2:-}"
CORE_ROOT='BenchmarkSaTEInference66$|BenchmarkSaTEInference396$|BenchmarkSaTEInference66F32|BenchmarkSaTEInference396F32|BenchmarkSaTECycleChurn|BenchmarkGridKShortestStarlink|BenchmarkPktSim$'
CORE_AUTODIFF='BenchmarkTapeReuseForwardBackward|BenchmarkTapeFreshForwardBackward|BenchmarkParMatMulSerial|BenchmarkParSegmentSoftmaxSerial'
# The sharded solver benchmark runs as its own -bench invocation because its
# sub-benchmark selector contains a "/" (Go applies each regex segment to one
# level of the benchmark name). Smoke only runs the ~2k-satellite size: the
# ~8k fixture takes minutes to construct and belongs in full runs.
CORE_SHARD='BenchmarkShardedSolve'
CORE_SHARD_SMOKE='BenchmarkShardedSolve/sats=2112'
# The serving benchmarks measure throughput, so they need a time-based
# -benchtime (N=3 iterations would report nothing useful about QPS); they
# get their own invocation rather than joining the 3x core set.
CORE_SERVE='BenchmarkServeSnapshot$|BenchmarkDeltaCatchup$'

# diff_snapshots NEW GATE OLD...: per-benchmark ns/op and allocs/op deltas.
# The baseline is merged from ALL previous snapshots, passed oldest-first:
# for each benchmark the LATEST file containing it wins, so snapshot files
# that cover only a subset of the suite (e.g. BENCH_*-serving.json) neither
# shadow the full suite as "the previous snapshot" nor lose their own
# benchmarks' history. New snapshots store one entry per benchmark (best of
# count=2); older ones stored one line per run, so parsing still takes the
# minimum ns/op per name within a file — the standard way to suppress
# scheduler noise on a shared box. Benchmarks absent from every baseline
# file are reported and skipped, never gated. With GATE="gate", exits 1
# when any benchmark present in both regresses >10% in either metric.
diff_snapshots() {
	new="$1"
	gate="$2"
	shift 2
	awk -v new="$new" -v gate="$gate" '
	# Baseline files arrive oldest-first on the command line: first line of a
	# name in a NEW file overrides whatever an older file recorded; further
	# lines in the SAME file take the minimum ns/op.
	/"name":/ {
		name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
		v = $0; sub(/.*"ns_op": /, "", v); sub(/[,}].*/, "", v)
		a = $0; sub(/.*"allocs_op": /, "", a); sub(/[,}].*/, "", a)
		if (src[name] != FILENAME) {
			src[name] = FILENAME
			ons[name] = v + 0
			oal[name] = a
		} else if (v + 0 < ons[name] + 0) {
			ons[name] = v + 0
			oal[name] = a
		}
	}
	END {
		while ((getline line < new) > 0) {
			if (line !~ /"name":/) continue
			name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
			v = line; sub(/.*"ns_op": /, "", v); sub(/[,}].*/, "", v)
			if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
			if (!(name in nns) || v + 0 < nns[name] + 0) {
				nns[name] = v + 0
				v = line; sub(/.*"allocs_op": /, "", v); sub(/[,}].*/, "", v)
				nal[name] = v
			}
		}
		close(new)
		fail = 0
		printf "%-40s %14s %14s %8s %-16s %s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs", "baseline"
		for (i = 1; i <= n; i++) {
			name = order[i]
			if (!(name in ons)) {
				printf "%-40s %14s %14.0f %8s %-16s %s\n", name, "-", nns[name], "new", nal[name], "(absent from baseline: skipped)"
				continue
			}
			d = 100 * (nns[name] - ons[name]) / ons[name]
			amark = nal[name]
			if (oal[name] != "null" && nal[name] != "null" && oal[name] + 0 != nal[name] + 0)
				amark = oal[name] " -> " nal[name]
			printf "%-40s %14.0f %14.0f %+7.1f%% %-16s %s\n", name, ons[name], nns[name], d, amark, src[name]
			if (gate != "") {
				if (d > 10) { print "GATE: " name " ns/op regressed " sprintf("%+.1f%%", d) " vs " src[name]; fail = 1 }
				if (oal[name] != "null" && nal[name] != "null" && oal[name] + 0 > 0 && \
				    nal[name] + 0 > oal[name] * 1.1) {
					print "GATE: " name " allocs/op regressed " oal[name] " -> " nal[name] " vs " src[name]
					fail = 1
				}
			}
		}
		exit fail
	}' "$@"
}

case "$MODE" in
smoke)
	echo "== bench smoke (1x) =="
	go test -run '^$' -bench "$CORE_ROOT" -benchtime=1x .
	go test -run '^$' -bench "$CORE_SHARD_SMOKE" -benchtime=1x .
	go test -run '^$' -bench "$CORE_SERVE" -benchtime=1x .
	go test -run '^$' -bench "$CORE_AUTODIFF" -benchtime=1x ./internal/autodiff/
	echo "== sate-load smoke (2s burst) =="
	# A short in-process load burst through the real serving surface: any
	# error response (5xx or transport failure) fails the smoke run.
	go run ./cmd/sate-load -duration 2 -conns 4 -publish-interval 0.3 \
		-out "${LOAD_REPORT:-/tmp/sate-load-report.json}"
	;;
full)
	DATE="$(date +%Y-%m-%d)"
	OUT="BENCH_${DATE}.json"
	TMP="$(mktemp)"
	trap 'rm -f "$TMP"' EXIT
	# All previous snapshots, oldest-first, captured before OUT is
	# (re)written. diff_snapshots merges them per-benchmark: the latest
	# file containing a given benchmark is its baseline, so same-day
	# subset snapshots (BENCH_<date>-<topic>.json) cannot steal the
	# "previous snapshot" slot from the full suite.
	PREV="$(ls -1 BENCH_*.json 2>/dev/null | grep -v "^$OUT\$" | sort || true)"
	echo "== bench full (3x, count=2) -> $OUT =="
	go test -run '^$' -bench "$CORE_ROOT" -benchtime=3x -count=2 . | tee -a "$TMP"
	go test -run '^$' -bench "$CORE_SHARD" -benchtime=3x -count=2 . | tee -a "$TMP"
	go test -run '^$' -bench "$CORE_SERVE" -benchtime=2s -count=2 . | tee -a "$TMP"
	go test -run '^$' -bench "$CORE_AUTODIFF" -benchtime=3x -count=2 ./internal/autodiff/ | tee -a "$TMP"
	# Convert "BenchmarkX  N  T ns/op  B B/op  A allocs/op" lines to JSON,
	# keeping one entry per benchmark: the best (minimum ns/op) of the
	# count=2 runs, in first-seen order. Duplicate entries per name used to
	# leak into the snapshot and skew the delta table.
	{
		echo '{'
		echo "  \"date\": \"${DATE}\","
		echo "  \"go\": \"$(go env GOVERSION)\","
		echo '  "results": ['
		awk '/^Benchmark/ {
			name=$1; ns=""; bytes=""; allocs="";
			for (i = 2; i < NF; i++) {
				if ($(i+1) == "ns/op") ns=$i;
				if ($(i+1) == "B/op") bytes=$i;
				if ($(i+1) == "allocs/op") allocs=$i;
			}
			if (!(name in best)) { order[++n] = name }
			if (!(name in best) || ns + 0 < best[name] + 0) {
				best[name] = ns; bb[name] = bytes; aa[name] = allocs;
			}
		}
		END {
			for (j = 1; j <= n; j++) {
				name = order[j];
				printf "%s    {\"name\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", sep, name, best[name], (bb[name]==""?"null":bb[name]), (aa[name]==""?"null":aa[name]);
				sep=",\n";
			}
			print ""
		}' "$TMP"
		echo '  ]'
		echo '}'
	} >"$OUT"
	echo "wrote $OUT"
	if [ -n "$PREV" ]; then
		echo "== delta vs merged baseline ($(echo "$PREV" | tr '\n' ' ')) =="
		if [ "$GATE" = "--gate" ]; then
			# shellcheck disable=SC2086 # snapshot names never contain spaces
			diff_snapshots "$OUT" gate $PREV || {
				echo "bench gate: regression above 10% threshold" >&2
				exit 1
			}
		else
			# shellcheck disable=SC2086
			diff_snapshots "$OUT" "" $PREV
		fi
	elif [ "$GATE" = "--gate" ]; then
		echo "bench gate: no previous BENCH_*.json to compare against" >&2
	fi
	;;
*)
	echo "usage: $0 [smoke|full [--gate]]" >&2
	exit 2
	;;
esac
