#!/bin/sh
# Core benchmark runner with two modes:
#
#   bench.sh smoke   - every core benchmark once (-benchtime=1x): catches
#                      benchmarks that crash or regress to non-compiling.
#                      Wired into scripts/check.sh.
#   bench.sh full    - real measurement (-benchtime=3x -count=2) of the core
#                      set; appends a perf-trajectory snapshot to
#                      BENCH_<YYYY-MM-DD>.json so successive PRs can compare
#                      ns/op, B/op and allocs/op over time.
#
# The core set covers the hot paths the perf PRs target: SaTE inference at
# two scales, the zero-allocation tape-reuse step, the matmul kernel, and
# the k-shortest path search.
set -eu
cd "$(dirname "$0")/.."

MODE="${1:-smoke}"
CORE_ROOT='BenchmarkSaTEInference66|BenchmarkSaTEInference396|BenchmarkGridKShortestStarlink'
CORE_AUTODIFF='BenchmarkTapeReuseForwardBackward|BenchmarkTapeFreshForwardBackward|BenchmarkParMatMulSerial|BenchmarkParSegmentSoftmaxSerial'

case "$MODE" in
smoke)
	echo "== bench smoke (1x) =="
	go test -run '^$' -bench "$CORE_ROOT" -benchtime=1x .
	go test -run '^$' -bench "$CORE_AUTODIFF" -benchtime=1x ./internal/autodiff/
	;;
full)
	DATE="$(date +%Y-%m-%d)"
	OUT="BENCH_${DATE}.json"
	TMP="$(mktemp)"
	trap 'rm -f "$TMP"' EXIT
	echo "== bench full (3x, count=2) -> $OUT =="
	go test -run '^$' -bench "$CORE_ROOT" -benchtime=3x -count=2 . | tee -a "$TMP"
	go test -run '^$' -bench "$CORE_AUTODIFF" -benchtime=3x -count=2 ./internal/autodiff/ | tee -a "$TMP"
	# Convert "BenchmarkX  N  T ns/op  B B/op  A allocs/op" lines to JSON.
	{
		echo '{'
		echo "  \"date\": \"${DATE}\","
		echo "  \"go\": \"$(go env GOVERSION)\","
		echo '  "results": ['
		awk '/^Benchmark/ {
			name=$1; ns=""; bytes=""; allocs="";
			for (i = 2; i < NF; i++) {
				if ($(i+1) == "ns/op") ns=$i;
				if ($(i+1) == "B/op") bytes=$i;
				if ($(i+1) == "allocs/op") allocs=$i;
			}
			printf "%s    {\"name\": \"%s\", \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", sep, name, ns, (bytes==""?"null":bytes), (allocs==""?"null":allocs);
			sep=",\n"
		}
		END { print "" }' "$TMP"
		echo '  ]'
		echo '}'
	} >"$OUT"
	echo "wrote $OUT"
	;;
*)
	echo "usage: $0 [smoke|full]" >&2
	exit 2
	;;
esac
