#!/bin/sh
# Race-detector pass over every package that spawns goroutines through
# internal/par (kernels, path fan-out, snapshot series, experiment grids)
# plus the concurrent serving layer (atomic snapshot publication, the rule
# changelog, and recompute coalescing under parallel HTTP clients).
# Part of the tier-1 verify path: run before merging changes to any of these.
set -eu
cd "$(dirname "$0")/.."
go test -race \
	./internal/par/... \
	./internal/autodiff/... \
	./internal/paths/... \
	./internal/shard/... \
	./internal/topology/... \
	./internal/te/... \
	./internal/controller/... \
	./internal/ruledist/... \
	./internal/pktsim/...
