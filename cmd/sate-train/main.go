// Command sate-train trains a SaTE model on a constellation scenario and
// reports training progress plus held-out evaluation against the reference
// LP solver and the heuristic baselines.
//
// Usage:
//
//	sate-train -cons iridium -samples 6 -epochs 20 -intensity 80
//	sate-train -cons iridium -metrics -  # dump Prometheus metrics to stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/core"
	"sate/internal/obs"
	"sate/internal/par"
	"sate/internal/sim"
	"sate/internal/topology"
)

func main() {
	var (
		consName  = flag.String("cons", "iridium", "constellation: starlink | iridium | midsize1 | midsize2")
		samples   = flag.Int("samples", 5, "training samples (labelled topology/traffic instants)")
		epochs    = flag.Int("epochs", 15, "training epochs")
		intensity = flag.Float64("intensity", 60, "traffic intensity, flows/s")
		embed     = flag.Int("embed", 32, "embedding dimension (paper: 768)")
		minElev   = flag.Float64("min-elev", 10, "user min elevation, degrees")
		seed      = flag.Int64("seed", 1, "random seed")
		savePath  = flag.String("save", "", "save the trained model to this file")
		loadPath  = flag.String("load", "", "load a model instead of training from scratch")
		metrics   = flag.String("metrics", "", "write Prometheus-text metrics here after the run (\"-\" = stderr)")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		reg.CollectGoRuntime()
		par.Observe(reg)
	}

	cons, ok := constellation.ByName(*consName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown constellation %q\n", *consName)
		os.Exit(2)
	}
	scen := sim.NewScenario(cons, sim.ScenarioConfig{
		Mode:       topology.CrossShellLasers,
		Intensity:  *intensity,
		Seed:       *seed,
		MinElevDeg: *minElev,
	})
	solver := baselines.LPAuto{}

	fmt.Printf("generating %d labelled samples on %s (%d sats)...\n", *samples, cons.Name, cons.Size())
	var ds []*core.Sample
	for i := 0; i < *samples; i++ {
		p, _, _, err := scen.ProblemAt(15 + float64(i)*37)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(p.Flows) == 0 {
			continue
		}
		ref, err := solver.Solve(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ds = append(ds, core.NewSample(p, ref))
		fmt.Printf("  sample %d: %d flows, %d path vars, optimal %.1f Mbps\n",
			i, len(p.Flows), p.NumPaths(), ref.Throughput())
	}

	var model *core.Model
	if *loadPath != "" {
		var err error
		model, err = core.LoadFile(*loadPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("loaded model from %s: %d parameters\n", *loadPath, model.NumParams())
	} else {
		cfg := core.DefaultConfig()
		cfg.EmbedDim = *embed
		cfg.Seed = *seed
		model = core.NewModel(cfg)
		fmt.Printf("model: %d parameters (embed %d)\n", model.NumParams(), *embed)
	}

	tc := core.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.Registry = reg
	tc.Log = func(ep int, loss float64) {
		if ep%5 == 0 || ep == *epochs-1 {
			fmt.Printf("  epoch %3d  loss %.5f\n", ep, loss)
		}
	}
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	if _, err := core.Train(model, ds, tc); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	elapsed := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	// Allocation delta over the whole run: with the reused-tape arena the
	// steady-state per-epoch cost should be near zero after warm-up.
	allocMB := float64(memAfter.TotalAlloc-memBefore.TotalAlloc) / (1 << 20)
	fmt.Printf("trained in %s (%.1f MiB allocated, %d GC cycles, %.2f MiB/epoch)\n",
		elapsed.Round(time.Millisecond), allocMB,
		memAfter.NumGC-memBefore.NumGC, allocMB/float64(*epochs))
	if *savePath != "" {
		if err := model.SaveFile(*savePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved model to %s\n", *savePath)
	}

	// Held-out evaluation.
	fmt.Println("held-out evaluation (unseen topologies + traffic):")
	for i := 0; i < 3; i++ {
		p, _, _, err := scen.ProblemAt(500 + float64(i)*23)
		if err != nil || len(p.Flows) == 0 {
			continue
		}
		ref, _ := solver.Solve(p)
		t0 := time.Now()
		a, err := model.Solve(p)
		lat := time.Since(t0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ecmp, _ := (baselines.ECMPWF{}).Solve(p)
		fmt.Printf("  t=%3.0f: sate %.1f%% in %s | optimal %.1f%% | ecmp-wf %.1f%%\n",
			500+float64(i)*23,
			100*p.SatisfiedDemand(a), lat.Round(time.Microsecond),
			100*p.SatisfiedDemand(ref), 100*p.SatisfiedDemand(ecmp))
	}

	if reg != nil {
		out := os.Stderr
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer func() {
				if err := f.Close(); err != nil {
					fmt.Fprintln(os.Stderr, err)
				}
			}()
			out = f
		}
		if err := reg.WritePrometheus(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
