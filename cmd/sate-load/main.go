// Command sate-load drives a read-heavy request mix against the controller's
// serving surface and reports latency percentiles per endpoint. It is the
// load half of the high-QPS serving redesign (DESIGN.md §14): snapshot GETs
// must stay fast and allocation-free while recomputes publish underneath.
//
// With no -url it spins up an in-process controller on a toy constellation,
// listens on an ephemeral port, and runs a background publisher so the mix
// exercises ETag churn and delta catch-up, not a frozen snapshot:
//
//	sate-load -duration 5 -conns 16 -out report.json
//	sate-load -url http://127.0.0.1:8080 -mix status=60,deltas=25,rules=10,recompute=5
//
// The exit status is nonzero when any request failed in transport or came
// back 5xx. 304 (conditional hit) and 429 (admission control shedding
// recomputes) are counted separately and are not failures.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/controller"
	"sate/internal/sim"
	"sate/internal/topology"
)

// endpointStats accumulates per-endpoint outcomes for one worker; workers
// are merged after the run so the hot loop takes no locks.
type endpointStats struct {
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	NotMod    int     `json:"not_modified"`
	Rejected  int     `json:"rejected"`
	Coalesced int     `json:"coalesced"`
	Bytes     int64   `json:"bytes"`
	P50Ms     float64 `json:"p50_ms"`
	P90Ms     float64 `json:"p90_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`

	lats []int64 // nanoseconds, merged then sorted once at report time
}

type report struct {
	URL         string                    `json:"url"`
	DurationSec float64                   `json:"duration_sec"`
	Conns       int                       `json:"conns"`
	Mix         string                    `json:"mix"`
	Requests    int                       `json:"requests"`
	Errors      int                       `json:"errors"`
	QPS         float64                   `json:"qps"`
	Endpoints   map[string]*endpointStats `json:"endpoints"`
}

// mixEntry is one weighted endpoint in the request mix.
type mixEntry struct {
	name   string
	weight int
}

func parseMix(s string) ([]mixEntry, error) {
	known := map[string]bool{"status": true, "allocation": true, "rules": true, "deltas": true, "recompute": true}
	var mix []mixEntry
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want name=weight", part)
		}
		if !known[name] {
			return nil, fmt.Errorf("mix entry %q: unknown endpoint (status|allocation|rules|deltas|recompute)", part)
		}
		w, err := strconv.Atoi(wstr)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: bad weight", part)
		}
		if w > 0 {
			mix = append(mix, mixEntry{name, w})
		}
	}
	if len(mix) == 0 {
		return nil, errors.New("empty mix")
	}
	return mix, nil
}

// pick returns the mix entry for a roll in [0, total).
func pick(mix []mixEntry, roll int) string {
	for _, m := range mix {
		if roll < m.weight {
			return m.name
		}
		roll -= m.weight
	}
	return mix[len(mix)-1].name
}

// worker runs the request loop until the deadline. Each worker owns its RNG
// (deterministic per -seed) and its stats map; no shared mutable state.
func worker(client *http.Client, base string, mix []mixEntry, total int, seed int64, deadline time.Time, stats map[string]*endpointStats) {
	rng := rand.New(rand.NewSource(seed))
	etag := ""       // conditional GET state for /v1/status
	var since uint64 // delta catch-up cursor
	timeSec := 100.0
	for time.Now().Before(deadline) {
		name := pick(mix, rng.Intn(total))
		st := stats[name]
		if st == nil {
			st = &endpointStats{}
			stats[name] = st
		}
		var (
			req *http.Request
			err error
		)
		switch name {
		case "status":
			req, err = http.NewRequest(http.MethodGet, base+"/v1/status", nil)
			if err == nil && etag != "" && rng.Intn(2) == 0 {
				req.Header.Set("If-None-Match", etag)
			}
		case "allocation":
			req, err = http.NewRequest(http.MethodGet, base+"/v1/allocation", nil)
		case "rules":
			req, err = http.NewRequest(http.MethodGet, base+"/v1/rules", nil)
		case "deltas":
			req, err = http.NewRequest(http.MethodGet, base+"/v1/deltas?since="+strconv.FormatUint(since, 10), nil)
		case "recompute":
			timeSec += 0.25
			body := fmt.Sprintf(`{"time_sec": %g}`, timeSec)
			req, err = http.NewRequest(http.MethodPost, base+"/recompute", strings.NewReader(body))
		}
		if err != nil {
			st.Requests++
			st.Errors++
			continue
		}
		start := time.Now()
		resp, err := client.Do(req)
		st.Requests++
		if err != nil {
			st.Errors++
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		cerr := resp.Body.Close()
		if rerr != nil || cerr != nil {
			st.Errors++
			continue
		}
		st.lats = append(st.lats, time.Since(start).Nanoseconds())
		st.Bytes += int64(len(body))
		switch {
		case resp.StatusCode == http.StatusNotModified:
			st.NotMod++
		case resp.StatusCode == http.StatusTooManyRequests && name == "recompute":
			st.Rejected++
		case resp.StatusCode >= 400:
			st.Errors++
			continue
		}
		if name == "status" {
			if e := resp.Header.Get("ETag"); e != "" {
				etag = e
			}
		}
		if name == "recompute" && resp.Header.Get("X-Sate-Coalesced") == "1" {
			st.Coalesced++
		}
		if name == "deltas" && resp.StatusCode == http.StatusOK {
			// Advance the catch-up cursor like a real rule consumer: next
			// request asks only for what published after this response.
			var dr struct {
				Latest uint64 `json:"latest"`
			}
			if err := json.Unmarshal(body, &dr); err != nil {
				// A 200 whose body does not decode is a serving bug, not
				// load shed — it must fail the run, not stall the cursor.
				st.Errors++
				continue
			}
			if dr.Latest > since {
				since = dr.Latest
			}
		}
	}
}

func main() {
	var (
		url        = flag.String("url", "", "target base URL; empty runs an in-process controller on an ephemeral port")
		durSec     = flag.Float64("duration", 5, "run duration, seconds")
		conns      = flag.Int("conns", 8, "concurrent client connections")
		mixStr     = flag.String("mix", "status=60,allocation=10,rules=5,deltas=20,recompute=5", "weighted endpoint mix")
		pubSec     = flag.Float64("publish-interval", 0.5, "in-process mode: background recompute interval, seconds (0 disables)")
		out        = flag.String("out", "", "write a JSON report here")
		seed       = flag.Int64("seed", 1, "request-mix RNG seed")
		consPlanes = flag.Int("planes", 6, "in-process mode: toy constellation planes")
		consSats   = flag.Int("sats", 8, "in-process mode: satellites per plane")
	)
	flag.Parse()

	mix, err := parseMix(*mixStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	total := 0
	for _, m := range mix {
		total += m.weight
	}

	base := *url
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if base == "" {
		ln, err := inProcess(ctx, *consPlanes, *consSats, *pubSec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			if err := ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
		base = "http://" + ln.Addr().String()
		fmt.Printf("sate-load: in-process controller (toy %dx%d) on %s\n", *consPlanes, *consSats, base)
	}
	base = strings.TrimRight(base, "/")

	transport := &http.Transport{MaxIdleConns: *conns * 2, MaxIdleConnsPerHost: *conns * 2}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	deadline := time.Now().Add(time.Duration(*durSec * float64(time.Second)))
	perWorker := make([]map[string]*endpointStats, *conns)
	var wg sync.WaitGroup
	startWall := time.Now()
	for i := 0; i < *conns; i++ {
		perWorker[i] = map[string]*endpointStats{}
		wg.Add(1)
		//lint:ignore no-naked-goroutine load-generator fan-out: each worker is an independent HTTP client loop, not solver parallelism
		go func(i int) {
			defer wg.Done()
			worker(client, base, mix, total, *seed+int64(i), deadline, perWorker[i])
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(startWall).Seconds()
	cancel()

	rep := merge(perWorker)
	rep.URL = base
	rep.DurationSec = elapsed
	rep.Conns = *conns
	rep.Mix = *mixStr
	rep.QPS = float64(rep.Requests) / elapsed

	printReport(rep)
	if *out != "" {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "sate-load: %d error responses\n", rep.Errors)
		os.Exit(1)
	}
}

// inProcess builds a toy-constellation controller, primes it with one cycle,
// serves it on an ephemeral port, and (optionally) keeps publishing fresh
// snapshots in the background so reads race real version churn.
func inProcess(ctx context.Context, planes, sats int, pubSec float64) (net.Listener, error) {
	scen := sim.NewScenario(constellation.Toy(planes, sats), sim.ScenarioConfig{
		Mode:         topology.CrossShellLasers,
		Intensity:    60,
		Seed:         7,
		Users:        2000,
		UserClusters: 60,
		Gateways:     8,
		Relays:       4,
		MinElevDeg:   5,
	})
	srv := controller.New(scen, baselines.ECMPWF{})
	if err := srv.RecomputeContext(ctx, 100); err != nil {
		return nil, fmt.Errorf("priming cycle: %w", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	//lint:ignore no-naked-goroutine server lifecycle, not compute parallelism: Serve blocks until the listener closes
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, err)
		}
	}()
	if pubSec > 0 {
		//lint:ignore no-naked-goroutine background publisher lifecycle: ticks recomputes for the run duration
		go func() {
			tick := time.NewTicker(time.Duration(pubSec * float64(time.Second)))
			defer tick.Stop()
			t := 105.0
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					t += 5
					if err := srv.RecomputeContext(ctx, t); err != nil && !errors.Is(err, context.Canceled) {
						fmt.Fprintln(os.Stderr, "publisher:", err)
					}
				}
			}
		}()
	}
	return ln, nil
}

// merge folds the per-worker stats into one report and computes percentiles.
func merge(perWorker []map[string]*endpointStats) *report {
	rep := &report{Endpoints: map[string]*endpointStats{}}
	for _, m := range perWorker {
		for name, st := range m {
			tot := rep.Endpoints[name]
			if tot == nil {
				tot = &endpointStats{}
				rep.Endpoints[name] = tot
			}
			tot.Requests += st.Requests
			tot.Errors += st.Errors
			tot.NotMod += st.NotMod
			tot.Rejected += st.Rejected
			tot.Coalesced += st.Coalesced
			tot.Bytes += st.Bytes
			tot.lats = append(tot.lats, st.lats...)
		}
	}
	for _, st := range rep.Endpoints {
		rep.Requests += st.Requests
		rep.Errors += st.Errors
		if len(st.lats) == 0 {
			continue
		}
		sort.Slice(st.lats, func(i, j int) bool { return st.lats[i] < st.lats[j] })
		st.P50Ms = ms(st.lats[len(st.lats)*50/100])
		st.P90Ms = ms(st.lats[len(st.lats)*90/100])
		st.P99Ms = ms(st.lats[len(st.lats)*99/100])
		st.MaxMs = ms(st.lats[len(st.lats)-1])
	}
	return rep
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func printReport(rep *report) {
	fmt.Printf("%d requests in %.2fs (%.0f req/s), %d errors\n", rep.Requests, rep.DurationSec, rep.QPS, rep.Errors)
	names := make([]string, 0, len(rep.Endpoints))
	for name := range rep.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-11s %9s %7s %7s %9s %9s %9s %9s\n", "endpoint", "reqs", "errs", "304s", "p50 ms", "p90 ms", "p99 ms", "max ms")
	for _, name := range names {
		st := rep.Endpoints[name]
		extra := ""
		if st.Rejected > 0 || st.Coalesced > 0 {
			extra = fmt.Sprintf("  (429: %d, coalesced: %d)", st.Rejected, st.Coalesced)
		}
		fmt.Printf("%-11s %9d %7d %7d %9.3f %9.3f %9.3f %9.3f%s\n",
			name, st.Requests, st.Errors, st.NotMod, st.P50Ms, st.P90Ms, st.P99Ms, st.MaxMs, extra)
	}
}
