package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// runWorker points one worker at a test server for a short burst and returns
// the merged per-endpoint stats.
func runWorker(t *testing.T, srv *httptest.Server, mixStr string) map[string]*endpointStats {
	t.Helper()
	mix, err := parseMix(mixStr)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range mix {
		total += m.weight
	}
	stats := map[string]*endpointStats{}
	worker(srv.Client(), srv.URL, mix, total, 1, time.Now().Add(100*time.Millisecond), stats)
	return stats
}

// TestRecompute429IsShedLoadNotError pins the admission-control contract: a
// 429 with Retry-After from /recompute is the controller shedding load on
// purpose, so it must count as Rejected — never as an error that would flip
// the run's exit status.
func TestRecompute429IsShedLoadNotError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/recompute" {
			t.Errorf("unexpected path %q", r.URL.Path)
		}
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer srv.Close()

	stats := runWorker(t, srv, "recompute=1")
	st := stats["recompute"]
	if st == nil || st.Requests == 0 {
		t.Fatal("no recompute requests issued")
	}
	if st.Errors != 0 {
		t.Errorf("429 counted as %d errors; shed load must not fail the run", st.Errors)
	}
	if st.Rejected != st.Requests {
		t.Errorf("rejected = %d, want every request (%d) counted as shed", st.Rejected, st.Requests)
	}
}

// TestMalformedDeltaBodyIsError pins the opposite edge: a 200 from
// /v1/deltas whose body does not decode is a serving bug and must fail the
// run rather than silently stalling the catch-up cursor.
func TestMalformedDeltaBodyIsError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte(`{"latest": not-json`)); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()

	stats := runWorker(t, srv, "deltas=1")
	st := stats["deltas"]
	if st == nil || st.Requests == 0 {
		t.Fatal("no delta requests issued")
	}
	if st.Errors != st.Requests {
		t.Errorf("errors = %d of %d requests; malformed delta bodies must all fail", st.Errors, st.Requests)
	}
}

// TestWellFormedDeltaAdvancesCursor guards the fix against over-correction:
// valid bodies still advance the since cursor instead of erroring.
func TestWellFormedDeltaAdvancesCursor(t *testing.T) {
	var sinces []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sinces = append(sinces, r.URL.Query().Get("since"))
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write([]byte(`{"latest": 7, "full_sync": true}`)); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()

	stats := runWorker(t, srv, "deltas=1")
	st := stats["deltas"]
	if st == nil || st.Requests < 2 {
		t.Fatalf("want at least 2 delta requests, got %+v", st)
	}
	if st.Errors != 0 {
		t.Errorf("well-formed deltas produced %d errors", st.Errors)
	}
	if sinces[0] != "0" {
		t.Errorf("first request since=%s, want 0", sinces[0])
	}
	if sinces[1] != "7" {
		t.Errorf("second request since=%s, want 7 (cursor advanced by first response)", sinces[1])
	}
}
