// Command sate-traffic generates satellite traffic matrices for a
// constellation and reports their statistics: non-zero pairs, sparsity (the
// property traffic pruning exploits), total demand, and per-class mix.
//
// Usage:
//
//	sate-traffic -cons starlink -intensity 500 -duration 60
package main

import (
	"flag"
	"fmt"
	"os"

	"sate/internal/constellation"
	"sate/internal/groundnet"
	"sate/internal/orbit"
	"sate/internal/traffic"
)

func main() {
	var (
		consName  = flag.String("cons", "starlink", "constellation: starlink | iridium | midsize1 | midsize2")
		intensity = flag.Float64("intensity", 125, "traffic intensity, flows/s")
		duration  = flag.Float64("duration", 60, "simulated seconds")
		users     = flag.Int("users", 3_000_000, "total users")
		gateways  = flag.Int("gateways", 1000, "gateways")
		minElev   = flag.Float64("min-elev", 25, "user min elevation, degrees")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cons, ok := constellation.ByName(*consName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown constellation %q\n", *consName)
		os.Exit(2)
	}
	grid := groundnet.SyntheticPopulation(*seed)
	seg := groundnet.Build(grid, groundnet.Config{
		Users:        *users,
		UserClusters: 2000,
		Gateways:     *gateways,
		Relays:       222,
		Gamma:        0.05,
		Seed:         *seed,
	})
	fmt.Printf("ground segment: %d users in %d clusters, %d gateways, %d relays\n",
		seg.TotalUsers(), len(seg.UserClusters), len(seg.Gateways), len(seg.Relays))

	gen := traffic.NewGenerator(seg, traffic.DefaultConfig(*intensity, *seed))
	loc := groundnet.NewSatLocator(cons)
	pos := cons.PositionsECEF(0, nil)
	loc.Update(pos)

	for _, t := range []float64{*duration / 4, *duration / 2, *duration} {
		gen.AdvanceTo(t)
		m := traffic.BuildMatrix(gen.ActiveFlows(), loc, orbit.Deg(*minElev), cons.Size())
		classCount := map[int]int{}
		for _, f := range gen.ActiveFlows() {
			classCount[f.Class]++
		}
		fmt.Printf("t=%5.0fs: %6d active flows %v | matrix: %5d non-zero pairs (density %.5f%%), total %.0f Mbps\n",
			t, gen.ActiveCount(), classCount,
			m.NonZeroPairs(), 100*m.DensityFraction(), m.Total())
	}
}
