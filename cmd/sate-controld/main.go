// Command sate-controld runs the TE control center of Fig. 3 as an HTTP
// service: it ticks simulated time at wall-clock pace, recomputes the
// allocation every interval with the chosen solver, compiles and verifies
// per-satellite rules, and serves them over JSON.
//
// Usage:
//
//	sate-controld -cons iridium -method ecmp-wf -listen :8080 -interval 5
//	curl localhost:8080/v1/status
//	curl localhost:8080/v1/rules?node=12
//	curl localhost:8080/v1/deltas?since=0
//	curl localhost:8080/metrics
//	curl -X POST -d '{"time_sec": 300}' localhost:8080/recompute
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
//
// The versioned surface lives under /v1/ (DESIGN.md §14); the unversioned
// paths remain as aliases. GETs serve the published snapshot's cached bytes
// with its version as ETag, so pollers holding If-None-Match get 304s.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/controller"
	"sate/internal/core"
	"sate/internal/obs"
	"sate/internal/par"
	"sate/internal/shard"
	"sate/internal/sim"
	"sate/internal/solve"
	"sate/internal/topology"
)

func main() {
	var (
		consName  = flag.String("cons", "iridium", "constellation: starlink | iridium | midsize1 | midsize2")
		method    = flag.String("method", "ecmp-wf", "solver: sate (needs -model) | lp | gk | pop | ecmp-wf | maxmin-fair")
		modelPath = flag.String("model", "", "trained SaTE model file (for -method sate)")
		listen    = flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
		intensity = flag.Float64("intensity", 8, "traffic intensity, flows/s")
		interval  = flag.Float64("interval", 5, "TE workflow interval, seconds")
		start     = flag.Float64("start", 150, "initial simulated time")
		durScale  = flag.Float64("dur-scale", 0.05, "flow duration scale")
		minElev   = flag.Float64("min-elev", 10, "user min elevation, degrees")
		seed      = flag.Int64("seed", 1, "random seed")

		dtype     = flag.String("dtype", "float64", "inference precision for -method sate: float64 | float32")
		warmStart = flag.Bool("warm", false, "for -method sate: warm-start each cycle from the previous one")
		shards    = flag.Int("shards", 1, "split each solve into this many regional subproblems with boundary reconciliation (1 = monolithic)")

		deltaHistory   = flag.Int("delta-history", 0, "rule-delta changelog retention, versions (0 = default 64); clients further behind get a full sync")
		recomputeQueue = flag.Int("recompute-queue", 0, "max queued /recompute requests coalescing into the next solve (0 = default 64); beyond it requests get 429")

		cycleTimeout  = flag.Float64("cycle-timeout", 0, "per-cycle timeout, seconds (0 = 10x interval, negative disables)")
		retryBase     = flag.Float64("retry-base", 0, "initial retry backoff after a failed cycle, seconds (0 = interval/4)")
		retryMax      = flag.Float64("retry-max", 0, "retry backoff cap, seconds (0 = 4x interval)")
		chaosFailFrac = flag.Float64("chaos-fail-frac", 0, "chaos mode: fraction of links failed each cycle (0 disables)")
		chaosSeed     = flag.Int64("chaos-seed", 1, "chaos mode RNG seed")
	)
	flag.Parse()

	cons, ok := constellation.ByName(*consName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown constellation %q\n", *consName)
		os.Exit(2)
	}
	scen := sim.NewScenario(cons, sim.ScenarioConfig{
		Mode:              topology.CrossShellLasers,
		Intensity:         *intensity,
		Seed:              *seed,
		MinElevDeg:        *minElev,
		FlowDurationScale: *durScale,
	})

	var solver sim.Allocator
	switch *method {
	case "sate":
		if *modelPath == "" {
			fmt.Fprintln(os.Stderr, "-method sate requires -model (train one with sate-train -save)")
			os.Exit(2)
		}
		m, err := core.LoadFile(*modelPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		solver = m
	case "lp":
		solver = baselines.LPAuto{}
	case "gk":
		solver = baselines.GK{Epsilon: 0.05}
	case "pop":
		solver = &baselines.POP{K: 4, Seed: *seed}
	case "ecmp-wf":
		solver = baselines.ECMPWF{}
	case "maxmin-fair":
		solver = baselines.MaxMinFair{}
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}
	if *shards > 1 {
		solver = shard.New(solver, *shards)
	}

	reg := obs.NewRegistry()
	reg.CollectGoRuntime()
	par.Observe(reg)

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	ctlOpts := []controller.Option{controller.WithRegistry(reg)}
	if *deltaHistory > 0 {
		ctlOpts = append(ctlOpts, controller.WithDeltaHistory(*deltaHistory))
	}
	if *recomputeQueue > 0 {
		ctlOpts = append(ctlOpts, controller.WithRecomputeQueue(*recomputeQueue))
	}
	var solverOpts []solve.Option
	switch *dtype {
	case "float64":
	case "float32":
		solverOpts = append(solverOpts, solve.WithDtype(solve.Float32))
	default:
		fmt.Fprintf(os.Stderr, "unknown dtype %q\n", *dtype)
		os.Exit(2)
	}
	if *warmStart {
		solverOpts = append(solverOpts, solve.WithWarm(&core.CycleState{}))
	}
	if len(solverOpts) > 0 {
		ctlOpts = append(ctlOpts, controller.WithSolverOptions(solverOpts...))
	}

	srv := controller.New(scen, solver, ctlOpts...)
	runCfg := controller.RunConfig{
		StartSec:        *start,
		IntervalSec:     *interval,
		CycleTimeoutSec: *cycleTimeout,
		RetryBaseSec:    *retryBase,
		RetryMaxSec:     *retryMax,
		FailFrac:        *chaosFailFrac,
		ChaosSeed:       *chaosSeed,
	}
	errc := make(chan error, 2)
	//lint:ignore no-naked-goroutine server lifecycle, not compute parallelism: the tick loop runs for the process lifetime
	go func() { errc <- srv.RunContext(ctx, runCfg) }()
	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}
	//lint:ignore no-naked-goroutine server lifecycle, not compute parallelism: ListenAndServe blocks until shutdown
	go func() { errc <- httpSrv.ListenAndServe() }()

	fmt.Printf("sate-controld: %s, method %s, interval %gs, listening on %s\n",
		cons.Name, solver.Name(), *interval, *listen)
	if *chaosFailFrac > 0 {
		fmt.Printf("chaos mode: failing %.1f%% of links per cycle (seed %d)\n", 100**chaosFailFrac, *chaosSeed)
	}
	fmt.Printf("API on http://%s/v1/{status,allocation,rules,deltas}, metrics on http://%s/metrics, profiles on http://%s/debug/pprof/\n", *listen, *listen, *listen)

	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed && !errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Println("shutting down")
	}
	cancel()
	if err := httpSrv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}
