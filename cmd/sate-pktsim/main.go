// Command sate-pktsim runs the discrete-event packet engine (internal/pktsim,
// DESIGN.md §15) over one TE recompute cycle and prints the per-packet
// accounting: latency quantiles, queue high water, and drops by reason.
//
// It builds a scenario, solves the TE problem at -t with the chosen solver,
// and executes the allocation at packet granularity. With -update-at > 0 it
// also solves the problem -interval seconds earlier and replays the rule push:
// the network starts on the stale allocation and each satellite switches at
// -update-at plus its rule-distribution delay (Appendix D), so the printed
// loss includes the stale-rule window.
//
// Usage:
//
//	sate-pktsim -solver ecmp -t 700 -horizon 2
//	sate-pktsim -solver lp -update-at 0.8 -burst-factor 3 -burst-start 0.5
//	sate-pktsim -planes 8 -sats 10 -intensity 40 -spikes 3 -handovers 2 -out run.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/orbit"
	"sate/internal/pktsim"
	"sate/internal/ruledist"
	"sate/internal/sim"
	"sate/internal/topology"
)

func solverFor(name string, seed int64) (sim.Allocator, error) {
	switch name {
	case "ecmp":
		return baselines.ECMPWF{}, nil
	case "lp":
		return baselines.LPAuto{}, nil
	case "pop":
		return &baselines.POP{K: 4, Seed: seed}, nil
	case "maxmin":
		return baselines.MaxMinFair{}, nil
	}
	return nil, fmt.Errorf("unknown solver %q (want ecmp|lp|pop|maxmin)", name)
}

func modeFor(name string) (topology.CrossShellMode, error) {
	switch name {
	case "lasers":
		return topology.CrossShellLasers, nil
	case "relays":
		return topology.CrossShellGroundRelays, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want lasers|relays)", name)
}

func main() {
	var (
		planes    = flag.Int("planes", 5, "constellation planes")
		satsPer   = flag.Int("sats", 6, "satellites per plane")
		mode      = flag.String("mode", "lasers", "cross-shell mode: lasers | relays")
		intensity = flag.Float64("intensity", 30, "traffic intensity (flow arrivals/s)")
		solver    = flag.String("solver", "ecmp", "TE solver: ecmp | lp | pop | maxmin")
		evalT     = flag.Float64("t", 700, "scenario instant of the evaluated allocation (s)")
		interval  = flag.Float64("interval", 2, "recompute interval: the stale allocation is solved at t-interval (s)")
		seed      = flag.Int64("seed", 1, "random seed (traffic, jitter, disturbances)")

		horizon    = flag.Float64("horizon", 1, "injection horizon (s); in-flight packets drain past it")
		queue      = flag.Int("queue", 64, "per-directed-link FIFO capacity (packets)")
		packetBits = flag.Int("packet-bits", 12000, "packet size on the wire (bits)")
		jitter     = flag.Float64("jitter", 0.03, "per-hop jitter as a fraction of propagation delay")
		spikes     = flag.Int("spikes", 0, "seeded propagation-delay spikes")
		handovers  = flag.Int("handovers", 0, "seeded link-down handover windows")

		burstStart  = flag.Float64("burst-start", 0, "burst window start (s)")
		burstDur    = flag.Float64("burst-dur", 0, "burst window duration (s); 0 disables the burst")
		burstFactor = flag.Float64("burst-factor", 3, "burst rate multiplier")

		updateAt = flag.Float64("update-at", 0, "rule-push instant within the run (s); 0 disables the update window")
		out      = flag.String("out", "", "also write the full result (incl. per-packet latencies) as JSON")
	)
	flag.Parse()

	csMode, err := modeFor(*mode)
	if err != nil {
		fatal(err)
	}
	al, err := solverFor(*solver, *seed)
	if err != nil {
		fatal(err)
	}

	scen := sim.NewScenario(constellation.Toy(*planes, *satsPer), sim.ScenarioConfig{
		Mode:      csMode,
		Intensity: *intensity,
		Seed:      *seed,
		Users:     2000, UserClusters: 60, Gateways: 8, Relays: 30, MinElevDeg: 5,
	})

	pCur, snap, _, err := scen.ProblemAt(*evalT)
	if err != nil {
		fatal(err)
	}
	if len(pCur.Flows) == 0 {
		fatal(fmt.Errorf("no flows at t=%v (raise -intensity or -t)", *evalT))
	}
	aCur, err := al.Solve(pCur)
	if err != nil {
		fatal(err)
	}
	spec := &pktsim.RunSpec{Snap: snap, Problem: pCur, Alloc: aCur}

	if *updateAt > 0 {
		pPrev, _, _, err := scen.ProblemAt(*evalT - *interval)
		if err != nil {
			fatal(err)
		}
		aPrev, err := al.Solve(pPrev)
		if err != nil {
			fatal(err)
		}
		spec.Update = &pktsim.RuleUpdate{
			PrevProblem: pPrev,
			PrevAlloc:   aPrev,
			AtSec:       *updateAt,
			DelaysSec:   ruledist.RuleDistributionDelays(snap, ruledist.HoustonSite, orbit.Deg(5)),
		}
	}

	cfg := pktsim.Config{
		Seed:       *seed,
		HorizonSec: *horizon,
		PacketBits: *packetBits,
		QueuePkts:  *queue,
		JitterFrac: *jitter,
		Spikes:     *spikes,
		Handovers:  *handovers,
	}
	if *burstDur > 0 {
		cfg.Burst = &pktsim.Burst{StartSec: *burstStart, DurSec: *burstDur, Factor: *burstFactor}
	}

	res, err := pktsim.Run(spec, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("solver=%s flows=%d nodes=%d links=%d horizon=%gs\n",
		al.Name(), len(pCur.Flows), snap.NumNodes, len(snap.Links), *horizon)
	fmt.Printf("injected   %d%s\n", res.Injected, map[bool]string{true: "  (truncated by MaxPackets)", false: ""}[res.Truncated])
	fmt.Printf("delivered  %d  (%.1f%%)\n", res.Delivered, 100*(1-res.LossFrac()))
	fmt.Printf("dropped    %d  (queue %d, no-rule %d, link-down %d, loop %d)\n",
		res.Dropped(), res.DroppedQueue, res.DroppedNoRule, res.DroppedDown, res.DroppedLoop)
	fmt.Printf("queue high water  %d pkts\n", res.MaxQueuePkts)
	if res.Delivered > 0 {
		fmt.Printf("latency    mean %.2f ms\n", res.MeanLatencySec()*1e3)
		fmt.Println("latency CDF (delivered packets):")
		for _, p := range []float64{10, 25, 50, 75, 90, 95, 99, 99.9, 100} {
			fmt.Printf("  p%-5g %8.2f ms\n", p, res.LatencyPercentile(p)*1e3)
		}
	}

	if *out != "" {
		// Latencies sort ascending in the dump so the file is directly
		// plottable as a CDF.
		sorted := append([]float64(nil), res.LatenciesSec...)
		sort.Float64s(sorted)
		dump := struct {
			Solver       string
			Result       *pktsim.Result
			SortedLatSec []float64
			MeanLatSec   float64
		}{al.Name(), res, sorted, 0}
		if m := res.MeanLatencySec(); !math.IsNaN(m) {
			dump.MeanLatSec = m
		}
		dump.Result.LatenciesSec = nil // superseded by the sorted copy
		b, err := json.MarshalIndent(dump, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sate-pktsim:", err)
	os.Exit(1)
}
