// Command satelint runs the project's static-analysis suite over Go
// packages and reports violations of the repo's determinism and concurrency
// invariants as "file:line:col: [rule] message" diagnostics.
//
// Usage:
//
//	satelint ./...                      # run every rule
//	satelint -only seeded-rand-only ./internal/...
//	satelint -skip no-float-equality ./...
//	satelint -list                      # describe the rules
//
// Suppress an individual finding with a directive comment on the same line
// or the line directly above it (the reason is mandatory):
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sate/internal/lint"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the available rules and exit")
		only     = flag.String("only", "", "comma-separated rules to run (default: all)")
		skip     = flag.String("skip", "", "comma-separated rules to skip")
		dir      = flag.String("dir", ".", "module directory to lint")
		skipTest = flag.Bool("no-tests", false, "do not analyze _test.go files")
	)
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := lint.Select(all, *only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	files, err := lint.Load(lint.Options{
		Dir:       *dir,
		Patterns:  flag.Args(),
		SkipTests: *skipTest,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := lint.Run(files, analyzers)
	cwd, _ := os.Getwd()
	for _, f := range findings {
		// Print paths relative to the working directory when possible:
		// shorter, and clickable in most terminals.
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "satelint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
