// Command satelint runs the project's static-analysis suite over Go
// packages and reports violations of the repo's determinism and concurrency
// invariants as "file:line:col: [rule] message" diagnostics.
//
// Usage:
//
//	satelint ./...                      # run every rule
//	satelint -only seeded-rand-only ./internal/...
//	satelint -skip no-float-equality ./...
//	satelint -list                      # describe the rules
//	satelint -json ./...                # machine-readable findings
//	satelint -baseline .satelint-baseline.json ./...
//	satelint -write-baseline .satelint-baseline.json ./...
//
// Suppress an individual finding with a directive comment on the same line
// or the line directly above it (the reason is mandatory):
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// A baseline file records tolerated findings for incremental adoption:
// -baseline subtracts them from the output, -write-baseline snapshots the
// current findings. Entries match on (file, rule, message), not line
// numbers, so unrelated edits do not invalidate them.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sate/internal/lint"
)

// jsonFinding is the -json output shape for one diagnostic.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func main() {
	var (
		list      = flag.Bool("list", false, "list the available rules and exit")
		only      = flag.String("only", "", "comma-separated rules to run (default: all)")
		skip      = flag.String("skip", "", "comma-separated rules to skip")
		dir       = flag.String("dir", ".", "module directory to lint")
		skipTest  = flag.Bool("no-tests", false, "do not analyze _test.go files")
		asJSON    = flag.Bool("json", false, "emit findings as a JSON array")
		baseline  = flag.String("baseline", "", "subtract findings recorded in this baseline file")
		writeBase = flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	)
	flag.Parse()

	all := lint.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := lint.Select(all, *only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	files, err := lint.Load(lint.Options{
		Dir:       *dir,
		Patterns:  flag.Args(),
		SkipTests: *skipTest,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := lint.Run(files, analyzers)
	root, err := filepath.Abs(*dir)
	if err != nil {
		root = ""
	}

	if *writeBase != "" {
		if err := lint.WriteBaseline(*writeBase, root, findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "satelint: wrote %d finding(s) to %s\n", len(findings), *writeBase)
		return
	}
	if *baseline != "" {
		b, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		var stale int
		findings, stale = b.Filter(root, findings)
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "satelint: %d stale baseline entr(ies) match no finding; regenerate with -write-baseline\n", stale)
		}
	}

	if *asJSON {
		out := []jsonFinding{}
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: relToCwd(f.Pos.Filename),
				Line: f.Pos.Line, Col: f.Pos.Column,
				Rule: f.Rule, Msg: f.Msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			f.Pos.Filename = relToCwd(f.Pos.Filename)
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "satelint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// relToCwd renders a path relative to the working directory when possible:
// shorter, and clickable in most terminals.
func relToCwd(path string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
