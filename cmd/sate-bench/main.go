// Command sate-bench runs the paper-reproduction experiments and prints each
// table/figure as an aligned text table.
//
// Usage:
//
//	sate-bench -list
//	sate-bench -exp fig8a
//	sate-bench -exp all -scale full
//	sate-bench -exp fig10ab -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sate/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment ID to run, or 'all'")
		scale  = flag.String("scale", "ci", "execution scale: ci | full")
		seed   = flag.Int64("seed", 1, "random seed")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		csvDir = flag.String("csv", "", "also write each report as <dir>/<id>.csv")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: sate-bench -exp <id>|all [-scale ci|full] [-seed N]; -list for IDs")
		os.Exit(2)
	}
	opt := experiments.Options{Full: *scale == "full", Seed: *seed}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	failed := 0
	for _, id := range ids {
		d, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		rep, err := d(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(rep)
		fmt.Printf("(%s took %s)\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
				failed++
			}
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
