// Command sate-topology analyses the link dynamics of a constellation:
// topology holding time (Sec. 2.3.1), link churn, connectivity, and
// configured-path obsolescence.
//
// Usage:
//
//	sate-topology -cons starlink -snapshots 4000 -dt 0.0125
//	sate-topology -cons midsize1 -mode ground-relays
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"sate/internal/constellation"
	"sate/internal/groundnet"
	"sate/internal/paths"
	"sate/internal/topology"
)

func main() {
	var (
		consName = flag.String("cons", "midsize1", "constellation: starlink | iridium | midsize1 | midsize2")
		mode     = flag.String("mode", "lasers", "cross-shell mode: lasers | ground-relays | none")
		nSnaps   = flag.Int("snapshots", 2000, "number of snapshots to sample")
		dt       = flag.Float64("dt", 0.0125, "sampling interval in seconds")
		pairs    = flag.Int("pairs", 200, "random pairs for path-obsolescence analysis")
		seed     = flag.Int64("seed", 1, "random seed")
		cache    = flag.String("cache", "", "snapshot series cache file: read if present, else generate and write")
	)
	flag.Parse()

	cons, ok := constellation.ByName(*consName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown constellation %q\n", *consName)
		os.Exit(2)
	}
	var m topology.CrossShellMode
	switch *mode {
	case "lasers":
		m = topology.CrossShellLasers
	case "ground-relays":
		m = topology.CrossShellGroundRelays
	case "none":
		m = topology.CrossShellNone
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	cfg := topology.DefaultConfig(m)
	if m == topology.CrossShellGroundRelays {
		grid := groundnet.SyntheticPopulation(*seed)
		cfg.Relays = groundnet.PlaceSites(222, grid.Probabilities(0), rand.New(rand.NewSource(*seed)))
	}
	gen := topology.NewGenerator(cons, cfg)

	fmt.Printf("constellation %s: %d satellites, %d shells, mode %s\n",
		cons.Name, cons.Size(), len(cons.Shells), m)

	s0 := gen.Snapshot(0)
	kinds := map[topology.LinkKind]int{}
	for _, l := range s0.Links {
		kinds[l.Kind]++
	}
	fmt.Printf("links at t=0: %d total (%v), %d connected components\n",
		len(s0.Links), kinds, s0.ConnectedComponents())

	// THT. The snapshot series can be cached on disk: full-scale runs sample
	// tens of thousands of snapshots and regenerating them dominates runtime.
	var snaps []*topology.Snapshot
	if *cache != "" {
		if f, err := os.Open(*cache); err == nil {
			snaps, err = topology.ReadSeries(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "reading cache %s: %v\n", *cache, err)
				os.Exit(1)
			}
			fmt.Printf("loaded %d snapshots from %s\n", len(snaps), *cache)
		}
	}
	if snaps == nil {
		snaps = gen.Series(0, *dt, *nSnaps)
		if *cache != "" {
			f, err := os.Create(*cache)
			if err == nil {
				err = topology.WriteSeries(f, snaps)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing cache %s: %v\n", *cache, err)
			} else {
				fmt.Printf("cached %d snapshots to %s\n", len(snaps), *cache)
			}
		}
	}
	tht := topology.MeasureTHT(snaps, *dt)
	fmt.Printf("THT over %d snapshots at %.1f ms: mean %.1f ms, max %.1f ms (%d holds)\n",
		*nSnaps, *dt*1000, tht.Mean()*1000, tht.Max()*1000, len(tht.HoldTimesSec))

	churn := topology.MeasureChurn(snaps)
	fmt.Printf("churn: %d/%d steps changed, +%d/-%d links\n",
		churn.ChangedSteps, churn.Steps, churn.TotalAdded, churn.TotalRemoved)

	// Path obsolescence over longer horizons.
	router := paths.NewGridRouter(cons, s0)
	rng := rand.New(rand.NewSource(*seed))
	var configured []paths.Path
	for i := 0; i < *pairs; i++ {
		a := constellation.SatID(rng.Intn(cons.Size()))
		b := constellation.SatID(rng.Intn(cons.Size()))
		if a != b {
			configured = append(configured, router.KShortest(a, b, 10)...)
		}
	}
	fmt.Printf("configured %d candidate paths from %d pairs\n", len(configured), *pairs)
	for _, tm := range []float64{10, 30, 60, 150} {
		st := gen.Snapshot(tm)
		fmt.Printf("  obsolete after %4.0f s: %5.1f%%\n", tm,
			100*paths.ObsoleteFraction(configured, st))
	}
}
