// Command sate-sim runs the online TE evaluation of Sec. 5.4 from the
// command line: it trains (or loads) a SaTE model, then plays the scenario
// forward, recomputing each method's allocation at its configured interval
// and charging it for staleness.
//
// Usage:
//
//	sate-sim -cons iridium -intensity 8 -methods sate,lp,ecmp-wf -horizon 60
//	sate-sim -cons iridium -model model.gob -interval-lp 47
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/core"
	"sate/internal/sim"
	"sate/internal/topology"
)

func main() {
	var (
		consName  = flag.String("cons", "iridium", "constellation: starlink | iridium | midsize1 | midsize2")
		mode      = flag.String("mode", "lasers", "cross-shell mode: lasers | ground-relays")
		intensity = flag.Float64("intensity", 8, "traffic intensity, flows/s")
		methods   = flag.String("methods", "sate,lp,pop,ecmp-wf", "comma-separated methods to evaluate")
		horizon   = flag.Int("horizon", 60, "evaluation horizon, seconds")
		start     = flag.Float64("start", 300, "evaluation start time (past arrival ramp-up)")
		step      = flag.Float64("step", 2, "metric sampling step, seconds")
		durScale  = flag.Float64("dur-scale", 0.05, "flow duration scale (1 = paper's Table 2)")
		minElev   = flag.Float64("min-elev", 10, "user min elevation, degrees")
		modelPath = flag.String("model", "", "load a trained SaTE model instead of training")
		samples   = flag.Int("samples", 3, "training samples when training")
		epochs    = flag.Int("epochs", 30, "training epochs when training")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	cons, ok := constellation.ByName(*consName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown constellation %q\n", *consName)
		os.Exit(2)
	}
	var m topology.CrossShellMode
	switch *mode {
	case "lasers":
		m = topology.CrossShellLasers
	case "ground-relays":
		m = topology.CrossShellGroundRelays
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	mkScenario := func(seedOffset int64) *sim.Scenario {
		return sim.NewScenario(cons, sim.ScenarioConfig{
			Mode:              m,
			Intensity:         *intensity,
			Seed:              *seed + seedOffset,
			MinElevDeg:        *minElev,
			FlowDurationScale: *durScale,
		})
	}

	// Build the method table. Intervals follow the paper's Starlink-scale
	// protocol: SaTE recomputes every step; the heavy methods at their
	// Fig. 8 (a) latencies.
	type entry struct {
		al       sim.Allocator
		interval float64
	}
	table := map[string]func() (entry, error){
		"sate": func() (entry, error) {
			var model *core.Model
			if *modelPath != "" {
				var err error
				model, err = core.LoadFile(*modelPath)
				if err != nil {
					return entry{}, err
				}
				fmt.Printf("loaded model from %s\n", *modelPath)
			} else {
				fmt.Printf("training SaTE on %s (%d samples, %d epochs)...\n", cons.Name, *samples, *epochs)
				trainScen := mkScenario(1000)
				solver := baselines.LPAuto{}
				var ds []*core.Sample
				for i := 0; i < *samples; i++ {
					p, _, _, err := trainScen.ProblemAt(150 + float64(i)*97)
					if err != nil {
						return entry{}, err
					}
					if len(p.Flows) == 0 {
						continue
					}
					ref, err := solver.Solve(p)
					if err != nil {
						return entry{}, err
					}
					ds = append(ds, core.NewSample(p, ref))
				}
				cfg := core.DefaultConfig()
				cfg.Seed = *seed
				model = core.NewModel(cfg)
				tc := core.DefaultTrainConfig()
				tc.Epochs = *epochs
				if _, err := core.Train(model, ds, tc); err != nil {
					return entry{}, err
				}
			}
			return entry{al: model, interval: *step}, nil
		},
		"lp":      func() (entry, error) { return entry{al: baselines.LPAuto{}, interval: 47}, nil },
		"gk":      func() (entry, error) { return entry{al: baselines.GK{Epsilon: 0.05}, interval: 47}, nil },
		"pop":     func() (entry, error) { return entry{al: &baselines.POP{K: 4, Seed: *seed}, interval: 25}, nil },
		"ecmp-wf": func() (entry, error) { return entry{al: baselines.ECMPWF{}, interval: 54}, nil },
		"maxmin-fair": func() (entry, error) {
			return entry{al: baselines.MaxMinFair{}, interval: 47}, nil
		},
	}

	fmt.Printf("online evaluation: %s, %s, lambda=%.0f flows/s, t=[%.0f, %.0f)s\n",
		cons.Name, m, *intensity, *start, *start+float64(*horizon))
	for _, name := range strings.Split(*methods, ",") {
		name = strings.TrimSpace(name)
		mk, ok := table[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown method %q (known: sate lp gk pop ecmp-wf maxmin-fair)\n", name)
			os.Exit(2)
		}
		e, err := mk()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := mkScenario(0).RunOnline(e.al, sim.OnlineConfig{
			HorizonSec:  *horizon,
			StartSec:    *start,
			IntervalSec: e.interval,
			StepSec:     *step,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %-12s satisfied %5.1f%%  (%d solves, mean latency %s, interval %.0fs)\n",
			name, 100*res.SatisfiedMean, res.Recomputations,
			res.MeanSolveLatency.Round(1000), e.interval)
	}
}
