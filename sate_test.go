package sate

import (
	"testing"
)

func testScenario(seed int64) *Scenario {
	return NewScenario(Iridium(), ScenarioConfig{
		Mode:              CrossShellLasers,
		Intensity:         8,
		Seed:              seed,
		MinElevDeg:        10,
		FlowDurationScale: 0.05, // steady-state load within the test horizon
		// keep the ground segment small for unit tests
		Users: 3000, UserClusters: 80, Gateways: 10, Relays: 5,
	})
}

func TestFacadeTrainAndSolve(t *testing.T) {
	scen := testScenario(1)
	model, err := Train(scen, TrainOptions{Samples: 2, Epochs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, _, m, err := scen.ProblemAt(300)
	if err != nil {
		t.Fatal(err)
	}
	if m.NonZeroPairs() == 0 {
		t.Skip("no traffic at evaluation instant")
	}
	a, err := model.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Check(a); v.Any(1e-6) {
		t.Fatalf("facade-trained model infeasible: %+v", v)
	}
	d, err := Benchmark(model, p)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("benchmark did not measure")
	}
}

func TestFacadeSolvers(t *testing.T) {
	scen := testScenario(2)
	p, _, _, err := scen.ProblemAt(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) == 0 {
		t.Skip("no flows")
	}
	for name, solver := range Solvers() {
		a, err := solver.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v := p.Check(a); v.Any(1e-6) {
			t.Errorf("%s produced infeasible allocation: %+v", name, v)
		}
	}
}

func TestFacadeConstellations(t *testing.T) {
	if Starlink().Size() != 4236 {
		t.Error("Starlink size")
	}
	if Iridium().Size() != 66 {
		t.Error("Iridium size")
	}
	if MidSize1().Size() != 396 || MidSize2().Size() != 1584 {
		t.Error("mid-size constellations")
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := RunExperiment("nope", false, 1); err == nil {
		t.Error("expected error for unknown experiment")
	}
	var ue *UnknownExperimentError
	if _, err := RunExperiment("nope", false, 1); err != nil {
		if e, ok := err.(*UnknownExperimentError); !ok || e.ID != "nope" {
			t.Errorf("wrong error type: %v", err)
		}
		_ = ue
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	rep, err := RunExperiment("fig13", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "fig13" || len(rep.Rows) == 0 {
		t.Errorf("bad report: %+v", rep)
	}
}

func TestExperimentIDsNonEmpty(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 20 {
		t.Errorf("only %d experiments registered", len(ids))
	}
}
