// Quickstart: build a small constellation scenario, train a SaTE model on a
// handful of LP-labelled instants, and compare its millisecond inference
// against the reference solver on unseen traffic.
package main

import (
	"fmt"
	"log"
	"time"

	"sate"
)

func main() {
	// A small two-shell constellation keeps the example fast; swap in
	// sate.Starlink() for the full 4236-satellite Phase 1 configuration.
	cons := sate.Iridium()
	scen := sate.NewScenario(cons, sate.ScenarioConfig{
		Mode:              sate.CrossShellLasers,
		Intensity:         8, // flows per second
		Seed:              1,
		MinElevDeg:        10,   // small constellations need a permissive elevation mask
		FlowDurationScale: 0.05, // reach steady-state load quickly (cf. paper Sec. 4 fn. 5)
	})

	fmt.Printf("training SaTE on %s (%d satellites)...\n", cons.Name, cons.Size())
	model, err := sate.Train(scen, sate.TrainOptions{Samples: 4, Epochs: 30, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate on an unseen instant: different topology, different flows.
	problem, _, matrix, err := scen.ProblemAt(480)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unseen instant: %d demands (%.0f Mbps total), %d path variables\n",
		len(problem.Flows), matrix.Total(), problem.NumPaths())

	start := time.Now()
	alloc, err := model.Solve(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SaTE:       %.1f%% satisfied in %s\n",
		100*problem.SatisfiedDemand(alloc), time.Since(start).Round(time.Microsecond))

	for name, solver := range sate.Solvers() {
		if name == "gk" {
			continue // lp already covers the reference role here
		}
		start = time.Now()
		a, err := solver.Solve(problem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %.1f%% satisfied in %s\n", name+":",
			100*problem.SatisfiedDemand(a), time.Since(start).Round(time.Microsecond))
	}
}
