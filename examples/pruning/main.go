// pruning demonstrates the dataset-pruning machinery of Sec. 3.4:
// traffic/path pruning volumes (Table 1) and DPP topology selection
// (Appendix E) on real generated topologies.
package main

import (
	"fmt"
	"log"

	"sate"
	"sate/internal/core"
	"sate/internal/graphembed"
)

func main() {
	cons := sate.MidSize1()
	scen := sate.NewScenario(cons, sate.ScenarioConfig{
		Mode:       sate.CrossShellLasers,
		Intensity:  125,
		Seed:       3,
		MinElevDeg: 10,
	})

	// Traffic & path pruning: the sparse problem vs the dense N^2 layout.
	p, _, matrix, err := scen.ProblemAt(30)
	if err != nil {
		log.Fatal(err)
	}
	v := core.MeasureVolume(p, cons.Size(), 10, 24)
	fmt.Printf("constellation: %d satellites; traffic matrix %d/%d pairs non-zero (%.4f%%)\n",
		cons.Size(), matrix.NonZeroPairs(), cons.Size()*cons.Size(), 100*matrix.DensityFraction())
	fmt.Printf("data-point volume: original %.1f MB -> pruned %.3f MB (%.0fx reduction)\n",
		float64(v.TotalOriginal())/(1<<20), float64(v.TotalPruned())/(1<<20), v.Reduction())

	// Topology pruning: embed a pool of snapshots and DPP-select a diverse
	// training subset.
	const pool = 30
	var vecs [][]float64
	for i := 0; i < pool; i++ {
		snap := scen.SnapshotAt(float64(15 + i*41))
		vecs = append(vecs, graphembed.Embed(snap, 128, 3))
	}
	selected := graphembed.DPPSelect(vecs, 6)
	fmt.Printf("DPP selected %d representative topologies out of %d: %v\n",
		len(selected), pool, selected)

	// Diversity check: mean pairwise similarity of the DPP set vs the first-k set.
	meanSim := func(idx []int) float64 {
		var s float64
		n := 0
		for i := 0; i < len(idx); i++ {
			for j := i + 1; j < len(idx); j++ {
				s += graphembed.Cosine(vecs[idx[i]], vecs[idx[j]])
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return s / float64(n)
	}
	firstK := []int{0, 1, 2, 3, 4, 5}
	fmt.Printf("mean pairwise similarity: DPP %.4f vs consecutive %.4f (lower = more diverse)\n",
		meanSim(selected), meanSim(firstK))
}
