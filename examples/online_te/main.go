// online_te demonstrates the paper's key operational claim: in the ONLINE
// setting — where an allocation stays loaded (and goes stale) until the next
// computation finishes — a fast near-optimal model beats a slow exact solver.
// The example runs SaTE and the LP reference through the online evaluator
// with their measured latencies and compares satisfied demand.
package main

import (
	"fmt"
	"log"

	"sate"
)

func main() {
	// A small dense two-shell constellation at Starlink-like altitude: low
	// orbits mean fast user handovers, which is exactly what makes stale
	// allocations expensive.
	cons, err := sate.NewConstellation("demo-2shell", []sate.Shell{
		{Name: "low", AltitudeKm: 540, InclinationDeg: 53.2, Planes: 5, SatsPerPlane: 6, PhaseFactor: 1},
		{Name: "high", AltitudeKm: 560, InclinationDeg: 53.0, Planes: 5, SatsPerPlane: 6, PhaseFactor: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	mk := func(seed int64) *sate.Scenario {
		return sate.NewScenario(cons, sate.ScenarioConfig{
			Mode:              sate.CrossShellLasers,
			Intensity:         3,
			Seed:              seed,
			MinElevDeg:        5,
			FlowDurationScale: 0.05,
		})
	}

	model, err := sate.Train(mk(61), sate.TrainOptions{Samples: 3, Epochs: 30, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// SaTE recomputes every evaluation step (its inference is milliseconds);
	// the LP solver is evaluated with its own measured latency as the
	// recomputation interval — the Fig. 10 protocol.
	sateRes, err := mk(62).RunOnline(model, sate.OnlineConfig{
		HorizonSec: 40, StartSec: 700, IntervalSec: 2, StepSec: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	lp := sate.Solvers()["lp"]
	// Simulate a slow solver era: recompute only every 30 s.
	lpRes, err := mk(62).RunOnline(lp, sate.OnlineConfig{
		HorizonSec: 40, StartSec: 700, IntervalSec: 47, StepSec: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("online satisfied demand over 40 s (same unseen traffic):\n")
	fmt.Printf("  SaTE (recompute every 2 s):   %.1f%%  (%d solves, mean %s)\n",
		100*sateRes.SatisfiedMean, sateRes.Recomputations, sateRes.MeanSolveLatency.Round(1000))
	fmt.Printf("  LP   (recompute every 47 s):  %.1f%%  (%d solves, mean %s)\n",
		100*lpRes.SatisfiedMean, lpRes.Recomputations, lpRes.MeanSolveLatency.Round(1000))
	fmt.Println("the exact solver computes better allocations, but they go stale;")
	fmt.Println("low-latency TE keeps pace with topology and traffic dynamics (Sec. 5.4).")
	fmt.Println("(CPU-scale training budgets are small, so the learned model's margin")
	fmt.Println(" varies run to run; see EXPERIMENTS.md fig10ab for the full sweep.)")
}
