// starlink_tht reproduces the Sec. 2.3.1 motivation on the real Starlink
// Phase 1 shell parameters: how long does a 4236-satellite topology hold, and
// how quickly do configured paths go stale? This drives the internal
// topology/paths packages directly (the analysis layer below the public TE
// API).
package main

import (
	"fmt"
	"math/rand"

	"sate/internal/constellation"
	"sate/internal/paths"
	"sate/internal/topology"
)

func main() {
	cons := constellation.StarlinkPhase1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))

	s0 := gen.Snapshot(0)
	fmt.Printf("Starlink Phase 1: %d satellites, %d ISLs at t=0, %d components\n",
		cons.Size(), len(s0.Links), s0.ConnectedComponents())

	// Topology holding time over a short window (12.5 ms sampling, as in the
	// paper; extend -snapshots via cmd/sate-topology for the full 40k run).
	const dt = 0.0125
	const n = 1200 // 15 seconds
	snaps := gen.Series(0, dt, n)
	tht := topology.MeasureTHT(snaps, dt)
	fmt.Printf("THT over %.0f s: mean %.1f ms, max %.1f ms (%d topology changes)\n",
		dt*n, tht.Mean()*1000, tht.Max()*1000, len(tht.HoldTimesSec)-1)

	// Link exclusion for growing TE intervals (Fig. 4 c).
	for _, steps := range []int{1, 8, 80, 800} {
		fmt.Printf("TE interval %7.1f ms -> %.1f%% changeable ISLs excluded\n",
			float64(steps)*dt*1000, 100*topology.LinkExclusion(snaps, steps))
	}

	// Configured-path obsolescence (Fig. 4 b).
	router := paths.NewGridRouter(cons, s0)
	rng := rand.New(rand.NewSource(7))
	var configured []paths.Path
	for i := 0; i < 300; i++ {
		a := constellation.SatID(rng.Intn(cons.Size()))
		b := constellation.SatID(rng.Intn(cons.Size()))
		if a != b {
			configured = append(configured, router.KShortest(a, b, 10)...)
		}
	}
	fmt.Printf("configured %d candidate paths\n", len(configured))
	for _, tm := range []float64{10, 60, 150} {
		st := gen.Snapshot(tm)
		fmt.Printf("  after %3.0f s: %.1f%% obsolete\n", tm,
			100*paths.ObsoleteFraction(configured, st))
	}
}
