// failover demonstrates Appendix H.3: a trained SaTE model handling sudden
// link failures it never saw in training. Failed links appear to the model
// as missing graph edges (capacity zero); allocations remain feasible and
// throughput degrades gracefully — without any retraining or rerouting.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sate"
)

func main() {
	cons := sate.Iridium()
	trainScen := sate.NewScenario(cons, sate.ScenarioConfig{
		Mode: sate.CrossShellLasers, Intensity: 8, Seed: 5, MinElevDeg: 10, FlowDurationScale: 0.05,
	})
	fmt.Println("training SaTE (failure-free topologies only)...")
	model, err := sate.Train(trainScen, sate.TrainOptions{Samples: 4, Epochs: 30, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	evalScen := sate.NewScenario(cons, sate.ScenarioConfig{
		Mode: sate.CrossShellLasers, Intensity: 8, Seed: 99, MinElevDeg: 10, FlowDurationScale: 0.05,
	})
	rng := rand.New(rand.NewSource(7))

	fmt.Println("injecting random link failures at one instant (no retraining, no rerouting):")
	var baseline float64
	for _, rate := range []float64{0, 0.001, 0.01, 0.05} {
		problem, _, err := evalScen.ProblemWithFailures(200, rate, rng)
		if err != nil {
			log.Fatal(err)
		}
		alloc, err := model.Solve(problem)
		if err != nil {
			log.Fatal(err)
		}
		if v := problem.Check(alloc); v.Any(1e-6) {
			log.Fatalf("infeasible under failures: %+v", v)
		}
		sat := problem.SatisfiedDemand(alloc)
		if rate == 0 {
			baseline = sat
			fmt.Printf("  no failures:    %.1f%% satisfied\n", 100*sat)
			continue
		}
		loss := 0.0
		if baseline > 0 {
			loss = 100 * (baseline - sat) / baseline
		}
		fmt.Printf("  %.1f%% failed:    %.1f%% satisfied (loss %.1f%%)\n",
			100*rate, 100*sat, loss)
	}
	fmt.Println("the paper reports <5.2% loss at up to 1% failures (Appendix H.3).")
}
