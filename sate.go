// Package sate is the public API of the SaTE reproduction: low-latency
// traffic engineering for large-scale LEO satellite constellations
// (SIGCOMM 2025), implemented from scratch in pure Go.
//
// The package re-exports the building blocks a downstream user needs:
// constellations and topology generation, traffic workloads, TE problems,
// the SaTE GNN model (training + millisecond inference), the competing
// schemes, and the online evaluation engine. The heavy lifting lives in the
// internal packages; this facade keeps a small, stable surface.
//
// Quick start:
//
//	cons := sate.Iridium() // or sate.Starlink() for the full Phase 1
//	scen := sate.NewScenario(cons, sate.ScenarioConfig{
//		Mode: sate.CrossShellLasers, Intensity: 8, Seed: 1,
//		MinElevDeg: 10, FlowDurationScale: 0.05, // steady state quickly
//	})
//	model, err := sate.Train(scen, sate.TrainOptions{Samples: 4, Epochs: 30})
//	problem, _, _, _ := scen.ProblemAt(700) // unseen topology + traffic
//	alloc, _ := model.Solve(problem)        // milliseconds
//	fmt.Println(problem.SatisfiedDemand(alloc))
package sate

import (
	"time"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/controller"
	"sate/internal/core"
	"sate/internal/experiments"
	"sate/internal/obs"
	"sate/internal/ruledist"
	"sate/internal/shard"
	"sate/internal/sim"
	"sate/internal/solve"
	"sate/internal/te"
	"sate/internal/topology"
)

// Re-exported core types. See the internal packages for full documentation.
type (
	// Constellation is an instantiated satellite constellation.
	Constellation = constellation.Constellation
	// Scenario bundles topology, ground segment and traffic over time.
	Scenario = sim.Scenario
	// ScenarioConfig parameterises scenario construction.
	ScenarioConfig = sim.ScenarioConfig
	// Problem is a TE problem instance (Appendix A formulation).
	Problem = te.Problem
	// Allocation is a TE solution x_fp.
	Allocation = te.Allocation
	// Model is the SaTE GNN.
	Model = core.Model
	// ModelConfig holds SaTE hyperparameters.
	ModelConfig = core.Config
	// Allocator is anything that solves TE problems.
	Allocator = sim.Allocator
	// OnlineConfig controls online evaluation.
	OnlineConfig = sim.OnlineConfig
	// OnlineResult is an online evaluation outcome.
	OnlineResult = sim.OnlineResult
	// Report is a rendered experiment result.
	Report = experiments.Report
	// Registry collects metrics (counters, gauges, histograms, spans) with
	// zero allocation on hot paths; see the obs package and DESIGN.md §9.
	Registry = obs.Registry
	// SolveOption configures a single Solve call (objective, registry,
	// worker budget); see the solve package.
	SolveOption = solve.Option
	// SolveOptions is the resolved option set a SolveOption mutates.
	SolveOptions = solve.Options
	// Objective selects what a solver optimises.
	Objective = solve.Objective
	// Dtype selects the floating-point element type a solver computes in.
	Dtype = solve.Dtype
	// CycleState carries SaTE warm-start state across successive TE cycles;
	// pass one value through WithWarm on every cycle of a loop.
	CycleState = core.CycleState
	// Controller is the HTTP control center: it recomputes allocations on a
	// cadence and serves immutable published snapshots under /v1/
	// (DESIGN.md §14).
	Controller = controller.Server
	// ControllerSnapshot is one immutable published control-plane state:
	// problem, allocation, compiled rules, and their pre-encoded responses.
	ControllerSnapshot = controller.Snapshot
	// RuleChangelog is the sequence-numbered rule-distribution changelog;
	// consumers at any version catch up via deltas or a full sync.
	RuleChangelog = ruledist.Changelog
	// RuleDelta is the rule difference between two consecutive versions.
	RuleDelta = ruledist.Delta
)

// Solve objectives.
const (
	// Throughput maximises total satisfied demand (the default).
	Throughput = solve.Throughput
	// MLU minimises the maximum link utilisation (Appendix H.2).
	MLU = solve.MLU
)

// Solve dtypes (DESIGN.md §11).
const (
	// Float64 is the default full-precision inference path.
	Float64 = solve.Float64
	// Float32 halves inference memory traffic; solvers without a float32
	// implementation (and the MLU refinement stage) silently stay float64.
	Float32 = solve.Float32
)

// NewRegistry creates an enabled metrics registry. A nil *Registry is also
// valid everywhere one is accepted: every operation becomes a no-op.
func NewRegistry() *Registry { return obs.NewRegistry() }

// Solve option constructors, re-exported from the solve package.
var (
	// WithObjective selects the solve objective (Throughput or MLU).
	WithObjective = solve.WithObjective
	// WithRegistry records per-solve latency (and solver-internal spans)
	// into a registry.
	WithRegistry = solve.WithRegistry
	// WithWorkers overrides the worker-pool parallelism for the call.
	WithWorkers = solve.WithWorkers
	// WithDtype selects the inference element type (Float32 halves memory
	// traffic; solvers without a narrower path ignore it).
	WithDtype = solve.WithDtype
	// WithWarm threads a *CycleState through the solver so consecutive
	// low-churn cycles reuse topology-derived work (DESIGN.md §11).
	WithWarm = solve.WithWarm
	// WithShards overrides the shard count of a decomposition-capable
	// solver (see Sharded and DESIGN.md §13); other solvers ignore it.
	WithShards = solve.WithShards
)

// Solve runs any allocator through the unified option-aware entry point:
//
//	alloc, err := sate.Solve(model, problem, sate.WithRegistry(reg))
func Solve(al Allocator, p *Problem, opts ...SolveOption) (*Allocation, error) {
	return al.Solve(p, opts...)
}

// Cross-shell link modes (Fig. 2).
const (
	CrossShellLasers       = topology.CrossShellLasers
	CrossShellGroundRelays = topology.CrossShellGroundRelays
	CrossShellNone         = topology.CrossShellNone
)

// Shell describes one Walker-style orbital shell for custom constellations.
type Shell = constellation.Shell

// NewConstellation builds a custom constellation from shell descriptions
// (see constellation.New); the Table-4 presets below cover the paper's.
func NewConstellation(name string, shells []Shell) (*Constellation, error) {
	return constellation.New(name, shells)
}

// Constellation presets (Table 4).
var (
	// Starlink returns the 4-shell, 4236-satellite Starlink Phase 1.
	Starlink = constellation.StarlinkPhase1
	// Iridium returns the 66-satellite Iridium constellation.
	Iridium = constellation.Iridium
	// MidSize1 returns the 396-satellite constellation of Sec. 4.
	MidSize1 = constellation.MidSize1
	// MidSize2 returns the 1584-satellite constellation of Sec. 4.
	MidSize2 = constellation.MidSize2
)

// NewScenario assembles a simulation scenario (see sim.NewScenario).
func NewScenario(c *Constellation, cfg ScenarioConfig) *Scenario {
	return sim.NewScenario(c, cfg)
}

// NewModel builds an untrained SaTE model.
func NewModel(cfg ModelConfig) *Model { return core.NewModel(cfg) }

// DefaultModelConfig returns CPU-scale SaTE hyperparameters.
func DefaultModelConfig() ModelConfig { return core.DefaultConfig() }

// TrainOptions controls Train.
type TrainOptions struct {
	// Samples is the number of labelled (topology, traffic) instants to
	// train on; they are labelled with the reference LP solver.
	Samples int
	// Epochs of Adam over the samples.
	Epochs int
	// Seed for model initialisation.
	Seed int64
	// Config overrides the model hyperparameters (zero value = defaults).
	Config ModelConfig
	// Registry receives training metrics (per-epoch loss, step latency,
	// tape-arena counters); nil disables instrumentation.
	Registry *Registry
}

// Train generates labelled samples from the scenario and fits a SaTE model.
func Train(s *Scenario, opt TrainOptions) (*Model, error) {
	if opt.Samples == 0 {
		opt.Samples = 8
	}
	if opt.Epochs == 0 {
		opt.Epochs = 20
	}
	cfg := opt.Config
	if cfg.EmbedDim == 0 {
		cfg = core.DefaultConfig()
	}
	cfg.Seed = opt.Seed
	m := core.NewModel(cfg)
	solver := baselines.LPAuto{}
	var samples []*core.Sample
	for i := 0; i < opt.Samples; i++ {
		// Spaced instants past the arrival process's initial ramp; with
		// ScenarioConfig.FlowDurationScale at its default the load still
		// grows for a long time — scale durations down (e.g. 0.05) to train
		// and evaluate at steady state.
		p, _, _, err := s.ProblemAt(120 + float64(i)*97)
		if err != nil {
			return nil, err
		}
		if len(p.Flows) == 0 {
			continue
		}
		ref, err := solver.Solve(p)
		if err != nil {
			return nil, err
		}
		samples = append(samples, core.NewSample(p, ref))
	}
	tc := core.DefaultTrainConfig()
	tc.Epochs = opt.Epochs
	tc.Registry = opt.Registry
	if _, err := core.Train(m, samples, tc); err != nil {
		return nil, err
	}
	return m, nil
}

// ShardedSolver decomposes TE problems into regional subproblems solved
// concurrently by an inner solver, with boundary-flow reconciliation and
// incremental per-cycle reuse (DESIGN.md §13).
type ShardedSolver = shard.Solver

// Sharded wraps any solver in the regional decomposition: subproblems solve
// concurrently, cut-crossing flows reconcile against residual capacities,
// and per-shard warm state carries across cycles. k <= 0 picks the default
// shard count; WithShards overrides it per call, and 1 is monolithic.
func Sharded(inner shard.Inner, k int) *ShardedSolver { return shard.New(inner, k) }

// NewController builds the TE control center around a scenario and solver;
// serve its Handler over HTTP and drive it with RunContext (or explicit
// RecomputeContext calls). See cmd/sate-controld for the full daemon.
func NewController(s *Scenario, al Allocator, opts ...controller.Option) *Controller {
	return controller.New(s, al, opts...)
}

// NewRuleChangelog builds a standalone rule changelog retaining maxEntries
// versions of deltas (<= 0 picks the default); Append published rule sets
// and serve Since() to catch consumers up.
func NewRuleChangelog(maxEntries int) *RuleChangelog { return ruledist.NewChangelog(maxEntries) }

// ApplyRuleDelta applies one version delta to a rule set, returning the next
// version's rules; the input is not mutated.
var ApplyRuleDelta = ruledist.Apply

// Solvers gives access to the paper's baselines as ready-to-use allocators.
func Solvers() map[string]Allocator {
	return map[string]Allocator{
		"lp":          baselines.LPAuto{},
		"gk":          baselines.GK{Epsilon: 0.05},
		"pop":         &baselines.POP{K: 4},
		"ecmp-wf":     baselines.ECMPWF{},
		"maxmin-fair": baselines.MaxMinFair{},
	}
}

// SaveModel writes a trained model to a file; LoadModel restores it.
func SaveModel(m *Model, path string) error { return m.SaveFile(path) }

// LoadModel restores a model saved by SaveModel.
func LoadModel(path string) (*Model, error) { return core.LoadFile(path) }

// RunExperiment executes a registered paper experiment (e.g. "fig8a") and
// returns its report. Use ExperimentIDs for the catalogue.
func RunExperiment(id string, full bool, seed int64) (*Report, error) {
	d, ok := experiments.Registry[id]
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return d(experiments.Options{Full: full, Seed: seed})
}

// ExperimentIDs lists the registered experiment IDs.
func ExperimentIDs() []string { return experiments.IDs() }

// UnknownExperimentError reports an unregistered experiment ID.
type UnknownExperimentError struct{ ID string }

func (e *UnknownExperimentError) Error() string {
	return "sate: unknown experiment " + e.ID
}

// Benchmark measures the solve latency of an allocator on a problem.
func Benchmark(al Allocator, p *Problem) (time.Duration, error) {
	start := time.Now()
	_, err := al.Solve(p)
	return time.Since(start), err
}
