package shard_test

import (
	"math"
	"testing"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/core"
	"sate/internal/par"
	"sate/internal/paths"
	"sate/internal/shard"
	"sate/internal/sim"
	"sate/internal/solve"
	"sate/internal/te"
	"sate/internal/topology"
)

// scenarioProblem builds a finalized TE problem from a scenario snapshot.
func scenarioProblem(t testing.TB, cons *constellation.Constellation, intensity float64) *te.Problem {
	t.Helper()
	s := sim.NewScenario(cons, sim.ScenarioConfig{
		Mode:       topology.CrossShellLasers,
		Intensity:  intensity,
		Seed:       1,
		MinElevDeg: 10,
	})
	p, _, _, err := s.ProblemAt(30)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// cons2k is a single-shell ~2k-satellite constellation (32 planes x 66).
func cons2k() *constellation.Constellation {
	return constellation.MustNew("walker-2k", []constellation.Shell{{
		Name: "shell", AltitudeKm: 550, InclinationDeg: 53,
		Planes: 32, SatsPerPlane: 66, PhaseFactor: 17, RAANSpanDeg: 360,
	}})
}

func allocEqual(a, b *te.Allocation) bool {
	if len(a.X) != len(b.X) {
		return false
	}
	for i := range a.X {
		if len(a.X[i]) != len(b.X[i]) {
			return false
		}
		for j := range a.X[i] {
			// Bitwise comparison on purpose: shards=1 must reproduce the
			// monolithic allocation exactly, not approximately.
			if math.Float64bits(a.X[i][j]) != math.Float64bits(b.X[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestShardedEquivalence is the acceptance gate of the sharded solver:
// shards=1 is bitwise-identical to the monolithic inner solve, and shards=4
// and shards=16 stay within 2% satisfied demand of monolithic while
// remaining feasible, on MidSize1 and on a ~2k-satellite constellation —
// deterministically across worker counts.
func TestShardedEquivalence(t *testing.T) {
	cases := []struct {
		name      string
		cons      *constellation.Constellation
		intensity float64
	}{
		{"midsize1", constellation.MidSize1(), 125},
		{"walker2k", cons2k(), 60},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := scenarioProblem(t, tc.cons, tc.intensity)
			inner := baselines.GK{Epsilon: 0.05}
			mono, err := inner.Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			monoSat := p.SatisfiedDemand(mono)

			one, err := shard.New(inner, 1).Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if !allocEqual(mono, one) {
				t.Fatal("shards=1 is not bitwise-identical to the monolithic solve")
			}

			for _, k := range []int{4, 16} {
				s := shard.New(inner, k)
				a, err := s.Solve(p)
				if err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if v := p.Check(a); v.Any(1e-6) {
					t.Fatalf("shards=%d: infeasible allocation: %+v", k, v)
				}
				sat := p.SatisfiedDemand(a)
				if monoSat-sat > 0.02 {
					t.Fatalf("shards=%d: satisfied demand %.4f vs monolithic %.4f (gap %.4f > 2%%)",
						k, sat, monoSat, monoSat-sat)
				}
				t.Logf("shards=%d: satisfied %.4f (monolithic %.4f), stats %+v", k, sat, monoSat, s.Stats)

				// Bitwise determinism across worker counts.
				restore := par.SetWorkers(1)
				a1, err := shard.New(inner, k).Solve(p)
				restore()
				if err != nil {
					t.Fatal(err)
				}
				restore = par.SetWorkers(4)
				a4, err := shard.New(inner, k).Solve(p)
				restore()
				if err != nil {
					t.Fatal(err)
				}
				if !allocEqual(a1, a4) || !allocEqual(a1, a) {
					t.Fatalf("shards=%d: allocation differs across worker counts", k)
				}
			}
		})
	}
}

// handProblem builds an 8-node line problem whose partition at k=4 is the
// pairs {0,1} {2,3} {4,5} {6,7}: flows 0..2 are internal to shards 0..2 and
// flow 3 crosses the 1-2 cut.
func handProblem() *te.Problem {
	line := func(ns ...topology.NodeID) paths.Path { return paths.Path{Nodes: ns} }
	p := &te.Problem{
		NumNodes: 8,
		Links: []topology.Link{
			topology.MakeLink(0, 1, topology.IntraOrbit),
			topology.MakeLink(1, 2, topology.IntraOrbit),
			topology.MakeLink(2, 3, topology.IntraOrbit),
			topology.MakeLink(4, 5, topology.IntraOrbit),
			topology.MakeLink(6, 7, topology.IntraOrbit),
		},
		LinkCap: []float64{10, 10, 10, 10, 10},
		Flows: []te.FlowDemand{
			{Src: 0, Dst: 1, DemandMbps: 4, Paths: []paths.Path{line(0, 1)}},
			{Src: 2, Dst: 3, DemandMbps: 4, Paths: []paths.Path{line(2, 3)}},
			{Src: 4, Dst: 5, DemandMbps: 4, Paths: []paths.Path{line(4, 5)}},
			{Src: 1, Dst: 3, DemandMbps: 4, Paths: []paths.Path{line(1, 2, 3)}},
		},
	}
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

// TestShardedDirtySet verifies the incremental per-cycle machinery: a second
// solve over an unchanged link set marks every shard clean, and a capacity
// change dirties exactly the owning shard.
func TestShardedDirtySet(t *testing.T) {
	p := handProblem()
	s := shard.New(baselines.GK{Epsilon: 0.05}, 4)

	a, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.Shards != 4 || s.Stats.DirtyShards != 4 {
		t.Fatalf("first cycle: want 4/4 dirty shards, got %+v", s.Stats)
	}
	if s.Stats.InternalFlows != 3 || s.Stats.BoundaryFlows != 1 {
		t.Fatalf("want 3 internal + 1 boundary flow, got %+v", s.Stats)
	}
	if v := p.Check(a); v.Any(1e-9) {
		t.Fatalf("infeasible: %+v", v)
	}
	// Uncongested line: every flow should be fully satisfied, including the
	// boundary one (the regional solves leave the cut links untouched).
	if sat := p.SatisfiedDemand(a); sat < 1-1e-9 {
		t.Fatalf("uncongested problem not fully satisfied: %.6f", sat)
	}

	b, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.DirtyShards != 0 {
		t.Fatalf("unchanged cycle: want 0 dirty shards, got %d", s.Stats.DirtyShards)
	}
	if !allocEqual(a, b) {
		t.Fatal("clean replay changed the allocation")
	}

	// Shrink the capacity of link (4,5) — intra to shard 2 only.
	p.LinkCap[3] = 2
	c, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Stats.DirtyShards != 1 {
		t.Fatalf("capacity change: want 1 dirty shard, got %d", s.Stats.DirtyShards)
	}
	if got := c.X[2][0]; got > 2+1e-9 {
		t.Fatalf("flow 2 exceeds shrunk capacity: %f", got)
	}
}

// TestShardedBoundaryResiduals pins the reconciliation semantics in both
// orders: the dominant demand class solves first against the full
// capacities and the minority class is squeezed to the residuals of the
// shared link (0,1).
func TestShardedBoundaryResiduals(t *testing.T) {
	line := func(ns ...topology.NodeID) paths.Path { return paths.Path{Nodes: ns} }
	build := func(intDem, bndDem float64) *te.Problem {
		p := &te.Problem{
			NumNodes: 4, // k=2 -> shards {0,1} and {2,3}
			Links: []topology.Link{
				topology.MakeLink(0, 1, topology.IntraOrbit),
				topology.MakeLink(1, 2, topology.IntraOrbit),
			},
			LinkCap: []float64{10, 10},
			Flows: []te.FlowDemand{
				// Internal to shard 0, sharing link (0,1) with the boundary flow.
				{Src: 0, Dst: 1, DemandMbps: intDem, Paths: []paths.Path{line(0, 1)}},
				// Boundary: needs (0,1) and the cut link (1,2).
				{Src: 0, Dst: 2, DemandMbps: bndDem, Paths: []paths.Path{line(0, 1, 2)}},
			},
		}
		if err := p.Finalize(); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("internal-first", func(t *testing.T) {
		// Internal demand 6 dominates boundary demand 5: the shard keeps its
		// full 6 and the boundary flow is squeezed to the residual 4.
		p := build(6, 5)
		s := shard.New(baselines.GK{Epsilon: 0.01}, 2)
		a, err := s.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.Stats.BoundaryFirst {
			t.Fatal("internal demand dominates but the boundary solved first")
		}
		if v := p.Check(a); v.Any(1e-9) {
			t.Fatalf("infeasible: %+v", v)
		}
		if got := a.X[0][0]; math.Abs(got-6) > 1e-6 {
			t.Fatalf("internal flow: want 6, got %f", got)
		}
		if got := a.X[1][0]; got > 4+1e-6 || got < 4-0.2 {
			t.Fatalf("boundary flow: want ~4 (residual), got %f", got)
		}
	})
	t.Run("boundary-first", func(t *testing.T) {
		// Boundary demand 100 dominates: it takes the full bottleneck 10 and
		// the internal flow gets the (zero) residual.
		p := build(6, 100)
		s := shard.New(baselines.GK{Epsilon: 0.01}, 2)
		a, err := s.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Stats.BoundaryFirst {
			t.Fatal("boundary demand dominates but the shards solved first")
		}
		if v := p.Check(a); v.Any(1e-9) {
			t.Fatalf("infeasible: %+v", v)
		}
		if got := a.X[1][0]; got < 10-0.2 {
			t.Fatalf("boundary flow: want ~10 (full bottleneck), got %f", got)
		}
		if got := a.X[0][0]; got > 0.3 {
			t.Fatalf("internal flow: want ~0 (residual), got %f", got)
		}
	})
}

// TestShardedEdgeCases covers degenerate inputs: zero-path flows, shard
// counts above the node count, empty problems, and the MLU delegation.
func TestShardedEdgeCases(t *testing.T) {
	t.Run("zero-path flow", func(t *testing.T) {
		p := handProblem()
		p.Flows = append(p.Flows, te.FlowDemand{Src: 0, Dst: 7, DemandMbps: 5})
		if err := p.Finalize(); err != nil {
			t.Fatal(err)
		}
		a, err := shard.New(baselines.GK{Epsilon: 0.05}, 4).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.X[4]) != 0 {
			t.Fatalf("zero-path flow got an allocation row of %d", len(a.X[4]))
		}
	})
	t.Run("k above node count", func(t *testing.T) {
		p := handProblem()
		s := shard.New(baselines.GK{Epsilon: 0.05}, 64)
		a, err := s.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.Stats.Shards != 8 {
			t.Fatalf("want shard count clamped to 8 nodes, got %d", s.Stats.Shards)
		}
		if v := p.Check(a); v.Any(1e-9) {
			t.Fatalf("infeasible: %+v", v)
		}
	})
	t.Run("empty problem", func(t *testing.T) {
		p := &te.Problem{NumNodes: 4}
		if err := p.Finalize(); err != nil {
			t.Fatal(err)
		}
		if _, err := shard.New(baselines.GK{}, 2).Solve(p); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("mlu delegates", func(t *testing.T) {
		p := handProblem()
		inner := baselines.GK{Epsilon: 0.05}
		want, err := inner.Solve(p, solve.WithObjective(solve.MLU))
		if err != nil {
			t.Fatal(err)
		}
		got, err := shard.New(inner, 4).Solve(p, solve.WithObjective(solve.MLU))
		if err != nil {
			t.Fatal(err)
		}
		if !allocEqual(want, got) {
			t.Fatal("MLU solve is not delegated monolithically")
		}
	})
	t.Run("no inner", func(t *testing.T) {
		if _, err := (&shard.Solver{}).Solve(handProblem()); err == nil {
			t.Fatal("want error for missing inner solver")
		}
	})
	t.Run("withshards override", func(t *testing.T) {
		p := handProblem()
		inner := baselines.GK{Epsilon: 0.05}
		s := shard.New(inner, 4)
		a, err := s.Solve(p, solve.WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		if s.Stats.Shards != 2 {
			t.Fatalf("WithShards(2): want 2 shards, got %d", s.Stats.Shards)
		}
		mono, err := inner.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Solve(p, solve.WithShards(1))
		if err != nil {
			t.Fatal(err)
		}
		if !allocEqual(mono, b) {
			t.Fatal("WithShards(1) is not bitwise-identical to monolithic")
		}
		_ = a
	})
}

// TestShardedWarmR1Reuse runs the SaTE model as the inner solver across
// cycles and asserts the per-shard R1 caches hit when the topology holds
// still, and that the warm replay stays bitwise identical to the first solve.
func TestShardedWarmR1Reuse(t *testing.T) {
	p := scenarioProblem(t, constellation.Toy(6, 8), 40)
	m := core.NewModel(core.DefaultConfig())
	s := shard.New(m, 4)

	a, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	hits0, miss0 := s.R1Stats()
	if hits0 != 0 || miss0 == 0 {
		t.Fatalf("first cycle: want 0 hits and some misses, got %d/%d", hits0, miss0)
	}
	b, err := s.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	hits1, miss1 := s.R1Stats()
	if hits1 == 0 {
		t.Fatalf("second cycle over unchanged topology: want R1 hits, got %d/%d", hits1, miss1)
	}
	if miss1 != miss0 {
		t.Fatalf("second cycle recomputed R1: misses %d -> %d", miss0, miss1)
	}
	if !allocEqual(a, b) {
		t.Fatal("warm replay is not bitwise identical")
	}
}
