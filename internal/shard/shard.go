// Package shard promotes TE-problem decomposition to a first-class solver:
// the constellation is split into K contiguous node regions (orbital-plane
// bands — see topology.PartitionNodes), flows whose candidate paths stay
// inside one region are solved as K independent subproblems fanned out on
// the par worker pool, and the remaining cut-crossing flows are reconciled
// in a boundary pass against the residual capacities the regional solves
// left behind.
//
// Unlike the POP baseline (random flow partition over 1/K-scaled capacity
// copies, baselines.POP), the regional subproblems share no links or access
// nodes at all, so they solve against the network's real capacities and the
// combined allocation is feasible by construction; only the boundary pass
// competes for leftovers. Any solver implementing the unified solve surface
// can run per shard — SaTE, the LP references, GK, the heuristics.
//
// Each sub-problem is compacted to the nodes and links its flows' candidate
// paths actually traverse — links no path uses impose no constraints, so
// dropping them is exact, and it makes the per-shard GNN cost scale with the
// shard's traffic footprint instead of the region width (the satellite-side
// message passing of the R2 module is linear in the sub-problem's node
// count).
//
// The solver is also the repo's incremental per-cycle pipeline: each shard
// keeps its sub-problem, its TE-graph storage and its warm-start state
// (core.CycleState) across cycles, and a per-shard fingerprint of the
// compacted link structure (remapped endpoints, kind, capacity bits, node
// count) decides which shards are dirty. Clean shards skip link-index
// construction (te.Problem.RebindFlows instead of Finalize) and — for a
// SaTE inner solver — the R1 module entirely, because their R1 inputs are
// bit-identical to the previous cycle (core.CycleState.SetTopoClean). Under
// the paper's sparse churn (<2% of paths per second) most shards are clean
// most cycles, which is where the latency win at mega-constellation scale
// comes from.
package shard

import (
	"errors"
	"fmt"
	"math"

	"sate/internal/core"
	"sate/internal/obs"
	"sate/internal/par"
	"sate/internal/paths"
	"sate/internal/solve"
	"sate/internal/te"
	"sate/internal/topology"
)

// Inner is the solver contract shards delegate to — structurally identical
// to baselines.Solver, restated here so the package depends only on the
// solve surface.
type Inner interface {
	Name() string
	Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error)
}

// DefaultShards is the shard count used when neither the Solver nor the call
// specifies one.
const DefaultShards = 4

// Stats describes the most recent sharded solve.
type Stats struct {
	Cycles             int  // sharded solves performed through this Solver
	Shards             int  // effective shard count of the last solve
	DirtyShards        int  // shards whose compacted link structure changed last cycle
	InternalFlows      int  // flows solved inside a shard last cycle
	BoundaryFlows      int  // flows reconciled in the boundary pass last cycle
	BoundaryComponents int  // node-disjoint components the boundary pass split into
	BoundaryFirst      bool // last cycle solved the boundary class before the shards
}

// Solver solves TE problems by regional decomposition with boundary
// reconciliation. One Solver owns cross-cycle incremental state and must be
// driven from a single replay loop (its Solve is not reentrant); the
// per-shard sub-solves inside one call run concurrently on the par pool.
//
// The zero value is not usable: Inner must be set. K selects the default
// shard count (DefaultShards if 0); solve.WithShards overrides it per call,
// and k = 1 delegates to Inner untouched (bitwise-identical to a monolithic
// solve). The MLU objective is also delegated monolithically — residual
// stitching has no MLU semantics.
type Solver struct {
	// K is the default shard count.
	K int
	// Inner solves the regional subproblems.
	Inner Inner
	// Boundary solves the reconciliation pass over cut-crossing flows;
	// defaults to Inner.
	Boundary Inner

	// Stats describes the most recent solve (read between cycles).
	Stats Stats

	name string

	// Partition plan, rebuilt when the node universe or shard count moves.
	numNodes int
	planK    int
	bounds   []topology.NodeID
	shards   []*shardState

	// Resolved options the retained per-shard option slices were built for.
	optObj solve.Objective
	optReg *obs.Registry
	optDt  solve.Dtype

	// Boundary-pass state, retained across cycles. The boundary flows are
	// split into node-disjoint components (union-find over candidate-path
	// nodes), each solved as its own compacted subproblem; bpool memoizes
	// per-component warm states by structure fingerprint so components
	// untouched by churn replay their R1 embeddings.
	bsub      te.Problem
	bopts     []solve.Option
	boptsG    []solve.Option // bopts + the current component's warm state
	bback     []int          // boundary flow order -> global flow index
	bgroup    []int32        // boundary flow order -> component id
	bgback    []int          // component sub flow index -> global flow index
	bncomp    int            // components in the last boundary pass
	bpool     []*bcomp
	bpoolIx   map[uint64]int
	ufParent  []int32 // union-find over global nodes, lazily reset via ufSeen
	ufSeen    []int
	ufStamp   int
	gid       []int32 // component id per root node, lazily reset via gidSeen
	gidSeen   []int
	gidStamp  int
	bnodes    []topology.NodeID // component node -> global node
	bnodeAren []topology.NodeID
	bpathAren []paths.Path
	linkSeen  []int // per-global-link stamp for per-subproblem link dedup
	linkStamp int
	blinks    []int // global link indices of the boundary subproblem
	nodeSeen  []int             // per-global-node stamp for shard node compaction
	nodeStamp int               // current nodeSeen generation
	nodeIx    []topology.NodeID // global node -> compacted id, valid where nodeSeen matches
	residCap  []float64
	residUp   []float64
	residDown []float64
}

// bcomp is the memoized warm state of one boundary component, keyed by the
// fingerprint of its compacted structure and capacities. Entries unused for
// a few cycles are evicted — churned components change fingerprint every
// cycle and would otherwise accumulate.
type bcomp struct {
	fp       uint64
	lastUsed int
	warm     core.CycleState
}

// shardState is the cross-cycle state of one region.
type shardState struct {
	lo, hi   topology.NodeID
	fp       uint64 // fingerprint of the compacted link structure (endpoints, kind, cap, node count)
	fpStored uint64 // previous cycle's fingerprint
	haveFP   bool
	dirty    bool

	sub  te.Problem
	warm core.CycleState
	opts []solve.Option

	back      []int             // sub flow index -> global flow index
	linkBack  []int             // sub link index -> global link index
	nodes     []topology.NodeID // compacted node id -> global node, first-seen order
	nodeArena []topology.NodeID // backing store for remapped path node sequences
	pathArena []paths.Path      // backing store for remapped candidate-path slices
}

// New builds a sharded solver around an inner solver.
func New(inner Inner, k int) *Solver { return &Solver{K: k, Inner: inner} }

// Name implements the solver interface; the label carries the inner solver
// ("shard-gk", "shard-sate", ...) so latency histograms stay distinguishable.
func (s *Solver) Name() string {
	if s.name == "" {
		n := "nil"
		if s.Inner != nil {
			n = s.Inner.Name()
		}
		//lint:ignore hotpath-no-alloc the label is built once and cached for every later cycle
		s.name = "shard-" + n
	}
	return s.name
}

// R1Stats sums the R1 warm-cache statistics across every shard's cycle state
// and the boundary component pool. Meaningful when Inner is the SaTE model
// (other solvers never touch the warm state); the ratio hits/(hits+misses)
// is the fraction of sub-solves that replayed cached R1 embeddings.
func (s *Solver) R1Stats() (hits, misses uint64) {
	for _, sh := range s.shards {
		h, m := sh.warm.R1Stats()
		hits += h
		misses += m
	}
	for _, bc := range s.bpool {
		h, m := bc.warm.R1Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// fnv1a mixes one 64-bit word into a running FNV-1a hash.
func fnv1a(h, x uint64) uint64 {
	const prime64 = 1099511628211
	return (h ^ x) * prime64
}

const fnvOffset64 = 14695981039346656037

// errNilInner is hoisted so the misconfiguration check in Solve stays
// allocation-free.
var errNilInner = errors.New("shard: Inner solver not set")

// Solve implements the unified solver surface. See the package comment for
// the decomposition; the phases are instrumented as shard_partition,
// shard_solve and shard_stitch spans when a registry is attached.
//
//sate:hotpath sharded TE solve entry point, one call per cycle
func (s *Solver) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	o := solve.Build(opts...)
	if s.Inner == nil {
		return nil, errNilInner
	}
	k := o.Shards
	if k == 0 {
		k = s.K
	}
	if k <= 0 {
		k = DefaultShards
	}
	if k == 1 || o.Objective == solve.MLU {
		// Monolithic delegation: identical to calling the inner solver
		// directly, including warm state and worker handling.
		//lint:ignore hotpath-no-alloc delegated solve; allocation discipline is the inner solver's contract (core.Solve carries its own hot-root annotation)
		return s.Inner.Solve(p, opts...)
	}
	a := solve.Begin(o, s.Name())
	defer a.End()

	sp := o.Registry.StartSpan(obs.PhaseShardPartition)
	s.plan(p, k, o)
	dirty, internal, boundary, intDem, bndDem := s.partition(p)
	// Adaptive ordering: the dominant demand class solves first against the
	// full capacities, the minority takes the residuals. Regional traffic
	// (the replay fast path) keeps the internal-first order and its warm
	// caches; globally mixed overload flips to boundary-first, where the
	// boundary pass covers most of the problem and the quality loss of
	// greedy ordering collapses.
	boundaryFirst := bndDem > intDem
	sp.End()
	s.bncomp = 0

	alloc := te.NewAllocation(p)
	if boundaryFirst {
		sp = o.Registry.StartSpan(obs.PhaseShardStitch)
		err := s.solveBoundary(p, alloc, false)
		sp.End()
		if err != nil {
			return nil, err
		}
		if internal > 0 {
			s.computeResiduals(p, alloc)
			sp = o.Registry.StartSpan(obs.PhaseShardSolve)
			err = s.runShards(p, alloc, true)
			sp.End()
			if err != nil {
				return nil, err
			}
		}
	} else {
		sp = o.Registry.StartSpan(obs.PhaseShardSolve)
		err := s.runShards(p, alloc, false)
		sp.End()
		if err != nil {
			return nil, err
		}
		if boundary > 0 {
			s.computeResiduals(p, alloc)
			sp = o.Registry.StartSpan(obs.PhaseShardStitch)
			err = s.solveBoundary(p, alloc, true)
			sp.End()
			if err != nil {
				return nil, err
			}
		}
	}
	p.Trim(alloc)

	s.Stats = Stats{
		Cycles:             s.Stats.Cycles + 1,
		Shards:             len(s.shards),
		DirtyShards:        dirty,
		InternalFlows:      internal,
		BoundaryFlows:      boundary,
		BoundaryComponents: s.bncomp,
		BoundaryFirst:      boundaryFirst,
	}
	//lint:ignore hotpath-no-alloc counter handles are interned by the registry after the first cycle; lookups thereafter are map reads
	if o.Registry != nil {
		o.Registry.Counter("sate_shard_cycles_total").Inc()
		o.Registry.Counter("sate_shard_dirty_total").Add(uint64(dirty))
		o.Registry.Counter("sate_shard_boundary_flows_total").Add(uint64(boundary))
	}
	return alloc, nil
}

// plan (re)builds the partition plan and the retained per-shard option
// slices when the node universe, shard count or resolved options moved.
//
//lint:ignore hotpath-no-alloc plan construction runs when the constellation or shard count changes, not per cycle
func (s *Solver) plan(p *te.Problem, k int, o solve.Options) {
	if s.numNodes != p.NumNodes || s.planK != k {
		s.numNodes = p.NumNodes
		s.planK = k
		s.bounds = topology.PartitionNodes(p.NumNodes, k)
		s.shards = make([]*shardState, len(s.bounds)-1)
		for i := range s.shards {
			s.shards[i] = &shardState{lo: s.bounds[i], hi: s.bounds[i+1]}
		}
		s.optReg = nil
		s.optObj = 0
		s.optDt = 0
		s.bopts = nil
	}
	if s.bopts == nil || s.optObj != o.Objective || s.optReg != o.Registry || s.optDt != o.Dtype {
		s.optObj, s.optReg, s.optDt = o.Objective, o.Registry, o.Dtype
		// Inner calls inherit objective, registry and dtype; the worker
		// override was already applied globally by this solve's Begin, and
		// Shards must not propagate (a self-sharding inner would recurse).
		// Each shard gets its own warm state in place of the caller's.
		for _, sh := range s.shards {
			sh.opts = []solve.Option{
				solve.WithObjective(o.Objective),
				solve.WithRegistry(o.Registry),
				solve.WithDtype(o.Dtype),
				solve.WithWarm(&sh.warm),
			}
		}
		// Boundary components pick their memoized warm state per solve, so
		// the retained slice carries everything but the warm option.
		s.bopts = []solve.Option{
			solve.WithObjective(o.Objective),
			solve.WithRegistry(o.Registry),
			solve.WithDtype(o.Dtype),
		}
	}
}

// prevFP/storeFP keep the previous cycle's fingerprint in fpStored so the
// current pass can overwrite fp freely.
func (sh *shardState) prevFP() (uint64, bool) { return sh.fpStored, sh.haveFP }
func (sh *shardState) storeFP()               { sh.fpStored, sh.haveFP = sh.fp, true }

// partition assigns every flow to its region (all candidate paths inside one
// shard's node range) or to the boundary set, then compacts each shard's
// sub-problem to the nodes and links its flows' paths traverse, in
// first-seen (flow, path, hop) order — deterministic by construction. The
// compacted link structure (remapped endpoints, kind, capacity bits, node
// count) is fingerprinted against the previous cycle: a matching fingerprint
// means the shard's R1 inputs are bit-identical, so the shard skips
// link-index construction and the R1 module. Returns the dirty-shard count
// and the per-class flow counts and demand totals (the ordering signal).
func (s *Solver) partition(p *te.Problem) (dirty, internal, boundary int, intDem, bndDem float64) {
	// Pass 1: classify flows. A flow is internal to its source's shard iff
	// every candidate path stays inside the shard's node range.
	for _, sh := range s.shards {
		sh.back = sh.back[:0]
	}
	s.bback = s.bback[:0]
	for fi := range p.Flows {
		f := &p.Flows[fi]
		if len(f.Paths) == 0 {
			continue // nothing any solver could allocate
		}
		si := topology.ShardOfNode(s.bounds, f.Src)
		lo, hi := s.bounds[si], s.bounds[si+1]
		in := true
		for _, path := range f.Paths {
			if !path.WithinRange(lo, hi) {
				in = false
				break
			}
		}
		if !in {
			//lint:ignore hotpath-no-alloc boundary flow list grows to the cut-crossing flow count, reusing retained capacity across cycles
			s.bback = append(s.bback, fi)
			boundary++
			bndDem += f.DemandMbps
			continue
		}
		//lint:ignore hotpath-no-alloc back-map reaches high-water capacity after a few cycles
		s.shards[si].back = append(s.shards[si].back, fi)
		internal++
		intDem += f.DemandMbps
	}
	// Pass 2: per shard, compact nodes and links and rebuild the sub-problem
	// into retained storage. The rebuild is linear in the shard's path data
	// and cheap next to a sub-solve; the fingerprint decides the expensive
	// parts (Finalize vs RebindFlows, R1 recompute vs warm replay).
	s.nodeSeen = growInts(s.nodeSeen, p.NumNodes)
	s.nodeIx = growNodeIDs(s.nodeIx, p.NumNodes)
	s.linkSeen = growInts(s.linkSeen, len(p.Links))
	for _, sh := range s.shards {
		s.nodeStamp++
		s.linkStamp++
		sh.nodes = sh.nodes[:0]
		sh.nodeArena = sh.nodeArena[:0]
		sh.pathArena = sh.pathArena[:0]
		sh.sub.Flows = sh.sub.Flows[:0]
		sh.sub.Links = sh.sub.Links[:0]
		sh.sub.LinkCap = sh.sub.LinkCap[:0]
		sh.linkBack = sh.linkBack[:0]
		fp := uint64(fnvOffset64)
		for _, fi := range sh.back {
			f := &p.Flows[fi]
			ps := len(sh.pathArena)
			for pi, path := range f.Paths {
				ns := len(sh.nodeArena)
				for _, n := range path.Nodes {
					if s.nodeSeen[n] != s.nodeStamp {
						s.nodeSeen[n] = s.nodeStamp
						s.nodeIx[n] = topology.NodeID(len(sh.nodes))
						//lint:ignore hotpath-no-alloc compacted node list reaches high-water capacity after a few cycles
						sh.nodes = append(sh.nodes, n)
					}
					//lint:ignore hotpath-no-alloc node arena reaches high-water capacity after a few cycles
					sh.nodeArena = append(sh.nodeArena, s.nodeIx[n])
				}
				//lint:ignore hotpath-no-alloc path arena reaches high-water capacity after a few cycles
				sh.pathArena = append(sh.pathArena, paths.Path{Nodes: sh.nodeArena[ns:len(sh.nodeArena):len(sh.nodeArena)]})
				for _, li := range p.PathLinks(fi, pi) {
					if s.linkSeen[li] == s.linkStamp {
						continue
					}
					s.linkSeen[li] = s.linkStamp
					l := p.Links[li]
					// Both endpoints sit on the path just remapped, so the
					// compacted ids exist; MakeLink restores canonical order.
					nl := topology.MakeLink(s.nodeIx[l.A], s.nodeIx[l.B], l.Kind)
					//lint:ignore hotpath-no-alloc used-link list reaches high-water capacity after a few cycles
					sh.sub.Links = append(sh.sub.Links, nl)
					//lint:ignore hotpath-no-alloc used-link capacities reach high-water capacity after a few cycles
					sh.sub.LinkCap = append(sh.sub.LinkCap, p.LinkCap[li])
					//lint:ignore hotpath-no-alloc link back-map reaches high-water capacity after a few cycles
					sh.linkBack = append(sh.linkBack, li)
					h := fnv1a(fp, uint64(nl.A)<<32|uint64(uint32(nl.B)))
					h = fnv1a(h, uint64(nl.Kind))
					fp = fnv1a(h, math.Float64bits(p.LinkCap[li]))
				}
			}
			//lint:ignore hotpath-no-alloc sub-flow list reaches high-water capacity after a few cycles
			sh.sub.Flows = append(sh.sub.Flows, te.FlowDemand{
				Src:        s.nodeIx[f.Src],
				Dst:        s.nodeIx[f.Dst],
				DemandMbps: f.DemandMbps,
				Paths:      sh.pathArena[ps:len(sh.pathArena):len(sh.pathArena)],
			})
		}
		// The node count pins the compaction: identical remapped links over a
		// different node universe must not compare clean.
		sh.fp = fnv1a(fp, uint64(len(sh.nodes)))
		prev, had := sh.prevFP()
		sh.dirty = !had || prev != sh.fp
		if sh.dirty {
			dirty++
		}
		sh.storeFP()
		sh.sub.NumNodes = len(sh.nodes)
		if len(p.UpCap) > 0 {
			sh.sub.UpCap = growFloats(sh.sub.UpCap, len(sh.nodes))
			sh.sub.DownCap = growFloats(sh.sub.DownCap, len(sh.nodes))
			for j, n := range sh.nodes {
				sh.sub.UpCap[j] = p.UpCap[n]
				sh.sub.DownCap[j] = p.DownCap[n]
			}
		} else {
			sh.sub.UpCap, sh.sub.DownCap = nil, nil
		}
	}
	return dirty, internal, boundary, intDem, bndDem
}

// runShards performs the regional half of a cycle: it installs each shard's
// capacity view (the problem's own capacities, or the residuals a preceding
// boundary pass left behind), rebuilds the sub-problems' derived state —
// dirty shards pay the full Finalize, clean shards only rebind flows against
// the retained link index — then fans the sub-solves out across the worker
// pool and scatters each sub-allocation into the global rows of its flows.
// Shards write disjoint allocation rows, so the fan-out is race-free and the
// result is bitwise identical for every worker count.
func (s *Solver) runShards(p *te.Problem, alloc *te.Allocation, useResiduals bool) error {
	for i, sh := range s.shards {
		if useResiduals {
			// Residual capacities are traffic-dependent, so the shard's R1
			// inputs move every cycle: no topo-clean fast path in this order.
			// (partition re-installs the problem's own capacities next cycle.)
			for j, li := range sh.linkBack {
				sh.sub.LinkCap[j] = s.residCap[li]
			}
			if len(p.UpCap) > 0 {
				for j, n := range sh.nodes {
					sh.sub.UpCap[j] = s.residUp[n]
					sh.sub.DownCap[j] = s.residDown[n]
				}
			}
			sh.warm.SetTopoClean(false)
		} else {
			sh.warm.SetTopoClean(!sh.dirty)
		}
		var err error
		if sh.dirty {
			//lint:ignore hotpath-no-alloc dirty shards pay the link-index rebuild by contract; the fingerprint keeps this off the clean replay path
			err = sh.sub.Finalize()
		} else {
			err = sh.sub.RebindFlows()
		}
		if err != nil {
			//lint:ignore hotpath-no-alloc error path: a failed rebind aborts the cycle
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	//lint:ignore hotpath-no-alloc pool fan-out captures one closure per cycle; sub-solve allocation discipline is the inner solver's contract, and the scatter copies into preallocated rows
	return par.ForErr(len(s.shards), 1, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			sh := s.shards[i]
			if len(sh.sub.Flows) == 0 {
				continue
			}
			sa, err := s.Inner.Solve(&sh.sub, sh.opts...)
			if err != nil {
				return fmt.Errorf("shard %d (%s): %w", i, s.Inner.Name(), err)
			}
			for sfi, fi := range sh.back {
				copy(alloc.X[fi], sa.X[sfi])
			}
		}
		return nil
	})
}

// computeResiduals records, per link and access node, the capacity left after
// the allocations scattered so far (clamped at zero; +Inf stays +Inf).
func (s *Solver) computeResiduals(p *te.Problem, alloc *te.Allocation) {
	loads := p.LinkLoads(alloc)
	s.residCap = growFloats(s.residCap, len(p.Links))
	for i, c := range p.LinkCap {
		s.residCap[i] = residualOf(c, loads[i])
	}
	if len(p.UpCap) > 0 {
		up, down := p.NodeLoads(alloc)
		s.residUp = growFloats(s.residUp, p.NumNodes)
		s.residDown = growFloats(s.residDown, p.NumNodes)
		for n := 0; n < p.NumNodes; n++ {
			s.residUp[n] = residualOf(p.UpCap[n], up[n])
			s.residDown[n] = residualOf(p.DownCap[n], down[n])
		}
	}
}

// ufFind resolves a node's component root with lazy initialisation and path
// compression; roots are the minimum node id of their component, so the
// structure is deterministic.
func (s *Solver) ufFind(n topology.NodeID) topology.NodeID {
	if s.ufSeen[n] != s.ufStamp {
		s.ufSeen[n] = s.ufStamp
		s.ufParent[n] = int32(n)
		return n
	}
	r := n
	for topology.NodeID(s.ufParent[r]) != r {
		r = topology.NodeID(s.ufParent[r])
		if s.ufSeen[r] != s.ufStamp {
			s.ufSeen[r] = s.ufStamp
			s.ufParent[r] = int32(r)
		}
	}
	for topology.NodeID(s.ufParent[n]) != r {
		n, s.ufParent[n] = topology.NodeID(s.ufParent[n]), int32(r)
	}
	return r
}

func (s *Solver) ufUnion(a, b topology.NodeID) {
	ra, rb := s.ufFind(a), s.ufFind(b)
	if ra == rb {
		return
	}
	if ra < rb {
		s.ufParent[rb] = int32(ra)
	} else {
		s.ufParent[ra] = int32(rb)
	}
}

// solveBoundary reconciles the cut-crossing flows — against the residual
// capacities the regional solves left behind (useResiduals), or against the
// full capacities when the boundary class dominates and solves first. The
// flows are first split into node-disjoint components (union-find over
// their candidate-path nodes), so the per-component solves cannot compete
// for a link or access node and the combined allocation stays feasible by
// construction. Each component is compacted to the nodes and links its
// flows traverse, in first-seen (flow, path, hop) order — deterministic by
// construction — and fingerprinted: a pool keyed by that fingerprint
// memoizes warm state, so components whose structure and capacities held
// still replay their R1 embeddings and only churn-adjacent components pay a
// recompute.
//
//lint:ignore hotpath-no-alloc boundary reconciliation allocates proportionally to cut-crossing flows and churned residuals, reusing retained buffers across cycles
func (s *Solver) solveBoundary(p *te.Problem, alloc *te.Allocation, useResiduals bool) error {
	if len(s.bback) == 0 {
		return nil
	}
	hasAccess := len(p.UpCap) > 0
	solver := s.Boundary
	if solver == nil {
		solver = s.Inner
	}

	// Component discovery: union every candidate-path node of a flow with the
	// flow's source, then label components in first-seen flow order.
	s.ufParent = growInt32s(s.ufParent, p.NumNodes)
	s.ufSeen = growInts(s.ufSeen, p.NumNodes)
	s.ufStamp++
	for _, fi := range s.bback {
		f := &p.Flows[fi]
		for _, path := range f.Paths {
			for _, n := range path.Nodes {
				s.ufUnion(f.Src, n)
			}
		}
	}
	s.gid = growInt32s(s.gid, p.NumNodes)
	s.gidSeen = growInts(s.gidSeen, p.NumNodes)
	s.gidStamp++
	s.bgroup = s.bgroup[:0]
	ncomp := int32(0)
	for _, fi := range s.bback {
		r := s.ufFind(p.Flows[fi].Src)
		if s.gidSeen[r] != s.gidStamp {
			s.gidSeen[r] = s.gidStamp
			s.gid[r] = ncomp
			ncomp++
		}
		s.bgroup = append(s.bgroup, s.gid[r])
	}
	s.bncomp = int(ncomp)

	s.nodeSeen = growInts(s.nodeSeen, p.NumNodes)
	s.nodeIx = growNodeIDs(s.nodeIx, p.NumNodes)
	s.linkSeen = growInts(s.linkSeen, len(p.Links))
	for g := int32(0); g < ncomp; g++ {
		// Compact this component's subproblem and fingerprint its structure
		// and capacities (the same scheme as the regional shards).
		s.nodeStamp++
		s.linkStamp++
		s.bnodes = s.bnodes[:0]
		s.bnodeAren = s.bnodeAren[:0]
		s.bpathAren = s.bpathAren[:0]
		s.bsub.Flows = s.bsub.Flows[:0]
		s.bsub.Links = s.bsub.Links[:0]
		s.bsub.LinkCap = s.bsub.LinkCap[:0]
		s.blinks = s.blinks[:0]
		s.bgback = s.bgback[:0]
		fp := uint64(fnvOffset64)
		for bi, fi := range s.bback {
			if s.bgroup[bi] != g {
				continue
			}
			f := &p.Flows[fi]
			ps := len(s.bpathAren)
			for pi, path := range f.Paths {
				ns := len(s.bnodeAren)
				for _, n := range path.Nodes {
					if s.nodeSeen[n] != s.nodeStamp {
						s.nodeSeen[n] = s.nodeStamp
						s.nodeIx[n] = topology.NodeID(len(s.bnodes))
						s.bnodes = append(s.bnodes, n)
					}
					s.bnodeAren = append(s.bnodeAren, s.nodeIx[n])
				}
				s.bpathAren = append(s.bpathAren, paths.Path{Nodes: s.bnodeAren[ns:len(s.bnodeAren):len(s.bnodeAren)]})
				for _, li := range p.PathLinks(fi, pi) {
					if s.linkSeen[li] == s.linkStamp {
						continue
					}
					s.linkSeen[li] = s.linkStamp
					l := p.Links[li]
					nl := topology.MakeLink(s.nodeIx[l.A], s.nodeIx[l.B], l.Kind)
					c := p.LinkCap[li]
					if useResiduals {
						c = s.residCap[li]
					}
					s.bsub.Links = append(s.bsub.Links, nl)
					s.bsub.LinkCap = append(s.bsub.LinkCap, c)
					s.blinks = append(s.blinks, li)
					h := fnv1a(fp, uint64(nl.A)<<32|uint64(uint32(nl.B)))
					h = fnv1a(h, uint64(nl.Kind))
					fp = fnv1a(h, math.Float64bits(c))
				}
			}
			s.bsub.Flows = append(s.bsub.Flows, te.FlowDemand{
				Src:        s.nodeIx[f.Src],
				Dst:        s.nodeIx[f.Dst],
				DemandMbps: f.DemandMbps,
				Paths:      s.bpathAren[ps:len(s.bpathAren):len(s.bpathAren)],
			})
			s.bgback = append(s.bgback, fi)
		}
		s.bsub.NumNodes = len(s.bnodes)
		fp = fnv1a(fp, uint64(len(s.bnodes)))
		if hasAccess {
			s.bsub.UpCap = growFloats(s.bsub.UpCap, len(s.bnodes))
			s.bsub.DownCap = growFloats(s.bsub.DownCap, len(s.bnodes))
			for bi, n := range s.bnodes {
				if useResiduals {
					s.bsub.UpCap[bi] = s.residUp[n]
					s.bsub.DownCap[bi] = s.residDown[n]
					fp = fnv1a(fp, math.Float64bits(s.residUp[n]))
					fp = fnv1a(fp, math.Float64bits(s.residDown[n]))
				} else {
					s.bsub.UpCap[bi] = p.UpCap[n]
					s.bsub.DownCap[bi] = p.DownCap[n]
					fp = fnv1a(fp, math.Float64bits(p.UpCap[n]))
					fp = fnv1a(fp, math.Float64bits(p.DownCap[n]))
				}
			}
		} else {
			s.bsub.UpCap, s.bsub.DownCap = nil, nil
		}
		if err := s.bsub.Finalize(); err != nil {
			return fmt.Errorf("shard boundary component %d: %w", g, err)
		}
		s.boptsG = append(s.boptsG[:0], s.bopts...)
		s.boptsG = append(s.boptsG, solve.WithWarm(&s.poolGet(fp).warm))
		sa, err := solver.Solve(&s.bsub, s.boptsG...)
		if err != nil {
			return fmt.Errorf("shard boundary component %d (%s): %w", g, solver.Name(), err)
		}
		for sfi, fi := range s.bgback {
			copy(alloc.X[fi], sa.X[sfi])
		}
	}
	s.poolEvict()
	return nil
}

// poolGet returns the memoized warm state for a component fingerprint,
// creating one on first sight. Fingerprint equality means bit-identical
// compacted structure and capacities, so sharing an entry — even across
// symmetric components — keeps the R1 replay exact.
func (s *Solver) poolGet(fp uint64) *bcomp {
	if s.bpoolIx == nil {
		s.bpoolIx = make(map[uint64]int)
	}
	if ix, ok := s.bpoolIx[fp]; ok {
		e := s.bpool[ix]
		e.lastUsed = s.Stats.Cycles
		return e
	}
	e := &bcomp{fp: fp, lastUsed: s.Stats.Cycles}
	s.bpoolIx[fp] = len(s.bpool)
	s.bpool = append(s.bpool, e)
	return e
}

// poolEvict drops component states unused for more than two cycles — a
// churned component changes fingerprint every cycle, so stale entries would
// otherwise accumulate without bound. The sweep walks the slice (never the
// index map), so eviction order is deterministic.
func (s *Solver) poolEvict() {
	keep := s.bpool[:0]
	for _, e := range s.bpool {
		if s.Stats.Cycles-e.lastUsed <= 2 {
			keep = append(keep, e)
		}
	}
	if len(keep) == len(s.bpool) {
		return
	}
	s.bpool = keep
	clear(s.bpoolIx)
	for i, e := range s.bpool {
		s.bpoolIx[e.fp] = i
	}
}

// residualOf returns the capacity left after a load, clamped at zero;
// unconstrained (+Inf) capacities stay unconstrained.
func residualOf(cap, load float64) float64 {
	if math.IsInf(cap, 1) {
		return cap
	}
	r := cap - load
	if r < 0 {
		return 0
	}
	return r
}

// growFloats returns a slice of exactly n elements, reusing capacity.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	//lint:ignore hotpath-no-alloc growth slow path; steady-state cycles hit the capacity check above
	return make([]float64, n)
}

func growInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	//lint:ignore hotpath-no-alloc growth slow path; steady-state cycles hit the capacity check above
	return make([]int, n)
}

func growNodeIDs(s []topology.NodeID, n int) []topology.NodeID {
	if cap(s) >= n {
		return s[:n]
	}
	//lint:ignore hotpath-no-alloc growth slow path; steady-state cycles hit the capacity check above
	return make([]topology.NodeID, n)
}

func growInt32s(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}
