package orbit

import "math"

// Orbit describes a circular orbit by its geometry. All satellites in one
// Walker-style shell share AltitudeKm and InclinationRad and differ only in
// RAAN and initial argument of latitude.
type Orbit struct {
	AltitudeKm     float64 // altitude above the spherical Earth surface
	InclinationRad float64 // orbital inclination
	RAANRad        float64 // right ascension of the ascending node
	ArgLatRad      float64 // argument of latitude at epoch (u0)
}

// SemiMajorAxisKm returns the orbital radius (circular orbit).
func (o Orbit) SemiMajorAxisKm() float64 { return EarthRadiusKm + o.AltitudeKm }

// MeanMotionRadS returns the orbital angular rate n = sqrt(mu/a^3).
func (o Orbit) MeanMotionRadS() float64 {
	a := o.SemiMajorAxisKm()
	return math.Sqrt(EarthMuKm3S2 / (a * a * a))
}

// PeriodSec returns the orbital period.
func (o Orbit) PeriodSec() float64 { return 2 * math.Pi / o.MeanMotionRadS() }

// PositionECI returns the inertial-frame position at t seconds after epoch.
//
// For a circular orbit the argument of latitude advances linearly:
// u(t) = u0 + n t. The in-plane position is rotated by inclination about the
// line of nodes and by RAAN about the Earth's axis.
func (o Orbit) PositionECI(tSec float64) Vec3 {
	a := o.SemiMajorAxisKm()
	u := o.ArgLatRad + o.MeanMotionRadS()*tSec
	cu, su := math.Cos(u), math.Sin(u)
	ci, si := math.Cos(o.InclinationRad), math.Sin(o.InclinationRad)
	cO, sO := math.Cos(o.RAANRad), math.Sin(o.RAANRad)
	// Perifocal (in-plane) position for a circular orbit: (a cos u, a sin u, 0),
	// then rotate by inclination about x, then by RAAN about z.
	x := a * (cO*cu - sO*su*ci)
	y := a * (sO*cu + cO*su*ci)
	z := a * (su * si)
	return Vec3{x, y, z}
}

// PositionECEF returns the Earth-fixed position at t seconds after epoch.
func (o Orbit) PositionECEF(tSec float64) Vec3 {
	return ECIToECEF(o.PositionECI(tSec), tSec)
}

// SubSatellitePoint returns the geodetic latitude and longitude (radians) of
// the point directly beneath the satellite at time t.
func (o Orbit) SubSatellitePoint(tSec float64) (latRad, lonRad float64) {
	lat, lon, _ := ECEFToGeodetic(o.PositionECEF(tSec))
	return lat, lon
}

// LatitudeRad returns the geodetic latitude (radians) at time t. Cheaper than
// SubSatellitePoint when longitude is not needed, and exact for the spherical
// Earth model: latitude is frame-independent under rotation about the z axis.
func (o Orbit) LatitudeRad(tSec float64) float64 {
	p := o.PositionECI(tSec)
	r := p.Norm()
	return math.Asin(p.Z / r)
}

// J2 is Earth's dominant zonal harmonic coefficient; it causes secular drift
// of the ascending node (RAAN) and argument of latitude for inclined LEO
// orbits — about -5 degrees/day of nodal regression for a Starlink shell.
const J2 = 1.08262668e-3

// J2NodalRegressionRadS returns the secular RAAN drift rate dOmega/dt for a
// circular orbit: -(3/2) n J2 (Re/a)^2 cos(i).
func (o Orbit) J2NodalRegressionRadS() float64 {
	a := o.SemiMajorAxisKm()
	ratio := EarthRadiusKm / a
	return -1.5 * o.MeanMotionRadS() * J2 * ratio * ratio * math.Cos(o.InclinationRad)
}

// J2ArgLatDriftRadS returns the secular drift of the argument of latitude
// beyond the mean motion for a circular orbit — the sum of the standard
// argument-of-perigee and mean-anomaly J2 rates at e = 0:
//
//	du/dt - n = (3/4) n J2 (Re/a)^2 [(4 - 5 sin^2 i) + (2 - 3 sin^2 i)]
func (o Orbit) J2ArgLatDriftRadS() float64 {
	a := o.SemiMajorAxisKm()
	n := o.MeanMotionRadS()
	k := 0.75 * n * J2 * (EarthRadiusKm / a) * (EarthRadiusKm / a)
	s2 := math.Sin(o.InclinationRad) * math.Sin(o.InclinationRad)
	return k * ((4 - 5*s2) + (2 - 3*s2))
}

// PositionECIJ2 returns the inertial position at time t including secular J2
// drift of RAAN and argument of latitude. For the sub-hour horizons of the
// TE experiments the difference from PositionECI is negligible; over hours
// to days the nodal regression dominates real constellation evolution.
func (o Orbit) PositionECIJ2(tSec float64) Vec3 {
	drifted := o
	drifted.RAANRad = o.RAANRad + o.J2NodalRegressionRadS()*tSec
	drifted.ArgLatRad = o.ArgLatRad + o.J2ArgLatDriftRadS()*tSec
	return drifted.PositionECI(tSec)
}
