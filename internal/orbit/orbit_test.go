package orbit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVec3Basics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if got := a.Add(b); got != (Vec3{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Dot(b); got != -4+10+1.5 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{math.Mod(ax, 100), math.Mod(ay, 100), math.Mod(az, 100)}
		b := Vec3{math.Mod(bx, 100), math.Mod(by, 100), math.Mod(bz, 100)}
		c := a.Cross(b)
		// Cross product is orthogonal to both operands.
		return almostEqual(c.Dot(a), 0, 1e-6*(1+a.Norm()*b.Norm())) &&
			almostEqual(c.Dot(b), 0, 1e-6*(1+a.Norm()*b.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	v := Vec3{3, 4, 0}
	n := v.Normalize()
	if !almostEqual(n.Norm(), 1, 1e-12) {
		t.Errorf("norm = %v", n.Norm())
	}
	zero := Vec3{}
	if zero.Normalize() != zero {
		t.Error("zero vector should normalize to itself")
	}
}

func TestGeodeticRoundTrip(t *testing.T) {
	f := func(latSeed, lonSeed, altSeed float64) bool {
		lat := math.Mod(latSeed, 1.4) // stay away from the poles
		lon := math.Mod(lonSeed, math.Pi)
		alt := 200 + math.Abs(math.Mod(altSeed, 1500))
		p := GeodeticToECEF(lat, lon, alt)
		lat2, lon2, alt2 := ECEFToGeodetic(p)
		return almostEqual(lat, lat2, 1e-9) && almostEqual(lon, lon2, 1e-9) && almostEqual(alt, alt2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECEFToGeodeticOrigin(t *testing.T) {
	lat, lon, alt := ECEFToGeodetic(Vec3{})
	if lat != 0 || lon != 0 || alt != -EarthRadiusKm {
		t.Errorf("origin: %v %v %v", lat, lon, alt)
	}
}

func TestECIToECEFPreservesRadius(t *testing.T) {
	p := Vec3{7000, 100, -2500}
	for _, tm := range []float64{0, 10, 1000, 86400} {
		q := ECIToECEF(p, tm)
		if !almostEqual(p.Norm(), q.Norm(), 1e-9) {
			t.Errorf("radius changed at t=%v: %v vs %v", tm, p.Norm(), q.Norm())
		}
		if !almostEqual(p.Z, q.Z, 1e-12) {
			t.Errorf("z changed at t=%v", tm)
		}
	}
}

func TestECIToECEFZeroTimeIdentity(t *testing.T) {
	p := Vec3{1234, -567, 89}
	if q := ECIToECEF(p, 0); q != p {
		t.Errorf("identity at t=0 violated: %v", q)
	}
}

func TestElevationAngle(t *testing.T) {
	site := GeodeticToECEF(0, 0, 0)
	// Satellite directly overhead.
	over := GeodeticToECEF(0, 0, 550)
	if e := ElevationAngle(site, over); !almostEqual(e, math.Pi/2, 1e-6) {
		t.Errorf("overhead elevation = %v", Rad2Deg(e))
	}
	// Satellite on the opposite side of the Earth: far below horizon.
	anti := GeodeticToECEF(0, math.Pi, 550)
	if e := ElevationAngle(site, anti); e > 0 {
		t.Errorf("antipodal elevation = %v should be negative", Rad2Deg(e))
	}
	// A satellite at the same altitude but 5 degrees away in longitude is
	// visible at moderate elevation.
	off := GeodeticToECEF(0, Deg(5), 550)
	e := ElevationAngle(site, off)
	if e <= 0 || e >= math.Pi/2 {
		t.Errorf("offset elevation = %v out of range", Rad2Deg(e))
	}
}

func TestHasLineOfSight(t *testing.T) {
	a := GeodeticToECEF(0, 0, 550)
	b := GeodeticToECEF(0, Deg(10), 550)
	if !HasLineOfSight(a, b, 0) {
		t.Error("nearby satellites should see each other")
	}
	anti := GeodeticToECEF(0, math.Pi, 550)
	if HasLineOfSight(a, anti, 0) {
		t.Error("antipodal satellites must be blocked by the Earth")
	}
	// Degenerate: same point, above surface.
	if !HasLineOfSight(a, a, 0) {
		t.Error("a point above the surface sees itself")
	}
}

func TestOrbitPeriodLEO(t *testing.T) {
	o := Orbit{AltitudeKm: 550}
	p := o.PeriodSec()
	// A 550 km LEO orbit takes roughly 95-96 minutes.
	if p < 90*60 || p > 100*60 {
		t.Errorf("period = %v min", p/60)
	}
}

func TestOrbitRadiusConstant(t *testing.T) {
	o := Orbit{AltitudeKm: 550, InclinationRad: Deg(53.2), RAANRad: 1.1, ArgLatRad: 0.3}
	want := o.SemiMajorAxisKm()
	for i := 0; i < 50; i++ {
		tm := float64(i) * 137.0
		if r := o.PositionECI(tm).Norm(); !almostEqual(r, want, 1e-6) {
			t.Fatalf("radius at t=%v: %v want %v", tm, r, want)
		}
	}
}

func TestOrbitReturnsAfterPeriod(t *testing.T) {
	o := Orbit{AltitudeKm: 550, InclinationRad: Deg(53.2), RAANRad: 0.7, ArgLatRad: 2.2}
	p0 := o.PositionECI(0)
	p1 := o.PositionECI(o.PeriodSec())
	if p0.Distance(p1) > 1e-6 {
		t.Errorf("orbit not periodic in ECI: drift %v km", p0.Distance(p1))
	}
}

func TestOrbitMaxLatitudeEqualsInclination(t *testing.T) {
	inc := Deg(53.2)
	o := Orbit{AltitudeKm: 550, InclinationRad: inc}
	maxLat := 0.0
	period := o.PeriodSec()
	for i := 0; i < 2000; i++ {
		lat := math.Abs(o.LatitudeRad(period * float64(i) / 2000))
		if lat > maxLat {
			maxLat = lat
		}
	}
	if !almostEqual(maxLat, inc, 1e-3) {
		t.Errorf("max |lat| = %v deg, want ~%v deg", Rad2Deg(maxLat), Rad2Deg(inc))
	}
}

func TestLatitudeMatchesSubSatellitePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		o := Orbit{
			AltitudeKm:     400 + rng.Float64()*800,
			InclinationRad: rng.Float64() * math.Pi / 2,
			RAANRad:        rng.Float64() * 2 * math.Pi,
			ArgLatRad:      rng.Float64() * 2 * math.Pi,
		}
		tm := rng.Float64() * 7200
		lat1 := o.LatitudeRad(tm)
		lat2, _ := o.SubSatellitePoint(tm)
		if !almostEqual(lat1, lat2, 1e-9) {
			t.Fatalf("lat mismatch: %v vs %v", lat1, lat2)
		}
	}
}

func TestPropagationDelay(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{SpeedOfLightKmS, 0, 0}
	if d := PropagationDelaySec(a, b); !almostEqual(d, 1, 1e-12) {
		t.Errorf("delay = %v want 1s", d)
	}
}

func TestDegRoundTrip(t *testing.T) {
	for _, d := range []float64{0, 45, 90, -30, 360} {
		if got := Rad2Deg(Deg(d)); !almostEqual(got, d, 1e-12) {
			t.Errorf("deg round trip %v -> %v", d, got)
		}
	}
}

func TestJ2NodalRegressionStarlinkShell(t *testing.T) {
	// A 550 km, 53-degree orbit regresses about -5 degrees/day.
	o := Orbit{AltitudeKm: 550, InclinationRad: Deg(53)}
	degPerDay := Rad2Deg(o.J2NodalRegressionRadS() * 86400)
	if degPerDay > -4 || degPerDay < -6 {
		t.Errorf("nodal regression = %.2f deg/day, want about -5", degPerDay)
	}
	// Polar orbits barely regress; retrograde sun-synchronous-like orbits
	// regress positively.
	polar := Orbit{AltitudeKm: 550, InclinationRad: Deg(90)}
	if d := polar.J2NodalRegressionRadS(); math.Abs(d) > 1e-12 {
		t.Errorf("polar regression = %v, want 0", d)
	}
	sso := Orbit{AltitudeKm: 560, InclinationRad: Deg(97.6)}
	if sso.J2NodalRegressionRadS() <= 0 {
		t.Error("retrograde orbit should precess eastward (positive)")
	}
}

func TestJ2PositionDrift(t *testing.T) {
	o := Orbit{AltitudeKm: 550, InclinationRad: Deg(53.2), RAANRad: 1, ArgLatRad: 0.5}
	// Short horizon: J2 and two-body nearly coincide.
	short := o.PositionECI(60).Distance(o.PositionECIJ2(60))
	if short > 5 {
		t.Errorf("J2 drift after 60 s = %.2f km, want small", short)
	}
	// One day: nodal regression moves the orbit plane by ~5 degrees -> the
	// instantaneous position differs by hundreds of km.
	day := o.PositionECI(86400).Distance(o.PositionECIJ2(86400))
	if day < 100 {
		t.Errorf("J2 drift after one day = %.0f km, want substantial", day)
	}
	// Radius is preserved (circular orbit).
	if r := o.PositionECIJ2(86400).Norm(); math.Abs(r-o.SemiMajorAxisKm()) > 1e-6 {
		t.Errorf("J2 position radius %v", r)
	}
}
