// Package orbit provides the geometric and orbital-mechanics substrate used
// throughout the SaTE reproduction: Earth constants, ECI/ECEF coordinate
// frames, circular Keplerian propagation of satellite positions, geodetic
// conversions, and visibility/elevation computations between satellites and
// ground sites.
//
// The paper emulates Starlink trajectories with poliastro; the shells involved
// are near-circular, so a circular two-body propagator reproduces the position
// dynamics that drive topology churn (see DESIGN.md, substitution table).
package orbit

import "math"

// Vec3 is a point or direction in a 3-D Cartesian frame, in kilometres.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Distance returns the Euclidean distance between v and w in kilometres.
func (v Vec3) Distance(w Vec3) float64 { return v.Sub(w).Norm() }
