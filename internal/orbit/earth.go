package orbit

import "math"

// Physical constants. Distances are in kilometres, times in seconds, angles in
// radians unless a name says otherwise.
const (
	// EarthRadiusKm is the mean spherical Earth radius. A spherical Earth is
	// sufficient for link-geometry purposes (the paper's visibility rules are
	// elevation-angle and range thresholds, both insensitive to oblateness at
	// the precision that matters for topology churn).
	EarthRadiusKm = 6371.0

	// EarthMuKm3S2 is the standard gravitational parameter GM of Earth.
	EarthMuKm3S2 = 398600.4418

	// EarthRotationRadS is the sidereal rotation rate of Earth.
	EarthRotationRadS = 7.2921159e-5

	// SpeedOfLightKmS is the propagation speed used for delay computations
	// (free-space lasers and RF both travel at c).
	SpeedOfLightKmS = 299792.458
)

// Deg converts degrees to radians.
func Deg(d float64) float64 { return d * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(r float64) float64 { return r * 180 / math.Pi }

// GeodeticToECEF converts a latitude/longitude (radians) and altitude (km
// above the spherical Earth surface) to Earth-centred Earth-fixed Cartesian
// coordinates.
func GeodeticToECEF(latRad, lonRad, altKm float64) Vec3 {
	r := EarthRadiusKm + altKm
	cl := math.Cos(latRad)
	return Vec3{
		X: r * cl * math.Cos(lonRad),
		Y: r * cl * math.Sin(lonRad),
		Z: r * math.Sin(latRad),
	}
}

// ECEFToGeodetic converts an ECEF position to latitude (rad), longitude (rad)
// and altitude above the spherical Earth surface (km).
func ECEFToGeodetic(p Vec3) (latRad, lonRad, altKm float64) {
	r := p.Norm()
	if r == 0 {
		return 0, 0, -EarthRadiusKm
	}
	latRad = math.Asin(p.Z / r)
	lonRad = math.Atan2(p.Y, p.X)
	altKm = r - EarthRadiusKm
	return latRad, lonRad, altKm
}

// ECIToECEF rotates an inertial-frame position into the Earth-fixed frame at
// time t seconds after the reference epoch (at which the frames coincide).
func ECIToECEF(p Vec3, tSec float64) Vec3 {
	theta := EarthRotationRadS * tSec
	c, s := math.Cos(theta), math.Sin(theta)
	// Earth rotates eastward; ECEF = Rz(-theta) * ECI.
	return Vec3{
		X: c*p.X + s*p.Y,
		Y: -s*p.X + c*p.Y,
		Z: p.Z,
	}
}

// ElevationAngle returns the elevation (radians) of a target position as seen
// from a ground site, both given in the same Earth-fixed frame. The site is
// assumed to be at or near the Earth surface; the local vertical is the site's
// radial direction. A negative elevation means the target is below the
// horizon.
func ElevationAngle(site, target Vec3) float64 {
	up := site.Normalize()
	los := target.Sub(site)
	d := los.Norm()
	if d == 0 {
		return math.Pi / 2
	}
	s := los.Dot(up) / d
	s = math.Max(-1, math.Min(1, s))
	return math.Asin(s)
}

// HasLineOfSight reports whether the straight segment between two positions
// clears the Earth sphere (with an optional extra clearance in km, e.g. for
// atmospheric grazing). Positions are in any common Earth-centred frame.
func HasLineOfSight(a, b Vec3, clearanceKm float64) bool {
	// Minimum distance from Earth's centre to segment a-b.
	ab := b.Sub(a)
	den := ab.Dot(ab)
	var closest Vec3
	if den == 0 {
		closest = a
	} else {
		t := -a.Dot(ab) / den
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		closest = a.Add(ab.Scale(t))
	}
	return closest.Norm() >= EarthRadiusKm+clearanceKm
}

// PropagationDelaySec returns the speed-of-light propagation delay between two
// positions in seconds.
func PropagationDelaySec(a, b Vec3) float64 {
	return a.Distance(b) / SpeedOfLightKmS
}
