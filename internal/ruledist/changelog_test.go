package ruledist

import (
	"reflect"
	"sort"
	"testing"

	"sate/internal/rules"
	"sate/internal/topology"
)

// mkRules builds a rule set from (node, src, dst, label, next, rate) tuples,
// sorted per table exactly as rules.Compile would emit them.
func mkRules(t *testing.T, entries ...[6]int) *rules.RuleSet {
	t.Helper()
	rs := &rules.RuleSet{Tables: make(map[topology.NodeID]*rules.Table)}
	for _, e := range entries {
		node := topology.NodeID(e[0])
		tbl := rs.Tables[node]
		if tbl == nil {
			tbl = &rules.Table{Node: node}
			rs.Tables[node] = tbl
		}
		tbl.Rules = append(tbl.Rules, rules.Rule{
			Flow:     rules.FlowKey{Src: topology.NodeID(e[1]), Dst: topology.NodeID(e[2])},
			Label:    e[3],
			Next:     topology.NodeID(e[4]),
			RateMbps: float64(e[5]),
		})
	}
	for _, tbl := range rs.Tables {
		sort.Slice(tbl.Rules, func(i, j int) bool {
			return idLess(ruleID(tbl.Rules[i]), ruleID(tbl.Rules[j]))
		})
	}
	return rs
}

func TestDiffApplyRoundTrip(t *testing.T) {
	old := mkRules(t,
		[6]int{1, 10, 20, 0, 2, 100},
		[6]int{1, 10, 21, 1, 3, 50},
		[6]int{2, 10, 20, 0, 4, 100},
	)
	new := mkRules(t,
		[6]int{1, 10, 20, 0, 2, 75}, // rate change
		[6]int{1, 11, 20, 0, 5, 30}, // new rule, 10/21 removed
		[6]int{3, 12, 20, 0, 6, 10}, // new table, table 2 dropped
	)
	d := Diff(old, new)
	if d.Empty() {
		t.Fatal("diff of different rule sets is empty")
	}
	got := Apply(old, d)
	if !reflect.DeepEqual(got, new) {
		t.Fatalf("apply(old, diff) = %+v, want %+v", got, new)
	}
	// Self-diff is empty; applying it is a no-op.
	if d := Diff(new, new); !d.Empty() {
		t.Fatalf("self-diff not empty: %+v", d)
	}
	// From nil (version 0) the diff is all upserts.
	d0 := Diff(nil, new)
	if !reflect.DeepEqual(Apply(nil, d0), new) {
		t.Fatal("apply(nil, diff(nil, new)) != new")
	}
	for _, nd := range d0.Nodes {
		if len(nd.Removes) != 0 {
			t.Fatalf("diff from empty has removes: %+v", nd)
		}
	}
}

func TestDiffDeterministicOrder(t *testing.T) {
	new := mkRules(t,
		[6]int{5, 1, 2, 0, 6, 1},
		[6]int{3, 1, 2, 0, 4, 1},
		[6]int{9, 1, 2, 0, 1, 1},
	)
	for i := 0; i < 10; i++ {
		d := Diff(nil, new)
		want := []topology.NodeID{3, 5, 9}
		var got []topology.NodeID
		for _, nd := range d.Nodes {
			got = append(got, nd.Node)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("node order %v, want %v", got, want)
		}
	}
}

func TestDeltaNodeLookup(t *testing.T) {
	d := Diff(nil, mkRules(t,
		[6]int{2, 1, 9, 0, 3, 1},
		[6]int{7, 1, 9, 0, 8, 1},
	))
	if nd, ok := d.Node(7); !ok || nd.Node != 7 {
		t.Fatalf("Node(7) = %+v, %v", nd, ok)
	}
	if _, ok := d.Node(5); ok {
		t.Fatal("Node(5) found in delta that never touched node 5")
	}
}

func TestChangelogCatchUpFromEveryVersion(t *testing.T) {
	c := NewChangelog(0)
	if c.Latest() != 0 {
		t.Fatalf("fresh changelog latest = %d", c.Latest())
	}
	versions := []*rules.RuleSet{
		mkRules(t, [6]int{1, 10, 20, 0, 2, 100}),
		mkRules(t, [6]int{1, 10, 20, 0, 2, 80}, [6]int{2, 10, 20, 0, 3, 80}),
		mkRules(t, [6]int{2, 10, 20, 0, 3, 80}),
		mkRules(t, [6]int{2, 10, 20, 0, 3, 80}, [6]int{4, 11, 21, 1, 5, 9}),
	}
	for i, rs := range versions {
		if v := c.Append(rs); v != uint64(i+1) {
			t.Fatalf("Append #%d returned version %d", i+1, v)
		}
	}
	latest := versions[len(versions)-1]
	if !reflect.DeepEqual(c.Full(), latest) {
		t.Fatal("Full() is not the latest rule set")
	}
	// A client at any since-version must converge bit-identically.
	for since := uint64(0); since <= c.Latest(); since++ {
		cu := c.Since(since)
		if cu.Latest != c.Latest() {
			t.Fatalf("since=%d: latest %d", since, cu.Latest)
		}
		var got *rules.RuleSet
		if cu.FullSync {
			got = cu.Full
		} else {
			if since == c.Latest() && !cu.UpToDate() {
				t.Fatalf("since=latest not up to date: %+v", cu)
			}
			if since > 0 {
				got = versions[since-1]
			}
			at := since
			for _, d := range cu.Deltas {
				if d.Seq != at+1 {
					t.Fatalf("since=%d: delta seq %d after version %d", since, d.Seq, at)
				}
				at = d.Seq
				got = Apply(got, d)
			}
			if at != c.Latest() {
				t.Fatalf("since=%d: deltas stop at %d", since, at)
			}
		}
		if got == nil {
			got = &rules.RuleSet{Tables: map[topology.NodeID]*rules.Table{}}
		}
		want := latest
		if len(want.Tables) == 0 {
			want = &rules.RuleSet{Tables: map[topology.NodeID]*rules.Table{}}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("catch-up from %d did not converge: %+v != %+v", cu.Since, got, want)
		}
	}
}

func TestChangelogCompaction(t *testing.T) {
	c := NewChangelog(2)
	for i := 1; i <= 5; i++ {
		c.Append(mkRules(t, [6]int{1, 10, 20, 0, 2, i}))
	}
	if c.Latest() != 5 {
		t.Fatalf("latest = %d", c.Latest())
	}
	if c.Floor() != 3 {
		t.Fatalf("floor = %d, want 3 (only deltas 4,5 retained)", c.Floor())
	}
	// Behind the window: full resync carrying the latest rules.
	cu := c.Since(1)
	if !cu.FullSync || cu.Full == nil {
		t.Fatalf("since=1 should full-sync: %+v", cu)
	}
	if !reflect.DeepEqual(cu.Full, c.Full()) {
		t.Fatal("full sync payload is not the latest rule set")
	}
	// Inside the window: deltas only.
	cu = c.Since(3)
	if cu.FullSync || len(cu.Deltas) != 2 {
		t.Fatalf("since=3: %+v", cu)
	}
	// Ahead of latest (restarted server): treated as up to date.
	cu = c.Since(9)
	if cu.FullSync || len(cu.Deltas) != 0 || !cu.UpToDate() {
		t.Fatalf("since=9: %+v", cu)
	}
}

// TestSinceCompactionBoundary pins the exact off-by-one-prone boundary of
// Since against compaction. With max=3 and 6 appends the retained deltas are
// versions 4..6 and floor is 3 — the floor version itself is the OLDEST
// version deltas can still serve a catch-up FROM (its successor delta d4 is
// retained), while floor-1 must full-sync (d3 was compacted; serving
// deltas[0:] there would silently apply d4 onto a version-2 base). Getting
// either edge wrong is silent: a premature full sync still converges, and a
// delta from a compacted base converges on these small tables too — only the
// seq/full-sync shape distinguishes them, so that is what this test checks.
func TestSinceCompactionBoundary(t *testing.T) {
	const max, appends = 3, 6
	c := NewChangelog(max)
	// Keep every published version so delta catch-ups can be replayed from
	// the exact base the client would hold.
	published := []*rules.RuleSet{nil} // index = version; version 0 is empty
	for i := 1; i <= appends; i++ {
		rs := mkRules(t, [6]int{1, 10, 20, 0, 2, i}, [6]int{i, 10, 20, 0, 2, i})
		c.Append(rs)
		published = append(published, rs)
	}
	if c.Latest() != appends {
		t.Fatalf("latest = %d, want %d", c.Latest(), appends)
	}
	if want := uint64(appends - max); c.Floor() != want {
		t.Fatalf("floor = %d, want %d (deltas %d..%d retained)", c.Floor(), want, want+1, appends)
	}
	cases := []struct {
		name      string
		since     uint64
		fullSync  bool
		deltaSeqs []uint64
		upToDate  bool
	}{
		{name: "since=0 (empty client, window compacted)", since: 0, fullSync: true},
		{name: "since=floor-1 (one below boundary)", since: 2, fullSync: true},
		{name: "since=floor (exact boundary: d4 retained)", since: 3, deltaSeqs: []uint64{4, 5, 6}},
		{name: "since=floor+1 (oldest retained delta applied)", since: 4, deltaSeqs: []uint64{5, 6}},
		{name: "since=latest-1", since: 5, deltaSeqs: []uint64{6}},
		{name: "since=latest", since: 6, upToDate: true},
		{name: "since=latest+1 (restarted server)", since: 7, upToDate: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cu := c.Since(tc.since)
			if cu.Latest != c.Latest() || cu.Since != tc.since {
				t.Fatalf("echoed versions: %+v", cu)
			}
			if cu.UpToDate() != tc.upToDate {
				t.Fatalf("UpToDate() = %v, want %v", cu.UpToDate(), tc.upToDate)
			}
			if cu.FullSync != tc.fullSync {
				t.Fatalf("FullSync = %v, want %v", cu.FullSync, tc.fullSync)
			}
			var seqs []uint64
			for _, d := range cu.Deltas {
				seqs = append(seqs, d.Seq)
			}
			if !reflect.DeepEqual(seqs, tc.deltaSeqs) {
				t.Fatalf("delta seqs %v, want %v", seqs, tc.deltaSeqs)
			}
			// Converge the client and require bit-identity with the latest
			// published rule set, from the exact base version it holds.
			var got *rules.RuleSet
			switch {
			case tc.fullSync:
				got = cu.Full
			case tc.upToDate:
				return
			default:
				got = published[tc.since]
				for _, d := range cu.Deltas {
					got = Apply(got, d)
				}
			}
			if !reflect.DeepEqual(got, published[appends]) {
				t.Fatalf("catch-up from %d did not reproduce the latest rule set", tc.since)
			}
		})
	}
}

func TestChangelogSinceZeroAllocs(t *testing.T) {
	c := NewChangelog(4)
	for i := 1; i <= 6; i++ {
		c.Append(mkRules(t, [6]int{1, 10, 20, 0, 2, i}))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		cu := c.Since(4)
		if len(cu.Deltas) != 2 {
			panic("wrong window")
		}
		_ = c.Latest()
	})
	if allocs != 0 {
		t.Fatalf("Since allocated %v times per run", allocs)
	}
}
