package ruledist

import (
	"container/heap"
	"math"

	"sate/internal/groundnet"
	"sate/internal/orbit"
	"sate/internal/te"
	"sate/internal/topology"
)

// HoustonSite is the control-center location assumed in Appendix D.
var HoustonSite = groundnet.Site{LatDeg: 29.76, LonDeg: -95.37}

// RuleDistributionDelays computes, for every satellite, the propagation delay
// of traffic rules from the control center (Appendix D): the control center
// reaches directly visible satellites over a direct link and all others over
// shortest light-time ISL paths. Returns per-satellite delays in seconds
// (math.Inf for unreachable satellites).
func RuleDistributionDelays(snap *topology.Snapshot, center groundnet.Site, minElevRad float64) []float64 {
	n := snap.NumNodes
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	cpos := center.ECEF()

	pq := &delayHeap{}
	// Seed: satellites directly visible from the control center.
	for id := 0; id < snap.NumSats; id++ {
		if orbit.ElevationAngle(cpos, snap.Pos[id]) >= minElevRad {
			d := orbit.PropagationDelaySec(cpos, snap.Pos[id])
			if d < dist[id] {
				dist[id] = d
				heap.Push(pq, delayEntry{node: topology.NodeID(id), delay: d})
			}
		}
	}
	// Dijkstra over ISLs with light-time weights. Relaxation is restricted to
	// satellite nodes: Appendix D distributes rules over ISL paths only, so a
	// rule push must never shortcut through a ground relay's bent-pipe links
	// (in bent-pipe mode the adjacency also contains satellite–ground edges,
	// and a gateway sitting between two satellite clusters would otherwise
	// splice them into one artificially fast rule-distribution domain).
	adj := snap.Adjacency()
	sats := topology.NodeID(snap.NumSats)
	for pq.Len() > 0 {
		e := heap.Pop(pq).(delayEntry)
		if e.delay > dist[e.node] {
			continue
		}
		for _, nb := range adj[e.node] {
			if nb >= sats {
				continue // ground relay: not part of the rule-distribution ISL mesh
			}
			d := e.delay + orbit.PropagationDelaySec(snap.Pos[e.node], snap.Pos[nb])
			if d < dist[nb] {
				dist[nb] = d
				heap.Push(pq, delayEntry{node: nb, delay: d})
			}
		}
	}
	return dist[:snap.NumSats]
}

type delayEntry struct {
	node  topology.NodeID
	delay float64
}

type delayHeap []delayEntry

func (h delayHeap) Len() int            { return len(h) }
func (h delayHeap) Less(i, j int) bool  { return h[i].delay < h[j].delay }
func (h delayHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x interface{}) { *h = append(*h, x.(delayEntry)) }
func (h *delayHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// DelayStats summarises a delay distribution.
type DelayStats struct {
	MinSec, MaxSec, MeanSec float64
	Reachable               int
}

// SummarizeDelays computes min/max/mean over finite delays.
func SummarizeDelays(delays []float64) DelayStats {
	st := DelayStats{MinSec: math.Inf(1)}
	var sum float64
	for _, d := range delays {
		if math.IsInf(d, 1) {
			continue
		}
		st.Reachable++
		sum += d
		if d < st.MinSec {
			st.MinSec = d
		}
		if d > st.MaxSec {
			st.MaxSec = d
		}
	}
	if st.Reachable > 0 {
		st.MeanSec = sum / float64(st.Reachable)
	}
	return st
}

// RuleCount returns the number of traffic rules an allocation compiles into:
// one per (flow, path, hop) with non-zero allocation (Appendix D: ~m*k*E_l
// rules for m active pairs, k candidate paths of average length E_l).
func RuleCount(p *te.Problem, a *te.Allocation) int {
	rules := 0
	for fi := range p.Flows {
		for pi, path := range p.Flows[fi].Paths {
			if a.X[fi][pi] > 0 {
				rules += path.Hops()
			}
		}
	}
	return rules
}

// RuleOverheadFraction estimates the control-message overhead of distributing
// the rules, as a fraction of one TE interval's total ISL capacity
// (Appendix D argues O(mk ln n) rules vs O(n) links keeps this negligible).
// bytesPerRule is the encoded rule size (e.g. 64 bytes); intervalSec is the
// TE workflow period.
func RuleOverheadFraction(p *te.Problem, a *te.Allocation, bytesPerRule int, intervalSec float64) float64 {
	var capMbps float64
	for _, c := range p.LinkCap {
		capMbps += c
	}
	if capMbps <= 0 || intervalSec <= 0 {
		return 0
	}
	bits := float64(RuleCount(p, a)*bytesPerRule) * 8
	totalBits := capMbps * 1e6 * intervalSec
	return bits / totalBits
}
