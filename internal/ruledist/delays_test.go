// External test package: internal/sim imports ruledist (the packet-replay
// adapter computes rule-arrival delays), and these tests build scenarios
// through sim — an in-package test file would close an import cycle.
package ruledist_test

import (
	"math"
	"testing"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/orbit"
	"sate/internal/ruledist"
	"sate/internal/sim"
	"sate/internal/te"
	"sate/internal/topology"
)

func TestRuleDistributionDelays(t *testing.T) {
	cons := constellation.StarlinkPhase1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	delays := ruledist.RuleDistributionDelays(snap, ruledist.HoustonSite, orbit.Deg(25))
	st := ruledist.SummarizeDelays(delays)
	if st.Reachable < snap.NumSats*95/100 {
		t.Fatalf("only %d/%d satellites reachable", st.Reachable, snap.NumSats)
	}
	// Appendix D: delays range 2.3 ms .. 174 ms for Starlink. Allow slack but
	// require the same order of magnitude.
	if st.MinSec < 0.001 || st.MinSec > 0.02 {
		t.Errorf("min delay %v s, want ~2.3 ms", st.MinSec)
	}
	if st.MaxSec < 0.05 || st.MaxSec > 0.4 {
		t.Errorf("max delay %v s, want ~174 ms", st.MaxSec)
	}
	if st.MeanSec <= st.MinSec || st.MeanSec >= st.MaxSec {
		t.Errorf("mean %v outside (min,max)", st.MeanSec)
	}
}

// TestRuleDistributionStaysOnISLs pins the Appendix D constraint that rule
// pushes travel over ISLs only: a ground relay bridging two otherwise
// disconnected satellite clusters must NOT act as a bent-pipe shortcut for
// rule distribution. Before the fix, Dijkstra relaxed over every adjacency
// edge — including satellite–ground links — so the far cluster appeared
// reachable through the gateway.
func TestRuleDistributionStaysOnISLs(t *testing.T) {
	up := ruledist.HoustonSite.ECEF().Normalize()
	// An axis orthogonal to the site vertical, for placing the gateway off to
	// the side.
	east := orbit.Vec3{X: -up.Y, Y: up.X, Z: 0}.Normalize()
	alt := orbit.EarthRadiusKm + 550
	snap := &topology.Snapshot{
		NumSats:  4,
		NumNodes: 5, // node 4 is the ground relay (gateway)
		Pos: []orbit.Vec3{
			up.Scale(alt),                   // sat 0: overhead the control center
			up.Scale(alt + 60),              // sat 1: cluster A neighbour
			up.Scale(-alt),                  // sat 2: antipodal, below the horizon
			up.Scale(-(alt + 60)),           // sat 3: cluster B neighbour
			east.Scale(orbit.EarthRadiusKm), // node 4: the gateway, on the ground
		},
	}
	snap.Links = []topology.Link{
		topology.MakeLink(0, 1, topology.IntraOrbit),      // cluster A ISL
		topology.MakeLink(2, 3, topology.IntraOrbit),      // cluster B ISL
		topology.MakeLink(1, 4, topology.GroundRelayLink), // cluster A -> gateway
		topology.MakeLink(2, 4, topology.GroundRelayLink), // gateway -> cluster B
	}
	snap.Finalize()

	delays := ruledist.RuleDistributionDelays(snap, ruledist.HoustonSite, orbit.Deg(25))
	if len(delays) != 4 {
		t.Fatalf("got %d delays, want 4", len(delays))
	}
	for _, id := range []int{0, 1} {
		if math.IsInf(delays[id], 1) {
			t.Errorf("sat %d (visible cluster) unreachable", id)
		}
	}
	for _, id := range []int{2, 3} {
		if !math.IsInf(delays[id], 1) {
			t.Errorf("sat %d reachable with delay %v s: rule path shortcut through the gateway bent-pipe", id, delays[id])
		}
	}
}

func TestSummarizeDelaysEmpty(t *testing.T) {
	st := ruledist.SummarizeDelays([]float64{math.Inf(1)})
	if st.Reachable != 0 || st.MeanSec != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRuleCountAndOverhead(t *testing.T) {
	s := sim.NewScenario(constellation.Toy(5, 6), sim.ScenarioConfig{
		Mode:      topology.CrossShellLasers,
		Intensity: 60,
		Seed:      23,
		Users:     2000, UserClusters: 60, Gateways: 8, Relays: 4, MinElevDeg: 5,
	})
	p, _, _, err := s.ProblemAt(20)
	if err != nil {
		t.Fatal(err)
	}
	a, err := (baselines.ECMPWF{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	rules := ruledist.RuleCount(p, a)
	if rules <= 0 {
		t.Fatal("no rules for a non-empty allocation")
	}
	// Appendix D: overhead must be a tiny fraction of interval capacity.
	frac := ruledist.RuleOverheadFraction(p, a, 64, 1.0)
	if frac <= 0 || frac > 0.05 {
		t.Errorf("rule overhead fraction = %v; expected small positive", frac)
	}
	// Zero allocation compiles to zero rules.
	zero := te.NewAllocation(p)
	if ruledist.RuleCount(p, zero) != 0 {
		t.Error("zero allocation has rules")
	}
}
