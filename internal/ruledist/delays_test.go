package ruledist

import (
	"math"
	"testing"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/orbit"
	"sate/internal/sim"
	"sate/internal/te"
	"sate/internal/topology"
)

func TestRuleDistributionDelays(t *testing.T) {
	cons := constellation.StarlinkPhase1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	delays := RuleDistributionDelays(snap, HoustonSite, orbit.Deg(25))
	st := SummarizeDelays(delays)
	if st.Reachable < snap.NumSats*95/100 {
		t.Fatalf("only %d/%d satellites reachable", st.Reachable, snap.NumSats)
	}
	// Appendix D: delays range 2.3 ms .. 174 ms for Starlink. Allow slack but
	// require the same order of magnitude.
	if st.MinSec < 0.001 || st.MinSec > 0.02 {
		t.Errorf("min delay %v s, want ~2.3 ms", st.MinSec)
	}
	if st.MaxSec < 0.05 || st.MaxSec > 0.4 {
		t.Errorf("max delay %v s, want ~174 ms", st.MaxSec)
	}
	if st.MeanSec <= st.MinSec || st.MeanSec >= st.MaxSec {
		t.Errorf("mean %v outside (min,max)", st.MeanSec)
	}
}

func TestSummarizeDelaysEmpty(t *testing.T) {
	st := SummarizeDelays([]float64{math.Inf(1)})
	if st.Reachable != 0 || st.MeanSec != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRuleCountAndOverhead(t *testing.T) {
	s := sim.NewScenario(constellation.Toy(5, 6), sim.ScenarioConfig{
		Mode:      topology.CrossShellLasers,
		Intensity: 60,
		Seed:      23,
		Users:     2000, UserClusters: 60, Gateways: 8, Relays: 4, MinElevDeg: 5,
	})
	p, _, _, err := s.ProblemAt(20)
	if err != nil {
		t.Fatal(err)
	}
	a, err := (baselines.ECMPWF{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	rules := RuleCount(p, a)
	if rules <= 0 {
		t.Fatal("no rules for a non-empty allocation")
	}
	// Appendix D: overhead must be a tiny fraction of interval capacity.
	frac := RuleOverheadFraction(p, a, 64, 1.0)
	if frac <= 0 || frac > 0.05 {
		t.Errorf("rule overhead fraction = %v; expected small positive", frac)
	}
	// Zero allocation compiles to zero rules.
	zero := te.NewAllocation(p)
	if RuleCount(p, zero) != 0 {
		t.Error("zero allocation has rules")
	}
}
