// Package ruledist implements the rule-distribution side of the TE workflow
// (Sec. 2.2 step 5 and Appendix D): the propagation-delay model for pushing
// compiled traffic rules from the control center to every satellite
// (delays.go), and a sequence-numbered changelog of published rule sets with
// per-satellite delta computation, catch-up from any version, and compaction
// (this file) — the update protocol the controller serves on
// GET /v1/deltas?since=N.
//
// The changelog is built for one writer (the controller's publish path) and
// many lock-free readers: the entire retained history lives in one immutable
// state value swapped through an atomic pointer, so serving a catch-up never
// takes a lock and never allocates (DESIGN.md §14).
package ruledist

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"sate/internal/rules"
	"sate/internal/topology"
)

// RuleID identifies one label-switched rule within a node's flow table: the
// (flow, candidate-path label) pair rules.Compile guarantees unique per node.
type RuleID struct {
	Src   topology.NodeID `json:"src"`
	Dst   topology.NodeID `json:"dst"`
	Label int             `json:"label"`
}

// Upsert is one rule insertion or in-place update at a node.
type Upsert struct {
	Src      topology.NodeID `json:"src"`
	Dst      topology.NodeID `json:"dst"`
	Label    int             `json:"label"`
	Next     topology.NodeID `json:"next"`
	RateMbps float64         `json:"rate_mbps"`
}

// NodeDelta is the rule-table change of one satellite between two
// consecutive changelog versions. A satellite applies exactly its own
// NodeDelta; the controller serves it from GET /v1/deltas?since=N&node=id.
type NodeDelta struct {
	Node    topology.NodeID `json:"node"`
	Upserts []Upsert        `json:"upserts,omitempty"`
	Removes []RuleID        `json:"removes,omitempty"`
}

// Delta is the network-wide change between changelog versions Seq-1 and Seq,
// split per satellite and sorted by node ID for deterministic serialization.
type Delta struct {
	Seq   uint64      `json:"seq"`
	Nodes []NodeDelta `json:"nodes,omitempty"`
}

// Node returns the delta of one satellite (binary search over the sorted
// per-node list), or false when the version step did not touch it.
func (d *Delta) Node(id topology.NodeID) (NodeDelta, bool) {
	i := sort.Search(len(d.Nodes), func(i int) bool { return d.Nodes[i].Node >= id })
	if i < len(d.Nodes) && d.Nodes[i].Node == id {
		return d.Nodes[i], true
	}
	return NodeDelta{}, false
}

// Empty reports whether the version step changed no rules anywhere.
func (d *Delta) Empty() bool { return len(d.Nodes) == 0 }

// sameRate compares two rates bitwise: the changelog must reproduce the
// published allocation exactly, so tolerance-based comparison (which the
// rest of the tree rightly prefers) would make deltas lossy.
func sameRate(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// Diff computes the per-satellite delta turning the old rule set into the
// new one. Either side may be nil (the empty rule set, version 0). The
// result is deterministic: nodes ascending, and within a node the upserts
// and removes follow the tables' (src, dst, label) rule order.
func Diff(old, new *rules.RuleSet) Delta {
	ids := unionNodes(old, new)
	var out Delta
	for _, id := range ids {
		nd := diffNode(id, tableOf(old, id), tableOf(new, id))
		if len(nd.Upserts) > 0 || len(nd.Removes) > 0 {
			out.Nodes = append(out.Nodes, nd)
		}
	}
	return out
}

func tableOf(rs *rules.RuleSet, id topology.NodeID) *rules.Table {
	if rs == nil {
		return nil
	}
	return rs.Tables[id]
}

// unionNodes returns the sorted union of node IDs present in either rule
// set. Map iteration feeds a sort before anything order-dependent happens.
func unionNodes(old, new *rules.RuleSet) []topology.NodeID {
	seen := make(map[topology.NodeID]bool)
	for _, rs := range [2]*rules.RuleSet{old, new} {
		if rs == nil {
			continue
		}
		for id := range rs.Tables {
			seen[id] = true
		}
	}
	ids := make([]topology.NodeID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ruleID extracts a rule's identity.
func ruleID(r rules.Rule) RuleID {
	return RuleID{Src: r.Flow.Src, Dst: r.Flow.Dst, Label: r.Label}
}

// idLess orders rule identities the same way rules.Compile sorts tables.
func idLess(a, b RuleID) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if a.Dst != b.Dst {
		return a.Dst < b.Dst
	}
	return a.Label < b.Label
}

// diffNode merge-walks two sorted rule slices producing one node's delta.
func diffNode(id topology.NodeID, old, new *rules.Table) NodeDelta {
	nd := NodeDelta{Node: id}
	var or, nr []rules.Rule
	if old != nil {
		or = old.Rules
	}
	if new != nil {
		nr = new.Rules
	}
	i, j := 0, 0
	for i < len(or) || j < len(nr) {
		switch {
		case j == len(nr) || (i < len(or) && idLess(ruleID(or[i]), ruleID(nr[j]))):
			nd.Removes = append(nd.Removes, ruleID(or[i]))
			i++
		case i == len(or) || idLess(ruleID(nr[j]), ruleID(or[i])):
			r := nr[j]
			nd.Upserts = append(nd.Upserts, Upsert{
				Src: r.Flow.Src, Dst: r.Flow.Dst, Label: r.Label,
				Next: r.Next, RateMbps: r.RateMbps,
			})
			j++
		default: // same identity: upsert only when payload changed
			if or[i].Next != nr[j].Next || !sameRate(or[i].RateMbps, nr[j].RateMbps) {
				r := nr[j]
				nd.Upserts = append(nd.Upserts, Upsert{
					Src: r.Flow.Src, Dst: r.Flow.Dst, Label: r.Label,
					Next: r.Next, RateMbps: r.RateMbps,
				})
			}
			i++
			j++
		}
	}
	return nd
}

// Apply returns a new rule set with one delta applied; the input is not
// modified (tables untouched by the delta are shared, touched ones are
// rebuilt). Applying the changelog's deltas in sequence onto the version
// they start from reproduces the latest published rule set bit-identically
// (TestDeltaCatchup).
func Apply(rs *rules.RuleSet, d Delta) *rules.RuleSet {
	out := &rules.RuleSet{Tables: make(map[topology.NodeID]*rules.Table)}
	if rs != nil {
		for id, tbl := range rs.Tables {
			out.Tables[id] = tbl
		}
	}
	for _, nd := range d.Nodes {
		tbl := applyNode(out.Tables[nd.Node], nd)
		if tbl == nil {
			delete(out.Tables, nd.Node)
		} else {
			out.Tables[nd.Node] = tbl
		}
	}
	return out
}

// applyNode rebuilds one node's table under a delta; nil means the table
// ended up empty (rules.Compile never emits empty tables, so neither do we).
func applyNode(old *rules.Table, nd NodeDelta) *rules.Table {
	byID := make(map[RuleID]rules.Rule)
	if old != nil {
		for _, r := range old.Rules {
			byID[ruleID(r)] = r
		}
	}
	for _, id := range nd.Removes {
		delete(byID, id)
	}
	for _, u := range nd.Upserts {
		byID[RuleID{Src: u.Src, Dst: u.Dst, Label: u.Label}] = rules.Rule{
			Flow:  rules.FlowKey{Src: u.Src, Dst: u.Dst},
			Label: u.Label, Next: u.Next, RateMbps: u.RateMbps,
		}
	}
	if len(byID) == 0 {
		return nil
	}
	tbl := &rules.Table{Node: nd.Node, Rules: make([]rules.Rule, 0, len(byID))}
	for _, r := range byID {
		tbl.Rules = append(tbl.Rules, r)
	}
	sort.Slice(tbl.Rules, func(i, j int) bool {
		return idLess(ruleID(tbl.Rules[i]), ruleID(tbl.Rules[j]))
	})
	return tbl
}

// logState is one immutable changelog generation: the full rule set at the
// latest version plus the retained delta window. Readers load it through an
// atomic pointer and never observe a partially updated view.
type logState struct {
	latest uint64
	// floor is the lowest version catch-up can serve deltas from: deltas
	// holds versions floor+1 .. latest. Clients older than floor resync.
	floor  uint64
	full   *rules.RuleSet
	deltas []Delta
}

// Changelog is the sequence-numbered history of published rule sets.
// Version 0 is the empty rule set; Append publishes version latest+1.
// One writer (the controller publish path, already serialized on its cycle
// mutex) and any number of lock-free readers.
type Changelog struct {
	mu    sync.Mutex
	max   int
	state atomic.Pointer[logState]
}

// DefaultHistory is the delta window kept before compaction when
// NewChangelog is given a non-positive cap.
const DefaultHistory = 64

// NewChangelog creates an empty changelog retaining at most maxEntries
// deltas (<= 0 selects DefaultHistory). Older versions are compacted away:
// a client behind the window gets a full resync instead of deltas.
func NewChangelog(maxEntries int) *Changelog {
	if maxEntries <= 0 {
		maxEntries = DefaultHistory
	}
	return &Changelog{max: maxEntries}
}

// Append publishes a new rule set, returning its version. The rule set must
// not be mutated afterwards (the controller's copy-on-publish snapshots
// already guarantee this). The delta against the previous version is
// computed here, once, so serving any number of catch-ups costs nothing.
func (c *Changelog) Append(rs *rules.RuleSet) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.state.Load()
	var prev *rules.RuleSet
	next := &logState{latest: 1}
	if old != nil {
		prev = old.full
		next.latest = old.latest + 1
		next.floor = old.floor
		// Fresh backing array every generation: readers hold slices into
		// the old one, which must stay immutable.
		next.deltas = make([]Delta, len(old.deltas), len(old.deltas)+1)
		copy(next.deltas, old.deltas)
	}
	d := Diff(prev, rs)
	d.Seq = next.latest
	next.full = rs
	next.deltas = append(next.deltas, d)
	if drop := len(next.deltas) - c.max; drop > 0 {
		next.deltas = next.deltas[drop:]
		next.floor += uint64(drop)
	}
	c.state.Store(next)
	return next.latest
}

// Latest returns the newest published version (0 before the first Append).
//
//sate:hotpath serving reads this per poll
func (c *Changelog) Latest() uint64 {
	st := c.state.Load()
	if st == nil {
		return 0
	}
	return st.latest
}

// Floor returns the oldest version catch-up can serve deltas from.
func (c *Changelog) Floor() uint64 {
	st := c.state.Load()
	if st == nil {
		return 0
	}
	return st.floor
}

// CatchUp is the answer to "I have version Since; bring me to Latest".
// Either Deltas carries the versions Since+1 .. Latest to apply in order,
// or FullSync is set and Full is the complete latest rule set (the client
// predates the retained window, or asked from the empty version 0 after
// compaction already discarded it).
type CatchUp struct {
	Since    uint64
	Latest   uint64
	FullSync bool
	Full     *rules.RuleSet
	Deltas   []Delta
}

// UpToDate reports whether the client already has the latest version.
func (cu *CatchUp) UpToDate() bool { return cu.Since >= cu.Latest }

// Since computes the catch-up for a client at the given version: a slice
// into the immutable retained window (no copying, no locks, no allocation),
// or a full resync when the version has been compacted away. A since beyond
// latest is answered as up to date (the client is ahead of a restarted
// changelog; it will converge on the next publish).
//
//sate:hotpath the delta-serving read path
func (c *Changelog) Since(since uint64) CatchUp {
	st := c.state.Load()
	if st == nil {
		return CatchUp{Since: since}
	}
	cu := CatchUp{Since: since, Latest: st.latest}
	if since >= st.latest {
		return cu
	}
	if since < st.floor {
		cu.FullSync = true
		cu.Full = st.full
		return cu
	}
	cu.Deltas = st.deltas[since-st.floor:]
	return cu
}

// Full returns the complete rule set at the latest version (nil before the
// first Append).
func (c *Changelog) Full() *rules.RuleSet {
	st := c.state.Load()
	if st == nil {
		return nil
	}
	return st.full
}
