package core

import (
	"math/rand"
	"sync"

	"sate/internal/autodiff"
	"sate/internal/gnn"
	"sate/internal/obs"
	"sate/internal/solve"
	"sate/internal/te"
)

// Config holds the SaTE model hyperparameters.
type Config struct {
	// EmbedDim is the node/edge embedding dimension. The paper uses 768 on
	// an A100; the CPU default here is 32 — the architecture is unchanged
	// and the dimension is a knob (see DESIGN.md substitutions).
	EmbedDim int
	// Heads is the number of attention heads per GAT layer.
	Heads int
	// LayersR1, LayersR2, LayersR3 are the message-passing depths of the
	// three GNN modules (Appendix B: chosen as the minimum without
	// performance degradation, favouring inference latency).
	LayersR1, LayersR2, LayersR3 int
	// DecoderHidden is the decoder MLP hidden width.
	DecoderHidden int
	Seed          int64
	// AccessRelation re-adds the redundant satellite-traffic "access"
	// relation that SaTE's graph reduction removes (Sec. 3.2). Used only by
	// the graph-reduction ablation to measure the latency the reduction
	// saves; leave false for the SaTE model proper.
	AccessRelation bool
	// UniformAttention replaces learned attention with mean aggregation in
	// every GAT layer (the attention ablation). Leave false for SaTE proper.
	UniformAttention bool
}

// DefaultConfig returns the CPU-scale defaults.
func DefaultConfig() Config {
	return Config{
		EmbedDim: 32, Heads: 2,
		LayersR1: 2, LayersR2: 2, LayersR3: 1,
		DecoderHidden: 64,
		Seed:          1,
	}
}

// Model is the SaTE GNN (Fig. 7): three sequential attention modules over
// R1, R2, R3 plus an MLP decoder producing the traffic allocation.
type Model struct {
	Cfg Config

	// Embedding-initialisation weight matrices (the W of Fig. 7's table):
	// scalar feature x (1 x d) learnable row.
	wNE1, wNE2, wNE3 *autodiff.Value
	wEE1, wEE2, wEE3 *autodiff.Value

	r1 *gnn.Stack // satellite <-> satellite
	// R2: satellite and path embeddings updated concurrently per layer.
	r2SatToPath []*gnn.GATLayer
	r2PathToSat []*gnn.GATLayer
	// R3: path and traffic embeddings refined together.
	r3TrafficToPath []*gnn.GATLayer
	r3PathToTraffic []*gnn.GATLayer
	// Ablation-only redundant access relation (nil in the SaTE model).
	accessSatToTraffic *gnn.GATLayer
	accessTrafficToSat *gnn.GATLayer

	decoder *gnn.MLP

	params []*autodiff.Value

	// tapes recycles inference tapes across Solve/SolveMLU calls: after the
	// first solve of a given problem size the arena is warm and a solve
	// performs near-zero heap allocation (DESIGN.md §8).
	tapes sync.Pool
}

// NewModel builds a SaTE model.
func NewModel(cfg Config) *Model {
	if cfg.EmbedDim == 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.EmbedDim
	m := &Model{Cfg: cfg}

	mkW := func() *autodiff.Value {
		return autodiff.Param(autodiff.NewTensor(1, d).Randn(rng, 0.5))
	}
	m.wNE1, m.wNE2, m.wNE3 = mkW(), mkW(), mkW()
	m.wEE1, m.wEE2, m.wEE3 = mkW(), mkW(), mkW()

	m.r1 = gnn.NewStack(rng, cfg.LayersR1, d, d, cfg.Heads)
	for i := 0; i < cfg.LayersR2; i++ {
		m.r2SatToPath = append(m.r2SatToPath, gnn.NewGATLayer(rng, d, d, d, cfg.Heads, d/cfg.Heads))
		m.r2PathToSat = append(m.r2PathToSat, gnn.NewGATLayer(rng, d, d, d, cfg.Heads, d/cfg.Heads))
	}
	for i := 0; i < cfg.LayersR3; i++ {
		m.r3TrafficToPath = append(m.r3TrafficToPath, gnn.NewGATLayer(rng, d, d, d, cfg.Heads, d/cfg.Heads))
		m.r3PathToTraffic = append(m.r3PathToTraffic, gnn.NewGATLayer(rng, d, d, d, cfg.Heads, d/cfg.Heads))
	}
	if cfg.AccessRelation {
		m.accessSatToTraffic = gnn.NewGATLayer(rng, d, d, d, cfg.Heads, d/cfg.Heads)
		m.accessTrafficToSat = gnn.NewGATLayer(rng, d, d, d, cfg.Heads, d/cfg.Heads)
	}
	m.decoder = gnn.NewMLP(rng, 2*d, cfg.DecoderHidden, 2)
	// Start the gate (decoder column 1) well inside the sigmoid's active
	// region: under heavy overload the penalty term pushes gates down hard,
	// and a gate that saturates at zero early stops learning entirely.
	m.decoder.SetOutputBias(1, 1.5)

	m.params = []*autodiff.Value{m.wNE1, m.wNE2, m.wNE3, m.wEE1, m.wEE2, m.wEE3}
	m.params = append(m.params, m.r1.Params()...)
	for i := range m.r2SatToPath {
		m.params = append(m.params, m.r2SatToPath[i].Params()...)
		m.params = append(m.params, m.r2PathToSat[i].Params()...)
	}
	for i := range m.r3TrafficToPath {
		m.params = append(m.params, m.r3TrafficToPath[i].Params()...)
		m.params = append(m.params, m.r3PathToTraffic[i].Params()...)
	}
	if m.accessSatToTraffic != nil {
		m.params = append(m.params, m.accessSatToTraffic.Params()...)
		m.params = append(m.params, m.accessTrafficToSat.Params()...)
	}
	m.params = append(m.params, m.decoder.Params()...)
	if cfg.UniformAttention {
		for _, l := range m.r1.Layers {
			l.Uniform = true
		}
		for i := range m.r2SatToPath {
			m.r2SatToPath[i].Uniform = true
			m.r2PathToSat[i].Uniform = true
		}
		for i := range m.r3TrafficToPath {
			m.r3TrafficToPath[i].Uniform = true
			m.r3PathToTraffic[i].Uniform = true
		}
	}
	return m
}

// Params returns all trainable parameters.
func (m *Model) Params() []*autodiff.Value { return m.params }

// NumParams returns the count of scalar parameters.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += len(p.Val.Data)
	}
	return n
}

// embed initialises an embedding matrix from a scalar feature column:
// rows x 1 feature times 1 x d learnable weight (Fig. 7 table). The feature
// column is staged in an arena tensor — no per-pass heap copy.
func (m *Model) embed(tp *autodiff.Tape, feat []float64, w *autodiff.Value) *autodiff.Value {
	tp.Watch(w)
	col := tp.TensorFrom(len(feat), 1, feat)
	return tp.MatMul(tp.Const(col), w)
}

// Forward runs the three GNN modules and the decoder, returning the raw
// per-variable outputs: scores (for the per-flow softmax) and gates. Both
// are NumPaths x 1.
func (m *Model) Forward(tp *autodiff.Tape, g *TEGraph) (scores, gates *autodiff.Value) {
	// Embedding initialisation (Fig. 7).
	sat := m.embed(tp, g.SatFeat, m.wNE1)
	path := m.embed(tp, g.PathFeat, m.wNE2)
	trf := m.embed(tp, g.TrafficFeat, m.wNE3)
	ee1 := m.embed(tp, g.R1Feat, m.wEE1)
	ee2 := m.embed(tp, g.R2Feat, m.wEE2)
	ee3 := m.embed(tp, g.R3Feat, m.wEE3)

	// Module 1: GNN for R1 — satellite embeddings.
	sat = m.r1.Forward(tp, sat, ee1, g.R1)

	// Ablation-only: process the redundant access relation the way the full
	// graph of Fig. 6 (a) requires — an extra message-passing module whose
	// cost the reduction eliminates.
	if m.accessSatToTraffic != nil && g.Access.Len() > 0 {
		eeA := m.embed(tp, g.AccessFeat, m.wEE1)
		newTrf := m.accessSatToTraffic.Forward(tp, trf, sat, eeA, g.Access)
		newSat := m.accessTrafficToSat.Forward(tp, sat, trf, eeA, g.Access.Reverse())
		trf = tp.Add(newTrf, trf)
		sat = tp.Add(newSat, sat)
	}

	// Module 2: GNN for R2 — satellite and path embeddings concurrently.
	for i := range m.r2SatToPath {
		newPath := m.r2SatToPath[i].Forward(tp, path, sat, ee2, g.R2)
		newSat := m.r2PathToSat[i].Forward(tp, sat, path, ee2, g.R2.Reverse())
		path = tp.Add(newPath, path) // residual
		sat = tp.Add(newSat, sat)
	}

	// Module 3: GNN for R3 — path and traffic embeddings together.
	for i := range m.r3TrafficToPath {
		newPath := m.r3TrafficToPath[i].Forward(tp, path, trf, ee3, g.R3)
		newTrf := m.r3PathToTraffic[i].Forward(tp, trf, path, ee3, g.R3.Reverse())
		path = tp.Add(newPath, path)
		trf = tp.Add(newTrf, trf)
	}

	// Decoder: per path variable, concat(path embedding, its flow's traffic
	// embedding) -> [score, gate].
	if g.NumPaths == 0 {
		zero := tp.Const(tp.Zeros(0, 1))
		return zero, zero
	}
	trfPerVar := tp.Gather(trf, g.VarFlow)
	dec := m.decoder.Forward(tp, tp.Concat(path, trfPerVar)) // NumPaths x 2
	return colSlice(tp, dec, 0), colSlice(tp, dec, 1)
}

// colSlice extracts one column of a two-column value as an n x 1 value.
func colSlice(tp *autodiff.Tape, v *autodiff.Value, col int) *autodiff.Value {
	// Multiply by a constant selector matrix (cols x 1).
	sel := tp.Zeros(v.Val.Cols, 1)
	sel.Set(col, 0, 1)
	return tp.MatMul(v, tp.Const(sel))
}

// Allocate runs the model and converts scores/gates into an allocation:
// x_fp = demand_f * sigmoid(gate_fp) * softmax_p(score_fp). The form makes
// the demand constraint (2.e) hold by construction; link and access caps are
// enforced afterwards by trimming (Sec. 3.3, correction step).
func (m *Model) Allocate(tp *autodiff.Tape, g *TEGraph, p *te.Problem) *autodiff.Value {
	scores, gates := m.Forward(tp, g)
	if g.NumPaths == 0 {
		return scores
	}
	alpha := tp.SegmentSoftmax(scores, g.VarFlow, g.NumTraffic)
	// Soft-clamped gate pre-activations: under heavy overload the penalty
	// term drives gates far negative; the clamp keeps them inside the
	// sigmoid's responsive band so they can recover when load drops.
	gate := tp.Sigmoid(tp.SoftClamp(gates, -4, 4, 0.25))
	mix := tp.Mul(alpha, gate)
	demand := tp.Zeros(g.NumPaths, 1)
	for j, fi := range g.VarFlow {
		demand.Data[j] = p.Flows[fi].DemandMbps
	}
	return tp.Mul(mix, tp.Const(demand))
}

// inferenceTape checks a recycled inference tape out of the model's pool;
// returnTape resets and returns it for the next solve.
func (m *Model) inferenceTape() *autodiff.Tape {
	if tp, ok := m.tapes.Get().(*autodiff.Tape); ok {
		return tp
	}
	return autodiff.NewInferenceTape()
}

func (m *Model) returnTape(tp *autodiff.Tape) {
	tp.Reset()
	m.tapes.Put(tp)
}

// Solve implements the baselines.Solver interface: graph construction,
// GNN inference, decoding, and the feasibility correction. Options select
// the objective (solve.MLU routes to the MLU head, equivalent to SolveMLU),
// attach an obs registry (per-solve latency under solver="sate" plus
// graph-build/forward/decode phase spans), or override the worker budget.
// Instrumentation adds zero heap allocations to the warm solve path
// (TestSolveObsAddsZeroAllocs).
func (m *Model) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	o := solve.Build(opts...)
	if o.Objective == solve.MLU {
		return m.solveMLU(p, o)
	}
	a := solve.Begin(o, "sate")
	defer a.End()
	sp := o.Registry.StartSpan(obs.PhaseGraphBuild)
	g := BuildTEGraph(p)
	sp.End()
	tp := m.inferenceTape()
	sp = o.Registry.StartSpan(obs.PhaseForward)
	x := m.Allocate(tp, g, p)
	sp.End()
	sp = o.Registry.StartSpan(obs.PhaseDecode)
	alloc := te.NewAllocation(p)
	for fi, vars := range g.FlowVars {
		for pi, j := range vars { // variables were appended in path order
			alloc.X[fi][pi] = x.Val.Data[j]
		}
	}
	m.returnTape(tp)
	p.Trim(alloc)
	sp.End()
	return alloc, nil
}

// Name implements the baselines.Solver interface.
func (m *Model) Name() string { return "sate" }
