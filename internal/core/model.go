package core

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"sate/internal/autodiff"
	"sate/internal/gnn"
	"sate/internal/obs"
	"sate/internal/solve"
	"sate/internal/te"
)

// Config holds the SaTE model hyperparameters.
type Config struct {
	// EmbedDim is the node/edge embedding dimension. The paper uses 768 on
	// an A100; the CPU default here is 32 — the architecture is unchanged
	// and the dimension is a knob (see DESIGN.md substitutions).
	EmbedDim int
	// Heads is the number of attention heads per GAT layer.
	Heads int
	// LayersR1, LayersR2, LayersR3 are the message-passing depths of the
	// three GNN modules (Appendix B: chosen as the minimum without
	// performance degradation, favouring inference latency).
	LayersR1, LayersR2, LayersR3 int
	// DecoderHidden is the decoder MLP hidden width.
	DecoderHidden int
	Seed          int64
	// AccessRelation re-adds the redundant satellite-traffic "access"
	// relation that SaTE's graph reduction removes (Sec. 3.2). Used only by
	// the graph-reduction ablation to measure the latency the reduction
	// saves; leave false for the SaTE model proper.
	AccessRelation bool
	// UniformAttention replaces learned attention with mean aggregation in
	// every GAT layer (the attention ablation). Leave false for SaTE proper.
	UniformAttention bool
}

// DefaultConfig returns the CPU-scale defaults.
func DefaultConfig() Config {
	return Config{
		EmbedDim: 32, Heads: 2,
		LayersR1: 2, LayersR2: 2, LayersR3: 1,
		DecoderHidden: 64,
		Seed:          1,
	}
}

// netOf holds the SaTE GNN weights (Fig. 7) at one element type and owns the
// dtype-generic forward/allocate passes. Model embeds the float64
// instantiation (training and default inference); the float32 instantiation
// is a derived read-only copy built by convertNet for the low-precision
// inference path.
type netOf[T autodiff.Float] struct {
	// Embedding-initialisation weight matrices (the W of Fig. 7's table):
	// scalar feature x (1 x d) learnable row.
	wNE1, wNE2, wNE3 *autodiff.ValueOf[T]
	wEE1, wEE2, wEE3 *autodiff.ValueOf[T]

	r1 *gnn.StackOf[T] // satellite <-> satellite
	// R2: satellite and path embeddings updated concurrently per layer.
	r2SatToPath []*gnn.GATLayerOf[T]
	r2PathToSat []*gnn.GATLayerOf[T]
	// R3: path and traffic embeddings refined together.
	r3TrafficToPath []*gnn.GATLayerOf[T]
	r3PathToTraffic []*gnn.GATLayerOf[T]
	// Ablation-only redundant access relation (nil in the SaTE model).
	accessSatToTraffic *gnn.GATLayerOf[T]
	accessTrafficToSat *gnn.GATLayerOf[T]

	decoder *gnn.MLPOf[T]

	params []*autodiff.ValueOf[T]
}

// Model is the SaTE GNN (Fig. 7): three sequential attention modules over
// R1, R2, R3 plus an MLP decoder producing the traffic allocation.
type Model struct {
	Cfg Config

	netOf[float64]

	// tapes/tapes32 recycle inference tapes (per dtype) across Solve calls:
	// after the first solve of a given problem size the arena is warm and a
	// solve performs near-zero heap allocation (DESIGN.md §8). graphs does
	// the same for cold (no warm-start state) solves' TE-graph storage.
	tapes   sync.Pool
	tapes32 sync.Pool
	graphs  sync.Pool

	// weightGen counts weight mutations (training epochs, loads). The
	// float32 weight copy and warm-start R1 caches embed the generation, so
	// they invalidate automatically when the float64 weights move.
	weightGen atomic.Uint64

	f32mu  sync.Mutex
	f32    *netOf[float32]
	f32gen uint64
}

// NewModel builds a SaTE model.
func NewModel(cfg Config) *Model {
	if cfg.EmbedDim == 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.EmbedDim
	m := &Model{Cfg: cfg}

	mkW := func() *autodiff.Value {
		return autodiff.Param(autodiff.NewTensor(1, d).Randn(rng, 0.5))
	}
	m.wNE1, m.wNE2, m.wNE3 = mkW(), mkW(), mkW()
	m.wEE1, m.wEE2, m.wEE3 = mkW(), mkW(), mkW()

	m.r1 = gnn.NewStack(rng, cfg.LayersR1, d, d, cfg.Heads)
	for i := 0; i < cfg.LayersR2; i++ {
		m.r2SatToPath = append(m.r2SatToPath, gnn.NewGATLayer(rng, d, d, d, cfg.Heads, d/cfg.Heads))
		m.r2PathToSat = append(m.r2PathToSat, gnn.NewGATLayer(rng, d, d, d, cfg.Heads, d/cfg.Heads))
	}
	for i := 0; i < cfg.LayersR3; i++ {
		m.r3TrafficToPath = append(m.r3TrafficToPath, gnn.NewGATLayer(rng, d, d, d, cfg.Heads, d/cfg.Heads))
		m.r3PathToTraffic = append(m.r3PathToTraffic, gnn.NewGATLayer(rng, d, d, d, cfg.Heads, d/cfg.Heads))
	}
	if cfg.AccessRelation {
		m.accessSatToTraffic = gnn.NewGATLayer(rng, d, d, d, cfg.Heads, d/cfg.Heads)
		m.accessTrafficToSat = gnn.NewGATLayer(rng, d, d, d, cfg.Heads, d/cfg.Heads)
	}
	m.decoder = gnn.NewMLP(rng, 2*d, cfg.DecoderHidden, 2)
	// Start the gate (decoder column 1) well inside the sigmoid's active
	// region: under heavy overload the penalty term pushes gates down hard,
	// and a gate that saturates at zero early stops learning entirely.
	m.decoder.SetOutputBias(1, 1.5)

	m.params = []*autodiff.Value{m.wNE1, m.wNE2, m.wNE3, m.wEE1, m.wEE2, m.wEE3}
	m.params = append(m.params, m.r1.Params()...)
	for i := range m.r2SatToPath {
		m.params = append(m.params, m.r2SatToPath[i].Params()...)
		m.params = append(m.params, m.r2PathToSat[i].Params()...)
	}
	for i := range m.r3TrafficToPath {
		m.params = append(m.params, m.r3TrafficToPath[i].Params()...)
		m.params = append(m.params, m.r3PathToTraffic[i].Params()...)
	}
	if m.accessSatToTraffic != nil {
		m.params = append(m.params, m.accessSatToTraffic.Params()...)
		m.params = append(m.params, m.accessTrafficToSat.Params()...)
	}
	m.params = append(m.params, m.decoder.Params()...)
	if cfg.UniformAttention {
		for _, l := range m.r1.Layers {
			l.Uniform = true
		}
		for i := range m.r2SatToPath {
			m.r2SatToPath[i].Uniform = true
			m.r2PathToSat[i].Uniform = true
		}
		for i := range m.r3TrafficToPath {
			m.r3TrafficToPath[i].Uniform = true
			m.r3PathToTraffic[i].Uniform = true
		}
	}
	return m
}

// Params returns all trainable parameters.
func (m *Model) Params() []*autodiff.Value { return m.params }

// NumParams returns the count of scalar parameters.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params {
		n += len(p.Val.Data)
	}
	return n
}

// InvalidateWeightCaches must be called after mutating the float64 weights
// directly (training and Load call it implicitly): it retires the cached
// float32 weight copy and every warm-start embedding cache derived from the
// previous weights.
func (m *Model) InvalidateWeightCaches() { m.weightGen.Add(1) }

// convParam32 copies a float64 parameter into a float32 one.
func convParam32(v *autodiff.Value) *autodiff.ValueOf[float32] {
	t := autodiff.NewTensorOf[float32](v.Val.Rows, v.Val.Cols)
	for i, x := range v.Val.Data {
		t.Data[i] = float32(x)
	}
	return autodiff.Param(t)
}

// convertNet builds the float32 inference copy of the trained weights. The
// float32 net has no params slice — it is never trained or serialized.
func convertNet(n *netOf[float64]) *netOf[float32] {
	c := &netOf[float32]{
		wNE1:    convParam32(n.wNE1),
		wNE2:    convParam32(n.wNE2),
		wNE3:    convParam32(n.wNE3),
		wEE1:    convParam32(n.wEE1),
		wEE2:    convParam32(n.wEE2),
		wEE3:    convParam32(n.wEE3),
		r1:      gnn.ConvertStack[float32](n.r1),
		decoder: gnn.ConvertMLP[float32](n.decoder),
	}
	for i := range n.r2SatToPath {
		c.r2SatToPath = append(c.r2SatToPath, gnn.ConvertGATLayer[float32](n.r2SatToPath[i]))
		c.r2PathToSat = append(c.r2PathToSat, gnn.ConvertGATLayer[float32](n.r2PathToSat[i]))
	}
	for i := range n.r3TrafficToPath {
		c.r3TrafficToPath = append(c.r3TrafficToPath, gnn.ConvertGATLayer[float32](n.r3TrafficToPath[i]))
		c.r3PathToTraffic = append(c.r3PathToTraffic, gnn.ConvertGATLayer[float32](n.r3PathToTraffic[i]))
	}
	if n.accessSatToTraffic != nil {
		c.accessSatToTraffic = gnn.ConvertGATLayer[float32](n.accessSatToTraffic)
		c.accessTrafficToSat = gnn.ConvertGATLayer[float32](n.accessTrafficToSat)
	}
	return c
}

// float32Net returns the cached float32 weight copy, rebuilding it when the
// float64 weights have moved since the last build.
func (m *Model) float32Net() *netOf[float32] {
	gen := m.weightGen.Load()
	m.f32mu.Lock()
	defer m.f32mu.Unlock()
	//lint:ignore hotpath-no-alloc weight conversion runs once per weight generation; steady-state solves return the cached copy
	if m.f32 == nil || m.f32gen != gen {
		m.f32 = convertNet(&m.netOf)
		m.f32gen = gen
	}
	return m.f32
}

// embedOf initialises an embedding matrix from a scalar feature column:
// rows x 1 feature times 1 x d learnable weight (Fig. 7 table). The feature
// column is staged in an arena tensor — no per-pass heap copy.
func embedOf[T autodiff.Float](tp *autodiff.TapeOf[T], feat []float64, w *autodiff.ValueOf[T]) *autodiff.ValueOf[T] {
	tp.Watch(w)
	col := tp.TensorFromFloat64(len(feat), 1, feat)
	return tp.MatMul(tp.Const(col), w)
}

// forward runs the three GNN modules and the decoder, returning the raw
// per-variable outputs: scores (for the per-flow softmax) and gates. Both
// are NumPaths x 1. A non-nil warm cache (inference tapes only) lets the
// pass reuse the previous cycle's post-R1 satellite embeddings when the R1
// inputs are bit-identical — R1 depends only on topology, which holds still
// across most consecutive TE cycles.
func (n *netOf[T]) forward(tp *autodiff.TapeOf[T], g *TEGraph, warm *r1Cache[T]) (scores, gates *autodiff.ValueOf[T]) {
	// Embedding initialisation (Fig. 7). On inference tapes the R2/R3 edge
	// embeddings use the deduplicated feature view: the scalar features have
	// a few dozen distinct values across tens of thousands of edges, so the
	// per-edge Θe·e projections inside each layer shrink from E rows to U
	// rows (bitwise identically — see ForwardDedup). Training keeps the
	// per-edge form so gradient accumulation order is unchanged.
	path := embedOf(tp, g.PathFeat, n.wNE2)
	trf := embedOf(tp, g.TrafficFeat, n.wNE3)
	dedup := tp.NoGrad() && len(g.R2FeatIx) == len(g.R2Feat) && len(g.R3FeatIx) == len(g.R3Feat)
	var ee2, ee3 *autodiff.ValueOf[T]
	if dedup {
		ee2 = embedOf(tp, g.R2FeatU, n.wEE2)
		ee3 = embedOf(tp, g.R3FeatU, n.wEE3)
	} else {
		ee2 = embedOf(tp, g.R2Feat, n.wEE2)
		ee3 = embedOf(tp, g.R3Feat, n.wEE3)
	}

	// Module 1: GNN for R1 — satellite embeddings, or the warm-start replay
	// of the previous cycle's output when topology (and weights) held still.
	var sat *autodiff.ValueOf[T]
	if warm != nil && tp.NoGrad() && warm.out != nil && warm.key == warm.want {
		sat = tp.Const(tp.TensorFrom(warm.out.Rows, warm.out.Cols, warm.out.Data))
	} else {
		sat = embedOf(tp, g.SatFeat, n.wNE1)
		ee1 := embedOf(tp, g.R1Feat, n.wEE1)
		sat = n.r1.Forward(tp, sat, ee1, g.R1)
		if warm != nil && tp.NoGrad() {
			warm.store(sat.Val)
		}
	}

	// Ablation-only: process the redundant access relation the way the full
	// graph of Fig. 6 (a) requires — an extra message-passing module whose
	// cost the reduction eliminates.
	if n.accessSatToTraffic != nil && g.Access.Len() > 0 {
		eeA := embedOf(tp, g.AccessFeat, n.wEE1)
		newTrf := n.accessSatToTraffic.Forward(tp, trf, sat, eeA, g.Access)
		newSat := n.accessTrafficToSat.Forward(tp, sat, trf, eeA, g.Access.Reverse())
		trf = tp.Add(newTrf, trf)
		sat = tp.Add(newSat, sat)
	}

	// Module 2: GNN for R2 — satellite and path embeddings concurrently.
	for i := range n.r2SatToPath {
		var newPath, newSat *autodiff.ValueOf[T]
		if dedup {
			newPath = n.r2SatToPath[i].ForwardDedup(tp, path, sat, ee2, g.R2FeatIx, g.R2)
			newSat = n.r2PathToSat[i].ForwardDedup(tp, sat, path, ee2, g.R2FeatIx, g.R2.Reverse())
		} else {
			newPath = n.r2SatToPath[i].Forward(tp, path, sat, ee2, g.R2)
			newSat = n.r2PathToSat[i].Forward(tp, sat, path, ee2, g.R2.Reverse())
		}
		path = tp.Add(newPath, path) // residual
		sat = tp.Add(newSat, sat)
	}

	// Module 3: GNN for R3 — path and traffic embeddings together.
	for i := range n.r3TrafficToPath {
		var newPath, newTrf *autodiff.ValueOf[T]
		if dedup {
			newPath = n.r3TrafficToPath[i].ForwardDedup(tp, path, trf, ee3, g.R3FeatIx, g.R3)
			newTrf = n.r3PathToTraffic[i].ForwardDedup(tp, trf, path, ee3, g.R3FeatIx, g.R3.Reverse())
		} else {
			newPath = n.r3TrafficToPath[i].Forward(tp, path, trf, ee3, g.R3)
			newTrf = n.r3PathToTraffic[i].Forward(tp, trf, path, ee3, g.R3.Reverse())
		}
		path = tp.Add(newPath, path)
		trf = tp.Add(newTrf, trf)
	}

	// Decoder: per path variable, concat(path embedding, its flow's traffic
	// embedding) -> [score, gate].
	if g.NumPaths == 0 {
		zero := tp.Const(tp.Zeros(0, 1))
		return zero, zero
	}
	trfPerVar := tp.Gather(trf, g.VarFlow)
	dec := n.decoder.Forward(tp, tp.Concat(path, trfPerVar)) // NumPaths x 2
	return colSlice(tp, dec, 0), colSlice(tp, dec, 1)
}

// Forward runs the float64 model (training surface; no warm-start reuse).
func (m *Model) Forward(tp *autodiff.Tape, g *TEGraph) (scores, gates *autodiff.Value) {
	return m.forward(tp, g, nil)
}

// colSlice extracts one column of a two-column value as an n x 1 value.
func colSlice[T autodiff.Float](tp *autodiff.TapeOf[T], v *autodiff.ValueOf[T], col int) *autodiff.ValueOf[T] {
	// Multiply by a constant selector matrix (cols x 1).
	sel := tp.Zeros(v.Val.Cols, 1)
	sel.Set(col, 0, 1)
	return tp.MatMul(v, tp.Const(sel))
}

// allocate runs the model and converts scores/gates into an allocation:
// x_fp = demand_f * sigmoid(gate_fp) * softmax_p(score_fp). The form makes
// the demand constraint (2.e) hold by construction; link and access caps are
// enforced afterwards by trimming (Sec. 3.3, correction step).
func (n *netOf[T]) allocate(tp *autodiff.TapeOf[T], g *TEGraph, p *te.Problem, warm *r1Cache[T]) *autodiff.ValueOf[T] {
	scores, gates := n.forward(tp, g, warm)
	if g.NumPaths == 0 {
		return scores
	}
	alpha := tp.SegmentSoftmax(scores, g.VarFlow, g.NumTraffic)
	// Soft-clamped gate pre-activations: under heavy overload the penalty
	// term drives gates far negative; the clamp keeps them inside the
	// sigmoid's responsive band so they can recover when load drops.
	gate := tp.Sigmoid(tp.SoftClamp(gates, -4, 4, 0.25))
	mix := tp.Mul(alpha, gate)
	demand := tp.Zeros(g.NumPaths, 1)
	for j, fi := range g.VarFlow {
		demand.Data[j] = T(p.Flows[fi].DemandMbps)
	}
	return tp.Mul(mix, tp.Const(demand))
}

// Allocate runs the float64 model end to end (training surface).
func (m *Model) Allocate(tp *autodiff.Tape, g *TEGraph, p *te.Problem) *autodiff.Value {
	return m.allocate(tp, g, p, nil)
}

// getTape checks a recycled inference tape out of a per-dtype pool;
// putTape resets and returns it for the next solve.
func getTape[T autodiff.Float](pool *sync.Pool) *autodiff.TapeOf[T] {
	if tp, ok := pool.Get().(*autodiff.TapeOf[T]); ok {
		return tp
	}
	return autodiff.NewInferenceTapeOf[T]()
}

func putTape[T autodiff.Float](pool *sync.Pool, tp *autodiff.TapeOf[T]) {
	tp.Reset()
	pool.Put(tp)
}

// solveThroughput is the dtype-generic throughput inference path: graph
// construction (into warm storage when available), GNN inference, decoding,
// and the feasibility correction.
//
//sate:hotpath steady-state inference; warm solves add zero heap allocations (TestSolveObsAddsZeroAllocs)
func solveThroughput[T autodiff.Float](m *Model, net *netOf[T], pool *sync.Pool, cs *CycleState, rc *r1Cache[T], p *te.Problem, o solve.Options, name string) (*te.Allocation, error) {
	a := solve.Begin(o, name)
	defer a.End()
	sp := o.Registry.StartSpan(obs.PhaseGraphBuild)
	var g *TEGraph
	if cs != nil {
		var clean bool
		cs.g, clean = buildTEGraphInto(cs.g, p, cs.topoClean)
		g = cs.g
		// A topo-clean rebuild left the R1 inputs bit-identical, so the
		// fingerprint from the previous cycle still describes them — skip the
		// O(links + nodes) rehash unless the weights moved underneath it.
		gen := m.weightGen.Load()
		if !clean || !rc.haveWant || rc.wantGen != gen {
			rc.want = r1Key(g, gen)
			rc.wantGen = gen
			rc.haveWant = true
		}
		if rc.out != nil && rc.key == rc.want {
			cs.r1Hits++
		} else {
			cs.r1Misses++
		}
	} else {
		// Cold solves recycle graph storage through the model-level pool, so
		// repeated solves of a given problem size stop allocating slices.
		pg, _ := m.graphs.Get().(*TEGraph)
		g = BuildTEGraphInto(pg, p)
		defer m.graphs.Put(g)
	}
	sp.End()
	tp := getTape[T](pool)
	sp = o.Registry.StartSpan(obs.PhaseForward)
	x := net.allocate(tp, g, p, rc)
	sp.End()
	sp = o.Registry.StartSpan(obs.PhaseDecode)
	alloc := te.NewAllocation(p)
	xd := x.Val.Data
	for fi, vars := range g.FlowVars {
		for pi, j := range vars { // variables were appended in path order
			alloc.X[fi][pi] = autodiff.ToFloat64(xd[j])
		}
	}
	putTape(pool, tp)
	p.Trim(alloc)
	sp.End()
	return alloc, nil
}

// Solve implements the baselines.Solver interface: graph construction,
// GNN inference, decoding, and the feasibility correction. Options select
// the objective (solve.MLU routes to the MLU head, equivalent to SolveMLU),
// the element type (solve.Float32 runs inference on the cached float32
// weight copy; MLU ignores the request and stays float64), attach an obs
// registry (per-solve latency under solver="sate", or "sate-f32" for the
// float32 path, plus graph-build/forward/decode phase spans), override the
// worker budget, or attach warm-start state (solve.WithWarm(core.CycleState)
// — reused graph storage plus cached R1 embeddings across cycles).
// Instrumentation adds zero heap allocations to the warm solve path
// (TestSolveObsAddsZeroAllocs).
//
//sate:hotpath inference entry point, one call per TE cycle
func (m *Model) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	o := solve.Build(opts...)
	if o.Objective == solve.MLU {
		return m.solveMLU(p, o)
	}
	cs := m.claimWarm(o.Warm)
	if o.Dtype == solve.Float32 {
		var rc *r1Cache[float32]
		if cs != nil {
			rc = &cs.r1f32
		}
		return solveThroughput(m, m.float32Net(), &m.tapes32, cs, rc, p, o, "sate-f32")
	}
	var rc *r1Cache[float64]
	if cs != nil {
		rc = &cs.r1f64
	}
	return solveThroughput(m, &m.netOf, &m.tapes, cs, rc, p, o, "sate")
}

// Name implements the baselines.Solver interface.
func (m *Model) Name() string { return "sate" }
