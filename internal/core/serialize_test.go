package core

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"sate/internal/baselines"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	p := buildScenario(t, 0, 60, 61)
	m := NewModel(DefaultConfig())
	a1, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := m2.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1.Throughput()-a2.Throughput()) > 1e-12 {
		t.Errorf("loaded model differs: %v vs %v", a1.Throughput(), a2.Throughput())
	}
	for fi := range a1.X {
		for pi := range a1.X[fi] {
			if math.Abs(a1.X[fi][pi]-a2.X[fi][pi]) > 1e-12 {
				t.Fatalf("allocation differs at [%d][%d]", fi, pi)
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	m := NewModel(DefaultConfig())
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumParams() != m.NumParams() {
		t.Errorf("params %d vs %d", m2.NumParams(), m.NumParams())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("expected decode error")
	}
}

func TestSaveLoadPreservesTraining(t *testing.T) {
	// A trained model must survive the round trip with its learned weights.
	p := buildScenario(t, 0, 60, 63)
	ref, err := (baselines.LPExact{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(DefaultConfig())
	cfg := DefaultTrainConfig()
	cfg.Epochs = 10
	if _, err := Train(m, []*Sample{NewSample(p, ref)}, cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a1, _ := m.Solve(p)
	a2, _ := m2.Solve(p)
	if math.Abs(a1.Throughput()-a2.Throughput()) > 1e-9 {
		t.Error("trained weights not preserved")
	}
}
