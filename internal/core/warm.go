package core

import (
	"math"

	"sate/internal/autodiff"
)

// CycleState is SaTE's cross-cycle warm-start state, passed to Solve with
// solve.WithWarm. One value is owned by one replay loop (e.g. a controller's
// recompute loop) and must not be shared across concurrent solves.
//
// It carries two kinds of temporal-coherence reuse:
//
//   - Graph storage: BuildTEGraphInto rebuilds the TE graph into the
//     previous cycle's slices, so steady-state graph construction allocates
//     only when the problem outgrows every earlier cycle.
//   - R1 embedding cache: the post-R1 satellite embeddings depend only on
//     the topology-derived inputs (SatFeat, R1, R1Feat) and the weights.
//     When those are bit-identical to the cached cycle's — the common case,
//     since topology holds still for seconds while traffic changes every
//     cycle — the R1 module is skipped and the cached output replayed.
//     Reuse is keyed on a fingerprint of the exact input bits plus the
//     model's weight generation, so a warm solve is bitwise identical to a
//     cold one.
//
// The zero value is ready to use. A CycleState binds to the first model
// that solves with it; other models ignore it.
type CycleState struct {
	model *Model
	g     *TEGraph

	// topoClean is the caller's dirty-shard hint (SetTopoClean): the next
	// solve may keep the graph's R1 side and its input fingerprint instead of
	// rebuilding and rehashing them.
	topoClean bool

	r1Hits, r1Misses uint64

	r1f64 r1Cache[float64]
	r1f32 r1Cache[float32]
}

// SetTopoClean installs the caller's assertion that the next solve's problem
// has a bit-identical link set, link capacities and node count to the
// previous solve through this state (traffic may differ freely). Under the
// hint the solve skips rebuilding the R1 side of the TE graph and skips
// rehashing the R1 input fingerprint — the per-shard dirty-set fast path of
// the sharded solver. The hint persists until changed; it is ignored (and a
// full rebuild performed) whenever the retained graph's shapes do not match
// the problem. A wrong assertion trades correctness for speed: the solver
// would replay R1 embeddings of the stale topology.
func (cs *CycleState) SetTopoClean(clean bool) { cs.topoClean = clean }

// R1Stats reports how many solves through this state replayed the cached
// post-R1 embeddings (hits) versus recomputed them (misses). The warm-hit
// ratio hits/(hits+misses) is the temporal-coherence yield of a replay loop.
func (cs *CycleState) R1Stats() (hits, misses uint64) { return cs.r1Hits, cs.r1Misses }

// r1Cache holds one dtype's cached post-R1 satellite embeddings. want is the
// fingerprint of the current cycle's R1 inputs (set by the solve entry
// before the forward pass); key is the fingerprint the cached out tensor was
// computed from. wantGen/haveWant record the weight generation want was
// hashed at, so a topo-clean solve can keep want without rehashing.
type r1Cache[T autodiff.Float] struct {
	want     uint64
	wantGen  uint64
	haveWant bool
	key      uint64
	out      *autodiff.TensorOf[T]
}

// store retains a copy of the post-R1 embeddings for the next cycle,
// reusing the previous cycle's buffer when shapes match.
func (c *r1Cache[T]) store(sat *autodiff.TensorOf[T]) {
	if c.out == nil || !c.out.SameShape(sat) {
		c.out = sat.Clone()
	} else {
		sat.CopyInto(c.out)
	}
	c.key = c.want
}

// claimWarm resolves the Warm option to this model's CycleState: nil when
// absent, of a foreign type, or already bound to a different model.
func (m *Model) claimWarm(w any) *CycleState {
	cs, ok := w.(*CycleState)
	if !ok || cs == nil {
		return nil
	}
	if cs.model == nil {
		cs.model = m
	}
	if cs.model != m {
		return nil
	}
	return cs
}

// r1Key fingerprints the exact inputs of the R1 module: the R1 edge list,
// its capacity features, the satellite degree features, and the weight
// generation. Equal keys mean bit-identical R1 inputs, so the cached output
// is bit-identical to recomputing (the mixer is the 64-bit FNV-1a prime over
// whole words; a collision across consecutive cycles is negligible, the same
// standard topology fingerprints are held to).
func r1Key(g *TEGraph, weightGen uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		h = (h ^ x) * prime64
	}
	mix(weightGen)
	mix(uint64(g.NumSats))
	mix(uint64(len(g.R1.Src)))
	for _, s := range g.R1.Src {
		mix(uint64(s))
	}
	for _, d := range g.R1.Dst {
		mix(uint64(d))
	}
	for _, f := range g.R1Feat {
		mix(math.Float64bits(f))
	}
	for _, f := range g.SatFeat {
		mix(math.Float64bits(f))
	}
	return h
}
