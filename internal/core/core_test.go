package core

import (
	"math"
	"testing"

	"sate/internal/autodiff"
	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/groundnet"
	"sate/internal/orbit"
	"sate/internal/paths"
	"sate/internal/te"
	"sate/internal/topology"
	"sate/internal/traffic"
)

// buildScenario assembles a small TE problem from the full pipeline.
func buildScenario(tb testing.TB, tSec float64, intensity float64, seed int64) *te.Problem {
	tb.Helper()
	cons := constellation.Toy(5, 6)
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(tSec)
	grid := groundnet.SyntheticPopulation(1)
	seg := groundnet.Build(grid, groundnet.Config{
		Users: 2000, UserClusters: 60, Gateways: 8, Relays: 4, Gamma: 0.15, Seed: seed,
	})
	loc := groundnet.NewSatLocator(cons)
	loc.Update(snap.Pos[:snap.NumSats])
	tg := traffic.NewGenerator(seg, traffic.DefaultConfig(intensity, seed))
	tg.AdvanceTo(15 + tSec/100)
	m := traffic.BuildMatrix(tg.ActiveFlows(), loc, orbit.Deg(5), cons.Size())
	if len(m.Entries) == 0 {
		tb.Skip("no demand generated")
	}
	db := paths.NewDB(cons, snap, 4)
	p, err := te.Build(snap, m, db, te.DefaultBuildConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func TestBuildTEGraphInvariants(t *testing.T) {
	p := buildScenario(t, 0, 60, 3)
	g := BuildTEGraph(p)
	if g.NumSats != p.NumNodes {
		t.Errorf("sats = %d want %d", g.NumSats, p.NumNodes)
	}
	if g.NumTraffic != len(p.Flows) {
		t.Errorf("traffic nodes = %d want %d", g.NumTraffic, len(p.Flows))
	}
	if g.NumPaths != p.NumPaths() {
		t.Errorf("path nodes = %d want %d", g.NumPaths, p.NumPaths())
	}
	// R1 carries both directions of every link.
	if g.R1.Len() != 2*len(p.Links) {
		t.Errorf("R1 edges = %d want %d", g.R1.Len(), 2*len(p.Links))
	}
	// Feature arrays are aligned with relations.
	if len(g.R1Feat) != g.R1.Len() || len(g.R2Feat) != g.R2.Len() || len(g.R3Feat) != g.R3.Len() {
		t.Error("edge feature arrays misaligned")
	}
	// R3 has exactly one edge per path variable.
	if g.R3.Len() != g.NumPaths {
		t.Errorf("R3 edges = %d want %d", g.R3.Len(), g.NumPaths)
	}
	// VarFlow/FlowVars are mutually consistent.
	for fi, vars := range g.FlowVars {
		for _, j := range vars {
			if g.VarFlow[j] != fi {
				t.Fatal("VarFlow/FlowVars inconsistent")
			}
		}
	}
	// R2 position features are in [0,1].
	for _, f := range g.R2Feat {
		if f < 0 || f > 1 {
			t.Fatalf("position feature %v out of range", f)
		}
	}
}

func TestGraphReductionCountsFewerRelations(t *testing.T) {
	p := buildScenario(t, 0, 60, 5)
	reduced, full := FullGraphRelations(p)
	if reduced >= full {
		t.Errorf("reduction did not reduce: %d vs %d", reduced, full)
	}
}

func TestModelSolveFeasible(t *testing.T) {
	p := buildScenario(t, 0, 60, 7)
	m := NewModel(DefaultConfig())
	a, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Check(a); v.Any(1e-6) {
		t.Fatalf("untrained model produced infeasible allocation after trim: %+v", v)
	}
	// Demand constraint holds by construction even before trimming.
	if a.Throughput() < 0 {
		t.Fatal("negative throughput")
	}
}

func TestModelDeterministicForSeed(t *testing.T) {
	p := buildScenario(t, 0, 40, 9)
	m1 := NewModel(DefaultConfig())
	m2 := NewModel(DefaultConfig())
	a1, _ := m1.Solve(p)
	a2, _ := m2.Solve(p)
	if math.Abs(a1.Throughput()-a2.Throughput()) > 1e-9 {
		t.Error("same seed, different outputs")
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	m3 := NewModel(cfg)
	a3, _ := m3.Solve(p)
	if math.Abs(a1.Throughput()-a3.Throughput()) < 1e-12 {
		t.Log("different seeds produced identical outputs (unlikely but possible)")
	}
}

func TestAllocationRespectsdemandByConstruction(t *testing.T) {
	p := buildScenario(t, 0, 80, 11)
	m := NewModel(DefaultConfig())
	g := BuildTEGraph(p)
	tp := autodiff.NewTape()
	x := m.Allocate(tp, g, p)
	// Per flow: sum over candidate paths <= demand (softmax*sigmoid mix).
	for fi, vars := range g.FlowVars {
		var s float64
		for _, j := range vars {
			if x.Val.Data[j] < 0 {
				t.Fatal("negative raw allocation")
			}
			s += x.Val.Data[j]
		}
		if s > p.Flows[fi].DemandMbps+1e-9 {
			t.Fatalf("flow %d raw allocation %v exceeds demand %v", fi, s, p.Flows[fi].DemandMbps)
		}
	}
}

func TestNewSampleAlignsLabels(t *testing.T) {
	p := buildScenario(t, 0, 50, 13)
	ref, err := (baselines.LPExact{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSample(p, ref)
	if len(s.Labels) != s.Graph.NumPaths {
		t.Fatalf("labels = %d vars = %d", len(s.Labels), s.Graph.NumPaths)
	}
	var sum float64
	for _, l := range s.Labels {
		sum += l
	}
	if math.Abs(sum-ref.Throughput()) > 1e-6 {
		t.Errorf("label mass %v vs reference throughput %v", sum, ref.Throughput())
	}
}

func TestTrainingImprovesAllocation(t *testing.T) {
	// Build a few scenarios, label with the exact solver, train briefly, and
	// require the trained model to beat the untrained one on held-out data.
	var samples []*Sample
	for i, seed := range []int64{21, 22, 23} {
		p := buildScenario(t, float64(i)*50, 60, seed)
		ref, err := (baselines.LPExact{}).Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, NewSample(p, ref))
	}
	test := buildScenario(t, 400, 60, 77)
	refTest, err := (baselines.LPExact{}).Solve(test)
	if err != nil {
		t.Fatal(err)
	}
	opt := refTest.Throughput()

	m := NewModel(DefaultConfig())
	before, _ := m.Solve(test)

	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	res, err := Train(m, samples, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.Losses[0] {
		t.Errorf("loss did not decrease: %v -> %v", res.Losses[0], res.FinalLoss)
	}
	after, _ := m.Solve(test)
	if v := test.Check(after); v.Any(1e-6) {
		t.Fatalf("trained model infeasible: %+v", v)
	}
	t.Logf("throughput: before %.1f, after %.1f, optimal %.1f",
		before.Throughput(), after.Throughput(), opt)
	if after.Throughput() < before.Throughput() {
		t.Errorf("training made the model worse: %.1f -> %.1f",
			before.Throughput(), after.Throughput())
	}
	if after.Throughput() < 0.5*opt {
		t.Errorf("trained model too far from optimal: %.1f vs %.1f", after.Throughput(), opt)
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	m := NewModel(DefaultConfig())
	if _, err := Train(m, nil, DefaultTrainConfig()); err == nil {
		t.Error("expected error on empty dataset")
	}
}

func TestLossPenalizesOverload(t *testing.T) {
	p := buildScenario(t, 0, 60, 31)
	m := NewModel(DefaultConfig())
	ref, _ := (baselines.LPExact{}).Solve(p)
	s := NewSample(p, ref)

	// Compare loss of a feasible allocation vs a copy with overloads.
	mk := func(scale float64) float64 {
		tp := autodiff.NewTape()
		vals := make([]float64, s.Graph.NumPaths)
		for j := range vals {
			vals[j] = s.Labels[j] * scale
		}
		x := tp.Const(autodiff.FromSlice(s.Graph.NumPaths, 1, vals))
		return Loss(tp, m, s, x, DefaultLossConfig()).Val.Data[0]
	}
	feasible := mk(1)
	overloaded := mk(20) // 20x the optimum blows past link capacities
	if overloaded <= feasible {
		t.Errorf("overload not penalised: %v <= %v", overloaded, feasible)
	}
}

func TestMeasureVolume(t *testing.T) {
	p := buildScenario(t, 0, 60, 41)
	v := MeasureVolume(p, 60, 10, 20)
	if v.TrafficOriginal != int64(60*60*8) {
		t.Errorf("traffic original = %d", v.TrafficOriginal)
	}
	if v.PathOriginal != int64(60*60*10*20*4) {
		t.Errorf("path original = %d", v.PathOriginal)
	}
	if v.TotalPruned() >= v.TotalOriginal() {
		t.Error("pruning did not reduce volume")
	}
	if v.Reduction() <= 1 {
		t.Errorf("reduction = %v", v.Reduction())
	}
}

func TestVolumeReductionGrowsWithScale(t *testing.T) {
	// The Table-1 trend: reduction factor grows with constellation size for
	// similar live demand.
	p := buildScenario(t, 0, 60, 43)
	small := MeasureVolume(p, 66, 10, 20)
	big := MeasureVolume(p, 4236, 10, 40)
	if big.Reduction() <= small.Reduction() {
		t.Errorf("reduction did not grow with scale: %v vs %v", big.Reduction(), small.Reduction())
	}
}

func TestModelEmptyProblem(t *testing.T) {
	p := &te.Problem{NumNodes: 5}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	m := NewModel(DefaultConfig())
	a, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput() != 0 {
		t.Error("empty problem should yield zero allocation")
	}
}
