package core

import (
	"math"
	"testing"

	"sate/internal/baselines"
	"sate/internal/obs"
	"sate/internal/par"
	"sate/internal/solve"
)

// TestSolveObsAddsZeroAllocs verifies the redesign's zero-overhead claim
// (DESIGN.md §9): attaching an enabled registry to Model.Solve adds no heap
// allocation per call. The option slice is pre-built once, as the controller
// and online-eval hot loops do; recording itself is atomic ops plus
// lock-free-read map lookups on constant keys.
func TestSolveObsAddsZeroAllocs(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("race runtime perturbs alloc accounting (see obs.RaceEnabled)")
	}
	p := buildScenario(t, 0, 60, 7)
	m := NewModel(DefaultConfig())
	defer par.SetWorkers(1)()

	baseline := testing.AllocsPerRun(5, func() {
		if _, err := m.Solve(p); err != nil {
			t.Fatal(err)
		}
	})

	reg := obs.NewRegistry()
	opts := []solve.Option{solve.WithRegistry(reg)}
	// Warm up: first instrumented call creates the metric entries.
	if _, err := m.Solve(p, opts...); err != nil {
		t.Fatal(err)
	}
	instrumented := testing.AllocsPerRun(5, func() {
		if _, err := m.Solve(p, opts...); err != nil {
			t.Fatal(err)
		}
	})

	if delta := instrumented - baseline; delta > 0 {
		t.Fatalf("enabled registry adds %v allocs/op to Solve (baseline %v, instrumented %v), want 0",
			delta, baseline, instrumented)
	}
	if got := solve.SolveHistogram(reg, "sate").Count(); got == 0 {
		t.Fatal("solve histogram recorded nothing")
	}
}

// TestTrainRecordsMetrics checks the training loop's registry wiring:
// per-epoch loss gauge, epoch counter, step latency and span histograms, and
// the tape-arena reuse counters that make §8's recycling observable.
func TestTrainRecordsMetrics(t *testing.T) {
	p := buildScenario(t, 0, 60, 7)
	ref, err := (baselines.LPExact{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	samples := []*Sample{NewSample(p, ref)}
	m := NewModel(DefaultConfig())
	reg := obs.NewRegistry()
	cfg := DefaultTrainConfig()
	cfg.Epochs = 3
	cfg.Registry = reg
	if _, err := Train(m, samples, cfg); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("sate_train_epochs_total").Value(); got != 3 {
		t.Fatalf("epochs_total = %d, want 3", got)
	}
	if got := reg.Histogram("sate_train_step_seconds", nil).Count(); got != 3 {
		t.Fatalf("step count = %d, want 3", got)
	}
	for _, phase := range []string{obs.PhaseForward, obs.PhaseBackward, obs.PhaseAdamStep} {
		if got := reg.SpanHistogram(phase).Count(); got != 3 {
			t.Fatalf("span %q count = %d, want 3", phase, got)
		}
	}
	// Epochs past the first reuse the tape arena.
	if got := reg.Counter("sate_tape_tensor_reuse_total").Value(); got == 0 {
		t.Fatal("tape reuse counter never moved")
	}
}

// TestSolveMLUObjectiveRouting checks that the unified entry dispatches on
// the objective option and that the deprecated SolveMLU wrapper matches it.
func TestSolveMLUObjectiveRouting(t *testing.T) {
	p := buildScenario(t, 0, 60, 7)
	m := NewModel(DefaultConfig())
	viaOption, err := m.Solve(p, solve.WithObjective(solve.MLU))
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore no-deprecated-call this test pins the wrapper's bitwise equivalence
	viaWrapper, err := m.SolveMLU(p)
	if err != nil {
		t.Fatal(err)
	}
	for fi := range viaOption.X {
		for pi := range viaOption.X[fi] {
			// Both paths run the same code; require bitwise identity.
			if math.Float64bits(viaOption.X[fi][pi]) != math.Float64bits(viaWrapper.X[fi][pi]) {
				t.Fatalf("objective option and SolveMLU disagree at [%d][%d]: %v vs %v",
					fi, pi, viaOption.X[fi][pi], viaWrapper.X[fi][pi])
			}
		}
	}
	reg := obs.NewRegistry()
	if _, err := m.Solve(p, solve.WithObjective(solve.MLU), solve.WithRegistry(reg)); err != nil {
		t.Fatal(err)
	}
	if got := solve.SolveHistogram(reg, "sate-mlu").Count(); got != 1 {
		t.Fatalf("sate-mlu histogram count = %d, want 1", got)
	}
}
