package core

import (
	"testing"

	"sate/internal/solve"
	"sate/internal/te"
)

func TestTrainMLUReducesLoss(t *testing.T) {
	p := buildScenario(t, 0, 80, 51)
	m := NewModel(DefaultConfig())
	losses, err := TrainMLU(m, []*te.Problem{p}, 15, 3e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 15 {
		t.Fatalf("losses = %d", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Errorf("MLU loss did not decrease: %v -> %v", losses[0], losses[len(losses)-1])
	}
}

func TestSolveMLUFeasibleAndRoutesDemand(t *testing.T) {
	p := buildScenario(t, 0, 40, 53)
	m := NewModel(DefaultConfig())
	a, err := m.Solve(p, solve.WithObjective(solve.MLU))
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Check(a); v.Any(1e-6) {
		t.Fatalf("violations: %+v", v)
	}
	// At light load the MLU variant routes (nearly) all demand with paths
	// available: per-flow totals equal demand before trimming for flows with
	// candidate paths, so satisfied demand should be substantial.
	if p.SatisfiedDemand(a) < 0.3 {
		t.Errorf("MLU variant satisfied only %.2f at light load", p.SatisfiedDemand(a))
	}
}

func TestTrainMLUEmpty(t *testing.T) {
	m := NewModel(DefaultConfig())
	if _, err := TrainMLU(m, nil, 5, 1e-3); err == nil {
		t.Error("expected error on empty dataset")
	}
}

func TestAccessRelationAblationModel(t *testing.T) {
	p := buildScenario(t, 0, 60, 55)
	cfg := DefaultConfig()
	cfg.AccessRelation = true
	full := NewModel(cfg)
	reduced := NewModel(DefaultConfig())
	if full.NumParams() <= reduced.NumParams() {
		t.Error("access-relation model should have more parameters")
	}
	a, err := full.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Check(a); v.Any(1e-6) {
		t.Fatalf("violations: %+v", v)
	}
	g := BuildTEGraph(p)
	if g.Access.Len() != 2*len(p.Flows) {
		t.Errorf("access edges = %d want %d", g.Access.Len(), 2*len(p.Flows))
	}
}
