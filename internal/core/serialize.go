package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// modelFile is the on-disk representation of a trained model: the
// hyperparameters plus every parameter tensor in Params() order (which is
// deterministic for a given Config).
type modelFile struct {
	Version int
	Cfg     Config
	Shapes  [][2]int
	Data    [][]float64
}

const modelFileVersion = 1

// Save writes the model (hyperparameters + weights) to w with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	f := modelFile{Version: modelFileVersion, Cfg: m.Cfg}
	for _, p := range m.params {
		f.Shapes = append(f.Shapes, [2]int{p.Val.Rows, p.Val.Cols})
		f.Data = append(f.Data, append([]float64(nil), p.Val.Data...))
	}
	return gob.NewEncoder(w).Encode(&f)
}

// Load reads a model saved by Save. The architecture is rebuilt from the
// stored Config and the weights restored; the result is ready for inference
// or further training.
func Load(r io.Reader) (*Model, error) {
	var f modelFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if f.Version != modelFileVersion {
		return nil, fmt.Errorf("core: unsupported model file version %d", f.Version)
	}
	m := NewModel(f.Cfg)
	if len(f.Data) != len(m.params) {
		return nil, fmt.Errorf("core: model file has %d tensors, architecture needs %d", len(f.Data), len(m.params))
	}
	for i, p := range m.params {
		if f.Shapes[i] != [2]int{p.Val.Rows, p.Val.Cols} {
			return nil, fmt.Errorf("core: tensor %d shape %v, want %dx%d", i, f.Shapes[i], p.Val.Rows, p.Val.Cols)
		}
		copy(p.Val.Data, f.Data[i])
	}
	m.InvalidateWeightCaches()
	return m, nil
}

// SaveFile writes the model to a file path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a model from a file path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
