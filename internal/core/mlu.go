package core

import (
	"fmt"
	"math"

	"sate/internal/autodiff"
	"sate/internal/obs"
	"sate/internal/solve"
	"sate/internal/te"
)

// TrainMLU fits the model for the minimise-max-link-utilisation objective of
// Appendix H.2. Training is self-supervised: the allocation must route all
// demand (the MLU problem's convention — gates are ignored, the softmax
// split carries full demand) and the loss is a smooth-max (scaled
// sum-exp) surrogate of MLU over link utilisations.
//
// The paper notes SaTE's MLU variant "directly repurposes the
// throughput-maximizing GNN's objective", retaining components not perfectly
// suited to MLU — reproduced here by keeping the architecture identical and
// swapping only the loss.
// The optional trailing registry wires per-epoch loss, step latency and
// tape-arena counters into obs (same keys as Train, DESIGN.md §9); the
// variadic spelling keeps pre-redesign call sites compiling unchanged.
func TrainMLU(m *Model, problems []*te.Problem, epochs int, lr float64, registry ...*obs.Registry) ([]float64, error) {
	if len(problems) == 0 {
		return nil, fmt.Errorf("core: no training problems")
	}
	var reg *obs.Registry
	if len(registry) > 0 {
		reg = registry[0]
	}
	opt := autodiff.NewAdam(lr, m.Params()...)
	opt.ClipNorm = 5
	var perEpoch []float64
	const beta = 8.0

	// Static per-problem state (graph, incidence, demand, inverse capacity)
	// is built once; the epoch loop only runs forward/backward passes on a
	// reused tape.
	type mluUnit struct {
		p               *te.Problem
		g               *TEGraph
		varIdx, linkIdx []int
		demand, invCap  []float64
	}
	var units []mluUnit
	for _, p := range problems {
		g := BuildTEGraph(p)
		if g.NumPaths == 0 {
			continue
		}
		u := mluUnit{p: p, g: g, demand: make([]float64, g.NumPaths)}
		for j, fi := range g.VarFlow {
			u.demand[j] = p.Flows[fi].DemandMbps
		}
		for fi, vars := range g.FlowVars {
			for pi, j := range vars {
				for _, li := range p.PathLinks(fi, pi) {
					u.varIdx = append(u.varIdx, j)
					u.linkIdx = append(u.linkIdx, li)
				}
			}
		}
		if len(u.varIdx) == 0 {
			continue
		}
		u.invCap = make([]float64, len(p.Links))
		for i, c := range p.LinkCap {
			if c > 0 {
				u.invCap[i] = 1 / c
			}
		}
		units = append(units, u)
	}

	to := newTrainObs(reg)
	tp := autodiff.NewTape()
	for ep := 0; ep < epochs; ep++ {
		var sum float64
		for _, u := range units {
			g, p := u.g, u.p
			tp.Reset()
			step := obs.StartTimer(to.stepSeconds)
			sp := obs.StartTimer(to.spForward)
			scores, _ := m.Forward(tp, g)
			alpha := tp.SegmentSoftmax(scores, g.VarFlow, g.NumTraffic)
			x := tp.Mul(alpha, tp.Const(tp.TensorFrom(g.NumPaths, 1, u.demand)))
			loads := tp.ScatterAddRows(tp.Gather(x, u.varIdx), u.linkIdx, len(p.Links))
			util := tp.Mul(loads, tp.Const(tp.TensorFrom(len(p.Links), 1, u.invCap)))
			loss := tp.Scale(tp.SumAll(tp.Exp(tp.Scale(util, beta))), 1/beta)
			sp.End()
			opt.ZeroGrad()
			sp = obs.StartTimer(to.spBackward)
			tp.Backward(loss)
			sp.End()
			sp = obs.StartTimer(to.spAdam)
			opt.Step()
			sp.End()
			step.End()
			lv := loss.Val.Data[0]
			if math.IsNaN(lv) || math.IsInf(lv, 0) {
				return nil, fmt.Errorf("core: MLU loss diverged at epoch %d", ep)
			}
			sum += lv
		}
		mean := sum / float64(len(problems))
		perEpoch = append(perEpoch, mean)
		m.InvalidateWeightCaches()
		to.epoch(tp, mean)
	}
	return perEpoch, nil
}

// SolveMLU computes an allocation under the MLU objective: full demand is
// routed via the softmax split (no gating), then trimmed for feasibility.
//
// Deprecated: SolveMLU is the pre-redesign spelling; it is equivalent to
// Solve(p, solve.WithObjective(solve.MLU), opts...). It remains a supported
// thin wrapper.
//
//sate:hotpath MLU-objective inference entry point, one call per TE cycle
func (m *Model) SolveMLU(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	return m.solveMLU(p, solve.Build(opts...))
}

// solveMLU is the MLU inference path shared by Solve (objective routing)
// and the deprecated SolveMLU wrapper. It always computes in float64: the
// MLU head is rarely latency-critical and a solve.Float32 request falls
// back here silently (documented in DESIGN.md §11), as do warm-start
// requests — both are throughput-path optimisations.
func (m *Model) solveMLU(p *te.Problem, o solve.Options) (*te.Allocation, error) {
	a := solve.Begin(o, "sate-mlu")
	defer a.End()
	sp := o.Registry.StartSpan(obs.PhaseGraphBuild)
	g := BuildTEGraph(p)
	sp.End()
	alloc := te.NewAllocation(p)
	if g.NumPaths == 0 {
		return alloc, nil
	}
	tp := getTape[float64](&m.tapes)
	sp = o.Registry.StartSpan(obs.PhaseForward)
	scores, _ := m.Forward(tp, g)
	alpha := tp.SegmentSoftmax(scores, g.VarFlow, g.NumTraffic)
	sp.End()
	sp = o.Registry.StartSpan(obs.PhaseDecode)
	for fi, vars := range g.FlowVars {
		for pi, j := range vars {
			alloc.X[fi][pi] = alpha.Val.Data[j] * p.Flows[fi].DemandMbps
		}
	}
	putTape(&m.tapes, tp)
	p.Trim(alloc)
	sp.End()
	return alloc, nil
}
