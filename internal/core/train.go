package core

import (
	"fmt"
	"math"

	"sate/internal/autodiff"
	"sate/internal/obs"
	"sate/internal/te"
)

// LossConfig holds the hyperparameters of the mixed loss of Appendix B.
type LossConfig struct {
	LambdaFlow    float64 // weights total-flow reward in the penalty term
	LambdaBalance float64 // balances supervised vs penalized-optimization terms
	AlphaMax      float64 // utilisation clamp inside the exp of Eq. (5)
}

// DefaultLossConfig returns the grid-searched defaults. The supervised term
// is the anchor (its labels are feasible by construction); the penalized-
// optimization term nudges toward higher flow and away from overload without
// being allowed to dominate early training — a large balance keeps the
// overload penalty from crashing the gates before the supervised signal
// differentiates paths (feasibility at inference is guaranteed by trimming).
func DefaultLossConfig() LossConfig {
	return LossConfig{LambdaFlow: 1.0, LambdaBalance: 40.0, AlphaMax: 2.0}
}

// Sample is one training data point: a TE problem with ground-truth labels
// produced by the reference solver (the paper uses Gurobi; here the exact
// simplex / GK solver).
type Sample struct {
	Problem *te.Problem
	Graph   *TEGraph
	// Labels are the optimal x*_fp aligned with Graph variable order.
	Labels []float64

	// varIdx/linkIdx cache the variable->link incidence used by the penalty
	// term (one entry per (path variable, traversed link) pair). Built once
	// per sample — the incidence is static across epochs.
	varIdx, linkIdx []int
	incBuilt        bool
}

// NewSample builds a training sample from a problem and a reference
// allocation.
func NewSample(p *te.Problem, ref *te.Allocation) *Sample {
	g := BuildTEGraph(p)
	labels := make([]float64, g.NumPaths)
	for fi, vars := range g.FlowVars {
		for pi, j := range vars {
			labels[j] = ref.X[fi][pi]
		}
	}
	s := &Sample{Problem: p, Graph: g, Labels: labels}
	s.incidence()
	return s
}

// incidence returns the cached variable->link incidence, building it on
// first use (samples constructed literally in tests skip NewSample).
func (s *Sample) incidence() ([]int, []int) {
	if !s.incBuilt {
		for fi, vars := range s.Graph.FlowVars {
			for pi, j := range vars {
				for _, li := range s.Problem.PathLinks(fi, pi) {
					s.varIdx = append(s.varIdx, j)
					s.linkIdx = append(s.linkIdx, li)
				}
			}
		}
		s.incBuilt = true
	}
	return s.varIdx, s.linkIdx
}

// SupervisedLoss computes only the supervised term (demand-normalised MSE
// against the reference labels). Training warm-starts on it before blending
// in the penalized-optimization term: with heavy overload the penalty can
// crash an undifferentiated model into a dead all-zero allocation, whereas
// the labels are feasible by construction and anchor the model first.
func SupervisedLoss(tp *autodiff.Tape, s *Sample, x *autodiff.Value) *autodiff.Value {
	g := s.Graph
	p := s.Problem
	if g.NumPaths == 0 {
		return tp.Const(tp.Zeros(1, 1))
	}
	invD := tp.Zeros(g.NumPaths, 1)
	labN := tp.Zeros(g.NumPaths, 1)
	for j, fi := range g.VarFlow {
		d := p.Flows[fi].DemandMbps
		if d <= 0 {
			d = 1
		}
		invD.Data[j] = 1 / d
		labN.Data[j] = s.Labels[j] / d
	}
	xn := tp.Mul(x, tp.Const(invD))
	return tp.MSE(xn, tp.Const(labN))
}

// Loss computes the mixed loss of Eq. (4)/(5) for a forward pass:
//
//	L = L_supervised +
//	    (-λ_flow·total_flow + Σ_i α_i·over_flow_i) / (λ_balance·λ_flow·total_demand)
//	α_i = exp(min(utilization_i/capacity_i, α_max))
//
// x is the model's NumPaths x 1 allocation; the supervised term is the MSE of
// demand-normalised allocations against the labels.
func Loss(tp *autodiff.Tape, m *Model, s *Sample, x *autodiff.Value, cfg LossConfig) *autodiff.Value {
	g := s.Graph
	p := s.Problem
	if g.NumPaths == 0 {
		return tp.Const(tp.Zeros(1, 1))
	}

	// Demand-normalised supervised anchor (same term as SupervisedLoss).
	sup := SupervisedLoss(tp, s, x)

	// total_flow = sum of allocations.
	totalFlow := tp.SumAll(x)

	// Per-link loads via scatter over the cached variable->link incidence.
	varIdx, linkIdx := s.incidence()
	loss := sup
	totalDemand := p.TotalDemand()
	if totalDemand <= 0 {
		totalDemand = 1
	}
	den := cfg.LambdaBalance * cfg.LambdaFlow * totalDemand
	if len(varIdx) > 0 {
		contrib := tp.Gather(x, varIdx)                            // nnz x 1
		loads := tp.ScatterAddRows(contrib, linkIdx, len(p.Links)) // links x 1
		// alpha_i of Eq. (5) are adaptive penalty COEFFICIENTS: computed
		// from the current utilisations but detached from the gradient.
		// Back-propagating through the exponential makes the penalty
		// gradient explode under overload and kills the (sigmoid) gates.
		alphaConst := tp.Zeros(len(p.Links), 1)
		for i := range p.LinkCap {
			if p.LinkCap[i] > 0 {
				u := loads.Val.Data[i] / p.LinkCap[i]
				alphaConst.Data[i] = math.Exp(math.Min(u, cfg.AlphaMax))
			}
		}
		caps := tp.Const(tp.TensorFrom(len(p.Links), 1, p.LinkCap))
		over := tp.ReLU(tp.Sub(loads, caps)) // over_flow_i
		penalty := tp.SumAll(tp.Mul(tp.Const(alphaConst), over))
		mixed := tp.Scale(tp.Sub(penalty, tp.Scale(totalFlow, cfg.LambdaFlow)), 1/den)
		loss = tp.Add(loss, mixed)
	} else {
		loss = tp.Add(loss, tp.Scale(totalFlow, -cfg.LambdaFlow/den))
	}
	return loss
}

// TrainConfig controls the supervised training loop.
type TrainConfig struct {
	Epochs   int
	LR       float64
	ClipNorm float64
	Loss     LossConfig
	// WarmupFrac is the fraction of epochs trained on the supervised term
	// alone before the penalized-optimization term is blended in (see
	// SupervisedLoss). Zero uses the default of 1.0: CPU-scale training is
	// most robust purely supervised — under heavy overload the Mbps-scale
	// penalty gradient overwhelms the demand-normalised supervised term and
	// can crash the gates (see the abl-loss experiment). Set below 1 to
	// blend the Eq. 4 mixed loss in after a supervised warm start.
	WarmupFrac float64
	// Verbose emits per-epoch progress via the Log callback.
	Log func(epoch int, loss float64)
	// Registry receives training metrics: per-epoch loss gauge, per-step
	// latency histogram, forward/backward/adam-step spans and tape-arena
	// reuse/alloc counters (DESIGN.md §9). Nil disables instrumentation.
	Registry *obs.Registry
}

// trainObs bundles the training-loop metric handles, pre-resolved once per
// run so the epoch loop performs only atomic updates (every handle is nil —
// and every update a no-op — when no registry is attached).
type trainObs struct {
	epochLoss   *obs.Gauge
	epochsTotal *obs.Counter
	stepSeconds *obs.Histogram
	spForward   *obs.Histogram
	spBackward  *obs.Histogram
	spAdam      *obs.Histogram
	tapeReuse   *obs.Counter
	tapeAlloc   *obs.Counter
	prev        autodiff.ArenaStats
}

func newTrainObs(reg *obs.Registry) trainObs {
	return trainObs{
		epochLoss:   reg.Gauge("sate_train_epoch_loss"),
		epochsTotal: reg.Counter("sate_train_epochs_total"),
		stepSeconds: reg.Histogram("sate_train_step_seconds", obs.DefLatencyBuckets),
		spForward:   reg.SpanHistogram(obs.PhaseForward),
		spBackward:  reg.SpanHistogram(obs.PhaseBackward),
		spAdam:      reg.SpanHistogram(obs.PhaseAdamStep),
		tapeReuse:   reg.Counter("sate_tape_tensor_reuse_total"),
		tapeAlloc:   reg.Counter("sate_tape_tensor_alloc_total"),
	}
}

// epoch records the end of one epoch: loss gauge, epoch counter, and the
// tape-arena deltas since the previous call (reuse vs. fresh allocation —
// the live view of the §8 memory model).
func (to *trainObs) epoch(tp *autodiff.Tape, mean float64) {
	to.epochLoss.Set(mean)
	to.epochsTotal.Inc()
	if to.tapeReuse == nil && to.tapeAlloc == nil {
		return
	}
	st := tp.ArenaStats()
	to.tapeReuse.Add(st.TensorReuse - to.prev.TensorReuse)
	to.tapeAlloc.Add(st.TensorAlloc - to.prev.TensorAlloc)
	to.prev = st
}

// DefaultTrainConfig returns sane CPU-scale defaults.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 30, LR: 3e-3, ClipNorm: 5, Loss: DefaultLossConfig(), WarmupFrac: 1.0}
}

// TrainResult summarises a training run.
type TrainResult struct {
	Epochs    int
	FinalLoss float64
	Losses    []float64 // mean loss per epoch
}

// Train fits the model on the samples with Adam.
func Train(m *Model, samples []*Sample, cfg TrainConfig) (*TrainResult, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no training samples")
	}
	if cfg.Epochs == 0 {
		cfg = DefaultTrainConfig()
	}
	opt := autodiff.NewAdam(cfg.LR, m.Params()...)
	opt.ClipNorm = cfg.ClipNorm
	warm := cfg.WarmupFrac
	if warm == 0 {
		warm = 1.0
	}
	warmEpochs := int(warm * float64(cfg.Epochs))
	res := &TrainResult{Epochs: cfg.Epochs}
	to := newTrainObs(cfg.Registry)
	// One tape for the whole run: Reset recycles every intermediate into the
	// arena, so after the first pass per problem size steps allocate nothing.
	tp := autodiff.NewTape()
	for ep := 0; ep < cfg.Epochs; ep++ {
		var sum float64
		for _, s := range samples {
			tp.Reset()
			step := obs.StartTimer(to.stepSeconds)
			sp := obs.StartTimer(to.spForward)
			x := m.Allocate(tp, s.Graph, s.Problem)
			var l *autodiff.Value
			if ep < warmEpochs {
				l = SupervisedLoss(tp, s, x)
			} else {
				l = Loss(tp, m, s, x, cfg.Loss)
			}
			sp.End()
			opt.ZeroGrad()
			sp = obs.StartTimer(to.spBackward)
			tp.Backward(l)
			sp.End()
			sp = obs.StartTimer(to.spAdam)
			opt.Step()
			sp.End()
			step.End()
			lv := l.Val.Data[0]
			if math.IsNaN(lv) || math.IsInf(lv, 0) {
				return nil, fmt.Errorf("core: loss diverged at epoch %d", ep)
			}
			sum += lv
		}
		mean := sum / float64(len(samples))
		res.Losses = append(res.Losses, mean)
		res.FinalLoss = mean
		m.InvalidateWeightCaches()
		to.epoch(tp, mean)
		if cfg.Log != nil {
			cfg.Log(ep, mean)
		}
	}
	return res, nil
}
