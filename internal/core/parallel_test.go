package core

import (
	"testing"

	"sate/internal/autodiff"
	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/groundnet"
	"sate/internal/orbit"
	"sate/internal/par"
	"sate/internal/paths"
	"sate/internal/te"
	"sate/internal/topology"
	"sate/internal/traffic"
)

// buildScenario60 assembles a TE problem on the 60-satellite toy
// constellation for the tape-reuse equivalence tests.
func buildScenario60(tb testing.TB) *te.Problem {
	tb.Helper()
	cons := constellation.Toy(6, 10)
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	grid := groundnet.SyntheticPopulation(1)
	seg := groundnet.Build(grid, groundnet.Config{
		Users: 2000, UserClusters: 60, Gateways: 8, Relays: 4, Gamma: 0.15, Seed: 3,
	})
	loc := groundnet.NewSatLocator(cons)
	loc.Update(snap.Pos[:snap.NumSats])
	tg := traffic.NewGenerator(seg, traffic.DefaultConfig(60, 3))
	tg.AdvanceTo(15)
	m := traffic.BuildMatrix(tg.ActiveFlows(), loc, orbit.Deg(5), cons.Size())
	if len(m.Entries) == 0 {
		tb.Skip("no demand generated")
	}
	db := paths.NewDB(cons, snap, 4)
	p, err := te.Build(snap, m, db, te.DefaultBuildConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// runTrainSteps performs three supervised training steps (the Train loop
// body) with either a fresh tape per step or one reused tape, returning the
// per-step losses and the flattened final parameters.
func runTrainSteps(t *testing.T, reuse bool, workers int) ([]float64, []float64) {
	t.Helper()
	restore := par.SetWorkers(workers)
	defer restore()
	p := buildScenario60(t)
	ref, err := (baselines.ECMPWF{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.EmbedDim = 16
	cfg.Seed = 7
	m := NewModel(cfg)
	s := NewSample(p, ref)
	opt := autodiff.NewAdam(3e-3, m.Params()...)
	opt.ClipNorm = 5
	var losses []float64
	tp := autodiff.NewTape()
	for step := 0; step < 3; step++ {
		if reuse {
			tp.Reset()
		} else {
			tp = autodiff.NewTape()
		}
		x := m.Allocate(tp, s.Graph, s.Problem)
		l := SupervisedLoss(tp, s, x)
		opt.ZeroGrad()
		tp.Backward(l)
		opt.Step()
		losses = append(losses, l.Val.Data[0])
	}
	var flat []float64
	for _, pv := range m.Params() {
		flat = append(flat, pv.Val.Data...)
	}
	return losses, flat
}

// TestTapeReuseMatchesFreshTapeTraining is the end-to-end arena contract:
// recycling one tape across training steps must be bitwise identical to a
// fresh tape per step — losses and all parameters — at one worker and at
// several.
func TestTapeReuseMatchesFreshTapeTraining(t *testing.T) {
	for _, w := range []int{1, 4} {
		fLoss, fParams := runTrainSteps(t, false, w)
		rLoss, rParams := runTrainSteps(t, true, w)
		for i := range fLoss {
			if rLoss[i] != fLoss[i] {
				t.Fatalf("workers=%d step %d: reused-tape loss %v, fresh-tape %v", w, i, rLoss[i], fLoss[i])
			}
		}
		if len(rParams) != len(fParams) {
			t.Fatalf("workers=%d: param count mismatch", w)
		}
		for i := range fParams {
			if rParams[i] != fParams[i] {
				t.Fatalf("workers=%d: param[%d] = %v reused, %v fresh", w, i, rParams[i], fParams[i])
			}
		}
	}
}

// TestSolvePooledTapeMatchesFresh checks that the pooled inference tape in
// Model.Solve returns the same allocation when a warm tape is recycled.
func TestSolvePooledTapeMatchesFresh(t *testing.T) {
	p := buildScenario60(t)
	cfg := DefaultConfig()
	cfg.EmbedDim = 16
	cfg.Seed = 7
	m := NewModel(cfg)
	first, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Second solve reuses the pooled tape; must be bitwise identical.
	second, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for fi := range first.X {
		for pi := range first.X[fi] {
			if first.X[fi][pi] != second.X[fi][pi] {
				t.Fatalf("flow %d path %d: warm solve %v, cold solve %v", fi, pi, second.X[fi][pi], first.X[fi][pi])
			}
		}
	}
}
