package core

import "sate/internal/te"

// Volume accounting for the dataset-pruning analysis of Sec. 3.4 / Table 1.
//
// Storage model (documented so the numbers are reproducible):
//
//   - Original traffic matrix: dense N x N float64 demand entries.
//   - Original path dataset: N x N pairs x K paths x MaxHops node IDs
//     (int32), the fixed-shape layout a DNN-based model requires
//     (Sec. 2.4: "all preconfigured paths for each source-destination pair
//     must be explicitly represented").
//   - Pruned traffic: one (src, dst, demand) triple per non-zero entry
//     (2 x int32 + float64).
//   - Pruned paths: actual node sequences of the candidate paths of
//     non-zero entries only (int32 per hop node).
//
// Absolute bytes differ from the paper's table (their storage constants are
// not published); what reproduces is the scaling: original volume grows as
// N^2 while pruned volume tracks live demand, so the reduction factor grows
// by orders of magnitude with constellation size.
type Volume struct {
	NumSats int
	// Bytes.
	TrafficOriginal, TrafficPruned int64
	PathOriginal, PathPruned       int64
}

// TotalOriginal returns the original data-point volume in bytes.
func (v Volume) TotalOriginal() int64 { return v.TrafficOriginal + v.PathOriginal }

// TotalPruned returns the pruned data-point volume in bytes.
func (v Volume) TotalPruned() int64 { return v.TrafficPruned + v.PathPruned }

// Reduction returns the volume-reduction factor.
func (v Volume) Reduction() float64 {
	p := v.TotalPruned()
	if p == 0 {
		return 0
	}
	return float64(v.TotalOriginal()) / float64(p)
}

const (
	bytesFloat64 = 8
	bytesInt32   = 4
)

// MeasureVolume computes the data-point volume for a problem instance under
// the storage model above. k is the configured candidate paths per pair and
// maxHops the fixed path-slot length of the dense layout (the network
// diameter bound).
func MeasureVolume(p *te.Problem, numSats, k, maxHops int) Volume {
	n := int64(numSats)
	v := Volume{NumSats: numSats}
	v.TrafficOriginal = n * n * bytesFloat64
	v.PathOriginal = n * n * int64(k) * int64(maxHops) * bytesInt32
	for fi := range p.Flows {
		v.TrafficPruned += 2*bytesInt32 + bytesFloat64
		for pi := range p.Flows[fi].Paths {
			v.PathPruned += int64(len(p.Flows[fi].Paths[pi].Nodes)) * bytesInt32
		}
	}
	return v
}
