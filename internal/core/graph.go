// Package core implements SaTE itself: the heterogeneous satellite TE graph
// of Fig. 6 (a), its reduction to the three relation types R1/R2/R3 of
// Fig. 6 (b), the embedding initialisation of Fig. 7, the three sequential
// attention-GNN modules with MLP decoder, the constraint-violation
// correction, the mixed supervised + penalty loss of Appendix B (Eq. 4-5),
// the training loop, and the traffic/path pruning volume accounting of
// Sec. 3.4 (Table 1).
package core

import (
	"sate/internal/gnn"
	"sate/internal/te"
)

// TEGraph is the reduced satellite TE graph (Fig. 6 b) extracted from a TE
// problem instance. Node universes:
//
//	satellites: the problem's nodes (satellites plus ground relays)
//	paths:      one node per (flow, path) candidate
//	traffic:    one node per flow (non-zero traffic-matrix entry)
//
// Relations (each stored with both directions where both sides are updated):
//
//	R1 connect:    satellite <-> satellite, edge feature = link capacity
//	R2 crosses:    satellite <-> path, edge feature = position within path
//	R3 transports: traffic  <-> path, edge feature = #candidate paths
//
// The pruning of Sec. 3.4 is inherent: only non-zero traffic entries and
// their candidate paths appear, so graph size scales with live demand, not
// with N^2.
type TEGraph struct {
	NumSats    int
	NumPaths   int
	NumTraffic int

	// Raw scalar features for embedding initialisation (Fig. 7).
	SatFeat     []float64 // NE1 input: #neighbors
	PathFeat    []float64 // NE2 input: path length (hops)
	TrafficFeat []float64 // NE3 input: traffic demand

	R1 gnn.EdgeList // sat -> sat (directed both ways)
	R2 gnn.EdgeList // sat -> path (use Reverse() for path -> sat)
	R3 gnn.EdgeList // traffic -> path (use Reverse() for path -> traffic)

	R1Feat []float64 // EE1 input per R1 edge: link capacity
	R2Feat []float64 // EE2 input per R2 edge: node's position in path
	R3Feat []float64 // EE3 input per R3 edge: #candidate paths of the flow

	// Access is the redundant satellite->traffic "access" relation of the
	// full graph (Fig. 6 a). SaTE's reduction removes it — it is kept here
	// only so the graph-reduction ablation can measure its cost; the default
	// model ignores it.
	Access     gnn.EdgeList
	AccessFeat []float64

	// VarFlow maps each path node (variable) to its flow index, and
	// FlowVars lists path-node indices per flow — the decoder's alignment
	// between graph nodes and allocation variables x_fp.
	VarFlow  []int
	FlowVars [][]int

	// allVars is the shared backing array the FlowVars slices point into,
	// retained so BuildTEGraphInto can reuse it across cycles.
	allVars []int

	// Deduplicated views of the scalar R2/R3 edge features. The raw features
	// have tiny cardinality (R2Feat is a position fraction i/(len-1), R3Feat a
	// scaled candidate count), so the per-edge edge embedding Θe·e — by far
	// the widest matmul of a forward pass — can be computed once per distinct
	// value and gathered back per edge, bitwise identically. R2FeatU holds the
	// distinct values in first-occurrence order and R2FeatIx[e] indexes edge
	// e's value in it; likewise for R3.
	R2FeatU  []float64
	R2FeatIx []int
	R3FeatU  []float64
	R3FeatIx []int

	// featSeen is the dedup scratch map, retained across rebuilds.
	featSeen map[float64]int
}

// Feature scales keep raw inputs O(1) for the neural network. They are fixed
// constants (not fitted), documented here so that saved models remain valid.
const (
	featDegreeScale   = 0.25  // satellite degree ~4
	featHopsScale     = 0.1   // path length ~10 hops
	featDemandScale   = 0.02  // demands ~50 Mbps
	featCapacityScale = 0.005 // link capacity ~200 Mbps
	featPathsScale    = 0.1   // ~10 candidate paths
)

// reuseInts returns s emptied with capacity for at least n elements,
// reallocating only when the retained capacity is too small.
func reuseInts(s []int, n int) []int {
	if cap(s) >= n {
		return s[:0]
	}
	return make([]int, 0, n)
}

func reuseFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:0]
	}
	return make([]float64, 0, n)
}

// BuildTEGraph extracts the reduced TE graph from a problem.
func BuildTEGraph(p *te.Problem) *TEGraph { return BuildTEGraphInto(nil, p) }

// BuildTEGraphInto extracts the reduced TE graph from a problem, rebuilding
// into g's retained storage (g may be nil or a zero value). Across the
// low-churn cycles of a replay loop the slices reach a high-water capacity
// after a few cycles and graph construction stops allocating. The caller
// owns g exclusively; the returned graph is g (or a fresh one when nil) and
// aliases its storage, so it must not be retained past the next rebuild.
func BuildTEGraphInto(g *TEGraph, p *te.Problem) *TEGraph {
	g, _ = buildTEGraphInto(g, p, false)
	return g
}

// buildTEGraphInto is BuildTEGraphInto with the dirty-shard fast path: when
// topoClean is set the caller asserts the problem's link set, capacities and
// node count are bit-identical to the graph's previous rebuild, and the R1
// side (edge list, capacity features, degree features) is kept as-is while
// the traffic-dependent side (R2/R3, path and traffic nodes) is rebuilt. The
// returned bool reports whether the skip was actually taken — it is false
// when the retained shapes do not match the problem (e.g. a first build),
// in which case a full rebuild was performed instead.
//
//lint:ignore hotpath-no-alloc builds by appending into retained high-water capacity; allocation-free once warm (TestSolveObsAddsZeroAllocs pins it)
func buildTEGraphInto(g *TEGraph, p *te.Problem, topoClean bool) (*TEGraph, bool) {
	if g == nil {
		g = &TEGraph{}
	}
	topoClean = topoClean && g.NumSats == p.NumNodes &&
		len(g.R1Feat) == 2*len(p.Links) && len(g.SatFeat) == p.NumNodes
	g.NumSats = p.NumNodes
	g.NumPaths = 0
	g.NumTraffic = 0

	// Pre-size every slice exactly: a graph is built per Solve call, so
	// incremental append growth would be steady-state garbage.
	nR1 := 2 * len(p.Links)
	nPaths, nR2 := 0, 0
	for fi := range p.Flows {
		for pi := range p.Flows[fi].Paths {
			nR2 += len(p.Flows[fi].Paths[pi].Nodes)
		}
		nPaths += len(p.Flows[fi].Paths)
	}
	if !topoClean {
		g.R1 = gnn.EdgeList{Src: reuseInts(g.R1.Src, nR1), Dst: reuseInts(g.R1.Dst, nR1)}
		g.R1Feat = reuseFloats(g.R1Feat, nR1)
	}
	g.TrafficFeat = reuseFloats(g.TrafficFeat, len(p.Flows))
	g.PathFeat = reuseFloats(g.PathFeat, nPaths)
	g.VarFlow = reuseInts(g.VarFlow, nPaths)
	if cap(g.FlowVars) >= len(p.Flows) {
		g.FlowVars = g.FlowVars[:0]
	} else {
		g.FlowVars = make([][]int, 0, len(p.Flows))
	}
	g.R2 = gnn.EdgeList{Src: reuseInts(g.R2.Src, nR2), Dst: reuseInts(g.R2.Dst, nR2)}
	g.R2Feat = reuseFloats(g.R2Feat, nR2)
	g.R3 = gnn.EdgeList{Src: reuseInts(g.R3.Src, nPaths), Dst: reuseInts(g.R3.Dst, nPaths)}
	g.R3Feat = reuseFloats(g.R3Feat, nPaths)
	g.Access = gnn.EdgeList{Src: reuseInts(g.Access.Src, 2*len(p.Flows)), Dst: reuseInts(g.Access.Dst, 2*len(p.Flows))}
	g.AccessFeat = reuseFloats(g.AccessFeat, 2*len(p.Flows))
	// Variable ids are assigned densely in flow order, so FlowVars is a
	// contiguous slicing of 0..nPaths-1 — one shared backing array.
	allVars := reuseInts(g.allVars, nPaths)[:nPaths]
	for i := range allVars {
		allVars[i] = i
	}
	g.allVars = allVars

	// R1: satellite interconnection, both directions, capacity feature.
	// Degrees accumulate directly into SatFeat (exact small integers), then
	// scale in place — same values as a separate degree pass. A topo-clean
	// rebuild keeps the previous cycle's R1 side untouched.
	if !topoClean {
		g.SatFeat = reuseFloats(g.SatFeat, p.NumNodes)[:p.NumNodes]
		clear(g.SatFeat)
		for li, l := range p.Links {
			a, b := int(l.A), int(l.B)
			cap := p.LinkCap[li] * featCapacityScale
			g.R1.Src = append(g.R1.Src, a, b)
			g.R1.Dst = append(g.R1.Dst, b, a)
			g.R1Feat = append(g.R1Feat, cap, cap)
			g.SatFeat[a]++
			g.SatFeat[b]++
		}
		for i, d := range g.SatFeat {
			g.SatFeat[i] = d * featDegreeScale
		}
	}

	// Path and traffic nodes; R2 and R3.
	for fi := range p.Flows {
		f := &p.Flows[fi]
		ti := g.NumTraffic
		g.NumTraffic++
		g.TrafficFeat = append(g.TrafficFeat, f.DemandMbps*featDemandScale)
		nCand := float64(len(f.Paths)) * featPathsScale
		vars := allVars[g.NumPaths : g.NumPaths+len(f.Paths) : g.NumPaths+len(f.Paths)]
		for pi := range f.Paths {
			pn := g.NumPaths
			g.NumPaths++
			path := f.Paths[pi]
			g.PathFeat = append(g.PathFeat, float64(path.Hops())*featHopsScale)
			g.VarFlow = append(g.VarFlow, fi)
			// R2: each satellite the path crosses.
			n := len(path.Nodes)
			for i, node := range path.Nodes {
				pos := 0.0
				if n > 1 {
					pos = float64(i) / float64(n-1)
				}
				g.R2.Src = append(g.R2.Src, int(node))
				g.R2.Dst = append(g.R2.Dst, pn)
				g.R2Feat = append(g.R2Feat, pos)
			}
			// R3: the flow's traffic node transports over this path.
			g.R3.Src = append(g.R3.Src, ti)
			g.R3.Dst = append(g.R3.Dst, pn)
			g.R3Feat = append(g.R3Feat, nCand)
		}
		g.FlowVars = append(g.FlowVars, vars)
		// Redundant access relation (ablation only): the flow's endpoints.
		g.Access.Src = append(g.Access.Src, int(f.Src), int(f.Dst))
		g.Access.Dst = append(g.Access.Dst, ti, ti)
		g.AccessFeat = append(g.AccessFeat, f.DemandMbps*featDemandScale, f.DemandMbps*featDemandScale)
	}
	if g.featSeen == nil {
		g.featSeen = make(map[float64]int)
	}
	g.R2FeatU, g.R2FeatIx = dedupFeat(g.featSeen, g.R2FeatU, g.R2FeatIx, g.R2Feat)
	g.R3FeatU, g.R3FeatIx = dedupFeat(g.featSeen, g.R3FeatU, g.R3FeatIx, g.R3Feat)
	return g, topoClean
}

// dedupFeat rebuilds the (unique values, per-element index) view of feat into
// the retained uniq/idx storage, using seen as scratch. Unique values keep
// first-occurrence order so the view is deterministic for a given feature
// sequence.
func dedupFeat(seen map[float64]int, uniq []float64, idx []int, feat []float64) ([]float64, []int) {
	clear(seen)
	uniq = reuseFloats(uniq, len(feat))
	idx = reuseInts(idx, len(feat))
	for _, v := range feat {
		u, ok := seen[v]
		if !ok {
			u = len(uniq)
			seen[v] = u
			uniq = append(uniq, v)
		}
		idx = append(idx, u)
	}
	return uniq, idx
}

// FullGraphRelations counts the relations of the unreduced heterogeneous
// graph of Fig. 6 (a) for the same problem: in addition to R1-R3 it carries
// the redundant "access" (satellite-traffic) edges and explicit link nodes
// with their "contains" (path-link) and incidence (link-satellite) edges.
// Used by the graph-reduction ablation to quantify what the reduction saves.
func FullGraphRelations(p *te.Problem) (reduced, full int) {
	g := BuildTEGraph(p)
	reduced = g.R1.Len() + g.R2.Len() + g.R3.Len()
	full = reduced
	// access: src and dst satellite of every flow.
	full += 2 * len(p.Flows)
	// link nodes: one per link, 2 incidence edges each.
	full += 2 * len(p.Links)
	// contains: one edge per (path, link) incidence.
	for fi := range p.Flows {
		for pi := range p.Flows[fi].Paths {
			full += len(p.PathLinks(fi, pi))
		}
	}
	return reduced, full
}
