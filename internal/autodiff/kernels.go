package autodiff

import (
	"math"
	"sync"

	"sate/internal/par"
)

// This file holds the dense matrix kernels shared by the MatMul/MatMulT
// forward and backward passes. All three are row-parallel over the output:
// each par chunk owns a disjoint row range of out, so there is no shared
// write state and no gradient merge — results are bitwise identical to the
// serial loops for every worker count (see the package par contract).
//
// The kernels are cache-blocked for L1/L2 locality: output rows are
// processed in tiles of gemmRowTile (so a row of b is reused across several
// rows of a while it is hot), and the j dimension in blocks of gemmColBlock
// float64s (≈2KB, comfortably L1-resident together with the accumulator
// rows). Blocking only reorders WHICH (i, j) cell is touched when; for any
// single output element the terms are still added in increasing p, so the
// result is bitwise identical to the unblocked axpy loop.
//
// The accumulate flag selects between out = product (forward) and
// out += product (backward gradient accumulation). In accumulate mode each
// output row's contribution is summed into a zeroed scratch row first and
// added to out in one pass, preserving the exact floating-point order of
// the original compute-s-then-add backward loops. Scratch rows come from a
// process-wide sync.Pool (chunks may run on pool goroutines, so they cannot
// touch the single-threaded tape arena).

// kernelFlopTarget is the minimum number of multiply-adds a chunk should
// carry so goroutine dispatch stays negligible.
const kernelFlopTarget = 1 << 15

// segGrainMin is the minimum rows/segments per chunk for the cheap
// per-row ops (softmax, scatter): small enough to spread GAT-sized inputs
// across cores, large enough to amortise dispatch.
const segGrainMin = 64

// gemmRowTile is how many output rows a kernel processes together, sharing
// each streamed row of b across all of them.
const gemmRowTile = 4

// gemmColBlock is the j-dimension block width in float64s.
const gemmColBlock = 256

// rowGrain picks the par grain for a kernel over rows where each row costs
// about rowCost multiply-adds.
func rowGrain(rows, rowCost int) int {
	min := 1
	if rowCost > 0 {
		min = (kernelFlopTarget + rowCost - 1) / rowCost
	}
	return par.Grain(rows, min)
}

// scratchPool recycles per-chunk accumulator rows. Entries are *[]float64
// (not []float64) so Get/Put avoid an interface-boxing allocation.
var scratchPool sync.Pool

func getScratch(n int) *[]float64 {
	if p, _ := scratchPool.Get().(*[]float64); p != nil && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	s := make([]float64, n)
	return &s
}

func putScratch(p *[]float64) { scratchPool.Put(p) }

// gemmArgs carries one kernel launch's operands into the static chunk
// functions (closure-free: see par.ForCtx).
type gemmArgs struct {
	out, a, b  *Tensor
	accumulate bool
}

// gemm computes out (+)= a @ b (a: m x k, b: k x n, out: m x n). When
// accumulate is false the caller must pass a zero-initialised out (all
// callers hand it an arena-zeroed tensor); rows are accumulated in place.
func gemm(out, a, b *Tensor, accumulate bool) {
	m, k, n := a.Rows, a.Cols, b.Cols
	par.ForCtx(m, rowGrain(m, k*n), gemmArgs{out, a, b, accumulate}, gemmChunk)
}

func gemmChunk(g gemmArgs, lo, hi int) {
	a, b, out := g.a, g.b, g.out
	k, n := a.Cols, b.Cols
	var acc []float64
	if g.accumulate {
		p := getScratch(gemmRowTile * n)
		defer putScratch(p)
		acc = *p
	}
	for i0 := lo; i0 < hi; i0 += gemmRowTile {
		i1 := i0 + gemmRowTile
		if i1 > hi {
			i1 = hi
		}
		rows := i1 - i0
		// Destination rows: out directly, or zeroed scratch when
		// accumulating (folded into out once at the end).
		var dst [gemmRowTile][]float64
		for r := 0; r < rows; r++ {
			if g.accumulate {
				dst[r] = acc[r*n : (r+1)*n]
				clear(dst[r])
			} else {
				dst[r] = out.Data[(i0+r)*n : (i0+r+1)*n]
			}
		}
		for j0 := 0; j0 < n; j0 += gemmColBlock {
			j1 := j0 + gemmColBlock
			if j1 > n {
				j1 = n
			}
			for p := 0; p < k; p++ {
				rb := b.Data[p*n+j0 : p*n+j1]
				for r := 0; r < rows; r++ {
					av := a.Data[(i0+r)*k+p]
					if av == 0 && !g.accumulate {
						// Skip-zero only on the forward path (sparse inputs
						// are common there); the backward path keeps every
						// term so non-finite gradients propagate exactly as
						// the direct dot-product form would.
						continue
					}
					d := dst[r][j0:j1]
					for j, bv := range rb {
						d[j] += av * bv
					}
				}
			}
		}
		if g.accumulate {
			for r := 0; r < rows; r++ {
				ro := out.Data[(i0+r)*n : (i0+r+1)*n]
				for j, v := range acc[r*n : (r+1)*n] {
					ro[j] += v
				}
			}
		}
	}
}

// gemmBT computes out (+)= a @ b^T (a: m x k, b: n x k, out: m x n) without
// materialising the transpose: entry (i, j) is the dot product of row i of a
// and row j of b, both contiguous. Row-tiled so each row of b is reused
// across gemmRowTile rows of a.
func gemmBT(out, a, b *Tensor, accumulate bool) {
	m, k, n := a.Rows, a.Cols, b.Rows
	par.ForCtx(m, rowGrain(m, k*n), gemmArgs{out, a, b, accumulate}, gemmBTChunk)
}

func gemmBTChunk(g gemmArgs, lo, hi int) {
	a, b, out := g.a, g.b, g.out
	k, n := a.Cols, b.Rows
	for i0 := lo; i0 < hi; i0 += gemmRowTile {
		i1 := i0 + gemmRowTile
		if i1 > hi {
			i1 = hi
		}
		for j := 0; j < n; j++ {
			rb := b.Data[j*k : (j+1)*k]
			for i := i0; i < i1; i++ {
				ra := a.Data[i*k : (i+1)*k]
				var s float64
				for p, bv := range rb {
					s += ra[p] * bv
				}
				if g.accumulate {
					out.Data[i*n+j] += s
				} else {
					out.Data[i*n+j] = s
				}
			}
		}
	}
}

// gemmAT computes out (+)= a^T @ b (a: m x k, b: m x n, out: k x n). Rather
// than striding down a's columns per output entry, a tile of output rows
// accumulates a[r][i] * b[r] across r into scratch rows (same term order as
// the per-entry dot product), streaming b once per tile, then folds into out
// in one pass.
func gemmAT(out, a, b *Tensor, accumulate bool) {
	m, k, n := a.Rows, a.Cols, b.Cols
	par.ForCtx(k, rowGrain(k, m*n), gemmArgs{out, a, b, accumulate}, gemmATChunk)
}

func gemmATChunk(g gemmArgs, lo, hi int) {
	a, b, out := g.a, g.b, g.out
	m, k, n := a.Rows, a.Cols, b.Cols
	p := getScratch(gemmRowTile * n)
	defer putScratch(p)
	acc := *p
	for i0 := lo; i0 < hi; i0 += gemmRowTile {
		i1 := i0 + gemmRowTile
		if i1 > hi {
			i1 = hi
		}
		rows := i1 - i0
		clear(acc[:rows*n])
		for r := 0; r < m; r++ {
			rb := b.Data[r*n : (r+1)*n]
			ra := a.Data[r*k : (r+1)*k]
			for t := 0; t < rows; t++ {
				av := ra[i0+t]
				accRow := acc[t*n : (t+1)*n]
				for j, bv := range rb {
					accRow[j] += av * bv
				}
			}
		}
		for t := 0; t < rows; t++ {
			ro := out.Data[(i0+t)*n : (i0+t+1)*n]
			accRow := acc[t*n : (t+1)*n]
			if g.accumulate {
				for j, v := range accRow {
					ro[j] += v
				}
			} else {
				copy(ro, accRow)
			}
		}
	}
}

// segmentIndex groups the rows 0..n-1 by segment id, preserving row order
// within each segment: rows[off[s]:off[s+1]] lists the rows of segment s in
// increasing order. It lets the segment ops run segment-parallel (each
// segment owned by one chunk) while keeping the exact accumulation order of
// the serial row sweep. Storage comes from the tape arena (valid until the
// next Reset).
type segmentIndex struct {
	off  []int
	rows []int
}

func buildSegmentIndex(tp *Tape, seg []int, nSeg int) segmentIndex {
	off := tp.arena.ints.takeZeroed(nSeg + 1)
	for _, s := range seg {
		off[s+1]++
	}
	for s := 0; s < nSeg; s++ {
		off[s+1] += off[s]
	}
	rows := tp.arena.ints.take(len(seg))
	pos := tp.arena.ints.take(nSeg)
	copy(pos, off[:nSeg])
	for i, s := range seg {
		rows[pos[s]] = i
		pos[s]++
	}
	return segmentIndex{off: off, rows: rows}
}

// segSoftmaxArgs drives the segment-parallel softmax chunks: forward
// normalises each segment of x into out; backward applies the softmax
// Jacobian (ga += out * (g - <g, out>_segment)).
type segSoftmaxArgs struct {
	x, out, g, ga []float64
	sidx          segmentIndex
}

// segmentSoftmaxForward computes the grouped softmax of x (n x 1, groups by
// seg) into out. It returns the segment index when the parallel path built
// one — callers stash it for backward — and the zero segmentIndex on the
// serial path. Segment-parallel: every segment's rows are owned by exactly
// one chunk and visited in increasing row order, so the max/sum/normalise
// pass performs the same floating-point operations as the serial row sweep —
// bitwise identical for every worker count. When one chunk would run anyway,
// the cache-friendly linear sweep skips the index build.
func segmentSoftmaxForward(tp *Tape, out, x *Tensor, seg []int, nSeg int) segmentIndex {
	n := x.Rows
	grain := par.Grain(nSeg, segGrainMin)
	if par.NumChunks(nSeg, grain) <= 1 {
		maxv := tp.arena.f64s.take(nSeg)
		for i := range maxv {
			maxv[i] = math.Inf(-1)
		}
		for i := 0; i < n; i++ {
			if x.Data[i] > maxv[seg[i]] {
				maxv[seg[i]] = x.Data[i]
			}
		}
		sum := tp.arena.f64s.takeZeroed(nSeg)
		for i := 0; i < n; i++ {
			out.Data[i] = math.Exp(x.Data[i] - maxv[seg[i]])
			sum[seg[i]] += out.Data[i]
		}
		for i := 0; i < n; i++ {
			out.Data[i] /= sum[seg[i]]
		}
		return segmentIndex{}
	}
	sidx := buildSegmentIndex(tp, seg, nSeg)
	par.ForCtx(nSeg, grain, segSoftmaxArgs{x: x.Data, out: out.Data, sidx: sidx}, segSoftmaxFwdChunk)
	return sidx
}

func segSoftmaxFwdChunk(a segSoftmaxArgs, lo, hi int) {
	for s := lo; s < hi; s++ {
		rows := a.sidx.rows[a.sidx.off[s]:a.sidx.off[s+1]]
		mx := math.Inf(-1)
		for _, i := range rows {
			if a.x[i] > mx {
				mx = a.x[i]
			}
		}
		var sum float64
		for _, i := range rows {
			a.out[i] = math.Exp(a.x[i] - mx)
			sum += a.out[i]
		}
		for _, i := range rows {
			a.out[i] /= sum
		}
	}
}

// segmentSoftmaxBackward accumulates the grouped-softmax gradient into ga:
// ga_i += out_i * (g_i - sum_{j in seg(i)} g_j out_j). sidx may be the zero
// segmentIndex; it is built on demand if the parallel path runs.
func segmentSoftmaxBackward(tp *Tape, ga, out, g []float64, seg []int, nSeg int, sidx segmentIndex) {
	grain := par.Grain(nSeg, segGrainMin)
	if par.NumChunks(nSeg, grain) <= 1 {
		dot := tp.arena.f64s.takeZeroed(nSeg)
		for i, s := range seg {
			dot[s] += g[i] * out[i]
		}
		for i, s := range seg {
			ga[i] += out[i] * (g[i] - dot[s])
		}
		return
	}
	if sidx.off == nil {
		sidx = buildSegmentIndex(tp, seg, nSeg)
	}
	par.ForCtx(nSeg, grain, segSoftmaxArgs{out: out, g: g, ga: ga, sidx: sidx}, segSoftmaxBackChunk)
}

func segSoftmaxBackChunk(a segSoftmaxArgs, lo, hi int) {
	for s := lo; s < hi; s++ {
		rows := a.sidx.rows[a.sidx.off[s]:a.sidx.off[s+1]]
		var dot float64
		for _, i := range rows {
			dot += a.g[i] * a.out[i]
		}
		for _, i := range rows {
			a.ga[i] += a.out[i] * (a.g[i] - dot)
		}
	}
}
