package autodiff

import (
	"sync"

	"sate/internal/par"
)

// This file holds the dense matrix kernels shared by the MatMul/MatMulT
// forward and backward passes. All three are row-parallel over the output:
// each par chunk owns a disjoint row range of out, so there is no shared
// write state and no gradient merge — results are bitwise identical to the
// serial loops for every worker count (see the package par contract).
//
// The kernels are cache-blocked for L1/L2 locality: output rows are
// processed in tiles of gemmRowTile (so a row of b is reused across several
// rows of a while it is hot), and the j dimension in blocks of colBlockOf[T]
// elements (≈2KB per block regardless of dtype — 256 float64s or 512
// float32s — comfortably L1-resident together with the accumulator rows).
// Blocking only reorders WHICH (i, j) cell is touched when; for any single
// output element the terms are still added in increasing p, so the result is
// bitwise identical to the unblocked axpy loop.
//
// The accumulate flag selects between out = product (forward) and
// out += product (backward gradient accumulation). In accumulate mode each
// output row's contribution is summed into a zeroed scratch row first and
// added to out in one pass, preserving the exact floating-point order of
// the original compute-s-then-add backward loops. Scratch rows come from a
// per-dtype process-wide sync.Pool (chunks may run on pool goroutines, so
// they cannot touch the single-threaded tape arena).

// kernelFlopTarget is the minimum number of multiply-adds a chunk should
// carry so goroutine dispatch stays negligible.
const kernelFlopTarget = 1 << 15

// segGrainMin is the minimum rows/segments per chunk for the cheap
// per-row ops (softmax, scatter): small enough to spread GAT-sized inputs
// across cores, large enough to amortise dispatch.
const segGrainMin = 64

// gemmRowTile is how many output rows a kernel processes together, sharing
// each streamed row of b across all of them.
const gemmRowTile = 4

// colBlockOf is the j-dimension block width in elements, tuned so a block is
// ~2KB for either dtype: 256 float64s, 512 float32s. Compiles to a constant
// per instantiation.
func colBlockOf[T Float]() int {
	var z T
	if _, ok := any(z).(float32); ok {
		return 512
	}
	return 256
}

// rowGrain picks the par grain for a kernel over rows where each row costs
// about rowCost multiply-adds.
func rowGrain(rows, rowCost int) int {
	min := 1
	if rowCost > 0 {
		min = (kernelFlopTarget + rowCost - 1) / rowCost
	}
	return par.Grain(rows, min)
}

// scratch32/scratch64 recycle per-chunk accumulator rows, one pool per
// dtype (sync.Pool is not generic). Entries are *[]T (not []T) so Get/Put
// avoid an interface-boxing allocation.
var (
	scratch32 sync.Pool
	scratch64 sync.Pool
)

func poolFor[T Float]() *sync.Pool {
	var z T
	if _, ok := any(z).(float32); ok {
		return &scratch32
	}
	return &scratch64
}

func getScratch[T Float](n int) *[]T {
	if p, _ := poolFor[T]().Get().(*[]T); p != nil && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	s := make([]T, n)
	return &s
}

func putScratch[T Float](p *[]T) { poolFor[T]().Put(p) }

// gemmArgs carries one kernel launch's operands into the static chunk
// functions (closure-free: see par.ForCtx).
type gemmArgs[T Float] struct {
	out, a, b  *TensorOf[T]
	accumulate bool
}

// gemm computes out (+)= a @ b (a: m x k, b: k x n, out: m x n). When
// accumulate is false the caller must pass a zero-initialised out (all
// callers hand it an arena-zeroed tensor); rows are accumulated in place.
func gemm[T Float](out, a, b *TensorOf[T], accumulate bool) {
	m, k, n := a.Rows, a.Cols, b.Cols
	par.ForCtx(m, rowGrain(m, k*n), gemmArgs[T]{out, a, b, accumulate}, opsFor[T]().gemmChunk)
}

func gemmChunk[T Float](g gemmArgs[T], lo, hi int) {
	a, b, out := g.a, g.b, g.out
	k, n := a.Cols, b.Cols
	bd := b.Data
	// Register-blocked 4x4 microkernel over full row tiles: sixteen
	// accumulators live in registers across the whole p sweep, so the inner
	// loop issues no stores and only eight loads per sixteen multiply-adds.
	// Every output element still sums its terms serially in increasing p —
	// the identical operation sequence (+0 start, += term per p) as the
	// row-sweep form — so the result is bitwise identical for any tiling. A
	// p whose four a-entries are all zero contributes nothing and may be
	// skipped on the forward path; the backward path keeps every term so
	// non-finite gradients propagate exactly as the direct dot product would.
	i0 := lo
	for ; i0+gemmRowTile <= hi; i0 += gemmRowTile {
		base := i0 * k
		a0 := a.Data[base : base+k]
		a1 := a.Data[base+k : base+2*k]
		a2 := a.Data[base+2*k : base+3*k]
		a3 := a.Data[base+3*k : base+4*k]
		o0 := out.Data[(i0+0)*n : (i0+1)*n]
		o1 := out.Data[(i0+1)*n : (i0+2)*n]
		o2 := out.Data[(i0+2)*n : (i0+3)*n]
		o3 := out.Data[(i0+3)*n : (i0+4)*n]
		jt := 0
		for ; jt+4 <= n; jt += 4 {
			var c00, c01, c02, c03 T
			var c10, c11, c12, c13 T
			var c20, c21, c22, c23 T
			var c30, c31, c32, c33 T
			off := jt
			for p := 0; p < k; p++ {
				v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 && !g.accumulate {
					off += n
					continue
				}
				bp := bd[off : off+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				off += n
				c00 += v0 * b0
				c01 += v0 * b1
				c02 += v0 * b2
				c03 += v0 * b3
				c10 += v1 * b0
				c11 += v1 * b1
				c12 += v1 * b2
				c13 += v1 * b3
				c20 += v2 * b0
				c21 += v2 * b1
				c22 += v2 * b2
				c23 += v2 * b3
				c30 += v3 * b0
				c31 += v3 * b1
				c32 += v3 * b2
				c33 += v3 * b3
			}
			if g.accumulate {
				o0[jt], o0[jt+1], o0[jt+2], o0[jt+3] = o0[jt]+c00, o0[jt+1]+c01, o0[jt+2]+c02, o0[jt+3]+c03
				o1[jt], o1[jt+1], o1[jt+2], o1[jt+3] = o1[jt]+c10, o1[jt+1]+c11, o1[jt+2]+c12, o1[jt+3]+c13
				o2[jt], o2[jt+1], o2[jt+2], o2[jt+3] = o2[jt]+c20, o2[jt+1]+c21, o2[jt+2]+c22, o2[jt+3]+c23
				o3[jt], o3[jt+1], o3[jt+2], o3[jt+3] = o3[jt]+c30, o3[jt+1]+c31, o3[jt+2]+c32, o3[jt+3]+c33
			} else {
				o0[jt], o0[jt+1], o0[jt+2], o0[jt+3] = c00, c01, c02, c03
				o1[jt], o1[jt+1], o1[jt+2], o1[jt+3] = c10, c11, c12, c13
				o2[jt], o2[jt+1], o2[jt+2], o2[jt+3] = c20, c21, c22, c23
				o3[jt], o3[jt+1], o3[jt+2], o3[jt+3] = c30, c31, c32, c33
			}
		}
		// Column remainder: 4x1 register tile.
		for ; jt < n; jt++ {
			var c0, c1, c2, c3 T
			off := jt
			for p := 0; p < k; p++ {
				v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
				if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 && !g.accumulate {
					off += n
					continue
				}
				bv := bd[off]
				off += n
				c0 += v0 * bv
				c1 += v1 * bv
				c2 += v2 * bv
				c3 += v3 * bv
			}
			if g.accumulate {
				o0[jt] += c0
				o1[jt] += c1
				o2[jt] += c2
				o3[jt] += c3
			} else {
				o0[jt] = c0
				o1[jt] = c1
				o2[jt] = c2
				o3[jt] = c3
			}
		}
	}
	if i0 >= hi {
		return
	}
	// Row remainder (fewer than gemmRowTile rows): cache-blocked axpy sweep,
	// accumulating into zeroed scratch rows first in accumulate mode to
	// preserve the compute-then-add term order. Non-accumulate destination
	// rows are cleared here — out may arrive unzeroed (newNodeStored).
	rows := hi - i0
	colBlock := colBlockOf[T]()
	var dst [gemmRowTile][]T
	var acc []T
	if g.accumulate {
		p := getScratch[T](rows * n)
		defer putScratch(p)
		acc = *p
	}
	for r := 0; r < rows; r++ {
		if g.accumulate {
			dst[r] = acc[r*n : (r+1)*n]
		} else {
			dst[r] = out.Data[(i0+r)*n : (i0+r+1)*n]
		}
		clear(dst[r])
	}
	for j0 := 0; j0 < n; j0 += colBlock {
		j1 := j0 + colBlock
		if j1 > n {
			j1 = n
		}
		for p := 0; p < k; p++ {
			rb := bd[p*n+j0 : p*n+j1]
			for r := 0; r < rows; r++ {
				av := a.Data[(i0+r)*k+p]
				if av == 0 && !g.accumulate {
					continue
				}
				d := dst[r][j0:j1]
				for j, bv := range rb {
					d[j] += av * bv
				}
			}
		}
	}
	if g.accumulate {
		for r := 0; r < rows; r++ {
			ro := out.Data[(i0+r)*n : (i0+r+1)*n]
			for j, v := range acc[r*n : (r+1)*n] {
				ro[j] += v
			}
		}
	}
}

// gemmBT computes out (+)= a @ b^T (a: m x k, b: n x k, out: m x n) without
// materialising the transpose: entry (i, j) is the dot product of row i of a
// and row j of b, both contiguous. Row-tiled so each row of b is reused
// across gemmRowTile rows of a.
func gemmBT[T Float](out, a, b *TensorOf[T], accumulate bool) {
	m, k, n := a.Rows, a.Cols, b.Rows
	par.ForCtx(m, rowGrain(m, k*n), gemmArgs[T]{out, a, b, accumulate}, opsFor[T]().gemmBTChunk)
}

func gemmBTChunk[T Float](g gemmArgs[T], lo, hi int) {
	a, b, out := g.a, g.b, g.out
	k, n := a.Cols, b.Rows
	for i0 := lo; i0 < hi; i0 += gemmRowTile {
		i1 := i0 + gemmRowTile
		if i1 > hi {
			i1 = hi
		}
		for j := 0; j < n; j++ {
			rb := b.Data[j*k : (j+1)*k]
			for i := i0; i < i1; i++ {
				ra := a.Data[i*k : (i+1)*k]
				var s T
				for p, bv := range rb {
					s += ra[p] * bv
				}
				if g.accumulate {
					out.Data[i*n+j] += s
				} else {
					out.Data[i*n+j] = s
				}
			}
		}
	}
}

// gemmAT computes out (+)= a^T @ b (a: m x k, b: m x n, out: k x n). Rather
// than striding down a's columns per output entry, a tile of output rows
// accumulates a[r][i] * b[r] across r into scratch rows (same term order as
// the per-entry dot product), streaming b once per tile, then folds into out
// in one pass.
func gemmAT[T Float](out, a, b *TensorOf[T], accumulate bool) {
	m, k, n := a.Rows, a.Cols, b.Cols
	par.ForCtx(k, rowGrain(k, m*n), gemmArgs[T]{out, a, b, accumulate}, opsFor[T]().gemmATChunk)
}

func gemmATChunk[T Float](g gemmArgs[T], lo, hi int) {
	a, b, out := g.a, g.b, g.out
	m, k, n := a.Rows, a.Cols, b.Cols
	p := getScratch[T](gemmRowTile * n)
	defer putScratch(p)
	acc := *p
	for i0 := lo; i0 < hi; i0 += gemmRowTile {
		i1 := i0 + gemmRowTile
		if i1 > hi {
			i1 = hi
		}
		rows := i1 - i0
		clear(acc[:rows*n])
		for r := 0; r < m; r++ {
			rb := b.Data[r*n : (r+1)*n]
			ra := a.Data[r*k : (r+1)*k]
			for t := 0; t < rows; t++ {
				av := ra[i0+t]
				accRow := acc[t*n : (t+1)*n]
				for j, bv := range rb {
					accRow[j] += av * bv
				}
			}
		}
		for t := 0; t < rows; t++ {
			ro := out.Data[(i0+t)*n : (i0+t+1)*n]
			accRow := acc[t*n : (t+1)*n]
			if g.accumulate {
				for j, v := range accRow {
					ro[j] += v
				}
			} else {
				copy(ro, accRow)
			}
		}
	}
}

// segmentIndex groups the rows 0..n-1 by segment id, preserving row order
// within each segment: rows[off[s]:off[s+1]] lists the rows of segment s in
// increasing order. It lets the segment ops run segment-parallel (each
// segment owned by one chunk) while keeping the exact accumulation order of
// the serial row sweep. Storage comes from the tape arena (valid until the
// next Reset).
type segmentIndex struct {
	off  []int
	rows []int
}

func buildSegmentIndex[T Float](tp *TapeOf[T], seg []int, nSeg int) segmentIndex {
	off := tp.arena.ints.takeZeroed(nSeg + 1)
	for _, s := range seg {
		off[s+1]++
	}
	for s := 0; s < nSeg; s++ {
		off[s+1] += off[s]
	}
	rows := tp.arena.ints.take(len(seg))
	pos := tp.arena.ints.take(nSeg)
	copy(pos, off[:nSeg])
	for i, s := range seg {
		rows[pos[s]] = i
		pos[s]++
	}
	return segmentIndex{off: off, rows: rows}
}

// segSoftmaxArgs drives the segment-parallel softmax chunks: forward
// normalises each segment of x into out; backward applies the softmax
// Jacobian (ga += out * (g - <g, out>_segment)).
type segSoftmaxArgs[T Float] struct {
	x, out, g, ga []T
	sidx          segmentIndex
}

// segmentSoftmaxForward computes the grouped softmax of x (n x 1, groups by
// seg) into out. It returns the segment index when the parallel path built
// one — callers stash it for backward — and the zero segmentIndex on the
// serial path. Segment-parallel: every segment's rows are owned by exactly
// one chunk and visited in increasing row order, so the max/sum/normalise
// pass performs the same floating-point operations as the serial row sweep —
// bitwise identical for every worker count. When one chunk would run anyway,
// the cache-friendly linear sweep skips the index build.
func segmentSoftmaxForward[T Float](tp *TapeOf[T], out, x *TensorOf[T], seg []int, nSeg int) segmentIndex {
	n := x.Rows
	grain := par.Grain(nSeg, segGrainMin)
	if par.NumChunks(nSeg, grain) <= 1 {
		maxv := tp.arena.scalars.take(nSeg)
		for i := range maxv {
			maxv[i] = negInfT[T]()
		}
		for i := 0; i < n; i++ {
			if x.Data[i] > maxv[seg[i]] {
				maxv[seg[i]] = x.Data[i]
			}
		}
		sum := tp.arena.scalars.takeZeroed(nSeg)
		for i := 0; i < n; i++ {
			out.Data[i] = expT(x.Data[i] - maxv[seg[i]])
			sum[seg[i]] += out.Data[i]
		}
		for i := 0; i < n; i++ {
			out.Data[i] /= sum[seg[i]]
		}
		return segmentIndex{}
	}
	sidx := buildSegmentIndex(tp, seg, nSeg)
	par.ForCtx(nSeg, grain, segSoftmaxArgs[T]{x: x.Data, out: out.Data, sidx: sidx}, opsFor[T]().segSoftmaxFwdChunk)
	return sidx
}

func segSoftmaxFwdChunk[T Float](a segSoftmaxArgs[T], lo, hi int) {
	for s := lo; s < hi; s++ {
		rows := a.sidx.rows[a.sidx.off[s]:a.sidx.off[s+1]]
		mx := negInfT[T]()
		for _, i := range rows {
			if a.x[i] > mx {
				mx = a.x[i]
			}
		}
		var sum T
		for _, i := range rows {
			a.out[i] = expT(a.x[i] - mx)
			sum += a.out[i]
		}
		for _, i := range rows {
			a.out[i] /= sum
		}
	}
}

// segmentSoftmaxBackward accumulates the grouped-softmax gradient into ga:
// ga_i += out_i * (g_i - sum_{j in seg(i)} g_j out_j). sidx may be the zero
// segmentIndex; it is built on demand if the parallel path runs.
func segmentSoftmaxBackward[T Float](tp *TapeOf[T], ga, out, g []T, seg []int, nSeg int, sidx segmentIndex) {
	grain := par.Grain(nSeg, segGrainMin)
	if par.NumChunks(nSeg, grain) <= 1 {
		dot := tp.arena.scalars.takeZeroed(nSeg)
		for i, s := range seg {
			dot[s] += g[i] * out[i]
		}
		for i, s := range seg {
			ga[i] += out[i] * (g[i] - dot[s])
		}
		return
	}
	if sidx.off == nil {
		sidx = buildSegmentIndex(tp, seg, nSeg)
	}
	par.ForCtx(nSeg, grain, segSoftmaxArgs[T]{out: out, g: g, ga: ga, sidx: sidx}, opsFor[T]().segSoftmaxBackChunk)
}

func segSoftmaxBackChunk[T Float](a segSoftmaxArgs[T], lo, hi int) {
	for s := lo; s < hi; s++ {
		rows := a.sidx.rows[a.sidx.off[s]:a.sidx.off[s+1]]
		var dot T
		for _, i := range rows {
			dot += a.g[i] * a.out[i]
		}
		for _, i := range rows {
			a.ga[i] += a.out[i] * (a.g[i] - dot)
		}
	}
}
