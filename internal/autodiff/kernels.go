package autodiff

import "sate/internal/par"

// This file holds the dense matrix kernels shared by the MatMul/MatMulT
// forward and backward passes. All three are row-parallel over the output:
// each par chunk owns a disjoint row range of out, so there is no shared
// write state and no gradient merge — results are bitwise identical to the
// serial loops for every worker count (see the package par contract).
//
// The accumulate flag selects between out = product (forward) and
// out += product (backward gradient accumulation). In accumulate mode each
// output row's contribution is summed into a zeroed scratch row first and
// added to out in one pass, preserving the exact floating-point order of
// the original compute-s-then-add backward loops.

// kernelFlopTarget is the minimum number of multiply-adds a chunk should
// carry so goroutine dispatch stays negligible.
const kernelFlopTarget = 1 << 15

// segGrainMin is the minimum rows/segments per chunk for the cheap
// per-row ops (softmax, scatter): small enough to spread GAT-sized inputs
// across cores, large enough to amortise dispatch.
const segGrainMin = 64

// rowGrain picks the par grain for a kernel over rows where each row costs
// about rowCost multiply-adds.
func rowGrain(rows, rowCost int) int {
	min := 1
	if rowCost > 0 {
		min = (kernelFlopTarget + rowCost - 1) / rowCost
	}
	return par.Grain(rows, min)
}

// gemm computes out (+)= a @ b (a: m x k, b: k x n, out: m x n). When
// accumulate is false the caller must pass a zero-initialised out (all
// callers hand it a fresh tensor); rows are accumulated in place.
func gemm(out, a, b *Tensor, accumulate bool) {
	m, k, n := a.Rows, a.Cols, b.Cols
	par.For(m, rowGrain(m, k*n), func(lo, hi int) {
		var acc []float64
		if accumulate {
			acc = make([]float64, n)
		}
		for i := lo; i < hi; i++ {
			ra := a.Data[i*k : (i+1)*k]
			ro := out.Data[i*n : (i+1)*n]
			dst := ro
			if accumulate {
				for j := range acc {
					acc[j] = 0
				}
				dst = acc
			}
			for p := 0; p < k; p++ {
				av := ra[p]
				if av == 0 && !accumulate {
					// Skip-zero only on the forward path (sparse inputs are
					// common there); the backward path keeps every term so
					// non-finite gradients propagate exactly as the direct
					// dot-product form would.
					continue
				}
				rb := b.Data[p*n : (p+1)*n]
				for j := range dst {
					dst[j] += av * rb[j]
				}
			}
			if accumulate {
				for j := range ro {
					ro[j] += acc[j]
				}
			}
		}
	})
}

// gemmBT computes out (+)= a @ b^T (a: m x k, b: n x k, out: m x n) without
// materialising the transpose: entry (i, j) is the dot product of row i of a
// and row j of b, both contiguous.
func gemmBT(out, a, b *Tensor, accumulate bool) {
	m, k, n := a.Rows, a.Cols, b.Rows
	par.For(m, rowGrain(m, k*n), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ra := a.Data[i*k : (i+1)*k]
			ro := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				rb := b.Data[j*k : (j+1)*k]
				var s float64
				for p := 0; p < k; p++ {
					s += ra[p] * rb[p]
				}
				if accumulate {
					ro[j] += s
				} else {
					ro[j] = s
				}
			}
		}
	})
}

// gemmAT computes out (+)= a^T @ b (a: m x k, b: m x n, out: k x n). Rather
// than striding down a's columns per output entry, each output row i
// accumulates a[r][i] * b[r] across r into a scratch row (same term order as
// the per-entry dot product), then folds into out in one pass.
func gemmAT(out, a, b *Tensor, accumulate bool) {
	m, k, n := a.Rows, a.Cols, b.Cols
	par.For(k, rowGrain(k, m*n), func(lo, hi int) {
		acc := make([]float64, n)
		for i := lo; i < hi; i++ {
			for j := range acc {
				acc[j] = 0
			}
			for r := 0; r < m; r++ {
				av := a.Data[r*k+i]
				rb := b.Data[r*n : (r+1)*n]
				for j := range acc {
					acc[j] += av * rb[j]
				}
			}
			ro := out.Data[i*n : (i+1)*n]
			if accumulate {
				for j := range ro {
					ro[j] += acc[j]
				}
			} else {
				copy(ro, acc)
			}
		}
	})
}

// segmentIndex groups the rows 0..n-1 by segment id, preserving row order
// within each segment: rows[off[s]:off[s+1]] lists the rows of segment s in
// increasing order. It lets the segment ops run segment-parallel (each
// segment owned by one chunk) while keeping the exact accumulation order of
// the serial row sweep.
type segmentIndex struct {
	off  []int
	rows []int
}

func buildSegmentIndex(seg []int, nSeg int) segmentIndex {
	off := make([]int, nSeg+1)
	for _, s := range seg {
		off[s+1]++
	}
	for s := 0; s < nSeg; s++ {
		off[s+1] += off[s]
	}
	rows := make([]int, len(seg))
	pos := make([]int, nSeg)
	copy(pos, off[:nSeg])
	for i, s := range seg {
		rows[pos[s]] = i
		pos[s]++
	}
	return segmentIndex{off: off, rows: rows}
}
