// Package autodiff is a small reverse-mode automatic-differentiation engine
// over dense float64 matrices, built for graph neural networks on CPU. It
// provides the operations GAT-style message passing needs — matrix products,
// row gather/scatter, per-segment softmax, broadcasts and pointwise
// nonlinearities — plus the Adam optimizer and numerical gradient checking.
//
// It stands in for the paper's GPU deep-learning framework (see DESIGN.md):
// define-by-run eager execution, a tape in creation order, and reverse
// accumulation over the tape.
package autodiff

import (
	"fmt"
	"math/rand"
)

// Tensor is a dense row-major matrix.
type Tensor struct {
	Rows, Cols int
	Data       []float64
}

// NewTensor allocates a zero matrix.
func NewTensor(rows, cols int) *Tensor {
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols tensor.
func FromSlice(rows, cols int, data []float64) *Tensor {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("autodiff: %d values for %dx%d tensor", len(data), rows, cols))
	}
	return &Tensor{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (t *Tensor) At(r, c int) float64 { return t.Data[r*t.Cols+c] }

// Set writes element (r, c).
func (t *Tensor) Set(r, c int, v float64) { t.Data[r*t.Cols+c] = v }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	out := NewTensor(t.Rows, t.Cols)
	copy(out.Data, t.Data)
	return out
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Randn fills the tensor with N(0, scale^2) samples.
func (t *Tensor) Randn(rng *rand.Rand, scale float64) *Tensor {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * scale
	}
	return t
}

// SameShape reports whether two tensors have identical dimensions.
func (t *Tensor) SameShape(o *Tensor) bool { return t.Rows == o.Rows && t.Cols == o.Cols }

func (t *Tensor) shape() string { return fmt.Sprintf("%dx%d", t.Rows, t.Cols) }

// Value is a node in the autodiff graph: a tensor plus (optionally) its
// gradient and backward function.
type Value struct {
	Val  *Tensor
	Grad *Tensor

	tape    *Tape
	back    func()
	isParam bool
}

// Tape records operations in creation order for reverse accumulation.
type Tape struct {
	nodes  []*Value
	noGrad bool
}

// NewTape creates an empty tape.
func NewTape() *Tape { return &Tape{} }

// NewInferenceTape creates a forward-only tape: no gradient buffers are
// allocated and Backward panics. Use for pure inference — it roughly halves
// allocation traffic, which dominates GNN forward cost on CPU.
func NewInferenceTape() *Tape { return &Tape{noGrad: true} }

// Reset discards recorded operations (parameters keep their gradients only
// until ZeroGrad).
func (tp *Tape) Reset() { tp.nodes = tp.nodes[:0] }

func (tp *Tape) node(val *Tensor, back func()) *Value {
	if tp.noGrad {
		// Forward-only: no gradient buffer, no tape recording. Backward
		// closures created by ops capture Values but are never invoked.
		return &Value{Val: val, tape: tp}
	}
	v := &Value{Val: val, Grad: NewTensor(val.Rows, val.Cols), tape: tp, back: back}
	tp.nodes = append(tp.nodes, v)
	return v
}

// Const wraps a tensor as a leaf with no gradient flow out of it.
func (tp *Tape) Const(t *Tensor) *Value {
	return tp.node(t, nil)
}

// Param wraps a tensor as a trainable parameter. Parameters live across tape
// resets; re-register them per forward pass via Watch.
func Param(t *Tensor) *Value {
	return &Value{Val: t, Grad: NewTensor(t.Rows, t.Cols), isParam: true}
}

// Watch registers a parameter on the tape for this forward pass.
func (tp *Tape) Watch(p *Value) *Value {
	if !p.isParam {
		panic("autodiff: Watch on non-parameter")
	}
	p.tape = tp
	tp.nodes = append(tp.nodes, p)
	return p
}

// Backward runs reverse accumulation from a scalar output (1x1 tensor).
func (tp *Tape) Backward(out *Value) {
	if tp.noGrad {
		panic("autodiff: Backward on an inference tape")
	}
	if out.Val.Rows != 1 || out.Val.Cols != 1 {
		panic("autodiff: Backward requires a scalar output")
	}
	out.Grad.Data[0] = 1
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.back != nil {
			n.back()
		}
	}
}
