// Package autodiff is a small reverse-mode automatic-differentiation engine
// over dense matrices, built for graph neural networks on CPU. It provides
// the operations GAT-style message passing needs — matrix products, row
// gather/scatter, per-segment softmax, broadcasts and pointwise
// nonlinearities — plus the Adam optimizer and numerical gradient checking.
//
// The whole stack is generic over the element type (Float: float32 or
// float64). TensorOf[float64] is the reference path — bitwise-identical to
// the pre-generic float64 engine — and the un-suffixed names (Tensor, Value,
// Tape, Adam) are aliases for it, so float64 call sites read exactly as
// before. TensorOf[float32] halves memory traffic for inference; training
// stays float64.
//
// It stands in for the paper's GPU deep-learning framework (see DESIGN.md):
// define-by-run eager execution, a tape in creation order, and reverse
// accumulation over the tape. Tapes recycle all of their storage through an
// arena (arena.go): call Reset between passes and the steady state performs
// zero heap allocations.
package autodiff

import (
	"fmt"
	"math/rand"
)

// TensorOf is a dense row-major matrix over T.
type TensorOf[T Float] struct {
	Rows, Cols int
	Data       []T
}

// Tensor is the float64 tensor — the reference dtype and the training dtype.
type Tensor = TensorOf[float64]

// NewTensor allocates a zero float64 matrix.
func NewTensor(rows, cols int) *Tensor { return NewTensorOf[float64](rows, cols) }

// NewTensorOf allocates a zero matrix of the given dtype.
func NewTensorOf[T Float](rows, cols int) *TensorOf[T] {
	return &TensorOf[T]{Rows: rows, Cols: cols, Data: make([]T, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols tensor.
func FromSlice[T Float](rows, cols int, data []T) *TensorOf[T] {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("autodiff: %d values for %dx%d tensor", len(data), rows, cols))
	}
	return &TensorOf[T]{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (t *TensorOf[T]) At(r, c int) T { return t.Data[r*t.Cols+c] }

// Set writes element (r, c).
func (t *TensorOf[T]) Set(r, c int, v T) { t.Data[r*t.Cols+c] = v }

// Clone deep-copies the tensor into fresh heap storage. Hot paths that own a
// destination should use CopyInto (or Tape.Zeros + copy) instead.
func (t *TensorOf[T]) Clone() *TensorOf[T] {
	out := NewTensorOf[T](t.Rows, t.Cols)
	copy(out.Data, t.Data)
	return out
}

// CopyInto copies t's contents into dst (shapes must match). It is the
// allocation-free counterpart of Clone for arena-backed destinations.
func (t *TensorOf[T]) CopyInto(dst *TensorOf[T]) {
	if !t.SameShape(dst) {
		panic(fmt.Sprintf("autodiff: CopyInto shape mismatch %s vs %s", t.shape(), dst.shape()))
	}
	copy(dst.Data, t.Data)
}

// Fill sets every element to v.
func (t *TensorOf[T]) Fill(v T) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Randn fills the tensor with N(0, scale^2) samples (drawn in float64,
// rounded once to T).
func (t *TensorOf[T]) Randn(rng *rand.Rand, scale float64) *TensorOf[T] {
	for i := range t.Data {
		t.Data[i] = T(rng.NormFloat64() * scale)
	}
	return t
}

// SameShape reports whether two tensors have identical dimensions.
func (t *TensorOf[T]) SameShape(o *TensorOf[T]) bool { return t.Rows == o.Rows && t.Cols == o.Cols }

func (t *TensorOf[T]) shape() string { return fmt.Sprintf("%dx%d", t.Rows, t.Cols) }

// ValueOf is a node in the autodiff graph: a tensor plus (optionally) its
// gradient and the state its backward function needs. Backward functions are
// static (top-level) functions receiving the node, not closures — a closure
// per op is a heap allocation per op, which would defeat the arena.
type ValueOf[T Float] struct {
	Val  *TensorOf[T]
	Grad *TensorOf[T]

	tape    *TapeOf[T]
	isParam bool

	// Backward state. Which fields an op uses is up to its back function;
	// unused ones stay zero. Everything here is either arena-owned or
	// caller-owned and borrowed for the duration of one pass.
	back       func(v *ValueOf[T])
	src0       *ValueOf[T]
	src1       *ValueOf[T]
	src2       *ValueOf[T]
	srcs       []*ValueOf[T] // variadic inputs (Concat)
	aux        *TensorOf[T]  // fused-op stash (pre-activation, attention weights)
	idx        []int         // row indices / segment ids
	idx2       []int         // second index set (GatherConcat)
	sidx       segmentIndex  // cached segment index for segment-parallel backward
	n          int           // op-specific count (nSeg, part width, ...)
	s0, s1, s2 T             // op-specific scalars (slopes, clamp bounds, ...)
}

// Value is the float64 graph node.
type Value = ValueOf[float64]

// TapeOf records operations in creation order for reverse accumulation. All
// node storage is drawn from the tape's arena; Reset recycles it.
type TapeOf[T Float] struct {
	nodes  []*ValueOf[T]
	noGrad bool
	arena  arena[T]
}

// Tape is the float64 tape.
type Tape = TapeOf[float64]

// NewTape creates an empty float64 tape.
func NewTape() *Tape { return &Tape{} }

// NewTapeOf creates an empty tape of the given dtype.
func NewTapeOf[T Float]() *TapeOf[T] { return &TapeOf[T]{} }

// NewInferenceTape creates a forward-only float64 tape: no gradient buffers
// are allocated and Backward panics. Use for pure inference — it roughly
// halves allocation traffic, which dominates GNN forward cost on CPU.
func NewInferenceTape() *Tape { return &Tape{noGrad: true} }

// NewInferenceTapeOf creates a forward-only tape of the given dtype.
func NewInferenceTapeOf[T Float]() *TapeOf[T] { return &TapeOf[T]{noGrad: true} }

// Reset discards recorded operations and recycles every tensor, node and
// scratch slice of the previous pass back into the tape's arena (parameters
// keep their gradients only until ZeroGrad). All Values and tensors obtained
// from this tape since the previous Reset — including via Zeros/TensorFrom —
// are invalidated: the next pass reuses their storage. Prefer Reset over a
// fresh NewTape in loops; after one warm-up pass the steady state allocates
// nothing.
//
//sate:hotpath tape recycle between passes; the core of the zero-alloc steady state
func (tp *TapeOf[T]) Reset() {
	tp.nodes = tp.nodes[:0]
	tp.arena.reset()
}

// NoGrad reports whether this is a forward-only (inference) tape.
func (tp *TapeOf[T]) NoGrad() bool { return tp.noGrad }

// ArenaStats is a snapshot of the tape arena's recycling counters — the
// live view of the memory model of DESIGN.md §8. In steady state TensorAlloc
// stops growing while TensorReuse advances by the per-pass tensor count;
// training loops export the deltas as obs counters (DESIGN.md §9).
type ArenaStats struct {
	// TensorReuse counts tensor requests served from a shape free-list.
	TensorReuse uint64
	// TensorAlloc counts tensor requests that allocated fresh heap slabs.
	TensorAlloc uint64
	// Resets counts arena reset cycles (one per forward/backward pass).
	Resets uint64
}

// ArenaStats returns the tape's cumulative arena counters. Like the arena
// itself it is meant to be read from the goroutine that issues ops —
// typically between passes.
func (tp *TapeOf[T]) ArenaStats() ArenaStats {
	return ArenaStats{
		TensorReuse: tp.arena.reused,
		TensorAlloc: tp.arena.allocated,
		Resets:      tp.arena.resets,
	}
}

// Zeros returns a zeroed rows x cols tensor owned by the tape's arena. It is
// valid until the next Reset; use it for per-pass constants and feature
// staging instead of NewTensor.
func (tp *TapeOf[T]) Zeros(rows, cols int) *TensorOf[T] {
	return tp.arena.tensor(rows, cols)
}

// TensorFrom copies data into an arena-owned rows x cols tensor (valid until
// the next Reset). It is the recycling counterpart of FromSlice for callers
// that reuse their staging slice.
func (tp *TapeOf[T]) TensorFrom(rows, cols int, data []T) *TensorOf[T] {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("autodiff: %d values for %dx%d tensor", len(data), rows, cols))
	}
	t := tp.arena.tensor(rows, cols)
	copy(t.Data, data)
	return t
}

// TensorFromFloat64 stages float64 data (the repo's feature-vector dtype)
// into an arena-owned tensor of the tape's dtype, rounding each element
// once. For a float64 tape it is exactly TensorFrom.
func (tp *TapeOf[T]) TensorFromFloat64(rows, cols int, data []float64) *TensorOf[T] {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("autodiff: %d values for %dx%d tensor", len(data), rows, cols))
	}
	t := tp.arena.tensor(rows, cols)
	if dst, ok := any(t.Data).([]float64); ok {
		copy(dst, data)
		return t
	}
	for i, v := range data {
		t.Data[i] = T(v)
	}
	return t
}

// newNode allocates a node with a zeroed rows x cols result tensor from the
// arena. On gradient tapes it also gets a zeroed gradient buffer and is
// recorded for reverse accumulation; on inference tapes back is dropped.
// Ops fill in their backward state fields after the call.
func (tp *TapeOf[T]) newNode(rows, cols int, back func(*ValueOf[T])) *ValueOf[T] {
	v := tp.arena.value()
	v.Val = tp.arena.tensor(rows, cols)
	v.tape = tp
	if !tp.noGrad {
		v.Grad = tp.arena.tensor(rows, cols)
		v.back = back
		//lint:ignore hotpath-no-alloc gradient tapes only (inference tapes set noGrad); the node list reaches high-water capacity and stops growing
		tp.nodes = append(tp.nodes, v)
	}
	return v
}

// newNodeStored is newNode for ops whose forward kernel stores every output
// element before any read: the result tensor skips the recycled-storage
// zeroing (a large share of inference memory traffic). Gradient buffers are
// always zeroed — backward accumulates into them.
func (tp *TapeOf[T]) newNodeStored(rows, cols int, back func(*ValueOf[T])) *ValueOf[T] {
	v := tp.arena.value()
	v.Val = tp.arena.tensorRaw(rows, cols)
	v.tape = tp
	if !tp.noGrad {
		v.Grad = tp.arena.tensor(rows, cols)
		v.back = back
		//lint:ignore hotpath-no-alloc gradient tapes only (inference tapes set noGrad); the node list reaches high-water capacity and stops growing
		tp.nodes = append(tp.nodes, v)
	}
	return v
}

// Const wraps a tensor as a leaf with no gradient flow out of it.
func (tp *TapeOf[T]) Const(t *TensorOf[T]) *ValueOf[T] {
	v := tp.arena.value()
	v.Val = t
	v.tape = tp
	if !tp.noGrad {
		v.Grad = tp.arena.tensor(t.Rows, t.Cols)
	}
	return v
}

// Param wraps a tensor as a trainable parameter. Parameters live across tape
// resets (their storage is never arena-owned); re-register them per forward
// pass via Watch.
func Param[T Float](t *TensorOf[T]) *ValueOf[T] {
	return &ValueOf[T]{Val: t, Grad: NewTensorOf[T](t.Rows, t.Cols), isParam: true}
}

// Watch registers a parameter on the tape for this forward pass.
func (tp *TapeOf[T]) Watch(p *ValueOf[T]) *ValueOf[T] {
	if !p.isParam {
		panic("autodiff: Watch on non-parameter")
	}
	p.tape = tp
	return p
}

// Backward runs reverse accumulation from a scalar output (1x1 tensor).
//
//sate:hotpath reverse pass of every training step
func (tp *TapeOf[T]) Backward(out *ValueOf[T]) {
	if tp.noGrad {
		panic("autodiff: Backward on an inference tape")
	}
	if out.Val.Rows != 1 || out.Val.Cols != 1 {
		panic("autodiff: Backward requires a scalar output")
	}
	out.Grad.Data[0] = 1
	for i := len(tp.nodes) - 1; i >= 0; i-- {
		n := tp.nodes[i]
		if n.back != nil {
			n.back(n)
		}
	}
}
