package autodiff

import (
	"math/rand"
	"testing"

	"sate/internal/par"
)

// runOp builds a small graph with f on a fresh tape, backprops from the
// scalar SumAll of the result, and returns the op output plus the gradients
// of every input. Inputs are recreated identically per call from the seed.
func runOp(t *testing.T, seed int64, f func(tp *Tape, in []*Value) *Value, shapes ...[2]int) (out []float64, grads [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tp := NewTape()
	in := make([]*Value, len(shapes))
	for i, sh := range shapes {
		in[i] = tp.Const(NewTensor(sh[0], sh[1]).Randn(rng, 1))
	}
	y := f(tp, in)
	tp.Backward(tp.SumAll(tp.Mul(y, y)))
	out = append([]float64(nil), y.Val.Data...)
	for _, v := range in {
		grads = append(grads, append([]float64(nil), v.Grad.Data...))
	}
	return out, grads
}

// checkParallelMatchesSerial runs the op with 1 worker and with several
// workers and requires bitwise-identical outputs and gradients — the
// determinism contract of the parallel kernels.
func checkParallelMatchesSerial(t *testing.T, name string, f func(tp *Tape, in []*Value) *Value, shapes ...[2]int) {
	t.Helper()
	restore := par.SetWorkers(1)
	serialOut, serialGrads := runOp(t, 7, f, shapes...)
	restore()
	for _, w := range []int{2, 4, 8} {
		restore := par.SetWorkers(w)
		out, grads := runOp(t, 7, f, shapes...)
		restore()
		for i := range out {
			if out[i] != serialOut[i] {
				t.Fatalf("%s workers=%d: output[%d] = %v, serial %v", name, w, i, out[i], serialOut[i])
			}
		}
		for gi := range grads {
			for i := range grads[gi] {
				if grads[gi][i] != serialGrads[gi][i] {
					t.Fatalf("%s workers=%d: grad[%d][%d] = %v, serial %v", name, w, gi, i, grads[gi][i], serialGrads[gi][i])
				}
			}
		}
	}
}

func TestParallelMatMulMatchesSerial(t *testing.T) {
	checkParallelMatchesSerial(t, "MatMul", func(tp *Tape, in []*Value) *Value {
		return tp.MatMul(in[0], in[1])
	}, [2]int{130, 37}, [2]int{37, 41})
}

func TestParallelMatMulTMatchesSerial(t *testing.T) {
	checkParallelMatchesSerial(t, "MatMulT", func(tp *Tape, in []*Value) *Value {
		return tp.MatMulT(in[0], in[1])
	}, [2]int{83, 29}, [2]int{61, 29})
}

func TestParallelSegmentSoftmaxMatchesSerial(t *testing.T) {
	n, nSeg := 500, 37
	seg := make([]int, n)
	segRng := rand.New(rand.NewSource(11))
	for i := range seg {
		seg[i] = segRng.Intn(nSeg)
	}
	checkParallelMatchesSerial(t, "SegmentSoftmax", func(tp *Tape, in []*Value) *Value {
		return tp.SegmentSoftmax(in[0], seg, nSeg)
	}, [2]int{n, 1})
}

func TestParallelScatterAddRowsMatchesSerial(t *testing.T) {
	n, outRows := 400, 53
	idx := make([]int, n)
	idxRng := rand.New(rand.NewSource(13))
	for i := range idx {
		idx[i] = idxRng.Intn(outRows)
	}
	checkParallelMatchesSerial(t, "ScatterAddRows", func(tp *Tape, in []*Value) *Value {
		return tp.ScatterAddRows(in[0], idx, outRows)
	}, [2]int{n, 9})
}

func TestParallelRowSoftmaxMatchesSerial(t *testing.T) {
	checkParallelMatchesSerial(t, "RowSoftmax", func(tp *Tape, in []*Value) *Value {
		return tp.RowSoftmax(in[0])
	}, [2]int{211, 17})
}

// TestParallelChainMatchesSerial composes several parallel ops — the shape a
// GAT layer produces — and checks end-to-end bitwise equality, including
// gradient accumulation into a value reused by two ops.
func TestParallelChainMatchesSerial(t *testing.T) {
	checkParallelMatchesSerial(t, "chain", func(tp *Tape, in []*Value) *Value {
		h := tp.MatMul(in[0], in[1]) // 120 x 40
		s := tp.MatMulT(h, in[2])    // 120 x 30
		a := tp.RowSoftmax(s)        // 120 x 30
		return tp.MatMul(a, in[3])   // reuse: in[3] also feeds the residual
	}, [2]int{120, 24}, [2]int{24, 40}, [2]int{30, 40}, [2]int{30, 12})
}

// TestSegmentIndexGroups sanity-checks the CSR grouping used by the segment
// ops: rows grouped by segment, increasing within each segment.
func TestSegmentIndexGroups(t *testing.T) {
	seg := []int{2, 0, 1, 0, 2, 2}
	idx := buildSegmentIndex(NewTape(), seg, 3)
	want := [][]int{{1, 3}, {2}, {0, 4, 5}}
	for s, rows := range want {
		got := idx.rows[idx.off[s]:idx.off[s+1]]
		if len(got) != len(rows) {
			t.Fatalf("segment %d: got %v want %v", s, got, rows)
		}
		for i := range rows {
			if got[i] != rows[i] {
				t.Fatalf("segment %d: got %v want %v", s, got, rows)
			}
		}
	}
}
