package autodiff

import "math"

// Float is the scalar constraint for the generic tensor stack. It is a
// closed two-member set (no ~): kernels type-switch on `any(zero)` to pick
// per-dtype resources (scratch pools, gemm block sizes), and a closed set
// keeps those switches exhaustive.
//
// The float64 instantiation is the reference path: every generic scalar
// helper below lowers to an identity conversion around the stdlib math call,
// so TensorOf[float64] arithmetic is bitwise-identical to the pre-generic
// float64 code (TestFloat64Bitwise pins this).
type Float interface {
	float32 | float64
}

// f64 widens a generic scalar to float64. Serial reductions and stdlib math
// route through it; for T = float64 it compiles to a no-op.
func f64[T Float](x T) float64 {
	//lint:ignore no-dtype-literal f64 is the one sanctioned TypeParam-to-float64 widening; all scalar math funnels through it
	return float64(x)
}

// ToFloat64 widens a generic scalar to float64 — the sanctioned spelling for
// code outside this package (decoders, metrics) that must read generic
// tensor data at full precision; the no-dtype-literal lint rule forbids the
// direct conversion.
func ToFloat64[T Float](x T) float64 { return f64(x) }

// expT is math.Exp over a generic scalar (computed in float64, rounded once).
func expT[T Float](x T) T { return T(math.Exp(f64(x))) }

// tanhT is math.Tanh over a generic scalar.
func tanhT[T Float](x T) T { return T(math.Tanh(f64(x))) }

// minT is math.Min over generic scalars (keeps math.Min's NaN/±0 semantics,
// which a plain < comparison would not).
func minT[T Float](a, b T) T { return T(math.Min(f64(a), f64(b))) }

// maxT is math.Max over generic scalars.
func maxT[T Float](a, b T) T { return T(math.Max(f64(a), f64(b))) }

// negInfT returns -Inf in T.
func negInfT[T Float]() T { return T(math.Inf(-1)) }
