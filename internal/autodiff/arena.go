package autodiff

// The tape arena makes repeated forward/backward passes allocation-free in
// steady state (DESIGN.md §8). Every intermediate the ops create — result
// and gradient tensors, Value nodes, index/scratch slices — is drawn from
// per-tape recycling pools:
//
//   - Tensors come from a shape-keyed free-list (key rows<<32|cols). take
//     zeroes the recycled slab, because the kernels rely on zero-initialised
//     outputs (gemm accumulates rows in place, scatter adds into zeros).
//   - Values come from a pointer-stable slab of fixed-size blocks, so node
//     addresses captured by the graph stay valid while the slab grows.
//   - []int / scalar / []*Value scratch comes from bump-pointer slabs
//     that abandon the old buffer on growth (the GC reclaims it) and start
//     clean the next cycle.
//
// Tape.Reset returns everything to the pools in O(live objects); after one
// warm-up pass over a given graph shape, subsequent passes reuse the same
// memory and perform zero heap allocations (see BenchmarkTapeReuseForwardBackward).
//
// The arena is single-threaded by design: allocation happens only at
// op-issue and backward time, both of which run on the caller's goroutine.
// Parallel kernel chunks never allocate from it.

// valueBlockSize is the number of Values per slab block. Blocks are never
// freed or moved, so *Value pointers handed out stay valid across growth.
const valueBlockSize = 256

// slab is a bump-pointer allocator over a single backing buffer. When a
// request does not fit it abandons the buffer for a bigger one (outstanding
// slices keep the old one alive until the GC collects it after Reset).
type slab[T any] struct {
	buf []T
	cur int
}

// take returns the next n entries of the backing buffer, growing it only
// when the request does not fit.
//
//lint:ignore hotpath-no-alloc slab growth is amortized; steady state bump-allocates from the retained buffer (TestTapeReuseZeroAllocs)
func (s *slab[T]) take(n int) []T {
	if n == 0 {
		return nil
	}
	if s.cur+n > len(s.buf) {
		size := 2 * len(s.buf)
		if size < n {
			size = n
		}
		if size < 1024 {
			size = 1024
		}
		s.buf = make([]T, size)
		s.cur = 0
	}
	out := s.buf[s.cur : s.cur+n : s.cur+n]
	s.cur += n
	return out
}

func (s *slab[T]) takeZeroed(n int) []T {
	out := s.take(n)
	clear(out)
	return out
}

func (s *slab[T]) reset() { s.cur = 0 }

// arena is the per-tape allocation pool. Zero value is ready to use.
type arena[T Float] struct {
	free  map[uint64][]*TensorOf[T] // shape-keyed tensor free-lists
	owned []*TensorOf[T]            // tensors handed out since the last reset

	valBlocks [][]ValueOf[T]
	valBlock  int // block being filled
	valUsed   int // entries used in that block

	ints    slab[int]
	scalars slab[T]
	vals    slab[*ValueOf[T]]

	// Plain (non-atomic) observability counters: the arena is
	// single-threaded by design, and readers sample them between passes via
	// Tape.ArenaStats. Keeping them raw uint64s costs one increment per
	// tensor request and preserves the 0-allocs/op steady state.
	reused    uint64 // tensor requests served from a free-list
	allocated uint64 // tensor requests that hit the heap
	resets    uint64 // reset() calls (one per pass in steady state)
}

func shapeKey(rows, cols int) uint64 {
	return uint64(uint32(rows))<<32 | uint64(uint32(cols))
}

// tensor returns a zeroed rows x cols tensor, recycled when a slab of that
// shape is on the free-list.
//
//lint:ignore hotpath-no-alloc allocates only on free-list miss; after one warm-up pass every shape is recycled (TestTapeReuseZeroAllocs)
func (a *arena[T]) tensor(rows, cols int) *TensorOf[T] {
	key := shapeKey(rows, cols)
	if fl := a.free[key]; len(fl) > 0 {
		t := fl[len(fl)-1]
		a.free[key] = fl[:len(fl)-1]
		clear(t.Data)
		a.owned = append(a.owned, t)
		a.reused++
		return t
	}
	if a.free == nil {
		a.free = make(map[uint64][]*TensorOf[T])
	}
	t := NewTensorOf[T](rows, cols)
	a.owned = append(a.owned, t)
	a.allocated++
	return t
}

// tensorRaw is tensor without the zeroing of recycled storage: the recycled
// slab still holds the previous pass's values. Only for op results whose
// forward kernel stores every element before any read; accumulating kernels
// (scatter-add, segment attention) and gradient buffers must use tensor.
//
//lint:ignore hotpath-no-alloc allocates only on free-list miss; after one warm-up pass every shape is recycled (TestTapeReuseZeroAllocs)
func (a *arena[T]) tensorRaw(rows, cols int) *TensorOf[T] {
	key := shapeKey(rows, cols)
	if fl := a.free[key]; len(fl) > 0 {
		t := fl[len(fl)-1]
		a.free[key] = fl[:len(fl)-1]
		a.owned = append(a.owned, t)
		a.reused++
		return t
	}
	if a.free == nil {
		a.free = make(map[uint64][]*TensorOf[T])
	}
	t := NewTensorOf[T](rows, cols)
	a.owned = append(a.owned, t)
	a.allocated++
	return t
}

// value returns a zeroed Value from the slab. The pointer stays valid until
// the tape is garbage; reset only recycles the storage for reuse.
//
//lint:ignore hotpath-no-alloc block growth is amortized; steady state rewinds and reuses pointer-stable blocks (TestTapeReuseZeroAllocs)
func (a *arena[T]) value() *ValueOf[T] {
	if a.valBlock == len(a.valBlocks) {
		a.valBlocks = append(a.valBlocks, make([]ValueOf[T], valueBlockSize))
	}
	blk := a.valBlocks[a.valBlock]
	v := &blk[a.valUsed]
	a.valUsed++
	if a.valUsed == valueBlockSize {
		a.valBlock++
		a.valUsed = 0
	}
	*v = ValueOf[T]{}
	return v
}

// reset returns every outstanding tensor to its free-list and rewinds the
// slabs. Callers must drop all references obtained since the previous reset.
//
//lint:ignore hotpath-no-alloc free-list append reaches high-water capacity after one pass and stops growing (TestTapeReuseZeroAllocs)
func (a *arena[T]) reset() {
	for _, t := range a.owned {
		key := shapeKey(t.Rows, t.Cols)
		a.free[key] = append(a.free[key], t)
	}
	a.owned = a.owned[:0]
	a.valBlock, a.valUsed = 0, 0
	a.ints.reset()
	a.scalars.reset()
	a.vals.reset()
	a.resets++
}
