package autodiff

import (
	"math/rand"
	"testing"

	"sate/internal/obs"
	"sate/internal/par"
)

// checkFusedMatchesComposed runs the fused kernel and its composition of
// primitive ops on identical inputs and requires bitwise-identical outputs
// and input gradients, at 1 worker and at several — fusion must not change a
// single bit of the model.
func checkFusedMatchesComposed(t *testing.T, name string, fused, composed func(tp *Tape, in []*Value) *Value, shapes ...[2]int) {
	t.Helper()
	for _, w := range []int{1, 3, 8} {
		restore := par.SetWorkers(w)
		fOut, fGrads := runOp(t, 7, fused, shapes...)
		cOut, cGrads := runOp(t, 7, composed, shapes...)
		restore()
		for i := range fOut {
			if fOut[i] != cOut[i] {
				t.Fatalf("%s workers=%d: fused output[%d] = %v, composed %v", name, w, i, fOut[i], cOut[i])
			}
		}
		for gi := range fGrads {
			for i := range fGrads[gi] {
				if fGrads[gi][i] != cGrads[gi][i] {
					t.Fatalf("%s workers=%d: fused grad[%d][%d] = %v, composed %v", name, w, gi, i, fGrads[gi][i], cGrads[gi][i])
				}
			}
		}
	}
}

func TestLinearMatchesComposed(t *testing.T) {
	checkFusedMatchesComposed(t, "Linear",
		func(tp *Tape, in []*Value) *Value {
			return tp.Linear(in[0], in[1], in[2])
		},
		func(tp *Tape, in []*Value) *Value {
			return tp.AddRowBroadcast(tp.MatMul(in[0], in[1]), in[2])
		},
		[2]int{57, 13}, [2]int{13, 19}, [2]int{1, 19})
}

func TestLinearLeakyReLUMatchesComposed(t *testing.T) {
	checkFusedMatchesComposed(t, "LinearLeakyReLU",
		func(tp *Tape, in []*Value) *Value {
			return tp.LinearLeakyReLU(in[0], in[1], in[2], 0.2)
		},
		func(tp *Tape, in []*Value) *Value {
			return tp.LeakyReLU(tp.AddRowBroadcast(tp.MatMul(in[0], in[1]), in[2]), 0.2)
		},
		[2]int{64, 24}, [2]int{24, 32}, [2]int{1, 32})
}

func TestGatherConcatMatchesComposed(t *testing.T) {
	const e, aRows, bRows = 150, 40, 35
	rng := rand.New(rand.NewSource(17))
	ai := make([]int, e)
	bi := make([]int, e)
	for i := range ai {
		ai[i] = rng.Intn(aRows)
		bi[i] = rng.Intn(bRows)
	}
	// b passed through directly (bi nil) — the GAT shape, where the source
	// part is gathered once outside and shared with the message path.
	checkFusedMatchesComposed(t, "GatherConcat/direct",
		func(tp *Tape, in []*Value) *Value {
			return tp.GatherConcat(in[0], ai, in[1], nil, in[2])
		},
		func(tp *Tape, in []*Value) *Value {
			return tp.Concat(tp.Gather(in[0], ai), in[1], in[2])
		},
		[2]int{aRows, 7}, [2]int{e, 7}, [2]int{e, 5})
	// b gathered too.
	checkFusedMatchesComposed(t, "GatherConcat/gathered",
		func(tp *Tape, in []*Value) *Value {
			return tp.GatherConcat(in[0], ai, in[1], bi, in[2])
		},
		func(tp *Tape, in []*Value) *Value {
			return tp.Concat(tp.Gather(in[0], ai), tp.Gather(in[1], bi), in[2])
		},
		[2]int{aRows, 7}, [2]int{bRows, 7}, [2]int{e, 5})
}

func TestSegmentAttentionMatchesComposed(t *testing.T) {
	const e, nSeg = 300, 23
	seg := make([]int, e)
	rng := rand.New(rand.NewSource(19))
	for i := range seg {
		seg[i] = rng.Intn(nSeg)
	}
	checkFusedMatchesComposed(t, "SegmentAttention",
		func(tp *Tape, in []*Value) *Value {
			return tp.SegmentAttention(in[0], in[1], seg, nSeg)
		},
		func(tp *Tape, in []*Value) *Value {
			alpha := tp.SegmentSoftmax(in[0], seg, nSeg)
			return tp.ScatterAddRows(tp.MulColBroadcast(in[1], alpha), seg, nSeg)
		},
		[2]int{e, 1}, [2]int{e, 9})
}

func TestParallelLinearMatchesSerial(t *testing.T) {
	checkParallelMatchesSerial(t, "LinearLeakyReLU", func(tp *Tape, in []*Value) *Value {
		return tp.LinearLeakyReLU(in[0], in[1], in[2], 0.2)
	}, [2]int{130, 24}, [2]int{24, 40}, [2]int{1, 40})
}

func TestParallelGatherConcatMatchesSerial(t *testing.T) {
	const e, aRows = 400, 60
	rng := rand.New(rand.NewSource(23))
	ai := make([]int, e)
	for i := range ai {
		ai[i] = rng.Intn(aRows)
	}
	checkParallelMatchesSerial(t, "GatherConcat", func(tp *Tape, in []*Value) *Value {
		return tp.GatherConcat(in[0], ai, in[1], nil, in[2])
	}, [2]int{aRows, 11}, [2]int{e, 11}, [2]int{e, 6})
}

func TestParallelSegmentAttentionMatchesSerial(t *testing.T) {
	const e, nSeg = 500, 37
	seg := make([]int, e)
	rng := rand.New(rand.NewSource(29))
	for i := range seg {
		seg[i] = rng.Intn(nSeg)
	}
	checkParallelMatchesSerial(t, "SegmentAttention", func(tp *Tape, in []*Value) *Value {
		return tp.SegmentAttention(in[0], in[1], seg, nSeg)
	}, [2]int{e, 1}, [2]int{e, 13})
}

// adamRun performs several Adam steps over two parameters (one large enough
// to split across blocks) with deterministic synthetic gradients and returns
// the final parameter data.
func adamRun(workers, steps int) [][]float64 {
	restore := par.SetWorkers(workers)
	defer restore()
	rng := rand.New(rand.NewSource(21))
	p1 := Param(NewTensor(300, 17).Randn(rng, 1)) // 5100 elems: 2 blocks
	p2 := Param(NewTensor(5, 3).Randn(rng, 1))
	opt := NewAdam(1e-2, p1, p2)
	opt.ClipNorm = 1
	grng := rand.New(rand.NewSource(33))
	for s := 0; s < steps; s++ {
		opt.ZeroGrad()
		for _, p := range []*Value{p1, p2} {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = grng.NormFloat64()
			}
		}
		opt.Step()
	}
	return [][]float64{
		append([]float64(nil), p1.Val.Data...),
		append([]float64(nil), p2.Val.Data...),
	}
}

// TestAdamParallelMatchesSerial checks the block-parallel optimizer update
// is bitwise identical to the serial one (referenced from the Adam doc).
func TestAdamParallelMatchesSerial(t *testing.T) {
	serial := adamRun(1, 4)
	for _, w := range []int{2, 4, 8} {
		got := adamRun(w, 4)
		for pi := range serial {
			for i := range serial[pi] {
				if got[pi][i] != serial[pi][i] {
					t.Fatalf("workers=%d: param[%d][%d] = %v, serial %v", w, pi, i, got[pi][i], serial[pi][i])
				}
			}
		}
	}
}

// TestTapeReuseZeroAllocs verifies the tentpole claim: after warm-up, a full
// forward/backward/optimizer step on a reused tape performs zero heap
// allocations (serial path — parallel dispatch spawns goroutines). The pool
// metrics are enabled for the run: instrumentation must not cost an alloc.
func TestTapeReuseZeroAllocs(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("race runtime perturbs alloc accounting (see obs.RaceEnabled)")
	}
	restore := par.SetWorkers(1)
	defer restore()
	par.Observe(obs.NewRegistry())
	defer par.Observe(nil)
	rng := rand.New(rand.NewSource(5))
	w1 := Param(NewTensor(13, 16).Randn(rng, 1))
	b1 := Param(NewTensor(1, 16))
	w2 := Param(NewTensor(16, 1).Randn(rng, 1))
	b2 := Param(NewTensor(1, 1))
	x := NewTensor(40, 13).Randn(rng, 1)
	seg := make([]int, 40)
	for i := range seg {
		seg[i] = i % 8
	}
	opt := NewAdam(1e-3, w1, b1, w2, b2)
	tp := NewTape()
	step := func() {
		tp.Reset()
		xin := tp.Const(tp.TensorFrom(40, 13, x.Data))
		h := tp.LinearLeakyReLU(xin, tp.Watch(w1), tp.Watch(b1), 0.2)
		score := tp.Linear(h, tp.Watch(w2), tp.Watch(b2))
		agg := tp.SegmentAttention(score, h, seg, 8)
		loss := tp.MeanAll(tp.Mul(agg, agg))
		opt.ZeroGrad()
		tp.Backward(loss)
		opt.Step()
	}
	step()
	step() // warm the arena and free-lists
	if n := testing.AllocsPerRun(20, step); n != 0 {
		t.Fatalf("steady-state step allocates %v objects/op, want 0", n)
	}
}

// TestTapeReuseMatchesFreshTape runs the same three-step toy optimisation
// once with a fresh tape per step and once with a single reused tape, and
// requires bitwise-identical losses and final parameters.
func TestTapeReuseMatchesFreshTape(t *testing.T) {
	run := func(reuse bool) ([]float64, []float64) {
		rng := rand.New(rand.NewSource(9))
		w1 := Param(NewTensor(11, 8).Randn(rng, 1))
		b1 := Param(NewTensor(1, 8))
		w2 := Param(NewTensor(8, 1).Randn(rng, 1))
		x := NewTensor(30, 11).Randn(rng, 1)
		opt := NewAdam(1e-2, w1, b1, w2)
		var losses []float64
		tp := NewTape()
		for s := 0; s < 4; s++ {
			if reuse {
				tp.Reset()
			} else {
				tp = NewTape()
			}
			h := tp.LinearLeakyReLU(tp.Const(tp.TensorFrom(30, 11, x.Data)), tp.Watch(w1), tp.Watch(b1), 0.2)
			y := tp.MatMul(h, tp.Watch(w2))
			loss := tp.MeanAll(tp.Mul(y, y))
			opt.ZeroGrad()
			tp.Backward(loss)
			opt.Step()
			losses = append(losses, loss.Val.Data[0])
		}
		return losses, append([]float64(nil), w1.Val.Data...)
	}
	fLoss, fW := run(false)
	rLoss, rW := run(true)
	for i := range fLoss {
		if fLoss[i] != rLoss[i] {
			t.Fatalf("step %d: reused-tape loss %v, fresh-tape %v", i, rLoss[i], fLoss[i])
		}
	}
	for i := range fW {
		if fW[i] != rW[i] {
			t.Fatalf("param[%d]: reused %v, fresh %v", i, rW[i], fW[i])
		}
	}
}
