package autodiff

import (
	"math"

	"sate/internal/par"
)

// AdamOf is the Adam optimizer over a fixed set of parameters. Step and
// ZeroGrad run block-parallel over fixed parameter slices: the update is
// independent per element, so any partition of the elements produces
// bitwise-identical parameters (see TestAdamParallelMatchesSerial). The
// global gradient norm stays a serial reduction — its cross-parameter
// accumulation order is part of the determinism contract.
//
// Hyperparameters and the per-element update arithmetic are float64 for
// every dtype (moments are stored in T); for T = float64 this is exactly the
// pre-generic optimizer. Training in this repo is float64-only — the float32
// instantiation exists for API completeness.
type AdamOf[T Float] struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	ClipNorm float64 // global gradient-norm clip; 0 disables

	params []*ValueOf[T]
	m, v   []*TensorOf[T]
	blocks []adamBlock
	t      int
}

// Adam is the float64 optimizer.
type Adam = AdamOf[float64]

// adamBlock is one contiguous slice [lo, hi) of parameter pi's elements.
type adamBlock struct{ pi, lo, hi int }

// adamBlockSize bounds elements per block: large parameters split across
// workers, small ones stay whole.
const adamBlockSize = 4096

// NewAdam creates an optimizer with standard defaults (lr as given,
// beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam[T Float](lr float64, params ...*ValueOf[T]) *AdamOf[T] {
	a := &AdamOf[T]{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for pi, p := range params {
		if !p.isParam {
			panic("autodiff: Adam over non-parameter value")
		}
		a.m = append(a.m, NewTensorOf[T](p.Val.Rows, p.Val.Cols))
		a.v = append(a.v, NewTensorOf[T](p.Val.Rows, p.Val.Cols))
		for lo := 0; lo < len(p.Val.Data); lo += adamBlockSize {
			hi := lo + adamBlockSize
			if hi > len(p.Val.Data) {
				hi = len(p.Val.Data)
			}
			a.blocks = append(a.blocks, adamBlock{pi: pi, lo: lo, hi: hi})
		}
	}
	return a
}

// Params returns the managed parameters.
func (a *AdamOf[T]) Params() []*ValueOf[T] { return a.params }

// ZeroGrad clears all parameter gradients.
//
//sate:hotpath optimizer inner loop of every training step
func (a *AdamOf[T]) ZeroGrad() {
	par.ForCtx(len(a.blocks), par.Grain(len(a.blocks), 1), a, opsFor[T]().adamZeroChunk)
}

func adamZeroChunk[T Float](a *AdamOf[T], lo, hi int) {
	for _, blk := range a.blocks[lo:hi] {
		clear(a.params[blk.pi].Grad.Data[blk.lo:blk.hi])
	}
}

// GradNorm returns the global L2 norm of all parameter gradients.
func (a *AdamOf[T]) GradNorm() float64 {
	var s float64
	for _, p := range a.params {
		for _, g := range p.Grad.Data {
			s += f64(g) * f64(g)
		}
	}
	return math.Sqrt(s)
}

// adamStepArgs carries one step's scalars into the block chunks.
type adamStepArgs[T Float] struct {
	a               *AdamOf[T]
	scale, b1c, b2c float64
}

// Step applies one Adam update from the accumulated gradients.
//
//sate:hotpath optimizer inner loop of every training step
func (a *AdamOf[T]) Step() {
	a.t++
	scale := 1.0
	if a.ClipNorm > 0 {
		if n := a.GradNorm(); n > a.ClipNorm {
			scale = a.ClipNorm / n
		}
	}
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	par.ForCtx(len(a.blocks), par.Grain(len(a.blocks), 1),
		adamStepArgs[T]{a: a, scale: scale, b1c: b1c, b2c: b2c}, opsFor[T]().adamStepChunk)
}

func adamStepChunk[T Float](s adamStepArgs[T], lo, hi int) {
	a := s.a
	for _, blk := range a.blocks[lo:hi] {
		p, m, v := a.params[blk.pi], a.m[blk.pi], a.v[blk.pi]
		for i := blk.lo; i < blk.hi; i++ {
			g := f64(p.Grad.Data[i]) * s.scale
			mv := a.Beta1*f64(m.Data[i]) + (1-a.Beta1)*g
			vv := a.Beta2*f64(v.Data[i]) + (1-a.Beta2)*g*g
			m.Data[i] = T(mv)
			v.Data[i] = T(vv)
			mh := mv / s.b1c
			vh := vv / s.b2c
			p.Val.Data[i] = T(f64(p.Val.Data[i]) - a.LR*mh/(math.Sqrt(vh)+a.Eps))
		}
	}
}

// NumParams returns the total number of scalar parameters.
func (a *AdamOf[T]) NumParams() int {
	n := 0
	for _, p := range a.params {
		n += len(p.Val.Data)
	}
	return n
}

// GradCheck numerically verifies the analytic gradient of a scalar-valued
// function with respect to one parameter, returning the maximum relative
// error over sampled entries. f must rebuild the graph on a fresh tape and
// return the scalar output; it is called multiple times. Gradient checking
// is a float64-only tool: central differences drown in float32 rounding.
func GradCheck(p *Value, f func() float64, analytic *Tensor, h float64, samples int) float64 {
	if samples <= 0 || samples > len(p.Val.Data) {
		samples = len(p.Val.Data)
	}
	maxErr := 0.0
	stride := len(p.Val.Data) / samples
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < len(p.Val.Data); i += stride {
		orig := p.Val.Data[i]
		p.Val.Data[i] = orig + h
		fp := f()
		p.Val.Data[i] = orig - h
		fm := f()
		p.Val.Data[i] = orig
		num := (fp - fm) / (2 * h)
		ana := analytic.Data[i]
		den := math.Max(1e-6, math.Abs(num)+math.Abs(ana))
		if err := math.Abs(num-ana) / den; err > maxErr {
			maxErr = err
		}
	}
	return maxErr
}
