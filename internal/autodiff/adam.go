package autodiff

import (
	"math"

	"sate/internal/par"
)

// Adam is the Adam optimizer over a fixed set of parameters. Step and
// ZeroGrad run block-parallel over fixed parameter slices: the update is
// independent per element, so any partition of the elements produces
// bitwise-identical parameters (see TestAdamParallelMatchesSerial). The
// global gradient norm stays a serial reduction — its cross-parameter
// accumulation order is part of the determinism contract.
type Adam struct {
	LR       float64
	Beta1    float64
	Beta2    float64
	Eps      float64
	ClipNorm float64 // global gradient-norm clip; 0 disables

	params []*Value
	m, v   []*Tensor
	blocks []adamBlock
	t      int
}

// adamBlock is one contiguous slice [lo, hi) of parameter pi's elements.
type adamBlock struct{ pi, lo, hi int }

// adamBlockSize bounds elements per block: large parameters split across
// workers, small ones stay whole.
const adamBlockSize = 4096

// NewAdam creates an optimizer with standard defaults (lr as given,
// beta1=0.9, beta2=0.999, eps=1e-8).
func NewAdam(lr float64, params ...*Value) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for pi, p := range params {
		if !p.isParam {
			panic("autodiff: Adam over non-parameter value")
		}
		a.m = append(a.m, NewTensor(p.Val.Rows, p.Val.Cols))
		a.v = append(a.v, NewTensor(p.Val.Rows, p.Val.Cols))
		for lo := 0; lo < len(p.Val.Data); lo += adamBlockSize {
			hi := lo + adamBlockSize
			if hi > len(p.Val.Data) {
				hi = len(p.Val.Data)
			}
			a.blocks = append(a.blocks, adamBlock{pi: pi, lo: lo, hi: hi})
		}
	}
	return a
}

// Params returns the managed parameters.
func (a *Adam) Params() []*Value { return a.params }

// ZeroGrad clears all parameter gradients.
func (a *Adam) ZeroGrad() {
	par.ForCtx(len(a.blocks), par.Grain(len(a.blocks), 1), a, adamZeroChunk)
}

func adamZeroChunk(a *Adam, lo, hi int) {
	for _, blk := range a.blocks[lo:hi] {
		clear(a.params[blk.pi].Grad.Data[blk.lo:blk.hi])
	}
}

// GradNorm returns the global L2 norm of all parameter gradients.
func (a *Adam) GradNorm() float64 {
	var s float64
	for _, p := range a.params {
		for _, g := range p.Grad.Data {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// adamStepArgs carries one step's scalars into the block chunks.
type adamStepArgs struct {
	a               *Adam
	scale, b1c, b2c float64
}

// Step applies one Adam update from the accumulated gradients.
func (a *Adam) Step() {
	a.t++
	scale := 1.0
	if a.ClipNorm > 0 {
		if n := a.GradNorm(); n > a.ClipNorm {
			scale = a.ClipNorm / n
		}
	}
	b1c := 1 - math.Pow(a.Beta1, float64(a.t))
	b2c := 1 - math.Pow(a.Beta2, float64(a.t))
	par.ForCtx(len(a.blocks), par.Grain(len(a.blocks), 1),
		adamStepArgs{a: a, scale: scale, b1c: b1c, b2c: b2c}, adamStepChunk)
}

func adamStepChunk(s adamStepArgs, lo, hi int) {
	a := s.a
	for _, blk := range a.blocks[lo:hi] {
		p, m, v := a.params[blk.pi], a.m[blk.pi], a.v[blk.pi]
		for i := blk.lo; i < blk.hi; i++ {
			g := p.Grad.Data[i] * s.scale
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / s.b1c
			vh := v.Data[i] / s.b2c
			p.Val.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
	}
}

// NumParams returns the total number of scalar parameters.
func (a *Adam) NumParams() int {
	n := 0
	for _, p := range a.params {
		n += len(p.Val.Data)
	}
	return n
}

// GradCheck numerically verifies the analytic gradient of a scalar-valued
// function with respect to one parameter, returning the maximum relative
// error over sampled entries. f must rebuild the graph on a fresh tape and
// return the scalar output; it is called multiple times.
func GradCheck(p *Value, f func() float64, analytic *Tensor, h float64, samples int) float64 {
	if samples <= 0 || samples > len(p.Val.Data) {
		samples = len(p.Val.Data)
	}
	maxErr := 0.0
	stride := len(p.Val.Data) / samples
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < len(p.Val.Data); i += stride {
		orig := p.Val.Data[i]
		p.Val.Data[i] = orig + h
		fp := f()
		p.Val.Data[i] = orig - h
		fm := f()
		p.Val.Data[i] = orig
		num := (fp - fm) / (2 * h)
		ana := analytic.Data[i]
		den := math.Max(1e-6, math.Abs(num)+math.Abs(ana))
		if err := math.Abs(num-ana) / den; err > maxErr {
			maxErr = err
		}
	}
	return maxErr
}
