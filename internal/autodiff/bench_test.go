package autodiff

import (
	"fmt"
	"math/rand"
	"testing"

	"sate/internal/par"
)

// benchMatMul measures one forward+backward MatMul round at a GAT-sized
// shape under a fixed worker count.
func benchMatMul(b *testing.B, workers int) {
	restore := par.SetWorkers(workers)
	defer restore()
	rng := rand.New(rand.NewSource(1))
	av := NewTensor(2048, 64).Randn(rng, 1)
	bv := NewTensor(64, 64).Randn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		a := tp.Const(av)
		w := tp.Const(bv)
		y := tp.MatMul(a, w)
		tp.Backward(tp.MeanAll(y))
	}
}

// BenchmarkParMatMul reports serial-vs-parallel ns/op for the matmul kernel
// (forward + backward). The Serial variant pins one worker; Parallel uses
// the full GOMAXPROCS/SATE_WORKERS budget.
func BenchmarkParMatMulSerial(b *testing.B)   { benchMatMul(b, 1) }
func BenchmarkParMatMulParallel(b *testing.B) { benchMatMul(b, 0) }

// BenchmarkParMatMulWorkers sweeps explicit worker counts (useful on
// multi-core hosts: ns/op should drop roughly linearly until the memory bus
// saturates).
func BenchmarkParMatMulWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) { benchMatMul(b, w) })
	}
}

func benchSegmentSoftmax(b *testing.B, workers int) {
	restore := par.SetWorkers(workers)
	defer restore()
	n, nSeg := 20000, 2000
	rng := rand.New(rand.NewSource(2))
	seg := make([]int, n)
	for i := range seg {
		seg[i] = rng.Intn(nSeg)
	}
	xv := NewTensor(n, 1).Randn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		x := tp.Const(xv)
		y := tp.SegmentSoftmax(x, seg, nSeg)
		tp.Backward(tp.MeanAll(y))
	}
}

func BenchmarkParSegmentSoftmaxSerial(b *testing.B)   { benchSegmentSoftmax(b, 1) }
func BenchmarkParSegmentSoftmaxParallel(b *testing.B) { benchSegmentSoftmax(b, 0) }
