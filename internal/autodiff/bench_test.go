package autodiff

import (
	"fmt"
	"math/rand"
	"testing"

	"sate/internal/par"
)

// benchMatMul measures one forward+backward MatMul round at a GAT-sized
// shape under a fixed worker count.
func benchMatMul(b *testing.B, workers int) {
	restore := par.SetWorkers(workers)
	defer restore()
	rng := rand.New(rand.NewSource(1))
	av := NewTensor(2048, 64).Randn(rng, 1)
	bv := NewTensor(64, 64).Randn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		a := tp.Const(av)
		w := tp.Const(bv)
		y := tp.MatMul(a, w)
		tp.Backward(tp.MeanAll(y))
	}
}

// BenchmarkParMatMul reports serial-vs-parallel ns/op for the matmul kernel
// (forward + backward). The Serial variant pins one worker; Parallel uses
// the full GOMAXPROCS/SATE_WORKERS budget.
func BenchmarkParMatMulSerial(b *testing.B)   { benchMatMul(b, 1) }
func BenchmarkParMatMulParallel(b *testing.B) { benchMatMul(b, 0) }

// BenchmarkParMatMulWorkers sweeps explicit worker counts (useful on
// multi-core hosts: ns/op should drop roughly linearly until the memory bus
// saturates).
func BenchmarkParMatMulWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) { benchMatMul(b, w) })
	}
}

func benchSegmentSoftmax(b *testing.B, workers int) {
	restore := par.SetWorkers(workers)
	defer restore()
	n, nSeg := 20000, 2000
	rng := rand.New(rand.NewSource(2))
	seg := make([]int, n)
	for i := range seg {
		seg[i] = rng.Intn(nSeg)
	}
	xv := NewTensor(n, 1).Randn(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		x := tp.Const(xv)
		y := tp.SegmentSoftmax(x, seg, nSeg)
		tp.Backward(tp.MeanAll(y))
	}
}

func BenchmarkParSegmentSoftmaxSerial(b *testing.B)   { benchSegmentSoftmax(b, 1) }
func BenchmarkParSegmentSoftmaxParallel(b *testing.B) { benchSegmentSoftmax(b, 0) }

// benchTapeStep builds a GAT-shaped forward/backward/Adam step closure over
// the fused kernels. When reuse is true a single tape is recycled with
// Reset; otherwise every step allocates a fresh tape (the pre-arena
// behaviour, kept as the comparison point).
func benchTapeStep(reuse bool) func() {
	rng := rand.New(rand.NewSource(5))
	const nodes, edges, dim = 512, 2048, 32
	w1 := Param(NewTensor(dim, dim).Randn(rng, 1))
	b1 := Param(NewTensor(1, dim))
	w2 := Param(NewTensor(dim, 1).Randn(rng, 1))
	b2 := Param(NewTensor(1, 1))
	x := NewTensor(edges, dim).Randn(rng, 1)
	seg := make([]int, edges)
	for i := range seg {
		seg[i] = rng.Intn(nodes)
	}
	opt := NewAdam(1e-3, w1, b1, w2, b2)
	tp := NewTape()
	return func() {
		if reuse {
			tp.Reset()
		} else {
			tp = NewTape()
		}
		xin := tp.Const(tp.TensorFrom(edges, dim, x.Data))
		h := tp.LinearLeakyReLU(xin, tp.Watch(w1), tp.Watch(b1), 0.2)
		score := tp.Linear(h, tp.Watch(w2), tp.Watch(b2))
		agg := tp.SegmentAttention(score, h, seg, nodes)
		loss := tp.MeanAll(tp.Mul(agg, agg))
		opt.ZeroGrad()
		tp.Backward(loss)
		opt.Step()
	}
}

// BenchmarkTapeReuseForwardBackward measures the zero-allocation steady
// state: a full forward/backward/optimizer step on a reused tape. Serial
// workers — parallel dispatch itself spawns goroutines. Expect 0 allocs/op
// (TestTapeReuseZeroAllocs holds the hard assertion).
func BenchmarkTapeReuseForwardBackward(b *testing.B) {
	restore := par.SetWorkers(1)
	defer restore()
	step := benchTapeStep(true)
	step()
	step() // two warm-up steps fill every free-list to steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// BenchmarkTapeFreshForwardBackward is the fresh-tape-per-step comparison
// point for BenchmarkTapeReuseForwardBackward.
func BenchmarkTapeFreshForwardBackward(b *testing.B) {
	restore := par.SetWorkers(1)
	defer restore()
	step := benchTapeStep(false)
	step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}
