package autodiff

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3)
	x.Set(1, 2, 7)
	if x.At(1, 2) != 7 {
		t.Fatal("At/Set broken")
	}
	y := x.Clone()
	y.Set(0, 0, 1)
	if x.At(0, 0) != 0 {
		t.Fatal("clone aliases")
	}
	if !x.SameShape(y) {
		t.Fatal("same shape expected")
	}
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length should panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestMatMulForward(t *testing.T) {
	tp := NewTape()
	a := tp.Const(FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6}))
	b := tp.Const(FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12}))
	c := tp.MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almost(c.Val.Data[i], w, 1e-12) {
			t.Errorf("c[%d] = %v want %v", i, c.Val.Data[i], w)
		}
	}
}

// checkGrad builds f on a fresh tape, backprops, and compares with numeric
// gradients for every parameter in ps.
func checkGrad(t *testing.T, ps []*Value, f func(tp *Tape) *Value) {
	t.Helper()
	run := func() float64 {
		tp := NewTape()
		for _, p := range ps {
			tp.Watch(p)
		}
		return f(tp).Val.Data[0]
	}
	// Analytic gradients.
	tp := NewTape()
	for _, p := range ps {
		p.Grad.Fill(0)
		tp.Watch(p)
	}
	out := f(tp)
	tp.Backward(out)
	for pi, p := range ps {
		analytic := p.Grad.Clone()
		if err := GradCheck(p, run, analytic, 1e-5, 20); err > 1e-4 {
			t.Errorf("param %d: max relative gradient error %v", pi, err)
		}
	}
}

func randParam(rng *rand.Rand, r, c int) *Value {
	return Param(NewTensor(r, c).Randn(rng, 0.5))
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 4, 2)
	checkGrad(t, []*Value{a, b}, func(tp *Tape) *Value {
		return tp.SumAll(tp.MatMul(a, b))
	})
}

func TestGradAddSubMulScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randParam(rng, 2, 3)
	b := randParam(rng, 2, 3)
	checkGrad(t, []*Value{a, b}, func(tp *Tape) *Value {
		x := tp.Add(a, b)
		y := tp.Sub(x, b)
		z := tp.Mul(y, x)
		return tp.SumAll(tp.Scale(z, 0.7))
	})
}

func TestGradNonlinearities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randParam(rng, 3, 3)
	checkGrad(t, []*Value{a}, func(tp *Tape) *Value {
		x := tp.LeakyReLU(a, 0.2)
		y := tp.Sigmoid(x)
		z := tp.Tanh(y)
		w := tp.Exp(tp.Scale(z, 0.3))
		return tp.SumAll(w)
	})
}

func TestGradClampMax(t *testing.T) {
	a := Param(FromSlice(1, 4, []float64{-1, 0.2, 0.9, 3}))
	checkGrad(t, []*Value{a}, func(tp *Tape) *Value {
		return tp.SumAll(tp.Exp(tp.ClampMax(a, 1.0)))
	})
}

func TestGradBroadcasts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randParam(rng, 4, 3)
	bias := randParam(rng, 1, 3)
	scale := randParam(rng, 4, 1)
	checkGrad(t, []*Value{a, bias, scale}, func(tp *Tape) *Value {
		x := tp.AddRowBroadcast(a, bias)
		y := tp.MulColBroadcast(x, scale)
		return tp.SumAll(tp.Mul(y, y))
	})
}

func TestGradConcatGatherScatter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randParam(rng, 4, 2)
	b := randParam(rng, 4, 3)
	idx := []int{0, 2, 2, 3, 1}
	checkGrad(t, []*Value{a, b}, func(tp *Tape) *Value {
		cat := tp.Concat(a, b) // 4x5
		g := tp.Gather(cat, idx)
		s := tp.ScatterAddRows(g, []int{0, 1, 1, 0, 2}, 3)
		return tp.SumAll(tp.Mul(s, s))
	})
}

func TestGradSegmentSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randParam(rng, 6, 1)
	seg := []int{0, 0, 1, 1, 1, 2}
	w := Param(NewTensor(6, 1).Randn(rng, 1))
	checkGrad(t, []*Value{a, w}, func(tp *Tape) *Value {
		sm := tp.SegmentSoftmax(a, seg, 3)
		return tp.SumAll(tp.Mul(sm, w))
	})
}

func TestSegmentSoftmaxSumsToOne(t *testing.T) {
	tp := NewTape()
	a := tp.Const(FromSlice(5, 1, []float64{3, -1, 100, 101, 99}))
	seg := []int{0, 0, 1, 1, 1}
	sm := tp.SegmentSoftmax(a, seg, 2)
	if s := sm.Val.Data[0] + sm.Val.Data[1]; !almost(s, 1, 1e-12) {
		t.Errorf("segment 0 sums to %v", s)
	}
	if s := sm.Val.Data[2] + sm.Val.Data[3] + sm.Val.Data[4]; !almost(s, 1, 1e-12) {
		t.Errorf("segment 1 sums to %v", s)
	}
	// Numerical stability at large magnitudes: no NaN.
	for _, v := range sm.Val.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN in softmax")
		}
	}
}

func TestGradSumRowsMSE(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randParam(rng, 3, 4)
	tgt := NewTensor(3, 1).Randn(rng, 1)
	checkGrad(t, []*Value{a}, func(tp *Tape) *Value {
		return tp.MSE(tp.SumRows(a), tp.Const(tgt))
	})
}

func TestAdamConvergesQuadratic(t *testing.T) {
	// Minimize ||x - target||^2.
	rng := rand.New(rand.NewSource(8))
	x := Param(NewTensor(1, 5).Randn(rng, 1))
	target := FromSlice(1, 5, []float64{1, -2, 3, 0.5, -0.25})
	opt := NewAdam(0.05, x)
	var loss float64
	for i := 0; i < 500; i++ {
		tp := NewTape()
		tp.Watch(x)
		l := tp.MSE(x, tp.Const(target))
		opt.ZeroGrad()
		tp.Backward(l)
		opt.Step()
		loss = l.Val.Data[0]
	}
	if loss > 1e-4 {
		t.Errorf("Adam failed to converge: loss %v", loss)
	}
	for i := range target.Data {
		if !almost(x.Val.Data[i], target.Data[i], 0.01) {
			t.Errorf("x[%d] = %v want %v", i, x.Val.Data[i], target.Data[i])
		}
	}
}

func TestAdamGradClip(t *testing.T) {
	x := Param(FromSlice(1, 2, []float64{0, 0}))
	opt := NewAdam(0.1, x)
	opt.ClipNorm = 1
	x.Grad.Data[0] = 100
	x.Grad.Data[1] = 100
	if n := opt.GradNorm(); !almost(n, math.Sqrt(20000), 1e-9) {
		t.Errorf("grad norm %v", n)
	}
	opt.Step()
	// With clipping the first Adam step is bounded by ~lr.
	for _, v := range x.Val.Data {
		if math.Abs(v) > 0.11 {
			t.Errorf("step too large: %v", v)
		}
	}
}

func TestAdamLinearRegression(t *testing.T) {
	// Fit y = X w with Adam; checks MatMul gradients end to end.
	rng := rand.New(rand.NewSource(9))
	n, d := 40, 3
	X := NewTensor(n, d).Randn(rng, 1)
	trueW := FromSlice(d, 1, []float64{2, -1, 0.5})
	Y := NewTensor(n, 1)
	gemm(Y, X, trueW, false)
	w := Param(NewTensor(d, 1).Randn(rng, 0.1))
	opt := NewAdam(0.05, w)
	for i := 0; i < 800; i++ {
		tp := NewTape()
		tp.Watch(w)
		pred := tp.MatMul(tp.Const(X), w)
		loss := tp.MSE(pred, tp.Const(Y))
		opt.ZeroGrad()
		tp.Backward(loss)
		opt.Step()
	}
	for i := range trueW.Data {
		if !almost(w.Val.Data[i], trueW.Data[i], 0.02) {
			t.Errorf("w[%d] = %v want %v", i, w.Val.Data[i], trueW.Data[i])
		}
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	tp := NewTape()
	a := tp.Const(NewTensor(2, 2))
	defer func() {
		if recover() == nil {
			t.Error("Backward on non-scalar should panic")
		}
	}()
	tp.Backward(a)
}

func TestWatchNonParamPanics(t *testing.T) {
	tp := NewTape()
	v := tp.Const(NewTensor(1, 1))
	defer func() {
		if recover() == nil {
			t.Error("Watch on non-param should panic")
		}
	}()
	tp.Watch(v)
}

func TestGradMatMulT(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 5, 4)
	checkGrad(t, []*Value{a, b}, func(tp *Tape) *Value {
		return tp.SumAll(tp.Mul(tp.MatMulT(a, b), tp.MatMulT(a, b)))
	})
}

func TestMatMulTMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tp := NewTape()
	a := tp.Const(NewTensor(3, 4).Randn(rng, 1))
	bT := NewTensor(5, 4).Randn(rng, 1)
	// Build b = bT^T explicitly for the reference MatMul.
	b := NewTensor(4, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 4; j++ {
			b.Set(j, i, bT.At(i, j))
		}
	}
	ref := tp.MatMul(a, tp.Const(b))
	got := tp.MatMulT(a, tp.Const(bT))
	for i := range ref.Val.Data {
		if !almost(ref.Val.Data[i], got.Val.Data[i], 1e-12) {
			t.Fatalf("MatMulT mismatch at %d", i)
		}
	}
}

func TestGradRowSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randParam(rng, 3, 5)
	w := Param(NewTensor(3, 5).Randn(rng, 1))
	checkGrad(t, []*Value{a, w}, func(tp *Tape) *Value {
		return tp.SumAll(tp.Mul(tp.RowSoftmax(a), w))
	})
}

func TestRowSoftmaxRowsSumToOne(t *testing.T) {
	tp := NewTape()
	a := tp.Const(FromSlice(2, 3, []float64{1000, 1001, 999, -5, 0, 5}))
	sm := tp.RowSoftmax(a)
	for r := 0; r < 2; r++ {
		var s float64
		for c := 0; c < 3; c++ {
			v := sm.Val.At(r, c)
			if math.IsNaN(v) {
				t.Fatal("NaN in row softmax")
			}
			s += v
		}
		if !almost(s, 1, 1e-12) {
			t.Errorf("row %d sums to %v", r, s)
		}
	}
}

func TestGradSoftClamp(t *testing.T) {
	a := Param(FromSlice(1, 5, []float64{-10, -2, 0, 2, 10}))
	checkGrad(t, []*Value{a}, func(tp *Tape) *Value {
		sc := tp.SoftClamp(a, -4, 4, 0.05)
		return tp.SumAll(tp.Mul(sc, sc))
	})
}

func TestSoftClampValues(t *testing.T) {
	tp := NewTape()
	a := tp.Const(FromSlice(1, 3, []float64{-100, 0, 100}))
	sc := tp.SoftClamp(a, -4, 4, 0.05)
	want := []float64{-4 + 0.05*(-96), 0, 4 + 0.05*96}
	for i, w := range want {
		if !almost(sc.Val.Data[i], w, 1e-12) {
			t.Errorf("softclamp[%d] = %v want %v", i, sc.Val.Data[i], w)
		}
	}
}
