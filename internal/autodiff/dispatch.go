package autodiff

// Referencing a generic function as a value inside generic code (e.g.
// passing addFwdChunk[T] to par.ForCtx from a TapeOf[T] method) makes the
// runtime build a closure binding the instantiation dictionary — one heap
// allocation per reference, which would put two allocations back into every
// op and break the zero-alloc steady state (TestTapeReuseZeroAllocs).
//
// opTable fixes that: every backward and chunk function the ops hand out by
// value is materialised ONCE per dtype at package init, and the ops read the
// stored func values (a struct field load — no allocation). Float is a
// closed two-member set, so two tables cover every instantiation.
type opTable[T Float] struct {
	// Backward functions (newNode's back argument).
	matMulBack           func(*ValueOf[T])
	matMulTBack          func(*ValueOf[T])
	addBack              func(*ValueOf[T])
	subBack              func(*ValueOf[T])
	mulBack              func(*ValueOf[T])
	scaleBack            func(*ValueOf[T])
	addRowBroadcastBack  func(*ValueOf[T])
	mulColBroadcastBack  func(*ValueOf[T])
	leakyReLUBack        func(*ValueOf[T])
	sigmoidBack          func(*ValueOf[T])
	tanhBack             func(*ValueOf[T])
	expBack              func(*ValueOf[T])
	clampMaxBack         func(*ValueOf[T])
	softClampBack        func(*ValueOf[T])
	concatBack           func(*ValueOf[T])
	gatherBack           func(*ValueOf[T])
	scatterAddRowsBack   func(*ValueOf[T])
	segmentSoftmaxBack   func(*ValueOf[T])
	sumAllBack           func(*ValueOf[T])
	sumRowsBack          func(*ValueOf[T])
	rowSoftmaxBack       func(*ValueOf[T])
	linearBack           func(*ValueOf[T])
	gatherConcatBack     func(*ValueOf[T])
	segmentAttentionBack func(*ValueOf[T])

	// Parallel chunk functions with the node as context.
	addFwdChunk             func(*ValueOf[T], int, int)
	addBackChunk            func(*ValueOf[T], int, int)
	subFwdChunk             func(*ValueOf[T], int, int)
	subBackChunk            func(*ValueOf[T], int, int)
	mulFwdChunk             func(*ValueOf[T], int, int)
	mulBackChunk            func(*ValueOf[T], int, int)
	scaleFwdChunk           func(*ValueOf[T], int, int)
	scaleBackChunk          func(*ValueOf[T], int, int)
	addRowBroadcastFwdChunk func(*ValueOf[T], int, int)
	mulColBroadcastFwdChunk func(*ValueOf[T], int, int)
	mulColBroadcastBkChunk  func(*ValueOf[T], int, int)
	leakyReLUFwdChunk       func(*ValueOf[T], int, int)
	leakyReLUBackChunk      func(*ValueOf[T], int, int)
	sigmoidFwdChunk         func(*ValueOf[T], int, int)
	sigmoidBackChunk        func(*ValueOf[T], int, int)
	tanhFwdChunk            func(*ValueOf[T], int, int)
	tanhBackChunk           func(*ValueOf[T], int, int)
	expFwdChunk             func(*ValueOf[T], int, int)
	expBackChunk            func(*ValueOf[T], int, int)
	clampMaxFwdChunk        func(*ValueOf[T], int, int)
	clampMaxBackChunk       func(*ValueOf[T], int, int)
	softClampFwdChunk       func(*ValueOf[T], int, int)
	softClampBackChunk      func(*ValueOf[T], int, int)
	concatFwdChunk          func(*ValueOf[T], int, int)
	concatBackChunk         func(*ValueOf[T], int, int)
	gatherFwdChunk          func(*ValueOf[T], int, int)
	scatterAddRowsBkChunk   func(*ValueOf[T], int, int)
	sumRowsFwdChunk         func(*ValueOf[T], int, int)
	sumRowsBackChunk        func(*ValueOf[T], int, int)
	rowSoftmaxFwdChunk      func(*ValueOf[T], int, int)
	rowSoftmaxBackChunk     func(*ValueOf[T], int, int)
	linearFwdChunk          func(*ValueOf[T], int, int)
	gatherConcatFwdChunk    func(*ValueOf[T], int, int)

	// Chunk functions with args-struct contexts.
	gemmChunk           func(gemmArgs[T], int, int)
	gemmBTChunk         func(gemmArgs[T], int, int)
	gemmATChunk         func(gemmArgs[T], int, int)
	segSoftmaxFwdChunk  func(segSoftmaxArgs[T], int, int)
	segSoftmaxBackChunk func(segSoftmaxArgs[T], int, int)
	segScatterChunk     func(segScatterArgs[T], int, int)
	lreluRouteChunk     func(lreluRouteArgs[T], int, int)
	stridedAddChunk     func(stridedAddArgs[T], int, int)
	stridedScatterChunk func(stridedScatterArgs[T], int, int)
	segAttnAggChunk     func(segAttnAggArgs[T], int, int)
	segAttnEdgeChunk    func(segAttnEdgeArgs[T], int, int)

	// Adam chunks.
	adamZeroChunk func(*AdamOf[T], int, int)
	adamStepChunk func(adamStepArgs[T], int, int)
}

func newOpTable[T Float]() *opTable[T] {
	return &opTable[T]{
		matMulBack:           matMulBack[T],
		matMulTBack:          matMulTBack[T],
		addBack:              addBack[T],
		subBack:              subBack[T],
		mulBack:              mulBack[T],
		scaleBack:            scaleBack[T],
		addRowBroadcastBack:  addRowBroadcastBack[T],
		mulColBroadcastBack:  mulColBroadcastBack[T],
		leakyReLUBack:        leakyReLUBack[T],
		sigmoidBack:          sigmoidBack[T],
		tanhBack:             tanhBack[T],
		expBack:              expBack[T],
		clampMaxBack:         clampMaxBack[T],
		softClampBack:        softClampBack[T],
		concatBack:           concatBack[T],
		gatherBack:           gatherBack[T],
		scatterAddRowsBack:   scatterAddRowsBack[T],
		segmentSoftmaxBack:   segmentSoftmaxBack[T],
		sumAllBack:           sumAllBack[T],
		sumRowsBack:          sumRowsBack[T],
		rowSoftmaxBack:       rowSoftmaxBack[T],
		linearBack:           linearBack[T],
		gatherConcatBack:     gatherConcatBack[T],
		segmentAttentionBack: segmentAttentionBack[T],

		addFwdChunk:             addFwdChunk[T],
		addBackChunk:            addBackChunk[T],
		subFwdChunk:             subFwdChunk[T],
		subBackChunk:            subBackChunk[T],
		mulFwdChunk:             mulFwdChunk[T],
		mulBackChunk:            mulBackChunk[T],
		scaleFwdChunk:           scaleFwdChunk[T],
		scaleBackChunk:          scaleBackChunk[T],
		addRowBroadcastFwdChunk: addRowBroadcastFwdChunk[T],
		mulColBroadcastFwdChunk: mulColBroadcastFwdChunk[T],
		mulColBroadcastBkChunk:  mulColBroadcastBackChunk[T],
		leakyReLUFwdChunk:       leakyReLUFwdChunk[T],
		leakyReLUBackChunk:      leakyReLUBackChunk[T],
		sigmoidFwdChunk:         sigmoidFwdChunk[T],
		sigmoidBackChunk:        sigmoidBackChunk[T],
		tanhFwdChunk:            tanhFwdChunk[T],
		tanhBackChunk:           tanhBackChunk[T],
		expFwdChunk:             expFwdChunk[T],
		expBackChunk:            expBackChunk[T],
		clampMaxFwdChunk:        clampMaxFwdChunk[T],
		clampMaxBackChunk:       clampMaxBackChunk[T],
		softClampFwdChunk:       softClampFwdChunk[T],
		softClampBackChunk:      softClampBackChunk[T],
		concatFwdChunk:          concatFwdChunk[T],
		concatBackChunk:         concatBackChunk[T],
		gatherFwdChunk:          gatherFwdChunk[T],
		scatterAddRowsBkChunk:   scatterAddRowsBackChunk[T],
		sumRowsFwdChunk:         sumRowsFwdChunk[T],
		sumRowsBackChunk:        sumRowsBackChunk[T],
		rowSoftmaxFwdChunk:      rowSoftmaxFwdChunk[T],
		rowSoftmaxBackChunk:     rowSoftmaxBackChunk[T],
		linearFwdChunk:          linearFwdChunk[T],
		gatherConcatFwdChunk:    gatherConcatFwdChunk[T],

		gemmChunk:           gemmChunk[T],
		gemmBTChunk:         gemmBTChunk[T],
		gemmATChunk:         gemmATChunk[T],
		segSoftmaxFwdChunk:  segSoftmaxFwdChunk[T],
		segSoftmaxBackChunk: segSoftmaxBackChunk[T],
		segScatterChunk:     segScatterChunk[T],
		lreluRouteChunk:     lreluRouteChunk[T],
		stridedAddChunk:     stridedAddChunk[T],
		stridedScatterChunk: stridedScatterChunk[T],
		segAttnAggChunk:     segAttnAggChunk[T],
		segAttnEdgeChunk:    segAttnEdgeChunk[T],

		adamZeroChunk: adamZeroChunk[T],
		adamStepChunk: adamStepChunk[T],
	}
}

var (
	opTable32 *opTable[float32]
	opTable64 *opTable[float64]
)

// Assigned in init (not var initialisers) to break the spurious static
// initialisation cycle the compiler sees between the tables, the op
// functions, and opsFor.
func init() {
	opTable32 = newOpTable[float32]()
	opTable64 = newOpTable[float64]()
}

// opsFor returns the dtype's function table: a type switch on the zero value
// plus a pointer assertion, both allocation-free.
func opsFor[T Float]() *opTable[T] {
	var z T
	if _, ok := any(z).(float32); ok {
		return any(opTable32).(*opTable[T])
	}
	return any(opTable64).(*opTable[T])
}
