package autodiff

import (
	"fmt"
	"math"

	"sate/internal/par"
)

// All ops follow the same allocation discipline (DESIGN.md §8): result,
// gradient and scratch storage comes from the tape arena, and the backward
// pass is a static function over the node's stashed state (src0/src1/...,
// idx, scalars) rather than a closure — so issuing an op performs no heap
// allocation once the arena is warm. Parallel chunks run through par.ForCtx
// with static chunk functions for the same reason.

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("autodiff: %s shape mismatch %s vs %s", op, a.shape(), b.shape()))
	}
}

// elemGrain is the chunk grain for elementwise kernels over n scalars.
func elemGrain(n int) int { return par.Grain(n, kernelFlopTarget) }

// MatMul returns a @ b. Forward and backward are row-parallel (see
// kernels.go); the backward pass writes disjoint gradient rows, so no merge
// step is needed.
func (tp *Tape) MatMul(a, b *Value) *Value {
	if a.Val.Cols != b.Val.Rows {
		panic(fmt.Sprintf("autodiff: matmul %s @ %s", a.Val.shape(), b.Val.shape()))
	}
	v := tp.newNode(a.Val.Rows, b.Val.Cols, matMulBack)
	v.src0, v.src1 = a, b
	gemm(v.Val, a.Val, b.Val, false)
	return v
}

func matMulBack(v *Value) {
	a, b := v.src0, v.src1
	gemmBT(a.Grad, v.Grad, b.Val, true) // dA += dOut @ B^T
	gemmAT(b.Grad, a.Val, v.Grad, true) // dB += A^T @ dOut
}

// MatMulT returns a @ b^T (a: m x k, b: n x k -> m x n). It routes through
// the same parallel kernels as MatMul: gemmBT forward (no transpose is
// materialised), gemm/gemmAT backward.
func (tp *Tape) MatMulT(a, b *Value) *Value {
	if a.Val.Cols != b.Val.Cols {
		panic(fmt.Sprintf("autodiff: matmulT %s @ %sT", a.Val.shape(), b.Val.shape()))
	}
	v := tp.newNode(a.Val.Rows, b.Val.Rows, matMulTBack)
	v.src0, v.src1 = a, b
	gemmBT(v.Val, a.Val, b.Val, false)
	return v
}

func matMulTBack(v *Value) {
	a, b := v.src0, v.src1
	gemm(a.Grad, v.Grad, b.Val, true)   // dA += dOut @ B
	gemmAT(b.Grad, v.Grad, a.Val, true) // dB += dOut^T @ A
}

// Add returns a + b (same shape).
func (tp *Tape) Add(a, b *Value) *Value {
	assertSameShape("add", a.Val, b.Val)
	v := tp.newNode(a.Val.Rows, a.Val.Cols, addBack)
	v.src0, v.src1 = a, b
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, addFwdChunk)
	return v
}

func addFwdChunk(v *Value, lo, hi int) {
	o, x, y := v.Val.Data, v.src0.Val.Data, v.src1.Val.Data
	for i := lo; i < hi; i++ {
		o[i] = x[i] + y[i]
	}
}

func addBack(v *Value) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, addBackChunk)
}

func addBackChunk(v *Value, lo, hi int) {
	g, ga, gb := v.Grad.Data, v.src0.Grad.Data, v.src1.Grad.Data
	for i := lo; i < hi; i++ {
		ga[i] += g[i]
		gb[i] += g[i]
	}
}

// Sub returns a - b.
func (tp *Tape) Sub(a, b *Value) *Value {
	assertSameShape("sub", a.Val, b.Val)
	v := tp.newNode(a.Val.Rows, a.Val.Cols, subBack)
	v.src0, v.src1 = a, b
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, subFwdChunk)
	return v
}

func subFwdChunk(v *Value, lo, hi int) {
	o, x, y := v.Val.Data, v.src0.Val.Data, v.src1.Val.Data
	for i := lo; i < hi; i++ {
		o[i] = x[i] - y[i]
	}
}

func subBack(v *Value) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, subBackChunk)
}

func subBackChunk(v *Value, lo, hi int) {
	g, ga, gb := v.Grad.Data, v.src0.Grad.Data, v.src1.Grad.Data
	for i := lo; i < hi; i++ {
		ga[i] += g[i]
		gb[i] -= g[i]
	}
}

// Mul returns the elementwise product.
func (tp *Tape) Mul(a, b *Value) *Value {
	assertSameShape("mul", a.Val, b.Val)
	v := tp.newNode(a.Val.Rows, a.Val.Cols, mulBack)
	v.src0, v.src1 = a, b
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, mulFwdChunk)
	return v
}

func mulFwdChunk(v *Value, lo, hi int) {
	o, x, y := v.Val.Data, v.src0.Val.Data, v.src1.Val.Data
	for i := lo; i < hi; i++ {
		o[i] = x[i] * y[i]
	}
}

func mulBack(v *Value) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, mulBackChunk)
}

func mulBackChunk(v *Value, lo, hi int) {
	g := v.Grad.Data
	x, y := v.src0.Val.Data, v.src1.Val.Data
	ga, gb := v.src0.Grad.Data, v.src1.Grad.Data
	for i := lo; i < hi; i++ {
		ga[i] += g[i] * y[i]
		gb[i] += g[i] * x[i]
	}
}

// Scale returns a * s for scalar s.
func (tp *Tape) Scale(a *Value, s float64) *Value {
	v := tp.newNode(a.Val.Rows, a.Val.Cols, scaleBack)
	v.src0, v.s0 = a, s
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, scaleFwdChunk)
	return v
}

func scaleFwdChunk(v *Value, lo, hi int) {
	o, x, s := v.Val.Data, v.src0.Val.Data, v.s0
	for i := lo; i < hi; i++ {
		o[i] = x[i] * s
	}
}

func scaleBack(v *Value) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, scaleBackChunk)
}

func scaleBackChunk(v *Value, lo, hi int) {
	g, ga, s := v.Grad.Data, v.src0.Grad.Data, v.s0
	for i := lo; i < hi; i++ {
		ga[i] += g[i] * s
	}
}

// AddRowBroadcast returns a + b where b is 1 x cols, added to every row of a.
func (tp *Tape) AddRowBroadcast(a, b *Value) *Value {
	if b.Val.Rows != 1 || b.Val.Cols != a.Val.Cols {
		panic(fmt.Sprintf("autodiff: row broadcast %s + %s", a.Val.shape(), b.Val.shape()))
	}
	v := tp.newNode(a.Val.Rows, a.Val.Cols, addRowBroadcastBack)
	v.src0, v.src1 = a, b
	par.ForCtx(a.Val.Rows, rowGrain(a.Val.Rows, a.Val.Cols), v, addRowBroadcastFwdChunk)
	return v
}

func addRowBroadcastFwdChunk(v *Value, lo, hi int) {
	cols := v.Val.Cols
	x, bias, o := v.src0.Val.Data, v.src1.Val.Data, v.Val.Data
	for r := lo; r < hi; r++ {
		for c := 0; c < cols; c++ {
			o[r*cols+c] = x[r*cols+c] + bias[c]
		}
	}
}

// addRowBroadcastBack is serial: the bias gradient accumulates across every
// row, and the fixed row-major order is part of the determinism contract.
func addRowBroadcastBack(v *Value) {
	a, b := v.src0, v.src1
	cols := a.Val.Cols
	for r := 0; r < a.Val.Rows; r++ {
		for c := 0; c < cols; c++ {
			g := v.Grad.Data[r*cols+c]
			a.Grad.Data[r*cols+c] += g
			b.Grad.Data[c] += g
		}
	}
}

// MulColBroadcast returns rows of a scaled by the column vector s (rows x 1).
func (tp *Tape) MulColBroadcast(a, s *Value) *Value {
	if s.Val.Cols != 1 || s.Val.Rows != a.Val.Rows {
		panic(fmt.Sprintf("autodiff: col broadcast %s * %s", a.Val.shape(), s.Val.shape()))
	}
	v := tp.newNode(a.Val.Rows, a.Val.Cols, mulColBroadcastBack)
	v.src0, v.src1 = a, s
	par.ForCtx(a.Val.Rows, rowGrain(a.Val.Rows, a.Val.Cols), v, mulColBroadcastFwdChunk)
	return v
}

func mulColBroadcastFwdChunk(v *Value, lo, hi int) {
	cols := v.Val.Cols
	x, s, o := v.src0.Val.Data, v.src1.Val.Data, v.Val.Data
	for r := lo; r < hi; r++ {
		f := s[r]
		for c := 0; c < cols; c++ {
			o[r*cols+c] = x[r*cols+c] * f
		}
	}
}

func mulColBroadcastBack(v *Value) {
	// Row-parallel: chunk r owns row r of a.Grad and entry r of s.Grad.
	par.ForCtx(v.Val.Rows, rowGrain(v.Val.Rows, v.Val.Cols), v, mulColBroadcastBackChunk)
}

func mulColBroadcastBackChunk(v *Value, lo, hi int) {
	a, s := v.src0, v.src1
	cols := v.Val.Cols
	for r := lo; r < hi; r++ {
		f := s.Val.Data[r]
		var dot float64
		for c := 0; c < cols; c++ {
			g := v.Grad.Data[r*cols+c]
			a.Grad.Data[r*cols+c] += g * f
			dot += g * a.Val.Data[r*cols+c]
		}
		s.Grad.Data[r] += dot
	}
}

// LeakyReLU applies max(x, slope*x) elementwise.
func (tp *Tape) LeakyReLU(a *Value, slope float64) *Value {
	v := tp.newNode(a.Val.Rows, a.Val.Cols, leakyReLUBack)
	v.src0, v.s0 = a, slope
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, leakyReLUFwdChunk)
	return v
}

func leakyReLUFwdChunk(v *Value, lo, hi int) {
	o, x, slope := v.Val.Data, v.src0.Val.Data, v.s0
	for i := lo; i < hi; i++ {
		if xv := x[i]; xv >= 0 {
			o[i] = xv
		} else {
			o[i] = slope * xv
		}
	}
}

func leakyReLUBack(v *Value) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, leakyReLUBackChunk)
}

func leakyReLUBackChunk(v *Value, lo, hi int) {
	g, x, ga, slope := v.Grad.Data, v.src0.Val.Data, v.src0.Grad.Data, v.s0
	for i := lo; i < hi; i++ {
		if x[i] >= 0 {
			ga[i] += g[i]
		} else {
			ga[i] += g[i] * slope
		}
	}
}

// ReLU applies max(x, 0).
func (tp *Tape) ReLU(a *Value) *Value { return tp.LeakyReLU(a, 0) }

// Sigmoid applies 1/(1+exp(-x)) elementwise.
func (tp *Tape) Sigmoid(a *Value) *Value {
	v := tp.newNode(a.Val.Rows, a.Val.Cols, sigmoidBack)
	v.src0 = a
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, sigmoidFwdChunk)
	return v
}

func sigmoidFwdChunk(v *Value, lo, hi int) {
	o, x := v.Val.Data, v.src0.Val.Data
	for i := lo; i < hi; i++ {
		o[i] = 1 / (1 + math.Exp(-x[i]))
	}
}

func sigmoidBack(v *Value) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, sigmoidBackChunk)
}

func sigmoidBackChunk(v *Value, lo, hi int) {
	g, o, ga := v.Grad.Data, v.Val.Data, v.src0.Grad.Data
	for i := lo; i < hi; i++ {
		y := o[i]
		ga[i] += g[i] * y * (1 - y)
	}
}

// Tanh applies tanh elementwise.
func (tp *Tape) Tanh(a *Value) *Value {
	v := tp.newNode(a.Val.Rows, a.Val.Cols, tanhBack)
	v.src0 = a
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, tanhFwdChunk)
	return v
}

func tanhFwdChunk(v *Value, lo, hi int) {
	o, x := v.Val.Data, v.src0.Val.Data
	for i := lo; i < hi; i++ {
		o[i] = math.Tanh(x[i])
	}
}

func tanhBack(v *Value) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, tanhBackChunk)
}

func tanhBackChunk(v *Value, lo, hi int) {
	g, o, ga := v.Grad.Data, v.Val.Data, v.src0.Grad.Data
	for i := lo; i < hi; i++ {
		y := o[i]
		ga[i] += g[i] * (1 - y*y)
	}
}

// Exp applies exp elementwise.
func (tp *Tape) Exp(a *Value) *Value {
	v := tp.newNode(a.Val.Rows, a.Val.Cols, expBack)
	v.src0 = a
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, expFwdChunk)
	return v
}

func expFwdChunk(v *Value, lo, hi int) {
	o, x := v.Val.Data, v.src0.Val.Data
	for i := lo; i < hi; i++ {
		o[i] = math.Exp(x[i])
	}
}

func expBack(v *Value) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, expBackChunk)
}

func expBackChunk(v *Value, lo, hi int) {
	g, o, ga := v.Grad.Data, v.Val.Data, v.src0.Grad.Data
	for i := lo; i < hi; i++ {
		ga[i] += g[i] * o[i]
	}
}

// ClampMax applies min(x, c) elementwise (gradient 0 where clamped).
func (tp *Tape) ClampMax(a *Value, c float64) *Value {
	v := tp.newNode(a.Val.Rows, a.Val.Cols, clampMaxBack)
	v.src0, v.s0 = a, c
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, clampMaxFwdChunk)
	return v
}

func clampMaxFwdChunk(v *Value, lo, hi int) {
	o, x, c := v.Val.Data, v.src0.Val.Data, v.s0
	for i := lo; i < hi; i++ {
		o[i] = math.Min(x[i], c)
	}
}

func clampMaxBack(v *Value) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, clampMaxBackChunk)
}

func clampMaxBackChunk(v *Value, lo, hi int) {
	g, x, ga, c := v.Grad.Data, v.src0.Val.Data, v.src0.Grad.Data, v.s0
	for i := lo; i < hi; i++ {
		if x[i] < c {
			ga[i] += g[i]
		}
	}
}

// SoftClamp limits values to [lo, hi] with a residual slope outside the
// band: y = clamp(x) + slope*(x - clamp(x)). Unlike a hard clamp the
// gradient never vanishes (slope outside, 1 inside), so downstream
// saturating nonlinearities (e.g. sigmoid gates) can always recover.
func (tp *Tape) SoftClamp(a *Value, lo, hi, slope float64) *Value {
	v := tp.newNode(a.Val.Rows, a.Val.Cols, softClampBack)
	v.src0, v.s0, v.s1, v.s2 = a, lo, hi, slope
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, softClampFwdChunk)
	return v
}

func softClampFwdChunk(v *Value, lo, hi int) {
	o, x := v.Val.Data, v.src0.Val.Data
	cl, ch, slope := v.s0, v.s1, v.s2
	for i := lo; i < hi; i++ {
		c := math.Max(cl, math.Min(ch, x[i]))
		o[i] = c + slope*(x[i]-c)
	}
}

func softClampBack(v *Value) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, softClampBackChunk)
}

func softClampBackChunk(v *Value, lo, hi int) {
	g, x, ga := v.Grad.Data, v.src0.Val.Data, v.src0.Grad.Data
	cl, ch, slope := v.s0, v.s1, v.s2
	for i := lo; i < hi; i++ {
		if x[i] < cl || x[i] > ch {
			ga[i] += g[i] * slope
		} else {
			ga[i] += g[i]
		}
	}
}

// Concat joins tensors along columns (same row count).
func (tp *Tape) Concat(parts ...*Value) *Value {
	rows := parts[0].Val.Rows
	total := 0
	for _, p := range parts {
		if p.Val.Rows != rows {
			panic("autodiff: concat row mismatch")
		}
		total += p.Val.Cols
	}
	v := tp.newNode(rows, total, concatBack)
	v.srcs = tp.arena.vals.take(len(parts))
	copy(v.srcs, parts)
	// Row-parallel: each chunk copies whole output rows, all parts at once.
	par.ForCtx(rows, rowGrain(rows, total), v, concatFwdChunk)
	return v
}

func concatFwdChunk(v *Value, lo, hi int) {
	total := v.Val.Cols
	for r := lo; r < hi; r++ {
		off := 0
		for _, p := range v.srcs {
			c := p.Val.Cols
			copy(v.Val.Data[r*total+off:r*total+off+c], p.Val.Data[r*c:(r+1)*c])
			off += c
		}
	}
}

func concatBack(v *Value) {
	par.ForCtx(v.Val.Rows, rowGrain(v.Val.Rows, v.Val.Cols), v, concatBackChunk)
}

func concatBackChunk(v *Value, lo, hi int) {
	total := v.Val.Cols
	for r := lo; r < hi; r++ {
		off := 0
		for _, p := range v.srcs {
			c := p.Val.Cols
			for j := 0; j < c; j++ {
				p.Grad.Data[r*c+j] += v.Grad.Data[r*total+off+j]
			}
			off += c
		}
	}
}

// Gather selects rows of a by index: out[i] = a[idx[i]].
func (tp *Tape) Gather(a *Value, idx []int) *Value {
	cols := a.Val.Cols
	v := tp.newNode(len(idx), cols, gatherBack)
	v.src0, v.idx = a, idx
	par.ForCtx(len(idx), rowGrain(len(idx), cols), v, gatherFwdChunk)
	return v
}

func gatherFwdChunk(v *Value, lo, hi int) {
	cols := v.Val.Cols
	src := v.src0.Val.Data
	for i := lo; i < hi; i++ {
		r := v.idx[i]
		copy(v.Val.Data[i*cols:(i+1)*cols], src[r*cols:(r+1)*cols])
	}
}

func gatherBack(v *Value) {
	// idx may repeat rows, so the parallel backward scatter groups gather
	// positions by source row: chunk r owns row r of a.Grad and folds its
	// positions in increasing i — the serial sweep's order.
	a, idx, cols := v.src0, v.idx, v.Val.Cols
	aRows := a.Val.Rows
	grain := par.Grain(aRows, segGrainMin)
	if par.NumChunks(aRows, grain) <= 1 {
		for i, r := range idx {
			for j := 0; j < cols; j++ {
				a.Grad.Data[r*cols+j] += v.Grad.Data[i*cols+j]
			}
		}
		return
	}
	sidx := buildSegmentIndex(v.tape, idx, aRows)
	par.ForCtx(aRows, grain, segScatterArgs{dst: a.Grad.Data, src: v.Grad.Data, cols: cols, sidx: sidx}, segScatterChunk)
}

// segScatterArgs drives the grouped row-scatter kernel: destination row r
// accumulates the source rows listed by sidx for segment r, in increasing
// source order — the serial sweep's accumulation order.
type segScatterArgs struct {
	dst, src []float64
	cols     int
	sidx     segmentIndex
}

func segScatterChunk(a segScatterArgs, lo, hi int) {
	for r := lo; r < hi; r++ {
		ro := a.dst[r*a.cols : (r+1)*a.cols]
		for _, i := range a.sidx.rows[a.sidx.off[r]:a.sidx.off[r+1]] {
			ra := a.src[i*a.cols : (i+1)*a.cols]
			for j := range ro {
				ro[j] += ra[j]
			}
		}
	}
}

// ScatterAddRows sums rows of a into outRows buckets: out[idx[i]] += a[i].
// The forward pass is parallel over output rows — each destination row is
// owned by one chunk and gathers its source rows in increasing order, the
// same accumulation order as the serial sweep. The backward pass is parallel
// over the (disjoint) rows of a.Grad.
func (tp *Tape) ScatterAddRows(a *Value, idx []int, outRows int) *Value {
	cols := a.Val.Cols
	v := tp.newNode(outRows, cols, scatterAddRowsBack)
	v.src0, v.idx = a, idx
	if grain := par.Grain(outRows, segGrainMin); par.NumChunks(outRows, grain) <= 1 {
		// One chunk: the linear source sweep beats the index indirection.
		for i, r := range idx {
			for j := 0; j < cols; j++ {
				v.Val.Data[r*cols+j] += a.Val.Data[i*cols+j]
			}
		}
	} else {
		sidx := buildSegmentIndex(tp, idx, outRows)
		par.ForCtx(outRows, grain, segScatterArgs{dst: v.Val.Data, src: a.Val.Data, cols: cols, sidx: sidx}, segScatterChunk)
	}
	return v
}

func scatterAddRowsBack(v *Value) {
	par.ForCtx(len(v.idx), par.Grain(len(v.idx), segGrainMin), v, scatterAddRowsBackChunk)
}

func scatterAddRowsBackChunk(v *Value, lo, hi int) {
	cols := v.Val.Cols
	for i := lo; i < hi; i++ {
		r := v.idx[i]
		ga := v.src0.Grad.Data[i*cols : (i+1)*cols]
		gv := v.Grad.Data[r*cols : (r+1)*cols]
		for j := range ga {
			ga[j] += gv[j]
		}
	}
}

// SegmentSoftmax computes a softmax over groups of rows of a column vector:
// rows i with equal seg[i] form one softmax group. a must be n x 1.
func (tp *Tape) SegmentSoftmax(a *Value, seg []int, nSeg int) *Value {
	if a.Val.Cols != 1 || len(seg) != a.Val.Rows {
		panic("autodiff: SegmentSoftmax requires an n x 1 input with n segment ids")
	}
	v := tp.newNode(a.Val.Rows, 1, segmentSoftmaxBack)
	v.src0, v.idx, v.n = a, seg, nSeg
	v.sidx = segmentSoftmaxForward(tp, v.Val, a.Val, seg, nSeg)
	return v
}

func segmentSoftmaxBack(v *Value) {
	segmentSoftmaxBackward(v.tape, v.src0.Grad.Data, v.Val.Data, v.Grad.Data, v.idx, v.n, v.sidx)
}

// SumAll reduces to a 1x1 scalar. The reduction is serial: one fixed
// left-to-right fold, independent of worker count.
func (tp *Tape) SumAll(a *Value) *Value {
	v := tp.newNode(1, 1, sumAllBack)
	v.src0 = a
	var s float64
	for _, x := range a.Val.Data {
		s += x
	}
	v.Val.Data[0] = s
	return v
}

func sumAllBack(v *Value) {
	g := v.Grad.Data[0]
	ga := v.src0.Grad.Data
	for i := range ga {
		ga[i] += g
	}
}

// MeanAll reduces to the scalar mean.
func (tp *Tape) MeanAll(a *Value) *Value {
	n := float64(len(a.Val.Data))
	return tp.Scale(tp.SumAll(a), 1/n)
}

// SumRows reduces each row to one value (n x 1).
func (tp *Tape) SumRows(a *Value) *Value {
	v := tp.newNode(a.Val.Rows, 1, sumRowsBack)
	v.src0 = a
	par.ForCtx(a.Val.Rows, rowGrain(a.Val.Rows, a.Val.Cols), v, sumRowsFwdChunk)
	return v
}

func sumRowsFwdChunk(v *Value, lo, hi int) {
	cols := v.src0.Val.Cols
	x := v.src0.Val.Data
	for r := lo; r < hi; r++ {
		var s float64
		for c := 0; c < cols; c++ {
			s += x[r*cols+c]
		}
		v.Val.Data[r] = s
	}
}

func sumRowsBack(v *Value) {
	par.ForCtx(v.Val.Rows, rowGrain(v.Val.Rows, v.src0.Val.Cols), v, sumRowsBackChunk)
}

func sumRowsBackChunk(v *Value, lo, hi int) {
	cols := v.src0.Val.Cols
	ga := v.src0.Grad.Data
	for r := lo; r < hi; r++ {
		g := v.Grad.Data[r]
		for c := 0; c < cols; c++ {
			ga[r*cols+c] += g
		}
	}
}

// MSE returns mean squared error between a and b as a scalar.
func (tp *Tape) MSE(a, b *Value) *Value {
	d := tp.Sub(a, b)
	return tp.MeanAll(tp.Mul(d, d))
}

// RowSoftmax applies a numerically stable softmax along each row. Both
// passes are row-parallel: rows are independent, so chunked execution is
// bitwise identical to the serial loop.
func (tp *Tape) RowSoftmax(a *Value) *Value {
	v := tp.newNode(a.Val.Rows, a.Val.Cols, rowSoftmaxBack)
	v.src0 = a
	par.ForCtx(a.Val.Rows, par.Grain(a.Val.Rows, segGrainMin), v, rowSoftmaxFwdChunk)
	return v
}

func rowSoftmaxFwdChunk(v *Value, lo, hi int) {
	cols := v.Val.Cols
	for r := lo; r < hi; r++ {
		ra := v.src0.Val.Data[r*cols : (r+1)*cols]
		ro := v.Val.Data[r*cols : (r+1)*cols]
		mx := math.Inf(-1)
		for _, x := range ra {
			if x > mx {
				mx = x
			}
		}
		var sum float64
		for i, x := range ra {
			ro[i] = math.Exp(x - mx)
			sum += ro[i]
		}
		for i := range ro {
			ro[i] /= sum
		}
	}
}

func rowSoftmaxBack(v *Value) {
	par.ForCtx(v.Val.Rows, par.Grain(v.Val.Rows, segGrainMin), v, rowSoftmaxBackChunk)
}

func rowSoftmaxBackChunk(v *Value, lo, hi int) {
	cols := v.Val.Cols
	for r := lo; r < hi; r++ {
		ro := v.Val.Data[r*cols : (r+1)*cols]
		var dot float64
		for i := 0; i < cols; i++ {
			dot += v.Grad.Data[r*cols+i] * ro[i]
		}
		for i := 0; i < cols; i++ {
			v.src0.Grad.Data[r*cols+i] += ro[i] * (v.Grad.Data[r*cols+i] - dot)
		}
	}
}
