package autodiff

import (
	"fmt"

	"sate/internal/par"
)

// All ops follow the same allocation discipline (DESIGN.md §8): result,
// gradient and scratch storage comes from the tape arena, and the backward
// pass is a static function over the node's stashed state (src0/src1/...,
// idx, scalars) rather than a closure — so issuing an op performs no heap
// allocation once the arena is warm. Parallel chunks run through par.ForCtx
// with static chunk functions for the same reason.

func assertSameShape[T Float](op string, a, b *TensorOf[T]) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("autodiff: %s shape mismatch %s vs %s", op, a.shape(), b.shape()))
	}
}

// elemGrain is the chunk grain for elementwise kernels over n scalars.
func elemGrain(n int) int { return par.Grain(n, kernelFlopTarget) }

// MatMul returns a @ b. Forward and backward are row-parallel (see
// kernels.go); the backward pass writes disjoint gradient rows, so no merge
// step is needed.
func (tp *TapeOf[T]) MatMul(a, b *ValueOf[T]) *ValueOf[T] {
	if a.Val.Cols != b.Val.Rows {
		panic(fmt.Sprintf("autodiff: matmul %s @ %s", a.Val.shape(), b.Val.shape()))
	}
	v := tp.newNodeStored(a.Val.Rows, b.Val.Cols, opsFor[T]().matMulBack)
	v.src0, v.src1 = a, b
	gemm(v.Val, a.Val, b.Val, false)
	return v
}

func matMulBack[T Float](v *ValueOf[T]) {
	a, b := v.src0, v.src1
	gemmBT(a.Grad, v.Grad, b.Val, true) // dA += dOut @ B^T
	gemmAT(b.Grad, a.Val, v.Grad, true) // dB += A^T @ dOut
}

// MatMulT returns a @ b^T (a: m x k, b: n x k -> m x n). It routes through
// the same parallel kernels as MatMul: gemmBT forward (no transpose is
// materialised), gemm/gemmAT backward.
func (tp *TapeOf[T]) MatMulT(a, b *ValueOf[T]) *ValueOf[T] {
	if a.Val.Cols != b.Val.Cols {
		panic(fmt.Sprintf("autodiff: matmulT %s @ %sT", a.Val.shape(), b.Val.shape()))
	}
	v := tp.newNodeStored(a.Val.Rows, b.Val.Rows, opsFor[T]().matMulTBack)
	v.src0, v.src1 = a, b
	gemmBT(v.Val, a.Val, b.Val, false)
	return v
}

func matMulTBack[T Float](v *ValueOf[T]) {
	a, b := v.src0, v.src1
	gemm(a.Grad, v.Grad, b.Val, true)   // dA += dOut @ B
	gemmAT(b.Grad, v.Grad, a.Val, true) // dB += dOut^T @ A
}

// Add returns a + b (same shape).
func (tp *TapeOf[T]) Add(a, b *ValueOf[T]) *ValueOf[T] {
	assertSameShape("add", a.Val, b.Val)
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().addBack)
	v.src0, v.src1 = a, b
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, opsFor[T]().addFwdChunk)
	return v
}

func addFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	o, x, y := v.Val.Data, v.src0.Val.Data, v.src1.Val.Data
	for i := lo; i < hi; i++ {
		o[i] = x[i] + y[i]
	}
}

func addBack[T Float](v *ValueOf[T]) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, opsFor[T]().addBackChunk)
}

func addBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	g, ga, gb := v.Grad.Data, v.src0.Grad.Data, v.src1.Grad.Data
	for i := lo; i < hi; i++ {
		ga[i] += g[i]
		gb[i] += g[i]
	}
}

// Sub returns a - b.
func (tp *TapeOf[T]) Sub(a, b *ValueOf[T]) *ValueOf[T] {
	assertSameShape("sub", a.Val, b.Val)
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().subBack)
	v.src0, v.src1 = a, b
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, opsFor[T]().subFwdChunk)
	return v
}

func subFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	o, x, y := v.Val.Data, v.src0.Val.Data, v.src1.Val.Data
	for i := lo; i < hi; i++ {
		o[i] = x[i] - y[i]
	}
}

func subBack[T Float](v *ValueOf[T]) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, opsFor[T]().subBackChunk)
}

func subBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	g, ga, gb := v.Grad.Data, v.src0.Grad.Data, v.src1.Grad.Data
	for i := lo; i < hi; i++ {
		ga[i] += g[i]
		gb[i] -= g[i]
	}
}

// Mul returns the elementwise product.
func (tp *TapeOf[T]) Mul(a, b *ValueOf[T]) *ValueOf[T] {
	assertSameShape("mul", a.Val, b.Val)
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().mulBack)
	v.src0, v.src1 = a, b
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, opsFor[T]().mulFwdChunk)
	return v
}

func mulFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	o, x, y := v.Val.Data, v.src0.Val.Data, v.src1.Val.Data
	for i := lo; i < hi; i++ {
		o[i] = x[i] * y[i]
	}
}

func mulBack[T Float](v *ValueOf[T]) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, opsFor[T]().mulBackChunk)
}

func mulBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	g := v.Grad.Data
	x, y := v.src0.Val.Data, v.src1.Val.Data
	ga, gb := v.src0.Grad.Data, v.src1.Grad.Data
	for i := lo; i < hi; i++ {
		ga[i] += g[i] * y[i]
		gb[i] += g[i] * x[i]
	}
}

// Scale returns a * s for scalar s.
func (tp *TapeOf[T]) Scale(a *ValueOf[T], s T) *ValueOf[T] {
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().scaleBack)
	v.src0, v.s0 = a, s
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, opsFor[T]().scaleFwdChunk)
	return v
}

func scaleFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	o, x, s := v.Val.Data, v.src0.Val.Data, v.s0
	for i := lo; i < hi; i++ {
		o[i] = x[i] * s
	}
}

func scaleBack[T Float](v *ValueOf[T]) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, opsFor[T]().scaleBackChunk)
}

func scaleBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	g, ga, s := v.Grad.Data, v.src0.Grad.Data, v.s0
	for i := lo; i < hi; i++ {
		ga[i] += g[i] * s
	}
}

// AddRowBroadcast returns a + b where b is 1 x cols, added to every row of a.
func (tp *TapeOf[T]) AddRowBroadcast(a, b *ValueOf[T]) *ValueOf[T] {
	if b.Val.Rows != 1 || b.Val.Cols != a.Val.Cols {
		panic(fmt.Sprintf("autodiff: row broadcast %s + %s", a.Val.shape(), b.Val.shape()))
	}
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().addRowBroadcastBack)
	v.src0, v.src1 = a, b
	par.ForCtx(a.Val.Rows, rowGrain(a.Val.Rows, a.Val.Cols), v, opsFor[T]().addRowBroadcastFwdChunk)
	return v
}

func addRowBroadcastFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	cols := v.Val.Cols
	x, bias, o := v.src0.Val.Data, v.src1.Val.Data, v.Val.Data
	for r := lo; r < hi; r++ {
		for c := 0; c < cols; c++ {
			o[r*cols+c] = x[r*cols+c] + bias[c]
		}
	}
}

// addRowBroadcastBack is serial: the bias gradient accumulates across every
// row, and the fixed row-major order is part of the determinism contract.
func addRowBroadcastBack[T Float](v *ValueOf[T]) {
	a, b := v.src0, v.src1
	cols := a.Val.Cols
	for r := 0; r < a.Val.Rows; r++ {
		for c := 0; c < cols; c++ {
			g := v.Grad.Data[r*cols+c]
			a.Grad.Data[r*cols+c] += g
			b.Grad.Data[c] += g
		}
	}
}

// MulColBroadcast returns rows of a scaled by the column vector s (rows x 1).
func (tp *TapeOf[T]) MulColBroadcast(a, s *ValueOf[T]) *ValueOf[T] {
	if s.Val.Cols != 1 || s.Val.Rows != a.Val.Rows {
		panic(fmt.Sprintf("autodiff: col broadcast %s * %s", a.Val.shape(), s.Val.shape()))
	}
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().mulColBroadcastBack)
	v.src0, v.src1 = a, s
	par.ForCtx(a.Val.Rows, rowGrain(a.Val.Rows, a.Val.Cols), v, opsFor[T]().mulColBroadcastFwdChunk)
	return v
}

func mulColBroadcastFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	cols := v.Val.Cols
	x, s, o := v.src0.Val.Data, v.src1.Val.Data, v.Val.Data
	for r := lo; r < hi; r++ {
		f := s[r]
		for c := 0; c < cols; c++ {
			o[r*cols+c] = x[r*cols+c] * f
		}
	}
}

func mulColBroadcastBack[T Float](v *ValueOf[T]) {
	// Row-parallel: chunk r owns row r of a.Grad and entry r of s.Grad.
	par.ForCtx(v.Val.Rows, rowGrain(v.Val.Rows, v.Val.Cols), v, opsFor[T]().mulColBroadcastBkChunk)
}

func mulColBroadcastBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	a, s := v.src0, v.src1
	cols := v.Val.Cols
	for r := lo; r < hi; r++ {
		f := s.Val.Data[r]
		var dot T
		for c := 0; c < cols; c++ {
			g := v.Grad.Data[r*cols+c]
			a.Grad.Data[r*cols+c] += g * f
			dot += g * a.Val.Data[r*cols+c]
		}
		s.Grad.Data[r] += dot
	}
}

// LeakyReLU applies max(x, slope*x) elementwise.
func (tp *TapeOf[T]) LeakyReLU(a *ValueOf[T], slope T) *ValueOf[T] {
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().leakyReLUBack)
	v.src0, v.s0 = a, slope
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, opsFor[T]().leakyReLUFwdChunk)
	return v
}

func leakyReLUFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	o, x, slope := v.Val.Data, v.src0.Val.Data, v.s0
	for i := lo; i < hi; i++ {
		if xv := x[i]; xv >= 0 {
			o[i] = xv
		} else {
			o[i] = slope * xv
		}
	}
}

func leakyReLUBack[T Float](v *ValueOf[T]) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, opsFor[T]().leakyReLUBackChunk)
}

func leakyReLUBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	g, x, ga, slope := v.Grad.Data, v.src0.Val.Data, v.src0.Grad.Data, v.s0
	for i := lo; i < hi; i++ {
		if x[i] >= 0 {
			ga[i] += g[i]
		} else {
			ga[i] += g[i] * slope
		}
	}
}

// ReLU applies max(x, 0).
func (tp *TapeOf[T]) ReLU(a *ValueOf[T]) *ValueOf[T] { return tp.LeakyReLU(a, 0) }

// Sigmoid applies 1/(1+exp(-x)) elementwise.
func (tp *TapeOf[T]) Sigmoid(a *ValueOf[T]) *ValueOf[T] {
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().sigmoidBack)
	v.src0 = a
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, opsFor[T]().sigmoidFwdChunk)
	return v
}

func sigmoidFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	o, x := v.Val.Data, v.src0.Val.Data
	for i := lo; i < hi; i++ {
		o[i] = 1 / (1 + expT(-x[i]))
	}
}

func sigmoidBack[T Float](v *ValueOf[T]) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, opsFor[T]().sigmoidBackChunk)
}

func sigmoidBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	g, o, ga := v.Grad.Data, v.Val.Data, v.src0.Grad.Data
	for i := lo; i < hi; i++ {
		y := o[i]
		ga[i] += g[i] * y * (1 - y)
	}
}

// Tanh applies tanh elementwise.
func (tp *TapeOf[T]) Tanh(a *ValueOf[T]) *ValueOf[T] {
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().tanhBack)
	v.src0 = a
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, opsFor[T]().tanhFwdChunk)
	return v
}

func tanhFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	o, x := v.Val.Data, v.src0.Val.Data
	for i := lo; i < hi; i++ {
		o[i] = tanhT(x[i])
	}
}

func tanhBack[T Float](v *ValueOf[T]) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, opsFor[T]().tanhBackChunk)
}

func tanhBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	g, o, ga := v.Grad.Data, v.Val.Data, v.src0.Grad.Data
	for i := lo; i < hi; i++ {
		y := o[i]
		ga[i] += g[i] * (1 - y*y)
	}
}

// Exp applies exp elementwise.
func (tp *TapeOf[T]) Exp(a *ValueOf[T]) *ValueOf[T] {
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().expBack)
	v.src0 = a
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, opsFor[T]().expFwdChunk)
	return v
}

func expFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	o, x := v.Val.Data, v.src0.Val.Data
	for i := lo; i < hi; i++ {
		o[i] = expT(x[i])
	}
}

func expBack[T Float](v *ValueOf[T]) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, opsFor[T]().expBackChunk)
}

func expBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	g, o, ga := v.Grad.Data, v.Val.Data, v.src0.Grad.Data
	for i := lo; i < hi; i++ {
		ga[i] += g[i] * o[i]
	}
}

// ClampMax applies min(x, c) elementwise (gradient 0 where clamped).
func (tp *TapeOf[T]) ClampMax(a *ValueOf[T], c T) *ValueOf[T] {
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().clampMaxBack)
	v.src0, v.s0 = a, c
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, opsFor[T]().clampMaxFwdChunk)
	return v
}

func clampMaxFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	o, x, c := v.Val.Data, v.src0.Val.Data, v.s0
	for i := lo; i < hi; i++ {
		o[i] = minT(x[i], c)
	}
}

func clampMaxBack[T Float](v *ValueOf[T]) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, opsFor[T]().clampMaxBackChunk)
}

func clampMaxBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	g, x, ga, c := v.Grad.Data, v.src0.Val.Data, v.src0.Grad.Data, v.s0
	for i := lo; i < hi; i++ {
		if x[i] < c {
			ga[i] += g[i]
		}
	}
}

// SoftClamp limits values to [lo, hi] with a residual slope outside the
// band: y = clamp(x) + slope*(x - clamp(x)). Unlike a hard clamp the
// gradient never vanishes (slope outside, 1 inside), so downstream
// saturating nonlinearities (e.g. sigmoid gates) can always recover.
func (tp *TapeOf[T]) SoftClamp(a *ValueOf[T], lo, hi, slope T) *ValueOf[T] {
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().softClampBack)
	v.src0, v.s0, v.s1, v.s2 = a, lo, hi, slope
	par.ForCtx(len(v.Val.Data), elemGrain(len(v.Val.Data)), v, opsFor[T]().softClampFwdChunk)
	return v
}

func softClampFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	o, x := v.Val.Data, v.src0.Val.Data
	cl, ch, slope := v.s0, v.s1, v.s2
	for i := lo; i < hi; i++ {
		c := maxT(cl, minT(ch, x[i]))
		o[i] = c + slope*(x[i]-c)
	}
}

func softClampBack[T Float](v *ValueOf[T]) {
	par.ForCtx(len(v.Grad.Data), elemGrain(len(v.Grad.Data)), v, opsFor[T]().softClampBackChunk)
}

func softClampBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	g, x, ga := v.Grad.Data, v.src0.Val.Data, v.src0.Grad.Data
	cl, ch, slope := v.s0, v.s1, v.s2
	for i := lo; i < hi; i++ {
		if x[i] < cl || x[i] > ch {
			ga[i] += g[i] * slope
		} else {
			ga[i] += g[i]
		}
	}
}

// Concat joins tensors along columns (same row count).
func (tp *TapeOf[T]) Concat(parts ...*ValueOf[T]) *ValueOf[T] {
	rows := parts[0].Val.Rows
	total := 0
	for _, p := range parts {
		if p.Val.Rows != rows {
			panic("autodiff: concat row mismatch")
		}
		total += p.Val.Cols
	}
	v := tp.newNodeStored(rows, total, opsFor[T]().concatBack)
	v.srcs = tp.arena.vals.take(len(parts))
	copy(v.srcs, parts)
	// Row-parallel: each chunk copies whole output rows, all parts at once.
	par.ForCtx(rows, rowGrain(rows, total), v, opsFor[T]().concatFwdChunk)
	return v
}

func concatFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	total := v.Val.Cols
	for r := lo; r < hi; r++ {
		off := 0
		for _, p := range v.srcs {
			c := p.Val.Cols
			copy(v.Val.Data[r*total+off:r*total+off+c], p.Val.Data[r*c:(r+1)*c])
			off += c
		}
	}
}

func concatBack[T Float](v *ValueOf[T]) {
	par.ForCtx(v.Val.Rows, rowGrain(v.Val.Rows, v.Val.Cols), v, opsFor[T]().concatBackChunk)
}

func concatBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	total := v.Val.Cols
	for r := lo; r < hi; r++ {
		off := 0
		for _, p := range v.srcs {
			c := p.Val.Cols
			for j := 0; j < c; j++ {
				p.Grad.Data[r*c+j] += v.Grad.Data[r*total+off+j]
			}
			off += c
		}
	}
}

// Gather selects rows of a by index: out[i] = a[idx[i]].
func (tp *TapeOf[T]) Gather(a *ValueOf[T], idx []int) *ValueOf[T] {
	cols := a.Val.Cols
	v := tp.newNodeStored(len(idx), cols, opsFor[T]().gatherBack)
	v.src0, v.idx = a, idx
	par.ForCtx(len(idx), rowGrain(len(idx), cols), v, opsFor[T]().gatherFwdChunk)
	return v
}

func gatherFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	cols := v.Val.Cols
	src := v.src0.Val.Data
	for i := lo; i < hi; i++ {
		r := v.idx[i]
		copy(v.Val.Data[i*cols:(i+1)*cols], src[r*cols:(r+1)*cols])
	}
}

func gatherBack[T Float](v *ValueOf[T]) {
	// idx may repeat rows, so the parallel backward scatter groups gather
	// positions by source row: chunk r owns row r of a.Grad and folds its
	// positions in increasing i — the serial sweep's order.
	a, idx, cols := v.src0, v.idx, v.Val.Cols
	aRows := a.Val.Rows
	grain := par.Grain(aRows, segGrainMin)
	if par.NumChunks(aRows, grain) <= 1 {
		for i, r := range idx {
			for j := 0; j < cols; j++ {
				a.Grad.Data[r*cols+j] += v.Grad.Data[i*cols+j]
			}
		}
		return
	}
	sidx := buildSegmentIndex(v.tape, idx, aRows)
	par.ForCtx(aRows, grain, segScatterArgs[T]{dst: a.Grad.Data, src: v.Grad.Data, cols: cols, sidx: sidx}, opsFor[T]().segScatterChunk)
}

// segScatterArgs drives the grouped row-scatter kernel: destination row r
// accumulates the source rows listed by sidx for segment r, in increasing
// source order — the serial sweep's accumulation order.
type segScatterArgs[T Float] struct {
	dst, src []T
	cols     int
	sidx     segmentIndex
}

func segScatterChunk[T Float](a segScatterArgs[T], lo, hi int) {
	for r := lo; r < hi; r++ {
		ro := a.dst[r*a.cols : (r+1)*a.cols]
		for _, i := range a.sidx.rows[a.sidx.off[r]:a.sidx.off[r+1]] {
			ra := a.src[i*a.cols : (i+1)*a.cols]
			for j := range ro {
				ro[j] += ra[j]
			}
		}
	}
}

// ScatterAddRows sums rows of a into outRows buckets: out[idx[i]] += a[i].
// The forward pass is parallel over output rows — each destination row is
// owned by one chunk and gathers its source rows in increasing order, the
// same accumulation order as the serial sweep. The backward pass is parallel
// over the (disjoint) rows of a.Grad.
func (tp *TapeOf[T]) ScatterAddRows(a *ValueOf[T], idx []int, outRows int) *ValueOf[T] {
	cols := a.Val.Cols
	v := tp.newNode(outRows, cols, opsFor[T]().scatterAddRowsBack)
	v.src0, v.idx = a, idx
	if grain := par.Grain(outRows, segGrainMin); par.NumChunks(outRows, grain) <= 1 {
		// One chunk: the linear source sweep beats the index indirection.
		for i, r := range idx {
			for j := 0; j < cols; j++ {
				v.Val.Data[r*cols+j] += a.Val.Data[i*cols+j]
			}
		}
	} else {
		sidx := buildSegmentIndex(tp, idx, outRows)
		par.ForCtx(outRows, grain, segScatterArgs[T]{dst: v.Val.Data, src: a.Val.Data, cols: cols, sidx: sidx}, opsFor[T]().segScatterChunk)
	}
	return v
}

func scatterAddRowsBack[T Float](v *ValueOf[T]) {
	par.ForCtx(len(v.idx), par.Grain(len(v.idx), segGrainMin), v, opsFor[T]().scatterAddRowsBkChunk)
}

func scatterAddRowsBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	cols := v.Val.Cols
	for i := lo; i < hi; i++ {
		r := v.idx[i]
		ga := v.src0.Grad.Data[i*cols : (i+1)*cols]
		gv := v.Grad.Data[r*cols : (r+1)*cols]
		for j := range ga {
			ga[j] += gv[j]
		}
	}
}

// SegmentSoftmax computes a softmax over groups of rows of a column vector:
// rows i with equal seg[i] form one softmax group. a must be n x 1.
func (tp *TapeOf[T]) SegmentSoftmax(a *ValueOf[T], seg []int, nSeg int) *ValueOf[T] {
	if a.Val.Cols != 1 || len(seg) != a.Val.Rows {
		panic("autodiff: SegmentSoftmax requires an n x 1 input with n segment ids")
	}
	v := tp.newNodeStored(a.Val.Rows, 1, opsFor[T]().segmentSoftmaxBack)
	v.src0, v.idx, v.n = a, seg, nSeg
	v.sidx = segmentSoftmaxForward(tp, v.Val, a.Val, seg, nSeg)
	return v
}

func segmentSoftmaxBack[T Float](v *ValueOf[T]) {
	segmentSoftmaxBackward(v.tape, v.src0.Grad.Data, v.Val.Data, v.Grad.Data, v.idx, v.n, v.sidx)
}

// SumAll reduces to a 1x1 scalar. The reduction is serial: one fixed
// left-to-right fold, independent of worker count.
func (tp *TapeOf[T]) SumAll(a *ValueOf[T]) *ValueOf[T] {
	v := tp.newNodeStored(1, 1, opsFor[T]().sumAllBack)
	v.src0 = a
	var s T
	for _, x := range a.Val.Data {
		s += x
	}
	v.Val.Data[0] = s
	return v
}

func sumAllBack[T Float](v *ValueOf[T]) {
	g := v.Grad.Data[0]
	ga := v.src0.Grad.Data
	for i := range ga {
		ga[i] += g
	}
}

// MeanAll reduces to the scalar mean.
func (tp *TapeOf[T]) MeanAll(a *ValueOf[T]) *ValueOf[T] {
	n := float64(len(a.Val.Data))
	return tp.Scale(tp.SumAll(a), T(1/n))
}

// SumRows reduces each row to one value (n x 1).
func (tp *TapeOf[T]) SumRows(a *ValueOf[T]) *ValueOf[T] {
	v := tp.newNodeStored(a.Val.Rows, 1, opsFor[T]().sumRowsBack)
	v.src0 = a
	par.ForCtx(a.Val.Rows, rowGrain(a.Val.Rows, a.Val.Cols), v, opsFor[T]().sumRowsFwdChunk)
	return v
}

func sumRowsFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	cols := v.src0.Val.Cols
	x := v.src0.Val.Data
	for r := lo; r < hi; r++ {
		var s T
		for c := 0; c < cols; c++ {
			s += x[r*cols+c]
		}
		v.Val.Data[r] = s
	}
}

func sumRowsBack[T Float](v *ValueOf[T]) {
	par.ForCtx(v.Val.Rows, rowGrain(v.Val.Rows, v.src0.Val.Cols), v, opsFor[T]().sumRowsBackChunk)
}

func sumRowsBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	cols := v.src0.Val.Cols
	ga := v.src0.Grad.Data
	for r := lo; r < hi; r++ {
		g := v.Grad.Data[r]
		for c := 0; c < cols; c++ {
			ga[r*cols+c] += g
		}
	}
}

// MSE returns mean squared error between a and b as a scalar.
func (tp *TapeOf[T]) MSE(a, b *ValueOf[T]) *ValueOf[T] {
	d := tp.Sub(a, b)
	return tp.MeanAll(tp.Mul(d, d))
}

// RowSoftmax applies a numerically stable softmax along each row. Both
// passes are row-parallel: rows are independent, so chunked execution is
// bitwise identical to the serial loop.
func (tp *TapeOf[T]) RowSoftmax(a *ValueOf[T]) *ValueOf[T] {
	v := tp.newNodeStored(a.Val.Rows, a.Val.Cols, opsFor[T]().rowSoftmaxBack)
	v.src0 = a
	par.ForCtx(a.Val.Rows, par.Grain(a.Val.Rows, segGrainMin), v, opsFor[T]().rowSoftmaxFwdChunk)
	return v
}

func rowSoftmaxFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	cols := v.Val.Cols
	for r := lo; r < hi; r++ {
		ra := v.src0.Val.Data[r*cols : (r+1)*cols]
		ro := v.Val.Data[r*cols : (r+1)*cols]
		mx := negInfT[T]()
		for _, x := range ra {
			if x > mx {
				mx = x
			}
		}
		var sum T
		for i, x := range ra {
			ro[i] = expT(x - mx)
			sum += ro[i]
		}
		for i := range ro {
			ro[i] /= sum
		}
	}
}

func rowSoftmaxBack[T Float](v *ValueOf[T]) {
	par.ForCtx(v.Val.Rows, par.Grain(v.Val.Rows, segGrainMin), v, opsFor[T]().rowSoftmaxBackChunk)
}

func rowSoftmaxBackChunk[T Float](v *ValueOf[T], lo, hi int) {
	cols := v.Val.Cols
	for r := lo; r < hi; r++ {
		ro := v.Val.Data[r*cols : (r+1)*cols]
		var dot T
		for i := 0; i < cols; i++ {
			dot += v.Grad.Data[r*cols+i] * ro[i]
		}
		for i := 0; i < cols; i++ {
			v.src0.Grad.Data[r*cols+i] += ro[i] * (v.Grad.Data[r*cols+i] - dot)
		}
	}
}
