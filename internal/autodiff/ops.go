package autodiff

import (
	"fmt"
	"math"

	"sate/internal/par"
)

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("autodiff: %s shape mismatch %s vs %s", op, a.shape(), b.shape()))
	}
}

// MatMul returns a @ b. Forward and backward are row-parallel (see
// kernels.go); the backward pass writes disjoint gradient rows, so no merge
// step is needed.
func (tp *Tape) MatMul(a, b *Value) *Value {
	if a.Val.Cols != b.Val.Rows {
		panic(fmt.Sprintf("autodiff: matmul %s @ %s", a.Val.shape(), b.Val.shape()))
	}
	out := NewTensor(a.Val.Rows, b.Val.Cols)
	gemm(out, a.Val, b.Val, false)
	v := tp.node(out, nil)
	v.back = func() {
		gemmBT(a.Grad, v.Grad, b.Val, true) // dA += dOut @ B^T
		gemmAT(b.Grad, a.Val, v.Grad, true) // dB += A^T @ dOut
	}
	return v
}

// Add returns a + b (same shape).
func (tp *Tape) Add(a, b *Value) *Value {
	assertSameShape("add", a.Val, b.Val)
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	par.For(len(out.Data), par.Grain(len(out.Data), kernelFlopTarget), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = a.Val.Data[i] + b.Val.Data[i]
		}
	})
	v := tp.node(out, nil)
	v.back = func() {
		par.For(len(v.Grad.Data), par.Grain(len(v.Grad.Data), kernelFlopTarget), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				g := v.Grad.Data[i]
				a.Grad.Data[i] += g
				b.Grad.Data[i] += g
			}
		})
	}
	return v
}

// Sub returns a - b.
func (tp *Tape) Sub(a, b *Value) *Value {
	assertSameShape("sub", a.Val, b.Val)
	out := a.Val.Clone()
	for i, v := range b.Val.Data {
		out.Data[i] -= v
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			a.Grad.Data[i] += g
			b.Grad.Data[i] -= g
		}
	}
	return v
}

// Mul returns the elementwise product.
func (tp *Tape) Mul(a, b *Value) *Value {
	assertSameShape("mul", a.Val, b.Val)
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i := range out.Data {
		out.Data[i] = a.Val.Data[i] * b.Val.Data[i]
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			a.Grad.Data[i] += g * b.Val.Data[i]
			b.Grad.Data[i] += g * a.Val.Data[i]
		}
	}
	return v
}

// Scale returns a * s for scalar s.
func (tp *Tape) Scale(a *Value, s float64) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		out.Data[i] = x * s
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			a.Grad.Data[i] += g * s
		}
	}
	return v
}

// AddRowBroadcast returns a + b where b is 1 x cols, added to every row of a.
func (tp *Tape) AddRowBroadcast(a, b *Value) *Value {
	if b.Val.Rows != 1 || b.Val.Cols != a.Val.Cols {
		panic(fmt.Sprintf("autodiff: row broadcast %s + %s", a.Val.shape(), b.Val.shape()))
	}
	out := a.Val.Clone()
	for r := 0; r < a.Val.Rows; r++ {
		for c := 0; c < a.Val.Cols; c++ {
			out.Data[r*a.Val.Cols+c] += b.Val.Data[c]
		}
	}
	v := tp.node(out, nil)
	v.back = func() {
		cols := a.Val.Cols
		for r := 0; r < a.Val.Rows; r++ {
			for c := 0; c < cols; c++ {
				g := v.Grad.Data[r*cols+c]
				a.Grad.Data[r*cols+c] += g
				b.Grad.Data[c] += g
			}
		}
	}
	return v
}

// MulColBroadcast returns rows of a scaled by the column vector s (rows x 1).
func (tp *Tape) MulColBroadcast(a, s *Value) *Value {
	if s.Val.Cols != 1 || s.Val.Rows != a.Val.Rows {
		panic(fmt.Sprintf("autodiff: col broadcast %s * %s", a.Val.shape(), s.Val.shape()))
	}
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	cols := a.Val.Cols
	par.For(a.Val.Rows, rowGrain(a.Val.Rows, cols), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			f := s.Val.Data[r]
			for c := 0; c < cols; c++ {
				out.Data[r*cols+c] = a.Val.Data[r*cols+c] * f
			}
		}
	})
	v := tp.node(out, nil)
	v.back = func() {
		// Row-parallel: chunk r owns row r of a.Grad and entry r of s.Grad.
		par.For(a.Val.Rows, rowGrain(a.Val.Rows, cols), func(lo, hi int) {
			for r := lo; r < hi; r++ {
				f := s.Val.Data[r]
				var dot float64
				for c := 0; c < cols; c++ {
					g := v.Grad.Data[r*cols+c]
					a.Grad.Data[r*cols+c] += g * f
					dot += g * a.Val.Data[r*cols+c]
				}
				s.Grad.Data[r] += dot
			}
		})
	}
	return v
}

// LeakyReLU applies max(x, slope*x) elementwise.
func (tp *Tape) LeakyReLU(a *Value, slope float64) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	par.For(len(out.Data), par.Grain(len(out.Data), kernelFlopTarget), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if x := a.Val.Data[i]; x >= 0 {
				out.Data[i] = x
			} else {
				out.Data[i] = slope * x
			}
		}
	})
	v := tp.node(out, nil)
	v.back = func() {
		par.For(len(v.Grad.Data), par.Grain(len(v.Grad.Data), kernelFlopTarget), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				g := v.Grad.Data[i]
				if a.Val.Data[i] >= 0 {
					a.Grad.Data[i] += g
				} else {
					a.Grad.Data[i] += g * slope
				}
			}
		})
	}
	return v
}

// ReLU applies max(x, 0).
func (tp *Tape) ReLU(a *Value) *Value { return tp.LeakyReLU(a, 0) }

// Sigmoid applies 1/(1+exp(-x)) elementwise.
func (tp *Tape) Sigmoid(a *Value) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		out.Data[i] = 1 / (1 + math.Exp(-x))
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			y := out.Data[i]
			a.Grad.Data[i] += g * y * (1 - y)
		}
	}
	return v
}

// Tanh applies tanh elementwise.
func (tp *Tape) Tanh(a *Value) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		out.Data[i] = math.Tanh(x)
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			y := out.Data[i]
			a.Grad.Data[i] += g * (1 - y*y)
		}
	}
	return v
}

// Exp applies exp elementwise.
func (tp *Tape) Exp(a *Value) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		out.Data[i] = math.Exp(x)
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			a.Grad.Data[i] += g * out.Data[i]
		}
	}
	return v
}

// ClampMax applies min(x, c) elementwise (gradient 0 where clamped).
func (tp *Tape) ClampMax(a *Value, c float64) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		out.Data[i] = math.Min(x, c)
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			if a.Val.Data[i] < c {
				a.Grad.Data[i] += g
			}
		}
	}
	return v
}

// Concat joins tensors along columns (same row count).
func (tp *Tape) Concat(parts ...*Value) *Value {
	rows := parts[0].Val.Rows
	total := 0
	for _, p := range parts {
		if p.Val.Rows != rows {
			panic("autodiff: concat row mismatch")
		}
		total += p.Val.Cols
	}
	out := NewTensor(rows, total)
	// Row-parallel: each chunk copies whole output rows, all parts at once.
	par.For(rows, rowGrain(rows, total), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			off := 0
			for _, p := range parts {
				c := p.Val.Cols
				copy(out.Data[r*total+off:r*total+off+c], p.Val.Data[r*c:(r+1)*c])
				off += c
			}
		}
	})
	v := tp.node(out, nil)
	v.back = func() {
		par.For(rows, rowGrain(rows, total), func(lo, hi int) {
			for r := lo; r < hi; r++ {
				off := 0
				for _, p := range parts {
					c := p.Val.Cols
					for j := 0; j < c; j++ {
						p.Grad.Data[r*c+j] += v.Grad.Data[r*total+off+j]
					}
					off += c
				}
			}
		})
	}
	return v
}

// Gather selects rows of a by index: out[i] = a[idx[i]].
func (tp *Tape) Gather(a *Value, idx []int) *Value {
	cols := a.Val.Cols
	out := NewTensor(len(idx), cols)
	par.For(len(idx), rowGrain(len(idx), cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := idx[i]
			copy(out.Data[i*cols:(i+1)*cols], a.Val.Data[r*cols:(r+1)*cols])
		}
	})
	v := tp.node(out, nil)
	v.back = func() {
		// idx may repeat rows, so the parallel backward scatter groups
		// gather positions by source row: chunk r owns row r of a.Grad and
		// folds its positions in increasing i — the serial sweep's order.
		aRows := a.Val.Rows
		if grain := par.Grain(aRows, segGrainMin); par.NumChunks(aRows, grain) <= 1 {
			for i, r := range idx {
				for j := 0; j < cols; j++ {
					a.Grad.Data[r*cols+j] += v.Grad.Data[i*cols+j]
				}
			}
		} else {
			sidx := buildSegmentIndex(idx, aRows)
			par.For(aRows, grain, func(lo, hi int) {
				for r := lo; r < hi; r++ {
					ga := a.Grad.Data[r*cols : (r+1)*cols]
					for _, i := range sidx.rows[sidx.off[r]:sidx.off[r+1]] {
						gv := v.Grad.Data[i*cols : (i+1)*cols]
						for j := range ga {
							ga[j] += gv[j]
						}
					}
				}
			})
		}
	}
	return v
}

// ScatterAddRows sums rows of a into outRows buckets: out[idx[i]] += a[i].
// The forward pass is parallel over output rows — each destination row is
// owned by one chunk and gathers its source rows in increasing order, the
// same accumulation order as the serial sweep. The backward pass is parallel
// over the (disjoint) rows of a.Grad.
func (tp *Tape) ScatterAddRows(a *Value, idx []int, outRows int) *Value {
	cols := a.Val.Cols
	out := NewTensor(outRows, cols)
	if grain := par.Grain(outRows, segGrainMin); par.NumChunks(outRows, grain) <= 1 {
		// One chunk: the linear source sweep beats the index indirection.
		for i, r := range idx {
			for j := 0; j < cols; j++ {
				out.Data[r*cols+j] += a.Val.Data[i*cols+j]
			}
		}
	} else {
		sidx := buildSegmentIndex(idx, outRows)
		par.For(outRows, grain, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				ro := out.Data[r*cols : (r+1)*cols]
				for _, i := range sidx.rows[sidx.off[r]:sidx.off[r+1]] {
					ra := a.Val.Data[i*cols : (i+1)*cols]
					for j := range ro {
						ro[j] += ra[j]
					}
				}
			}
		})
	}
	v := tp.node(out, nil)
	v.back = func() {
		par.For(len(idx), par.Grain(len(idx), segGrainMin), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				r := idx[i]
				ga := a.Grad.Data[i*cols : (i+1)*cols]
				gv := v.Grad.Data[r*cols : (r+1)*cols]
				for j := range ga {
					ga[j] += gv[j]
				}
			}
		})
	}
	return v
}

// SegmentSoftmax computes a softmax over groups of rows of a column vector:
// rows i with equal seg[i] form one softmax group. a must be n x 1.
func (tp *Tape) SegmentSoftmax(a *Value, seg []int, nSeg int) *Value {
	if a.Val.Cols != 1 || len(seg) != a.Val.Rows {
		panic("autodiff: SegmentSoftmax requires an n x 1 input with n segment ids")
	}
	n := a.Val.Rows
	out := NewTensor(n, 1)
	// Segment-parallel: every segment's rows are owned by exactly one chunk
	// and visited in increasing row order, so the max/sum/normalise pass
	// performs the same floating-point operations as the serial row sweep —
	// bitwise identical for every worker count. When one chunk would run
	// anyway, the cache-friendly linear sweep skips the index build.
	if grain := par.Grain(nSeg, segGrainMin); par.NumChunks(nSeg, grain) <= 1 {
		maxv := make([]float64, nSeg)
		for i := range maxv {
			maxv[i] = math.Inf(-1)
		}
		for i := 0; i < n; i++ {
			if a.Val.Data[i] > maxv[seg[i]] {
				maxv[seg[i]] = a.Val.Data[i]
			}
		}
		sum := make([]float64, nSeg)
		for i := 0; i < n; i++ {
			out.Data[i] = math.Exp(a.Val.Data[i] - maxv[seg[i]])
			sum[seg[i]] += out.Data[i]
		}
		for i := 0; i < n; i++ {
			out.Data[i] /= sum[seg[i]]
		}
	} else {
		sidx := buildSegmentIndex(seg, nSeg)
		par.For(nSeg, grain, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				rows := sidx.rows[sidx.off[s]:sidx.off[s+1]]
				mx := math.Inf(-1)
				for _, i := range rows {
					if a.Val.Data[i] > mx {
						mx = a.Val.Data[i]
					}
				}
				var sum float64
				for _, i := range rows {
					out.Data[i] = math.Exp(a.Val.Data[i] - mx)
					sum += out.Data[i]
				}
				for _, i := range rows {
					out.Data[i] /= sum
				}
			}
		})
	}
	v := tp.node(out, nil)
	v.back = func() {
		// d a_i = y_i * (g_i - sum_j in seg(i) g_j y_j)
		if grain := par.Grain(nSeg, segGrainMin); par.NumChunks(nSeg, grain) <= 1 {
			dot := make([]float64, nSeg)
			for i := 0; i < n; i++ {
				dot[seg[i]] += v.Grad.Data[i] * out.Data[i]
			}
			for i := 0; i < n; i++ {
				a.Grad.Data[i] += out.Data[i] * (v.Grad.Data[i] - dot[seg[i]])
			}
		} else {
			sidx := buildSegmentIndex(seg, nSeg)
			par.For(nSeg, grain, func(lo, hi int) {
				for s := lo; s < hi; s++ {
					rows := sidx.rows[sidx.off[s]:sidx.off[s+1]]
					var dot float64
					for _, i := range rows {
						dot += v.Grad.Data[i] * out.Data[i]
					}
					for _, i := range rows {
						a.Grad.Data[i] += out.Data[i] * (v.Grad.Data[i] - dot)
					}
				}
			})
		}
	}
	return v
}

// SumAll reduces to a 1x1 scalar.
func (tp *Tape) SumAll(a *Value) *Value {
	out := NewTensor(1, 1)
	for _, x := range a.Val.Data {
		out.Data[0] += x
	}
	v := tp.node(out, nil)
	v.back = func() {
		g := v.Grad.Data[0]
		for i := range a.Grad.Data {
			a.Grad.Data[i] += g
		}
	}
	return v
}

// MeanAll reduces to the scalar mean.
func (tp *Tape) MeanAll(a *Value) *Value {
	n := float64(len(a.Val.Data))
	return tp.Scale(tp.SumAll(a), 1/n)
}

// SumRows reduces each row to one value (n x 1).
func (tp *Tape) SumRows(a *Value) *Value {
	out := NewTensor(a.Val.Rows, 1)
	cols := a.Val.Cols
	for r := 0; r < a.Val.Rows; r++ {
		var s float64
		for c := 0; c < cols; c++ {
			s += a.Val.Data[r*cols+c]
		}
		out.Data[r] = s
	}
	v := tp.node(out, nil)
	v.back = func() {
		for r := 0; r < a.Val.Rows; r++ {
			g := v.Grad.Data[r]
			for c := 0; c < cols; c++ {
				a.Grad.Data[r*cols+c] += g
			}
		}
	}
	return v
}

// MSE returns mean squared error between a and b as a scalar.
func (tp *Tape) MSE(a, b *Value) *Value {
	d := tp.Sub(a, b)
	return tp.MeanAll(tp.Mul(d, d))
}

// MatMulT returns a @ b^T (a: m x k, b: n x k -> m x n). It routes through
// the same parallel kernels as MatMul: gemmBT forward (no transpose is
// materialised), gemm/gemmAT backward.
func (tp *Tape) MatMulT(a, b *Value) *Value {
	if a.Val.Cols != b.Val.Cols {
		panic(fmt.Sprintf("autodiff: matmulT %s @ %sT", a.Val.shape(), b.Val.shape()))
	}
	out := NewTensor(a.Val.Rows, b.Val.Rows)
	gemmBT(out, a.Val, b.Val, false)
	v := tp.node(out, nil)
	v.back = func() {
		gemm(a.Grad, v.Grad, b.Val, true)   // dA += dOut @ B
		gemmAT(b.Grad, v.Grad, a.Val, true) // dB += dOut^T @ A
	}
	return v
}

// RowSoftmax applies a numerically stable softmax along each row. Both
// passes are row-parallel: rows are independent, so chunked execution is
// bitwise identical to the serial loop.
func (tp *Tape) RowSoftmax(a *Value) *Value {
	rows, cols := a.Val.Rows, a.Val.Cols
	out := NewTensor(rows, cols)
	par.For(rows, par.Grain(rows, segGrainMin), func(lo, hi int) {
		for r := lo; r < hi; r++ {
			ra := a.Val.Data[r*cols : (r+1)*cols]
			ro := out.Data[r*cols : (r+1)*cols]
			mx := math.Inf(-1)
			for _, x := range ra {
				if x > mx {
					mx = x
				}
			}
			var sum float64
			for i, x := range ra {
				ro[i] = math.Exp(x - mx)
				sum += ro[i]
			}
			for i := range ro {
				ro[i] /= sum
			}
		}
	})
	v := tp.node(out, nil)
	v.back = func() {
		par.For(rows, par.Grain(rows, segGrainMin), func(lo, hi int) {
			for r := lo; r < hi; r++ {
				ro := out.Data[r*cols : (r+1)*cols]
				var dot float64
				for i := 0; i < cols; i++ {
					dot += v.Grad.Data[r*cols+i] * ro[i]
				}
				for i := 0; i < cols; i++ {
					a.Grad.Data[r*cols+i] += ro[i] * (v.Grad.Data[r*cols+i] - dot)
				}
			}
		})
	}
	return v
}

// SoftClamp limits values to [lo, hi] with a residual slope outside the
// band: y = clamp(x) + slope*(x - clamp(x)). Unlike a hard clamp the
// gradient never vanishes (slope outside, 1 inside), so downstream
// saturating nonlinearities (e.g. sigmoid gates) can always recover.
func (tp *Tape) SoftClamp(a *Value, lo, hi, slope float64) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		c := math.Max(lo, math.Min(hi, x))
		out.Data[i] = c + slope*(x-c)
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			x := a.Val.Data[i]
			if x < lo || x > hi {
				a.Grad.Data[i] += g * slope
			} else {
				a.Grad.Data[i] += g
			}
		}
	}
	return v
}
