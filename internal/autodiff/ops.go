package autodiff

import (
	"fmt"
	"math"
)

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("autodiff: %s shape mismatch %s vs %s", op, a.shape(), b.shape()))
	}
}

// MatMul returns a @ b.
func (tp *Tape) MatMul(a, b *Value) *Value {
	if a.Val.Cols != b.Val.Rows {
		panic(fmt.Sprintf("autodiff: matmul %s @ %s", a.Val.shape(), b.Val.shape()))
	}
	m, k, n := a.Val.Rows, a.Val.Cols, b.Val.Cols
	out := NewTensor(m, n)
	matmulInto(out, a.Val, b.Val)
	v := tp.node(out, nil)
	v.back = func() {
		// dA += dOut @ B^T ; dB += A^T @ dOut
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				var s float64
				for c := 0; c < n; c++ {
					s += v.Grad.Data[i*n+c] * b.Val.Data[j*n+c]
				}
				a.Grad.Data[i*k+j] += s
			}
		}
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for r := 0; r < m; r++ {
					s += a.Val.Data[r*k+i] * v.Grad.Data[r*n+j]
				}
				b.Grad.Data[i*n+j] += s
			}
		}
	}
	return v
}

func matmulInto(out, a, b *Tensor) {
	m, k, n := a.Rows, a.Cols, b.Cols
	for i := 0; i < m; i++ {
		ra := a.Data[i*k : (i+1)*k]
		ro := out.Data[i*n : (i+1)*n]
		for j := range ro {
			ro[j] = 0
		}
		for p := 0; p < k; p++ {
			av := ra[p]
			if av == 0 {
				continue
			}
			rb := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				ro[j] += av * rb[j]
			}
		}
	}
}

// Add returns a + b (same shape).
func (tp *Tape) Add(a, b *Value) *Value {
	assertSameShape("add", a.Val, b.Val)
	out := a.Val.Clone()
	for i, v := range b.Val.Data {
		out.Data[i] += v
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			a.Grad.Data[i] += g
			b.Grad.Data[i] += g
		}
	}
	return v
}

// Sub returns a - b.
func (tp *Tape) Sub(a, b *Value) *Value {
	assertSameShape("sub", a.Val, b.Val)
	out := a.Val.Clone()
	for i, v := range b.Val.Data {
		out.Data[i] -= v
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			a.Grad.Data[i] += g
			b.Grad.Data[i] -= g
		}
	}
	return v
}

// Mul returns the elementwise product.
func (tp *Tape) Mul(a, b *Value) *Value {
	assertSameShape("mul", a.Val, b.Val)
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i := range out.Data {
		out.Data[i] = a.Val.Data[i] * b.Val.Data[i]
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			a.Grad.Data[i] += g * b.Val.Data[i]
			b.Grad.Data[i] += g * a.Val.Data[i]
		}
	}
	return v
}

// Scale returns a * s for scalar s.
func (tp *Tape) Scale(a *Value, s float64) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		out.Data[i] = x * s
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			a.Grad.Data[i] += g * s
		}
	}
	return v
}

// AddRowBroadcast returns a + b where b is 1 x cols, added to every row of a.
func (tp *Tape) AddRowBroadcast(a, b *Value) *Value {
	if b.Val.Rows != 1 || b.Val.Cols != a.Val.Cols {
		panic(fmt.Sprintf("autodiff: row broadcast %s + %s", a.Val.shape(), b.Val.shape()))
	}
	out := a.Val.Clone()
	for r := 0; r < a.Val.Rows; r++ {
		for c := 0; c < a.Val.Cols; c++ {
			out.Data[r*a.Val.Cols+c] += b.Val.Data[c]
		}
	}
	v := tp.node(out, nil)
	v.back = func() {
		cols := a.Val.Cols
		for r := 0; r < a.Val.Rows; r++ {
			for c := 0; c < cols; c++ {
				g := v.Grad.Data[r*cols+c]
				a.Grad.Data[r*cols+c] += g
				b.Grad.Data[c] += g
			}
		}
	}
	return v
}

// MulColBroadcast returns rows of a scaled by the column vector s (rows x 1).
func (tp *Tape) MulColBroadcast(a, s *Value) *Value {
	if s.Val.Cols != 1 || s.Val.Rows != a.Val.Rows {
		panic(fmt.Sprintf("autodiff: col broadcast %s * %s", a.Val.shape(), s.Val.shape()))
	}
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	cols := a.Val.Cols
	for r := 0; r < a.Val.Rows; r++ {
		f := s.Val.Data[r]
		for c := 0; c < cols; c++ {
			out.Data[r*cols+c] = a.Val.Data[r*cols+c] * f
		}
	}
	v := tp.node(out, nil)
	v.back = func() {
		for r := 0; r < a.Val.Rows; r++ {
			f := s.Val.Data[r]
			var dot float64
			for c := 0; c < cols; c++ {
				g := v.Grad.Data[r*cols+c]
				a.Grad.Data[r*cols+c] += g * f
				dot += g * a.Val.Data[r*cols+c]
			}
			s.Grad.Data[r] += dot
		}
	}
	return v
}

// LeakyReLU applies max(x, slope*x) elementwise.
func (tp *Tape) LeakyReLU(a *Value, slope float64) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		if x >= 0 {
			out.Data[i] = x
		} else {
			out.Data[i] = slope * x
		}
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			if a.Val.Data[i] >= 0 {
				a.Grad.Data[i] += g
			} else {
				a.Grad.Data[i] += g * slope
			}
		}
	}
	return v
}

// ReLU applies max(x, 0).
func (tp *Tape) ReLU(a *Value) *Value { return tp.LeakyReLU(a, 0) }

// Sigmoid applies 1/(1+exp(-x)) elementwise.
func (tp *Tape) Sigmoid(a *Value) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		out.Data[i] = 1 / (1 + math.Exp(-x))
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			y := out.Data[i]
			a.Grad.Data[i] += g * y * (1 - y)
		}
	}
	return v
}

// Tanh applies tanh elementwise.
func (tp *Tape) Tanh(a *Value) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		out.Data[i] = math.Tanh(x)
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			y := out.Data[i]
			a.Grad.Data[i] += g * (1 - y*y)
		}
	}
	return v
}

// Exp applies exp elementwise.
func (tp *Tape) Exp(a *Value) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		out.Data[i] = math.Exp(x)
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			a.Grad.Data[i] += g * out.Data[i]
		}
	}
	return v
}

// ClampMax applies min(x, c) elementwise (gradient 0 where clamped).
func (tp *Tape) ClampMax(a *Value, c float64) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		out.Data[i] = math.Min(x, c)
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			if a.Val.Data[i] < c {
				a.Grad.Data[i] += g
			}
		}
	}
	return v
}

// Concat joins tensors along columns (same row count).
func (tp *Tape) Concat(parts ...*Value) *Value {
	rows := parts[0].Val.Rows
	total := 0
	for _, p := range parts {
		if p.Val.Rows != rows {
			panic("autodiff: concat row mismatch")
		}
		total += p.Val.Cols
	}
	out := NewTensor(rows, total)
	off := 0
	for _, p := range parts {
		c := p.Val.Cols
		for r := 0; r < rows; r++ {
			copy(out.Data[r*total+off:r*total+off+c], p.Val.Data[r*c:(r+1)*c])
		}
		off += c
	}
	v := tp.node(out, nil)
	v.back = func() {
		off := 0
		for _, p := range parts {
			c := p.Val.Cols
			for r := 0; r < rows; r++ {
				for j := 0; j < c; j++ {
					p.Grad.Data[r*c+j] += v.Grad.Data[r*total+off+j]
				}
			}
			off += c
		}
	}
	return v
}

// Gather selects rows of a by index: out[i] = a[idx[i]].
func (tp *Tape) Gather(a *Value, idx []int) *Value {
	cols := a.Val.Cols
	out := NewTensor(len(idx), cols)
	for i, r := range idx {
		copy(out.Data[i*cols:(i+1)*cols], a.Val.Data[r*cols:(r+1)*cols])
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, r := range idx {
			for j := 0; j < cols; j++ {
				a.Grad.Data[r*cols+j] += v.Grad.Data[i*cols+j]
			}
		}
	}
	return v
}

// ScatterAddRows sums rows of a into outRows buckets: out[idx[i]] += a[i].
func (tp *Tape) ScatterAddRows(a *Value, idx []int, outRows int) *Value {
	cols := a.Val.Cols
	out := NewTensor(outRows, cols)
	for i, r := range idx {
		for j := 0; j < cols; j++ {
			out.Data[r*cols+j] += a.Val.Data[i*cols+j]
		}
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, r := range idx {
			for j := 0; j < cols; j++ {
				a.Grad.Data[i*cols+j] += v.Grad.Data[r*cols+j]
			}
		}
	}
	return v
}

// SegmentSoftmax computes a softmax over groups of rows of a column vector:
// rows i with equal seg[i] form one softmax group. a must be n x 1.
func (tp *Tape) SegmentSoftmax(a *Value, seg []int, nSeg int) *Value {
	if a.Val.Cols != 1 || len(seg) != a.Val.Rows {
		panic("autodiff: SegmentSoftmax requires an n x 1 input with n segment ids")
	}
	n := a.Val.Rows
	out := NewTensor(n, 1)
	maxv := make([]float64, nSeg)
	for i := range maxv {
		maxv[i] = math.Inf(-1)
	}
	for i := 0; i < n; i++ {
		if a.Val.Data[i] > maxv[seg[i]] {
			maxv[seg[i]] = a.Val.Data[i]
		}
	}
	sum := make([]float64, nSeg)
	for i := 0; i < n; i++ {
		out.Data[i] = math.Exp(a.Val.Data[i] - maxv[seg[i]])
		sum[seg[i]] += out.Data[i]
	}
	for i := 0; i < n; i++ {
		out.Data[i] /= sum[seg[i]]
	}
	v := tp.node(out, nil)
	v.back = func() {
		// d a_i = y_i * (g_i - sum_j in seg(i) g_j y_j)
		dot := make([]float64, nSeg)
		for i := 0; i < n; i++ {
			dot[seg[i]] += v.Grad.Data[i] * out.Data[i]
		}
		for i := 0; i < n; i++ {
			a.Grad.Data[i] += out.Data[i] * (v.Grad.Data[i] - dot[seg[i]])
		}
	}
	return v
}

// SumAll reduces to a 1x1 scalar.
func (tp *Tape) SumAll(a *Value) *Value {
	out := NewTensor(1, 1)
	for _, x := range a.Val.Data {
		out.Data[0] += x
	}
	v := tp.node(out, nil)
	v.back = func() {
		g := v.Grad.Data[0]
		for i := range a.Grad.Data {
			a.Grad.Data[i] += g
		}
	}
	return v
}

// MeanAll reduces to the scalar mean.
func (tp *Tape) MeanAll(a *Value) *Value {
	n := float64(len(a.Val.Data))
	return tp.Scale(tp.SumAll(a), 1/n)
}

// SumRows reduces each row to one value (n x 1).
func (tp *Tape) SumRows(a *Value) *Value {
	out := NewTensor(a.Val.Rows, 1)
	cols := a.Val.Cols
	for r := 0; r < a.Val.Rows; r++ {
		var s float64
		for c := 0; c < cols; c++ {
			s += a.Val.Data[r*cols+c]
		}
		out.Data[r] = s
	}
	v := tp.node(out, nil)
	v.back = func() {
		for r := 0; r < a.Val.Rows; r++ {
			g := v.Grad.Data[r]
			for c := 0; c < cols; c++ {
				a.Grad.Data[r*cols+c] += g
			}
		}
	}
	return v
}

// MSE returns mean squared error between a and b as a scalar.
func (tp *Tape) MSE(a, b *Value) *Value {
	d := tp.Sub(a, b)
	return tp.MeanAll(tp.Mul(d, d))
}

// MatMulT returns a @ b^T (a: m x k, b: n x k -> m x n). Avoids materialising
// the transpose.
func (tp *Tape) MatMulT(a, b *Value) *Value {
	if a.Val.Cols != b.Val.Cols {
		panic(fmt.Sprintf("autodiff: matmulT %s @ %sT", a.Val.shape(), b.Val.shape()))
	}
	m, k, n := a.Val.Rows, a.Val.Cols, b.Val.Rows
	out := NewTensor(m, n)
	for i := 0; i < m; i++ {
		ra := a.Val.Data[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			rb := b.Val.Data[j*k : (j+1)*k]
			var s float64
			for p := 0; p < k; p++ {
				s += ra[p] * rb[p]
			}
			out.Data[i*n+j] = s
		}
	}
	v := tp.node(out, nil)
	v.back = func() {
		// dA += dOut @ B ; dB += dOut^T @ A
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				var s float64
				for j := 0; j < n; j++ {
					s += v.Grad.Data[i*n+j] * b.Val.Data[j*k+p]
				}
				a.Grad.Data[i*k+p] += s
			}
		}
		for j := 0; j < n; j++ {
			for p := 0; p < k; p++ {
				var s float64
				for i := 0; i < m; i++ {
					s += v.Grad.Data[i*n+j] * a.Val.Data[i*k+p]
				}
				b.Grad.Data[j*k+p] += s
			}
		}
	}
	return v
}

// RowSoftmax applies a numerically stable softmax along each row.
func (tp *Tape) RowSoftmax(a *Value) *Value {
	rows, cols := a.Val.Rows, a.Val.Cols
	out := NewTensor(rows, cols)
	for r := 0; r < rows; r++ {
		ra := a.Val.Data[r*cols : (r+1)*cols]
		ro := out.Data[r*cols : (r+1)*cols]
		mx := math.Inf(-1)
		for _, x := range ra {
			if x > mx {
				mx = x
			}
		}
		var sum float64
		for i, x := range ra {
			ro[i] = math.Exp(x - mx)
			sum += ro[i]
		}
		for i := range ro {
			ro[i] /= sum
		}
	}
	v := tp.node(out, nil)
	v.back = func() {
		for r := 0; r < rows; r++ {
			ro := out.Data[r*cols : (r+1)*cols]
			var dot float64
			for i := 0; i < cols; i++ {
				dot += v.Grad.Data[r*cols+i] * ro[i]
			}
			for i := 0; i < cols; i++ {
				a.Grad.Data[r*cols+i] += ro[i] * (v.Grad.Data[r*cols+i] - dot)
			}
		}
	}
	return v
}

// SoftClamp limits values to [lo, hi] with a residual slope outside the
// band: y = clamp(x) + slope*(x - clamp(x)). Unlike a hard clamp the
// gradient never vanishes (slope outside, 1 inside), so downstream
// saturating nonlinearities (e.g. sigmoid gates) can always recover.
func (tp *Tape) SoftClamp(a *Value, lo, hi, slope float64) *Value {
	out := NewTensor(a.Val.Rows, a.Val.Cols)
	for i, x := range a.Val.Data {
		c := math.Max(lo, math.Min(hi, x))
		out.Data[i] = c + slope*(x-c)
	}
	v := tp.node(out, nil)
	v.back = func() {
		for i, g := range v.Grad.Data {
			x := a.Val.Data[i]
			if x < lo || x > hi {
				a.Grad.Data[i] += g * slope
			} else {
				a.Grad.Data[i] += g
			}
		}
	}
	return v
}
