package autodiff

import (
	"fmt"

	"sate/internal/par"
)

// Fused kernels for the hot GAT sequences (DESIGN.md §8). Each fusion is
// bitwise identical to the op sequence it replaces — same per-element
// floating-point operations in the same order, forward and backward — so
// swapping a composed graph for the fused one changes no model output.
// The wins are fewer kernel launches, fewer intermediate tensors (less
// arena traffic and cache footprint), and single-pass data movement.
//
//	Linear / LinearLeakyReLU   = MatMul -> AddRowBroadcast [-> LeakyReLU]
//	GatherConcat               = Gather -> (Gather) -> Concat
//	SegmentAttention           = SegmentSoftmax -> MulColBroadcast -> ScatterAddRows

// Linear returns x @ w + bias (bias 1 x n, broadcast over rows) as one
// kernel: the gemm epilogue adds the bias while the output row is hot.
//
//sate:hotpath fused kernel issued per layer per solve
func (tp *TapeOf[T]) Linear(x, w, bias *ValueOf[T]) *ValueOf[T] {
	return tp.linear(x, w, bias, 0, false)
}

// LinearLeakyReLU returns LeakyReLU(x @ w + bias, slope) as one kernel. On
// gradient tapes the pre-activation is stashed on the node (the slope mask
// cannot be recovered from the output when slope is 0), so the backward pass
// is exact. On inference tapes no stash is allocated: the nonlinearity is
// applied in place on the output — same elementwise operations, one fewer
// m x n tensor of memory traffic per call.
//
//sate:hotpath fused kernel issued per layer per solve
func (tp *TapeOf[T]) LinearLeakyReLU(x, w, bias *ValueOf[T], slope T) *ValueOf[T] {
	return tp.linear(x, w, bias, slope, true)
}

func (tp *TapeOf[T]) linear(x, w, bias *ValueOf[T], slope T, epilogue bool) *ValueOf[T] {
	if x.Val.Cols != w.Val.Rows {
		panic(fmt.Sprintf("autodiff: linear %s @ %s", x.Val.shape(), w.Val.shape()))
	}
	if bias.Val.Rows != 1 || bias.Val.Cols != w.Val.Cols {
		panic(fmt.Sprintf("autodiff: linear bias %s for %s output", bias.Val.shape(), w.Val.shape()))
	}
	m, k, n := x.Val.Rows, x.Val.Cols, w.Val.Cols
	v := tp.newNodeStored(m, n, opsFor[T]().linearBack)
	v.src0, v.src1, v.src2, v.s0 = x, w, bias, slope
	if epilogue {
		v.n = 1
		if !tp.noGrad {
			// Pre-activation stash: gemmChunk stores every element, so the
			// recycled slab needs no zeroing.
			v.aux = tp.arena.tensorRaw(m, n)
		}
	}
	par.ForCtx(m, rowGrain(m, k*n), v, opsFor[T]().linearFwdChunk)
	return v
}

func linearFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	n := v.Val.Cols
	// gemm into the pre-activation buffer (v.aux when a backward pass will
	// need the stash, else the output itself), then add the bias row by row.
	pre := v.Val
	if v.aux != nil {
		pre = v.aux
	}
	gemmChunk(gemmArgs[T]{out: pre, a: v.src0.Val, b: v.src1.Val}, lo, hi)
	bias := v.src2.Val.Data
	for i := lo; i < hi; i++ {
		row := pre.Data[i*n : (i+1)*n]
		for j, bv := range bias {
			row[j] += bv
		}
	}
	if v.n == 1 {
		// LeakyReLU epilogue; when pre aliases the output (inference) this
		// rewrites it in place — bitwise the same values.
		slope := v.s0
		out := v.Val.Data
		for i := lo * n; i < hi*n; i++ {
			if xv := pre.Data[i]; xv >= 0 {
				out[i] = xv
			} else {
				out[i] = slope * xv
			}
		}
	}
}

// lreluRouteArgs routes an output gradient through the LeakyReLU mask of a
// stashed pre-activation: dst[i] = g[i] or g[i]*slope (every entry stored).
type lreluRouteArgs[T Float] struct {
	g, x, dst []T
	slope     T
}

func lreluRouteChunk[T Float](a lreluRouteArgs[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		if a.x[i] >= 0 {
			a.dst[i] = a.g[i]
		} else {
			a.dst[i] = a.g[i] * a.slope
		}
	}
}

func linearBack[T Float](v *ValueOf[T]) {
	x, w, bias := v.src0, v.src1, v.src2
	m, n := v.Val.Rows, v.Val.Cols
	gPre := v.Grad
	if v.aux != nil {
		t := v.tape.arena.tensorRaw(m, n)
		par.ForCtx(m*n, elemGrain(m*n), lreluRouteArgs[T]{g: v.Grad.Data, x: v.aux.Data, dst: t.Data, slope: v.s0}, opsFor[T]().lreluRouteChunk)
		gPre = t
	}
	// Bias gradient: serial row-major accumulation, the AddRowBroadcast
	// backward order.
	for r := 0; r < m; r++ {
		for c := 0; c < n; c++ {
			bias.Grad.Data[c] += gPre.Data[r*n+c]
		}
	}
	gemmBT(x.Grad, gPre, w.Val, true) // dX += dPre @ W^T
	gemmAT(w.Grad, x.Val, gPre, true) // dW += X^T @ dPre
}

// GatherConcat assembles per-edge rows [a[ai[r]] ‖ b[bi[r]] ‖ e[r]] in one
// pass, without materialising the gathered intermediates. Part a is always
// gathered through ai (which fixes the output row count); a nil bi takes
// part b's rows directly (row r aligns with output row r), and the third
// part is always direct. In the GAT layer this builds the attention input
// [Θd·v_dst ‖ Θn·v_src ‖ Θe·e] with only the dst part gathered — the src
// part arrives pre-gathered because it is shared with the message term,
// which keeps the gradient accumulation order of the composed graph.
//
//sate:hotpath fused kernel issued per layer per solve
func (tp *TapeOf[T]) GatherConcat(a *ValueOf[T], ai []int, b *ValueOf[T], bi []int, e *ValueOf[T]) *ValueOf[T] {
	rows := len(ai)
	if br := b.Val.Rows; (bi == nil && br != rows) || (bi != nil && len(bi) != rows) {
		panic("autodiff: GatherConcat part b row mismatch")
	}
	if e.Val.Rows != rows {
		panic("autodiff: GatherConcat part e row mismatch")
	}
	total := a.Val.Cols + b.Val.Cols + e.Val.Cols
	v := tp.newNodeStored(rows, total, opsFor[T]().gatherConcatBack)
	v.src0, v.src1, v.src2 = a, b, e
	v.idx, v.idx2 = ai, bi
	par.ForCtx(rows, rowGrain(rows, total), v, opsFor[T]().gatherConcatFwdChunk)
	return v
}

func gatherConcatFwdChunk[T Float](v *ValueOf[T], lo, hi int) {
	a, b, e := v.src0.Val, v.src1.Val, v.src2.Val
	c0, c1, c2 := a.Cols, b.Cols, e.Cols
	total := v.Val.Cols
	for r := lo; r < hi; r++ {
		ra, rb := v.idx[r], r
		if v.idx2 != nil {
			rb = v.idx2[r]
		}
		o := v.Val.Data[r*total : (r+1)*total]
		copy(o[:c0], a.Data[ra*c0:(ra+1)*c0])
		copy(o[c0:c0+c1], b.Data[rb*c1:(rb+1)*c1])
		copy(o[c0+c1:], e.Data[r*c2:(r+1)*c2])
	}
}

func gatherConcatBack[T Float](v *ValueOf[T]) {
	c0, c1 := v.src0.Val.Cols, v.src1.Val.Cols
	gatherConcatBackPart(v, v.src0, v.idx, 0)
	gatherConcatBackPart(v, v.src1, v.idx2, c0)
	gatherConcatBackPart(v, v.src2, nil, c0+c1)
}

// gatherConcatBackPart accumulates one column band of v.Grad into part p.
// Direct parts add row-aligned; gathered parts scatter grouped by source row
// in increasing edge order — the same order the composed Gather backward
// uses.
func gatherConcatBackPart[T Float](v *ValueOf[T], p *ValueOf[T], idx []int, off int) {
	cols := p.Val.Cols
	total := v.Val.Cols
	if idx == nil {
		par.ForCtx(v.Val.Rows, rowGrain(v.Val.Rows, cols),
			stridedAddArgs[T]{dst: p.Grad.Data, src: v.Grad.Data, cols: cols, stride: total, off: off}, opsFor[T]().stridedAddChunk)
		return
	}
	pRows := p.Val.Rows
	grain := par.Grain(pRows, segGrainMin)
	if par.NumChunks(pRows, grain) <= 1 {
		for i, r := range idx {
			src := v.Grad.Data[i*total+off : i*total+off+cols]
			dst := p.Grad.Data[r*cols : (r+1)*cols]
			for j, g := range src {
				dst[j] += g
			}
		}
		return
	}
	sidx := buildSegmentIndex(v.tape, idx, pRows)
	par.ForCtx(pRows, grain,
		stridedScatterArgs[T]{dst: p.Grad.Data, src: v.Grad.Data, cols: cols, stride: total, off: off, sidx: sidx}, opsFor[T]().stridedScatterChunk)
}

// stridedAddArgs adds a column band of a strided source into a dense
// destination, row-aligned.
type stridedAddArgs[T Float] struct {
	dst, src    []T
	cols        int
	stride, off int
}

func stridedAddChunk[T Float](a stridedAddArgs[T], lo, hi int) {
	for r := lo; r < hi; r++ {
		d := a.dst[r*a.cols : (r+1)*a.cols]
		s := a.src[r*a.stride+a.off : r*a.stride+a.off+a.cols]
		for j, g := range s {
			d[j] += g
		}
	}
}

// stridedScatterArgs is segScatterArgs with a strided, column-offset source:
// destination row r folds the source rows listed by sidx in increasing order.
type stridedScatterArgs[T Float] struct {
	dst, src    []T
	cols        int
	stride, off int
	sidx        segmentIndex
}

func stridedScatterChunk[T Float](a stridedScatterArgs[T], lo, hi int) {
	for r := lo; r < hi; r++ {
		d := a.dst[r*a.cols : (r+1)*a.cols]
		for _, i := range a.sidx.rows[a.sidx.off[r]:a.sidx.off[r+1]] {
			s := a.src[i*a.stride+a.off : i*a.stride+a.off+a.cols]
			for j, g := range s {
				d[j] += g
			}
		}
	}
}

// SegmentAttention fuses the attention-weighted aggregation tail of a GAT
// head: alpha = SegmentSoftmax(score, seg, nSeg), out[s] = Σ_{e: seg[e]=s}
// alpha[e] * msg[e], without materialising alpha or the weighted messages as
// graph nodes. score is E x 1, msg is E x cols, out is nSeg x cols. The
// attention weights are stashed on the node for the backward pass.
//
//sate:hotpath fused kernel issued per layer per solve
func (tp *TapeOf[T]) SegmentAttention(score, msg *ValueOf[T], seg []int, nSeg int) *ValueOf[T] {
	if score.Val.Cols != 1 || len(seg) != score.Val.Rows || msg.Val.Rows != score.Val.Rows {
		panic("autodiff: SegmentAttention requires E x 1 scores, E x cols messages and E segment ids")
	}
	cols := msg.Val.Cols
	v := tp.newNode(nSeg, cols, opsFor[T]().segmentAttentionBack)
	v.src0, v.src1, v.idx, v.n = score, msg, seg, nSeg
	v.aux = tp.arena.tensorRaw(score.Val.Rows, 1)
	v.sidx = segmentSoftmaxForward(tp, v.aux, score.Val, seg, nSeg)

	alpha := v.aux.Data
	if grain := par.Grain(nSeg, segGrainMin); par.NumChunks(nSeg, grain) <= 1 {
		// One chunk: linear sweep over edges, increasing e — the composed
		// ScatterAddRows order.
		for e, s := range seg {
			row := msg.Val.Data[e*cols : (e+1)*cols]
			ro := v.Val.Data[s*cols : (s+1)*cols]
			f := alpha[e]
			for j, mv := range row {
				ro[j] += f * mv
			}
		}
	} else {
		sidx := v.sidx
		if sidx.off == nil {
			sidx = buildSegmentIndex(tp, seg, nSeg)
			v.sidx = sidx
		}
		par.ForCtx(nSeg, grain,
			segAttnAggArgs[T]{out: v.Val.Data, msg: msg.Val.Data, alpha: alpha, cols: cols, sidx: sidx}, opsFor[T]().segAttnAggChunk)
	}
	return v
}

// segAttnAggArgs drives the weighted-scatter aggregation: output row s folds
// alpha[e] * msg[e] over its edges in increasing e.
type segAttnAggArgs[T Float] struct {
	out, msg, alpha []T
	cols            int
	sidx            segmentIndex
}

func segAttnAggChunk[T Float](a segAttnAggArgs[T], lo, hi int) {
	for s := lo; s < hi; s++ {
		ro := a.out[s*a.cols : (s+1)*a.cols]
		for _, e := range a.sidx.rows[a.sidx.off[s]:a.sidx.off[s+1]] {
			row := a.msg[e*a.cols : (e+1)*a.cols]
			f := a.alpha[e]
			for j, mv := range row {
				ro[j] += f * mv
			}
		}
	}
}

// segAttnEdgeArgs drives the per-edge backward pass: msg.Grad picks up the
// alpha-scaled output gradient, and dAlpha[e] collects <dOut[seg[e]],
// msg[e]> for the softmax backward.
type segAttnEdgeArgs[T Float] struct {
	gOut, msgV, msgG, alpha, dAlpha []T
	seg                             []int
	cols                            int
}

func segAttnEdgeChunk[T Float](a segAttnEdgeArgs[T], lo, hi int) {
	for e := lo; e < hi; e++ {
		s := a.seg[e]
		gv := a.gOut[s*a.cols : (s+1)*a.cols]
		f := a.alpha[e]
		var dot T
		for j, g := range gv {
			a.msgG[e*a.cols+j] += g * f
			dot += g * a.msgV[e*a.cols+j]
		}
		a.dAlpha[e] = dot
	}
}

func segmentAttentionBack[T Float](v *ValueOf[T]) {
	score, msg := v.src0, v.src1
	cols := msg.Val.Cols
	e := msg.Val.Rows
	dAlpha := v.tape.arena.scalars.take(e)
	par.ForCtx(e, rowGrain(e, cols),
		segAttnEdgeArgs[T]{gOut: v.Grad.Data, msgV: msg.Val.Data, msgG: msg.Grad.Data,
			alpha: v.aux.Data, dAlpha: dAlpha, seg: v.idx, cols: cols}, opsFor[T]().segAttnEdgeChunk)
	segmentSoftmaxBackward(v.tape, score.Grad.Data, v.aux.Data, dAlpha, v.idx, v.n, v.sidx)
}
