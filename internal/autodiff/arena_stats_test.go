package autodiff

import "testing"

// TestArenaStatsCountReuse checks the arena's observability counters: the
// first pass allocates tensors from the heap, every later same-shape pass is
// served entirely from the free-lists (the §8 recycling that the training
// loop exports as sate_tape_tensor_{reuse,alloc}_total).
func TestArenaStatsCountReuse(t *testing.T) {
	tp := NewTape()
	pass := func() {
		a := tp.Const(tp.Zeros(4, 3))
		b := tp.Const(tp.Zeros(4, 3))
		tp.Backward(tp.SumAll(tp.Mul(a, b)))
	}
	pass()
	st1 := tp.ArenaStats()
	if st1.TensorAlloc == 0 {
		t.Fatal("first pass allocated nothing")
	}
	if st1.Resets != 0 {
		t.Fatalf("resets = %d before any Reset", st1.Resets)
	}
	tp.Reset()
	pass()
	st2 := tp.ArenaStats()
	if st2.Resets != 1 {
		t.Fatalf("resets = %d, want 1", st2.Resets)
	}
	if st2.TensorAlloc != st1.TensorAlloc {
		t.Fatalf("steady-state pass hit the heap: %d -> %d allocs", st1.TensorAlloc, st2.TensorAlloc)
	}
	if st2.TensorReuse <= st1.TensorReuse {
		t.Fatalf("no free-list reuse recorded: %d -> %d", st1.TensorReuse, st2.TensorReuse)
	}
}
