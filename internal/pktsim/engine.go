package pktsim

import (
	"errors"
	"fmt"
	"math/rand"

	"sate/internal/obs"
)

// packet is one in-flight packet: its forwarding key, destination, injection
// time, and a hop budget. Packets are stored once in a flat slice; events
// carry indices.
type packet struct {
	key       uint64
	dst       int32
	hops      int32
	injectSec float64
}

// window is one scheduled disturbance on an undirected link.
type window struct {
	link     int32
	start    float64
	end      float64
	extraSec float64 // 0 for handover (down) windows
}

type engine struct {
	cfg     Config
	ports   []port
	portIdx map[uint64]int32

	cur      *gen
	prev     *gen      // nil without an update window
	switchAt []float64 // per-node rule-arrival instant; nil without an update

	packets []packet
	heap    eventHeap
	seq     uint64
	rng     *rand.Rand // per-hop jitter stream
	maxHops int32

	spikes []window
	downs  []window

	res *Result

	latHist   *obs.Histogram
	depthHist *obs.Histogram
	delivered *obs.Counter
	dropCtr   [4]*obs.Counter // queue, no_rule, down, loop
}

const (
	dropQueue = iota
	dropNoRule
	dropDown
	dropLoop
)

// Run executes spec under cfg and returns the accounting. The run is
// bitwise-deterministic for a fixed cfg.Seed at any SATE_WORKERS setting.
func Run(spec *RunSpec, cfg Config) (*Result, error) {
	cfg = cfg.Defaults()
	if err := validate(spec); err != nil {
		return nil, err
	}
	ports, portIdx, err := buildPorts(spec, cfg.PacketBits, cfg.QueuePkts)
	if err != nil {
		return nil, err
	}
	numNodes := spec.Snap.NumNodes
	cur, err := compileGen(spec.Problem, spec.Alloc, numNodes)
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:     cfg,
		ports:   ports,
		portIdx: portIdx,
		cur:     cur,
		rng:     rand.New(rand.NewSource(int64(mix64(uint64(cfg.Seed) ^ 0x6a74746572)))), // "jitter" stream
		maxHops: int32(numNodes) + 8,
		res:     &Result{},
	}
	if u := spec.Update; u != nil {
		e.prev, err = compileGen(u.PrevProblem, u.PrevAlloc, numNodes)
		if err != nil {
			return nil, err
		}
		e.switchAt = make([]float64, numNodes)
		for i := range e.switchAt {
			d := 0.0
			if i < len(u.DelaysSec) {
				d = u.DelaysSec[i] // +Inf delay: the node never switches
			}
			e.switchAt[i] = u.AtSec + d
		}
	}

	streams := buildStreams(spec, cfg.HorizonSec)
	if len(streams) == 0 {
		// A zero allocation (e.g. a no-demand cycle) is a valid, empty run.
		return e.res, nil
	}
	scheds, truncated := buildSchedules(streams, &cfg)
	e.res.Truncated = truncated
	for si := range scheds {
		st := &streams[si]
		for _, t := range scheds[si] {
			pid := int32(len(e.packets))
			e.packets = append(e.packets, packet{key: st.key, dst: st.dst, injectSec: t})
			e.push(event{t: t, kind: evArrive, node: st.src, pkt: pid})
		}
	}
	e.res.Injected = len(e.packets)

	// Disturbance schedules draw from their own seed stream so toggling
	// jitter or changing traffic does not reshuffle which links fail when.
	master := rand.New(rand.NewSource(int64(mix64(uint64(cfg.Seed) ^ 0x686f76657273))))
	numLinks := len(ports) / 2
	for i := 0; i < cfg.Spikes; i++ {
		s := master.Float64() * cfg.HorizonSec
		e.spikes = append(e.spikes, window{
			link: int32(master.Intn(numLinks)), start: s, end: s + cfg.SpikeDurSec, extraSec: cfg.SpikeExtraSec,
		})
	}
	for i := 0; i < cfg.Handovers; i++ {
		s := master.Float64() * cfg.HorizonSec
		e.downs = append(e.downs, window{
			link: int32(master.Intn(numLinks)), start: s, end: s + cfg.HandoverDurSec,
		})
	}

	reg := cfg.Registry
	e.latHist = reg.Histogram("pktsim_packet_latency_seconds", LatencyBucketsSec)
	e.depthHist = reg.Histogram("pktsim_queue_depth_pkts", QueueDepthBuckets)
	reg.Counter("pktsim_packets_injected_total").Add(uint64(e.res.Injected))
	e.delivered = reg.Counter("pktsim_packets_delivered_total")
	drops := reg.CounterVec("pktsim_packets_dropped_total", "reason")
	e.dropCtr = [4]*obs.Counter{
		dropQueue:  drops.With("queue"),
		dropNoRule: drops.With("no_rule"),
		dropDown:   drops.With("link_down"),
		dropLoop:   drops.With("loop"),
	}

	e.run()
	reg.Gauge("pktsim_queue_high_water_pkts").Set(float64(e.res.MaxQueuePkts))
	return e.res, nil
}

func validate(spec *RunSpec) error {
	switch {
	case spec == nil || spec.Snap == nil || spec.Problem == nil || spec.Alloc == nil:
		return errors.New("pktsim: RunSpec needs Snap, Problem and Alloc")
	case len(spec.Alloc.X) != len(spec.Problem.Flows):
		return fmt.Errorf("pktsim: allocation covers %d flows, problem has %d",
			len(spec.Alloc.X), len(spec.Problem.Flows))
	case spec.Problem.NumNodes > spec.Snap.NumNodes:
		return fmt.Errorf("pktsim: problem spans %d nodes, snapshot has %d",
			spec.Problem.NumNodes, spec.Snap.NumNodes)
	case len(spec.Snap.Pos) < spec.Snap.NumNodes:
		return fmt.Errorf("pktsim: snapshot has %d positions for %d nodes",
			len(spec.Snap.Pos), spec.Snap.NumNodes)
	}
	if u := spec.Update; u != nil {
		switch {
		case u.PrevProblem == nil || u.PrevAlloc == nil:
			return errors.New("pktsim: RuleUpdate needs PrevProblem and PrevAlloc")
		case len(u.PrevAlloc.X) != len(u.PrevProblem.Flows):
			return fmt.Errorf("pktsim: previous allocation covers %d flows, previous problem has %d",
				len(u.PrevAlloc.X), len(u.PrevProblem.Flows))
		case u.PrevProblem.NumNodes > spec.Snap.NumNodes:
			return fmt.Errorf("pktsim: previous problem spans %d nodes, snapshot has %d",
				u.PrevProblem.NumNodes, spec.Snap.NumNodes)
		case u.AtSec < 0:
			return fmt.Errorf("pktsim: update at %v s", u.AtSec)
		}
	}
	return nil
}

// push assigns the next sequence number and schedules the event. Sequence
// numbers are the deterministic tie-break for equal-time events.
func (e *engine) push(ev event) {
	ev.seq = e.seq
	e.seq++
	e.heap.push(ev)
}

// run drains the event heap. Injection is bounded by the horizon; in-flight
// packets drain to completion past it, so tail latencies are not clipped.
func (e *engine) run() {
	for e.heap.len() > 0 {
		ev := e.heap.pop()
		if ev.kind == evArrive {
			e.arrive(ev)
		} else {
			e.depart(ev)
		}
	}
}

func (e *engine) drop(kind int) {
	switch kind {
	case dropQueue:
		e.res.DroppedQueue++
	case dropNoRule:
		e.res.DroppedNoRule++
	case dropDown:
		e.res.DroppedDown++
	default:
		e.res.DroppedLoop++
	}
	e.dropCtr[kind].Inc()
}

// arrive delivers a packet to a node: terminal delivery, or a rule lookup in
// whichever forwarding generation the node runs at this instant.
func (e *engine) arrive(ev event) {
	p := &e.packets[ev.pkt]
	if ev.node == p.dst {
		lat := ev.t - p.injectSec
		e.res.Delivered++
		e.res.LatenciesSec = append(e.res.LatenciesSec, lat)
		e.latHist.Observe(lat)
		e.delivered.Inc()
		return
	}
	if p.hops++; p.hops > e.maxHops {
		e.drop(dropLoop)
		return
	}
	g := e.cur
	if e.switchAt != nil && ev.t < e.switchAt[ev.node] {
		g = e.prev // rules for this cycle have not reached this node yet
	}
	next, ok := g.lookup(ev.node, p.key)
	if !ok {
		e.drop(dropNoRule)
		return
	}
	pi, ok := e.portIdx[portKey(ev.node, next)]
	if !ok {
		// The rule references a link that exists in neither generation's
		// port set (it left the topology): the packet had nowhere to go.
		e.drop(dropDown)
		return
	}
	e.enqueue(pi, ev.t, ev.pkt)
}

// enqueue offers a packet to a directed port: dropped if the link is in a
// handover window or the FIFO is full, serialized immediately if the port is
// idle, queued otherwise.
func (e *engine) enqueue(pi int32, t float64, pkt int32) {
	pt := &e.ports[pi]
	for _, w := range e.downs {
		if w.link == pt.link && t >= w.start && t < w.end {
			e.drop(dropDown)
			return
		}
	}
	if !pt.busy {
		pt.busy = true
		e.depthHist.Observe(1)
		if e.res.MaxQueuePkts < 1 {
			e.res.MaxQueuePkts = 1
		}
		e.push(event{t: t + pt.serSec, kind: evDepart, port: pi, pkt: pkt})
		return
	}
	if pt.q.full() {
		e.drop(dropQueue)
		return
	}
	pt.q.push(pkt)
	depth := pt.q.n + 1 // queued plus the packet in service
	e.depthHist.Observe(float64(depth))
	if depth > e.res.MaxQueuePkts {
		e.res.MaxQueuePkts = depth
	}
}

// depart completes one packet's serialization: the packet propagates to the
// far end (plus any active delay spike and seeded jitter) and the port takes
// the next queued packet, if any.
func (e *engine) depart(ev event) {
	pt := &e.ports[ev.port]
	d := pt.propSec
	for _, w := range e.spikes {
		if w.link == pt.link && ev.t >= w.start && ev.t < w.end {
			d += w.extraSec
		}
	}
	if e.cfg.JitterFrac > 0 {
		d += e.rng.Float64() * e.cfg.JitterFrac * pt.propSec
	}
	e.push(event{t: ev.t + d, kind: evArrive, node: pt.to, pkt: ev.pkt})
	if pt.q.n > 0 {
		e.push(event{t: ev.t + pt.serSec, kind: evDepart, port: ev.port, pkt: pt.q.pop()})
	} else {
		pt.busy = false
	}
}
