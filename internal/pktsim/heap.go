package pktsim

// Event kinds. An arrive event delivers a packet to a node (injection is an
// arrival at the stream's source); a depart event completes one packet's
// serialization on a directed port.
const (
	evArrive = iota
	evDepart
)

// event is one scheduled occurrence on the virtual clock. seq is a globally
// unique, deterministically assigned tie-breaker: equal-time events pop in
// schedule order without ever comparing floats for equality.
type event struct {
	t    float64
	seq  uint64
	kind uint8
	node int32 // evArrive: node the packet reaches
	port int32 // evDepart: port finishing serialization
	pkt  int32 // index into engine.packets
}

// eventLess orders the heap by (time, sequence). Written as two strict
// comparisons so equal times fall through to the sequence tie-break without
// a float equality test.
func eventLess(a, b event) bool {
	if a.t < b.t {
		return true
	}
	if b.t < a.t {
		return false
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap of events. It is hand-rolled rather than
// container/heap so push/pop are direct array sifts with no interface
// boxing — the event loop executes one push+pop per packet-hop.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h.ev[i], h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.ev[0]
	last := len(h.ev) - 1
	h.ev[0] = h.ev[last]
	h.ev = h.ev[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && eventLess(h.ev[l], h.ev[small]) {
			small = l
		}
		if r < last && eventLess(h.ev[r], h.ev[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.ev[i], h.ev[small] = h.ev[small], h.ev[i]
		i = small
	}
	return top
}
