package pktsim

import (
	"math"
	"testing"

	"sate/internal/obs"
	"sate/internal/orbit"
	"sate/internal/paths"
	"sate/internal/te"
	"sate/internal/topology"
)

// twoSatSpec is the smallest possible network: two satellites 1000 km apart,
// one link of capMbps, one flow allocated rateMbps onto its single path.
func twoSatSpec(t *testing.T, capMbps, rateMbps float64) *RunSpec {
	t.Helper()
	snap := &topology.Snapshot{
		NumSats:  2,
		NumNodes: 2,
		Pos:      []orbit.Vec3{{X: 7000}, {X: 8000}},
		Links:    []topology.Link{topology.MakeLink(0, 1, topology.IntraOrbit)},
	}
	snap.Finalize()
	p := &te.Problem{
		NumNodes: 2,
		Links:    snap.Links,
		LinkCap:  []float64{capMbps},
		Flows: []te.FlowDemand{{
			Src: 0, Dst: 1, DemandMbps: rateMbps,
			Paths: []paths.Path{{Nodes: []topology.NodeID{0, 1}}},
		}},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	a := te.NewAllocation(p)
	a.X[0][0] = rateMbps
	return &RunSpec{Snap: snap, Problem: p, Alloc: a}
}

// accounting asserts the conservation identity every run must satisfy.
func accounting(t *testing.T, r *Result) {
	t.Helper()
	if got := r.Delivered + r.Dropped(); got != r.Injected {
		t.Fatalf("accounting: delivered %d + dropped %d != injected %d",
			r.Delivered, r.Dropped(), r.Injected)
	}
	if len(r.LatenciesSec) != r.Delivered {
		t.Fatalf("latency series has %d entries for %d deliveries", len(r.LatenciesSec), r.Delivered)
	}
}

func TestUncongestedLatencyIsSerializationPlusPropagation(t *testing.T) {
	spec := twoSatSpec(t, 100, 10)
	reg := obs.NewRegistry()
	res, err := Run(spec, Config{Seed: 1, HorizonSec: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, res)
	// 10 Mbps of 12000-bit packets over 1 s ≈ 833 packets.
	if res.Injected < 700 || res.Injected > 900 {
		t.Fatalf("injected %d packets, want ~833", res.Injected)
	}
	if res.Dropped() != 0 {
		t.Fatalf("uncongested run dropped %d packets", res.Dropped())
	}
	want := 12000/(100*1e6) + orbit.PropagationDelaySec(spec.Snap.Pos[0], spec.Snap.Pos[1])
	for i, lat := range res.LatenciesSec {
		if math.Abs(lat-want) > 1e-9 {
			t.Fatalf("packet %d latency %.9f s, want %.9f (serialization + light time)", i, lat, want)
		}
	}
	if res.MaxQueuePkts != 1 {
		t.Fatalf("uncongested high-water occupancy %d, want 1 (service only)", res.MaxQueuePkts)
	}
	if got := reg.Histogram("pktsim_packet_latency_seconds", LatencyBucketsSec).Count(); got != uint64(res.Delivered) {
		t.Fatalf("latency histogram saw %d observations for %d deliveries", got, res.Delivered)
	}
}

func TestSaturatedPortFillsQueueThenDrops(t *testing.T) {
	// 10 Mbps offered onto a 1 Mbps port: 10× oversubscribed, so the FIFO
	// fills to capacity and everything beyond it drops.
	spec := twoSatSpec(t, 1, 10)
	res, err := Run(spec, Config{Seed: 1, HorizonSec: 1, QueuePkts: 8})
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, res)
	if res.DroppedQueue == 0 {
		t.Fatal("10x oversubscription produced no queue drops")
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered despite a working link")
	}
	// Queued packets see up to queue-length × serialization of extra delay.
	ser := 12000 / (1 * 1e6)
	if res.LatencyPercentile(99) < 5*ser {
		t.Fatalf("p99 %.6f s shows no queueing delay (ser %.6f)", res.LatencyPercentile(99), ser)
	}
	if res.MaxQueuePkts != 9 { // 8 queued + 1 in service
		t.Fatalf("high-water occupancy %d, want 9", res.MaxQueuePkts)
	}
}

// diamondSpec builds 0-1-3 / 0-2-3 with a flow 0→3 and two candidate paths,
// returning specs for "previous cycle on the upper path" and "current cycle
// on the lower path".
func diamondSpec(t *testing.T) (*te.Problem, *topology.Snapshot) {
	t.Helper()
	snap := &topology.Snapshot{
		NumSats:  4,
		NumNodes: 4,
		Pos: []orbit.Vec3{
			{X: 7000}, {X: 7000, Y: 1000}, {X: 7000, Y: -1000}, {X: 7000, Y: 0, Z: 2000},
		},
		Links: []topology.Link{
			topology.MakeLink(0, 1, topology.IntraOrbit),
			topology.MakeLink(1, 3, topology.IntraOrbit),
			topology.MakeLink(0, 2, topology.IntraOrbit),
			topology.MakeLink(2, 3, topology.IntraOrbit),
		},
	}
	snap.Finalize()
	p := &te.Problem{
		NumNodes: 4,
		Links:    snap.Links,
		LinkCap:  []float64{100, 100, 100, 100},
		Flows: []te.FlowDemand{{
			Src: 0, Dst: 3, DemandMbps: 10,
			Paths: []paths.Path{
				{Nodes: []topology.NodeID{0, 1, 3}},
				{Nodes: []topology.NodeID{0, 2, 3}},
			},
		}},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p, snap
}

func TestRuleUpdateWindowDropsStalePackets(t *testing.T) {
	p, snap := diamondSpec(t)
	prev := te.NewAllocation(p)
	prev.X[0][0] = 10 // previous cycle: upper path 0-1-3
	cur := te.NewAllocation(p)
	cur.X[0][1] = 10 // new cycle: lower path 0-2-3
	spec := &RunSpec{
		Snap: snap, Problem: p, Alloc: cur,
		Update: &RuleUpdate{
			PrevProblem: p, PrevAlloc: prev,
			AtSec: 0.5,
			// Node 2 receives its rules 0.3 s late: every lower-path packet
			// injected in [0.5, ~0.8) reaches a node that cannot forward it.
			DelaysSec: []float64{0, 0, 0.3, 0},
		},
	}
	res, err := Run(spec, Config{Seed: 3, HorizonSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, res)
	if res.DroppedNoRule == 0 {
		t.Fatal("no stale-rule loss despite a 0.3 s rule-arrival lag at a mid-path node")
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered outside the update window")
	}
	// ~0.3 s of a 10 Mbps stream is ~250 packets; drops must be of that
	// order, not an artifact of one boundary packet.
	if res.DroppedNoRule < 100 {
		t.Fatalf("only %d stale-rule drops across a 0.3 s window", res.DroppedNoRule)
	}

	// Control: with instant distribution the only stale packets are the few
	// already in flight at the switch instant.
	spec.Update.DelaysSec = []float64{0, 0, 0, 0}
	ctl, err := Run(spec, Config{Seed: 3, HorizonSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, ctl)
	if ctl.DroppedNoRule >= res.DroppedNoRule {
		t.Fatalf("instant distribution dropped %d >= delayed distribution's %d",
			ctl.DroppedNoRule, res.DroppedNoRule)
	}
}

func TestUnreachableSatelliteNeverSwitches(t *testing.T) {
	p, snap := diamondSpec(t)
	prev := te.NewAllocation(p)
	prev.X[0][0] = 10
	cur := te.NewAllocation(p)
	cur.X[0][1] = 10
	spec := &RunSpec{
		Snap: snap, Problem: p, Alloc: cur,
		Update: &RuleUpdate{
			PrevProblem: p, PrevAlloc: prev,
			AtSec: 0.2,
			// Node 2 is outside the rule-distribution domain (+Inf delay, as
			// ruledist reports for unreachable satellites): it never loads
			// the new rules, so the whole new-generation stream is lost.
			DelaysSec: []float64{0, 0, math.Inf(1), 0},
		},
	}
	res, err := Run(spec, Config{Seed: 4, HorizonSec: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, res)
	if res.DroppedNoRule < res.Injected/3 {
		t.Fatalf("only %d/%d dropped; the 0.4 s new-generation stream should be lost entirely",
			res.DroppedNoRule, res.Injected)
	}
}

func TestHandoverWindowDropsPackets(t *testing.T) {
	spec := twoSatSpec(t, 100, 10)
	res, err := Run(spec, Config{Seed: 5, HorizonSec: 1, Handovers: 1, HandoverDurSec: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, res)
	if res.DroppedDown == 0 {
		t.Fatal("a 0.3 s handover on the only link dropped nothing")
	}
	// The window covers ~30% of a ~833-packet second.
	if res.DroppedDown < 50 {
		t.Fatalf("only %d handover drops across a 0.3 s window", res.DroppedDown)
	}
}

func TestDelaySpikeStretchesTailLatency(t *testing.T) {
	spec := twoSatSpec(t, 100, 10)
	base, err := Run(spec, Config{Seed: 6, HorizonSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	spiked, err := Run(spec, Config{Seed: 6, HorizonSec: 1, Spikes: 1, SpikeExtraSec: 0.05, SpikeDurSec: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, spiked)
	if spiked.LatencyPercentile(100) < base.LatencyPercentile(100)+0.04 {
		t.Fatalf("spike run max latency %.4f s, baseline %.4f s: the 50 ms spike left no trace",
			spiked.LatencyPercentile(100), base.LatencyPercentile(100))
	}
}

func TestBurstMultipliesInjectionRate(t *testing.T) {
	spec := twoSatSpec(t, 100, 10)
	plain, err := Run(spec, Config{Seed: 7, HorizonSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	burst, err := Run(spec, Config{Seed: 7, HorizonSec: 1, Burst: &Burst{StartSec: 0.3, DurSec: 0.4, Factor: 3}})
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, burst)
	// 0.4 s at 3× adds ~0.8 s worth of extra packets.
	lo := plain.Injected + plain.Injected/2
	if burst.Injected < lo {
		t.Fatalf("burst injected %d, plain %d: want at least %d", burst.Injected, plain.Injected, lo)
	}
}

func TestJitterSpreadsLatency(t *testing.T) {
	spec := twoSatSpec(t, 100, 10)
	res, err := Run(spec, Config{Seed: 8, HorizonSec: 1, JitterFrac: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, res)
	floor := 12000/(100*1e6) + orbit.PropagationDelaySec(spec.Snap.Pos[0], spec.Snap.Pos[1])
	min, max := res.LatencyPercentile(0), res.LatencyPercentile(100)
	if min < floor-1e-12 {
		t.Fatalf("jittered latency %.9f below the physical floor %.9f", min, floor)
	}
	if max-min < 1e-6 {
		t.Fatal("20% jitter produced a degenerate latency distribution")
	}
}

func TestMaxPacketsTruncates(t *testing.T) {
	spec := twoSatSpec(t, 100, 10)
	res, err := Run(spec, Config{Seed: 9, HorizonSec: 1, MaxPackets: 10})
	if err != nil {
		t.Fatal(err)
	}
	accounting(t, res)
	if !res.Truncated {
		t.Fatal("a 10-packet budget over an ~833-packet schedule did not truncate")
	}
	if res.Injected > 10 {
		t.Fatalf("injected %d packets over a 10-packet budget", res.Injected)
	}
}

func TestRunValidation(t *testing.T) {
	spec := twoSatSpec(t, 100, 10)
	cases := []struct {
		name  string
		mutate func(*RunSpec)
	}{
		{"nil snapshot", func(s *RunSpec) { s.Snap = nil }},
		{"nil alloc", func(s *RunSpec) { s.Alloc = nil }},
		{"flow mismatch", func(s *RunSpec) { s.Alloc = &te.Allocation{X: [][]float64{{1}, {1}}} }},
		{"update without prev", func(s *RunSpec) { s.Update = &RuleUpdate{AtSec: 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := *spec
			tc.mutate(&bad)
			if _, err := Run(&bad, Config{HorizonSec: 0.1}); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
	// Zero-capacity links cannot serialize: rejected, not Inf-delayed.
	badCap := twoSatSpec(t, 100, 10)
	badCap.Problem.LinkCap[0] = 0
	if _, err := Run(badCap, Config{HorizonSec: 0.1}); err == nil {
		t.Fatal("zero-capacity link accepted")
	}
}

func TestResultMergeAndPercentiles(t *testing.T) {
	var agg Result
	agg.Merge(&Result{Injected: 10, Delivered: 8, DroppedQueue: 2, MaxQueuePkts: 3, LatenciesSec: []float64{0.01, 0.02}})
	agg.Merge(&Result{Injected: 5, Delivered: 5, MaxQueuePkts: 7, Truncated: true, LatenciesSec: []float64{0.03}})
	if agg.Injected != 15 || agg.Delivered != 13 || agg.Dropped() != 2 || agg.MaxQueuePkts != 7 || !agg.Truncated {
		t.Fatalf("merged: %+v", agg)
	}
	if got := agg.LatencyPercentile(100); math.Abs(got-0.03) > 1e-15 {
		t.Fatalf("p100 = %v", got)
	}
	if got := agg.LatencyPercentile(1); math.Abs(got-0.01) > 1e-15 {
		t.Fatalf("p1 = %v", got)
	}
	var empty Result
	if !math.IsNaN(empty.LatencyPercentile(50)) || !math.IsNaN(empty.MeanLatencySec()) {
		t.Fatal("empty result must report NaN latency, not zero")
	}
	if empty.LossFrac() > 0 {
		t.Fatal("empty result has loss")
	}
}
