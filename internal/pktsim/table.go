package pktsim

import (
	"fmt"

	"sate/internal/rules"
	"sate/internal/te"
	"sate/internal/topology"
)

// Forwarding key encoding: src in bits 40..63, dst in bits 16..39, label in
// bits 0..15. The widths bound what one generation can address; compileGen
// rejects problems outside them.
const (
	maxNodes  = 1 << 24
	maxLabels = 1 << 16
)

func fwdKey(src, dst topology.NodeID, label int) uint64 {
	return uint64(src)<<40 | uint64(dst)<<16 | uint64(uint16(label))
}

// gen is one compiled forwarding generation: per-node flat lookup from
// (src, dst, label) to the next hop. It is the engine-side image of a
// rules.RuleSet, flattened so the per-hop lookup is one slice index and one
// map access instead of a linear rule scan.
type gen struct {
	next []map[uint64]int32 // indexed by node; nil for nodes with no rules
}

// compileGen compiles an allocation's rule set into a generation.
func compileGen(p *te.Problem, a *te.Allocation, numNodes int) (*gen, error) {
	if p.NumNodes > maxNodes {
		return nil, fmt.Errorf("pktsim: %d nodes exceeds the %d forwarding-key limit", p.NumNodes, maxNodes)
	}
	for fi := range p.Flows {
		if len(p.Flows[fi].Paths) > maxLabels {
			return nil, fmt.Errorf("pktsim: flow %d has %d candidate paths, forwarding keys carry at most %d labels",
				fi, len(p.Flows[fi].Paths), maxLabels)
		}
	}
	rs := rules.Compile(p, a)
	g := &gen{next: make([]map[uint64]int32, numNodes)}
	// Map iteration without a sort is fine here: every write is keyed by the
	// range variable, so the resulting tables are order-independent.
	for node, tbl := range rs.Tables {
		if int(node) >= numNodes {
			return nil, fmt.Errorf("pktsim: rule at node %d outside the %d-node snapshot", node, numNodes)
		}
		m := make(map[uint64]int32, len(tbl.Rules))
		for _, r := range tbl.Rules {
			m[fwdKey(r.Flow.Src, r.Flow.Dst, r.Label)] = int32(r.Next)
		}
		g.next[node] = m
	}
	return g, nil
}

// lookup returns the next hop for (src, dst, label) at node.
func (g *gen) lookup(node int32, key uint64) (int32, bool) {
	m := g.next[node]
	if m == nil {
		return 0, false
	}
	nxt, ok := m[key]
	return nxt, ok
}
