package pktsim

import (
	"reflect"
	"testing"

	"sate/internal/constellation"
	"sate/internal/par"
	"sate/internal/paths"
	"sate/internal/te"
	"sate/internal/topology"
)

// richSpec builds a toy-constellation run with every stochastic feature on:
// many streams (so the par.For schedule build actually spans chunks), an
// update window with per-node lags, burst, jitter, spikes, and handovers.
func richSpec(t *testing.T) (*RunSpec, Config) {
	t.Helper()
	gen := topology.NewGenerator(constellation.Toy(4, 6), topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	g := paths.GraphFrom(snap)
	p := &te.Problem{NumNodes: snap.NumNodes, Links: snap.Links}
	p.LinkCap = make([]float64, len(p.Links))
	for i := range p.LinkCap {
		p.LinkCap[i] = 200
	}
	for src := 0; src < snap.NumSats; src += 2 {
		dst := topology.NodeID((src + snap.NumSats/2) % snap.NumSats)
		ps := g.KShortest(topology.NodeID(src), dst, 3)
		if len(ps) == 0 {
			continue
		}
		p.Flows = append(p.Flows, te.FlowDemand{
			Src: topology.NodeID(src), Dst: dst, DemandMbps: 30, Paths: ps,
		})
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) < 8 {
		t.Fatalf("only %d flows; the determinism test needs a real fan-out", len(p.Flows))
	}
	prev := te.NewAllocation(p)
	cur := te.NewAllocation(p)
	delays := make([]float64, snap.NumNodes)
	for fi := range p.Flows {
		// Previous cycle spreads over the first two paths, new cycle shifts
		// weight onto the last — every flow changes rules at the update.
		prev.X[fi][0] = 20
		if len(p.Flows[fi].Paths) > 1 {
			prev.X[fi][1] = 10
			cur.X[fi][len(p.Flows[fi].Paths)-1] = 15
		}
		cur.X[fi][0] = 15
	}
	for i := range delays {
		delays[i] = float64(i%7) * 0.02
	}
	spec := &RunSpec{
		Snap: snap, Problem: p, Alloc: cur,
		Update: &RuleUpdate{PrevProblem: p, PrevAlloc: prev, AtSec: 0.25, DelaysSec: delays},
	}
	cfg := Config{
		Seed:       42,
		HorizonSec: 0.6,
		JitterFrac: 0.1,
		Spikes:     3,
		Handovers:  2,
		Burst:      &Burst{StartSec: 0.3, DurSec: 0.2, Factor: 3},
	}
	return spec, cfg
}

// TestBitwiseDeterministicAcrossWorkers is the acceptance gate: one seed,
// every SATE_WORKERS setting, bit-identical results — including the float64
// latency series, compared bitwise via DeepEqual.
func TestBitwiseDeterministicAcrossWorkers(t *testing.T) {
	spec, cfg := richSpec(t)
	var base *Result
	for _, workers := range []int{1, 2, 3, 8} {
		restore := par.SetWorkers(workers)
		res, err := Run(spec, cfg)
		restore()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Injected == 0 || res.Delivered == 0 {
			t.Fatalf("workers=%d: degenerate run %+v", workers, res)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("workers=%d diverged from workers=1:\n  base: inj=%d del=%d drops=%d\n  got:  inj=%d del=%d drops=%d",
				workers, base.Injected, base.Delivered, base.Dropped(),
				res.Injected, res.Delivered, res.Dropped())
		}
	}
}

// TestSeedChangesDisturbances guards against the opposite failure: the seed
// actually reaching the stochastic machinery (a constant-schedule bug would
// also pass the determinism test).
func TestSeedChangesDisturbances(t *testing.T) {
	spec, cfg := richSpec(t)
	a, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 43
	b, err := Run(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.LatenciesSec, b.LatenciesSec) {
		t.Fatal("different seeds produced identical latency series")
	}
}
