package pktsim

import (
	"math/rand"

	"sate/internal/par"
	"sate/internal/te"
)

// stream is one (flow, label) injection source: packets of Config.PacketBits
// at the allocated rate, injected at the flow's source between startSec and
// endSec (its generation's share of the horizon).
type stream struct {
	src, dst int32
	key      uint64 // fwdKey(src, dst, label)
	rateMbps float64
	startSec float64
	endSec   float64
}

// buildStreams lists the positive-rate (flow, label) streams. With an update
// window, previous-allocation streams inject before AtSec and new-allocation
// streams after — sources follow the control center's switch instant even
// though mid-network nodes lag by their distribution delay.
func buildStreams(spec *RunSpec, horizonSec float64) []stream {
	var out []stream
	add := func(p *te.Problem, a *te.Allocation, start, end float64) {
		for fi := range p.Flows {
			f := &p.Flows[fi]
			for pi := range f.Paths {
				rate := a.X[fi][pi]
				if rate <= 0 {
					continue
				}
				out = append(out, stream{
					src: int32(f.Src), dst: int32(f.Dst),
					key:      fwdKey(f.Src, f.Dst, pi),
					rateMbps: rate,
					startSec: start, endSec: end,
				})
			}
		}
	}
	if spec.Update == nil {
		add(spec.Problem, spec.Alloc, 0, horizonSec)
		return out
	}
	at := spec.Update.AtSec
	if at > horizonSec {
		at = horizonSec
	}
	if at > 0 {
		add(spec.Update.PrevProblem, spec.Update.PrevAlloc, 0, at)
	}
	if at < horizonSec {
		add(spec.Problem, spec.Alloc, at, horizonSec)
	}
	return out
}

// mix64 is a splitmix64-style finalizer for deriving independent per-stream
// seeds from (Config.Seed, stream index).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// buildSchedules computes per-stream injection times. The fan-out runs
// through par.For, and stream si's schedule depends only on (seed, si) —
// never on which worker built it or what its neighbours produced — so the
// result is bitwise-identical at any SATE_WORKERS setting. Returns the
// schedules and whether any stream hit its MaxPackets quota.
func buildSchedules(streams []stream, cfg *Config) ([][]float64, bool) {
	quota := cfg.MaxPackets / len(streams)
	if quota < 1 {
		quota = 1
	}
	out := make([][]float64, len(streams))
	truncated := make([]bool, len(streams))
	par.For(len(streams), 8, func(lo, hi int) {
		for si := lo; si < hi; si++ {
			st := &streams[si]
			rng := rand.New(rand.NewSource(int64(mix64(uint64(cfg.Seed) ^ mix64(uint64(si)+1)))))
			base := float64(cfg.PacketBits) / (st.rateMbps * 1e6)
			// Random initial phase decorrelates same-rate streams; without
			// it every stream would batch its packets onto the same instants.
			t := st.startSec + rng.Float64()*base
			var times []float64
			for t < st.endSec {
				if len(times) >= quota {
					truncated[si] = true
					break
				}
				times = append(times, t)
				iv := base
				if b := cfg.Burst; b != nil && b.Factor > 0 && t >= b.StartSec && t < b.StartSec+b.DurSec {
					iv = base / b.Factor
				}
				t += iv
			}
			out[si] = times
		}
	})
	trunc := false
	for _, tr := range truncated {
		trunc = trunc || tr
	}
	return out, trunc
}
