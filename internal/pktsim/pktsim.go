// Package pktsim is a deterministic discrete-event packet engine under the
// TE layer (DESIGN.md §15). Where internal/sim scores an allocation at flow
// granularity, pktsim *executes* it: packets are injected per allocated
// (flow, candidate-path) rate, forwarded hop by hop through the compiled
// label-switched rule tables (internal/rules), serialized onto finite-rate
// links with finite FIFO queues, and delayed by real light-time propagation
// from the snapshot geometry. The output is what the paper's headline claims
// are actually about — per-packet latency distributions, queue occupancy,
// and loss — including stale-rule loss during rule-update windows, where
// per-satellite rule arrival times come from ruledist.RuleDistributionDelays.
//
// Determinism contract: a run is bitwise-identical for a fixed Config.Seed
// at any SATE_WORKERS setting. Three rules make that hold:
//
//   - Virtual time only. The engine never reads the wall clock; the clock
//     is the head of the event heap (pktsim is in satelint's wall-clock and
//     map-order deny sets).
//   - Total event order. The heap orders events by (time, sequence) where
//     sequence numbers are assigned in a deterministic order, so equal-time
//     events never tie-break on float identity or insertion racing.
//   - Parallel setup, sequential execution. Injection schedules are built
//     per-stream by par.For with per-stream seeded RNGs writing into
//     preallocated slots (worker count cannot reorder them); the event loop
//     itself is sequential.
package pktsim

import (
	"sate/internal/obs"
	"sate/internal/te"
	"sate/internal/topology"
)

// Burst is a traffic surge: within [StartSec, StartSec+DurSec) every
// stream's injection rate is multiplied by Factor.
type Burst struct {
	StartSec float64
	DurSec   float64
	Factor   float64
}

// Config tunes one engine run. The zero value is usable: Defaults fills
// every unset knob.
type Config struct {
	Seed       int64
	HorizonSec float64 // injection stops here; in-flight packets drain

	PacketBits int // packet size on the wire (default 12000 = 1500 B)
	QueuePkts  int // per-directed-link FIFO capacity (default 64)

	// JitterFrac adds uniform [0, JitterFrac) × propagation-delay of extra
	// per-hop latency, modeling pointing error and processing variance.
	JitterFrac float64

	// Spikes inserts that many seeded delay spikes: a random link gains
	// SpikeExtraSec of propagation delay for SpikeDurSec.
	Spikes        int
	SpikeExtraSec float64 // default 0.03
	SpikeDurSec   float64 // default 0.2

	// Handovers inserts that many seeded link-down windows of
	// HandoverDurSec each, modeling ISL re-pointing during handover;
	// packets enqueued onto a down link are dropped.
	Handovers      int
	HandoverDurSec float64 // default 0.15

	Burst *Burst // optional traffic surge

	// MaxPackets bounds total injected packets (default 4Mi). When the
	// schedule would exceed it, per-stream quotas truncate injection and
	// Result.Truncated reports it.
	MaxPackets int

	Registry *obs.Registry // optional; nil is a valid no-op sink
}

// Defaults returns a copy of c with every unset field at its default.
func (c Config) Defaults() Config {
	if c.HorizonSec <= 0 {
		c.HorizonSec = 1
	}
	if c.PacketBits <= 0 {
		c.PacketBits = 12000
	}
	if c.QueuePkts <= 0 {
		c.QueuePkts = 64
	}
	if c.SpikeExtraSec <= 0 {
		c.SpikeExtraSec = 0.03
	}
	if c.SpikeDurSec <= 0 {
		c.SpikeDurSec = 0.2
	}
	if c.HandoverDurSec <= 0 {
		c.HandoverDurSec = 0.15
	}
	if c.MaxPackets <= 0 {
		c.MaxPackets = 4 << 20
	}
	return c
}

// RuleUpdate describes a rule-distribution window: the network starts on the
// PREVIOUS cycle's rules and each satellite switches to the new rules at
// AtSec + DelaysSec[sat] (its rule-arrival time from
// ruledist.RuleDistributionDelays; +Inf means the satellite never switches).
// Nodes beyond len(DelaysSec) switch at AtSec. Traffic sources follow the
// control center: streams of the previous allocation inject before AtSec,
// streams of the new allocation after — so the engine observes both loss
// modes of a stale window (new-label packets reaching a not-yet-switched
// node, and old-label packets reaching an already-switched one).
type RuleUpdate struct {
	PrevProblem *te.Problem
	PrevAlloc   *te.Allocation
	AtSec       float64
	DelaysSec   []float64
}

// RunSpec is one simulation input: the geometry, the TE problem, the
// allocation to execute, and optionally the update window it replaces.
type RunSpec struct {
	Snap    *topology.Snapshot
	Problem *te.Problem
	Alloc   *te.Allocation
	Update  *RuleUpdate
}

// LatencyBucketsSec are histogram bounds for per-packet latency: 2 ms to
// 1 s, covering single-hop LEO light time up to badly queued long paths.
var LatencyBucketsSec = []float64{
	0.002, 0.005, 0.01, 0.015, 0.02, 0.03, 0.05, 0.075, 0.1, 0.15, 0.25, 0.5, 1,
}

// QueueDepthBuckets are histogram bounds for queue occupancy sampled at
// every enqueue.
var QueueDepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}
