package pktsim

import (
	"fmt"

	"sate/internal/orbit"
	"sate/internal/topology"
)

// port is one direction of one link: a finite-rate serializer behind a
// finite FIFO queue. Propagation delay is the light time between the
// endpoints' snapshot positions; rate comes from the TE problem's link
// capacity, so the engine serializes at exactly the capacity the solver
// allocated against.
type port struct {
	link    int32   // undirected schedule index (spikes/handovers key)
	to      int32   // arrival node of a completed departure
	serSec  float64 // serialization time of one Config.PacketBits packet
	propSec float64 // light-time propagation delay

	busy bool
	q    ring
}

// ring is a fixed-capacity FIFO of packet indices.
type ring struct {
	buf  []int32
	head int
	n    int
}

func (r *ring) full() bool { return r.n == len(r.buf) }

func (r *ring) push(pkt int32) {
	r.buf[(r.head+r.n)%len(r.buf)] = pkt
	r.n++
}

func (r *ring) pop() int32 {
	pkt := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return pkt
}

// portKey addresses a directed edge.
func portKey(from, to int32) uint64 { return uint64(uint32(from))<<32 | uint64(uint32(to)) }

// buildPorts creates two directed ports per link of the problem (and, for a
// rule-update run, any previous-cycle links that have since disappeared —
// old-generation packets must still find their port to be accounted as
// queued or dropped rather than vanishing). Each undirected link gets one
// schedule index, shared by its two ports, which is what seeded spike and
// handover windows key on. Returns the ports and the directed-edge index.
func buildPorts(spec *RunSpec, packetBits, queuePkts int) ([]port, map[uint64]int32, error) {
	ports := make([]port, 0, 2*len(spec.Problem.Links))
	idx := make(map[uint64]int32, 2*len(spec.Problem.Links))
	linkSeq := int32(0)
	add := func(links []topology.Link, caps []float64) error {
		for li, l := range links {
			if _, ok := idx[portKey(int32(l.A), int32(l.B))]; ok {
				continue // already present (shared between generations)
			}
			if caps[li] <= 0 {
				return fmt.Errorf("pktsim: link %d-%d has capacity %v Mbps", l.A, l.B, caps[li])
			}
			ser := float64(packetBits) / (caps[li] * 1e6)
			prop := orbit.PropagationDelaySec(spec.Snap.Pos[l.A], spec.Snap.Pos[l.B])
			for _, dir := range [2][2]int32{{int32(l.A), int32(l.B)}, {int32(l.B), int32(l.A)}} {
				idx[portKey(dir[0], dir[1])] = int32(len(ports))
				ports = append(ports, port{
					link:    linkSeq,
					to:      dir[1],
					serSec:  ser,
					propSec: prop,
					q:       ring{buf: make([]int32, queuePkts)},
				})
			}
			linkSeq++
		}
		return nil
	}
	if err := add(spec.Problem.Links, spec.Problem.LinkCap); err != nil {
		return nil, nil, err
	}
	if spec.Update != nil {
		// Previous-generation links reuse their own capacities; their
		// schedule indices continue past the current links'.
		if err := add(spec.Update.PrevProblem.Links, spec.Update.PrevProblem.LinkCap); err != nil {
			return nil, nil, err
		}
	}
	return ports, idx, nil
}
