package pktsim

import (
	"math"
	"sort"
)

// Result is one engine run's accounting. Integer counters plus the raw
// per-packet latency series (in delivery order, which is deterministic);
// everything else is derived on demand.
type Result struct {
	Injected  int
	Delivered int

	DroppedQueue  int // FIFO overflow on a saturated port
	DroppedNoRule int // no forwarding rule — stale-rule loss inside update windows
	DroppedDown   int // port in a handover window (or its link left the topology)
	DroppedLoop   int // hop-budget exceeded (cross-generation forwarding loop)

	Truncated    bool // MaxPackets quota cut at least one stream's injection
	MaxQueuePkts int  // high-water occupancy over every port (queued + in service)

	LatenciesSec []float64 // one entry per delivered packet, delivery order
}

// Dropped is the total loss across all causes.
func (r *Result) Dropped() int {
	return r.DroppedQueue + r.DroppedNoRule + r.DroppedDown + r.DroppedLoop
}

// LossFrac is dropped / injected (0 for an empty run).
func (r *Result) LossFrac() float64 {
	if r.Injected == 0 {
		return 0
	}
	return float64(r.Dropped()) / float64(r.Injected)
}

// LatencyPercentile returns the p-th percentile (0 < p <= 100) of delivered
// packet latency in seconds, from a sorted copy of the series. NaN when
// nothing was delivered, so a missing distribution cannot masquerade as a
// zero-latency one.
func (r *Result) LatencyPercentile(p float64) float64 {
	n := len(r.LatenciesSec)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), r.LatenciesSec...)
	sort.Float64s(s)
	idx := int(math.Ceil(p/100*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return s[idx]
}

// MeanLatencySec is the mean delivered-packet latency (NaN when empty).
func (r *Result) MeanLatencySec() float64 {
	if len(r.LatenciesSec) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range r.LatenciesSec {
		sum += v
	}
	return sum / float64(len(r.LatenciesSec))
}

// Merge folds another run into r — how the online-replay adapter aggregates
// per-cycle results into one horizon-wide distribution.
func (r *Result) Merge(o *Result) {
	if o == nil {
		return
	}
	r.Injected += o.Injected
	r.Delivered += o.Delivered
	r.DroppedQueue += o.DroppedQueue
	r.DroppedNoRule += o.DroppedNoRule
	r.DroppedDown += o.DroppedDown
	r.DroppedLoop += o.DroppedLoop
	r.Truncated = r.Truncated || o.Truncated
	if o.MaxQueuePkts > r.MaxQueuePkts {
		r.MaxQueuePkts = o.MaxQueuePkts
	}
	r.LatenciesSec = append(r.LatenciesSec, o.LatenciesSec...)
}
