// Package gnn implements graph-attention layers (Eq. 6/7 of the paper) on
// the autodiff engine: multi-head edge-featured attention with per-segment
// softmax over incoming edges, bipartite-relation support (the R2/R3
// relations connect different node types), residual stacks, and a small MLP
// for the decoder.
//
// Layers are generic over the autodiff element type. Training is
// float64-only (constructors return the float64 instantiation); the float32
// instantiations are produced by the Convert* functions, which copy trained
// float64 weights into narrower parameters for the inference fast path.
package gnn

import (
	"math"
	"math/rand"

	"sate/internal/autodiff"
)

// EdgeList is a sparse relation: edge i connects Src[i] -> Dst[i] and carries
// feature row i of the edge-feature tensor. Attention normalises over the
// incoming edges of each destination node.
type EdgeList struct {
	Src, Dst []int
}

// Len returns the number of edges.
func (e EdgeList) Len() int { return len(e.Src) }

// Reverse returns the relation with directions flipped (for updating the
// other side of a bipartite relation).
func (e EdgeList) Reverse() EdgeList { return EdgeList{Src: e.Dst, Dst: e.Src} }

// GATLayerOf is one multi-head graph-attention layer following Eq. (6)/(7):
//
//	v'_i = LeakyReLU( Θs·v_i + ‖_k Σ_{j∈r(i)} α^k_{j,i} (Θn^k·v_j + Θe^k·e_{j,i}) )
//	α^k_{j,i} = softmax_i( LeakyReLU( a^T [Θd^k·v_i ‖ Θn^k·v_j ‖ Θe^k·e_{j,i}] ) )
//
// Destination and source nodes may be different types (bipartite relations),
// hence separate Θd/Θn input dimensions. Output dimension is Heads*HeadDim.
type GATLayerOf[T autodiff.Float] struct {
	InDst, InSrc, InEdge int
	Heads, HeadDim       int
	Slope                float64 // LeakyReLU slope
	// Uniform disables learned attention: every incoming edge gets weight
	// 1/deg (mean aggregation). Used by the attention ablation.
	Uniform bool

	thetaS     *autodiff.ValueOf[T]   // InDst x Heads*HeadDim
	thetaDst   []*autodiff.ValueOf[T] // per head: InDst x HeadDim (attention query)
	thetaSrc   []*autodiff.ValueOf[T] // per head: InSrc x HeadDim (message + key)
	thetaEdge  []*autodiff.ValueOf[T] // per head: InEdge x HeadDim
	attnVector []*autodiff.ValueOf[T] // per head: 3*HeadDim x 1
	params     []*autodiff.ValueOf[T] // cached Params() result (Forward is hot)
}

// GATLayer is the float64 (training) layer.
type GATLayer = GATLayerOf[float64]

// NewGATLayer creates a layer with Xavier-style initialisation.
func NewGATLayer(rng *rand.Rand, inDst, inSrc, inEdge, heads, headDim int) *GATLayer {
	l := &GATLayer{
		InDst: inDst, InSrc: inSrc, InEdge: inEdge,
		Heads: heads, HeadDim: headDim, Slope: 0.2,
	}
	mk := func(r, c int) *autodiff.Value {
		return autodiff.Param(autodiff.NewTensor(r, c).Randn(rng, math.Sqrt(2/float64(r+c))))
	}
	l.thetaS = mk(inDst, heads*headDim)
	for k := 0; k < heads; k++ {
		l.thetaDst = append(l.thetaDst, mk(inDst, headDim))
		l.thetaSrc = append(l.thetaSrc, mk(inSrc, headDim))
		l.thetaEdge = append(l.thetaEdge, mk(inEdge, headDim))
		l.attnVector = append(l.attnVector, mk(3*headDim, 1))
	}
	l.cacheParams()
	return l
}

func (l *GATLayerOf[T]) cacheParams() {
	l.params = l.params[:0]
	l.params = append(l.params, l.thetaS)
	l.params = append(l.params, l.thetaDst...)
	l.params = append(l.params, l.thetaSrc...)
	l.params = append(l.params, l.thetaEdge...)
	l.params = append(l.params, l.attnVector...)
}

// convParam copies a trained float64 parameter into a fresh parameter of
// element type T (an elementwise conversion; exact for T = float64).
func convParam[T autodiff.Float](v *autodiff.Value) *autodiff.ValueOf[T] {
	t := autodiff.NewTensorOf[T](v.Val.Rows, v.Val.Cols)
	for i, x := range v.Val.Data {
		t.Data[i] = T(x)
	}
	return autodiff.Param(t)
}

func convParams[T autodiff.Float](vs []*autodiff.Value) []*autodiff.ValueOf[T] {
	out := make([]*autodiff.ValueOf[T], len(vs))
	for i, v := range vs {
		out[i] = convParam[T](v)
	}
	return out
}

// ConvertGATLayer copies a trained float64 layer's weights into a layer of
// element type T for inference. The returned layer shares no storage with l.
func ConvertGATLayer[T autodiff.Float](l *GATLayer) *GATLayerOf[T] {
	c := &GATLayerOf[T]{
		InDst: l.InDst, InSrc: l.InSrc, InEdge: l.InEdge,
		Heads: l.Heads, HeadDim: l.HeadDim, Slope: l.Slope, Uniform: l.Uniform,
		thetaS:     convParam[T](l.thetaS),
		thetaDst:   convParams[T](l.thetaDst),
		thetaSrc:   convParams[T](l.thetaSrc),
		thetaEdge:  convParams[T](l.thetaEdge),
		attnVector: convParams[T](l.attnVector),
	}
	c.cacheParams()
	return c
}

// OutDim returns the layer's output embedding width.
func (l *GATLayerOf[T]) OutDim() int { return l.Heads * l.HeadDim }

// Params returns the trainable parameters. The slice is cached — callers
// must not mutate it.
func (l *GATLayerOf[T]) Params() []*autodiff.ValueOf[T] { return l.params }

// Forward computes updated destination-node embeddings. vDst is nDst x InDst,
// vSrc is nSrc x InSrc, eFeat is E x InEdge (one row per edge, aligned with
// rel). Nodes with no incoming edges receive only the Θs·v self term.
//
//sate:hotpath per-layer forward inside every solve
func (l *GATLayerOf[T]) Forward(tp *autodiff.TapeOf[T], vDst, vSrc, eFeat *autodiff.ValueOf[T], rel EdgeList) *autodiff.ValueOf[T] {
	return l.forward(tp, vDst, vSrc, eFeat, nil, rel)
}

// ForwardDedup is Forward for relations whose per-edge features repeat:
// eFeatU holds only the distinct feature rows and eIdx[e] selects edge e's
// row in it. The edge projection Θe·e runs once per distinct row and is
// gathered back per edge — bitwise identical to Forward on the expanded
// features, since a gemm output row depends only on its own input row and
// Gather copies bits. Inference tapes only: on a gradient tape the edge
// gradient would accumulate in a different order than the composed graph,
// breaking training bit-reproducibility.
//
//sate:hotpath per-layer forward (deduped edge features) inside every solve
func (l *GATLayerOf[T]) ForwardDedup(tp *autodiff.TapeOf[T], vDst, vSrc, eFeatU *autodiff.ValueOf[T], eIdx []int, rel EdgeList) *autodiff.ValueOf[T] {
	if !tp.NoGrad() {
		panic("gnn: ForwardDedup on a gradient tape")
	}
	return l.forward(tp, vDst, vSrc, eFeatU, eIdx, rel)
}

func (l *GATLayerOf[T]) forward(tp *autodiff.TapeOf[T], vDst, vSrc, eFeat *autodiff.ValueOf[T], eIdx []int, rel EdgeList) *autodiff.ValueOf[T] {
	for _, p := range l.Params() {
		tp.Watch(p)
	}
	nDst := vDst.Val.Rows
	self := tp.MatMul(vDst, l.thetaS)
	slope := T(l.Slope)

	// headsBuf keeps the per-head slice off the heap for realistic head
	// counts (Forward runs once per layer per step — zero-alloc steady state).
	var headsBuf [8]*autodiff.ValueOf[T]
	heads := headsBuf[:0]
	for k := 0; k < l.Heads; k++ {
		hDst := tp.MatMul(vDst, l.thetaDst[k]) // nDst x dh
		hSrc := tp.MatMul(vSrc, l.thetaSrc[k]) // nSrc x dh
		hE := tp.MatMul(eFeat, l.thetaEdge[k]) // E x dh (U x dh when deduped)
		if eIdx != nil {
			hE = tp.Gather(hE, eIdx) // expand back to E x dh
		}

		gSrc := tp.Gather(hSrc, rel.Src) // E x dh

		var score *autodiff.ValueOf[T]
		if l.Uniform {
			// Mean aggregation: softmax over zero scores is uniform.
			score = tp.Const(tp.Zeros(rel.Len(), 1))
		} else {
			// Fused gather→concat builds [Θd·v_dst ‖ Θn·v_src ‖ Θe·e]; only
			// the dst part is gathered here — gSrc stays a shared node so its
			// gradient accumulates once, as in the composed graph.
			cat := tp.GatherConcat(hDst, rel.Dst, gSrc, nil, hE) // E x 3dh
			score = tp.MatMul(cat, l.attnVector[k])              // E x 1
			score = tp.LeakyReLU(score, slope)                   // Eq. (7)
		}
		msg := tp.Add(gSrc, hE) // E x dh
		// Fused segment-softmax → weighted scatter (Eq. 6 aggregation).
		agg := tp.SegmentAttention(score, msg, rel.Dst, nDst) // nDst x dh
		//lint:ignore hotpath-no-alloc appends into headsBuf's fixed-size stack backing (cap 8 covers realistic head counts)
		heads = append(heads, agg)
	}
	var aggAll *autodiff.ValueOf[T]
	if len(heads) == 1 {
		aggAll = heads[0]
	} else {
		aggAll = tp.Concat(heads...)
	}
	return tp.LeakyReLU(tp.Add(self, aggAll), slope)
}

// StackOf is a residual stack of GAT layers over one relation: each layer's
// output feeds the next, with identity residuals where dimensions match
// (Appendix B: residual connections mitigate over-smoothing).
type StackOf[T autodiff.Float] struct {
	Layers []*GATLayerOf[T]
}

// Stack is the float64 (training) stack.
type Stack = StackOf[float64]

// NewStack builds depth layers of identical dimensions (dim -> dim) over a
// same-type relation.
func NewStack(rng *rand.Rand, depth, dim, edgeDim, heads int) *Stack {
	if dim%heads != 0 {
		panic("gnn: dim must be divisible by heads")
	}
	s := &Stack{}
	for i := 0; i < depth; i++ {
		s.Layers = append(s.Layers, NewGATLayer(rng, dim, dim, edgeDim, heads, dim/heads))
	}
	return s
}

// ConvertStack copies a trained float64 stack into element type T.
func ConvertStack[T autodiff.Float](s *Stack) *StackOf[T] {
	c := &StackOf[T]{}
	for _, l := range s.Layers {
		c.Layers = append(c.Layers, ConvertGATLayer[T](l))
	}
	return c
}

// Params returns all trainable parameters of the stack.
func (s *StackOf[T]) Params() []*autodiff.ValueOf[T] {
	var out []*autodiff.ValueOf[T]
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Forward runs the stack on a homogeneous relation (src and dst are the same
// node set).
//
//sate:hotpath residual-stack forward inside every solve
func (s *StackOf[T]) Forward(tp *autodiff.TapeOf[T], v, eFeat *autodiff.ValueOf[T], rel EdgeList) *autodiff.ValueOf[T] {
	h := v
	for _, l := range s.Layers {
		out := l.Forward(tp, h, h, eFeat, rel)
		if out.Val.Cols == h.Val.Cols {
			out = tp.Add(out, h) // residual
		}
		h = out
	}
	return h
}

// MLPOf is a small fully connected network used as the allocation decoder.
type MLPOf[T autodiff.Float] struct {
	weights []*autodiff.ValueOf[T]
	biases  []*autodiff.ValueOf[T]
	Slope   float64
}

// MLP is the float64 (training) network.
type MLP = MLPOf[float64]

// NewMLP builds an MLP with the given layer widths (e.g. in, hidden, out).
func NewMLP(rng *rand.Rand, widths ...int) *MLP {
	if len(widths) < 2 {
		panic("gnn: MLP needs at least input and output widths")
	}
	m := &MLP{Slope: 0.2}
	for i := 0; i+1 < len(widths); i++ {
		w := autodiff.Param(autodiff.NewTensor(widths[i], widths[i+1]).
			Randn(rng, math.Sqrt(2/float64(widths[i]+widths[i+1]))))
		b := autodiff.Param(autodiff.NewTensor(1, widths[i+1]))
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, b)
	}
	return m
}

// ConvertMLP copies a trained float64 MLP into element type T.
func ConvertMLP[T autodiff.Float](m *MLP) *MLPOf[T] {
	return &MLPOf[T]{
		weights: convParams[T](m.weights),
		biases:  convParams[T](m.biases),
		Slope:   m.Slope,
	}
}

// Params returns the trainable parameters.
func (m *MLPOf[T]) Params() []*autodiff.ValueOf[T] {
	var out []*autodiff.ValueOf[T]
	for i := range m.weights {
		out = append(out, m.weights[i], m.biases[i])
	}
	return out
}

// SetOutputBias sets the bias of one output column of the final layer.
// Useful to start gated outputs away from saturation (e.g. a sigmoid gate
// biased positive so early penalty gradients cannot kill it).
func (m *MLPOf[T]) SetOutputBias(col int, v float64) {
	last := m.biases[len(m.biases)-1]
	last.Val.Set(0, col, T(v))
}

// Forward applies the MLP with LeakyReLU between layers (linear output).
// Each layer is one fused Linear/LinearLeakyReLU kernel.
//
//sate:hotpath decoder forward inside every solve
func (m *MLPOf[T]) Forward(tp *autodiff.TapeOf[T], x *autodiff.ValueOf[T]) *autodiff.ValueOf[T] {
	h := x
	slope := T(m.Slope)
	for i := range m.weights {
		tp.Watch(m.weights[i])
		tp.Watch(m.biases[i])
		if i+1 < len(m.weights) {
			h = tp.LinearLeakyReLU(h, m.weights[i], m.biases[i], slope)
		} else {
			h = tp.Linear(h, m.weights[i], m.biases[i])
		}
	}
	return h
}
