// Package gnn implements graph-attention layers (Eq. 6/7 of the paper) on
// the autodiff engine: multi-head edge-featured attention with per-segment
// softmax over incoming edges, bipartite-relation support (the R2/R3
// relations connect different node types), residual stacks, and a small MLP
// for the decoder.
package gnn

import (
	"math"
	"math/rand"

	"sate/internal/autodiff"
)

// EdgeList is a sparse relation: edge i connects Src[i] -> Dst[i] and carries
// feature row i of the edge-feature tensor. Attention normalises over the
// incoming edges of each destination node.
type EdgeList struct {
	Src, Dst []int
}

// Len returns the number of edges.
func (e EdgeList) Len() int { return len(e.Src) }

// Reverse returns the relation with directions flipped (for updating the
// other side of a bipartite relation).
func (e EdgeList) Reverse() EdgeList { return EdgeList{Src: e.Dst, Dst: e.Src} }

// GATLayer is one multi-head graph-attention layer following Eq. (6)/(7):
//
//	v'_i = LeakyReLU( Θs·v_i + ‖_k Σ_{j∈r(i)} α^k_{j,i} (Θn^k·v_j + Θe^k·e_{j,i}) )
//	α^k_{j,i} = softmax_i( LeakyReLU( a^T [Θd^k·v_i ‖ Θn^k·v_j ‖ Θe^k·e_{j,i}] ) )
//
// Destination and source nodes may be different types (bipartite relations),
// hence separate Θd/Θn input dimensions. Output dimension is Heads*HeadDim.
type GATLayer struct {
	InDst, InSrc, InEdge int
	Heads, HeadDim       int
	Slope                float64 // LeakyReLU slope
	// Uniform disables learned attention: every incoming edge gets weight
	// 1/deg (mean aggregation). Used by the attention ablation.
	Uniform bool

	thetaS     *autodiff.Value   // InDst x Heads*HeadDim
	thetaDst   []*autodiff.Value // per head: InDst x HeadDim (attention query)
	thetaSrc   []*autodiff.Value // per head: InSrc x HeadDim (message + key)
	thetaEdge  []*autodiff.Value // per head: InEdge x HeadDim
	attnVector []*autodiff.Value // per head: 3*HeadDim x 1
	params     []*autodiff.Value // cached Params() result (Forward is hot)
}

// NewGATLayer creates a layer with Xavier-style initialisation.
func NewGATLayer(rng *rand.Rand, inDst, inSrc, inEdge, heads, headDim int) *GATLayer {
	l := &GATLayer{
		InDst: inDst, InSrc: inSrc, InEdge: inEdge,
		Heads: heads, HeadDim: headDim, Slope: 0.2,
	}
	mk := func(r, c int) *autodiff.Value {
		return autodiff.Param(autodiff.NewTensor(r, c).Randn(rng, math.Sqrt(2/float64(r+c))))
	}
	l.thetaS = mk(inDst, heads*headDim)
	for k := 0; k < heads; k++ {
		l.thetaDst = append(l.thetaDst, mk(inDst, headDim))
		l.thetaSrc = append(l.thetaSrc, mk(inSrc, headDim))
		l.thetaEdge = append(l.thetaEdge, mk(inEdge, headDim))
		l.attnVector = append(l.attnVector, mk(3*headDim, 1))
	}
	l.params = append(l.params, l.thetaS)
	l.params = append(l.params, l.thetaDst...)
	l.params = append(l.params, l.thetaSrc...)
	l.params = append(l.params, l.thetaEdge...)
	l.params = append(l.params, l.attnVector...)
	return l
}

// OutDim returns the layer's output embedding width.
func (l *GATLayer) OutDim() int { return l.Heads * l.HeadDim }

// Params returns the trainable parameters. The slice is cached — callers
// must not mutate it.
func (l *GATLayer) Params() []*autodiff.Value { return l.params }

// Forward computes updated destination-node embeddings. vDst is nDst x InDst,
// vSrc is nSrc x InSrc, eFeat is E x InEdge (one row per edge, aligned with
// rel). Nodes with no incoming edges receive only the Θs·v self term.
func (l *GATLayer) Forward(tp *autodiff.Tape, vDst, vSrc, eFeat *autodiff.Value, rel EdgeList) *autodiff.Value {
	for _, p := range l.Params() {
		tp.Watch(p)
	}
	nDst := vDst.Val.Rows
	self := tp.MatMul(vDst, l.thetaS)

	// headsBuf keeps the per-head slice off the heap for realistic head
	// counts (Forward runs once per layer per step — zero-alloc steady state).
	var headsBuf [8]*autodiff.Value
	heads := headsBuf[:0]
	for k := 0; k < l.Heads; k++ {
		hDst := tp.MatMul(vDst, l.thetaDst[k]) // nDst x dh
		hSrc := tp.MatMul(vSrc, l.thetaSrc[k]) // nSrc x dh
		hE := tp.MatMul(eFeat, l.thetaEdge[k]) // E x dh

		gSrc := tp.Gather(hSrc, rel.Src) // E x dh

		var score *autodiff.Value
		if l.Uniform {
			// Mean aggregation: softmax over zero scores is uniform.
			score = tp.Const(tp.Zeros(rel.Len(), 1))
		} else {
			// Fused gather→concat builds [Θd·v_dst ‖ Θn·v_src ‖ Θe·e]; only
			// the dst part is gathered here — gSrc stays a shared node so its
			// gradient accumulates once, as in the composed graph.
			cat := tp.GatherConcat(hDst, rel.Dst, gSrc, nil, hE) // E x 3dh
			score = tp.MatMul(cat, l.attnVector[k])              // E x 1
			score = tp.LeakyReLU(score, l.Slope)                 // Eq. (7)
		}
		msg := tp.Add(gSrc, hE) // E x dh
		// Fused segment-softmax → weighted scatter (Eq. 6 aggregation).
		agg := tp.SegmentAttention(score, msg, rel.Dst, nDst) // nDst x dh
		heads = append(heads, agg)
	}
	var aggAll *autodiff.Value
	if len(heads) == 1 {
		aggAll = heads[0]
	} else {
		aggAll = tp.Concat(heads...)
	}
	return tp.LeakyReLU(tp.Add(self, aggAll), l.Slope)
}

// Stack is a residual stack of GAT layers over one relation: each layer's
// output feeds the next, with identity residuals where dimensions match
// (Appendix B: residual connections mitigate over-smoothing).
type Stack struct {
	Layers []*GATLayer
}

// NewStack builds depth layers of identical dimensions (dim -> dim) over a
// same-type relation.
func NewStack(rng *rand.Rand, depth, dim, edgeDim, heads int) *Stack {
	if dim%heads != 0 {
		panic("gnn: dim must be divisible by heads")
	}
	s := &Stack{}
	for i := 0; i < depth; i++ {
		s.Layers = append(s.Layers, NewGATLayer(rng, dim, dim, edgeDim, heads, dim/heads))
	}
	return s
}

// Params returns all trainable parameters of the stack.
func (s *Stack) Params() []*autodiff.Value {
	var out []*autodiff.Value
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Forward runs the stack on a homogeneous relation (src and dst are the same
// node set).
func (s *Stack) Forward(tp *autodiff.Tape, v, eFeat *autodiff.Value, rel EdgeList) *autodiff.Value {
	h := v
	for _, l := range s.Layers {
		out := l.Forward(tp, h, h, eFeat, rel)
		if out.Val.Cols == h.Val.Cols {
			out = tp.Add(out, h) // residual
		}
		h = out
	}
	return h
}

// MLP is a small fully connected network used as the allocation decoder.
type MLP struct {
	weights []*autodiff.Value
	biases  []*autodiff.Value
	Slope   float64
}

// NewMLP builds an MLP with the given layer widths (e.g. in, hidden, out).
func NewMLP(rng *rand.Rand, widths ...int) *MLP {
	if len(widths) < 2 {
		panic("gnn: MLP needs at least input and output widths")
	}
	m := &MLP{Slope: 0.2}
	for i := 0; i+1 < len(widths); i++ {
		w := autodiff.Param(autodiff.NewTensor(widths[i], widths[i+1]).
			Randn(rng, math.Sqrt(2/float64(widths[i]+widths[i+1]))))
		b := autodiff.Param(autodiff.NewTensor(1, widths[i+1]))
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, b)
	}
	return m
}

// Params returns the trainable parameters.
func (m *MLP) Params() []*autodiff.Value {
	var out []*autodiff.Value
	for i := range m.weights {
		out = append(out, m.weights[i], m.biases[i])
	}
	return out
}

// SetOutputBias sets the bias of one output column of the final layer.
// Useful to start gated outputs away from saturation (e.g. a sigmoid gate
// biased positive so early penalty gradients cannot kill it).
func (m *MLP) SetOutputBias(col int, v float64) {
	last := m.biases[len(m.biases)-1]
	last.Val.Set(0, col, v)
}

// Forward applies the MLP with LeakyReLU between layers (linear output).
// Each layer is one fused Linear/LinearLeakyReLU kernel.
func (m *MLP) Forward(tp *autodiff.Tape, x *autodiff.Value) *autodiff.Value {
	h := x
	for i := range m.weights {
		tp.Watch(m.weights[i])
		tp.Watch(m.biases[i])
		if i+1 < len(m.weights) {
			h = tp.LinearLeakyReLU(h, m.weights[i], m.biases[i], m.Slope)
		} else {
			h = tp.Linear(h, m.weights[i], m.biases[i])
		}
	}
	return h
}
