package gnn

import (
	"math"
	"math/rand"
	"testing"

	"sate/internal/autodiff"
)

// lineGraph: 0-1-2 chain with bidirectional edges.
func lineGraph() EdgeList {
	return EdgeList{
		Src: []int{0, 1, 1, 2},
		Dst: []int{1, 0, 2, 1},
	}
}

func TestGATForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewGATLayer(rng, 4, 4, 2, 2, 3)
	if l.OutDim() != 6 {
		t.Fatalf("out dim = %d", l.OutDim())
	}
	tp := autodiff.NewTape()
	v := tp.Const(autodiff.NewTensor(3, 4).Randn(rng, 1))
	e := tp.Const(autodiff.NewTensor(4, 2).Randn(rng, 1))
	out := l.Forward(tp, v, v, e, lineGraph())
	if out.Val.Rows != 3 || out.Val.Cols != 6 {
		t.Errorf("output shape %dx%d", out.Val.Rows, out.Val.Cols)
	}
	for _, x := range out.Val.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("non-finite output")
		}
	}
}

func TestGATIsolatedNodeGetsSelfTermOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewGATLayer(rng, 3, 3, 1, 1, 3)
	tp := autodiff.NewTape()
	v := tp.Const(autodiff.NewTensor(4, 3).Randn(rng, 1))
	// Only nodes 0,1 connected; nodes 2,3 isolated.
	rel := EdgeList{Src: []int{0, 1}, Dst: []int{1, 0}}
	e := tp.Const(autodiff.NewTensor(2, 1).Randn(rng, 1))
	out := l.Forward(tp, v, v, e, rel)
	// Isolated node output = LeakyReLU(thetaS . v): recompute directly.
	tp2 := autodiff.NewTape()
	self := tp2.LeakyReLU(tp2.MatMul(tp2.Const(v.Val), tp2.Watch(l.thetaS)), l.Slope)
	for c := 0; c < out.Val.Cols; c++ {
		if math.Abs(out.Val.At(2, c)-self.Val.At(2, c)) > 1e-12 {
			t.Fatalf("isolated node got neighbour contributions")
		}
	}
}

func TestGATBipartite(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// dst nodes: 2 paths with dim 5; src nodes: 3 traffic with dim 3.
	l := NewGATLayer(rng, 5, 3, 2, 2, 4)
	tp := autodiff.NewTape()
	vp := tp.Const(autodiff.NewTensor(2, 5).Randn(rng, 1))
	vt := tp.Const(autodiff.NewTensor(3, 3).Randn(rng, 1))
	rel := EdgeList{Src: []int{0, 1, 2}, Dst: []int{0, 0, 1}}
	e := tp.Const(autodiff.NewTensor(3, 2).Randn(rng, 1))
	out := l.Forward(tp, vp, vt, e, rel)
	if out.Val.Rows != 2 || out.Val.Cols != 8 {
		t.Errorf("bipartite output shape %dx%d", out.Val.Rows, out.Val.Cols)
	}
}

func TestGATGradientsFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewGATLayer(rng, 3, 3, 2, 1, 3)
	rel := lineGraph()
	vT := autodiff.NewTensor(3, 3).Randn(rng, 1)
	eT := autodiff.NewTensor(4, 2).Randn(rng, 1)

	run := func() float64 {
		tp := autodiff.NewTape()
		out := l.Forward(tp, tp.Const(vT), tp.Const(vT), tp.Const(eT), rel)
		return tp.SumAll(tp.Mul(out, out)).Val.Data[0]
	}
	for pi, p := range l.Params() {
		p.Grad.Fill(0)
		_ = pi
	}
	tp := autodiff.NewTape()
	out := l.Forward(tp, tp.Const(vT), tp.Const(vT), tp.Const(eT), rel)
	loss := tp.SumAll(tp.Mul(out, out))
	tp.Backward(loss)
	for pi, p := range l.Params() {
		analytic := p.Grad.Clone()
		if err := autodiff.GradCheck(p, run, analytic, 1e-5, 8); err > 5e-4 {
			t.Errorf("param %d gradient error %v", pi, err)
		}
	}
}

func TestStackResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewStack(rng, 3, 6, 2, 2)
	if len(s.Layers) != 3 {
		t.Fatal("depth wrong")
	}
	tp := autodiff.NewTape()
	v := tp.Const(autodiff.NewTensor(3, 6).Randn(rng, 1))
	e := tp.Const(autodiff.NewTensor(4, 2).Randn(rng, 1))
	out := s.Forward(tp, v, e, lineGraph())
	if out.Val.Rows != 3 || out.Val.Cols != 6 {
		t.Errorf("stack output %dx%d", out.Val.Rows, out.Val.Cols)
	}
	if len(s.Params()) != 3*len(s.Layers[0].Params()) {
		t.Error("params incomplete")
	}
}

func TestStackDimValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("dim not divisible by heads should panic")
		}
	}()
	NewStack(rand.New(rand.NewSource(1)), 1, 5, 2, 2)
}

func TestMLPShapesAndGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewMLP(rng, 4, 8, 1)
	xT := autodiff.NewTensor(5, 4).Randn(rng, 1)
	run := func() float64 {
		tp := autodiff.NewTape()
		out := m.Forward(tp, tp.Const(xT))
		return tp.SumAll(tp.Mul(out, out)).Val.Data[0]
	}
	for _, p := range m.Params() {
		p.Grad.Fill(0)
	}
	tp := autodiff.NewTape()
	out := m.Forward(tp, tp.Const(xT))
	if out.Val.Rows != 5 || out.Val.Cols != 1 {
		t.Fatalf("MLP output %dx%d", out.Val.Rows, out.Val.Cols)
	}
	tp.Backward(tp.SumAll(tp.Mul(out, out)))
	for pi, p := range m.Params() {
		analytic := p.Grad.Clone()
		if err := autodiff.GradCheck(p, run, analytic, 1e-5, 8); err > 5e-4 {
			t.Errorf("MLP param %d gradient error %v", pi, err)
		}
	}
}

func TestGATLearnsNeighborAggregation(t *testing.T) {
	// End-to-end learning sanity: predict the mean of neighbour features —
	// requires information to flow across edges. (Degree counting is
	// deliberately NOT learnable by attention: the softmax weights sum to 1,
	// which is why the paper initialises satellite embeddings with
	// #Neighbors explicitly, Fig. 7.)
	rng := rand.New(rand.NewSource(7))
	l := NewGATLayer(rng, 1, 1, 1, 1, 4)
	dec := NewMLP(rng, 4, 8, 1)
	params := append(l.Params(), dec.Params()...)
	opt := autodiff.NewAdam(0.01, params...)

	rel := EdgeList{ // star: node 0 <-> {1,2,3}
		Src: []int{1, 2, 3, 0, 0, 0},
		Dst: []int{0, 0, 0, 1, 2, 3},
	}
	vT := autodiff.FromSlice(4, 1, []float64{0.5, 1, 2, 3})
	eT := autodiff.NewTensor(6, 1)
	eT.Fill(1)
	// target[i] = mean of i's neighbour values.
	target := autodiff.FromSlice(4, 1, []float64{2, 0.5, 0.5, 0.5})

	var loss float64
	for i := 0; i < 600; i++ {
		tp := autodiff.NewTape()
		h := l.Forward(tp, tp.Const(vT), tp.Const(vT), tp.Const(eT), rel)
		pred := dec.Forward(tp, h)
		lv := tp.MSE(pred, tp.Const(target))
		opt.ZeroGrad()
		tp.Backward(lv)
		opt.Step()
		loss = lv.Val.Data[0]
	}
	if loss > 0.05 {
		t.Errorf("failed to learn neighbour aggregation: loss %v", loss)
	}
}

func TestReverse(t *testing.T) {
	r := EdgeList{Src: []int{1, 2}, Dst: []int{3, 4}}
	rev := r.Reverse()
	if rev.Src[0] != 3 || rev.Dst[0] != 1 || rev.Len() != 2 {
		t.Errorf("reverse wrong: %+v", rev)
	}
}

func TestEmptyRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewGATLayer(rng, 3, 3, 1, 1, 3)
	tp := autodiff.NewTape()
	v := tp.Const(autodiff.NewTensor(2, 3).Randn(rng, 1))
	e := tp.Const(autodiff.NewTensor(0, 1))
	out := l.Forward(tp, v, v, e, EdgeList{})
	if out.Val.Rows != 2 {
		t.Errorf("empty relation output rows %d", out.Val.Rows)
	}
}
