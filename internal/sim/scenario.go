// Package sim provides the data-driven evaluation engine of Sec. 4/5:
// scenario assembly (constellation + topology generator + ground segment +
// traffic), the ONLINE satisfied-demand metric that accounts for TE
// computation latency (allocations stay in effect — and go stale — until the
// next computation finishes), offline evaluation, link-failure experiments,
// and the rule-distribution propagation-delay model of Appendix D.
package sim

import (
	"math/rand"

	"sate/internal/constellation"
	"sate/internal/groundnet"
	"sate/internal/orbit"
	"sate/internal/paths"
	"sate/internal/te"
	"sate/internal/topology"
	"sate/internal/traffic"
)

// Scenario bundles everything needed to produce TE problems over time.
type Scenario struct {
	Cons    *constellation.Constellation
	TopoGen *topology.Generator
	Seg     *groundnet.Segment
	Traffic *traffic.Generator
	Loc     *groundnet.SatLocator
	Build   te.BuildConfig

	// MinElevRad is the user-terminal minimum elevation for satellite access.
	MinElevRad float64
	// PathDB is maintained incrementally across snapshots.
	PathDB *paths.DB

	lastSnap *topology.Snapshot
}

// ScenarioConfig parameterises scenario construction.
type ScenarioConfig struct {
	Mode      topology.CrossShellMode
	Intensity float64 // flows per second
	Seed      int64
	// Ground-segment size knobs; zero values scale with constellation size.
	Users        int
	UserClusters int
	Gateways     int
	Relays       int
	// MinElevDeg is the user-terminal minimum elevation (default 25, the
	// paper's value). Small test constellations have sparse coverage at 25
	// degrees; tests lower this so that enough flows resolve to satellites.
	MinElevDeg float64
	// FlowDurationScale multiplies the Table-2 flow durations (default 1).
	// The paper's durations (minutes to hours) put the steady state of the
	// arrival process thousands of seconds out; scaled-down runs reach
	// steady state quickly, mirroring the paper's own down-scaling of
	// bandwidth and flow counts (Sec. 4, footnote 5).
	FlowDurationScale float64
}

// NewScenario assembles a scenario with paper-default parameters scaled to
// the constellation.
func NewScenario(cons *constellation.Constellation, cfg ScenarioConfig) *Scenario {
	n := cons.Size()
	if cfg.Users == 0 {
		cfg.Users = 700 * n // 3M users at Starlink scale
	}
	if cfg.UserClusters == 0 {
		cfg.UserClusters = minInt(2000, 20+n/2)
	}
	if cfg.Gateways == 0 {
		cfg.Gateways = minInt(1000, 10+n/4)
	}
	if cfg.Relays == 0 {
		cfg.Relays = minInt(222, 10+n/20)
	}
	grid := groundnet.SyntheticPopulation(cfg.Seed)
	seg := groundnet.Build(grid, groundnet.Config{
		Users:        cfg.Users,
		UserClusters: cfg.UserClusters,
		Gateways:     cfg.Gateways,
		Relays:       cfg.Relays,
		Gamma:        0.05,
		Seed:         cfg.Seed,
	})
	topoCfg := topology.DefaultConfig(cfg.Mode)
	if cfg.Mode == topology.CrossShellGroundRelays {
		topoCfg.Relays = seg.Relays
	}
	gen := topology.NewGenerator(cons, topoCfg)
	minElev := cfg.MinElevDeg
	if minElev == 0 {
		minElev = 25
	}
	tcfg := traffic.DefaultConfig(cfg.Intensity, cfg.Seed)
	if cfg.FlowDurationScale > 0 && cfg.FlowDurationScale != 1 {
		scaled := make([]traffic.Class, len(tcfg.Classes))
		copy(scaled, tcfg.Classes)
		for i := range scaled {
			scaled[i].MinDurationSec *= cfg.FlowDurationScale
			scaled[i].MaxDurationSec *= cfg.FlowDurationScale
		}
		tcfg.Classes = scaled
	}
	s := &Scenario{
		Cons:       cons,
		TopoGen:    gen,
		Seg:        seg,
		Traffic:    traffic.NewGenerator(seg, tcfg),
		Loc:        groundnet.NewSatLocator(cons),
		Build:      te.DefaultBuildConfig(),
		MinElevRad: orbit.Deg(minElev),
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// SnapshotAt returns (and caches) the topology at time t, keeping the path
// database synchronised via incremental updates.
func (s *Scenario) SnapshotAt(tSec float64) *topology.Snapshot {
	snap := s.TopoGen.Snapshot(tSec)
	if s.PathDB == nil {
		s.PathDB = paths.NewDB(s.Cons, snap, s.Build.K)
	} else if s.lastSnap == nil || !s.lastSnap.SameTopology(snap) {
		s.PathDB.Update(snap)
	}
	s.lastSnap = snap
	return snap
}

// MatrixAt advances traffic to time t and aggregates the live flows into a
// sparse traffic matrix against the positions of the given snapshot.
func (s *Scenario) MatrixAt(tSec float64, snap *topology.Snapshot) *traffic.Matrix {
	s.Traffic.AdvanceTo(tSec)
	s.Loc.Update(snap.Pos[:snap.NumSats])
	return traffic.BuildMatrix(s.Traffic.ActiveFlows(), s.Loc, s.MinElevRad, s.Cons.Size())
}

// ProblemAt builds the complete TE problem for time t.
func (s *Scenario) ProblemAt(tSec float64) (*te.Problem, *topology.Snapshot, *traffic.Matrix, error) {
	snap := s.SnapshotAt(tSec)
	m := s.MatrixAt(tSec, snap)
	p, err := te.Build(snap, m, s.PathDB, s.Build)
	return p, snap, m, err
}

// ProblemWithFailures builds the TE problem at time t with a random fraction
// of links failed (Appendix H.3). It also returns the failure-injected
// snapshot so callers (the chaos-mode controller, the failure experiments)
// can score stale allocations against the degraded link set.
func (s *Scenario) ProblemWithFailures(tSec, failFrac float64, rng *rand.Rand) (*te.Problem, *topology.Snapshot, error) {
	snap := s.SnapshotAt(tSec)
	failed := topology.InjectFailures(snap, failFrac, rng)
	m := s.MatrixAt(tSec, failed)
	// Paths stay configured for the pre-failure topology (no rerouting, as
	// in the paper's failure experiment); Build drops path hops over dead
	// links at Finalize time.
	p, err := te.Build(failed, m, s.PathDB, s.Build)
	return p, failed, err
}
