package sim

import (
	"time"

	"sate/internal/obs"
	"sate/internal/pktsim"
	"sate/internal/solve"
	"sate/internal/te"
	"sate/internal/topology"
)

// Allocator is anything that computes a TE allocation (SaTE, the LP solvers,
// the heuristics, the learned baselines). It is the sim-side spelling of the
// unified solver surface (see the solve package): options select the
// objective, inject an obs registry, or override the worker budget, and
// plain `Solve(p)` calls behave exactly as before the redesign.
type Allocator interface {
	Name() string
	Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error)
}

// OnlineConfig controls an online evaluation run.
type OnlineConfig struct {
	HorizonSec int
	// StartSec offsets the evaluation window (e.g. past the arrival
	// process's ramp-up into steady state).
	StartSec float64
	// IntervalSec is the recomputation interval. The paper sets it to the
	// method's average computational latency (1 s for SaTE, 47 s for Gurobi,
	// ...). Zero means "measure": the wall-clock latency of each solve,
	// rounded up to at least 1 s, spaces the next recomputation.
	IntervalSec float64
	// StepSec is the metric sampling step (default 1 s).
	StepSec float64
	// Registry receives online-evaluation metrics: per-step satisfaction
	// gauge, recompute counter, route-churn counter/gauge, problem-build
	// spans, and the per-solve latency histograms recorded by the allocator
	// itself (DESIGN.md §9). Nil disables instrumentation.
	Registry *obs.Registry
	// PacketReplay, when set, additionally executes every recomputation
	// cycle through the discrete-event packet engine and accumulates the
	// per-packet accounting in OnlineResult.PacketStats (DESIGN.md §15).
	PacketReplay *PacketReplay
}

// OnlineResult summarises an online run.
type OnlineResult struct {
	Method string
	// SatisfiedMean is the average per-step online satisfied demand.
	SatisfiedMean float64
	// Satisfied holds the per-step values.
	Satisfied []float64
	// Recomputations counts TE solves performed.
	Recomputations int
	// MeanSolveLatency is the average measured solve wall time.
	MeanSolveLatency time.Duration
	// RouteChurn counts route (pair, path) changes across consecutive
	// recomputations: paths that newly carry traffic plus paths that
	// stopped carrying traffic. The first allocation counts all its routes.
	RouteChurn int
	// PacketStats aggregates the packet-level replay of every recompute
	// cycle; nil unless OnlineConfig.PacketReplay was set.
	PacketStats *pktsim.Result
}

// activeAlloc is the allocation currently loaded into the network, with the
// pair-indexed view used to score it against fresh demand.
type activeAlloc struct {
	problem *te.Problem
	alloc   *te.Allocation
	// perPair[src<<32|dst] = candidate paths with their allocated rates.
	perPair map[uint64][]ratedPath
}

type ratedPath struct {
	nodes []topology.NodeID
	rate  float64
}

func pairKey(a, b topology.NodeID) uint64 { return uint64(a)<<32 | uint64(uint32(b)) }

func newActiveAlloc(p *te.Problem, a *te.Allocation) *activeAlloc {
	aa := &activeAlloc{problem: p, alloc: a, perPair: make(map[uint64][]ratedPath)}
	for fi, f := range p.Flows {
		k := pairKey(f.Src, f.Dst)
		for pi, path := range f.Paths {
			if a.X[fi][pi] <= 0 {
				continue
			}
			aa.perPair[k] = append(aa.perPair[k], ratedPath{nodes: path.Nodes, rate: a.X[fi][pi]})
		}
	}
	return aa
}

// satisfiedAgainst scores the active allocation against the CURRENT problem:
// per pair, the deliverable rate is the allocated rate on paths still valid
// in the current topology, capped by current demand. Pairs without an active
// allocation deliver nothing — the cost of stale TE (Sec. 2.3.2).
func (aa *activeAlloc) satisfiedAgainst(cur *te.Problem, links topology.LinkSet) float64 {
	total := cur.TotalDemand()
	if total <= 0 {
		return 1
	}
	var delivered float64
	for _, f := range cur.Flows {
		rps := aa.perPair[pairKey(f.Src, f.Dst)]
		var rate float64
		for _, rp := range rps {
			if pathValid(rp.nodes, links) {
				rate += rp.rate
			}
		}
		if rate > f.DemandMbps {
			rate = f.DemandMbps
		}
		delivered += rate
	}
	return delivered / total
}

// pathValid reports whether every hop of the path survives in the link set.
// Membership is kind-agnostic (topology.LinkSet.Has): a configured path does
// not know — and must not care — which LinkKind the live topology assigns to
// a surviving hop.
func pathValid(nodes []topology.NodeID, links topology.LinkSet) bool {
	for i := 0; i+1 < len(nodes); i++ {
		if !links.Has(nodes[i], nodes[i+1]) {
			return false
		}
	}
	return true
}

// sameNodes reports whether two paths traverse the same node sequence.
func sameNodes(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// missingRoutes counts routes of a absent from b (compared by node
// sequence; rate changes on a surviving route are not churn).
func missingRoutes(a, b map[uint64][]ratedPath) int {
	n := 0
	for k, aps := range a {
		bps := b[k]
	next:
		for _, ap := range aps {
			for _, bp := range bps {
				if sameNodes(ap.nodes, bp.nodes) {
					continue next
				}
			}
			n++
		}
	}
	return n
}

// routeChurn counts route changes between consecutive active allocations:
// routes added plus routes removed. A nil prev (first recomputation) counts
// every installed route — the initial table push is churn too.
func routeChurn(prev, next *activeAlloc) int {
	if next == nil {
		return 0
	}
	if prev == nil {
		n := 0
		for _, rps := range next.perPair {
			n += len(rps)
		}
		return n
	}
	return missingRoutes(next.perPair, prev.perPair) + missingRoutes(prev.perPair, next.perPair)
}

// RunOnline evaluates an allocator in the online setting: the allocation
// computed from the state at each recomputation instant remains in effect
// until the next one; every step scores the active (possibly stale)
// allocation against the then-current topology and demand.
func (s *Scenario) RunOnline(al Allocator, cfg OnlineConfig) (*OnlineResult, error) {
	if cfg.StepSec <= 0 {
		cfg.StepSec = 1
	}
	if cfg.HorizonSec <= 0 {
		cfg.HorizonSec = 60
	}
	reg := cfg.Registry
	var (
		satGauge     = reg.Gauge("sate_online_satisfied_ratio")
		recomputes   = reg.Counter("sate_online_recomputes_total")
		churnTotal   = reg.Counter("sate_online_route_churn_total")
		churnGauge   = reg.Gauge("sate_online_route_churn")
		problemBuild = reg.SpanHistogram(obs.PhasePathPrecompute)
	)
	var sopts []solve.Option
	if reg != nil {
		sopts = []solve.Option{solve.WithRegistry(reg)}
	}
	res := &OnlineResult{Method: al.Name()}
	var active *activeAlloc
	nextCompute := cfg.StartSec
	var totalLatency time.Duration
	for t := cfg.StartSec; t < cfg.StartSec+float64(cfg.HorizonSec); t += cfg.StepSec {
		sp := obs.StartTimer(problemBuild)
		cur, snap, _, err := s.ProblemAt(t)
		sp.End()
		if err != nil {
			return nil, err
		}
		if t >= nextCompute {
			//lint:ignore no-wallclock-in-sim solver wall-clock latency is the quantity being measured here, not simulated time
			start := time.Now()
			alloc, err := al.Solve(cur, sopts...)
			//lint:ignore no-wallclock-in-sim solver wall-clock latency is the quantity being measured here, not simulated time
			lat := time.Since(start)
			if err != nil {
				return nil, err
			}
			totalLatency += lat
			res.Recomputations++
			recomputes.Inc()
			next := newActiveAlloc(cur, alloc)
			churn := routeChurn(active, next)
			res.RouteChurn += churn
			churnTotal.Add(uint64(churn))
			churnGauge.Set(float64(churn))
			if cfg.PacketReplay != nil {
				// Replay this cycle at packet granularity: `active` still
				// holds the PREVIOUS allocation, which is exactly the rule
				// generation the network runs until the new push lands.
				pres, perr := cfg.PacketReplay.replay(s, snap, active, cur, alloc, res.Recomputations)
				if perr != nil {
					return nil, perr
				}
				if res.PacketStats == nil {
					res.PacketStats = &pktsim.Result{}
				}
				res.PacketStats.Merge(pres)
			}
			active = next
			interval := cfg.IntervalSec
			if interval <= 0 {
				interval = lat.Seconds()
			}
			if interval < cfg.StepSec {
				interval = cfg.StepSec
			}
			nextCompute = t + interval
		}
		links := snap.LinkSet()
		sat := active.satisfiedAgainst(cur, links)
		satGauge.Set(sat)
		res.Satisfied = append(res.Satisfied, sat)
	}
	var sum float64
	for _, v := range res.Satisfied {
		sum += v
	}
	if len(res.Satisfied) > 0 {
		res.SatisfiedMean = sum / float64(len(res.Satisfied))
	}
	if res.Recomputations > 0 {
		res.MeanSolveLatency = totalLatency / time.Duration(res.Recomputations)
	}
	return res, nil
}

// RunOffline evaluates the allocator with zero computation delay: each step's
// problem is solved instantly and scored against itself (Appendix H.1).
func (s *Scenario) RunOffline(al Allocator, steps int, stepSec float64) (*OnlineResult, error) {
	if stepSec <= 0 {
		stepSec = 1
	}
	res := &OnlineResult{Method: al.Name()}
	var totalLatency time.Duration
	for i := 0; i < steps; i++ {
		p, _, _, err := s.ProblemAt(float64(i) * stepSec)
		if err != nil {
			return nil, err
		}
		//lint:ignore no-wallclock-in-sim solver wall-clock latency is the quantity being measured here, not simulated time
		start := time.Now()
		a, err := al.Solve(p)
		//lint:ignore no-wallclock-in-sim solver wall-clock latency is the quantity being measured here, not simulated time
		totalLatency += time.Since(start)
		if err != nil {
			return nil, err
		}
		res.Recomputations++
		res.Satisfied = append(res.Satisfied, p.SatisfiedDemand(a))
	}
	var sum float64
	for _, v := range res.Satisfied {
		sum += v
	}
	if len(res.Satisfied) > 0 {
		res.SatisfiedMean = sum / float64(len(res.Satisfied))
	}
	if res.Recomputations > 0 {
		res.MeanSolveLatency = totalLatency / time.Duration(res.Recomputations)
	}
	return res, nil
}

// FlowLevelStats computes the per-pair satisfied-demand ratios of an
// allocation (Appendix H.4, Fig. 16 a).
func FlowLevelStats(p *te.Problem, a *te.Allocation) []float64 {
	return p.FlowStats(a)
}
