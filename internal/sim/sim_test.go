package sim

import (
	"math/rand"
	"testing"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/topology"
)

func toyScenario(intensity float64, seed int64) *Scenario {
	return NewScenario(constellation.Toy(5, 6), ScenarioConfig{
		Mode:      topology.CrossShellLasers,
		Intensity: intensity,
		Seed:      seed,
		Users:     2000, UserClusters: 60, Gateways: 8, Relays: 4, MinElevDeg: 5,
	})
}

func TestProblemAtProducesDemand(t *testing.T) {
	s := toyScenario(50, 3)
	p, snap, m, err := s.ProblemAt(20)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil || m == nil {
		t.Fatal("nil outputs")
	}
	if len(p.Flows) == 0 {
		t.Fatal("no flows at t=20 with lambda=50")
	}
	if p.NumNodes != snap.NumNodes {
		t.Error("node count mismatch")
	}
}

func TestPathDBIncrementalAcrossSteps(t *testing.T) {
	s := toyScenario(40, 5)
	if _, _, _, err := s.ProblemAt(0); err != nil {
		t.Fatal(err)
	}
	db := s.PathDB
	for _, tm := range []float64{10, 20, 30} {
		if _, _, _, err := s.ProblemAt(tm); err != nil {
			t.Fatal(err)
		}
	}
	if s.PathDB != db {
		t.Error("path DB was rebuilt instead of updated")
	}
}

func TestRunOfflineNearOptimalWithExactSolver(t *testing.T) {
	s := toyScenario(60, 7)
	res, err := s.RunOffline(baselines.LPExact{}, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recomputations != 3 || len(res.Satisfied) != 3 {
		t.Fatalf("res = %+v", res)
	}
	for _, v := range res.Satisfied {
		if v < 0 || v > 1 {
			t.Fatalf("satisfied out of range: %v", v)
		}
	}
	if res.MeanSolveLatency <= 0 {
		t.Error("latency not measured")
	}
}

func TestRunOnlineStaleAllocationHurts(t *testing.T) {
	// The same solver evaluated with a 1-second interval must do at least as
	// well as with a 60-second interval (stale allocations lose demand).
	fresh := toyScenario(80, 11)
	stale := toyScenario(80, 11)
	fast, err := fresh.RunOnline(baselines.ECMPWF{}, OnlineConfig{HorizonSec: 60, IntervalSec: 1, StepSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := stale.RunOnline(baselines.ECMPWF{}, OnlineConfig{HorizonSec: 60, IntervalSec: 60, StepSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Recomputations <= slow.Recomputations {
		t.Fatalf("interval not respected: %d vs %d solves", fast.Recomputations, slow.Recomputations)
	}
	if fast.SatisfiedMean < slow.SatisfiedMean-0.02 {
		t.Errorf("frequent recomputation should not hurt: fast %.3f slow %.3f",
			fast.SatisfiedMean, slow.SatisfiedMean)
	}
	if fast.SatisfiedMean <= 0 {
		t.Error("nothing satisfied")
	}
}

func TestRunOnlineMeasuredInterval(t *testing.T) {
	s := toyScenario(40, 13)
	res, err := s.RunOnline(baselines.ECMPWF{}, OnlineConfig{HorizonSec: 10, StepSec: 1})
	if err != nil {
		t.Fatal(err)
	}
	// ECMP-WF solves in well under a second at toy scale: it should
	// recompute every step.
	if res.Recomputations < 8 {
		t.Errorf("measured-interval mode recomputed only %d times", res.Recomputations)
	}
}

func TestProblemWithFailures(t *testing.T) {
	s := toyScenario(60, 17)
	rng := rand.New(rand.NewSource(1))
	p0, snap0, err := s.ProblemWithFailures(10, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	p5, snap5, err := s.ProblemWithFailures(10, 0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(p5.Links) >= len(p0.Links) {
		t.Errorf("failures did not remove links: %d vs %d", len(p5.Links), len(p0.Links))
	}
	if len(snap5.Links) != len(p5.Links) || len(snap0.Links) != len(p0.Links) {
		t.Errorf("returned snapshot link count disagrees with problem: %d vs %d, %d vs %d",
			len(snap5.Links), len(p5.Links), len(snap0.Links), len(p0.Links))
	}
	// Throughput under failures is at most throughput without (same demand).
	a0, err := (baselines.LPExact{}).Solve(p0)
	if err != nil {
		t.Fatal(err)
	}
	a5, err := (baselines.LPExact{}).Solve(p5)
	if err != nil {
		t.Fatal(err)
	}
	if a5.Throughput() > a0.Throughput()+1e-6 {
		t.Errorf("failures increased throughput: %v > %v", a5.Throughput(), a0.Throughput())
	}
}

func TestScenarioRelayMode(t *testing.T) {
	s := NewScenario(constellation.Toy(5, 6), ScenarioConfig{
		Mode:      topology.CrossShellGroundRelays,
		Intensity: 40,
		Seed:      19,
		Users:     2000, UserClusters: 50, Gateways: 6, Relays: 30,
	})
	p, snap, _, err := s.ProblemAt(15)
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumNodes != s.Cons.Size()+30 {
		t.Errorf("relay nodes missing: %d", snap.NumNodes)
	}
	if len(p.Flows) == 0 {
		t.Error("no flows in relay mode")
	}
}
