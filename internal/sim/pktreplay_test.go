package sim

import (
	"testing"

	"sate/internal/baselines"
	"sate/internal/pktsim"
)

// TestRunOnlinePacketReplay drives a short online run through the packet
// engine: every recompute cycle must contribute packets, the conservation
// identity must hold over the aggregate, and from the second cycle on the
// replay runs under a rule-update window (so stale-rule loss is at least
// representable, even if this toy scenario happens not to lose anything).
func TestRunOnlinePacketReplay(t *testing.T) {
	s := toyScenario(60, 17)
	res, err := s.RunOnline(baselines.ECMPWF{}, OnlineConfig{
		HorizonSec: 15, IntervalSec: 5, StepSec: 5,
		PacketReplay: &PacketReplay{
			Engine:      pktsim.Config{Seed: 11, HorizonSec: 0.25, MaxPackets: 200000},
			UpdateAtSec: 0.05,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ps := res.PacketStats
	if ps == nil {
		t.Fatal("PacketReplay set but PacketStats nil")
	}
	if res.Recomputations < 2 {
		t.Fatalf("only %d recomputes; the update-window path needs at least 2", res.Recomputations)
	}
	if ps.Injected == 0 || ps.Delivered == 0 {
		t.Fatalf("degenerate replay: %+v", ps)
	}
	if got := ps.Delivered + ps.Dropped(); got != ps.Injected {
		t.Fatalf("accounting: delivered %d + dropped %d != injected %d", ps.Delivered, ps.Dropped(), ps.Injected)
	}
	if len(ps.LatenciesSec) != ps.Delivered {
		t.Fatalf("%d latencies for %d deliveries", len(ps.LatenciesSec), ps.Delivered)
	}
	// Replay must not perturb the flow-level scoring path.
	if res.SatisfiedMean <= 0 {
		t.Fatal("flow-level satisfaction collapsed under packet replay")
	}
}

// TestRunOnlineWithoutReplayHasNoStats pins that the default path stays
// allocation-granular: no engine runs, no stats.
func TestRunOnlineWithoutReplayHasNoStats(t *testing.T) {
	s := toyScenario(60, 17)
	res, err := s.RunOnline(baselines.ECMPWF{}, OnlineConfig{HorizonSec: 5, IntervalSec: 5, StepSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketStats != nil {
		t.Fatal("PacketStats populated without PacketReplay")
	}
}
