package sim

import (
	"sate/internal/groundnet"
	"sate/internal/orbit"
	"sate/internal/pktsim"
	"sate/internal/ruledist"
	"sate/internal/te"
	"sate/internal/topology"
)

// PacketReplay makes RunOnline execute each recomputation cycle through the
// discrete-event packet engine (internal/pktsim) instead of only scoring it
// at flow granularity. Every recompute replays Engine.HorizonSec of packet
// traffic under the fresh allocation; from the second cycle on, the replay
// starts on the PREVIOUS cycle's rules and switches node by node at
// UpdateAtSec plus each satellite's rule-distribution delay (Appendix D via
// ruledist.RuleDistributionDelays) — so stale-rule loss during the update
// window shows up in the packet accounting.
type PacketReplay struct {
	// Engine configures each per-cycle run. Engine.Seed is advanced per
	// cycle so cycles draw distinct (but reproducible) jitter and
	// disturbance schedules.
	Engine pktsim.Config
	// UpdateAtSec is the instant, within a replayed cycle, when the control
	// center pushes the new rules (default 0.1 s).
	UpdateAtSec float64
	// Site is the control center the rule push originates from
	// (default ruledist.HoustonSite).
	Site *groundnet.Site
	// MinElevRad gates which satellites the control center seeds directly;
	// zero falls back to the scenario's threshold, then to 25°.
	MinElevRad float64
}

// replay runs one cycle. prev is the allocation the network was running
// before this recompute (nil on the first cycle: no update window).
func (pr *PacketReplay) replay(scen *Scenario, snap *topology.Snapshot, prev *activeAlloc, p *te.Problem, a *te.Allocation, cycle int) (*pktsim.Result, error) {
	cfg := pr.Engine
	cfg.Seed += int64(cycle)
	spec := &pktsim.RunSpec{Snap: snap, Problem: p, Alloc: a}
	if prev != nil {
		at := pr.UpdateAtSec
		if at <= 0 {
			at = 0.1
		}
		site := ruledist.HoustonSite
		if pr.Site != nil {
			site = *pr.Site
		}
		minElev := pr.MinElevRad
		if minElev <= 0 {
			minElev = scen.MinElevRad
		}
		if minElev <= 0 {
			minElev = orbit.Deg(25)
		}
		spec.Update = &pktsim.RuleUpdate{
			PrevProblem: prev.problem,
			PrevAlloc:   prev.alloc,
			AtSec:       at,
			DelaysSec:   ruledist.RuleDistributionDelays(snap, site, minElev),
		}
	}
	return pktsim.Run(spec, cfg)
}
