package sim

import (
	"math"
	"testing"

	"sate/internal/baselines"
	"sate/internal/obs"
	"sate/internal/topology"
)

func TestRouteChurnCounting(t *testing.T) {
	path := func(ids ...topology.NodeID) []topology.NodeID { return ids }
	a := &activeAlloc{perPair: map[uint64][]ratedPath{
		pairKey(1, 2): {{nodes: path(1, 3, 2), rate: 5}, {nodes: path(1, 4, 2), rate: 3}},
		pairKey(5, 6): {{nodes: path(5, 6), rate: 1}},
	}}
	// First install: every route counts.
	if got := routeChurn(nil, a); got != 3 {
		t.Fatalf("initial churn = %d, want 3", got)
	}
	// Identical recomputation with a rate change only: no churn.
	b := &activeAlloc{perPair: map[uint64][]ratedPath{
		pairKey(1, 2): {{nodes: path(1, 3, 2), rate: 7}, {nodes: path(1, 4, 2), rate: 1}},
		pairKey(5, 6): {{nodes: path(5, 6), rate: 2}},
	}}
	if got := routeChurn(a, b); got != 0 {
		t.Fatalf("rate-only churn = %d, want 0", got)
	}
	// One route swapped for another on (1,2), pair (5,6) dropped entirely:
	// 1 added + 1 removed + 1 removed.
	c := &activeAlloc{perPair: map[uint64][]ratedPath{
		pairKey(1, 2): {{nodes: path(1, 3, 2), rate: 5}, {nodes: path(1, 7, 2), rate: 3}},
	}}
	if got := routeChurn(b, c); got != 3 {
		t.Fatalf("swap churn = %d, want 3", got)
	}
	if got := routeChurn(c, nil); got != 0 {
		t.Fatalf("nil next churn = %d, want 0", got)
	}
}

func TestRunOnlineRecordsMetrics(t *testing.T) {
	s := toyScenario(50, 3)
	reg := obs.NewRegistry()
	res, err := s.RunOnline(baselines.ECMPWF{}, OnlineConfig{
		HorizonSec: 10, IntervalSec: 2, StepSec: 2, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("sate_online_recomputes_total").Value(); got != uint64(res.Recomputations) {
		t.Fatalf("recomputes counter = %d, result says %d", got, res.Recomputations)
	}
	if got := reg.Counter("sate_online_route_churn_total").Value(); got != uint64(res.RouteChurn) {
		t.Fatalf("churn counter = %d, result says %d", got, res.RouteChurn)
	}
	if res.RouteChurn == 0 {
		t.Fatal("expected nonzero route churn (initial install counts)")
	}
	sat := reg.Gauge("sate_online_satisfied_ratio").Value()
	if sat < 0 || sat > 1 {
		t.Fatalf("satisfied gauge out of range: %v", sat)
	}
	// The gauge holds exactly the last step's value; require bitwise identity.
	if last := res.Satisfied[len(res.Satisfied)-1]; math.Float64bits(sat) != math.Float64bits(last) {
		t.Fatalf("gauge %v != last step satisfaction %v", sat, last)
	}
	// The allocator's per-solve histogram was fed through the option plumbing.
	if got := reg.HistogramVec("sate_solve_seconds", "solver", nil).With("ecmp-wf").Count(); got != uint64(res.Recomputations) {
		t.Fatalf("solve histogram count = %d, want %d", got, res.Recomputations)
	}
	if got := reg.SpanHistogram(obs.PhasePathPrecompute).Count(); got == 0 {
		t.Fatal("path-precompute span never recorded")
	}
}

func TestRunOnlineNilRegistryUnchanged(t *testing.T) {
	s1 := toyScenario(50, 3)
	s2 := toyScenario(50, 3)
	reg := obs.NewRegistry()
	cfg := OnlineConfig{HorizonSec: 10, IntervalSec: 2, StepSec: 2}
	plain, err := s1.RunOnline(baselines.ECMPWF{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	instr, err := s2.RunOnline(baselines.ECMPWF{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Instrumentation must not perturb results at all — bitwise identity.
	if math.Float64bits(plain.SatisfiedMean) != math.Float64bits(instr.SatisfiedMean) ||
		plain.RouteChurn != instr.RouteChurn {
		t.Fatalf("instrumentation changed results: %+v vs %+v", plain, instr)
	}
}
