package sim

import (
	"math"
	"math/rand"
	"testing"

	"sate/internal/baselines"
	"sate/internal/paths"
	"sate/internal/te"
	"sate/internal/topology"
)

// TestPathValidKindAgnostic pins the invariant that freed pathValid from its
// fabricated-IntraOrbit hack: a configured path is valid whenever every hop
// has a live link, whatever LinkKind the live topology assigns to each hop.
func TestPathValidKindAgnostic(t *testing.T) {
	links := make(topology.LinkSet)
	links.Add(topology.MakeLink(0, 1, topology.IntraOrbit))
	links.Add(topology.MakeLink(1, 2, topology.InterOrbit))
	links.Add(topology.MakeLink(2, 3, topology.CrossShellLaser))
	links.Add(topology.MakeLink(3, 4, topology.GroundRelayLink))

	path := []topology.NodeID{0, 1, 2, 3, 4}
	if !pathValid(path, links) {
		t.Fatal("path over mixed-kind links must be valid")
	}
	if !pathValid([]topology.NodeID{4, 3, 2, 1, 0}, links) {
		t.Fatal("reversed path must be valid (links are undirected)")
	}
	// Fail one mid-path link: the path dies regardless of which kind the
	// hop had or which kind the membership probe uses.
	failed := make(topology.LinkSet)
	for k, l := range links {
		if l.A == 2 && l.B == 3 {
			continue
		}
		failed[k] = l
	}
	if pathValid(path, failed) {
		t.Fatal("path over a failed link must be invalid")
	}
	if pathValid([]topology.NodeID{2, 3}, failed) {
		t.Fatal("single failed hop must be invalid")
	}
	if !pathValid([]topology.NodeID{0, 1, 2}, failed) {
		t.Fatal("prefix avoiding the failed link must stay valid")
	}
}

// fourNodeProblem builds a line topology 0-1-2-3 with one flow 0->3 routed
// over the single path, demand 50 Mbps, link capacity 100 Mbps.
func fourNodeProblem(t *testing.T, kinds []topology.LinkKind) *te.Problem {
	t.Helper()
	p := &te.Problem{
		NumNodes: 4,
		Links: []topology.Link{
			topology.MakeLink(0, 1, kinds[0]),
			topology.MakeLink(1, 2, kinds[1]),
			topology.MakeLink(2, 3, kinds[2]),
		},
		LinkCap: []float64{100, 100, 100},
		Flows: []te.FlowDemand{{
			Src: 0, Dst: 3, DemandMbps: 50,
			Paths: []paths.Path{paths.NewPath(0, 1, 2, 3)},
		}},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFallbackRescoresAgainstFailedTopology exercises the degraded-mode
// policy end to end on a hand-built problem: full delivery while the path
// survives (whatever link kinds the new topology reports), zero once a hop
// fails, demand-capped in between.
func TestFallbackRescoresAgainstFailedTopology(t *testing.T) {
	p0 := fourNodeProblem(t, []topology.LinkKind{
		topology.IntraOrbit, topology.IntraOrbit, topology.IntraOrbit,
	})
	a := te.NewAllocation(p0)
	a.X[0][0] = 50
	fb := NewFallback(p0, a)

	// Same topology, different link kinds: kind must not matter.
	p1 := fourNodeProblem(t, []topology.LinkKind{
		topology.CrossShellLaser, topology.InterOrbit, topology.GroundRelayLink,
	})
	if got := fb.Satisfied(p1, p1.LinkSet()); math.Abs(got-1) > 1e-12 {
		t.Fatalf("surviving path scored %v, want 1", got)
	}

	// Demand doubled: the stale 50 Mbps covers half.
	p2 := fourNodeProblem(t, []topology.LinkKind{
		topology.IntraOrbit, topology.IntraOrbit, topology.IntraOrbit,
	})
	p2.Flows[0].DemandMbps = 100
	if got := fb.Satisfied(p2, p2.LinkSet()); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("doubled-demand score = %v, want 0.5", got)
	}

	// Mid-path link failed: the stale allocation delivers nothing.
	p3 := &te.Problem{
		NumNodes: 4,
		Links: []topology.Link{
			topology.MakeLink(0, 1, topology.IntraOrbit),
			topology.MakeLink(2, 3, topology.IntraOrbit),
		},
		LinkCap: []float64{100, 100},
		Flows: []te.FlowDemand{{
			Src: 0, Dst: 3, DemandMbps: 50,
			Paths: []paths.Path{paths.NewPath(0, 1, 2, 3)},
		}},
	}
	if err := p3.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := fb.Satisfied(p3, p3.LinkSet()); got != 0 {
		t.Fatalf("severed-path score = %v, want 0", got)
	}
}

// TestFallbackOnScenario checks the policy against real scenario problems:
// scoring the allocation against its own problem reproduces SatisfiedDemand,
// and scoring against a heavily failure-injected topology cannot improve it.
func TestFallbackOnScenario(t *testing.T) {
	s := toyScenario(60, 23)
	p0, snap, _, err := s.ProblemAt(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p0.Flows) == 0 {
		t.Skip("no flows at t=10")
	}
	a, err := (baselines.ECMPWF{}).Solve(p0)
	if err != nil {
		t.Fatal(err)
	}
	fb := NewFallback(p0, a)
	self := fb.Satisfied(p0, snap.LinkSet())
	fresh := p0.SatisfiedDemand(a)
	if math.Abs(self-fresh) > 1e-9 {
		t.Fatalf("self-score %v != fresh satisfied %v", self, fresh)
	}
	pf, _, err := s.ProblemWithFailures(10, 0.3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	failed := fb.Satisfied(pf, pf.LinkSet())
	if failed > self+1e-9 {
		t.Fatalf("failure-injected score %v exceeds intact score %v", failed, self)
	}
	if failed < 0 || failed > 1 {
		t.Fatalf("score out of range: %v", failed)
	}
}
