package sim

import (
	"sate/internal/te"
	"sate/internal/topology"
)

// Fallback is the degraded-mode scoring policy of the control center: when a
// TE cycle fails (solver error, timeout, or a failure-injected topology), the
// controller keeps serving its last good allocation, and Fallback re-scores
// that stale allocation against the topology and demand that actually exist
// now. The score uses the same pair-indexed path-validity machinery as the
// online evaluator (satisfiedAgainst / pathValid), so the satisfaction the
// controller reports while degraded is the honest deliverable fraction — not
// the optimistic number computed when the allocation was fresh.
type Fallback struct {
	active *activeAlloc
}

// NewFallback captures a computed allocation for later re-scoring. The
// problem and allocation are indexed once; Satisfied may then be called
// against any number of later (possibly failed) problems.
func NewFallback(p *te.Problem, a *te.Allocation) *Fallback {
	return &Fallback{active: newActiveAlloc(p, a)}
}

// Satisfied scores the captured allocation against the current problem:
// per pair, the deliverable rate is the allocated rate on paths whose every
// hop survives in links, capped by the pair's current demand, summed and
// divided by current total demand. links is typically cur.LinkSet() (the
// possibly failure-injected topology the problem was built from).
func (f *Fallback) Satisfied(cur *te.Problem, links topology.LinkSet) float64 {
	return f.active.satisfiedAgainst(cur, links)
}
