package graphembed

import (
	"math/rand"
	"testing"

	"sate/internal/constellation"
	"sate/internal/topology"
)

func snapAt(t float64) *topology.Snapshot {
	c := constellation.Toy(6, 8)
	return topology.NewGenerator(c, topology.DefaultConfig(topology.CrossShellLasers)).Snapshot(t)
}

func TestEmbedDeterministicAndNormalized(t *testing.T) {
	s := snapAt(0)
	a := Embed(s, 64, 3)
	b := Embed(s, 64, 3)
	if len(a) != 64 {
		t.Fatalf("dim = %d", len(a))
	}
	for i := range a {
		//lint:ignore no-float-equality bitwise determinism is exactly what this test asserts
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
	if c := Cosine(a, a); c < 0.999999 {
		t.Errorf("self cosine = %v", c)
	}
}

func TestEmbedIdenticalTopologiesMatch(t *testing.T) {
	// Same link structure at different times (positions differ) must embed
	// identically: the embedding depends only on connectivity.
	s0 := snapAt(0)
	s1 := snapAt(1)
	if !s0.SameTopology(s1) {
		t.Skip("topology changed within 1 s")
	}
	a, b := Embed(s0, 128, 3), Embed(s1, 128, 3)
	if Cosine(a, b) < 0.999999 {
		t.Error("identical topologies embedded differently")
	}
}

func TestEmbedSeparatesStructures(t *testing.T) {
	gridSnap := snapAt(0)
	// A very different structure: a star graph of the same node count.
	star := &topology.Snapshot{NumSats: gridSnap.NumSats, NumNodes: gridSnap.NumNodes}
	for i := 1; i < star.NumNodes; i++ {
		star.Links = append(star.Links, topology.MakeLink(0, topology.NodeID(i), topology.IntraOrbit))
	}
	star.Finalize()
	simSame := Cosine(Embed(gridSnap, 128, 3), Embed(snapAt(1800), 128, 3))
	simDiff := Cosine(Embed(gridSnap, 128, 3), Embed(star, 128, 3))
	if simDiff >= simSame {
		t.Errorf("star (%v) not separated from drifted grid (%v)", simDiff, simSame)
	}
}

func TestDPPSelectBasics(t *testing.T) {
	vecs := [][]float64{
		{1, 0, 0},
		{0.99, 0.01, 0}, // near-duplicate of 0
		{0, 1, 0},
		{0, 0, 1},
	}
	sel := DPPSelect(vecs, 3)
	if len(sel) != 3 {
		t.Fatalf("selected %d", len(sel))
	}
	// The three orthogonal directions must be preferred over the duplicate:
	// at most one of {0,1} selected.
	both := 0
	for _, i := range sel {
		if i == 0 || i == 1 {
			both++
		}
	}
	if both > 1 {
		t.Errorf("DPP picked near-duplicates: %v", sel)
	}
}

func TestDPPSelectEdgeCases(t *testing.T) {
	vecs := [][]float64{{1, 0}, {0, 1}}
	if got := DPPSelect(vecs, 5); len(got) != 2 {
		t.Errorf("k>n should return all: %v", got)
	}
	if got := DPPSelect(vecs, 0); got != nil {
		t.Errorf("k=0 should return nil: %v", got)
	}
	// Linearly dependent set: selection stops early.
	dup := [][]float64{{1, 0}, {1, 0}, {1, 0}}
	if got := DPPSelect(dup, 3); len(got) < 1 {
		t.Errorf("at least one item should be selected: %v", got)
	}
}

func TestDPPMoreDiverseThanRandom(t *testing.T) {
	// Clustered data: 40 vectors in 4 tight clusters. DPP-selected 4 should
	// cover all clusters far more reliably than random.
	rng := rand.New(rand.NewSource(5))
	var vecs [][]float64
	for c := 0; c < 4; c++ {
		center := make([]float64, 8)
		center[c*2] = 1
		for i := 0; i < 10; i++ {
			v := make([]float64, 8)
			for j := range v {
				v[j] = center[j] + rng.NormFloat64()*0.01
			}
			vecs = append(vecs, v)
		}
	}
	sel := DPPSelect(vecs, 4)
	clusters := map[int]bool{}
	for _, i := range sel {
		clusters[i/10] = true
	}
	if len(clusters) != 4 {
		t.Errorf("DPP covered %d/4 clusters: %v", len(clusters), sel)
	}
}

func TestRandomSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sel := RandomSelect(100, 10, rng)
	if len(sel) != 10 {
		t.Fatalf("selected %d", len(sel))
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatal("invalid or duplicate selection")
		}
		seen[i] = true
	}
	if got := RandomSelect(3, 10, rng); len(got) != 3 {
		t.Errorf("k>n: %v", got)
	}
}

func TestSelectTopologies(t *testing.T) {
	c := constellation.Toy(5, 6)
	gen := topology.NewGenerator(c, topology.DefaultConfig(topology.CrossShellLasers))
	snaps := gen.Series(0, 60, 20)
	sel := SelectTopologies(snaps, 5, 64)
	if len(sel) > 5 || len(sel) == 0 {
		t.Fatalf("selected %d", len(sel))
	}
	for i := 1; i < len(sel); i++ {
		if sel[i] <= sel[i-1] {
			t.Fatal("selection not sorted/unique")
		}
	}
}
