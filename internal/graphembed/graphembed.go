// Package graphembed implements the topology-pruning machinery of Sec. 3.4 /
// Appendix E: a Graph2Vec-style fixed-dimension graph embedding based on
// Weisfeiler-Lehman subtree features (Graph2Vec itself is built on WL
// substructures), and Determinantal-Point-Process sampling via the fast
// greedy MAP algorithm to pick a diverse, representative subset of topology
// snapshots for training.
package graphembed

import (
	"math"
	"math/rand"
	"sort"

	"sate/internal/topology"
)

// DefaultDim is the embedding dimensionality used by the paper (d = 128).
const DefaultDim = 128

// Embed computes a fixed-size vector for a topology snapshot using hashed
// Weisfeiler-Lehman subtree features: node labels start from degrees and are
// iteratively refined by hashing each node's label together with its sorted
// neighbour labels; every label occurrence, at every refinement depth, votes
// into a hash bucket of the output vector. Structurally similar topologies
// share WL substructures and therefore land close in embedding space.
func Embed(s *topology.Snapshot, dim, iterations int) []float64 {
	if dim <= 0 {
		dim = DefaultDim
	}
	if iterations <= 0 {
		iterations = 3
	}
	adj := s.Adjacency()
	n := s.NumNodes
	vec := make([]float64, dim)

	labels := make([]uint64, n)
	for i := 0; i < n; i++ {
		labels[i] = mix(uint64(len(adj[i])) + 0x100)
	}
	vote := func(l uint64) { vec[int(l%uint64(dim))]++ }
	for i := 0; i < n; i++ {
		vote(labels[i])
	}
	next := make([]uint64, n)
	var nb []uint64
	for it := 0; it < iterations; it++ {
		for i := 0; i < n; i++ {
			nb = nb[:0]
			for _, j := range adj[i] {
				nb = append(nb, labels[j])
			}
			sort.Slice(nb, func(a, b int) bool { return nb[a] < nb[b] })
			h := mix(labels[i] ^ 0x9e3779b97f4a7c15)
			for _, l := range nb {
				h = mix(h ^ l)
			}
			next[i] = h
			vote(h)
		}
		labels, next = next, labels
	}
	// L2-normalise so that kernel similarities are cosine-like.
	var norm float64
	for _, v := range vec {
		norm += v * v
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range vec {
			vec[i] /= norm
		}
	}
	return vec
}

// mix is the SplitMix64 finalizer.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Cosine returns the cosine similarity of two equal-length vectors.
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// DPPSelect picks k diverse items from the embedded dataset by greedy MAP
// inference on a determinantal point process with the linear (cosine) kernel
// plus diagonal jitter. It implements the fast O(n·k) incremental-Cholesky
// greedy algorithm: at each step the item with the largest conditional
// determinant gain is added.
func DPPSelect(vectors [][]float64, k int) []int {
	n := len(vectors)
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if k <= 0 {
		return nil
	}
	const jitter = 1e-6
	kernel := func(i, j int) float64 {
		s := Cosine(vectors[i], vectors[j])
		if i == j {
			return 1 + jitter
		}
		return s
	}

	d2 := make([]float64, n) // residual conditional variances
	for i := range d2 {
		d2[i] = kernel(i, i)
	}
	ci := make([][]float64, n) // Cholesky rows, grows by one per step
	selected := make([]int, 0, k)
	used := make([]bool, n)

	for len(selected) < k {
		best, bestVal := -1, -1.0
		for i := 0; i < n; i++ {
			if !used[i] && d2[i] > bestVal {
				best, bestVal = i, d2[i]
			}
		}
		if best < 0 || bestVal <= 1e-12 {
			break // remaining items linearly dependent on the selection
		}
		used[best] = true
		selected = append(selected, best)
		ej := math.Sqrt(d2[best])
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			var dot float64
			for t := range ci[best] {
				dot += ci[best][t] * ci[i][t]
			}
			e := (kernel(best, i) - dot) / ej
			ci[i] = append(ci[i], e)
			d2[i] -= e * e
		}
		ci[best] = append(ci[best], ej)
	}
	sort.Ints(selected)
	return selected
}

// RandomSelect picks k items uniformly at random (the ablation baseline for
// DPP sampling).
func RandomSelect(n, k int, rng *rand.Rand) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	return perm
}

// SelectTopologies embeds every snapshot and DPP-selects k representative
// ones, returning their indices (the end-to-end topology pruning of
// Sec. 3.4).
func SelectTopologies(snaps []*topology.Snapshot, k, dim int) []int {
	vecs := make([][]float64, len(snaps))
	for i, s := range snaps {
		vecs[i] = Embed(s, dim, 3)
	}
	return DPPSelect(vecs, k)
}
