// Package rules implements step 4 of the TE workflow (Sec. 2.2): converting
// a computed traffic allocation into per-satellite traffic rules, the form
// onboard switches load into their flow tables.
//
// Rules are label-switched, one per (flow, candidate path) at each hop — the
// MPLS-style forwarding the paper assumes for preconfigured paths (Sec. 2.2:
// "configure these paths with techniques like MPLS labels"); the total rule
// count is the m*k*E_l of Appendix D. Label switching is required for
// correctness: two candidate paths of one flow may traverse the same link in
// opposite directions, so destination-based merging at nodes would loop.
//
// Verify walks the rule tables from every flow's source and checks that each
// label delivers exactly its allocated rate — how a control center validates
// compiled rules before distribution.
package rules

import (
	"fmt"
	"sort"

	"sate/internal/te"
	"sate/internal/topology"
)

// FlowKey identifies a flow: the source/destination satellite pair of the
// aggregated demand.
type FlowKey struct {
	Src, Dst topology.NodeID
}

// Rule is one label-switched flow-table entry at one node: traffic of Flow
// carrying Label (the candidate-path index) is forwarded to Next at
// RateMbps.
type Rule struct {
	Flow     FlowKey
	Label    int // candidate-path index within the flow
	Next     topology.NodeID
	RateMbps float64
}

// Table is a per-node flow table, sorted for deterministic serialization.
type Table struct {
	Node  topology.NodeID
	Rules []Rule
}

// RuleSet is the compiled network-wide configuration.
type RuleSet struct {
	Tables map[topology.NodeID]*Table
}

// NumRules returns the total rule count across all nodes — the m*k*E_l
// quantity whose distribution overhead Appendix D bounds.
func (rs *RuleSet) NumRules() int {
	n := 0
	for _, t := range rs.Tables {
		n += len(t.Rules)
	}
	return n
}

// Compile converts an allocation into per-node label-switched rules: every
// hop of every path with non-zero allocation becomes one rule.
func Compile(p *te.Problem, a *te.Allocation) *RuleSet {
	rs := &RuleSet{Tables: make(map[topology.NodeID]*Table)}
	for fi := range p.Flows {
		f := &p.Flows[fi]
		key := FlowKey{Src: f.Src, Dst: f.Dst}
		for pi, path := range f.Paths {
			rate := a.X[fi][pi]
			if rate <= 0 {
				continue
			}
			for h := 0; h+1 < len(path.Nodes); h++ {
				node, next := path.Nodes[h], path.Nodes[h+1]
				tbl := rs.Tables[node]
				if tbl == nil {
					tbl = &Table{Node: node}
					rs.Tables[node] = tbl
				}
				tbl.Rules = append(tbl.Rules, Rule{
					Flow: key, Label: pi, Next: next, RateMbps: rate,
				})
			}
		}
	}
	for _, tbl := range rs.Tables {
		sort.Slice(tbl.Rules, func(i, j int) bool {
			a, b := tbl.Rules[i], tbl.Rules[j]
			if a.Flow.Src != b.Flow.Src {
				return a.Flow.Src < b.Flow.Src
			}
			if a.Flow.Dst != b.Flow.Dst {
				return a.Flow.Dst < b.Flow.Dst
			}
			return a.Label < b.Label
		})
	}
	return rs
}

// lookup finds the rule for (flow, label) at a node.
func (rs *RuleSet) lookup(node topology.NodeID, key FlowKey, label int) (Rule, bool) {
	tbl := rs.Tables[node]
	if tbl == nil {
		return Rule{}, false
	}
	for _, r := range tbl.Rules {
		if r.Flow == key && r.Label == label {
			return r, true
		}
	}
	return Rule{}, false
}

// Verify walks every allocated (flow, path) label from its source hop by hop
// and checks that the rules forward it along the configured path at exactly
// the allocated rate, terminating at the destination. It returns the first
// inconsistency found.
func Verify(p *te.Problem, a *te.Allocation, rs *RuleSet) error {
	const tol = 1e-6
	const maxHops = 1 << 16 // loop guard
	for fi := range p.Flows {
		f := &p.Flows[fi]
		key := FlowKey{Src: f.Src, Dst: f.Dst}
		for pi := range f.Paths {
			rate := a.X[fi][pi]
			if rate <= 0 {
				continue
			}
			node := f.Src
			hops := 0
			for node != f.Dst {
				r, ok := rs.lookup(node, key, pi)
				if !ok {
					return fmt.Errorf("rules: flow %d->%d label %d: no rule at node %d",
						f.Src, f.Dst, pi, node)
				}
				if diff := r.RateMbps - rate; diff > tol || diff < -tol {
					return fmt.Errorf("rules: flow %d->%d label %d at node %d: rate %.6f, allocated %.6f",
						f.Src, f.Dst, pi, node, r.RateMbps, rate)
				}
				node = r.Next
				if hops++; hops > maxHops {
					return fmt.Errorf("rules: flow %d->%d label %d: forwarding loop", f.Src, f.Dst, pi)
				}
			}
			// The rules must also trace the configured path exactly.
			if hops != f.Paths[pi].Hops() {
				return fmt.Errorf("rules: flow %d->%d label %d: %d hops, path has %d",
					f.Src, f.Dst, pi, hops, f.Paths[pi].Hops())
			}
		}
	}
	return nil
}

// LinkLoadsFromRules recomputes per-link loads by summing rule rates over
// links — an independent cross-check against te.Problem.LinkLoads.
func LinkLoadsFromRules(p *te.Problem, rs *RuleSet) map[uint64]float64 {
	loads := make(map[uint64]float64)
	// Visit tables in sorted node order: the per-link float sums must not
	// depend on map iteration order or the cross-check itself becomes a
	// source of run-to-run jitter.
	nodes := make([]topology.NodeID, 0, len(rs.Tables))
	for node := range rs.Tables {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, node := range nodes {
		tbl := rs.Tables[node]
		for _, r := range tbl.Rules {
			l := topology.MakeLink(tbl.Node, r.Next, topology.IntraOrbit)
			loads[uint64(l.A)<<32|uint64(uint32(l.B))] += r.RateMbps
		}
	}
	return loads
}
