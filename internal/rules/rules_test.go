package rules_test

import (
	"math/rand"
	"testing"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/paths"
	"sate/internal/rules"
	"sate/internal/sim"
	"sate/internal/te"
	"sate/internal/topology"
)

// diamond: flow 0->3 over two 2-hop paths.
func diamond(demand float64) *te.Problem {
	links := []topology.Link{
		topology.MakeLink(0, 1, topology.IntraOrbit),
		topology.MakeLink(1, 3, topology.IntraOrbit),
		topology.MakeLink(0, 2, topology.IntraOrbit),
		topology.MakeLink(2, 3, topology.IntraOrbit),
	}
	p := &te.Problem{
		NumNodes: 4,
		Links:    links,
		LinkCap:  []float64{10, 10, 10, 10},
		Flows: []te.FlowDemand{{
			Src: 0, Dst: 3, DemandMbps: demand,
			Paths: []paths.Path{paths.NewPath(0, 1, 3), paths.NewPath(0, 2, 3)},
		}},
	}
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

func TestCompileDiamond(t *testing.T) {
	p := diamond(30)
	a := te.NewAllocation(p)
	a.X[0][0] = 10
	a.X[0][1] = 5

	rs := rules.Compile(p, a)
	// Node 0 carries both labels: label 0 (rate 10) to node 1, label 1
	// (rate 5) to node 2.
	t0 := rs.Tables[0]
	if t0 == nil || len(t0.Rules) != 2 {
		t.Fatalf("node 0 table: %+v", t0)
	}
	if t0.Rules[0].Label != 0 || t0.Rules[0].Next != 1 || t0.Rules[0].RateMbps != 10 {
		t.Errorf("node 0 rule 0: %+v", t0.Rules[0])
	}
	if t0.Rules[1].Label != 1 || t0.Rules[1].Next != 2 || t0.Rules[1].RateMbps != 5 {
		t.Errorf("node 0 rule 1: %+v", t0.Rules[1])
	}
	// Nodes 1 and 2 forward their label to 3.
	for _, n := range []topology.NodeID{1, 2} {
		tbl := rs.Tables[n]
		if tbl == nil || len(tbl.Rules) != 1 || tbl.Rules[0].Next != 3 {
			t.Errorf("node %d table: %+v", n, tbl)
		}
	}
	// The destination has no forwarding rules.
	if rs.Tables[3] != nil {
		t.Errorf("destination has rules: %+v", rs.Tables[3])
	}
	if rs.NumRules() != 4 {
		t.Errorf("rule count = %d want 4", rs.NumRules())
	}
	if err := rules.Verify(p, a, rs); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestCompileLabelsStayDistinct(t *testing.T) {
	// Two paths of one flow sharing their first hop must remain separate
	// labelled rules (label switching preserves path identity).
	links := []topology.Link{
		topology.MakeLink(0, 1, topology.IntraOrbit),
		topology.MakeLink(1, 2, topology.IntraOrbit),
		topology.MakeLink(1, 3, topology.IntraOrbit),
		topology.MakeLink(2, 4, topology.IntraOrbit),
		topology.MakeLink(3, 4, topology.IntraOrbit),
	}
	p := &te.Problem{
		NumNodes: 5,
		Links:    links,
		LinkCap:  []float64{100, 100, 100, 100, 100},
		Flows: []te.FlowDemand{{
			Src: 0, Dst: 4, DemandMbps: 20,
			Paths: []paths.Path{paths.NewPath(0, 1, 2, 4), paths.NewPath(0, 1, 3, 4)},
		}},
	}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	a := te.NewAllocation(p)
	a.X[0][0] = 7
	a.X[0][1] = 3
	rs := rules.Compile(p, a)
	t0 := rs.Tables[0]
	if len(t0.Rules) != 2 {
		t.Fatalf("node 0 should carry both labels: %+v", t0.Rules)
	}
	// Node 1 forwards label 0 to node 2 (rate 7) and label 1 to node 3 (3).
	t1 := rs.Tables[1]
	if len(t1.Rules) != 2 || t1.Rules[0].Next != 2 || t1.Rules[0].RateMbps != 7 ||
		t1.Rules[1].Next != 3 || t1.Rules[1].RateMbps != 3 {
		t.Fatalf("node 1 rules: %+v", t1.Rules)
	}
	if err := rules.Verify(p, a, rs); err != nil {
		t.Errorf("verify: %v", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	p := diamond(30)
	a := te.NewAllocation(p)
	a.X[0][0] = 10
	rs := rules.Compile(p, a)
	// Corrupt: node 1 halves the rate of its rule.
	rs.Tables[1].Rules[0].RateMbps = 5
	if err := rules.Verify(p, a, rs); err == nil {
		t.Error("corrupted rules passed verification")
	}
}

func TestCompileZeroAllocation(t *testing.T) {
	p := diamond(30)
	a := te.NewAllocation(p)
	rs := rules.Compile(p, a)
	if rs.NumRules() != 0 {
		t.Errorf("zero allocation produced %d rules", rs.NumRules())
	}
	if err := rules.Verify(p, a, rs); err != nil {
		t.Errorf("verify empty: %v", err)
	}
}

func TestCompileEndToEndScenario(t *testing.T) {
	// Full pipeline: scenario -> LP allocation -> rules -> conservation.
	s := sim.NewScenario(constellation.Toy(5, 6), sim.ScenarioConfig{
		Mode:              topology.CrossShellLasers,
		Intensity:         6,
		Seed:              3,
		MinElevDeg:        5,
		FlowDurationScale: 0.05,
	})
	p, _, _, err := s.ProblemAt(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) == 0 {
		t.Skip("no flows")
	}
	a, err := (baselines.LPAuto{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	rs := rules.Compile(p, a)
	if err := rules.Verify(p, a, rs); err != nil {
		t.Fatalf("end-to-end rule verification: %v", err)
	}
	if rs.NumRules() == 0 {
		t.Error("no rules compiled from a non-zero allocation")
	}
}

func TestCompileLinkLoadsMatchProperty(t *testing.T) {
	// Property: for any feasible allocation, link loads recomputed from the
	// compiled rules equal the problem's own link-load accounting.
	s := sim.NewScenario(constellation.Toy(5, 6), sim.ScenarioConfig{
		Mode:              topology.CrossShellLasers,
		Intensity:         6,
		Seed:              5,
		MinElevDeg:        5,
		FlowDurationScale: 0.05,
	})
	p, _, _, err := s.ProblemAt(120)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Flows) == 0 {
		t.Skip("no flows")
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		a := te.NewAllocation(p)
		for fi := range a.X {
			for pi := range a.X[fi] {
				a.X[fi][pi] = rng.Float64() * 100
			}
		}
		p.Trim(a) // make it feasible (and clamp negatives)
		rs := rules.Compile(p, a)
		if err := rules.Verify(p, a, rs); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fromRules := rules.LinkLoadsFromRules(p, rs)
		wantLoads := p.LinkLoads(a)
		for li, l := range p.Links {
			key := uint64(l.A)<<32 | uint64(uint32(l.B))
			got := fromRules[key]
			if diff := got - wantLoads[li]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("trial %d link %d: rules %v, problem %v", trial, li, got, wantLoads[li])
			}
		}
	}
}
