package controller

import (
	"context"
	"errors"
	"sync"
)

// errBusy is returned by the admission gate when the pending batch is full;
// handleRecompute translates it into 429 Too Many Requests + Retry-After.
var errBusy = errors.New("controller: recompute queue full")

// DefaultRecomputeQueue bounds how many requests may wait in the pending
// batch behind an in-flight solve before new arrivals are rejected.
const DefaultRecomputeQueue = 64

// gateBatch is one coalesced group of /recompute requests: all of them are
// answered by a single solve at the maximum requested simulated time.
type gateBatch struct {
	timeSec float64
	waiters int
	// lead carries the leadership token (capacity 1): when the in-flight
	// solve finishes, exactly one waiter of the promoted batch receives it
	// and runs the batch's solve. Waiters never abandon the select on
	// lead/done, so the token is always consumed and the chain never stalls.
	lead chan struct{}
	// done is closed by the batch leader after its solve; err is the solve's
	// result, valid once done is closed.
	done chan struct{}
	err  error
}

// recomputeGate is the admission-control state for POST /recompute:
// at most one solve in flight, at most one pending batch coalescing
// every request that arrived while it runs, and a bound on batch size.
// This shapes *external* request load; the internal RecomputeContext API
// keeps its serialized first-come-first-served semantics.
type recomputeGate struct {
	mu       sync.Mutex
	inflight bool
	pending  *gateBatch
}

// recomputeAdmit runs one admission-controlled recompute at tSec:
// if no solve is in flight the caller leads immediately; otherwise it joins
// (or opens) the pending batch and either waits for the batch's result or
// is promoted to run the batch itself. Returns errBusy when the batch is
// already at the queue bound. coalesced reports whether the request shared
// its solve with other batched requests.
func (s *Server) recomputeAdmit(ctx context.Context, tSec float64) (coalesced bool, err error) {
	g := &s.gate
	g.mu.Lock()
	if !g.inflight {
		g.inflight = true
		g.mu.Unlock()
		err = s.recomputeDetached(ctx, tSec)
		s.gatePromote()
		return false, err
	}
	b := g.pending
	if b == nil {
		b = &gateBatch{timeSec: tSec, lead: make(chan struct{}, 1), done: make(chan struct{})}
		g.pending = b
	} else {
		if b.waiters >= s.maxQueue {
			g.mu.Unlock()
			s.metrics.rejected.Inc()
			return false, errBusy
		}
		// Coalesce to the newest simulated time: serving t=200 satisfies a
		// request for t=100 (the monotonic publish guard would drop the
		// older result anyway).
		if tSec > b.timeSec {
			b.timeSec = tSec
		}
	}
	b.waiters++
	g.mu.Unlock()

	select {
	case <-b.done:
		// Another member of the batch led the solve.
		s.metrics.coalesced.Inc()
		return true, b.err
	case <-b.lead:
		b.err = s.recomputeDetached(ctx, b.timeSec)
		close(b.done)
		s.gatePromote()
		if b.waiters > 1 {
			s.metrics.coalesced.Inc()
			return true, b.err
		}
		return false, b.err
	}
}

// recomputeDetached runs one cycle detached from the request's cancellation:
// a coalesced solve answers many clients, so one disconnecting must not
// abandon it (request values stay attached for tracing).
func (s *Server) recomputeDetached(ctx context.Context, tSec float64) error {
	return s.recompute(context.WithoutCancel(ctx), tSec, 0, nil)
}

// gatePromote hands leadership to the pending batch (or opens the gate when
// none is waiting). Called by whichever goroutine just finished a solve.
func (s *Server) gatePromote() {
	g := &s.gate
	g.mu.Lock()
	b := g.pending
	g.pending = nil
	if b == nil {
		g.inflight = false
		g.mu.Unlock()
		return
	}
	g.mu.Unlock()
	b.lead <- struct{}{}
}
