// Package controller implements the TE control center of Fig. 3 as an HTTP
// service: it periodically builds the TE problem from the live scenario
// state, computes an allocation with a pluggable solver (SaTE or any
// baseline), compiles it into per-satellite rules, and serves status,
// allocations and flow tables over JSON — the interface satellites (or an
// operator) would poll in the SDN workflow of Sec. 2.2.
//
// The serving side is built for high QPS (DESIGN.md §14): every publish
// produces an immutable Snapshot with pre-encoded JSON bodies, swapped in
// through one atomic pointer, so read endpoints take zero locks and perform
// zero allocations. The HTTP surface is versioned under /v1/ (/v1/status,
// /v1/allocation, /v1/rules, /v1/deltas) with the pre-redesign paths kept
// as aliases; snapshot versions double as strong ETags so pollers sending
// If-None-Match get cheap 304s. Rule updates for satellites are served as a
// sequence-numbered delta changelog (internal/ruledist) on /v1/deltas, and
// POST /recompute is admission-controlled: concurrent requests coalesce
// into one solve and a full pending batch is answered 429 + Retry-After.
//
// With a registry attached (WithRegistry), the server also exposes
// Prometheus-text metrics on GET /metrics and the standard pprof profiles
// under /debug/pprof/ (DESIGN.md §9). Neither endpoint spawns goroutines:
// metrics are pulled at scrape time and pprof handlers run on the serving
// goroutine, so no satelint no-naked-goroutine allowlist entry is needed.
package controller

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sate/internal/obs"
	"sate/internal/ruledist"
	"sate/internal/rules"
	"sate/internal/sim"
	"sate/internal/solve"
	"sate/internal/te"
	"sate/internal/topology"
)

// Server is the control-center state machine plus its HTTP handlers.
type Server struct {
	scen   *sim.Scenario
	solver sim.Allocator

	registry   *obs.Registry
	metrics    srvObs
	solverOpts []solve.Option // pre-built so Recompute passes opts without allocating

	deltaHistory int // changelog window before compaction (WithDeltaHistory)
	maxQueue     int // pending /recompute batch bound (WithRecomputeQueue)

	// computeMu serializes whole TE cycles: the scenario (traffic process,
	// path DB) is single-writer state, and two racing /recompute requests
	// must not interleave phases. Everything below it is written only with
	// computeMu held.
	computeMu sync.Mutex
	// deg is the current failure streak; a copy travels inside every
	// published snapshot so readers never touch this field.
	deg degradedInfo
	// fb lazily re-scores the live snapshot's allocation against failed
	// cycles' topologies; reset on every good publish.
	fb *sim.Fallback

	// snap is the live published snapshot: single writer (under computeMu),
	// lock-free readers. nil until the first successful cycle.
	snap atomic.Pointer[Snapshot]
	// log is the rule-delta changelog behind /v1/deltas; appends happen on
	// the publish path, reads are lock-free.
	log *ruledist.Changelog

	// gate is the /recompute admission-control state (admission.go).
	gate recomputeGate
}

// degradedInfo is the controller's failure-mode state. The authoritative
// copy lives on Server (computeMu); published snapshots carry a value copy.
type degradedInfo struct {
	// Failures counts consecutive failed cycles; 0 means healthy.
	Failures int
	// LastError is the message of the most recent failed cycle.
	LastError string
	// Satisfied is the last-good allocation re-scored against the topology
	// of the most recent failed cycle (honest degraded satisfaction); valid
	// only when SatisfiedOK.
	Satisfied   float64
	SatisfiedOK bool
	// Since is when the controller entered degraded mode.
	Since time.Time
}

// srvObs bundles the controller's metric handles, pre-resolved at New so the
// recompute path performs only atomic updates. Every handle is nil — and
// every update a no-op — when no registry is attached.
type srvObs struct {
	cycleSeconds *obs.Histogram
	cyclesTotal  *obs.Counter
	errorsTotal  *obs.Counter
	encodeErrors *obs.Counter
	satisfied    *obs.Gauge
	throughput   *obs.Gauge
	mlu          *obs.Gauge
	flows        *obs.Gauge
	rulesCount   *obs.Gauge
	cycleAlloc   *obs.Gauge
	spPaths      *obs.Histogram
	spRules      *obs.Histogram

	// Failure-mode metrics (DESIGN.md §10). degraded is 0/1; consecFails
	// tracks the current failure streak; retriesTotal counts backoff
	// re-attempts in the run loop; fallbackTotal counts failed cycles served
	// from the last good allocation; skippedTotal counts ticker intervals
	// that got no cycle because the previous one outran the cadence;
	// canceledTotal counts cycles abandoned by clean context cancellation
	// (NOT errors); monotonicDrops counts completed cycles whose publication
	// was dropped because newer state was already live.
	degraded       *obs.Gauge
	consecFails    *obs.Gauge
	retriesTotal   *obs.Counter
	fallbackTotal  *obs.Counter
	skippedTotal   *obs.Counter
	canceledTotal  *obs.Counter
	monotonicDrops *obs.Counter

	// Serving-layer metrics (DESIGN.md §14). publishes counts snapshot
	// swaps (good cycles and degraded re-publishes); snapVersion /
	// rulesVersionG export the live versions; http304 counts conditional
	// polls answered 304; coalesced counts /recompute requests that shared
	// a batched solve; rejected counts 429s from the full pending batch;
	// deltasReqs / fullSyncs count /v1/deltas traffic and how often a
	// client was behind the compaction window.
	publishes     *obs.Counter
	snapVersion   *obs.Gauge
	rulesVersionG *obs.Gauge
	http304       *obs.Counter
	coalesced     *obs.Counter
	rejected      *obs.Counter
	deltasReqs    *obs.Counter
	fullSyncs     *obs.Counter
}

func newSrvObs(reg *obs.Registry) srvObs {
	return srvObs{
		cycleSeconds: reg.Histogram("sate_controld_cycle_seconds", obs.DefLatencyBuckets),
		cyclesTotal:  reg.Counter("sate_controld_cycles_total"),
		errorsTotal:  reg.Counter("sate_controld_errors_total"),
		encodeErrors: reg.Counter("sate_controld_encode_errors_total"),
		satisfied:    reg.Gauge("sate_controld_satisfied_ratio"),
		throughput:   reg.Gauge("sate_controld_throughput_mbps"),
		mlu:          reg.Gauge("sate_controld_mlu"),
		flows:        reg.Gauge("sate_controld_flows"),
		rulesCount:   reg.Gauge("sate_controld_rules"),
		cycleAlloc:   reg.Gauge("sate_controld_cycle_alloc_bytes"),
		spPaths:      reg.SpanHistogram(obs.PhasePathPrecompute),
		spRules:      reg.SpanHistogram(obs.PhaseRuleCompile),

		degraded:       reg.Gauge("sate_controld_degraded"),
		consecFails:    reg.Gauge("sate_controld_consecutive_failures"),
		retriesTotal:   reg.Counter("sate_controld_retries_total"),
		fallbackTotal:  reg.Counter("sate_controld_fallback_cycles_total"),
		skippedTotal:   reg.Counter("sate_controld_skipped_cycles_total"),
		canceledTotal:  reg.Counter("sate_controld_canceled_cycles_total"),
		monotonicDrops: reg.Counter("sate_controld_nonmonotonic_drops_total"),

		publishes:     reg.Counter("sate_controld_snapshot_publishes_total"),
		snapVersion:   reg.Gauge("sate_controld_snapshot_version"),
		rulesVersionG: reg.Gauge("sate_controld_rules_version"),
		http304:       reg.Counter("sate_controld_http_304_total"),
		coalesced:     reg.Counter("sate_controld_recompute_coalesced_total"),
		rejected:      reg.Counter("sate_controld_recompute_rejected_total"),
		deltasReqs:    reg.Counter("sate_controld_deltas_requests_total"),
		fullSyncs:     reg.Counter("sate_controld_delta_full_syncs_total"),
	}
}

// Option configures a Server at construction.
type Option func(*Server)

// WithRegistry attaches an observability registry: per-cycle latency
// histogram and heap-allocation gauge, satisfied-demand / throughput / MLU
// gauges, error counters, the /metrics endpoint, and the per-solve
// histograms recorded by the solver itself. Nil leaves instrumentation off.
func WithRegistry(r *obs.Registry) Option {
	return func(s *Server) { s.registry = r }
}

// WithSolverOptions appends solve options passed on every cycle's Solve
// call — e.g. solve.WithDtype(solve.Float32) for the low-precision
// inference path, or solve.WithWarm(&core.CycleState{}) for cross-cycle
// warm starts. Cycles are serialized on an internal mutex, so one warm
// state attached here is never used by two solves at once.
func WithSolverOptions(opts ...solve.Option) Option {
	return func(s *Server) { s.solverOpts = append(s.solverOpts, opts...) }
}

// WithDeltaHistory sets how many rule-set versions the delta changelog
// retains before compaction (<= 0 selects ruledist.DefaultHistory). A
// client polling /v1/deltas from a version behind the window gets a full
// resync instead of deltas.
func WithDeltaHistory(n int) Option {
	return func(s *Server) { s.deltaHistory = n }
}

// WithRecomputeQueue bounds how many POST /recompute requests may wait in
// the pending coalescing batch behind an in-flight solve; further arrivals
// get 429 + Retry-After (<= 0 selects DefaultRecomputeQueue).
func WithRecomputeQueue(n int) Option {
	return func(s *Server) { s.maxQueue = n }
}

// New creates a controller over a scenario with the given solver. The
// variadic options keep pre-redesign `New(scen, solver)` call sites
// compiling unchanged.
func New(scen *sim.Scenario, solver sim.Allocator, opts ...Option) *Server {
	s := &Server{scen: scen, solver: solver}
	for _, o := range opts {
		o(s)
	}
	if s.maxQueue <= 0 {
		s.maxQueue = DefaultRecomputeQueue
	}
	s.log = ruledist.NewChangelog(s.deltaHistory)
	s.metrics = newSrvObs(s.registry)
	if s.registry != nil {
		s.solverOpts = append([]solve.Option{solve.WithRegistry(s.registry)}, s.solverOpts...)
	}
	return s
}

// Changelog exposes the rule-delta changelog (for harnesses and tests that
// replay catch-up client-side).
func (s *Server) Changelog() *ruledist.Changelog { return s.log }

// Registry returns the attached observability registry (nil if none).
func (s *Server) Registry() *obs.Registry { return s.registry }

// Recompute runs one full TE workflow cycle at simulated time t.
//
// Deprecated: Recompute is the pre-redesign spelling; it is equivalent to
// RecomputeContext(context.Background(), tSec) and remains a supported thin
// wrapper.
func (s *Server) Recompute(tSec float64) error {
	return s.RecomputeContext(context.Background(), tSec)
}

// RecomputeContext runs one full TE workflow cycle at simulated time t:
// traffic matrix acquisition, topology determination, path
// (re)configuration, TE computation, and rule compilation. Cancelling the
// context abandons the cycle between phases (a phase in flight runs to
// completion — the solver is not preemptible).
//
// Cycles are serialized: concurrent calls queue on an internal mutex, and a
// completed cycle at an older simulated time than the published state is
// dropped at publication (sate_controld_nonmonotonic_drops_total) rather
// than rolling the served allocation backwards.
//
// A real cycle failure counts on sate_controld_errors_total and flips the
// controller into degraded mode (the last good allocation keeps being
// served, re-scored honestly when the failed cycle produced a topology). A
// context cancellation is NOT an error: it counts only on
// sate_controld_canceled_cycles_total, so a graceful shutdown or a client
// disconnect mid-solve leaves the error counter and degraded state alone.
func (s *Server) RecomputeContext(ctx context.Context, tSec float64) error {
	return s.recompute(ctx, tSec, 0, nil)
}

// recompute is the serialized cycle entry point shared by RecomputeContext
// and the chaos-mode run loop (failFrac > 0 routes topology determination
// through failure injection).
func (s *Server) recompute(ctx context.Context, tSec, failFrac float64, chaos *rand.Rand) error {
	s.computeMu.Lock()
	defer s.computeMu.Unlock()
	m := &s.metrics
	cur, err := s.cycleLocked(ctx, tSec, failFrac, chaos)
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) {
		m.canceledTotal.Inc()
		return err
	}
	m.errorsTotal.Inc()
	s.markDegraded(err, cur)
	return err
}

// cycleLocked runs the five workflow phases and publishes the result. It
// returns the cycle's problem even on failure when topology determination
// succeeded, so the caller can re-score the stale allocation against it.
func (s *Server) cycleLocked(ctx context.Context, tSec, failFrac float64, chaos *rand.Rand) (*te.Problem, error) {
	m := &s.metrics
	var memBefore runtime.MemStats
	if s.registry != nil {
		runtime.ReadMemStats(&memBefore)
	}
	cycle := obs.StartTimer(m.cycleSeconds)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := obs.StartTimer(m.spPaths)
	var (
		p   *te.Problem
		err error
	)
	if chaos != nil && failFrac > 0 {
		p, _, err = s.scen.ProblemWithFailures(tSec, failFrac, chaos)
	} else {
		p, _, _, err = s.scen.ProblemAt(tSec)
	}
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("controller: building problem: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return p, err
	}
	start := time.Now()
	alloc, err := s.solver.Solve(p, s.solverOpts...)
	lat := time.Since(start)
	if err != nil {
		return p, fmt.Errorf("controller: solving: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return p, err
	}
	sp = obs.StartTimer(m.spRules)
	rs := rules.Compile(p, alloc)
	if err := rules.Verify(p, alloc, rs); err != nil {
		sp.End()
		return p, fmt.Errorf("controller: rule verification: %w", err)
	}
	sp.End()
	cycle.End()
	m.cyclesTotal.Inc()

	// Publish (snapshot.go): copy-on-publish under the monotonic-time guard
	// — a slower cycle that started earlier but computed an OLDER simulated
	// time must not overwrite newer published state (or its gauges).
	if !s.publish(tSec, p, alloc, rs, lat) {
		m.monotonicDrops.Inc()
		return p, nil
	}
	s.deg = degradedInfo{}

	m.degraded.Set(0)
	m.consecFails.Set(0)
	m.satisfied.Set(p.SatisfiedDemand(alloc))
	m.throughput.Set(alloc.Throughput())
	m.mlu.Set(p.MLU(alloc))
	m.flows.Set(float64(len(p.Flows)))
	m.rulesCount.Set(float64(rs.NumRules()))
	if s.registry != nil {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		m.cycleAlloc.Set(float64(memAfter.TotalAlloc - memBefore.TotalAlloc))
	}
	return p, nil
}

// markDegraded records a failed cycle: it bumps the consecutive-failure
// streak, and when the failed cycle got far enough to produce a topology it
// re-scores the last good allocation against that topology so /status and
// the satisfied-ratio gauge report what the stale rules can actually deliver
// (sim.Fallback, DESIGN.md §10). The updated degraded info is re-published
// as a new snapshot version so conditional pollers observe the transition.
// Called with computeMu held.
func (s *Server) markDegraded(cause error, cur *te.Problem) {
	m := &s.metrics
	if s.deg.Failures == 0 {
		s.deg.Since = time.Now()
	}
	s.deg.Failures++
	s.deg.LastError = cause.Error()
	sn := s.snap.Load()
	sat := math.NaN()
	if cur != nil && sn != nil {
		if s.fb == nil {
			s.fb = sim.NewFallback(sn.Problem, sn.Alloc)
		}
		sat = s.fb.Satisfied(cur, cur.LinkSet())
		s.deg.Satisfied = sat
		s.deg.SatisfiedOK = true
	}
	s.publishDegraded(s.deg)

	m.degraded.Set(1)
	m.consecFails.Set(float64(s.deg.Failures))
	if sn != nil {
		m.fallbackTotal.Inc()
	}
	if !math.IsNaN(sat) {
		m.satisfied.Set(sat)
	}
}

// Handler returns the HTTP routes: the versioned surface under /v1/
// (/v1/status, /v1/allocation, /v1/rules, /v1/deltas, /v1/recompute) plus
// the pre-redesign paths as aliases (legacy /rules keeps requiring ?node=;
// /v1/rules without it returns the full table dump). With a registry
// attached it additionally serves GET /metrics (Prometheus text format
// 0.0.4) and the pprof profile endpoints under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		// A failed write to a health-check client is not actionable.
		_, _ = fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/allocation", s.handleAllocation)
	mux.HandleFunc("GET /v1/rules", s.handleRulesV1)
	mux.HandleFunc("GET /v1/deltas", s.handleDeltas)
	mux.HandleFunc("POST /v1/recompute", s.handleRecompute)
	// Legacy aliases.
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /allocation", s.handleAllocation)
	mux.HandleFunc("GET /rules", s.handleRulesLegacy)
	mux.HandleFunc("POST /recompute", s.handleRecompute)
	if s.registry != nil {
		mux.Handle("GET /metrics", s.registry.Handler())
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// etagMatch reports whether an If-None-Match header value matches the
// snapshot's strong ETag (`*`, or any listed tag, W/ prefixes tolerated).
func etagMatch(header, etag string) bool {
	if header == "*" {
		return true
	}
	for header != "" {
		tok := header
		if i := strings.IndexByte(header, ','); i >= 0 {
			tok, header = header[:i], header[i+1:]
		} else {
			header = ""
		}
		tok = strings.TrimSpace(tok)
		tok = strings.TrimPrefix(tok, "W/")
		if tok == etag {
			return true
		}
	}
	return false
}

// serveCached answers a read endpoint from a snapshot's pre-encoded body:
// ETag always set, If-None-Match answered 304 without touching the body. A
// short write is counted on sate_controld_encode_errors_total (the client
// detects it via truncation; nothing else is actionable server-side).
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, sn *Snapshot, body []byte) {
	h := w.Header()
	h.Set("ETag", sn.etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, sn.etag) {
		s.metrics.http304.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(body); err != nil {
		s.metrics.encodeErrors.Inc()
	}
}

// writeJSON commits a 200 with an explicit status line before encoding. A
// mid-encode failure can no longer smuggle an http.Error into a half-written
// body (the old bug: Encode had already streamed partial JSON and an
// implicit 200 before the 500 was attempted); instead the failure is counted
// on sate_controld_encode_errors_total and the connection is left to the
// client to detect via truncation.
func (s *Server) writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.metrics.encodeErrors.Inc()
	}
}

// StatusResponse is the /status payload. While degraded, the served
// allocation is the last good one (stale): Degraded is true, SatisfiedFrac
// is the stale allocation re-scored against the most recent failed cycle's
// topology (when that cycle produced one), and ConsecutiveFailures /
// LastError / DegradedSinceUnix describe the failure streak.
type StatusResponse struct {
	Method          string  `json:"method"`
	Version         uint64  `json:"version"`
	RulesVersion    uint64  `json:"rules_version"`
	TimeSec         float64 `json:"time_sec"`
	Flows           int     `json:"flows"`
	TotalDemandMbps float64 `json:"total_demand_mbps"`
	ThroughputMbps  float64 `json:"throughput_mbps"`
	SatisfiedFrac   float64 `json:"satisfied_frac"`
	MLU             float64 `json:"mlu"`
	SolveLatencyMs  float64 `json:"solve_latency_ms"`
	NumRules        int     `json:"num_rules"`
	ComputedAtUnix  int64   `json:"computed_at_unix"`

	Degraded            bool   `json:"degraded"`
	ConsecutiveFailures int    `json:"consecutive_failures,omitempty"`
	LastError           string `json:"last_error,omitempty"`
	DegradedSinceUnix   int64  `json:"degraded_since_unix,omitempty"`
}

// handleStatus serves the cached status body of the live snapshot — the
// pre-redesign handler re-marshalled the full payload on every poll; it is
// now encoded once at publish time.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sn := s.Current()
	if sn == nil {
		http.Error(w, "no allocation computed yet", http.StatusServiceUnavailable)
		return
	}
	s.serveCached(w, r, sn, sn.statusJSON)
}

// AllocationEntry is one flow's allocation in the /allocation payload.
type AllocationEntry struct {
	Src        int       `json:"src"`
	Dst        int       `json:"dst"`
	DemandMbps float64   `json:"demand_mbps"`
	RateMbps   float64   `json:"rate_mbps"`
	PerPath    []float64 `json:"per_path_mbps"`
}

func (s *Server) handleAllocation(w http.ResponseWriter, r *http.Request) {
	sn := s.Current()
	if sn == nil {
		http.Error(w, "no allocation computed yet", http.StatusServiceUnavailable)
		return
	}
	s.serveCached(w, r, sn, sn.allocJSON)
}

// RuleEntry is one flow-table row in the /rules payload.
type RuleEntry struct {
	Src      int     `json:"src"`
	Dst      int     `json:"dst"`
	Label    int     `json:"label"`
	Next     int     `json:"next"`
	RateMbps float64 `json:"rate_mbps"`
}

// handleRulesV1 serves GET /v1/rules: without ?node= the full pre-encoded
// table dump (RulesResponse), with ?node= one satellite's flow table.
func (s *Server) handleRulesV1(w http.ResponseWriter, r *http.Request) {
	sn := s.Current()
	if sn == nil {
		http.Error(w, "no allocation computed yet", http.StatusServiceUnavailable)
		return
	}
	if r.URL.Query().Get("node") == "" {
		s.serveCached(w, r, sn, sn.rulesJSON)
		return
	}
	s.serveNodeRules(w, r, sn)
}

// handleRulesLegacy serves the pre-redesign GET /rules contract, where
// ?node=<id> is mandatory.
func (s *Server) handleRulesLegacy(w http.ResponseWriter, r *http.Request) {
	sn := s.Current()
	if sn == nil {
		http.Error(w, "no allocation computed yet", http.StatusServiceUnavailable)
		return
	}
	if r.URL.Query().Get("node") == "" {
		http.Error(w, "missing ?node=<id>", http.StatusBadRequest)
		return
	}
	s.serveNodeRules(w, r, sn)
}

func (s *Server) serveNodeRules(w http.ResponseWriter, r *http.Request, sn *Snapshot) {
	node, err := strconv.Atoi(r.URL.Query().Get("node"))
	if err != nil || node < 0 || node >= sn.Problem.NumNodes {
		http.Error(w, "invalid node id", http.StatusBadRequest)
		return
	}
	out := []RuleEntry{}
	if tbl := sn.Rules.Tables[topology.NodeID(node)]; tbl != nil {
		out = ruleEntries(tbl)
	}
	w.Header().Set("ETag", sn.etag)
	s.writeJSON(w, out)
}

// DeltasResponse is the GET /v1/deltas payload. Either Deltas carries the
// versions Since+1 .. Latest to apply in order, or FullSync is set and Full
// is the complete latest rule table dump (the client's version predates the
// compaction window). An up-to-date client gets both empty.
type DeltasResponse struct {
	Since    uint64           `json:"since"`
	Latest   uint64           `json:"latest"`
	FullSync bool             `json:"full_sync,omitempty"`
	Full     []NodeRules      `json:"full,omitempty"`
	Deltas   []ruledist.Delta `json:"deltas,omitempty"`
}

// handleDeltas serves rule-update catch-up from the changelog:
// GET /v1/deltas?since=N[&node=M]. With ?node= the deltas (or the full
// sync) are filtered to one satellite's table; every delta keeps its
// sequence number so the client's version tracking is uniform.
func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	s.metrics.deltasReqs.Inc()
	if s.Current() == nil {
		http.Error(w, "no allocation computed yet", http.StatusServiceUnavailable)
		return
	}
	q := r.URL.Query()
	var since uint64
	if v := q.Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "invalid since version", http.StatusBadRequest)
			return
		}
		since = n
	}
	node := -1
	if v := q.Get("node"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "invalid node id", http.StatusBadRequest)
			return
		}
		node = n
	}
	cu := s.log.Since(since)
	resp := DeltasResponse{Since: cu.Since, Latest: cu.Latest}
	switch {
	case cu.FullSync:
		s.metrics.fullSyncs.Inc()
		resp.FullSync = true
		resp.Full = rulesResponse(cu.Latest, cu.Full).Tables
		if node >= 0 {
			filtered := resp.Full[:0:0]
			for _, nr := range resp.Full {
				if nr.Node == node {
					filtered = append(filtered, nr)
				}
			}
			resp.Full = filtered
		}
	case node >= 0:
		resp.Deltas = make([]ruledist.Delta, 0, len(cu.Deltas))
		for _, d := range cu.Deltas {
			fd := ruledist.Delta{Seq: d.Seq}
			if nd, ok := d.Node(topology.NodeID(node)); ok {
				fd.Nodes = []ruledist.NodeDelta{nd}
			}
			resp.Deltas = append(resp.Deltas, fd)
		}
	default:
		resp.Deltas = cu.Deltas
	}
	s.writeJSON(w, resp)
}

// recomputeRequest is the /recompute body.
type recomputeRequest struct {
	TimeSec float64 `json:"time_sec"`
}

// handleRecompute triggers a TE cycle through the admission gate
// (admission.go): concurrent requests coalesce into one solve at the
// newest requested time, and a full pending batch is answered 429 with a
// Retry-After derived from the last solve latency.
func (s *Server) handleRecompute(w http.ResponseWriter, r *http.Request) {
	var req recomputeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.TimeSec < 0 {
		http.Error(w, "time_sec must be non-negative", http.StatusBadRequest)
		return
	}
	coalesced, err := s.recomputeAdmit(r.Context(), req.TimeSec)
	if err != nil {
		if errors.Is(err, errBusy) {
			w.Header().Set("Retry-After", s.retryAfter())
			http.Error(w, err.Error(), http.StatusTooManyRequests)
			return
		}
		if errors.Is(err, context.Canceled) {
			// The solve was abandoned by a cancellation the gate did not
			// introduce (it detaches request contexts); surface the de-facto
			// "client closed request" status rather than a server failure.
			w.WriteHeader(499)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if coalesced {
		w.Header().Set("X-Sate-Coalesced", "1")
	}
	s.handleStatus(w, r)
}

// retryAfter sizes the 429 Retry-After hint from the last published solve
// latency (at least 1 s).
func (s *Server) retryAfter() string {
	secs := int64(1)
	if sn := s.Current(); sn != nil {
		if d := int64(sn.SolveLatency/time.Second) + 1; d > secs {
			secs = d
		}
	}
	return strconv.FormatInt(secs, 10)
}

// RunConfig parameterises the periodic TE workflow loop.
type RunConfig struct {
	// StartSec is the simulated time of the first cycle.
	StartSec float64
	// IntervalSec is both the wall-clock tick and the simulated-time advance
	// per cycle. Simulated time is slaved to the wall clock: when a cycle
	// (or a retry storm) outruns the cadence, the loop advances simulated
	// time by every elapsed interval and counts the cycles that never ran on
	// sate_controld_skipped_cycles_total.
	IntervalSec float64

	// CycleTimeoutSec bounds one cycle (problem build + solve + rule
	// compilation). 0 defaults to 10×IntervalSec; negative disables the
	// timeout. A timed-out cycle is a cycle failure (retried with backoff),
	// not a shutdown.
	CycleTimeoutSec float64
	// RetryBaseSec is the first retry backoff after a failed cycle
	// (default IntervalSec/4). Subsequent consecutive failures double it.
	RetryBaseSec float64
	// RetryMaxSec caps the exponential backoff (default 4×IntervalSec).
	RetryMaxSec float64

	// FailFrac > 0 enables chaos mode: every cycle's topology passes through
	// failure injection (sim.Scenario.ProblemWithFailures) with this
	// fraction of links removed. The controller must survive the resulting
	// solver stress — this is the live consumer of the failure machinery the
	// emulation literature asks for.
	FailFrac float64
	// ChaosSeed seeds the chaos RNG (default 1); runs are reproducible for a
	// given seed and cadence.
	ChaosSeed int64
}

// RunContext drives the periodic TE workflow: every interval of wall time it
// advances simulated time by the same amount and recomputes. A failed cycle
// does NOT terminate the loop: the controller flips to degraded mode, keeps
// serving the last good allocation, and retries with capped exponential
// backoff until a cycle succeeds. RunContext blocks until the context is
// cancelled (returning ctx.Err()).
func (s *Server) RunContext(ctx context.Context, cfg RunConfig) error {
	return s.run(ctx, cfg, nil)
}

// Run drives the periodic TE workflow until the stop channel closes.
//
// Deprecated: Run is the pre-redesign spelling; prefer RunContext. It
// remains a supported thin wrapper and returns nil when stopped.
func (s *Server) Run(startSec, intervalSec float64, stop <-chan struct{}) error {
	return s.run(context.Background(), RunConfig{StartSec: startSec, IntervalSec: intervalSec}, stop)
}

// errStopped is the internal sentinel for the legacy stop channel closing.
var errStopped = errors.New("controller: stopped")

// run is the loop shared by RunContext and the deprecated Run: it selects on
// both the context and the legacy stop channel (a nil channel never fires),
// so the channel-based API needs no adapter goroutine.
//
// Scheduling model: cycle i belongs at wall time start+i·interval and runs
// at simulated time StartSec+i·IntervalSec. After every wait (tick or retry
// backoff) the loop re-derives the cycle index from the wall clock, so a
// slow cycle or a long retry storm never lets simulated time fall behind
// wall-clock cadence — missed indices are counted as skipped cycles, and a
// retry that stays within the same interval genuinely re-attempts the same
// cycle.
func (s *Server) run(ctx context.Context, cfg RunConfig, stop <-chan struct{}) error {
	interval := time.Duration(cfg.IntervalSec * float64(time.Second))
	if interval <= 0 {
		return fmt.Errorf("controller: RunConfig.IntervalSec must be positive, got %g", cfg.IntervalSec)
	}
	timeout := time.Duration(cfg.CycleTimeoutSec * float64(time.Second))
	if cfg.CycleTimeoutSec == 0 {
		timeout = 10 * interval
	} else if cfg.CycleTimeoutSec < 0 {
		timeout = 0
	}
	base := time.Duration(cfg.RetryBaseSec * float64(time.Second))
	if base <= 0 {
		base = interval / 4
	}
	if base <= 0 {
		base = time.Millisecond
	}
	maxBackoff := time.Duration(cfg.RetryMaxSec * float64(time.Second))
	if maxBackoff <= 0 {
		maxBackoff = 4 * interval
	}
	if maxBackoff < base {
		maxBackoff = base
	}
	var chaos *rand.Rand
	if cfg.FailFrac > 0 {
		seed := cfg.ChaosSeed
		if seed == 0 {
			seed = 1
		}
		chaos = rand.New(rand.NewSource(seed))
	}

	// attempt runs one cycle under the per-cycle timeout. It returns
	// ctx.Err() when the PARENT context ended (shut down), the cycle error
	// otherwise (a per-cycle deadline is a failure, not a shutdown).
	attempt := func(t float64) error {
		cctx, cancel := ctx, context.CancelFunc(func() {})
		if timeout > 0 {
			cctx, cancel = context.WithTimeout(ctx, timeout)
		}
		err := s.recompute(cctx, t, cfg.FailFrac, chaos)
		cancel()
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	// wait sleeps d, returning early with the exit error when the context is
	// cancelled or the legacy stop channel closes.
	wait := func(d time.Duration) error {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-stop:
			return errStopped
		case <-timer.C:
			return nil
		}
	}

	m := &s.metrics
	start := time.Now()
	idx := 0         // cycle index being attempted
	lastIdx := -1    // last attempted index, to tell retries from fresh cycles
	consecutive := 0 // consecutive failed attempts, drives the backoff
	for {
		if idx == lastIdx {
			m.retriesTotal.Inc()
		}
		lastIdx = idx
		err := attempt(cfg.StartSec + float64(idx)*cfg.IntervalSec)
		var sleep time.Duration
		switch {
		case err == nil:
			consecutive = 0
			sleep = time.Until(start.Add(time.Duration(idx+1) * interval))
			if sleep < 0 {
				sleep = 0
			}
		case ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, context.Canceled):
			// The cycle observed a cancellation that was not the parent
			// context's (cannot happen with the contexts run builds, but a
			// custom Allocator could surface one); treat as a failure.
			fallthrough
		default:
			consecutive++
			sleep = base << (consecutive - 1)
			if sleep > maxBackoff || sleep < base { // also catches shift overflow
				sleep = maxBackoff
			}
		}
		if werr := wait(sleep); werr != nil {
			if errors.Is(werr, errStopped) {
				return nil
			}
			return werr
		}
		// Re-derive the cycle index from the wall clock. After a successful
		// cycle the sleep landed at or past the next tick, so the index
		// always advances; after a retry backoff it may stay put (retry the
		// same cycle) or jump (the storm outran the cadence).
		next := int(time.Since(start) / interval)
		if next < idx {
			next = idx
		}
		if err == nil && next == idx {
			next = idx + 1
		}
		if skipped := next - idx - 1; skipped > 0 {
			m.skippedTotal.Add(uint64(skipped))
		}
		idx = next
	}
}
