// Package controller implements the TE control center of Fig. 3 as an HTTP
// service: it periodically builds the TE problem from the live scenario
// state, computes an allocation with a pluggable solver (SaTE or any
// baseline), compiles it into per-satellite rules, and serves status,
// allocations and flow tables over JSON — the interface satellites (or an
// operator) would poll in the SDN workflow of Sec. 2.2.
//
// With a registry attached (WithRegistry), the server also exposes
// Prometheus-text metrics on GET /metrics and the standard pprof profiles
// under /debug/pprof/ (DESIGN.md §9). Neither endpoint spawns goroutines:
// metrics are pulled at scrape time and pprof handlers run on the serving
// goroutine, so no satelint no-naked-goroutine allowlist entry is needed.
package controller

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"time"

	"sate/internal/obs"
	"sate/internal/rules"
	"sate/internal/sim"
	"sate/internal/solve"
	"sate/internal/te"
	"sate/internal/topology"
)

// Server is the control-center state machine plus its HTTP handlers.
type Server struct {
	scen   *sim.Scenario
	solver sim.Allocator

	registry   *obs.Registry
	metrics    srvObs
	solverOpts []solve.Option // pre-built so Recompute passes opts without allocating

	mu    sync.Mutex
	state *cycleState
}

// srvObs bundles the controller's metric handles, pre-resolved at New so the
// recompute path performs only atomic updates. Every handle is nil — and
// every update a no-op — when no registry is attached.
type srvObs struct {
	cycleSeconds *obs.Histogram
	cyclesTotal  *obs.Counter
	errorsTotal  *obs.Counter
	encodeErrors *obs.Counter
	satisfied    *obs.Gauge
	throughput   *obs.Gauge
	mlu          *obs.Gauge
	flows        *obs.Gauge
	rulesCount   *obs.Gauge
	cycleAlloc   *obs.Gauge
	spPaths      *obs.Histogram
	spRules      *obs.Histogram
}

func newSrvObs(reg *obs.Registry) srvObs {
	return srvObs{
		cycleSeconds: reg.Histogram("sate_controld_cycle_seconds", obs.DefLatencyBuckets),
		cyclesTotal:  reg.Counter("sate_controld_cycles_total"),
		errorsTotal:  reg.Counter("sate_controld_errors_total"),
		encodeErrors: reg.Counter("sate_controld_encode_errors_total"),
		satisfied:    reg.Gauge("sate_controld_satisfied_ratio"),
		throughput:   reg.Gauge("sate_controld_throughput_mbps"),
		mlu:          reg.Gauge("sate_controld_mlu"),
		flows:        reg.Gauge("sate_controld_flows"),
		rulesCount:   reg.Gauge("sate_controld_rules"),
		cycleAlloc:   reg.Gauge("sate_controld_cycle_alloc_bytes"),
		spPaths:      reg.SpanHistogram(obs.PhasePathPrecompute),
		spRules:      reg.SpanHistogram(obs.PhaseRuleCompile),
	}
}

// cycleState is the outcome of one TE workflow cycle.
type cycleState struct {
	TimeSec      float64
	Problem      *te.Problem
	Alloc        *te.Allocation
	Rules        *rules.RuleSet
	SolveLatency time.Duration
	ComputedAt   time.Time
}

// Option configures a Server at construction.
type Option func(*Server)

// WithRegistry attaches an observability registry: per-cycle latency
// histogram and heap-allocation gauge, satisfied-demand / throughput / MLU
// gauges, error counters, the /metrics endpoint, and the per-solve
// histograms recorded by the solver itself. Nil leaves instrumentation off.
func WithRegistry(r *obs.Registry) Option {
	return func(s *Server) { s.registry = r }
}

// New creates a controller over a scenario with the given solver. The
// variadic options keep pre-redesign `New(scen, solver)` call sites
// compiling unchanged.
func New(scen *sim.Scenario, solver sim.Allocator, opts ...Option) *Server {
	s := &Server{scen: scen, solver: solver}
	for _, o := range opts {
		o(s)
	}
	s.metrics = newSrvObs(s.registry)
	if s.registry != nil {
		s.solverOpts = []solve.Option{solve.WithRegistry(s.registry)}
	}
	return s
}

// Registry returns the attached observability registry (nil if none).
func (s *Server) Registry() *obs.Registry { return s.registry }

// Recompute runs one full TE workflow cycle at simulated time t.
//
// Deprecated: Recompute is the pre-redesign spelling; it is equivalent to
// RecomputeContext(context.Background(), tSec) and remains a supported thin
// wrapper.
func (s *Server) Recompute(tSec float64) error {
	return s.RecomputeContext(context.Background(), tSec)
}

// RecomputeContext runs one full TE workflow cycle at simulated time t:
// traffic matrix acquisition, topology determination, path
// (re)configuration, TE computation, and rule compilation. Cancelling the
// context abandons the cycle between phases (a phase in flight runs to
// completion — the solver is not preemptible).
func (s *Server) RecomputeContext(ctx context.Context, tSec float64) (err error) {
	m := &s.metrics
	defer func() {
		if err != nil {
			m.errorsTotal.Inc()
		}
	}()
	var memBefore runtime.MemStats
	if s.registry != nil {
		runtime.ReadMemStats(&memBefore)
	}
	cycle := obs.StartTimer(m.cycleSeconds)
	if err = ctx.Err(); err != nil {
		return err
	}
	sp := obs.StartTimer(m.spPaths)
	p, _, _, err := s.scen.ProblemAt(tSec)
	sp.End()
	if err != nil {
		return fmt.Errorf("controller: building problem: %w", err)
	}
	if err = ctx.Err(); err != nil {
		return err
	}
	start := time.Now()
	alloc, err := s.solver.Solve(p, s.solverOpts...)
	lat := time.Since(start)
	if err != nil {
		return fmt.Errorf("controller: solving: %w", err)
	}
	if err = ctx.Err(); err != nil {
		return err
	}
	sp = obs.StartTimer(m.spRules)
	rs := rules.Compile(p, alloc)
	if err := rules.Verify(p, alloc, rs); err != nil {
		sp.End()
		return fmt.Errorf("controller: rule verification: %w", err)
	}
	sp.End()
	cycle.End()
	m.cyclesTotal.Inc()
	m.satisfied.Set(p.SatisfiedDemand(alloc))
	m.throughput.Set(alloc.Throughput())
	m.mlu.Set(p.MLU(alloc))
	m.flows.Set(float64(len(p.Flows)))
	m.rulesCount.Set(float64(rs.NumRules()))
	if s.registry != nil {
		var memAfter runtime.MemStats
		runtime.ReadMemStats(&memAfter)
		m.cycleAlloc.Set(float64(memAfter.TotalAlloc - memBefore.TotalAlloc))
	}
	s.mu.Lock()
	s.state = &cycleState{
		TimeSec: tSec, Problem: p, Alloc: alloc, Rules: rs,
		SolveLatency: lat, ComputedAt: time.Now(),
	}
	s.mu.Unlock()
	return nil
}

// Handler returns the HTTP routes. With a registry attached it additionally
// serves GET /metrics (Prometheus text format 0.0.4) and the pprof profile
// endpoints under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		// A failed write to a health-check client is not actionable.
		_, _ = fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /allocation", s.handleAllocation)
	mux.HandleFunc("GET /rules", s.handleRules)
	mux.HandleFunc("POST /recompute", s.handleRecompute)
	if s.registry != nil {
		mux.Handle("GET /metrics", s.registry.Handler())
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) snapshot() *cycleState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// writeJSON commits a 200 with an explicit status line before encoding. A
// mid-encode failure can no longer smuggle an http.Error into a half-written
// body (the old bug: Encode had already streamed partial JSON and an
// implicit 200 before the 500 was attempted); instead the failure is counted
// on sate_controld_encode_errors_total and the connection is left to the
// client to detect via truncation.
func (s *Server) writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.metrics.encodeErrors.Inc()
	}
}

// StatusResponse is the /status payload.
type StatusResponse struct {
	Method          string  `json:"method"`
	TimeSec         float64 `json:"time_sec"`
	Flows           int     `json:"flows"`
	TotalDemandMbps float64 `json:"total_demand_mbps"`
	ThroughputMbps  float64 `json:"throughput_mbps"`
	SatisfiedFrac   float64 `json:"satisfied_frac"`
	MLU             float64 `json:"mlu"`
	SolveLatencyMs  float64 `json:"solve_latency_ms"`
	NumRules        int     `json:"num_rules"`
	ComputedAtUnix  int64   `json:"computed_at_unix"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.snapshot()
	if st == nil {
		http.Error(w, "no allocation computed yet", http.StatusServiceUnavailable)
		return
	}
	s.writeJSON(w, StatusResponse{
		Method:          s.solver.Name(),
		TimeSec:         st.TimeSec,
		Flows:           len(st.Problem.Flows),
		TotalDemandMbps: st.Problem.TotalDemand(),
		ThroughputMbps:  st.Alloc.Throughput(),
		SatisfiedFrac:   st.Problem.SatisfiedDemand(st.Alloc),
		MLU:             st.Problem.MLU(st.Alloc),
		SolveLatencyMs:  float64(st.SolveLatency.Nanoseconds()) / 1e6,
		NumRules:        st.Rules.NumRules(),
		ComputedAtUnix:  st.ComputedAt.Unix(),
	})
}

// AllocationEntry is one flow's allocation in the /allocation payload.
type AllocationEntry struct {
	Src        int       `json:"src"`
	Dst        int       `json:"dst"`
	DemandMbps float64   `json:"demand_mbps"`
	RateMbps   float64   `json:"rate_mbps"`
	PerPath    []float64 `json:"per_path_mbps"`
}

func (s *Server) handleAllocation(w http.ResponseWriter, r *http.Request) {
	st := s.snapshot()
	if st == nil {
		http.Error(w, "no allocation computed yet", http.StatusServiceUnavailable)
		return
	}
	out := make([]AllocationEntry, 0, len(st.Problem.Flows))
	for fi, f := range st.Problem.Flows {
		out = append(out, AllocationEntry{
			Src:        int(f.Src),
			Dst:        int(f.Dst),
			DemandMbps: f.DemandMbps,
			RateMbps:   st.Alloc.FlowThroughput(fi),
			PerPath:    append([]float64(nil), st.Alloc.X[fi]...),
		})
	}
	s.writeJSON(w, out)
}

// RuleEntry is one flow-table row in the /rules payload.
type RuleEntry struct {
	Src      int     `json:"src"`
	Dst      int     `json:"dst"`
	Label    int     `json:"label"`
	Next     int     `json:"next"`
	RateMbps float64 `json:"rate_mbps"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	st := s.snapshot()
	if st == nil {
		http.Error(w, "no allocation computed yet", http.StatusServiceUnavailable)
		return
	}
	nodeStr := r.URL.Query().Get("node")
	if nodeStr == "" {
		http.Error(w, "missing ?node=<id>", http.StatusBadRequest)
		return
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil || node < 0 || node >= st.Problem.NumNodes {
		http.Error(w, "invalid node id", http.StatusBadRequest)
		return
	}
	out := []RuleEntry{}
	if tbl := st.Rules.Tables[topology.NodeID(node)]; tbl != nil {
		for _, rule := range tbl.Rules {
			out = append(out, RuleEntry{
				Src:      int(rule.Flow.Src),
				Dst:      int(rule.Flow.Dst),
				Label:    rule.Label,
				Next:     int(rule.Next),
				RateMbps: rule.RateMbps,
			})
		}
	}
	s.writeJSON(w, out)
}

// recomputeRequest is the /recompute body.
type recomputeRequest struct {
	TimeSec float64 `json:"time_sec"`
}

func (s *Server) handleRecompute(w http.ResponseWriter, r *http.Request) {
	var req recomputeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.TimeSec < 0 {
		http.Error(w, "time_sec must be non-negative", http.StatusBadRequest)
		return
	}
	if err := s.RecomputeContext(r.Context(), req.TimeSec); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.handleStatus(w, r)
}

// RunConfig parameterises the periodic TE workflow loop.
type RunConfig struct {
	// StartSec is the simulated time of the first cycle.
	StartSec float64
	// IntervalSec is both the wall-clock tick and the simulated-time advance
	// per cycle.
	IntervalSec float64
}

// RunContext drives the periodic TE workflow: every interval of wall time it
// advances simulated time by the same amount and recomputes. It blocks until
// the context is cancelled (returning ctx.Err()) or a cycle fails.
func (s *Server) RunContext(ctx context.Context, cfg RunConfig) error {
	return s.run(ctx, cfg, nil)
}

// Run drives the periodic TE workflow until the stop channel closes.
//
// Deprecated: Run is the pre-redesign spelling; prefer RunContext. It
// remains a supported thin wrapper and returns nil when stopped.
func (s *Server) Run(startSec, intervalSec float64, stop <-chan struct{}) error {
	return s.run(context.Background(), RunConfig{StartSec: startSec, IntervalSec: intervalSec}, stop)
}

// run is the loop shared by RunContext and the deprecated Run: it selects on
// both the context and the legacy stop channel (a nil channel never fires),
// so the channel-based API needs no adapter goroutine.
func (s *Server) run(ctx context.Context, cfg RunConfig, stop <-chan struct{}) error {
	t := cfg.StartSec
	if err := s.RecomputeContext(ctx, t); err != nil {
		return err
	}
	ticker := time.NewTicker(time.Duration(cfg.IntervalSec * float64(time.Second)))
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-stop:
			return nil
		case <-ticker.C:
			t += cfg.IntervalSec
			if err := s.RecomputeContext(ctx, t); err != nil {
				return err
			}
		}
	}
}
