// Package controller implements the TE control center of Fig. 3 as an HTTP
// service: it periodically builds the TE problem from the live scenario
// state, computes an allocation with a pluggable solver (SaTE or any
// baseline), compiles it into per-satellite rules, and serves status,
// allocations and flow tables over JSON — the interface satellites (or an
// operator) would poll in the SDN workflow of Sec. 2.2.
package controller

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"sate/internal/rules"
	"sate/internal/sim"
	"sate/internal/te"
	"sate/internal/topology"
)

// Server is the control-center state machine plus its HTTP handlers.
type Server struct {
	scen   *sim.Scenario
	solver sim.Allocator

	mu    sync.Mutex
	state *cycleState
}

// cycleState is the outcome of one TE workflow cycle.
type cycleState struct {
	TimeSec      float64
	Problem      *te.Problem
	Alloc        *te.Allocation
	Rules        *rules.RuleSet
	SolveLatency time.Duration
	ComputedAt   time.Time
}

// New creates a controller over a scenario with the given solver.
func New(scen *sim.Scenario, solver sim.Allocator) *Server {
	return &Server{scen: scen, solver: solver}
}

// Recompute runs one full TE workflow cycle at simulated time t: traffic
// matrix acquisition, topology determination, path (re)configuration, TE
// computation, and rule compilation. It returns the new cycle state.
func (s *Server) Recompute(tSec float64) error {
	p, _, _, err := s.scen.ProblemAt(tSec)
	if err != nil {
		return fmt.Errorf("controller: building problem: %w", err)
	}
	start := time.Now()
	alloc, err := s.solver.Solve(p)
	lat := time.Since(start)
	if err != nil {
		return fmt.Errorf("controller: solving: %w", err)
	}
	rs := rules.Compile(p, alloc)
	if err := rules.Verify(p, alloc, rs); err != nil {
		return fmt.Errorf("controller: rule verification: %w", err)
	}
	s.mu.Lock()
	s.state = &cycleState{
		TimeSec: tSec, Problem: p, Alloc: alloc, Rules: rs,
		SolveLatency: lat, ComputedAt: time.Now(),
	}
	s.mu.Unlock()
	return nil
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		// A failed write to a health-check client is not actionable.
		_, _ = fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /allocation", s.handleAllocation)
	mux.HandleFunc("GET /rules", s.handleRules)
	mux.HandleFunc("POST /recompute", s.handleRecompute)
	return mux
}

func (s *Server) snapshot() *cycleState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// StatusResponse is the /status payload.
type StatusResponse struct {
	Method          string  `json:"method"`
	TimeSec         float64 `json:"time_sec"`
	Flows           int     `json:"flows"`
	TotalDemandMbps float64 `json:"total_demand_mbps"`
	ThroughputMbps  float64 `json:"throughput_mbps"`
	SatisfiedFrac   float64 `json:"satisfied_frac"`
	MLU             float64 `json:"mlu"`
	SolveLatencyMs  float64 `json:"solve_latency_ms"`
	NumRules        int     `json:"num_rules"`
	ComputedAtUnix  int64   `json:"computed_at_unix"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.snapshot()
	if st == nil {
		http.Error(w, "no allocation computed yet", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, StatusResponse{
		Method:          s.solver.Name(),
		TimeSec:         st.TimeSec,
		Flows:           len(st.Problem.Flows),
		TotalDemandMbps: st.Problem.TotalDemand(),
		ThroughputMbps:  st.Alloc.Throughput(),
		SatisfiedFrac:   st.Problem.SatisfiedDemand(st.Alloc),
		MLU:             st.Problem.MLU(st.Alloc),
		SolveLatencyMs:  float64(st.SolveLatency.Nanoseconds()) / 1e6,
		NumRules:        st.Rules.NumRules(),
		ComputedAtUnix:  st.ComputedAt.Unix(),
	})
}

// AllocationEntry is one flow's allocation in the /allocation payload.
type AllocationEntry struct {
	Src        int       `json:"src"`
	Dst        int       `json:"dst"`
	DemandMbps float64   `json:"demand_mbps"`
	RateMbps   float64   `json:"rate_mbps"`
	PerPath    []float64 `json:"per_path_mbps"`
}

func (s *Server) handleAllocation(w http.ResponseWriter, r *http.Request) {
	st := s.snapshot()
	if st == nil {
		http.Error(w, "no allocation computed yet", http.StatusServiceUnavailable)
		return
	}
	out := make([]AllocationEntry, 0, len(st.Problem.Flows))
	for fi, f := range st.Problem.Flows {
		out = append(out, AllocationEntry{
			Src:        int(f.Src),
			Dst:        int(f.Dst),
			DemandMbps: f.DemandMbps,
			RateMbps:   st.Alloc.FlowThroughput(fi),
			PerPath:    append([]float64(nil), st.Alloc.X[fi]...),
		})
	}
	writeJSON(w, out)
}

// RuleEntry is one flow-table row in the /rules payload.
type RuleEntry struct {
	Src      int     `json:"src"`
	Dst      int     `json:"dst"`
	Label    int     `json:"label"`
	Next     int     `json:"next"`
	RateMbps float64 `json:"rate_mbps"`
}

func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	st := s.snapshot()
	if st == nil {
		http.Error(w, "no allocation computed yet", http.StatusServiceUnavailable)
		return
	}
	nodeStr := r.URL.Query().Get("node")
	if nodeStr == "" {
		http.Error(w, "missing ?node=<id>", http.StatusBadRequest)
		return
	}
	node, err := strconv.Atoi(nodeStr)
	if err != nil || node < 0 || node >= st.Problem.NumNodes {
		http.Error(w, "invalid node id", http.StatusBadRequest)
		return
	}
	out := []RuleEntry{}
	if tbl := st.Rules.Tables[topology.NodeID(node)]; tbl != nil {
		for _, rule := range tbl.Rules {
			out = append(out, RuleEntry{
				Src:      int(rule.Flow.Src),
				Dst:      int(rule.Flow.Dst),
				Label:    rule.Label,
				Next:     int(rule.Next),
				RateMbps: rule.RateMbps,
			})
		}
	}
	writeJSON(w, out)
}

// recomputeRequest is the /recompute body.
type recomputeRequest struct {
	TimeSec float64 `json:"time_sec"`
}

func (s *Server) handleRecompute(w http.ResponseWriter, r *http.Request) {
	var req recomputeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.TimeSec < 0 {
		http.Error(w, "time_sec must be non-negative", http.StatusBadRequest)
		return
	}
	if err := s.Recompute(req.TimeSec); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.handleStatus(w, r)
}

// Run drives the periodic TE workflow: every interval of wall time it
// advances simulated time by the same amount and recomputes. It blocks until
// the stop channel closes.
func (s *Server) Run(startSec, intervalSec float64, stop <-chan struct{}) error {
	t := startSec
	if err := s.Recompute(t); err != nil {
		return err
	}
	ticker := time.NewTicker(time.Duration(intervalSec * float64(time.Second)))
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-ticker.C:
			t += intervalSec
			if err := s.Recompute(t); err != nil {
				return err
			}
		}
	}
}
