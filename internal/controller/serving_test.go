package controller

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/ruledist"
	"sate/internal/rules"
	"sate/internal/sim"
	"sate/internal/solve"
	"sate/internal/te"
	"sate/internal/topology"
)

func mustRecompute(t *testing.T, srv *Server, tSec float64) {
	t.Helper()
	if err := srv.RecomputeContext(context.Background(), tSec); err != nil {
		t.Fatal(err)
	}
}

func TestV1AliasesServeIdenticalBodies(t *testing.T) {
	srv, ts := testServer(t)
	mustRecompute(t, srv, 100)
	for _, pair := range [][2]string{
		{"/v1/status", "/status"},
		{"/v1/allocation", "/allocation"},
	} {
		a, err := http.Get(ts.URL + pair[0])
		if err != nil {
			t.Fatal(err)
		}
		ab, _ := io.ReadAll(a.Body)
		a.Body.Close()
		b, err := http.Get(ts.URL + pair[1])
		if err != nil {
			t.Fatal(err)
		}
		bb, _ := io.ReadAll(b.Body)
		b.Body.Close()
		if a.StatusCode != http.StatusOK || b.StatusCode != http.StatusOK {
			t.Fatalf("%v: %d / %d", pair, a.StatusCode, b.StatusCode)
		}
		if !bytes.Equal(ab, bb) {
			t.Errorf("%s and %s bodies differ", pair[0], pair[1])
		}
		if a.Header.Get("ETag") == "" || a.Header.Get("ETag") != b.Header.Get("ETag") {
			t.Errorf("%v: etags %q / %q", pair, a.Header.Get("ETag"), b.Header.Get("ETag"))
		}
	}
}

func TestETagConditionalRequests(t *testing.T) {
	srv, ts := testServer(t)
	mustRecompute(t, srv, 100)
	resp, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"v`) {
		t.Fatalf("etag = %q", etag)
	}
	// Conditional poll with the current version: 304, no body.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/status", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("conditional poll: %d, %d body bytes", resp.StatusCode, len(body))
	}
	// A new publish bumps the version: the same conditional request now
	// gets a fresh 200 with a different ETag.
	mustRecompute(t, srv, 110)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") == etag {
		t.Fatalf("after publish: %d, etag %q (stale %q)", resp.StatusCode, resp.Header.Get("ETag"), etag)
	}
	// Wildcard and list forms match too.
	for _, inm := range []string{"*", `"v0", ` + etag + `, "v9"`, "W/" + resp.Header.Get("ETag")} {
		req2, _ := http.NewRequest("GET", ts.URL+"/v1/allocation", nil)
		req2.Header.Set("If-None-Match", inm)
		r2, err := http.DefaultClient.Do(req2)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r2.Body)
		r2.Body.Close()
		if inm == `"v0", `+etag+`, "v9"` {
			// The listed tags are all stale now; expect 200.
			if r2.StatusCode != http.StatusOK {
				t.Errorf("If-None-Match %q -> %d, want 200", inm, r2.StatusCode)
			}
			continue
		}
		if r2.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q -> %d, want 304", inm, r2.StatusCode)
		}
	}
}

// parseRuleSet reconstructs a rules.RuleSet from the /v1/rules table dump.
func parseRuleSet(tables []NodeRules) *rules.RuleSet {
	rs := &rules.RuleSet{Tables: make(map[topology.NodeID]*rules.Table)}
	for _, nr := range tables {
		tbl := &rules.Table{Node: topology.NodeID(nr.Node)}
		for _, e := range nr.Rules {
			tbl.Rules = append(tbl.Rules, rules.Rule{
				Flow:     rules.FlowKey{Src: topology.NodeID(e.Src), Dst: topology.NodeID(e.Dst)},
				Label:    e.Label,
				Next:     topology.NodeID(e.Next),
				RateMbps: e.RateMbps,
			})
		}
		rs.Tables[tbl.Node] = tbl
	}
	return rs
}

// TestDeltaCatchup is the acceptance test for the changelog protocol: a
// client at ANY since version applies GET /v1/deltas catch-up and must end
// bit-identical to a full GET /v1/rules — same parsed rule set AND the same
// serialized bytes.
func TestDeltaCatchup(t *testing.T) {
	srv, ts := testServer(t)
	// Several publishes so real deltas accumulate (traffic changes between
	// cycle times, so consecutive rule sets genuinely differ).
	times := []float64{100, 130, 160, 190, 220}
	history := make(map[uint64]*rules.RuleSet) // rules version -> rule set
	history[0] = &rules.RuleSet{Tables: map[topology.NodeID]*rules.Table{}}
	for _, tm := range times {
		mustRecompute(t, srv, tm)
		sn := srv.Current()
		history[sn.RulesVersion] = sn.Rules
	}
	// The reference: a full fetch of the latest rules.
	var full RulesResponse
	resp, err := http.Get(ts.URL + "/v1/rules")
	if err != nil {
		t.Fatal(err)
	}
	fullBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(fullBody, &full); err != nil {
		t.Fatal(err)
	}
	want := parseRuleSet(full.Tables)
	latest := full.RulesVersion

	for since := uint64(0); since <= latest; since++ {
		var dr DeltasResponse
		resp, err := http.Get(fmt.Sprintf("%s/v1/deltas?since=%d", ts.URL, since))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if dr.Latest != latest {
			t.Fatalf("since=%d: latest %d, want %d", since, dr.Latest, latest)
		}
		var got *rules.RuleSet
		if dr.FullSync {
			got = parseRuleSet(dr.Full)
		} else {
			base, ok := history[since]
			if !ok {
				t.Fatalf("since=%d: no recorded base version", since)
			}
			got = base
			at := since
			for _, d := range dr.Deltas {
				if d.Seq != at+1 {
					t.Fatalf("since=%d: delta seq %d after %d", since, d.Seq, at)
				}
				got = ruledist.Apply(got, d)
				at = d.Seq
			}
			if at != latest {
				t.Fatalf("since=%d: caught up only to %d", since, at)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("since=%d: catch-up diverged from full /v1/rules", since)
		}
		// Bit-identical: re-encoding the caught-up state reproduces the
		// full-fetch body exactly.
		if gotBytes := mustJSON(rulesResponse(latest, got)); !bytes.Equal(gotBytes, fullBody) {
			t.Fatalf("since=%d: serialized catch-up differs from /v1/rules body", since)
		}
	}
}

func TestDeltaCatchupPerNodeFilter(t *testing.T) {
	srv, ts := testServer(t)
	mustRecompute(t, srv, 100)
	mustRecompute(t, srv, 150)
	sn := srv.Current()
	// Pick a node that has rules in the latest set.
	node := -1
	for id := range sn.Rules.Tables {
		node = int(id)
		break
	}
	if node < 0 {
		t.Skip("no rules compiled")
	}
	var dr DeltasResponse
	resp, err := http.Get(fmt.Sprintf("%s/v1/deltas?since=0&node=%d", ts.URL, node))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dr.FullSync {
		t.Fatalf("unexpected full sync: %+v", dr)
	}
	var got *rules.RuleSet
	for _, d := range dr.Deltas {
		for _, nd := range d.Nodes {
			if int(nd.Node) != node {
				t.Fatalf("delta %d carries foreign node %d", d.Seq, nd.Node)
			}
		}
		got = ruledist.Apply(got, d)
	}
	wantTbl := sn.Rules.Tables[topology.NodeID(node)]
	if got == nil || !reflect.DeepEqual(got.Tables[topology.NodeID(node)], wantTbl) {
		t.Fatalf("per-node catch-up diverged for node %d", node)
	}
}

func TestDeltasValidation(t *testing.T) {
	srv, ts := testServer(t)
	// Before the first cycle: 503.
	resp, err := http.Get(ts.URL + "/v1/deltas?since=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("deltas before first cycle: %d", resp.StatusCode)
	}
	mustRecompute(t, srv, 100)
	for _, q := range []string{"?since=abc", "?since=-1", "?node=abc", "?node=-2"} {
		resp, err := http.Get(ts.URL + "/v1/deltas" + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("deltas%s -> %d, want 400", q, resp.StatusCode)
		}
	}
	// Up to date: empty answer.
	var dr DeltasResponse
	resp, err = http.Get(fmt.Sprintf("%s/v1/deltas?since=%d", ts.URL, srv.Changelog().Latest()))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dr.FullSync || len(dr.Deltas) != 0 {
		t.Fatalf("up-to-date client got %+v", dr)
	}
}

func TestCompactionForcesFullSync(t *testing.T) {
	scen := testServer2Scenario()
	srv := New(scen, baselines.ECMPWF{}, WithDeltaHistory(2))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for i := 0; i < 5; i++ {
		mustRecompute(t, srv, 100+30*float64(i))
	}
	var dr DeltasResponse
	resp, err := http.Get(ts.URL + "/v1/deltas?since=0")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !dr.FullSync {
		t.Fatalf("client behind compaction window should full-sync: %+v", dr)
	}
	if !reflect.DeepEqual(parseRuleSet(dr.Full), srv.Current().Rules) {
		t.Fatal("full sync payload diverges from the live rules")
	}
}

// TestConcurrentServingUnderPublishes hammers the read endpoints from many
// goroutines while RecomputeContext publishes new snapshots — the race
// detector (scripts/race.sh) proves the lock-free read path.
func TestConcurrentServingUnderPublishes(t *testing.T) {
	srv, ts := testServer(t)
	mustRecompute(t, srv, 100)
	stop := make(chan struct{})
	var pubErr error
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		tm := 101.0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := srv.RecomputeContext(context.Background(), tm); err != nil {
				pubErr = err
				return
			}
			tm += 1
		}
	}()

	client := ts.Client()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			etag := ""
			for i := 0; i < 150; i++ {
				url := ts.URL + "/v1/status"
				if w%2 == 1 {
					url = fmt.Sprintf("%s/v1/deltas?since=%d", ts.URL, i%5)
				}
				req, _ := http.NewRequest("GET", url, nil)
				if etag != "" && w%2 == 0 {
					req.Header.Set("If-None-Match", etag)
				}
				resp, err := client.Do(req)
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotModified {
					errs <- fmt.Errorf("%s -> %d", url, resp.StatusCode)
					return
				}
				if e := resp.Header.Get("ETag"); e != "" {
					etag = e
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	pubWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if pubErr != nil {
		t.Fatalf("publisher failed: %v", pubErr)
	}
}

// TestSnapshotReadPathZeroAllocs is the satelint-enforced contract measured:
// loading the snapshot and reading its cached bodies allocates nothing.
func TestSnapshotReadPathZeroAllocs(t *testing.T) {
	srv, _ := testServer(t)
	mustRecompute(t, srv, 100)
	var sink int
	allocs := testing.AllocsPerRun(1000, func() {
		sn := srv.Current()
		sink += len(sn.StatusBody()) + len(sn.AllocationBody()) + len(sn.RulesBody()) + len(sn.ETag())
		if !etagMatch(sn.ETag(), sn.ETag()) {
			panic("etag mismatch")
		}
	})
	if allocs != 0 {
		t.Fatalf("snapshot read path allocated %v times per run (sink %d)", allocs, sink)
	}
	// The changelog read path is equally clean.
	log := srv.Changelog()
	allocs = testing.AllocsPerRun(1000, func() {
		cu := log.Since(0)
		sink += int(cu.Latest)
	})
	if allocs != 0 {
		t.Fatalf("changelog Since allocated %v times per run", allocs)
	}
}

// slowAllocator wraps a baseline with a delay so concurrent /recompute
// requests overlap deterministically.
type slowAllocator struct {
	delay time.Duration
	mu    sync.Mutex
	calls int
}

func (a *slowAllocator) Name() string { return "slow-ecmp" }

func (a *slowAllocator) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	a.mu.Lock()
	a.calls++
	a.mu.Unlock()
	time.Sleep(a.delay)
	return baselines.ECMPWF{}.Solve(p, opts...)
}

func (a *slowAllocator) solveCalls() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.calls
}

func testServer2Scenario() *sim.Scenario {
	return sim.NewScenario(constellation.Toy(5, 6), sim.ScenarioConfig{
		Mode:              topology.CrossShellLasers,
		Intensity:         6,
		Seed:              7,
		MinElevDeg:        5,
		FlowDurationScale: 0.05,
	})
}

// TestRecomputeCoalescing fires a burst of concurrent POST /recompute at a
// slow solver: one leads, the rest coalesce into at most one batched solve,
// and everyone gets a successful answer.
func TestRecomputeCoalescing(t *testing.T) {
	alloc := &slowAllocator{delay: 100 * time.Millisecond}
	srv := New(testServer2Scenario(), alloc)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const burst = 6
	var wg sync.WaitGroup
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"time_sec": %d}`, 100+i)
			resp, err := http.Post(ts.URL+"/v1/recompute", "application/json", strings.NewReader(body))
			if err != nil {
				codes[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d -> %d", i, c)
		}
	}
	// The burst overlapped, so the solver must have run fewer times than
	// there were requests: a leader plus at most one coalesced batch per
	// overlap window.
	if calls := alloc.solveCalls(); calls >= burst {
		t.Fatalf("no coalescing: %d solves for %d requests", calls, burst)
	}
}

// TestRecomputeQueueBound pins the admission control: with a queue bound of
// one, a long burst against a slow solver must reject some requests with
// 429 + Retry-After while never failing the others.
func TestRecomputeQueueBound(t *testing.T) {
	alloc := &slowAllocator{delay: 150 * time.Millisecond}
	srv := New(testServer2Scenario(), alloc, WithRecomputeQueue(1))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	const burst = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ok, busy int
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"time_sec": %d}`, 100+i)
			resp, err := http.Post(ts.URL+"/recompute", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				busy++
			default:
				t.Errorf("request %d -> %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("every request was rejected")
	}
	if ok+busy != burst {
		t.Fatalf("ok=%d busy=%d of %d", ok, busy, burst)
	}
	// With the tight bound and a burst that overlaps one slow solve, at
	// least one request must have been shed.
	if busy == 0 {
		t.Log("no request hit the queue bound (timing-dependent); coalescing absorbed the burst")
	}
}
