package controller

import (
	"encoding/json"
	"sort"
	"strconv"
	"time"

	"sate/internal/rules"
	"sate/internal/te"
	"sate/internal/topology"
)

// Snapshot is one immutable published controller state. Every publish —
// a successful TE cycle or a degraded re-publish after a failed one —
// builds a complete new Snapshot (JSON bodies pre-encoded, ETag included)
// and swaps it in with one atomic pointer store. Readers load the pointer
// and serve the cached bytes: zero locks, zero allocations, no sharing of
// mutable state with the compute path (DESIGN.md §14).
type Snapshot struct {
	// Version numbers every publish, including degraded re-publishes; it is
	// the ETag (`"v<Version>"`) served on every read endpoint.
	Version uint64
	// RulesVersion is the changelog sequence number of Rules. Only
	// successful cycles advance it; /v1/deltas catch-up is relative to it.
	RulesVersion uint64

	TimeSec      float64
	Problem      *te.Problem
	Alloc        *te.Allocation
	Rules        *rules.RuleSet
	SolveLatency time.Duration
	ComputedAt   time.Time

	deg degradedInfo

	statusJSON []byte
	allocJSON  []byte
	rulesJSON  []byte
	etag       string
}

// Current returns the live published snapshot (nil before the first cycle).
// The returned value is immutable and remains valid forever; later
// publishes swap in a new pointer and never touch old snapshots.
//
//sate:hotpath every read endpoint starts here
func (s *Server) Current() *Snapshot {
	return s.snap.Load()
}

// ETag returns the strong entity tag of this snapshot, `"v<Version>"`.
//
//sate:hotpath
func (sn *Snapshot) ETag() string { return sn.etag }

// StatusBody returns the pre-encoded /v1/status JSON body.
//
//sate:hotpath
func (sn *Snapshot) StatusBody() []byte { return sn.statusJSON }

// AllocationBody returns the pre-encoded /v1/allocation JSON body.
//
//sate:hotpath
func (sn *Snapshot) AllocationBody() []byte { return sn.allocJSON }

// RulesBody returns the pre-encoded full /v1/rules JSON body.
//
//sate:hotpath
func (sn *Snapshot) RulesBody() []byte { return sn.rulesJSON }

// Degraded reports whether this snapshot serves a stale allocation after
// one or more failed cycles.
//
//sate:hotpath
func (sn *Snapshot) Degraded() bool { return sn.deg.Failures > 0 }

// statusResponse assembles the status payload for this snapshot.
func (sn *Snapshot) statusResponse(method string) StatusResponse {
	resp := StatusResponse{
		Method:          method,
		Version:         sn.Version,
		RulesVersion:    sn.RulesVersion,
		TimeSec:         sn.TimeSec,
		Flows:           len(sn.Problem.Flows),
		TotalDemandMbps: sn.Problem.TotalDemand(),
		ThroughputMbps:  sn.Alloc.Throughput(),
		SatisfiedFrac:   sn.Problem.SatisfiedDemand(sn.Alloc),
		MLU:             sn.Problem.MLU(sn.Alloc),
		SolveLatencyMs:  float64(sn.SolveLatency.Nanoseconds()) / 1e6,
		NumRules:        sn.Rules.NumRules(),
		ComputedAtUnix:  sn.ComputedAt.Unix(),
	}
	if sn.deg.Failures > 0 {
		resp.Degraded = true
		resp.ConsecutiveFailures = sn.deg.Failures
		resp.LastError = sn.deg.LastError
		resp.DegradedSinceUnix = sn.deg.Since.Unix()
		if sn.deg.SatisfiedOK {
			resp.SatisfiedFrac = sn.deg.Satisfied
		}
	}
	return resp
}

// mustJSON marshals v with a trailing newline (matching the json.Encoder
// framing the pre-redesign handlers produced). The payload types contain
// only marshalable fields, so an error is a programming bug; the fallback
// keeps serving syntactically valid JSON rather than panicking the publish
// path.
func mustJSON(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"error":"encode failed"}` + "\n")
	}
	return append(b, '\n')
}

// encodeStatus (re)builds the ETag and cached status body. Degraded
// re-publishes call only this: the allocation and rules bodies are shared
// byte-for-byte with the last good snapshot.
func (sn *Snapshot) encodeStatus(method string) {
	sn.etag = `"v` + strconv.FormatUint(sn.Version, 10) + `"`
	sn.statusJSON = mustJSON(sn.statusResponse(method))
}

// encode pre-builds every cached body for a freshly computed snapshot.
func (sn *Snapshot) encode(method string) {
	sn.encodeStatus(method)
	out := make([]AllocationEntry, 0, len(sn.Problem.Flows))
	for fi, f := range sn.Problem.Flows {
		out = append(out, AllocationEntry{
			Src:        int(f.Src),
			Dst:        int(f.Dst),
			DemandMbps: f.DemandMbps,
			RateMbps:   sn.Alloc.FlowThroughput(fi),
			PerPath:    append([]float64(nil), sn.Alloc.X[fi]...),
		})
	}
	sn.allocJSON = mustJSON(out)
	sn.rulesJSON = mustJSON(rulesResponse(sn.RulesVersion, sn.Rules))
}

// NodeRules is one satellite's flow table in the full /v1/rules payload.
type NodeRules struct {
	Node  int         `json:"node"`
	Rules []RuleEntry `json:"rules"`
}

// RulesResponse is the full-rule-set payload of GET /v1/rules (no ?node=):
// every table, nodes ascending, rules in compiled (src, dst, label) order.
// Applying /v1/deltas catch-up deltas client-side converges to exactly this
// content (TestDeltaCatchup).
type RulesResponse struct {
	RulesVersion uint64      `json:"rules_version"`
	Tables       []NodeRules `json:"tables"`
}

func ruleEntries(tbl *rules.Table) []RuleEntry {
	out := make([]RuleEntry, 0, len(tbl.Rules))
	for _, rule := range tbl.Rules {
		out = append(out, RuleEntry{
			Src:      int(rule.Flow.Src),
			Dst:      int(rule.Flow.Dst),
			Label:    rule.Label,
			Next:     int(rule.Next),
			RateMbps: rule.RateMbps,
		})
	}
	return out
}

func rulesResponse(version uint64, rs *rules.RuleSet) RulesResponse {
	ids := make([]topology.NodeID, 0, len(rs.Tables))
	for id := range rs.Tables {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	resp := RulesResponse{RulesVersion: version, Tables: make([]NodeRules, 0, len(ids))}
	for _, id := range ids {
		resp.Tables = append(resp.Tables, NodeRules{Node: int(id), Rules: ruleEntries(rs.Tables[id])})
	}
	return resp
}

// publish swaps in the snapshot of a successful cycle under the monotonic
// guard: a slower cycle that computed an OLDER simulated time than the live
// snapshot is dropped (counted on sate_controld_nonmonotonic_drops_total)
// rather than rolling the served allocation backwards. Called with
// computeMu held — the single writer of both the changelog and the pointer.
func (s *Server) publish(tSec float64, p *te.Problem, alloc *te.Allocation, rs *rules.RuleSet, lat time.Duration) bool {
	cur := s.snap.Load()
	if cur != nil && tSec < cur.TimeSec {
		return false
	}
	next := &Snapshot{
		Version:      1,
		RulesVersion: s.log.Append(rs),
		TimeSec:      tSec,
		Problem:      p,
		Alloc:        alloc,
		Rules:        rs,
		SolveLatency: lat,
		ComputedAt:   time.Now(),
	}
	if cur != nil {
		next.Version = cur.Version + 1
	}
	next.encode(s.solver.Name())
	s.snap.Store(next)
	s.fb = nil // the fallback re-scorer belonged to the previous allocation

	m := &s.metrics
	m.publishes.Inc()
	m.snapVersion.Set(float64(next.Version))
	m.rulesVersionG.Set(float64(next.RulesVersion))
	return true
}

// publishDegraded re-publishes the last good snapshot with updated degraded
// info and a bumped version: pollers see the state change through the ETag
// without the allocation/rules bodies being re-encoded (they are shared
// with the previous snapshot). No-op before the first good cycle. Called
// with computeMu held.
func (s *Server) publishDegraded(deg degradedInfo) {
	cur := s.snap.Load()
	if cur == nil {
		return
	}
	next := &Snapshot{
		Version:      cur.Version + 1,
		RulesVersion: cur.RulesVersion,
		TimeSec:      cur.TimeSec,
		Problem:      cur.Problem,
		Alloc:        cur.Alloc,
		Rules:        cur.Rules,
		SolveLatency: cur.SolveLatency,
		ComputedAt:   cur.ComputedAt,
		deg:          deg,
		allocJSON:    cur.allocJSON,
		rulesJSON:    cur.rulesJSON,
	}
	next.encodeStatus(s.solver.Name())
	s.snap.Store(next)

	m := &s.metrics
	m.publishes.Inc()
	m.snapVersion.Set(float64(next.Version))
}
