package controller

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/obs"
	"sate/internal/sim"
	"sate/internal/solve"
	"sate/internal/te"
	"sate/internal/topology"
)

// scriptedSolver wraps a real allocator with a failure script: the first
// okFirst calls succeed, the next failFor calls fail, everything after
// succeeds again. An optional sleep simulates a slow solver.
type scriptedSolver struct {
	inner   sim.Allocator
	okFirst int
	failFor int
	sleep   time.Duration

	mu    sync.Mutex
	calls int
}

func (f *scriptedSolver) Name() string { return "scripted" }

func (f *scriptedSolver) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *scriptedSolver) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	f.mu.Lock()
	call := f.calls
	f.calls++
	f.mu.Unlock()
	if f.sleep > 0 {
		time.Sleep(f.sleep)
	}
	if call >= f.okFirst && call < f.okFirst+f.failFor {
		return nil, errors.New("injected solver failure")
	}
	return f.inner.Solve(p, opts...)
}

func chaosServer(t *testing.T, solver sim.Allocator) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	scen := sim.NewScenario(constellation.Toy(5, 6), sim.ScenarioConfig{
		Mode:              topology.CrossShellLasers,
		Intensity:         6,
		Seed:              7,
		MinElevDeg:        5,
		FlowDurationScale: 0.05,
	})
	reg := obs.NewRegistry()
	srv := New(scen, solver, WithRegistry(reg))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, reg
}

func getStatus(t *testing.T, url string) (StatusResponse, int) {
	t.Helper()
	resp, err := http.Get(url + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

// TestDegradedCycleServesStaleAllocation drives the failure path
// deterministically (no run loop): after a good cycle, k consecutive failed
// cycles — with link failures injected mid-run — must keep /status serving
// the last good allocation with the degraded flag, consecutive-failure count,
// and the honestly re-scored satisfaction; a succeeding cycle clears it all.
func TestDegradedCycleServesStaleAllocation(t *testing.T) {
	flaky := &scriptedSolver{inner: baselines.ECMPWF{}, okFirst: 1, failFor: 3}
	srv, ts, reg := chaosServer(t, flaky)

	if err := srv.RecomputeContext(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	healthy, code := getStatus(t, ts.URL)
	if code != http.StatusOK || healthy.Degraded {
		t.Fatalf("healthy status = %d degraded=%v", code, healthy.Degraded)
	}

	// Three failed cycles, each with 20% of links failure-injected: the
	// chaos path the run loop uses, driven synchronously.
	rng := rand.New(rand.NewSource(11))
	for k := 1; k <= 3; k++ {
		err := srv.recompute(context.Background(), 100+5*float64(k), 0.2, rng)
		if err == nil {
			t.Fatalf("cycle %d unexpectedly succeeded", k)
		}
		st, code := getStatus(t, ts.URL)
		if code != http.StatusOK {
			t.Fatalf("degraded status = %d, want 200 (stale allocation must keep serving)", code)
		}
		if !st.Degraded || st.ConsecutiveFailures != k {
			t.Fatalf("cycle %d: degraded=%v failures=%d", k, st.Degraded, st.ConsecutiveFailures)
		}
		if st.TimeSec != 100 {
			t.Fatalf("degraded status time = %v, want stale 100", st.TimeSec)
		}
		if st.LastError == "" || !strings.Contains(st.LastError, "injected solver failure") {
			t.Fatalf("last_error = %q", st.LastError)
		}
		if st.SatisfiedFrac < 0 || st.SatisfiedFrac > 1 {
			t.Fatalf("re-scored satisfaction out of range: %v", st.SatisfiedFrac)
		}
	}
	if got := reg.Gauge("sate_controld_degraded").Value(); got != 1 {
		t.Fatalf("degraded gauge = %v, want 1", got)
	}
	if got := reg.Gauge("sate_controld_consecutive_failures").Value(); got != 3 {
		t.Fatalf("consecutive_failures gauge = %v, want 3", got)
	}
	if got := reg.Counter("sate_controld_fallback_cycles_total").Value(); got != 3 {
		t.Fatalf("fallback_cycles_total = %d, want 3", got)
	}
	if got := reg.Counter("sate_controld_errors_total").Value(); got != 3 {
		t.Fatalf("errors_total = %d, want 3", got)
	}

	// Recovery: the next cycle succeeds and clears the degraded state.
	if err := srv.RecomputeContext(context.Background(), 120); err != nil {
		t.Fatal(err)
	}
	st, _ := getStatus(t, ts.URL)
	if st.Degraded || st.ConsecutiveFailures != 0 || st.LastError != "" {
		t.Fatalf("recovered status still degraded: %+v", st)
	}
	if st.TimeSec != 120 {
		t.Fatalf("recovered time = %v", st.TimeSec)
	}
	if got := reg.Gauge("sate_controld_degraded").Value(); got != 0 {
		t.Fatalf("degraded gauge after recovery = %v, want 0", got)
	}
	if got := reg.Gauge("sate_controld_consecutive_failures").Value(); got != 0 {
		t.Fatalf("consecutive_failures after recovery = %v, want 0", got)
	}
}

// TestChaosRunLoopSurvivesFailures is the acceptance chaos test: a run loop
// with k >= 3 consecutive injected solver failures AND FailFrac > 0 link
// failures must never return early — it serves the stale allocation flagged
// degraded, surfaces retries/fallbacks on the registry, recovers, and exits
// only on context cancel.
func TestChaosRunLoopSurvivesFailures(t *testing.T) {
	flaky := &scriptedSolver{inner: baselines.ECMPWF{}, okFirst: 1, failFor: 4}
	srv, ts, reg := chaosServer(t, flaky)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- srv.RunContext(ctx, RunConfig{
			StartSec:     100,
			IntervalSec:  0.05,
			RetryBaseSec: 0.02,
			RetryMaxSec:  0.05,
			FailFrac:     0.25,
			ChaosSeed:    5,
		})
	}()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			select {
			case err := <-done:
				t.Fatalf("run loop returned early (%v) while waiting for %s", err, desc)
			default:
			}
			if cond() {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}

	// First cycle publishes.
	waitFor("first good cycle", func() bool {
		_, code := getStatus(t, ts.URL)
		return code == http.StatusOK
	})
	// The failure streak flips /status degraded while still serving the
	// last good (t=100) allocation.
	waitFor("degraded stale status", func() bool {
		st, code := getStatus(t, ts.URL)
		return code == http.StatusOK && st.Degraded && st.TimeSec == 100
	})
	// Retries eventually succeed: degraded clears and time moves on.
	waitFor("recovery", func() bool {
		st, code := getStatus(t, ts.URL)
		return code == http.StatusOK && !st.Degraded && st.TimeSec > 100
	})

	if got := reg.Counter("sate_controld_errors_total").Value(); got < 4 {
		t.Errorf("errors_total = %d, want >= 4", got)
	}
	if got := reg.Counter("sate_controld_fallback_cycles_total").Value(); got < 1 {
		t.Errorf("fallback_cycles_total = %d, want >= 1", got)
	}
	if got := reg.Counter("sate_controld_retries_total").Value(); got < 1 {
		t.Errorf("retries_total = %d, want >= 1", got)
	}

	// The loop is still alive after all that; only cancel stops it.
	select {
	case err := <-done:
		t.Fatalf("run loop returned early: %v", err)
	default:
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run loop did not stop on cancel")
	}
}

// TestCleanShutdownLeavesZeroErrors pins the acceptance criterion that a
// graceful context cancellation — even one landing mid-solve — never counts
// on sate_controld_errors_total.
func TestCleanShutdownLeavesZeroErrors(t *testing.T) {
	slow := &scriptedSolver{inner: baselines.ECMPWF{}, sleep: 20 * time.Millisecond}
	srv, _, reg := chaosServer(t, slow)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- srv.RunContext(ctx, RunConfig{StartSec: 100, IntervalSec: 0.03})
	}()
	// Let a few cycles run, then cancel at a point likely mid-cycle.
	for i := 0; i < 500 && slow.Calls() < 3; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run loop did not stop on cancel")
	}
	if got := reg.Counter("sate_controld_errors_total").Value(); got != 0 {
		t.Fatalf("errors_total after clean shutdown = %d, want 0", got)
	}
	if got := reg.Gauge("sate_controld_degraded").Value(); got != 0 {
		t.Fatalf("degraded after clean shutdown = %v, want 0", got)
	}
}

// TestConcurrentRecomputeMonotonic pins the racing-/recompute regression:
// two simultaneous requests are serialized, and the one carrying the OLDER
// simulated time can never overwrite the newer published state, whichever
// order the scheduler runs them in.
func TestConcurrentRecomputeMonotonic(t *testing.T) {
	_, ts, reg := chaosServer(t, baselines.ECMPWF{})

	post := func(body string, wg *sync.WaitGroup) {
		defer wg.Done()
		resp, err := http.Post(ts.URL+"/recompute", "application/json", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("recompute %s = %d", body, resp.StatusCode)
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go post(`{"time_sec": 200}`, &wg)
	go post(`{"time_sec": 100}`, &wg)
	wg.Wait()

	st, code := getStatus(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if st.TimeSec != 200 {
		t.Fatalf("published time = %v, want 200 (older cycle must not win)", st.TimeSec)
	}
	// Two cycles completed; if the older one finished second its publication
	// was dropped, otherwise ordinary ordering saved it — either way the
	// invariant above holds. Sanity-check the cycle accounting.
	if got := reg.Counter("sate_controld_cycles_total").Value(); got != 2 {
		t.Fatalf("cycles_total = %d, want 2", got)
	}
}

// TestRunLoopSkippedCycles pins the ticker-fallback fix: when cycles outrun
// the interval, simulated time keeps wall-clock cadence (elapsed intervals
// are consumed, not silently dropped) and the skipped cycles are counted.
func TestRunLoopSkippedCycles(t *testing.T) {
	slow := &scriptedSolver{inner: baselines.ECMPWF{}, sleep: 25 * time.Millisecond}
	srv, _, reg := chaosServer(t, slow)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		done <- srv.RunContext(ctx, RunConfig{StartSec: 100, IntervalSec: 0.01})
	}()
	for slow.Calls() < 5 && time.Since(start) < 10*time.Second {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done

	if got := reg.Counter("sate_controld_skipped_cycles_total").Value(); got < 1 {
		t.Fatalf("skipped_cycles_total = %d, want >= 1 (solver 2.5x slower than interval)", got)
	}
	// Simulated time kept pace with the wall clock instead of falling one
	// interval per cycle behind: with a 25 ms solve and a 10 ms interval,
	// cycle-counted time would lag wall-derived time by >= 2 intervals after
	// five cycles.
	st := srv.Current()
	if st == nil {
		t.Fatal("no state published")
	}
	cycles := reg.Counter("sate_controld_cycles_total").Value()
	if minT := 100 + float64(cycles)*0.01; st.TimeSec < minT {
		t.Fatalf("simulated time %v fell behind wall cadence (>= %v expected after %d cycles)",
			st.TimeSec, minT, cycles)
	}
}
