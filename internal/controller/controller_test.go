package controller

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/sim"
	"sate/internal/topology"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	scen := sim.NewScenario(constellation.Toy(5, 6), sim.ScenarioConfig{
		Mode:              topology.CrossShellLasers,
		Intensity:         6,
		Seed:              7,
		MinElevDeg:        5,
		FlowDurationScale: 0.05,
	})
	srv := New(scen, baselines.ECMPWF{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp := getJSON(t, ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestStatusBeforeFirstCycle(t *testing.T) {
	_, ts := testServer(t)
	resp := getJSON(t, ts.URL+"/status", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status before recompute = %d, want 503", resp.StatusCode)
	}
}

func TestRecomputeAndStatus(t *testing.T) {
	srv, ts := testServer(t)
	if err := srv.RecomputeContext(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	var st StatusResponse
	resp := getJSON(t, ts.URL+"/status", &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if st.Method != "ecmp-wf" || st.TimeSec != 100 {
		t.Errorf("status = %+v", st)
	}
	if st.Flows <= 0 || st.TotalDemandMbps <= 0 {
		t.Errorf("no traffic in status: %+v", st)
	}
	if st.SatisfiedFrac < 0 || st.SatisfiedFrac > 1 {
		t.Errorf("satisfied out of range: %v", st.SatisfiedFrac)
	}
	if st.NumRules <= 0 {
		t.Errorf("no rules compiled: %+v", st)
	}
}

func TestRecomputeViaHTTP(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/recompute", "application/json",
		strings.NewReader(`{"time_sec": 120}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recompute = %d", resp.StatusCode)
	}
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.TimeSec != 120 {
		t.Errorf("time = %v", st.TimeSec)
	}
	// Bad bodies are rejected.
	for _, body := range []string{"not json", `{"time_sec": -5}`} {
		resp, err := http.Post(ts.URL+"/recompute", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q -> %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestAllocationEndpoint(t *testing.T) {
	srv, ts := testServer(t)
	if err := srv.RecomputeContext(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	var entries []AllocationEntry
	resp := getJSON(t, ts.URL+"/allocation", &entries)
	if resp.StatusCode != http.StatusOK || len(entries) == 0 {
		t.Fatalf("allocation = %d, %d entries", resp.StatusCode, len(entries))
	}
	for _, e := range entries {
		if e.RateMbps > e.DemandMbps+1e-6 {
			t.Errorf("entry over demand: %+v", e)
		}
		var sum float64
		for _, v := range e.PerPath {
			sum += v
		}
		if diff := sum - e.RateMbps; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("per-path sum %v != rate %v", sum, e.RateMbps)
		}
	}
}

func TestRulesEndpoint(t *testing.T) {
	srv, ts := testServer(t)
	if err := srv.RecomputeContext(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	// Find a node with rules via the allocation's first flow source.
	var entries []AllocationEntry
	getJSON(t, ts.URL+"/allocation", &entries)
	src := -1
	for _, e := range entries {
		if e.RateMbps > 0 {
			src = e.Src
			break
		}
	}
	if src < 0 {
		t.Skip("no allocated flow")
	}
	var rules []RuleEntry
	resp := getJSON(t, ts.URL+"/rules?node="+itoa(src), &rules)
	if resp.StatusCode != http.StatusOK || len(rules) == 0 {
		t.Fatalf("rules for node %d: %d, %d entries", src, resp.StatusCode, len(rules))
	}
	// Validation failures.
	for _, q := range []string{"/rules", "/rules?node=abc", "/rules?node=-1", "/rules?node=99999"} {
		resp := getJSON(t, ts.URL+q, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s -> %d, want 400", q, resp.StatusCode)
		}
	}
}

func itoa(i int) string {
	b, _ := json.Marshal(i)
	return string(b)
}

func TestRunLoop(t *testing.T) {
	srv, _ := testServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.RunContext(ctx, RunConfig{StartSec: 100, IntervalSec: 0.05}) }()
	// Let it tick a couple of times, then stop.
	for i := 0; i < 200; i++ {
		if st := srv.Current(); st != nil && st.TimeSec > 100 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	st := srv.Current()
	if st == nil || st.TimeSec < 100 {
		t.Fatalf("run loop did not compute: %+v", st)
	}
}
