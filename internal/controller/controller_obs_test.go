package controller

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/obs"
	"sate/internal/sim"
	"sate/internal/topology"
)

func testServerWithRegistry(t *testing.T) (*Server, *httptest.Server, *obs.Registry) {
	t.Helper()
	scen := sim.NewScenario(constellation.Toy(5, 6), sim.ScenarioConfig{
		Mode:              topology.CrossShellLasers,
		Intensity:         6,
		Seed:              7,
		MinElevDeg:        5,
		FlowDurationScale: 0.05,
	})
	reg := obs.NewRegistry()
	reg.CollectGoRuntime()
	srv := New(scen, baselines.ECMPWF{}, WithRegistry(reg))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, reg
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	srv, ts, _ := testServerWithRegistry(t)

	// Scrapable before the first cycle; every sample line well-formed.
	out := scrape(t, ts.URL+"/metrics")
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}

	if err := srv.RecomputeContext(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	out = scrape(t, ts.URL+"/metrics")
	for _, want := range []string{
		"sate_controld_cycles_total 1",
		`sate_solve_seconds_count{solver="ecmp-wf"} 1`,
		"sate_controld_cycle_seconds_count 1",
		"sate_controld_satisfied_ratio ",
		"sate_controld_rules ",
		"go_heap_alloc_bytes ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in scrape:\n%s", want, out)
		}
	}

	// The solve histogram visibly moves with another cycle.
	if err := srv.RecomputeContext(context.Background(), 105); err != nil {
		t.Fatal(err)
	}
	out = scrape(t, ts.URL+"/metrics")
	if !strings.Contains(out, `sate_solve_seconds_count{solver="ecmp-wf"} 2`) {
		t.Fatalf("solve histogram did not move:\n%s", out)
	}
	if g := srv.Registry().Gauge("sate_controld_satisfied_ratio").Value(); g < 0 || g > 1 {
		t.Fatalf("satisfied ratio out of range: %v", g)
	}
}

func TestMetricsDeterministicOrdering(t *testing.T) {
	srv, ts, _ := testServerWithRegistry(t)
	if err := srv.RecomputeContext(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	// Go-runtime gauges sample live state; compare only registered families,
	// which must render byte-identically across scrapes of unchanged state.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "go_") || strings.Contains(line, "seconds") {
				continue // live runtime samples and timing histograms vary
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	a := scrape(t, ts.URL+"/metrics")
	b := scrape(t, ts.URL+"/metrics")
	if strip(a) != strip(b) {
		t.Fatalf("scrapes differ:\n%s\n---\n%s", strip(a), strip(b))
	}
}

func TestPprofEndpoints(t *testing.T) {
	_, ts, _ := testServerWithRegistry(t)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestNoMetricsWithoutRegistry(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("metrics without registry = %d, want 404", resp.StatusCode)
	}
}

func TestRecomputeContextCancelled(t *testing.T) {
	srv, _, reg := testServerWithRegistry(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.RecomputeContext(ctx, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled recompute = %v, want context.Canceled", err)
	}
	// A clean cancellation is not a cycle failure: it must not inflate the
	// error counter (that used to 500 graceful shutdowns into the metrics)
	// and must not flip the controller degraded.
	if got := reg.Counter("sate_controld_errors_total").Value(); got != 0 {
		t.Fatalf("errors_total = %d, want 0", got)
	}
	if got := reg.Counter("sate_controld_canceled_cycles_total").Value(); got != 1 {
		t.Fatalf("canceled_cycles_total = %d, want 1", got)
	}
	if got := reg.Gauge("sate_controld_degraded").Value(); got != 0 {
		t.Fatalf("degraded = %v, want 0", got)
	}
}

func TestRunContextCancel(t *testing.T) {
	srv, _, _ := testServerWithRegistry(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.RunContext(ctx, RunConfig{StartSec: 100, IntervalSec: 0.05}) }()
	for i := 0; i < 200; i++ {
		if st := srv.Current(); st != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("RunContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunContext did not stop on cancel")
	}
	if st := srv.Current(); st == nil {
		t.Fatal("run loop never computed")
	}
}

func TestStatusExplicitOK(t *testing.T) {
	srv, ts, _ := testServerWithRegistry(t)
	if err := srv.RecomputeContext(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
}
