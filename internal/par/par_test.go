package par

import (
	"sync/atomic"
	"testing"
)

// TestForCoversRange checks every index is visited exactly once, at any
// worker count and grain.
func TestForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			for _, grain := range []int{0, 1, 3, 64, 2000} {
				restore := SetWorkers(workers)
				visits := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo > hi {
						t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				restore()
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, v)
					}
				}
			}
		}
	}
}

// TestForChunksLayoutFixed checks the chunk layout depends only on (n,
// grain), not the worker count.
func TestForChunksLayoutFixed(t *testing.T) {
	layout := func(workers int) map[int][2]int {
		restore := SetWorkers(workers)
		defer restore()
		var mu sync32
		out := make(map[int][2]int)
		ForChunks(100, 7, func(c, lo, hi int) {
			mu.Lock()
			out[c] = [2]int{lo, hi}
			mu.Unlock()
		})
		return out
	}
	a, b := layout(1), layout(4)
	if len(a) != len(b) || len(a) != NumChunks(100, 7) {
		t.Fatalf("chunk counts differ: %d vs %d (want %d)", len(a), len(b), NumChunks(100, 7))
	}
	for c, bounds := range a {
		if b[c] != bounds {
			t.Errorf("chunk %d bounds differ: %v vs %v", c, bounds, b[c])
		}
	}
}

// sync32 is a tiny spinlock so the test has no import-order noise.
type sync32 struct{ v atomic.Int32 }

func (s *sync32) Lock() {
	for !s.v.CompareAndSwap(0, 1) {
	}
}
func (s *sync32) Unlock() { s.v.Store(0) }

func TestSerialPathRunsInline(t *testing.T) {
	restore := SetWorkers(1)
	defer restore()
	calls := 0
	For(10, 3, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Errorf("serial path should get one chunk [0,10), got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("serial path called fn %d times, want 1", calls)
	}
}

func TestSetWorkersRestore(t *testing.T) {
	base := Workers()
	restore := SetWorkers(3)
	if Workers() != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", Workers())
	}
	restore()
	if Workers() != base {
		t.Errorf("Workers() = %d after restore, want %d", Workers(), base)
	}
}

func TestGrain(t *testing.T) {
	restore := SetWorkers(4)
	defer restore()
	if g := Grain(1000, 1); g < 1 || g > 1000 {
		t.Errorf("Grain(1000,1) = %d out of range", g)
	}
	// min floor respected
	if g := Grain(1000, 200); g != 200 {
		t.Errorf("Grain(1000,200) = %d, want 200", g)
	}
	restore2 := SetWorkers(1)
	defer restore2()
	if g := Grain(1000, 1); g != 1000 {
		t.Errorf("single worker should yield one chunk, got grain %d", g)
	}
}

// TestForParallelWrites exercises concurrent disjoint writes under the race
// detector.
func TestForParallelWrites(t *testing.T) {
	restore := SetWorkers(8)
	defer restore()
	n := 10000
	out := make([]float64, n)
	For(n, 16, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(i) * 2
		}
	})
	for i, v := range out {
		if v != float64(i)*2 {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
}
