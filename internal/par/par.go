// Package par is the shared parallel-compute layer: a chunked parallel-for
// over a process-wide worker budget. The hot kernels of the repo (autodiff
// matmul/softmax rows, k-shortest-path fan-out across src/dst pairs,
// per-cell experiment sweeps) are embarrassingly parallel over disjoint
// output ranges; par.For runs them across cores while keeping results
// bitwise-deterministic.
//
// Determinism contract: For(n, grain, fn) partitions [0, n) into fixed
// contiguous chunks of size grain. Chunk boundaries depend only on (n,
// grain), never on the worker count or scheduling, so a kernel whose chunks
// write disjoint outputs (the only kind used here) produces bitwise
// identical results for every worker count — including 1, where For degrades
// to a plain loop with no goroutines. Kernels that need cross-chunk
// reduction merge per-chunk partials in chunk order (see ForChunks).
//
// Worker budget: GOMAXPROCS by default, overridden by the SATE_WORKERS
// environment variable (useful to pin tests and reproduce training runs),
// or programmatically by SetWorkers.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"sate/internal/obs"
)

// workerOverride > 0 replaces the default worker budget.
var workerOverride atomic.Int64

// poolMetrics holds the pre-resolved obs handles for the worker pool. It is
// swapped atomically as a unit so instrumented dispatches never see a
// half-installed set.
type poolMetrics struct {
	serial   *obs.Counter // kernel calls taken on the serial fast path
	dispatch *obs.Counter // parallel dispatches (goroutine fan-outs)
	chunks   *obs.Counter // chunks processed by parallel dispatches
	inflight *obs.Gauge   // workers currently running (queue utilisation)
}

// metrics is nil when the pool is uninstrumented — the common case, checked
// with one atomic load per For call.
var metrics atomic.Pointer[poolMetrics]

// Observe installs pool instrumentation on a registry: dispatch/serial-path
// counters, processed-chunk counts and an in-flight worker gauge
// (sate_par_* — DESIGN.md §9). A nil registry uninstalls instrumentation.
// Counter updates are single atomic adds, so enabling this does not change
// the pool's allocation behaviour (TestTapeReuseZeroAllocs passes with it
// on).
func Observe(r *obs.Registry) {
	if r == nil {
		metrics.Store(nil)
		return
	}
	metrics.Store(&poolMetrics{
		serial:   r.Counter("sate_par_serial_total"),
		dispatch: r.Counter("sate_par_dispatch_total"),
		chunks:   r.Counter("sate_par_chunks_total"),
		inflight: r.Gauge("sate_par_inflight_workers"),
	})
}

func init() {
	if s := os.Getenv("SATE_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			workerOverride.Store(int64(n))
		}
	}
}

// Workers returns the current worker budget: SetWorkers override if set,
// else SATE_WORKERS, else GOMAXPROCS.
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the worker budget (n <= 0 restores the default) and
// returns a func that restores the previous setting. Intended for tests:
//
//	defer par.SetWorkers(1)()
func SetWorkers(n int) (restore func()) {
	prev := workerOverride.Load()
	if n <= 0 {
		workerOverride.Store(0)
	} else {
		workerOverride.Store(int64(n))
	}
	//lint:ignore hotpath-no-alloc the restore closure is the API contract; one allocation per solve-scoped override, never per op
	return func() { workerOverride.Store(prev) }
}

// numChunks returns how many grain-sized chunks cover n items.
func numChunks(n, grain int) int { return (n + grain - 1) / grain }

// For runs fn over [0, n) in contiguous chunks of at most grain items.
// fn(lo, hi) must only touch state owned by rows [lo, hi); under that
// contract the result is bitwise identical for every worker count. With one
// worker (or a single chunk) fn runs inline on the caller's goroutine —
// no goroutines, no synchronisation, zero overhead over a plain loop.
//
// The fn closure itself is a heap allocation at the call site (it escapes
// into the worker goroutines). Steady-state allocation-free kernels use
// ForCtx with a static function instead.
func For(n, grain int, fn func(lo, hi int)) {
	ForCtx(n, grain, fn, callChunk)
}

func callChunk(fn func(lo, hi int), lo, hi int) { fn(lo, hi) }

// ForCtx is For for closure-free kernels: fn must be a static (top-level)
// function and all per-call state travels in ctx, so the call site performs
// no heap allocation. The only allocating path is goroutine dispatch itself,
// which is taken when more than one worker actually runs — with a single
// worker or a single chunk the kernel is allocation-free. Same determinism
// contract as For.
func ForCtx[T any](n, grain int, ctx T, fn func(ctx T, lo, hi int)) {
	if n <= 0 {
		return
	}
	// No parameter of this function may be reassigned: a reassigned-and-
	// goroutine-captured variable is captured by reference, which forces a
	// heap allocation in the prologue of EVERY call — including the serial
	// fast path. That is why the dispatch loop lives in a separate function.
	g := max(grain, 1)
	chunks := numChunks(n, g)
	workers := min(Workers(), chunks)
	if workers <= 1 {
		if m := metrics.Load(); m != nil {
			m.serial.Inc()
		}
		fn(ctx, 0, n)
		return
	}
	forCtxParallel(n, g, chunks, workers, ctx, fn)
}

// forCtxParallel is the goroutine-dispatch path of ForCtx. Kept noinline so
// its closure captures cannot leak escape decisions into ForCtx's serial
// fast path.
//
//go:noinline
//lint:ignore hotpath-no-alloc goroutine dispatch allocates per fork by design; the zero-alloc gates pin the serial fast path, which never enters here
func forCtxParallel[T any](n, grain, chunks, workers int, ctx T, fn func(ctx T, lo, hi int)) {
	if m := metrics.Load(); m != nil {
		m.dispatch.Inc()
		m.chunks.Add(uint64(chunks))
		m.inflight.Add(float64(workers))
		defer m.inflight.Add(-float64(workers))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(ctx, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForErr is For for fallible kernels: fn may return an error per chunk, and
// ForErr returns the error of the lowest-indexed failing chunk (or nil). The
// chunk layout is fixed by (n, grain), every chunk runs regardless of other
// chunks' failures, and the winning error is selected by chunk index — so the
// returned error is deterministic for every worker count, unlike a
// first-to-fail race.
func ForErr(n, grain int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	g := max(grain, 1)
	errs := make([]error, numChunks(n, g))
	ForChunks(n, g, func(chunk, lo, hi int) {
		errs[chunk] = fn(lo, hi)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ForChunks is For with the chunk index exposed: fn(chunk, lo, hi) may
// accumulate into a per-chunk partial (indexed by chunk, allocated via
// NumChunks) which the caller merges serially in chunk order afterwards.
// Because the chunk layout is fixed by (n, grain), the partials — and any
// in-chunk-order merge of them — are deterministic for a fixed grain,
// independent of worker count and scheduling.
func ForChunks(n, grain int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := numChunks(n, grain)
	workers := Workers()
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		if m := metrics.Load(); m != nil {
			m.serial.Inc()
		}
		for c := 0; c < chunks; c++ {
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(c, lo, hi)
		}
		return
	}
	if m := metrics.Load(); m != nil {
		m.dispatch.Inc()
		m.chunks.Add(uint64(chunks))
		m.inflight.Add(float64(workers))
		defer m.inflight.Add(-float64(workers))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// NumChunks returns the number of chunks For/ForChunks will use for (n,
// grain) — the size callers need for per-chunk partial buffers.
func NumChunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain <= 0 {
		grain = 1
	}
	return numChunks(n, grain)
}

// Grain picks a chunk size for n items that yields a few chunks per worker
// (for load balance) while never going below min items per chunk (so cheap
// rows amortise the dispatch overhead).
func Grain(n, min int) int {
	if min < 1 {
		min = 1
	}
	w := Workers()
	if w <= 1 || n <= min {
		return n // single chunk -> serial fast path
	}
	g := n / (4 * w)
	if g < min {
		g = min
	}
	return g
}
