// Package topology generates and analyses satellite network topologies: the
// inter-satellite link (ISL) structure of Sec. 2.1/2.3.1, time-series
// snapshots, topology-holding-time (THT) analysis, configured-path
// obsolescence, link-exclusion accounting, and failure injection.
//
// Link formation rules follow the paper:
//
//   - Intra-shell +Grid: each satellite links to its two intra-orbit
//     neighbours (stable) and two inter-orbit neighbours; inter-orbit links
//     deactivate above 75 degrees latitude.
//   - Cross-shell lasers: each satellite links to the nearest satellite in
//     the adjacent shell while their distance is at most 2000 km.
//   - Cross-shell ground relays ("bent-pipe"): each satellite links to the
//     nearest ground relay while its elevation is at least 25 degrees; the
//     relay is a network node (Sec. 3.2: graph nodes include ground relays).
package topology

import (
	"fmt"
	"sort"

	"sate/internal/orbit"
)

// NodeID identifies a network node: satellites occupy [0, NumSats), ground
// relays (bent-pipe mode) occupy [NumSats, NumSats+NumRelays).
type NodeID int

// LinkKind classifies how a link forms; the kinds have different stability.
type LinkKind uint8

const (
	// IntraOrbit links connect consecutive satellites in one orbital plane.
	IntraOrbit LinkKind = iota
	// InterOrbit links connect satellites of adjacent planes in one shell.
	InterOrbit
	// CrossShellLaser links connect satellites of adjacent shells directly.
	CrossShellLaser
	// GroundRelayLink connects a satellite to a ground relay (bent-pipe).
	GroundRelayLink
)

func (k LinkKind) String() string {
	switch k {
	case IntraOrbit:
		return "intra-orbit"
	case InterOrbit:
		return "inter-orbit"
	case CrossShellLaser:
		return "cross-shell-laser"
	case GroundRelayLink:
		return "ground-relay"
	default:
		return fmt.Sprintf("LinkKind(%d)", uint8(k))
	}
}

// Link is an undirected edge between two nodes. A and B are stored with
// A < B so that a link compares and hashes canonically.
type Link struct {
	A, B NodeID
	Kind LinkKind
}

// MakeLink builds a canonical link (endpoints ordered).
func MakeLink(a, b NodeID, kind LinkKind) Link {
	if a > b {
		a, b = b, a
	}
	return Link{A: a, B: b, Kind: kind}
}

// key encodes the endpoint pair into a single comparable value.
func (l Link) key() uint64 { return uint64(l.A)<<32 | uint64(uint32(l.B)) }

// hash returns a mixed 64-bit hash of the endpoint pair, used for
// order-independent snapshot fingerprints.
func (l Link) hash() uint64 {
	x := l.key()
	// SplitMix64 finalizer: excellent avalanche for XOR-combining.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Snapshot is the topology at one instant: the node universe, the live link
// set, node positions, and a fingerprint for fast equality tests.
type Snapshot struct {
	TimeSec  float64
	NumSats  int
	NumNodes int // sats + relays
	Links    []Link
	Pos      []orbit.Vec3 // indexed by NodeID; relays included in bent-pipe mode

	fp fingerprint
}

// fingerprint is an order-independent digest of a link set.
type fingerprint struct {
	xor   uint64
	sum   uint64
	count int
}

func fingerprintOf(links []Link) fingerprint {
	var f fingerprint
	for _, l := range links {
		h := l.hash()
		f.xor ^= h
		f.sum += h
		f.count++
	}
	return f
}

// Finalize computes the snapshot fingerprint; generators call it after
// assembling Links.
func (s *Snapshot) Finalize() { s.fp = fingerprintOf(s.Links) }

// SameTopology reports whether two snapshots have identical link sets.
// It compares fingerprints: collisions are astronomically unlikely
// (order-independent 64-bit XOR + 64-bit sum + count).
func (s *Snapshot) SameTopology(o *Snapshot) bool { return s.fp == o.fp }

// Fingerprint returns a stable digest usable as a map key.
func (s *Snapshot) Fingerprint() [2]uint64 {
	return [2]uint64{s.fp.xor ^ uint64(s.fp.count), s.fp.sum}
}

// LinkSet is a membership set of links keyed by endpoint pair. Membership is
// kind-agnostic by construction: the key encodes only the canonicalised
// endpoints, so Has(a, b) answers "is there a live link between a and b"
// regardless of which LinkKind either side was built with. Consumers that
// need the kind read it from the stored Link value.
type LinkSet map[uint64]Link

// Add inserts a link (last writer wins on the stored Kind).
func (m LinkSet) Add(l Link) { m[l.key()] = l }

// Has reports whether a live link connects a and b, in either endpoint order
// and irrespective of LinkKind.
func (m LinkSet) Has(a, b NodeID) bool {
	if a > b {
		a, b = b, a
	}
	_, ok := m[uint64(a)<<32|uint64(uint32(b))]
	return ok
}

// LinkSet returns the links as a set keyed by endpoint pair.
func (s *Snapshot) LinkSet() LinkSet {
	m := make(LinkSet, len(s.Links))
	for _, l := range s.Links {
		m.Add(l)
	}
	return m
}

// HasLink reports whether the link between a and b is present.
func (s *Snapshot) HasLink(a, b NodeID) bool {
	l := MakeLink(a, b, IntraOrbit)
	for _, x := range s.Links {
		if x.A == l.A && x.B == l.B {
			return true
		}
	}
	return false
}

// Adjacency builds an adjacency list over all nodes.
func (s *Snapshot) Adjacency() [][]NodeID {
	adj := make([][]NodeID, s.NumNodes)
	for _, l := range s.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	return adj
}

// Degrees returns the degree of every node.
func (s *Snapshot) Degrees() []int {
	deg := make([]int, s.NumNodes)
	for _, l := range s.Links {
		deg[l.A]++
		deg[l.B]++
	}
	return deg
}

// LinkLengthKm returns the Euclidean length of a link in this snapshot.
func (s *Snapshot) LinkLengthKm(l Link) float64 {
	return s.Pos[l.A].Distance(s.Pos[l.B])
}

// Diff returns the links added and removed going from s to o.
//
//lint:ignore hotpath-no-alloc allocates the returned churn lists by contract; one call per topology cycle, proportional to churn
func (s *Snapshot) Diff(o *Snapshot) (added, removed []Link) {
	mine := s.LinkSet()
	theirs := o.LinkSet()
	for k, l := range theirs {
		if _, ok := mine[k]; !ok {
			added = append(added, l)
		}
	}
	for k, l := range mine {
		if _, ok := theirs[k]; !ok {
			removed = append(removed, l)
		}
	}
	sortLinks(added)
	sortLinks(removed)
	return added, removed
}

func sortLinks(ls []Link) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].key() < ls[j].key() })
}

// ConnectedComponents returns the number of connected components among
// satellite nodes (relays included if present).
func (s *Snapshot) ConnectedComponents() int {
	adj := s.Adjacency()
	seen := make([]bool, s.NumNodes)
	var stack []NodeID
	n := 0
	for start := 0; start < s.NumNodes; start++ {
		if seen[start] {
			continue
		}
		n++
		seen[start] = true
		stack = append(stack[:0], NodeID(start))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range adj[u] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
	}
	return n
}
