package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sate/internal/constellation"
	"sate/internal/groundnet"
	"sate/internal/orbit"
)

func toyGen(mode CrossShellMode) *Generator {
	c := constellation.Toy(6, 8)
	cfg := DefaultConfig(mode)
	if mode == CrossShellGroundRelays {
		g := groundnet.SyntheticPopulation(1)
		cfg.Relays = groundnet.PlaceSites(40, g.Probabilities(0.2), rand.New(rand.NewSource(5)))
	}
	return NewGenerator(c, cfg)
}

func TestMakeLinkCanonical(t *testing.T) {
	a := MakeLink(5, 2, IntraOrbit)
	b := MakeLink(2, 5, IntraOrbit)
	if a != b {
		t.Errorf("links not canonical: %+v vs %+v", a, b)
	}
	if a.A != 2 || a.B != 5 {
		t.Errorf("ordering wrong: %+v", a)
	}
}

func TestLinkHashDistinct(t *testing.T) {
	seen := make(map[uint64]Link)
	for a := NodeID(0); a < 60; a++ {
		for b := a + 1; b < 60; b++ {
			l := MakeLink(a, b, IntraOrbit)
			if prev, ok := seen[l.hash()]; ok {
				t.Fatalf("hash collision: %+v vs %+v", prev, l)
			}
			seen[l.hash()] = l
		}
	}
}

func TestFingerprintOrderIndependent(t *testing.T) {
	links := []Link{MakeLink(0, 1, IntraOrbit), MakeLink(2, 3, InterOrbit), MakeLink(1, 4, CrossShellLaser)}
	rev := []Link{links[2], links[0], links[1]}
	if fingerprintOf(links) != fingerprintOf(rev) {
		t.Error("fingerprint must be order independent")
	}
	if fingerprintOf(links) == fingerprintOf(links[:2]) {
		t.Error("fingerprint must distinguish different sets")
	}
}

func TestSnapshotGridStructure(t *testing.T) {
	g := toyGen(CrossShellNone)
	s := g.Snapshot(0)
	if s.NumSats != 96 || s.NumNodes != 96 {
		t.Fatalf("nodes = %d/%d", s.NumSats, s.NumNodes)
	}
	deg := s.Degrees()
	// With a 53-degree inclination nothing reaches 75 degrees latitude, so
	// every satellite has exactly 4 intra-shell links.
	for id, d := range deg {
		if d != 4 {
			t.Fatalf("sat %d degree = %d, want 4", id, d)
		}
	}
	// Count kinds: per shell of 48 sats there are 48 intra + 48 inter links.
	kinds := map[LinkKind]int{}
	for _, l := range s.Links {
		kinds[l.Kind]++
	}
	if kinds[IntraOrbit] != 96 || kinds[InterOrbit] != 96 {
		t.Errorf("link kinds: %v", kinds)
	}
}

func TestHighInclinationDropsInterOrbitLinks(t *testing.T) {
	// A polar shell reaches +/-86 degrees latitude: satellites above 75
	// degrees must drop inter-orbit links.
	c := constellation.MustNew("polar", []constellation.Shell{
		{Name: "polar", AltitudeKm: 781, InclinationDeg: 86.4, Planes: 6, SatsPerPlane: 11, PhaseFactor: 2},
	})
	g := NewGenerator(c, DefaultConfig(CrossShellNone))
	s := g.Snapshot(0)
	maxLat := orbit.Deg(75)
	for _, l := range s.Links {
		if l.Kind != InterOrbit {
			continue
		}
		for _, n := range []NodeID{l.A, l.B} {
			if lat := latOf(s.Pos[n]); math.Abs(lat) > maxLat {
				t.Fatalf("inter-orbit link at latitude %.1f deg", orbit.Rad2Deg(lat))
			}
		}
	}
	// And some satellites must actually be above the cutoff at t=0.
	above := 0
	for id := 0; id < s.NumSats; id++ {
		if math.Abs(latOf(s.Pos[id])) > maxLat {
			above++
		}
	}
	if above == 0 {
		t.Skip("no satellite above cutoff at t=0; geometry changed")
	}
	deg := s.Degrees()
	for id := 0; id < s.NumSats; id++ {
		if math.Abs(latOf(s.Pos[id])) > maxLat && deg[id] > 2 {
			t.Fatalf("high-latitude sat %d has degree %d", id, deg[id])
		}
	}
}

func TestCrossShellLasersRespectRange(t *testing.T) {
	g := toyGen(CrossShellLasers)
	s := g.Snapshot(0)
	nCross := 0
	for _, l := range s.Links {
		if l.Kind != CrossShellLaser {
			continue
		}
		nCross++
		if d := s.LinkLengthKm(l); d > g.Cfg.LaserMaxRangeKm {
			t.Fatalf("laser link length %.0f km exceeds %v", d, g.Cfg.LaserMaxRangeKm)
		}
		// Endpoints must be in different shells.
		if g.Cons.ShellOf(constellation.SatID(l.A)) == g.Cons.ShellOf(constellation.SatID(l.B)) {
			t.Fatal("cross-shell link within one shell")
		}
	}
	if nCross == 0 {
		t.Fatal("no cross-shell lasers formed; shells are 20 km apart")
	}
}

func TestCrossShellLaserIsNearest(t *testing.T) {
	g := toyGen(CrossShellLasers)
	s := g.Snapshot(0)
	// For every satellite in shell 0 with a cross link, verify the partner is
	// the true nearest shell-1 satellite (brute force).
	shell1 := g.Cons.ShellSats(1)
	checked := 0
	for _, l := range s.Links {
		if l.Kind != CrossShellLaser {
			continue
		}
		lo, hi := l.A, l.B
		if g.Cons.ShellOf(constellation.SatID(lo)) != 0 {
			lo, hi = hi, lo
		}
		best := constellation.SatID(-1)
		bestD := math.MaxFloat64
		for _, cand := range shell1 {
			if d := s.Pos[lo].Distance(s.Pos[cand.ID]); d < bestD {
				best, bestD = cand.ID, d
			}
		}
		if NodeID(best) != hi {
			t.Fatalf("sat %d paired with %d, nearest is %d (%.1f km)", lo, hi, best, bestD)
		}
		checked++
		if checked > 20 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestGroundRelayLinks(t *testing.T) {
	g := toyGen(CrossShellGroundRelays)
	s := g.Snapshot(0)
	if s.NumNodes != s.NumSats+40 {
		t.Fatalf("expected 40 relay nodes, got %d extra", s.NumNodes-s.NumSats)
	}
	minElev := orbit.Deg(g.Cfg.RelayMinElevDeg)
	n := 0
	for _, l := range s.Links {
		if l.Kind != GroundRelayLink {
			continue
		}
		n++
		sat, relay := l.A, l.B
		if int(relay) < s.NumSats {
			sat, relay = relay, sat
		}
		if int(relay) < s.NumSats {
			t.Fatal("ground-relay link between two satellites")
		}
		if e := orbit.ElevationAngle(s.Pos[relay], s.Pos[sat]); e < minElev-1e-9 {
			t.Fatalf("relay link at elevation %.1f deg", orbit.Rad2Deg(e))
		}
	}
	if n == 0 {
		t.Fatal("no ground-relay links formed")
	}
}

func TestSnapshotDeterminism(t *testing.T) {
	g1 := toyGen(CrossShellLasers)
	g2 := toyGen(CrossShellLasers)
	a := g1.Snapshot(123.456)
	b := g2.Snapshot(123.456)
	if !a.SameTopology(b) {
		t.Error("snapshots at equal time differ")
	}
}

func TestDiff(t *testing.T) {
	g := toyGen(CrossShellLasers)
	a := g.Snapshot(0)
	b := g.Snapshot(300) // 5 minutes later cross links re-pair
	added, removed := a.Diff(b)
	if len(added) == 0 && len(removed) == 0 {
		t.Skip("no churn in 300 s; unexpected but not an error")
	}
	// Applying the diff to a's link set must yield b's link set.
	set := a.LinkSet()
	for _, l := range removed {
		delete(set, l.key())
	}
	for _, l := range added {
		set[l.key()] = l
	}
	want := b.LinkSet()
	if len(set) != len(want) {
		t.Fatalf("diff application mismatch: %d vs %d links", len(set), len(want))
	}
	for k := range want {
		if _, ok := set[k]; !ok {
			t.Fatal("diff application missing link")
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	g := toyGen(CrossShellLasers)
	s := g.Snapshot(0)
	if cc := s.ConnectedComponents(); cc != 1 {
		t.Errorf("constellation should be connected, got %d components", cc)
	}
	empty := &Snapshot{NumSats: 4, NumNodes: 4}
	empty.Finalize()
	if cc := empty.ConnectedComponents(); cc != 4 {
		t.Errorf("empty topology components = %d", cc)
	}
}

func TestMeasureTHT(t *testing.T) {
	// Build a synthetic series: 3 identical, 1 different, 2 identical.
	mk := func(links ...Link) *Snapshot {
		s := &Snapshot{NumSats: 10, NumNodes: 10, Links: links}
		s.Finalize()
		return s
	}
	l1 := MakeLink(0, 1, IntraOrbit)
	l2 := MakeLink(1, 2, IntraOrbit)
	snaps := []*Snapshot{mk(l1), mk(l1), mk(l1), mk(l2), mk(l2), mk(l1)}
	r := MeasureTHT(snaps, 0.0125)
	want := []float64{3 * 0.0125, 2 * 0.0125, 0.0125}
	if len(r.HoldTimesSec) != len(want) {
		t.Fatalf("runs = %v", r.HoldTimesSec)
	}
	for i := range want {
		if math.Abs(r.HoldTimesSec[i]-want[i]) > 1e-12 {
			t.Errorf("run %d = %v want %v", i, r.HoldTimesSec[i], want[i])
		}
	}
	if m := r.Mean(); math.Abs(m-0.025) > 1e-12 {
		t.Errorf("mean = %v", m)
	}
	if m := r.Max(); math.Abs(m-0.0375) > 1e-12 {
		t.Errorf("max = %v", m)
	}
	times, probs := r.CDF()
	if times[0] > times[len(times)-1] || probs[len(probs)-1] != 1 {
		t.Errorf("CDF malformed: %v %v", times, probs)
	}
}

func TestTHTRealConstellation(t *testing.T) {
	// Cross-shell lasers re-pair over minutes; sampling a toy constellation
	// at 1 s for 10 minutes should reveal at least one topology change.
	g := toyGen(CrossShellLasers)
	snaps := g.Series(0, 1, 600)
	r := MeasureTHT(snaps, 1)
	if len(r.HoldTimesSec) < 2 {
		t.Skip("no topology change observed in 600 s at toy scale")
	}
	if r.Mean() <= 0 || r.Max() < r.Mean() {
		t.Errorf("inconsistent THT stats: mean %v max %v", r.Mean(), r.Max())
	}
}

func TestLinkExclusionMonotone(t *testing.T) {
	g := toyGen(CrossShellLasers)
	snaps := g.Series(0, 5, 120) // 10 minutes, 5-second steps
	prev := -1.0
	for _, steps := range []int{1, 12, 60, 120} {
		e := LinkExclusion(snaps, steps)
		if e < prev-1e-9 {
			t.Errorf("exclusion not monotone: steps=%d e=%v prev=%v", steps, e, prev)
		}
		if e < 0 || e > 1 {
			t.Fatalf("exclusion out of range: %v", e)
		}
		prev = e
	}
	if e := LinkExclusion(snaps, 1); e != 0 {
		t.Errorf("single-snapshot exclusion = %v, want 0", e)
	}
}

func TestStableLinks(t *testing.T) {
	g := toyGen(CrossShellLasers)
	snaps := g.Series(0, 30, 10)
	stable := StableLinks(snaps)
	if len(stable) == 0 {
		t.Fatal("no stable links over 5 minutes")
	}
	// Every stable link must be in every snapshot.
	for _, s := range snaps {
		set := s.LinkSet()
		for _, l := range stable {
			if _, ok := set[l.key()]; !ok {
				t.Fatal("stable link missing from a snapshot")
			}
		}
	}
	// All intra-orbit links are stable at this inclination.
	intra := 0
	for _, l := range stable {
		if l.Kind == IntraOrbit {
			intra++
		}
	}
	if intra != 96 {
		t.Errorf("stable intra-orbit links = %d, want 96", intra)
	}
}

func TestInjectFailures(t *testing.T) {
	g := toyGen(CrossShellNone)
	s := g.Snapshot(0)
	rng := rand.New(rand.NewSource(2))
	f := InjectFailures(s, 0.25, rng)
	want := len(s.Links) - len(s.Links)/4
	if len(f.Links) != want {
		t.Errorf("links after failure = %d, want %d", len(f.Links), want)
	}
	if len(s.Links) != 192 {
		t.Errorf("original snapshot mutated: %d links", len(s.Links))
	}
	// fraction 0: unchanged copy
	f0 := InjectFailures(s, 0, rng)
	if !f0.SameTopology(s) {
		t.Error("zero failure fraction must preserve topology")
	}
}

func TestInjectFailuresProperty(t *testing.T) {
	g := toyGen(CrossShellNone)
	s := g.Snapshot(0)
	f := func(seed int64, fracSeed float64) bool {
		frac := math.Abs(math.Mod(fracSeed, 1))
		out := InjectFailures(s, frac, rand.New(rand.NewSource(seed)))
		// Surviving links are a subset of the originals.
		orig := s.LinkSet()
		for _, l := range out.Links {
			if _, ok := orig[l.key()]; !ok {
				return false
			}
		}
		return len(out.Links) == len(s.Links)-int(float64(len(s.Links))*frac)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMeasureChurn(t *testing.T) {
	g := toyGen(CrossShellLasers)
	snaps := g.Series(0, 10, 60)
	cs := MeasureChurn(snaps)
	if cs.Steps != 59 {
		t.Fatalf("steps = %d", cs.Steps)
	}
	if cs.ChangedSteps > cs.Steps {
		t.Fatal("changed > steps")
	}
}

func TestLinkSetKindAgnosticMembership(t *testing.T) {
	// The invariant pathValid and every other membership consumer rely on:
	// a LinkSet answers Has(a, b) purely by endpoints — the LinkKind a link
	// was built or queried with never affects membership, and endpoint order
	// does not matter.
	set := make(LinkSet)
	set.Add(MakeLink(3, 9, CrossShellLaser))
	set.Add(MakeLink(12, 4, GroundRelayLink))

	for _, tc := range []struct {
		a, b NodeID
		want bool
	}{
		{3, 9, true}, {9, 3, true}, // either endpoint order
		{4, 12, true}, {12, 4, true},
		{3, 4, false}, {9, 12, false}, {3, 12, false},
	} {
		if got := set.Has(tc.a, tc.b); got != tc.want {
			t.Errorf("Has(%d, %d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}

	// Stored kinds survive for consumers that read the Link value.
	if l := set[MakeLink(3, 9, IntraOrbit).key()]; l.Kind != CrossShellLaser {
		t.Errorf("stored kind = %v, want CrossShellLaser", l.Kind)
	}

	// Snapshot.LinkSet agrees with the snapshot's own Links across all kinds.
	g := toyGen(CrossShellNone)
	s := g.Snapshot(0)
	ls := s.LinkSet()
	for _, l := range s.Links {
		if !ls.Has(l.A, l.B) || !ls.Has(l.B, l.A) {
			t.Fatalf("snapshot link %v missing from its own LinkSet", l)
		}
	}
}
