package topology

import (
	"math/rand"
	"sort"
)

// THTResult summarises a topology-holding-time analysis (Sec. 2.3.1): how
// long the topology remains unchanged, measured over consecutive snapshots.
type THTResult struct {
	SampleIntervalSec float64
	HoldTimesSec      []float64 // one entry per maximal unchanged run
}

// MeasureTHT computes holding times from a series of consecutive snapshots
// sampled at a fixed interval. THT is 12.5k ms where k is the number of
// sampled intervals during which the topology remains unchanged; a run of m
// identical consecutive snapshots therefore contributes a holding time of
// m * interval.
func MeasureTHT(snaps []*Snapshot, intervalSec float64) THTResult {
	res := THTResult{SampleIntervalSec: intervalSec}
	if len(snaps) == 0 {
		return res
	}
	run := 1
	for i := 1; i < len(snaps); i++ {
		if snaps[i].SameTopology(snaps[i-1]) {
			run++
			continue
		}
		res.HoldTimesSec = append(res.HoldTimesSec, float64(run)*intervalSec)
		run = 1
	}
	res.HoldTimesSec = append(res.HoldTimesSec, float64(run)*intervalSec)
	return res
}

// Mean returns the average holding time in seconds (0 for no data).
func (r THTResult) Mean() float64 {
	if len(r.HoldTimesSec) == 0 {
		return 0
	}
	var s float64
	for _, h := range r.HoldTimesSec {
		s += h
	}
	return s / float64(len(r.HoldTimesSec))
}

// Max returns the maximum holding time in seconds.
func (r THTResult) Max() float64 {
	m := 0.0
	for _, h := range r.HoldTimesSec {
		if h > m {
			m = h
		}
	}
	return m
}

// CDF returns sorted holding times and their cumulative probabilities,
// suitable for plotting Fig. 4 (a).
func (r THTResult) CDF() (times, probs []float64) {
	times = append([]float64(nil), r.HoldTimesSec...)
	sort.Float64s(times)
	probs = make([]float64, len(times))
	n := float64(len(times))
	for i := range times {
		probs[i] = float64(i+1) / n
	}
	return times, probs
}

// LinkExclusion computes, for a TE interval spanning the given number of
// snapshot steps, the fraction of *changeable* links that must be excluded
// because they are not present in every snapshot of the interval
// (Sec. 2.3.2, Fig. 4 (c)). Changeable links are all links that are not
// intra-orbit (intra-orbit links rarely change and are not counted, matching
// the paper's "potentially changing ISLs").
func LinkExclusion(snaps []*Snapshot, steps int) float64 {
	if steps < 1 || steps > len(snaps) {
		steps = len(snaps)
	}
	if steps == 0 {
		return 0
	}
	// Union of changeable links over the window, and the subset present in
	// every snapshot.
	type stat struct {
		seen int
	}
	counts := make(map[uint64]*stat)
	for i := 0; i < steps; i++ {
		for _, l := range snaps[i].Links {
			if l.Kind == IntraOrbit {
				continue
			}
			k := l.key()
			st := counts[k]
			if st == nil {
				st = &stat{}
				counts[k] = st
			}
			st.seen++
		}
	}
	if len(counts) == 0 {
		return 0
	}
	excluded := 0
	for _, st := range counts {
		if st.seen < steps {
			excluded++
		}
	}
	return float64(excluded) / float64(len(counts))
}

// StableLinks returns the links present in every one of the given snapshots.
// TE computation over an interval may only use these links (Sec. 2.3.2).
func StableLinks(snaps []*Snapshot) []Link {
	if len(snaps) == 0 {
		return nil
	}
	counts := make(map[uint64]int, len(snaps[0].Links))
	byKey := make(map[uint64]Link)
	for _, s := range snaps {
		for _, l := range s.Links {
			counts[l.key()]++
			byKey[l.key()] = l
		}
	}
	var out []Link
	for k, c := range counts {
		if c == len(snaps) {
			out = append(out, byKey[k])
		}
	}
	sortLinks(out)
	return out
}

// InjectFailures returns a copy of the snapshot with a random fraction of
// links removed (Appendix H.3). The input snapshot is not modified.
func InjectFailures(s *Snapshot, fraction float64, rng *rand.Rand) *Snapshot {
	out := &Snapshot{
		TimeSec:  s.TimeSec,
		NumSats:  s.NumSats,
		NumNodes: s.NumNodes,
		Pos:      s.Pos,
	}
	nFail := int(float64(len(s.Links)) * fraction)
	if nFail <= 0 {
		out.Links = append([]Link(nil), s.Links...)
		out.Finalize()
		return out
	}
	perm := rng.Perm(len(s.Links))
	failed := make(map[int]struct{}, nFail)
	for _, i := range perm[:nFail] {
		failed[i] = struct{}{}
	}
	out.Links = make([]Link, 0, len(s.Links)-nFail)
	for i, l := range s.Links {
		if _, ok := failed[i]; !ok {
			out.Links = append(out.Links, l)
		}
	}
	out.Finalize()
	return out
}

// ChurnStats summarises link changes between consecutive snapshots.
type ChurnStats struct {
	Steps        int
	TotalAdded   int
	TotalRemoved int
	ChangedSteps int // steps at which the topology differed from the previous
}

// MeasureChurn computes link churn over a snapshot series.
func MeasureChurn(snaps []*Snapshot) ChurnStats {
	var cs ChurnStats
	for i := 1; i < len(snaps); i++ {
		cs.Steps++
		if snaps[i].SameTopology(snaps[i-1]) {
			continue
		}
		added, removed := snaps[i-1].Diff(snaps[i])
		cs.TotalAdded += len(added)
		cs.TotalRemoved += len(removed)
		cs.ChangedSteps++
	}
	return cs
}
