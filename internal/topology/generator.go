package topology

import (
	"math"

	"sate/internal/constellation"
	"sate/internal/groundnet"
	"sate/internal/orbit"
	"sate/internal/par"
)

// CrossShellMode selects how shells interconnect (Fig. 2 b/c).
type CrossShellMode uint8

const (
	// CrossShellLasers links each satellite to the nearest satellite in the
	// adjacent shell via laser (range-limited).
	CrossShellLasers CrossShellMode = iota
	// CrossShellGroundRelays links satellites to ground relays; relays act as
	// bent-pipe nodes joining shells.
	CrossShellGroundRelays
	// CrossShellNone disables cross-shell links (single-shell constellations).
	CrossShellNone
)

func (m CrossShellMode) String() string {
	switch m {
	case CrossShellLasers:
		return "lasers"
	case CrossShellGroundRelays:
		return "ground-relays"
	case CrossShellNone:
		return "none"
	default:
		return "unknown"
	}
}

// Config holds the link-formation rules of Sec. 2.3.1.
type Config struct {
	Mode CrossShellMode

	// InterOrbitMaxLatDeg deactivates inter-orbit links above this latitude
	// (paper: 75 degrees).
	InterOrbitMaxLatDeg float64

	// LaserMaxRangeKm breaks a cross-shell laser when satellites are farther
	// apart (paper: 2000 km).
	LaserMaxRangeKm float64

	// RelayMinElevDeg breaks a ground-relay link when the satellite drops
	// below this elevation (paper: 25 degrees).
	RelayMinElevDeg float64

	// Relays are the ground-relay sites (bent-pipe mode only).
	Relays []groundnet.Site
}

// DefaultConfig returns the paper's link-formation parameters.
func DefaultConfig(mode CrossShellMode) Config {
	return Config{
		Mode:                mode,
		InterOrbitMaxLatDeg: 75,
		LaserMaxRangeKm:     2000,
		RelayMinElevDeg:     25,
	}
}

// Generator produces topology snapshots for a constellation under a link
// config. It reuses internal buffers; a Generator is not safe for concurrent
// use.
type Generator struct {
	Cons *constellation.Constellation
	Cfg  Config

	relayPos []orbit.Vec3
	posBuf   []orbit.Vec3
	// per-shell bucket index for nearest-neighbour queries
	buckets [][]constellation.SatID // shell*nbuckets + bucket
	nShells int
}

const (
	genLatBuckets = 24 // 7.5-degree latitude bands
	genLonBuckets = 48 // 7.5-degree longitude bands
	genBuckets    = genLatBuckets * genLonBuckets
)

// NewGenerator builds a generator for the constellation.
func NewGenerator(c *constellation.Constellation, cfg Config) *Generator {
	g := &Generator{Cons: c, Cfg: cfg, nShells: len(c.Shells)}
	if cfg.Mode == CrossShellGroundRelays {
		g.relayPos = make([]orbit.Vec3, len(cfg.Relays))
		for i, r := range cfg.Relays {
			g.relayPos[i] = r.ECEF()
		}
	}
	g.buckets = make([][]constellation.SatID, g.nShells*genBuckets)
	return g
}

// NumNodes returns the node-universe size: satellites plus relay nodes in
// bent-pipe mode.
func (g *Generator) NumNodes() int {
	n := g.Cons.Size()
	if g.Cfg.Mode == CrossShellGroundRelays {
		n += len(g.Cfg.Relays)
	}
	return n
}

// RelayNode returns the NodeID of relay i.
func (g *Generator) RelayNode(i int) NodeID { return NodeID(g.Cons.Size() + i) }

func bucketOf(p orbit.Vec3) int {
	lat, lon, _ := orbit.ECEFToGeodetic(p)
	r := int((lat + math.Pi/2) / math.Pi * genLatBuckets)
	c := int((lon + math.Pi) / (2 * math.Pi) * genLonBuckets)
	if r < 0 {
		r = 0
	} else if r >= genLatBuckets {
		r = genLatBuckets - 1
	}
	if c < 0 {
		c = 0
	} else if c >= genLonBuckets {
		c = genLonBuckets - 1
	}
	return r*genLonBuckets + c
}

// Snapshot generates the topology at time t (seconds after epoch).
func (g *Generator) Snapshot(tSec float64) *Snapshot {
	c := g.Cons
	g.posBuf = c.PositionsECEF(tSec, g.posBuf)
	s := &Snapshot{
		TimeSec:  tSec,
		NumSats:  c.Size(),
		NumNodes: g.NumNodes(),
	}
	s.Pos = make([]orbit.Vec3, s.NumNodes)
	copy(s.Pos, g.posBuf)
	if g.Cfg.Mode == CrossShellGroundRelays {
		copy(s.Pos[c.Size():], g.relayPos)
	}

	maxLat := orbit.Deg(g.Cfg.InterOrbitMaxLatDeg)
	// Intra-shell +Grid links.
	for i := range c.Sats {
		sat := &c.Sats[i]
		grid := sat.Grid
		// Intra-orbit: link to next slot (each pair added once).
		next := c.SatAt(c.Neighbor(grid, 0, 1))
		if next.ID != sat.ID {
			s.Links = append(s.Links, MakeLink(NodeID(sat.ID), NodeID(next.ID), IntraOrbit))
		}
		// Inter-orbit: link to next plane, unless either endpoint is at high
		// latitude (excessive viewing angles between adjacent orbits).
		right := c.SatAt(c.Neighbor(grid, 1, 0))
		if right.ID != sat.ID {
			latA := latOf(s.Pos[sat.ID])
			latB := latOf(s.Pos[right.ID])
			if math.Abs(latA) <= maxLat && math.Abs(latB) <= maxLat {
				s.Links = append(s.Links, MakeLink(NodeID(sat.ID), NodeID(right.ID), InterOrbit))
			}
		}
	}

	switch g.Cfg.Mode {
	case CrossShellLasers:
		g.addCrossShellLasers(s)
	case CrossShellGroundRelays:
		g.addGroundRelayLinks(s)
	}

	// Deduplicate: nearest-neighbour pairing can produce the same link from
	// both sides.
	s.Links = dedupeLinks(s.Links)
	s.Finalize()
	return s
}

func latOf(p orbit.Vec3) float64 {
	r := p.Norm()
	if r == 0 {
		return 0
	}
	return math.Asin(p.Z / r)
}

func (g *Generator) rebuildBuckets(pos []orbit.Vec3) {
	for i := range g.buckets {
		g.buckets[i] = g.buckets[i][:0]
	}
	for i := range g.Cons.Sats {
		sat := &g.Cons.Sats[i]
		b := bucketOf(pos[sat.ID])
		idx := sat.Grid.Shell*genBuckets + b
		g.buckets[idx] = append(g.buckets[idx], sat.ID)
	}
}

// nearestInShell finds the closest satellite of the given shell to position p
// (excluding nothing); returns -1 if none within maxRange.
func (g *Generator) nearestInShell(p orbit.Vec3, shell int, maxRangeKm float64, pos []orbit.Vec3) constellation.SatID {
	b := bucketOf(p)
	r0 := b / genLonBuckets
	c0 := b % genLonBuckets
	best := constellation.SatID(-1)
	bestD := maxRangeKm
	// Search outward in bucket rings; stop one ring after the first hit (a
	// neighbouring ring can still contain a closer satellite).
	hitRing := -1
	for ring := 0; ring <= genLatBuckets; ring++ {
		if hitRing >= 0 && ring > hitRing+1 {
			break
		}
		found := false
		for dr := -ring; dr <= ring; dr++ {
			r := r0 + dr
			if r < 0 || r >= genLatBuckets {
				continue
			}
			for dc := -ring; dc <= ring; dc++ {
				if maxInt(absInt(dr), absInt(dc)) != ring {
					continue
				}
				cc := ((c0+dc)%genLonBuckets + genLonBuckets) % genLonBuckets
				for _, id := range g.buckets[shell*genBuckets+r*genLonBuckets+cc] {
					d := p.Distance(pos[id])
					if d < bestD {
						best, bestD = id, d
						found = true
					}
				}
			}
		}
		if found && hitRing < 0 {
			hitRing = ring
		}
	}
	return best
}

func (g *Generator) addCrossShellLasers(s *Snapshot) {
	if g.nShells < 2 {
		return
	}
	g.rebuildBuckets(s.Pos[:s.NumSats])
	for i := range g.Cons.Sats {
		sat := &g.Cons.Sats[i]
		sh := sat.Grid.Shell
		// Connect to nearest satellite in the next shell up (each adjacent
		// pair of shells handled once, from the lower shell).
		if sh+1 >= g.nShells {
			continue
		}
		nb := g.nearestInShell(s.Pos[sat.ID], sh+1, g.Cfg.LaserMaxRangeKm, s.Pos)
		if nb >= 0 {
			s.Links = append(s.Links, MakeLink(NodeID(sat.ID), NodeID(nb), CrossShellLaser))
		}
	}
}

func (g *Generator) addGroundRelayLinks(s *Snapshot) {
	minElev := orbit.Deg(g.Cfg.RelayMinElevDeg)
	for i := range g.Cons.Sats {
		sat := &g.Cons.Sats[i]
		p := s.Pos[sat.ID]
		bestRelay := -1
		bestD := math.MaxFloat64
		for ri, rp := range g.relayPos {
			// Cheap prefilter: a 25-degree-elevation LEO pass is within ~1500
			// km slant range for these altitudes; skip distant relays first.
			d := p.Distance(rp)
			if d >= bestD {
				continue
			}
			if orbit.ElevationAngle(rp, p) < minElev {
				continue
			}
			bestRelay, bestD = ri, d
		}
		if bestRelay >= 0 {
			s.Links = append(s.Links, MakeLink(NodeID(sat.ID), g.RelayNode(bestRelay), GroundRelayLink))
		}
	}
}

func dedupeLinks(links []Link) []Link {
	seen := make(map[uint64]struct{}, len(links))
	out := links[:0]
	for _, l := range links {
		k := l.key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, l)
	}
	return out
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Series generates n consecutive snapshots spaced dt seconds apart, starting
// at t0. Snapshots at distinct instants are independent, so the series is
// generated in parallel chunks; each chunk gets its own Generator clone
// (Snapshot reuses per-generator scratch buffers and is not reentrant).
// Snapshot output is a pure function of (constellation, config, t), so the
// result is identical to the serial sweep.
func (g *Generator) Series(t0, dt float64, n int) []*Snapshot {
	out := make([]*Snapshot, n)
	par.ForChunks(n, par.Grain(n, 8), func(chunk, lo, hi int) {
		gen := g
		if lo != 0 || hi != n {
			gen = NewGenerator(g.Cons, g.Cfg)
		}
		for i := lo; i < hi; i++ {
			out[i] = gen.Snapshot(t0 + dt*float64(i))
		}
	})
	return out
}
