package topology

import (
	"bytes"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	g := toyGen(CrossShellLasers)
	s := g.Snapshot(123.5)
	var buf bytes.Buffer
	n, err := s.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore no-float-equality serialization roundtrip must be bitwise
	if got.TimeSec != s.TimeSec || got.NumSats != s.NumSats || got.NumNodes != s.NumNodes {
		t.Errorf("header mismatch: %+v", got)
	}
	if !got.SameTopology(s) {
		t.Fatal("link set not preserved")
	}
	if len(got.Pos) != len(s.Pos) {
		t.Fatal("positions missing")
	}
	for i := range s.Pos {
		if got.Pos[i] != s.Pos[i] {
			t.Fatalf("position %d differs", i)
		}
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSnapshot(bytes.NewReader([]byte("XXXXjunkjunkjunk"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated stream.
	g := toyGen(CrossShellNone)
	s := g.Snapshot(0)
	var buf bytes.Buffer
	if _, err := s.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadSnapshot(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestSeriesRoundTrip(t *testing.T) {
	g := toyGen(CrossShellLasers)
	snaps := g.Series(0, 30, 5)
	var buf bytes.Buffer
	if err := WriteSeries(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(snaps) {
		t.Fatalf("series length %d want %d", len(got), len(snaps))
	}
	for i := range snaps {
		if !got[i].SameTopology(snaps[i]) {
			t.Fatalf("snapshot %d topology differs", i)
		}
	}
	// THT analysis on the round-tripped series matches the original.
	a := MeasureTHT(snaps, 30)
	b := MeasureTHT(got, 30)
	if len(a.HoldTimesSec) != len(b.HoldTimesSec) {
		t.Error("THT differs after round trip")
	}
}
