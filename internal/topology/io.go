package topology

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"sate/internal/orbit"
)

// Binary snapshot serialization. Full-scale analyses sample tens of
// thousands of snapshots (Sec. 2.3.1: 40,000 at 12.5 ms); caching them on
// disk makes repeated experiments cheap. Format (little endian):
//
//	magic "STSN" | version u16 | timeSec f64 | numSats u32 | numNodes u32 |
//	numLinks u32 | links: (a u32, b u32, kind u8)* | pos: (x, y, z f64)*
const (
	snapshotMagic   = "STSN"
	snapshotVersion = 1
)

// WriteTo serializes the snapshot. It returns the byte count written.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return n, err
	}
	n += int64(len(snapshotMagic))
	if err := write(uint16(snapshotVersion)); err != nil {
		return n, err
	}
	if err := write(s.TimeSec); err != nil {
		return n, err
	}
	if err := write(uint32(s.NumSats)); err != nil {
		return n, err
	}
	if err := write(uint32(s.NumNodes)); err != nil {
		return n, err
	}
	if err := write(uint32(len(s.Links))); err != nil {
		return n, err
	}
	for _, l := range s.Links {
		if err := write(uint32(l.A)); err != nil {
			return n, err
		}
		if err := write(uint32(l.B)); err != nil {
			return n, err
		}
		if err := write(uint8(l.Kind)); err != nil {
			return n, err
		}
	}
	for _, p := range s.Pos {
		for _, c := range [3]float64{p.X, p.Y, p.Z} {
			if err := write(c); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadSnapshot deserializes a snapshot written by WriteTo, validating the
// header and all counts. It reads exactly one snapshot's bytes, so multiple
// snapshots can be read from one stream (wrap the stream in a bufio.Reader
// yourself for throughput).
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("topology: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("topology: bad snapshot magic %q", magic)
	}
	read := func(v interface{}) error { return binary.Read(r, binary.LittleEndian, v) }
	var version uint16
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("topology: unsupported snapshot version %d", version)
	}
	s := &Snapshot{}
	if err := read(&s.TimeSec); err != nil {
		return nil, err
	}
	var numSats, numNodes, numLinks uint32
	if err := read(&numSats); err != nil {
		return nil, err
	}
	if err := read(&numNodes); err != nil {
		return nil, err
	}
	if err := read(&numLinks); err != nil {
		return nil, err
	}
	const sanityMax = 10_000_000
	if numNodes < numSats || numNodes > sanityMax || numLinks > sanityMax {
		return nil, fmt.Errorf("topology: implausible snapshot counts sats=%d nodes=%d links=%d", numSats, numNodes, numLinks)
	}
	s.NumSats = int(numSats)
	s.NumNodes = int(numNodes)
	s.Links = make([]Link, numLinks)
	for i := range s.Links {
		var a, b uint32
		var kind uint8
		if err := read(&a); err != nil {
			return nil, err
		}
		if err := read(&b); err != nil {
			return nil, err
		}
		if err := read(&kind); err != nil {
			return nil, err
		}
		if a >= numNodes || b >= numNodes {
			return nil, fmt.Errorf("topology: link %d endpoint out of range", i)
		}
		s.Links[i] = Link{A: NodeID(a), B: NodeID(b), Kind: LinkKind(kind)}
	}
	s.Pos = make([]orbit.Vec3, numNodes)
	for i := range s.Pos {
		var x, y, z float64
		if err := read(&x); err != nil {
			return nil, err
		}
		if err := read(&y); err != nil {
			return nil, err
		}
		if err := read(&z); err != nil {
			return nil, err
		}
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) {
			return nil, fmt.Errorf("topology: NaN position for node %d", i)
		}
		s.Pos[i] = orbit.Vec3{X: x, Y: y, Z: z}
	}
	s.Finalize()
	return s, nil
}

// WriteSeries serializes consecutive snapshots to one stream.
func WriteSeries(w io.Writer, snaps []*Snapshot) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(snaps))); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	for _, s := range snaps {
		if _, err := s.WriteTo(w); err != nil {
			return err
		}
	}
	return nil
}

// ReadSeries deserializes a stream written by WriteSeries.
func ReadSeries(r io.Reader) ([]*Snapshot, error) {
	br := bufio.NewReader(r)
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > 10_000_000 {
		return nil, fmt.Errorf("topology: implausible series length %d", n)
	}
	out := make([]*Snapshot, n)
	for i := range out {
		s, err := ReadSnapshot(br)
		if err != nil {
			return nil, fmt.Errorf("topology: snapshot %d: %w", i, err)
		}
		out[i] = s
	}
	return out, nil
}
