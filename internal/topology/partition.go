package topology

// PartitionNodes splits the node universe [0, n) into k contiguous ranges of
// near-equal size and returns the k+1 range bounds: shard i owns nodes
// [bounds[i], bounds[i+1]).
//
// Contiguous NodeID ranges are the natural shard key for satellite TE:
// satellite IDs are assigned shell-major, then plane-major (see
// constellation.New), so a contiguous range is a band of whole orbital planes
// within a shell — a geographic region of the constellation. Ground relays
// occupy the ID tail and land in the last ranges the same way.
func PartitionNodes(n, k int) []NodeID {
	if k < 1 {
		k = 1
	}
	if k > n {
		k = max(n, 1)
	}
	bounds := make([]NodeID, k+1)
	for i := 0; i <= k; i++ {
		bounds[i] = NodeID(i * n / k)
	}
	return bounds
}

// ShardOfNode returns the index of the range containing node, for bounds
// produced by PartitionNodes. The uniform layout makes the lookup O(1): the
// arithmetic guess is exact or off by at most one bound due to rounding.
func ShardOfNode(bounds []NodeID, node NodeID) int {
	k := len(bounds) - 1
	if k <= 0 {
		return 0
	}
	n := int(bounds[k])
	if n == 0 {
		return 0
	}
	s := int(node) * k / n
	if s >= k {
		s = k - 1
	}
	for s > 0 && node < bounds[s] {
		s--
	}
	for s < k-1 && node >= bounds[s+1] {
		s++
	}
	return s
}
