//go:build !race

package obs

// RaceEnabled reports whether the binary was built with the race detector.
// Zero-alloc assertions (testing.AllocsPerRun == 0) must skip under it: the
// race runtime allocates shadow state on instrumented accesses, so alloc
// counts are perturbed even when the measured code itself is allocation-free.
const RaceEnabled = false
