package obs

import (
	"bufio"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Output is deterministic: families are
// sorted by name, vec children by label value, histogram buckets by bound —
// two scrapes of the same state are byte-identical. A nil registry writes
// nothing and returns nil.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	r.mu.RLock()
	goRuntime := r.goRuntime
	type family struct {
		name string
		emit func(bw *bufio.Writer, name string)
	}
	var fams []family
	for name, c := range r.counters {
		c := c
		fams = append(fams, family{name, func(bw *bufio.Writer, name string) {
			writeType(bw, name, "counter")
			writeSample(bw, name, "", "", float64(c.Value()))
		}})
	}
	for name, g := range r.gauges {
		g := g
		fams = append(fams, family{name, func(bw *bufio.Writer, name string) {
			writeType(bw, name, "gauge")
			writeSample(bw, name, "", "", g.Value())
		}})
	}
	for name, h := range r.hists {
		h := h
		fams = append(fams, family{name, func(bw *bufio.Writer, name string) {
			writeType(bw, name, "histogram")
			writeHistogram(bw, name, "", "", h)
		}})
	}
	for name, v := range r.counterVecs {
		v := v
		fams = append(fams, family{name, func(bw *bufio.Writer, name string) {
			writeType(bw, name, "counter")
			v.mu.RLock()
			for _, val := range sortedKeys(v.children) {
				writeSample(bw, name, v.label, val, float64(v.children[val].Value()))
			}
			v.mu.RUnlock()
		}})
	}
	for name, v := range r.histVecs {
		v := v
		fams = append(fams, family{name, func(bw *bufio.Writer, name string) {
			writeType(bw, name, "histogram")
			v.mu.RLock()
			for _, val := range sortedKeys(v.children) {
				writeHistogram(bw, name, v.label, val, v.children[val])
			}
			v.mu.RUnlock()
		}})
	}
	r.mu.RUnlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.emit(bw, f.name)
	}
	if goRuntime {
		writeGoRuntime(bw)
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the exposition — mount it at
// /metrics. A nil registry serves an empty (valid) exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		// The status line is already on the wire; a failed body write has
		// no recovery beyond the client seeing a short read.
		_ = r.WritePrometheus(w)
	})
}

func writeType(bw *bufio.Writer, name, kind string) {
	_, _ = bw.WriteString("# TYPE ")
	_, _ = bw.WriteString(name)
	_, _ = bw.WriteString(" ")
	_, _ = bw.WriteString(kind)
	_, _ = bw.WriteString("\n")
}

// writeSample emits one sample line, with an optional single label pair and
// with histogram-style extra le label handled by writeHistogram directly.
func writeSample(bw *bufio.Writer, name, label, labelVal string, v float64) {
	_, _ = bw.WriteString(name)
	if label != "" {
		_, _ = bw.WriteString(`{`)
		_, _ = bw.WriteString(label)
		_, _ = bw.WriteString(`="`)
		_, _ = bw.WriteString(escapeLabel(labelVal))
		_, _ = bw.WriteString(`"}`)
	}
	_, _ = bw.WriteString(" ")
	_, _ = bw.WriteString(formatFloat(v))
	_, _ = bw.WriteString("\n")
}

// writeHistogram emits the cumulative bucket series plus _sum and _count.
func writeHistogram(bw *bufio.Writer, name, label, labelVal string, h *Histogram) {
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		_, _ = bw.WriteString(name)
		_, _ = bw.WriteString("_bucket{")
		if label != "" {
			_, _ = bw.WriteString(label)
			_, _ = bw.WriteString(`="`)
			_, _ = bw.WriteString(escapeLabel(labelVal))
			_, _ = bw.WriteString(`",`)
		}
		_, _ = bw.WriteString(`le="`)
		_, _ = bw.WriteString(le)
		_, _ = bw.WriteString("\"} ")
		_, _ = bw.WriteString(strconv.FormatUint(cum, 10))
		_, _ = bw.WriteString("\n")
	}
	suffix := ""
	if label != "" {
		suffix = "{" + label + `="` + escapeLabel(labelVal) + `"}`
	}
	_, _ = bw.WriteString(name)
	_, _ = bw.WriteString("_sum")
	_, _ = bw.WriteString(suffix)
	_, _ = bw.WriteString(" ")
	_, _ = bw.WriteString(formatFloat(h.Sum()))
	_, _ = bw.WriteString("\n")
	_, _ = bw.WriteString(name)
	_, _ = bw.WriteString("_count")
	_, _ = bw.WriteString(suffix)
	_, _ = bw.WriteString(" ")
	_, _ = bw.WriteString(strconv.FormatUint(h.Count(), 10))
	_, _ = bw.WriteString("\n")
}

// writeGoRuntime samples the Go runtime at scrape time. The names follow the
// conventional go_* prefix; ReadMemStats costs tens of microseconds, paid by
// the scraper rather than any hot path.
func writeGoRuntime(bw *bufio.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	writeType(bw, "go_gc_cycles_total", "counter")
	writeSample(bw, "go_gc_cycles_total", "", "", float64(ms.NumGC))
	writeType(bw, "go_goroutines", "gauge")
	writeSample(bw, "go_goroutines", "", "", float64(runtime.NumGoroutine()))
	writeType(bw, "go_heap_alloc_bytes", "gauge")
	writeSample(bw, "go_heap_alloc_bytes", "", "", float64(ms.HeapAlloc))
	writeType(bw, "go_mallocs_total", "counter")
	writeSample(bw, "go_mallocs_total", "", "", float64(ms.Mallocs))
	writeType(bw, "go_total_alloc_bytes_total", "counter")
	writeSample(bw, "go_total_alloc_bytes_total", "", "", float64(ms.TotalAlloc))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
