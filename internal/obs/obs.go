// Package obs is the repo's observability subsystem: a stdlib-only metrics
// registry (counters, gauges, fixed-bucket histograms), lightweight span
// tracing for the compute phases of the TE pipeline, and Prometheus text
// exposition (prom.go) that controld mounts next to net/http/pprof.
//
// Design constraints (DESIGN.md §9):
//
//   - Zero allocation on the hot path. Recording into an existing metric is
//     a handful of atomic operations; looking a metric up by a constant name
//     (or a vec child by an interned label value) is a lock-free-read map
//     access. The solve and training hot paths stay at 0 allocs/op with a
//     registry attached (TestSolveObsAddsZeroAllocs).
//   - Toggleable. A nil *Registry — and every metric handle obtained from
//     one — is a valid no-op, so instrumented code never branches on an
//     "enabled" flag.
//   - Deterministic snapshots. Exposition sorts families and label values,
//     so two scrapes of the same state render byte-identical output.
//   - No goroutines. Metrics are pulled at scrape time; nothing in this
//     package spawns background work, keeping satelint's no-naked-goroutine
//     invariant intact with no allowlist entry.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. The zero value is not usable; construct with
// NewRegistry. A nil *Registry is a valid no-op sink: every method returns
// nil/zero handles whose methods are themselves no-ops.
type Registry struct {
	mu          sync.RWMutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	hists       map[string]*Histogram
	histVecs    map[string]*HistogramVec
	counterVecs map[string]*CounterVec
	goRuntime   bool
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		hists:       make(map[string]*Histogram),
		histVecs:    make(map[string]*HistogramVec),
		counterVecs: make(map[string]*CounterVec),
	}
}

// CollectGoRuntime makes exposition include Go runtime gauges (heap bytes,
// cumulative allocs, GC cycles, goroutine count) sampled at scrape time.
func (r *Registry) CollectGoRuntime() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.goRuntime = true
	r.mu.Unlock()
}

// Counter returns the registered counter, creating it on first use.
// Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the registered histogram, creating it with the given
// bucket upper bounds on first use (later calls reuse the first bounds).
// Bounds must be sorted ascending; an implicit +Inf bucket is appended.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// HistogramVec returns the registered histogram family partitioned by one
// label, creating it on first use.
func (r *Registry) HistogramVec(name, label string, bounds []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.histVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	//lint:ignore hotpath-no-alloc family creation runs once per metric name; steady state returns from the lock-free read above
	if v = r.histVecs[name]; v == nil {
		v = &HistogramVec{label: label, bounds: append([]float64(nil), bounds...), children: make(map[string]*Histogram)}
		r.histVecs[name] = v
	}
	return v
}

// CounterVec returns the registered counter family partitioned by one label,
// creating it on first use.
func (r *Registry) CounterVec(name, label string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	v := r.counterVecs[name]
	r.mu.RUnlock()
	if v != nil {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v = r.counterVecs[name]; v == nil {
		v = &CounterVec{label: label, children: make(map[string]*Counter)}
		r.counterVecs[name] = v
	}
	return v
}

// Counter is a monotonically increasing counter. All methods are safe on a
// nil receiver (no-op) and for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
//
//sate:hotpath metric recording inside the solve loop
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (callers pass non-negative deltas; this is not enforced on the
// hot path).
//
//sate:hotpath metric recording inside the solve loop
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
//
//sate:hotpath metric recording inside the solve loop
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop; no allocation).
//
//sate:hotpath metric recording inside the solve loop
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are upper bounds
// (inclusive, Prometheus `le` semantics) with an implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records v.
//
//sate:hotpath metric recording inside the solve loop
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts here are small (≤ ~16) and the scan is
	// branch-predictable, beating binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// HistogramVec is a histogram family partitioned by one label. With on an
// already-seen label value is a lock-free-read map access — no allocation.
type HistogramVec struct {
	label    string
	bounds   []float64
	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the child histogram for the label value, creating it on first
// use. Callers on hot paths pass interned/constant strings so the steady
// state performs no allocation.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.children[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	//lint:ignore hotpath-no-alloc child creation runs once per label value; steady state returns from the lock-free read above
	if h = v.children[value]; h == nil {
		h = newHistogram(v.bounds)
		v.children[value] = h
	}
	return h
}

// CounterVec is a counter family partitioned by one label.
type CounterVec struct {
	label    string
	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the child counter for the label value, creating it on first
// use.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.children[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[value]; c == nil {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// DefLatencyBuckets are the default bounds (seconds) for solve/step latency
// histograms: 100µs to ~2 min, roughly ×3 per bucket — wide enough to span
// SaTE's millisecond inference and an LP solver's tens of seconds.
var DefLatencyBuckets = []float64{
	1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30, 120,
}

// sortedKeys returns map keys in sorted order (snapshot helper).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
