package obs

import "time"

// Span phase labels used across the repo (DESIGN.md §9). Instrumented code
// passes these constants so vec lookups never build strings on hot paths.
const (
	PhaseGraphBuild     = "graph_build"     // TE-graph construction (core.BuildTEGraph)
	PhaseForward        = "forward"         // GNN forward pass
	PhaseBackward       = "backward"        // reverse-mode accumulation
	PhaseAdamStep       = "adam_step"       // optimizer update
	PhasePathPrecompute = "path_precompute" // problem build incl. k-shortest fan-out
	PhaseLPSolve        = "lp_solve"        // simplex / GK reference solve
	PhaseDecode         = "decode"          // score/gate decoding + trim
	PhaseRuleCompile    = "rule_compile"    // per-satellite rule compilation
	PhaseShardPartition = "shard_partition" // shard link/flow classification + dirty diff
	PhaseShardSolve     = "shard_solve"     // concurrent per-shard sub-solves
	PhaseShardStitch    = "shard_stitch"    // boundary-flow residual reconciliation
)

// spanSeconds is the histogram family every span records into, partitioned
// by phase label.
const spanSeconds = "sate_span_seconds"

// Span measures one timed phase. It is a value type: starting and ending a
// span performs no heap allocation, so spans may wrap code inside
// 0-allocs/op hot loops. The zero Span (from a nil registry) is a no-op.
//
// Spans nest lexically: a caller that holds an open span and calls into code
// that opens its own records both durations independently — the outer phase
// includes the inner one. The per-phase histograms therefore decompose, not
// partition, wall time (DESIGN.md §9).
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins a span for the given phase label. phase should be one of
// the Phase* constants (or any interned string — building the label
// dynamically would allocate on every call).
func (r *Registry) StartSpan(phase string) Span {
	if r == nil {
		return Span{}
	}
	return Span{h: r.HistogramVec(spanSeconds, "phase", DefLatencyBuckets).With(phase), start: time.Now()}
}

// SpanHistogram resolves the per-phase histogram without starting a span —
// for callers that pre-resolve handles or assert on recorded counts.
func (r *Registry) SpanHistogram(phase string) *Histogram {
	if r == nil {
		return nil
	}
	return r.HistogramVec(spanSeconds, "phase", DefLatencyBuckets).With(phase)
}

// StartTimer begins a span that records into an explicit histogram (e.g. a
// vec child resolved once by the caller). A nil histogram yields a no-op
// span.
func StartTimer(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End stops the span and records its duration in seconds. Safe to call on
// the zero Span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}
