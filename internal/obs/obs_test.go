package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.CollectGoRuntime()
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Gauge("g").Add(1)
	r.Histogram("h", DefLatencyBuckets).Observe(1)
	r.HistogramVec("hv", "l", DefLatencyBuckets).With("x").Observe(1)
	r.CounterVec("cv", "l").With("x").Add(2)
	r.StartSpan(PhaseForward).End()
	StartTimer(r.SpanHistogram(PhaseForward)).End()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestCounterGaugeValues(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("requests_total"); c2 != c {
		t.Fatal("same name returned a different counter")
	}
	g := r.Gauge("temp")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10})
	for _, v := range []float64{0.5, 1, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 103.5 {
		t.Fatalf("sum = %v, want 103.5", got)
	}
	// le semantics: 0.5 and 1 land in le="1", 2 in le="10", 100 in +Inf.
	want := []uint64{2, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestVecChildInterning(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("solve", "solver", DefLatencyBuckets)
	a := v.With("sate")
	b := v.With("sate")
	if a != b {
		t.Fatal("same label value returned different children")
	}
	cv := r.CounterVec("errs", "kind")
	if cv.With("x") != cv.With("x") {
		t.Fatal("same label value returned different counter children")
	}
}

func TestExpositionFormatAndDeterminism(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_total").Add(3)
	r.Gauge("aa_ratio").Set(0.25)
	r.Histogram("mm_seconds", []float64{0.1, 1}).Observe(0.05)
	r.HistogramVec("sate_solve_seconds", "solver", []float64{0.1, 1}).With("lp-exact").Observe(0.5)
	r.HistogramVec("sate_solve_seconds", "solver", []float64{0.1, 1}).With("sate").Observe(0.01)
	r.CounterVec("kinds_total", "kind").With(`we"ird\label`).Inc()

	var b1, b2 bytes.Buffer
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("two scrapes differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	out := b1.String()

	// Families sorted by name: aa_ratio < kinds_total < mm_seconds < ...
	order := []string{"# TYPE aa_ratio gauge", "# TYPE kinds_total counter", "# TYPE mm_seconds histogram", "# TYPE sate_solve_seconds histogram", "# TYPE zz_total counter"}
	last := -1
	for _, s := range order {
		i := strings.Index(out, s)
		if i < 0 {
			t.Fatalf("missing %q in:\n%s", s, out)
		}
		if i < last {
			t.Fatalf("%q out of order in:\n%s", s, out)
		}
		last = i
	}

	// Vec children sorted by label value; cumulative buckets; sum/count.
	for _, want := range []string{
		`sate_solve_seconds_bucket{solver="lp-exact",le="0.1"} 0`,
		`sate_solve_seconds_bucket{solver="lp-exact",le="1"} 1`,
		`sate_solve_seconds_bucket{solver="lp-exact",le="+Inf"} 1`,
		`sate_solve_seconds_sum{solver="lp-exact"} 0.5`,
		`sate_solve_seconds_count{solver="lp-exact"} 1`,
		`sate_solve_seconds_bucket{solver="sate",le="0.1"} 1`,
		"mm_seconds_bucket{le=\"0.1\"} 1",
		"mm_seconds_count 1",
		"aa_ratio 0.25",
		"zz_total 3",
		`kinds_total{kind="we\"ird\\label"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Index(out, `solver="lp-exact"`) > strings.Index(out, `solver="sate"`) {
		t.Fatalf("vec children not sorted by label value:\n%s", out)
	}

	// Every line is either a comment or "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

func TestGoRuntimeGauges(t *testing.T) {
	r := NewRegistry()
	r.CollectGoRuntime()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"go_heap_alloc_bytes", "go_goroutines", "go_gc_cycles_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, buf.String())
		}
	}
}

func TestSpanObservesIntoPhaseHistogram(t *testing.T) {
	r := NewRegistry()
	r.StartSpan(PhaseForward).End()
	h := r.SpanHistogram(PhaseForward)
	if got := h.Count(); got != 1 {
		t.Fatalf("span count = %d, want 1", got)
	}
	if h.Sum() < 0 {
		t.Fatalf("span sum negative: %v", h.Sum())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds", DefLatencyBuckets).Observe(0.001)
				r.HistogramVec("hv_seconds", "k", DefLatencyBuckets).With("a").Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %v, want 8000", got)
	}
	if got := r.Histogram("h_seconds", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if got := r.HistogramVec("hv_seconds", "k", nil).With("a").Count(); got != 8000 {
		t.Fatalf("vec histogram count = %d, want 8000", got)
	}
}

func TestRecordingAddsZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("race runtime perturbs alloc accounting (see RaceEnabled)")
	}
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_seconds", DefLatencyBuckets)
	v := r.HistogramVec("hv_seconds", "k", DefLatencyBuckets)
	if allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(1)
		h.Observe(0.001)
		v.With("sate").Observe(0.001)
		r.Counter("c_total").Inc() // constant-name lookup
	}); allocs != 0 {
		t.Fatalf("recording allocated %v allocs/op, want 0", allocs)
	}
}
