//go:build race

package obs

// RaceEnabled reports whether the binary was built with the race detector.
// See race_off.go for why zero-alloc assertions consult it.
const RaceEnabled = true
