package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"sate/internal/autodiff"
	"sate/internal/baselines"
	"sate/internal/core"
	"sate/internal/sim"
	"sate/internal/solve"
	"sate/internal/te"
	"sate/internal/topology"
)

func init() {
	register("fig15a", Fig15aMLU)
	register("fig15b", Fig15bLinkFailures)
	register("fig16", Fig16FlowLevel)
}

// Fig15aMLU reproduces Fig. 15 (a) / Appendix H.2: SaTE retrained for the
// minimise-MLU objective, compared with POP and the MLU-specialised HARP.
func Fig15aMLU(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig15a",
		Title:  "Max link utilisation (lower is better; satisfied demand shown for context)",
		Header: []string{"intensity", "sate-mlu", "pop", "harp"},
	}
	sc := scales(opt)[0]
	epochs := 12
	// MLU minimisation presumes demand is routable well below saturation;
	// sweep lighter loads than the throughput experiments.
	intensities := []float64{1, 2, 4}
	if opt.Full {
		intensities = []float64{60, 125, 250}
	}
	for _, intensity := range intensities {
		// Train SaTE-MLU and HARP self-supervised on training problems.
		trainScen := newScenario(sc, topology.CrossShellLasers, intensity, opt.Seed+101)
		var trainProblems []*te.Problem
		for i := 0; i < 3; i++ {
			p, _, _, err := trainScen.ProblemAt(ciTrainStart + float64(i)*97)
			if err != nil {
				return nil, err
			}
			if len(p.Flows) > 0 {
				trainProblems = append(trainProblems, p)
			}
		}
		if len(trainProblems) == 0 {
			continue
		}
		cfg := core.DefaultConfig()
		cfg.Seed = opt.Seed
		sate := core.NewModel(cfg)
		if _, err := core.TrainMLU(sate, trainProblems, epochs, 3e-3); err != nil {
			return nil, err
		}
		harp := baselines.NewHarp(16, opt.Seed)
		hOpt := autodiff.NewAdam(3e-3, harp.Params()...)
		hOpt.ClipNorm = 5
		for e := 0; e < epochs; e++ {
			for _, p := range trainProblems {
				if _, err := harp.TrainStep(p, hOpt); err != nil {
					return nil, err
				}
			}
		}
		// Evaluate MLU on unseen problems. All methods route what they can;
		// MLU is measured on the feasible allocation.
		evalScen := newScenario(sc, topology.CrossShellLasers, intensity, opt.Seed+102)
		evalMLU := func(solveFn func(*te.Problem, ...solve.Option) (*te.Allocation, error)) string {
			var mluSum, satSum float64
			n := 0
			for i := 0; i < 3; i++ {
				p, _, _, err := evalScen.ProblemAt(ciEvalStart + float64(i)*29)
				if err != nil || len(p.Flows) == 0 {
					continue
				}
				a, err := solveFn(p)
				if err != nil {
					continue
				}
				mluSum += p.MLU(a)
				satSum += p.SatisfiedDemand(a)
				n++
			}
			if n == 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.3f (%.0f%% routed)", mluSum/float64(n), 100*satSum/float64(n))
		}
		pop := &baselines.POP{K: 4, Seed: opt.Seed}
		sateMLU := func(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
			return sate.Solve(p, append([]solve.Option{solve.WithObjective(solve.MLU)}, opts...)...)
		}
		r.AddRow(fmt.Sprintf("%.0f", intensity),
			evalMLU(sateMLU),
			evalMLU(pop.Solve),
			evalMLU(harp.Solve))
	}
	r.Note("paper: SaTE-MLU beats POP by 24.5%% (lasers) / 9.3%% (relays) but trails the MLU-specialised HARP by 13-16%%")
	return r, nil
}

// Fig15bLinkFailures reproduces Fig. 15 (b) / Appendix H.3: loss in satisfied
// demand under sudden random link failures, without retraining or rerouting.
// The "stale alloc" column is the degraded-controller view: the allocation
// computed on the pre-failure topology, re-scored honestly against the failed
// link set (sim.Fallback) — what sate-controld's /status reports while a
// failed cycle keeps it serving the last good allocation.
func Fig15bLinkFailures(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig15b",
		Title:  "Satisfied-demand loss under random link failures (no retraining)",
		Header: []string{"failure rate", "satisfied", "loss vs no-failure", "stale alloc"},
	}
	sc := scales(opt)[0]
	trainScen := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+111)
	model, _, err := trainSaTE(trainScen, 3, 30, opt.Seed)
	if err != nil {
		return nil, err
	}
	evalScen := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+112)
	rng := rand.New(rand.NewSource(opt.Seed + 113))

	// Last-good allocations: solve each eval instant on the intact topology
	// and capture a fallback scorer per instant.
	nEval := 3
	fallbacks := make([]*sim.Fallback, nEval)
	for i := 0; i < nEval; i++ {
		p0, _, _, err := evalScen.ProblemAt(ciEvalStart + float64(i)*23)
		if err != nil {
			return nil, err
		}
		if len(p0.Flows) == 0 {
			continue
		}
		a0, err := model.Solve(p0)
		if err != nil {
			return nil, err
		}
		fallbacks[i] = sim.NewFallback(p0, a0)
	}

	baseline := math.NaN()
	for _, rate := range []float64{0, 0.001, 0.01, 0.05} {
		var sum, staleSum float64
		n := 0
		for i := 0; i < nEval; i++ {
			p, _, err := evalScen.ProblemWithFailures(ciEvalStart+float64(i)*23, rate, rng)
			if err != nil {
				return nil, err
			}
			if len(p.Flows) == 0 || fallbacks[i] == nil {
				continue
			}
			a, err := model.Solve(p)
			if err != nil {
				return nil, err
			}
			sum += p.SatisfiedDemand(a)
			staleSum += fallbacks[i].Satisfied(p, p.LinkSet())
			n++
		}
		if n == 0 {
			continue
		}
		sat := sum / float64(n)
		stale := staleSum / float64(n)
		if rate == 0 {
			baseline = sat
			r.AddRow("none", pct(sat), "-", pct(stale))
			continue
		}
		loss := 0.0
		if baseline > 0 {
			loss = (baseline - sat) / baseline
		}
		r.AddRow(pct(rate), pct(sat), pct(loss), pct(stale))
	}
	r.Note("paper: <5.2%% loss at up to 1%% failures without rerouting; 5%% failures degrade further")
	r.Note("stale alloc: last-good allocation re-scored against the failed topology (degraded-mode fallback)")
	return r, nil
}

// Fig16FlowLevel reproduces Fig. 16 / Appendix H.4: the distribution of
// flow-level satisfied demand and its stability over time (coefficient of
// variation across windows).
func Fig16FlowLevel(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig16",
		Title:  "Flow-level satisfied demand (CDF buckets) and CV over time",
		Header: []string{"stat", "value"},
	}
	sc := scales(opt)[0]
	intensity := onlineIntensities(opt)[0]
	trainScen := newScenario(sc, topology.CrossShellLasers, intensity, opt.Seed+121)
	model, _, err := trainSaTE(trainScen, 3, 30, opt.Seed)
	if err != nil {
		return nil, err
	}
	evalScen := newScenario(sc, topology.CrossShellLasers, intensity, opt.Seed+122)

	// Collect per-flow ratios across several instants; also track per-pair
	// ratios over time for the CV analysis.
	type pairKey struct{ s, d topology.NodeID }
	ratiosByPair := make(map[pairKey][]float64)
	var all []float64
	for i := 0; i < 5; i++ {
		p, _, _, err := evalScen.ProblemAt(ciEvalStart + float64(i)*17)
		if err != nil {
			return nil, err
		}
		if len(p.Flows) == 0 {
			continue
		}
		a, err := model.Solve(p)
		if err != nil {
			return nil, err
		}
		stats := sim.FlowLevelStats(p, a)
		for fi, ratio := range stats {
			all = append(all, ratio)
			k := pairKey{p.Flows[fi].Src, p.Flows[fi].Dst}
			ratiosByPair[k] = append(ratiosByPair[k], ratio)
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("fig16: no flows evaluated")
	}
	// The gated decoder's soft clamp caps per-flow satisfaction near 0.98 by
	// construction, so ">= 95% satisfied" is the practical analogue of the
	// paper's "fully satisfied" bucket.
	fully := 0
	for _, v := range all {
		if v >= 0.95 {
			fully++
		}
	}
	r.AddRow("flows observed", fmt.Sprintf("%d", len(all)))
	r.AddRow(">=95% satisfied", pct(float64(fully)/float64(len(all))))
	r.AddRow("p10", f3(percentile(all, 0.1)))
	r.AddRow("p50", f3(percentile(all, 0.5)))
	r.AddRow("p90", f3(percentile(all, 0.9)))

	// CV of per-pair satisfaction across time windows.
	var cvs []float64
	for _, series := range ratiosByPair {
		if len(series) < 2 {
			continue
		}
		var mean float64
		for _, v := range series {
			mean += v
		}
		mean /= float64(len(series))
		if mean <= 0 {
			continue
		}
		var varSum float64
		for _, v := range series {
			varSum += (v - mean) * (v - mean)
		}
		cvs = append(cvs, math.Sqrt(varSum/float64(len(series)))/mean)
	}
	if len(cvs) > 0 {
		r.AddRow("median CV across time", f3(percentile(cvs, 0.5)))
	}
	r.Note("paper: >30%% of pairs fully satisfied; median CV < 0.12 (stable service)")
	return r, nil
}
