package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"sate/internal/constellation"
	"sate/internal/core"
	"sate/internal/groundnet"
	"sate/internal/orbit"
	"sate/internal/paths"
	"sate/internal/topology"
)

func init() {
	register("fig12", Fig12PathDelay)
	register("appc-paths", AppCIncrementalPaths)
	register("disc-finetune", DiscussionFineTune)
}

// frankfurt and singapore are the two example users of Appendix C (Fig. 12).
var (
	frankfurt = groundnet.Site{LatDeg: 50.11, LonDeg: 8.68}
	singapore = groundnet.Site{LatDeg: 1.35, LonDeg: 103.82}
)

// Fig12PathDelay reproduces Fig. 12 / Appendix C: end-to-end path delay for a
// Frankfurt-Singapore connection under two access strategies — (1) each user
// accesses any visible satellite, (2) both endpoints access satellites of the
// same orbital shell. Same-shell access yields stabler path delays.
func Fig12PathDelay(opt Options) (*Report, error) {
	cons := constellation.StarlinkPhase1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	steps := 20
	if opt.Full {
		steps = 120
	}

	// bestInShell returns the highest-elevation satellite of one shell (or of
	// all shells when shell < 0) for a site, given positions.
	bestInShell := func(site groundnet.Site, shell int, snap *topology.Snapshot) (constellation.SatID, bool) {
		sp := site.ECEF()
		best := constellation.SatID(-1)
		bestE := orbit.Deg(25)
		var sats []constellation.Satellite
		if shell < 0 {
			sats = cons.Sats
		} else {
			sats = cons.ShellSats(shell)
		}
		for i := range sats {
			id := sats[i].ID
			if e := orbit.ElevationAngle(sp, snap.Pos[id]); e > bestE {
				best, bestE = id, e
			}
		}
		return best, best >= 0
	}

	delayFor := func(snap *topology.Snapshot, g *paths.Graph, a, b constellation.SatID, site1, site2 groundnet.Site) (float64, bool) {
		access := orbit.PropagationDelaySec(site1.ECEF(), snap.Pos[a]) +
			orbit.PropagationDelaySec(snap.Pos[b], site2.ECEF())
		if a == b {
			return access, true
		}
		// Delay-optimal route: Dijkstra over geometric link lengths.
		_, km, ok := g.ShortestPathByDistance(topology.NodeID(a), topology.NodeID(b), snap.Pos)
		if !ok {
			return 0, false
		}
		return km/orbit.SpeedOfLightKmS + access, true
	}

	var anyDelays, sameDelays []float64
	for i := 0; i < steps; i++ {
		t := float64(i) * 15
		snap := gen.Snapshot(t)
		g := paths.GraphFrom(snap)
		// Strategy 1: any visible satellite.
		a1, ok1 := bestInShell(frankfurt, -1, snap)
		b1, ok2 := bestInShell(singapore, -1, snap)
		if ok1 && ok2 {
			if d, ok := delayFor(snap, g, a1, b1, frankfurt, singapore); ok {
				anyDelays = append(anyDelays, d*1000)
			}
		}
		// Strategy 2: both endpoints in shell 0 (540 km, densest).
		a2, ok1 := bestInShell(frankfurt, 0, snap)
		b2, ok2 := bestInShell(singapore, 0, snap)
		if ok1 && ok2 {
			if d, ok := delayFor(snap, g, a2, b2, frankfurt, singapore); ok {
				sameDelays = append(sameDelays, d*1000)
			}
		}
	}
	r := &Report{
		ID:     "fig12",
		Title:  "Frankfurt-Singapore path delay by access strategy (Starlink)",
		Header: []string{"strategy", "samples", "mean", "stddev", "CV"},
	}
	row := func(name string, d []float64) {
		if len(d) == 0 {
			r.AddRow(name, "0", "-", "-", "-")
			return
		}
		var mean float64
		for _, v := range d {
			mean += v
		}
		mean /= float64(len(d))
		var varSum float64
		for _, v := range d {
			varSum += (v - mean) * (v - mean)
		}
		sd := math.Sqrt(varSum / float64(len(d)))
		r.AddRow(name, fmt.Sprintf("%d", len(d)),
			fmt.Sprintf("%.1f ms", mean), fmt.Sprintf("%.1f ms", sd), f3(sd/mean))
	}
	row("any visible satellite", anyDelays)
	row("same shell (shell 1)", sameDelays)
	r.Note("paper: same-shell access promotes stabler path delays for the connection")
	return r, nil
}

// AppCIncrementalPaths reproduces the Appendix C / Sec. 4 claim about
// incremental path maintenance: as topology changes, fewer than 2%% of
// configured paths need recomputation per second, far cheaper than full
// recomputation (56 ms average at Starlink scale on the paper's hardware).
func AppCIncrementalPaths(opt Options) (*Report, error) {
	cons := constellation.MidSize1()
	nPairs := 300
	steps := 30
	if opt.Full {
		cons = constellation.StarlinkPhase1()
		nPairs = 1500
		steps = 60
	}
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	s0 := gen.Snapshot(0)
	db := paths.NewDB(cons, s0, 10)
	rng := rand.New(rand.NewSource(opt.Seed + 201))
	var pairs []paths.Pair
	for len(pairs) < nPairs {
		a := constellation.SatID(rng.Intn(cons.Size()))
		b := constellation.SatID(rng.Intn(cons.Size()))
		if a == b {
			continue
		}
		pairs = append(pairs, paths.Pair{Src: a, Dst: b})
	}
	db.Precompute(pairs) // parallel fan-out across the worker pool

	var totalRecomputed int
	var totalUpdate time.Duration
	changedSteps := 0
	for i := 1; i <= steps; i++ {
		snap := gen.Snapshot(float64(i))
		start := time.Now()
		rec := db.Update(snap)
		totalUpdate += time.Since(start)
		totalRecomputed += rec
		if rec > 0 {
			changedSteps++
		}
	}
	// Full-recomputation reference: rebuild every pair against the final
	// snapshot.
	finalSnap := gen.Snapshot(float64(steps))
	router := paths.NewGridRouter(cons, finalSnap)
	start := time.Now()
	for _, pr := range pairs {
		router.KShortest(pr.Src, pr.Dst, 10)
	}
	fullTime := time.Since(start)

	fracPerSec := float64(totalRecomputed) / float64(len(pairs)) / float64(steps)
	r := &Report{
		ID:     "appc-paths",
		Title:  "Incremental path maintenance vs full recomputation",
		Header: []string{"metric", "value"},
	}
	r.AddRow("configured pairs", fmt.Sprintf("%d", len(pairs)))
	r.AddRow("seconds simulated", fmt.Sprintf("%d", steps))
	r.AddRow("pairs recomputed/s", pct(fracPerSec))
	r.AddRow("steps with changes", fmt.Sprintf("%d/%d", changedSteps, steps))
	r.AddRow("mean incremental update", ms(totalUpdate/time.Duration(steps)))
	r.AddRow("full recomputation", ms(fullTime))
	r.Note("paper: <2%% of paths re-computed per second; incremental updates average 56 ms at Starlink scale")
	return r, nil
}

// DiscussionFineTune reproduces the Sec. 7 fine-tuning discussion: a model
// transferred to a different constellation scale recovers performance after
// brief fine-tuning on a few samples from the target scale (the curriculum
// direction the paper suggests for gradually expanding constellations).
func DiscussionFineTune(opt Options) (*Report, error) {
	scs := scales(opt)
	srcScale, dstScale := scs[0], scs[1]

	srcScen := newScenario(srcScale, topology.CrossShellLasers, 0, opt.Seed+211)
	model, _, err := trainSaTE(srcScen, 3, 30, opt.Seed)
	if err != nil {
		return nil, err
	}

	dstEval := newScenario(dstScale, topology.CrossShellLasers, 0, opt.Seed+212)
	optSat, err := evalSatisfied(dstEval, labelSolver(), 3, ciEvalStart)
	if err != nil {
		return nil, err
	}
	before, err := evalSatisfied(dstEval, model, 3, ciEvalStart)
	if err != nil {
		return nil, err
	}

	// Fine-tune on a few target-scale samples (fresh traffic seed).
	ftScen := newScenario(dstScale, topology.CrossShellLasers, 0, opt.Seed+213)
	samples, err := makeSamples(ftScen, 3)
	if err != nil {
		return nil, err
	}
	tc := core.DefaultTrainConfig()
	tc.Epochs = 15
	tc.LR = 2e-3 // gentler steps than from-scratch: adapt, do not forget
	if _, err := core.Train(model, samples, tc); err != nil {
		return nil, err
	}
	after, err := evalSatisfied(dstEval, model, 3, ciEvalStart)
	if err != nil {
		return nil, err
	}

	r := &Report{
		ID:     "disc-finetune",
		Title:  fmt.Sprintf("Fine-tuning a %s-trained model for %s", srcScale.name, dstScale.name),
		Header: []string{"stage", "satisfied", "vs offline optimum"},
	}
	ratio := func(x float64) string {
		if optSat <= 0 {
			return "-"
		}
		return pct(x / optSat)
	}
	r.AddRow("transferred (no tuning)", pct(before), ratio(before))
	r.AddRow("after fine-tuning", pct(after), ratio(after))
	r.AddRow("offline optimum", pct(optSat), "100.0%")
	r.Note("Sec. 7: fine-tuning targets cross-scale transfer losses; at CI scale the transfer gap is already small, so gains are marginal — the headroom appears at gaps like the paper's 396 -> 4236")
	return r, nil
}
