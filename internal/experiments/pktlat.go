package experiments

import (
	"fmt"
	"math"

	"sate/internal/baselines"
	"sate/internal/orbit"
	"sate/internal/pktsim"
	"sate/internal/ruledist"
	"sate/internal/sim"
	"sate/internal/topology"
)

func init() { register("pktlat", PktLatCDF) }

// pktLatQuantiles are the CDF points reported per scheme, as cumulative
// fractions.
var pktLatQuantiles = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1}

// PktLatCDF runs the discrete-event packet engine under a combined stress
// scenario — a 3× traffic burst overlapping a rule-update window with real
// per-satellite distribution delays — and reports the per-packet latency CDF
// of SaTE against the baselines (DESIGN.md §15). Flow-level satisfaction
// (fig4/fig10) cannot see the difference between a scheme that reconverges in
// one propagation delay and one that blackholes traffic for a second; packet
// latency quantiles and loss can.
func PktLatCDF(opt Options) (*Report, error) {
	sc := scales(opt)[0]
	mode := topology.CrossShellLasers

	scen := newScenario(sc, mode, 0, opt.Seed+91)
	model, _, err := trainSaTE(scen, 3, 30, opt.Seed)
	if err != nil {
		return nil, err
	}

	// Teal trains on the t=ciTrainStart topology (its models are tied to a
	// single topology, Sec. 5.1); at eval time unseen pairs get no score.
	p0, _, _, err := scen.ProblemAt(ciTrainStart)
	if err != nil {
		return nil, err
	}
	teal := tealFor(scen, p0, 1<<33)
	if teal != nil && len(p0.Flows) > 0 {
		if ref, err := labelSolver().Solve(p0); err == nil {
			tOpt := newAdamFor(teal)
			for e := 0; e < 25; e++ {
				if _, err := teal.TrainStep(p0, ref, tOpt); err != nil {
					break
				}
			}
		}
	}

	// The update window replays a real recompute: the allocation solved at
	// ciEvalStart stays installed while the one solved 2 s later distributes.
	prevT, curT := ciEvalStart, ciEvalStart+2
	pPrev, _, _, err := scen.ProblemAt(prevT)
	if err != nil {
		return nil, err
	}
	pCur, snap, _, err := scen.ProblemAt(curT)
	if err != nil {
		return nil, err
	}
	if len(pPrev.Flows) == 0 || len(pCur.Flows) == 0 {
		return nil, fmt.Errorf("pktlat: empty eval problems at t=%v/%v", prevT, curT)
	}
	delays := ruledist.RuleDistributionDelays(snap, ruledist.HoustonSite, orbit.Deg(sc.minElevDeg))

	cfg := pktsim.Config{
		Seed:       opt.Seed,
		HorizonSec: 2,
		JitterFrac: 0.05,
		Spikes:     2,
		Handovers:  1,
		// The burst overlaps the update instant: stale rules meet peak load.
		Burst:      &pktsim.Burst{StartSec: 0.5, DurSec: 1, Factor: 3},
		MaxPackets: 1 << 20,
	}
	const updateAt = 0.8

	r := &Report{
		ID:    "pktlat",
		Title: "per-packet latency CDF under burst + rule-update window",
	}
	r.Header = []string{"scheme"}
	for _, q := range pktLatQuantiles {
		r.Header = append(r.Header, fmt.Sprintf("p%g", q*100))
	}
	r.Header = append(r.Header, "delivered", "loss")

	schemes := []sim.Allocator{model}
	if teal != nil {
		schemes = append(schemes, teal)
	} else {
		row := []string{"teal"}
		for range pktLatQuantiles {
			row = append(row, "OOM")
		}
		r.AddRow(append(row, "OOM", "OOM")...)
	}
	schemes = append(schemes, baselines.ECMPWF{}, &baselines.POP{K: 4, Seed: opt.Seed})
	for _, al := range schemes {
		aPrev, err := al.Solve(pPrev)
		if err != nil {
			return nil, fmt.Errorf("pktlat: %s prev solve: %w", al.Name(), err)
		}
		aCur, err := al.Solve(pCur)
		if err != nil {
			return nil, fmt.Errorf("pktlat: %s cur solve: %w", al.Name(), err)
		}
		res, err := pktsim.Run(&pktsim.RunSpec{
			Snap: snap, Problem: pCur, Alloc: aCur,
			Update: &pktsim.RuleUpdate{
				PrevProblem: pPrev, PrevAlloc: aPrev,
				AtSec: updateAt, DelaysSec: delays,
			},
		}, cfg)
		if err != nil {
			return nil, fmt.Errorf("pktlat: %s engine run: %w", al.Name(), err)
		}
		row := []string{al.Name()}
		for _, q := range pktLatQuantiles {
			v := res.LatencyPercentile(q * 100)
			if math.IsNaN(v) {
				row = append(row, "n/a")
			} else {
				row = append(row, fmt.Sprintf("%.2f ms", v*1e3))
			}
		}
		row = append(row, fmt.Sprintf("%d/%d", res.Delivered, res.Injected), pct(res.LossFrac()))
		r.AddRow(row...)
	}
	r.Note("burst ×%g over [%.1f s, %.1f s); rules pushed at %.1f s with per-satellite ruledist delays (Houston)",
		cfg.Burst.Factor, cfg.Burst.StartSec, cfg.Burst.StartSec+cfg.Burst.DurSec, updateAt)
	r.Note("columns are latency CDF points over delivered packets; loss counts queue, no-rule, link-down and loop drops")
	return r, nil
}
