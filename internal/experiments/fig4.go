package experiments

import (
	"fmt"
	"math/rand"

	"sate/internal/constellation"
	"sate/internal/groundnet"
	"sate/internal/orbit"
	"sate/internal/par"
	"sate/internal/paths"
	"sate/internal/ruledist"
	"sate/internal/topology"
)

func init() {
	register("fig4a", Fig4aTHT)
	register("fig4b", Fig4bPathObsolescence)
	register("fig4c", Fig4cLinkExclusion)
	register("fig13", Fig13RuleDistribution)
}

// thtConstellation picks the analysis constellation and sample count: the
// real Starlink shells in both modes; Full extends the window to the paper's
// 40,000 snapshots.
func thtConstellation(opt Options) (*constellation.Constellation, int) {
	if opt.Full {
		return constellation.StarlinkPhase1(), 40000
	}
	// CI uses the real Starlink constellation over a shorter window: a 15 s
	// sample already reproduces the paper's sub-100 ms mean THT.
	return constellation.StarlinkPhase1(), 1200
}

// Fig4aTHT reproduces Fig. 4 (a): the CDF of topology holding time, sampled
// every 12.5 ms, for both cross-shell link types.
func Fig4aTHT(opt Options) (*Report, error) {
	cons, nSnaps := thtConstellation(opt)
	r := &Report{
		ID:     "fig4a",
		Title:  "Topology holding time (CDF), 12.5 ms sampling",
		Header: []string{"cross-shell", "samples", "mean THT", "p50", "p90", "max"},
	}
	grid := groundnet.SyntheticPopulation(opt.Seed + 1)
	relays := groundnet.PlaceSites(222, grid.Probabilities(0), rand.New(rand.NewSource(opt.Seed+2)))
	for _, mode := range []topology.CrossShellMode{topology.CrossShellLasers, topology.CrossShellGroundRelays} {
		cfg := topology.DefaultConfig(mode)
		if mode == topology.CrossShellGroundRelays {
			cfg.Relays = relays
		}
		gen := topology.NewGenerator(cons, cfg)
		const dt = 0.0125
		// Snapshots are generated in parallel batches (Series fans out across
		// the worker pool); the THT fold over consecutive snapshots stays
		// serial. Batching bounds memory at Starlink scale.
		const batch = 256
		var prev *topology.Snapshot
		var holds []float64
		run := 0
		for start := 0; start < nSnaps; start += batch {
			n := nSnaps - start
			if n > batch {
				n = batch
			}
			for _, s := range gen.Series(dt*float64(start), dt, n) {
				if prev == nil {
					prev, run = s, 1
					continue
				}
				if s.SameTopology(prev) {
					run++
				} else {
					holds = append(holds, float64(run)*dt)
					run = 1
				}
				prev = s
			}
		}
		holds = append(holds, float64(run)*dt)
		res := topology.THTResult{SampleIntervalSec: dt, HoldTimesSec: holds}
		r.AddRow(mode.String(),
			fmt.Sprintf("%d", nSnaps),
			fmt.Sprintf("%.1f ms", res.Mean()*1000),
			fmt.Sprintf("%.1f ms", percentile(holds, 0.5)*1000),
			fmt.Sprintf("%.1f ms", percentile(holds, 0.9)*1000),
			fmt.Sprintf("%.1f ms", res.Max()*1000))
	}
	r.Note("paper (Starlink, 4236 sats): mean ~70 ms, max ~700 ms; cross-shell type has little effect")
	return r, nil
}

// Fig4bPathObsolescence reproduces Fig. 4 (b): configured shortest paths
// become obsolete as ISLs change; the paper reports >56%% of 14,941 paths
// obsolete within 150 s.
func Fig4bPathObsolescence(opt Options) (*Report, error) {
	cons, _ := thtConstellation(opt)
	nPairs := 300
	if opt.Full {
		nPairs = 1500
	}
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	s0 := gen.Snapshot(0)
	router := paths.NewGridRouter(cons, s0)
	// Draw the pair sample serially (the rng sequence fixes it), then fan the
	// independent k-shortest searches out across the worker pool.
	rng := rand.New(rand.NewSource(opt.Seed + 3))
	var pairs []paths.Pair
	for i := 0; i < nPairs; i++ {
		a := constellation.SatID(rng.Intn(cons.Size()))
		b := constellation.SatID(rng.Intn(cons.Size()))
		if a == b {
			continue
		}
		pairs = append(pairs, paths.Pair{Src: a, Dst: b})
	}
	routed := make([][]paths.Path, len(pairs))
	par.For(len(pairs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			routed[i] = router.KShortest(pairs[i].Src, pairs[i].Dst, 10)
		}
	})
	var configured []paths.Path
	for _, ps := range routed {
		configured = append(configured, ps...)
	}
	r := &Report{
		ID:     "fig4b",
		Title:  fmt.Sprintf("Configured-path obsolescence over time (%d paths)", len(configured)),
		Header: []string{"elapsed", "obsolete paths"},
	}
	for _, tm := range []float64{1, 5, 10, 30, 60, 90, 120, 150} {
		st := gen.Snapshot(tm)
		r.AddRow(fmt.Sprintf("%.0f s", tm), pct(paths.ObsoleteFraction(configured, st)))
	}
	r.Note("paper: >56%% of 14,941 configured Starlink paths obsolete within 150 s")
	return r, nil
}

// Fig4cLinkExclusion reproduces Fig. 4 (c): the fraction of changeable ISLs
// that must be excluded when TE computation spans a given interval.
func Fig4cLinkExclusion(opt Options) (*Report, error) {
	cons, _ := thtConstellation(opt)
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	// Snapshots every 0.5 s over 250 s: interval sweep from sub-second to
	// 250 s (the paper sweeps 12.5 ms - 250 s at 12.5 ms sampling).
	dt := 0.5
	n := 500
	if opt.Full {
		dt = 0.1
		n = 2500
	}
	snaps := gen.Series(0, dt, n)
	r := &Report{
		ID:     "fig4c",
		Title:  "Excluded changeable ISLs vs TE interval",
		Header: []string{"interval", "excluded links"},
	}
	for _, steps := range []int{1, 2, 10, 20, 60, 120, 240, n} {
		if steps > n {
			continue
		}
		r.AddRow(fmt.Sprintf("%.1f s", float64(steps)*dt), pct(topology.LinkExclusion(snaps, steps)))
	}
	r.Note("paper: exclusion grows from ~0 at 12.5 ms to a large fraction at 250 s")
	return r, nil
}

// Fig13RuleDistribution reproduces Fig. 13 / Appendix D: propagation delay of
// traffic-rule distribution from a Houston control centre to every satellite.
func Fig13RuleDistribution(opt Options) (*Report, error) {
	cons := constellation.StarlinkPhase1() // cheap even in CI: one snapshot
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	delays := ruledist.RuleDistributionDelays(snap, ruledist.HoustonSite, orbit.Deg(25))
	var finite []float64
	for _, d := range delays {
		if d < 10 {
			finite = append(finite, d)
		}
	}
	st := ruledist.SummarizeDelays(delays)
	r := &Report{
		ID:     "fig13",
		Title:  "Rule-distribution propagation delay, Houston -> 4236 Starlink satellites",
		Header: []string{"stat", "delay"},
	}
	r.AddRow("min", fmt.Sprintf("%.1f ms", st.MinSec*1000))
	r.AddRow("p50", fmt.Sprintf("%.1f ms", percentile(finite, 0.5)*1000))
	r.AddRow("p90", fmt.Sprintf("%.1f ms", percentile(finite, 0.9)*1000))
	r.AddRow("max", fmt.Sprintf("%.1f ms", st.MaxSec*1000))
	r.AddRow("reachable", fmt.Sprintf("%d/%d", st.Reachable, snap.NumSats))
	r.Note("paper: 2.3 ms minimum, 174 ms maximum")
	return r, nil
}
