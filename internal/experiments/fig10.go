package experiments

import (
	"fmt"

	"sate/internal/baselines"
	"sate/internal/par"
	"sate/internal/sim"
	"sate/internal/topology"
)

func init() {
	register("fig10ab", Fig10abOnline)
	register("fig10c", Fig10cTealComparison)
	register("fig10d", Fig10dGeneralization)
	register("fig14", Fig14Offline)
}

// onlineIntensities returns the traffic-intensity sweep.
func onlineIntensities(opt Options) []float64 {
	if opt.Full {
		return []float64{125, 250, 375, 500}
	}
	// CI intensities are calibrated against the CI constellations' capacity
	// at the steady-state load of the scaled flow durations.
	return []float64{3, 6, 12}
}

// Fig10abOnline reproduces Fig. 10 (a & b): online satisfied demand vs
// traffic intensity for SaTE and the baselines, under both cross-shell link
// types. The online metric accounts for computation latency: each method's
// allocation stays in effect (and goes stale) for a recomputation interval
// set to its measured solve latency.
func Fig10abOnline(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig10ab",
		Title:  "Online satisfied demand vs traffic intensity",
		Header: []string{"mode", "intensity", "sate", "lp (gurobi role)", "pop", "ecmp-wf", "backpressure"},
	}
	sc := scales(opt)[0]
	if opt.Full {
		sc = scales(opt)[1]
	}
	horizon := 40
	if opt.Full {
		horizon = 120
	}
	// Every (mode, intensity) cell is independent — its own seeded training
	// scenario, model, and evaluation runs — so the grid fans out across the
	// worker pool. Rows are collected per cell and appended in grid order, so
	// the report is identical to the serial sweep.
	type cellSpec struct {
		mode      topology.CrossShellMode
		intensity float64
	}
	var cells []cellSpec
	for _, mode := range []topology.CrossShellMode{topology.CrossShellLasers, topology.CrossShellGroundRelays} {
		for _, intensity := range onlineIntensities(opt) {
			cells = append(cells, cellSpec{mode, intensity})
		}
	}
	rows := make([][]string, len(cells))
	errs := make([]error, len(cells))
	par.For(len(cells), 1, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			rows[ci], errs[ci] = fig10abCell(opt, sc, horizon, cells[ci].mode, cells[ci].intensity)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	r.Rows = append(r.Rows, rows...)
	r.Note("paper: SaTE best online at every intensity; +23.5%% (lasers) / +46.6%% (relays) vs best baseline; satisfied demand falls as load rises")
	return r, nil
}

// fig10abCell trains and evaluates one (mode, intensity) cell of Fig. 10 a/b.
func fig10abCell(opt Options, sc scaleSpec, horizon int, mode topology.CrossShellMode, intensity float64) ([]string, error) {
	// Train SaTE on this scenario class (separate seed for training).
	trainScen := newScenario(sc, mode, intensity, opt.Seed+61)
	model, _, err := trainSaTE(trainScen, 3, 30, opt.Seed)
	if err != nil {
		return nil, err
	}
	run := func(al sim.Allocator, interval float64) string {
		s := newScenario(sc, mode, intensity, opt.Seed+62) // unseen traffic
		res, err := s.RunOnline(al, sim.OnlineConfig{
			HorizonSec:  horizon,
			StartSec:    ciEvalStart, // steady-state window
			IntervalSec: interval,
			StepSec:     2,
		})
		if err != nil {
			return "err"
		}
		return pct(res.SatisfiedMean)
	}
	// Recomputation intervals follow the paper's protocol (Sec. 5.4):
	// each method recomputes at its Starlink-scale average latency —
	// SaTE every second (17 ms << 1 s), Gurobi 47 s, POP 25 s,
	// ECMP-WF 54 s. Fixed intervals keep the CI-scale run faithful to
	// the mega-constellation deployment the paper models.
	sateCell := run(model, 2)
	lpCell := run(baselines.LPAuto{}, 47)
	popCell := run(&baselines.POP{K: 4, Seed: opt.Seed}, 25)
	ecmpCell := run(baselines.ECMPWF{}, 54)
	// Backpressure: distributed, no central computation; evaluated by
	// queue simulation on sampled instants.
	bpScen := newScenario(sc, mode, intensity, opt.Seed+62)
	var bpSum float64
	bpN := 0
	for i := 0; i < 3; i++ {
		p, _, _, err := bpScen.ProblemAt(ciEvalStart + float64(i*15))
		if err != nil {
			return nil, err
		}
		if len(p.Flows) == 0 {
			continue
		}
		bpSum += (baselines.Backpressure{SlotSec: 0.1, HorizonSec: 10}).Evaluate(p)
		bpN++
	}
	bpCell := "n/a"
	if bpN > 0 {
		bpCell = pct(bpSum / float64(bpN))
	}
	return []string{mode.String(), fmt.Sprintf("%.0f", intensity),
		sateCell, lpCell, popCell, ecmpCell, bpCell}, nil
}

// Fig10cTealComparison reproduces Fig. 10 (c): SaTE vs Teal online at a scale
// Teal can handle.
func Fig10cTealComparison(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig10c",
		Title:  "SaTE vs Teal, online satisfied demand (Teal-feasible scale)",
		Header: []string{"mode", "intensity", "sate", "teal"},
	}
	sc := scales(opt)[0]
	horizon := 30
	for _, mode := range []topology.CrossShellMode{topology.CrossShellLasers, topology.CrossShellGroundRelays} {
		intensity := onlineIntensities(opt)[0]
		trainScen := newScenario(sc, mode, intensity, opt.Seed+71)
		model, _, err := trainSaTE(trainScen, 3, 30, opt.Seed)
		if err != nil {
			return nil, err
		}
		// Teal is bound to (and trained on) a topology from the TRAINING
		// scenario; at evaluation time the topology has drifted and Teal's
		// frozen pair/path layout is stale — the effect the paper measures.
		p0, _, _, err := trainScen.ProblemAt(ciTrainStart)
		if err != nil {
			return nil, err
		}
		teal := tealFor(trainScen, p0, 1<<33)
		if teal != nil && len(p0.Flows) > 0 {
			if ref, err := labelSolver().Solve(p0); err == nil {
				tOpt := newAdamFor(teal)
				for e := 0; e < 25; e++ {
					if _, err := teal.TrainStep(p0, ref, tOpt); err != nil {
						break
					}
				}
			}
		}
		run := func(al sim.Allocator) string {
			s := newScenario(sc, mode, intensity, opt.Seed+72)
			res, err := s.RunOnline(al, sim.OnlineConfig{
				HorizonSec: horizon, StartSec: ciEvalStart, IntervalSec: 2, StepSec: 2,
			})
			if err != nil {
				return "err"
			}
			return pct(res.SatisfiedMean)
		}
		tealCell := "OOM"
		if teal != nil {
			tealCell = run(teal)
		}
		r.AddRow(mode.String(), fmt.Sprintf("%.0f", intensity), run(model), tealCell)
	}
	r.Note("paper (396 sats): SaTE beats Teal by 17.4%% (lasers) and 19.8%% (relays) — Teal's frozen pair/path layout goes stale")
	return r, nil
}

// Fig10dGeneralization reproduces Fig. 10 (d): a model trained on one scale
// applied to other scales, measured as the ratio of its satisfied demand to
// the offline optimum, compared with models trained natively on each scale.
func Fig10dGeneralization(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig10d",
		Title:  "Cross-scale generalization (ratio to offline optimum)",
		Header: []string{"test scale", "native model", "transferred model"},
	}
	scs := scales(opt)
	trainScale := scs[0]
	if len(scs) > 1 {
		trainScale = scs[1] // train on the middle scale, as the paper trains on 396
	}
	trainScen := newScenario(trainScale, topology.CrossShellLasers, 0, opt.Seed+81)
	transferred, _, err := trainSaTE(trainScen, 3, 30, opt.Seed)
	if err != nil {
		return nil, err
	}
	for _, sc := range scs {
		evalScen := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+82)
		native, _, err := trainSaTE(newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+83), 3, 30, opt.Seed)
		if err != nil {
			return nil, err
		}
		optSat, err := evalSatisfied(evalScen, labelSolver(), 3, ciEvalStart)
		if err != nil {
			return nil, err
		}
		natSat, err := evalSatisfied(evalScen, native, 3, ciEvalStart)
		if err != nil {
			return nil, err
		}
		xferSat, err := evalSatisfied(evalScen, transferred, 3, ciEvalStart)
		if err != nil {
			return nil, err
		}
		if optSat <= 0 {
			continue
		}
		r.AddRow(sc.name, pct(natSat/optSat), pct(xferSat/optSat))
	}
	r.Note("paper: native models >80%% of optimum; the 396-trained model transfers with 6-18%% degradation yet still beats the baselines at Starlink")
	return r, nil
}

// Fig14Offline reproduces Fig. 14 / Appendix H.1: offline satisfied demand
// (no latency accounting). The LP reference is the upper bound; SaTE should
// be second, close behind.
func Fig14Offline(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig14",
		Title:  "Offline satisfied demand vs intensity (no computation delay)",
		Header: []string{"intensity", "optimal (lp)", "sate", "pop", "ecmp-wf"},
	}
	sc := scales(opt)[0]
	// Per-intensity fan-out: each intensity trains and evaluates
	// independently; rows are appended in sweep order.
	intensities := onlineIntensities(opt)
	rows := make([][]string, len(intensities))
	errs := make([]error, len(intensities))
	par.For(len(intensities), 1, func(lo, hi int) {
		for ii := lo; ii < hi; ii++ {
			intensity := intensities[ii]
			trainScen := newScenario(sc, topology.CrossShellLasers, intensity, opt.Seed+91)
			model, _, err := trainSaTE(trainScen, 3, 30, opt.Seed)
			if err != nil {
				errs[ii] = err
				continue
			}
			eval := func(al sim.Allocator) string {
				s := newScenario(sc, topology.CrossShellLasers, intensity, opt.Seed+92)
				sat, err := evalSatisfied(s, al, 3, ciEvalStart)
				if err != nil {
					return "err"
				}
				return pct(sat)
			}
			rows[ii] = []string{fmt.Sprintf("%.0f", intensity),
				eval(baselines.LPAuto{}),
				eval(model),
				eval(&baselines.POP{K: 4, Seed: opt.Seed}),
				eval(baselines.ECMPWF{})}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	r.Rows = append(r.Rows, rows...)
	r.Note("paper: offline SaTE is second best, 12.8%% (lasers) / 12.3%% (relays) below the Gurobi upper bound")
	return r, nil
}
