package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"sate/internal/autodiff"
	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/core"
	"sate/internal/graphembed"
	"sate/internal/sim"
	"sate/internal/te"
	"sate/internal/topology"
)

func init() {
	register("abl-graph", AblationGraphReduction)
	register("abl-prune", AblationPruning)
	register("abl-dpp", AblationDPPvsRandom)
	register("abl-attn", AblationAttention)
	register("abl-mwu", AblationMWUEpsilon)
	register("abl-loss", AblationLoss)
}

// newAdamFor builds the optimizer used for quick baseline fits.
func newAdamFor(t *baselines.Teal) *autodiff.Adam {
	opt := autodiff.NewAdam(3e-3, t.Params()...)
	opt.ClipNorm = 5
	return opt
}

// AblationGraphReduction measures what the graph reduction of Sec. 3.2 saves:
// relation counts and inference latency of the reduced R1/R2/R3 model vs a
// model that also processes the redundant "access" relation of Fig. 6 (a).
func AblationGraphReduction(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-graph",
		Title:  "Graph reduction ablation: reduced (Fig 6b) vs with access relation (Fig 6a)",
		Header: []string{"scale", "relations reduced", "relations full", "latency reduced", "latency full"},
	}
	for _, sc := range scales(opt) {
		s := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+131)
		p, _, _, err := s.ProblemAt(ciTrainStart)
		if err != nil {
			return nil, err
		}
		reduced, full := core.FullGraphRelations(p)

		mReduced := core.NewModel(core.DefaultConfig())
		cfgFull := core.DefaultConfig()
		cfgFull.AccessRelation = true
		mFull := core.NewModel(cfgFull)

		// Warm up, then take the best of three runs (one-shot wall times on a
		// shared core are noisy).
		if _, err := mReduced.Solve(p); err != nil {
			return nil, err
		}
		if _, err := mFull.Solve(p); err != nil {
			return nil, err
		}
		dR, err := bestOf3(mReduced, p)
		if err != nil {
			return nil, err
		}
		dF, err := bestOf3(mFull, p)
		if err != nil {
			return nil, err
		}
		r.AddRow(sc.name, fmt.Sprintf("%d", reduced), fmt.Sprintf("%d", full), ms(dR), ms(dF))
	}
	r.Note("the reduction removes ~40%% of graph relations; at CI scale the redundant access module costs little wall time (its edges are few), while at paper scale every extra relation type is another full message-passing module (Sec. 3.2)")
	return r, nil
}

// bestOf3 returns the fastest of three timed solves.
func bestOf3(al sim.Allocator, p *te.Problem) (time.Duration, error) {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < 3; i++ {
		d, err := solveLatency(al, p)
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
	}
	return best, nil
}

// AblationPruning measures traffic/path pruning: inference latency and graph
// size with the sparse (pruned) input vs a dense input that carries every
// source-destination pair including zero-demand ones.
func AblationPruning(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-prune",
		Title:  "Traffic/path pruning ablation: sparse vs dense (zero-demand pairs kept)",
		Header: []string{"scale", "flows pruned", "flows dense", "latency pruned", "latency dense"},
	}
	sc := scales(opt)[0]
	s := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+141)
	p, snap, _, err := s.ProblemAt(ciTrainStart)
	if err != nil {
		return nil, err
	}
	// Dense problem: add zero-demand flows for absent pairs, with candidate
	// paths, up to a budget (the full N^2 is exactly what pruning avoids).
	dense := &te.Problem{
		NumNodes: p.NumNodes,
		Links:    p.Links,
		LinkCap:  p.LinkCap,
		Flows:    append([]te.FlowDemand(nil), p.Flows...),
	}
	have := make(map[[2]topology.NodeID]bool)
	for _, f := range p.Flows {
		have[[2]topology.NodeID{f.Src, f.Dst}] = true
	}
	budget := 6 * len(p.Flows)
	if budget < 200 {
		budget = 200
	}
	added := 0
outer:
	for a := 0; a < snap.NumSats && added < budget; a++ {
		for b := a + 1; b < snap.NumSats; b++ {
			if added >= budget {
				break outer
			}
			k := [2]topology.NodeID{topology.NodeID(a), topology.NodeID(b)}
			if have[k] {
				continue
			}
			ps := s.PathDB.Paths(constellation.SatID(a), constellation.SatID(b))
			if len(ps) == 0 {
				continue
			}
			dense.Flows = append(dense.Flows, te.FlowDemand{
				Src: k[0], Dst: k[1], DemandMbps: 0, Paths: ps,
			})
			added++
		}
	}
	if err := dense.Finalize(); err != nil {
		return nil, err
	}
	m := core.NewModel(core.DefaultConfig())
	if _, err := m.Solve(p); err != nil {
		return nil, err
	}
	dSparse, err := bestOf3(m, p)
	if err != nil {
		return nil, err
	}
	dDense, err := bestOf3(m, dense)
	if err != nil {
		return nil, err
	}
	r.AddRow(sc.name, fmt.Sprintf("%d", len(p.Flows)), fmt.Sprintf("%d", len(dense.Flows)), ms(dSparse), ms(dDense))
	r.Note("dense input capped at a budget; at Starlink scale the unpruned input is 4236^2 pairs (335 GB, Table 1) — unrunnable by construction")
	return r, nil
}

// AblationDPPvsRandom compares DPP topology selection against uniform random
// selection at equal budget (Appendix E's justification).
func AblationDPPvsRandom(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-dpp",
		Title:  "Topology selection: DPP vs random at equal budget",
		Header: []string{"budget", "dpp satisfied", "random satisfied"},
	}
	sc := scales(opt)[0]
	s := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+151)
	poolSize, k, epochs := 16, 3, 10
	if opt.Full {
		poolSize, k, epochs = 80, 16, 20
	}
	var times []float64
	var vecs [][]float64
	for i := 0; i < poolSize; i++ {
		t := ciTrainStart + float64(i)*41
		times = append(times, t)
		vecs = append(vecs, graphembed.Embed(s.SnapshotAt(t), 64, 3))
	}
	solver := labelSolver()
	trainOn := func(sel []int) (float64, error) {
		var samples []*core.Sample
		for _, idx := range sel {
			p, _, _, err := s.ProblemAt(times[idx])
			if err != nil {
				return 0, err
			}
			if len(p.Flows) == 0 {
				continue
			}
			ref, err := solver.Solve(p)
			if err != nil {
				return 0, err
			}
			samples = append(samples, core.NewSample(p, ref))
		}
		if len(samples) == 0 {
			return 0, fmt.Errorf("no samples")
		}
		cfg := core.DefaultConfig()
		cfg.Seed = opt.Seed
		m := core.NewModel(cfg)
		tc := core.DefaultTrainConfig()
		tc.Epochs = epochs
		if _, err := core.Train(m, samples, tc); err != nil {
			return 0, err
		}
		return evalSatisfied(s, m, 3, ciTrainStart+float64(poolSize)*41+100)
	}
	dppSel := graphembed.DPPSelect(vecs, k)
	dppSat, err := trainOn(dppSel)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed + 152))
	randSel := graphembed.RandomSelect(poolSize, k, rng)
	randSat, err := trainOn(randSel)
	if err != nil {
		return nil, err
	}
	r.AddRow(fmt.Sprintf("%d", k), pct(dppSat), pct(randSat))
	r.Note("DPP picks structurally diverse topologies; expected >= random at small budgets")
	return r, nil
}

// AblationAttention compares learned attention against mean aggregation in
// all GNN modules (Sec. 3.3's choice of attention-enabled GNN).
func AblationAttention(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-attn",
		Title:  "Attention vs mean aggregation",
		Header: []string{"variant", "satisfied (unseen)", "train loss"},
	}
	sc := scales(opt)[0]
	s := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+161)
	samples, err := makeSamples(s, 3)
	if err != nil {
		return nil, err
	}
	for _, variant := range []struct {
		name    string
		uniform bool
	}{{"attention", false}, {"mean-agg", true}} {
		cfg := core.DefaultConfig()
		cfg.Seed = opt.Seed
		cfg.UniformAttention = variant.uniform
		m := core.NewModel(cfg)
		tc := core.DefaultTrainConfig()
		tc.Epochs = 12
		res, err := core.Train(m, samples, tc)
		if err != nil {
			return nil, err
		}
		sat, err := evalSatisfied(s, m, 3, ciEvalStart)
		if err != nil {
			return nil, err
		}
		r.AddRow(variant.name, pct(sat), f3(res.FinalLoss))
	}
	return r, nil
}

// AblationMWUEpsilon sweeps the Garg-Könemann epsilon: solution quality vs
// latency trade-off of the scalable solver.
func AblationMWUEpsilon(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-mwu",
		Title:  "GK packing-solver epsilon sweep (quality vs latency)",
		Header: []string{"epsilon", "throughput vs exact", "latency"},
	}
	sc := scales(opt)[0]
	s := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+171)
	p, _, _, err := s.ProblemAt(ciTrainStart)
	if err != nil {
		return nil, err
	}
	exact, err := (baselines.LPExact{}).Solve(p)
	if err != nil {
		return nil, err
	}
	optT := exact.Throughput()
	for _, eps := range []float64{0.3, 0.1, 0.05, 0.02} {
		start := time.Now()
		a, err := (baselines.GK{Epsilon: eps}).Solve(p)
		lat := time.Since(start)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if optT > 0 {
			ratio = a.Throughput() / optT
		}
		r.AddRow(fmt.Sprintf("%.2f", eps), pct(ratio), ms(lat))
	}
	return r, nil
}

// AblationLoss compares the pure-supervised training recipe against the
// Eq. 4 mixed (supervised + penalized-optimization) loss on a lightly and a
// heavily loaded scenario. On CPU-scale instances the mixed loss helps
// slightly when load is moderate but its Mbps-scale penalty gradient can
// crash the demand-normalised model under heavy overload — the reason
// DefaultTrainConfig warm-starts fully supervised (the paper grid-searched
// these hyperparameters for its GPU-scale setting, Appendix B).
func AblationLoss(opt Options) (*Report, error) {
	r := &Report{
		ID:     "abl-loss",
		Title:  "Training loss ablation: supervised-only vs mixed (Eq. 4)",
		Header: []string{"scenario", "supervised-only", "mixed loss", "optimal (ref)"},
	}
	sc := scales(opt)[0]
	for _, load := range []struct {
		name      string
		intensity float64
	}{{"light load", 0}, {"heavy load (2x)", 2 * sc.intensity}} {
		trainEval := func(warm float64) (float64, error) {
			s := newScenario(sc, topology.CrossShellLasers, load.intensity, opt.Seed+181)
			samples, err := makeSamples(s, 3)
			if err != nil {
				return 0, err
			}
			cfg := core.DefaultConfig()
			cfg.Seed = opt.Seed
			m := core.NewModel(cfg)
			tcfg := core.DefaultTrainConfig()
			tcfg.Epochs = 30
			tcfg.WarmupFrac = warm
			if _, err := core.Train(m, samples, tcfg); err != nil {
				return 0, err
			}
			return evalSatisfied(s, m, 3, ciEvalStart)
		}
		sup, err := trainEval(1.0)
		if err != nil {
			return nil, err
		}
		mixed, err := trainEval(0.75)
		if err != nil {
			return nil, err
		}
		refScen := newScenario(sc, topology.CrossShellLasers, load.intensity, opt.Seed+181)
		ref, err := evalSatisfied(refScen, labelSolver(), 3, ciEvalStart)
		if err != nil {
			return nil, err
		}
		r.AddRow(load.name, pct(sup), pct(mixed), pct(ref))
	}
	return r, nil
}
