// Package experiments contains one driver per table and figure of the
// paper's evaluation (Sec. 5 and Appendices D/H), plus the ablation studies
// listed in DESIGN.md. Every driver returns a Report that renders as an
// aligned text table; cmd/sate-bench and the root bench suite call into
// these drivers.
//
// Drivers honour an Options.Full switch: the default CI scale finishes on a
// single CPU core, while Full runs paper-scale analyses (full Starlink for
// the topology/paths/delay experiments; the learning experiments stay at
// reduced embedding dimension per DESIGN.md's substitution table).
package experiments

import (
	"encoding/csv"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"sate/internal/baselines"
	"sate/internal/constellation"
	"sate/internal/core"
	"sate/internal/sim"
	"sate/internal/te"
	"sate/internal/topology"
)

// Options selects the execution scale of an experiment.
type Options struct {
	Full bool
	Seed int64
}

// Report is a rendered experiment result.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends a free-form note line.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the report as an aligned table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Driver is an experiment entry point.
type Driver func(Options) (*Report, error)

// Registry maps experiment IDs to drivers.
var Registry = map[string]Driver{}

func register(id string, d Driver) { Registry[id] = d }

// IDs returns the registered experiment IDs in sorted order.
func IDs() []string {
	var out []string
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// scaleSpec names a constellation scale used in the sweeps.
type scaleSpec struct {
	name string
	cons func() *constellation.Constellation
	// minElev for user access; small constellations need a lower threshold
	// to have meaningful coverage (see sim.ScenarioConfig.MinElevDeg).
	minElevDeg float64
	intensity  float64 // default traffic intensity for this scale
	// durScale multiplies the Table-2 flow durations so that the arrival
	// process reaches steady state within the simulated horizon (the paper
	// itself scales bandwidth/flows down, Sec. 4 footnote 5).
	durScale float64
}

// Steady-state timeline under durScale 0.05: mean flow lifetime ~51 s, so
// the load plateaus by ~250 s. Training samples are drawn from the plateau
// and evaluations run later on the same plateau (unseen topology + traffic).
const (
	ciTrainStart = 150.0
	ciEvalStart  = 700.0
)

func ciScales() []scaleSpec {
	return []scaleSpec{
		{name: "toy-60", cons: func() *constellation.Constellation { return constellation.Toy(5, 6) }, minElevDeg: 5, intensity: 6, durScale: 0.05},
		{name: "iridium-66", cons: constellation.Iridium, minElevDeg: 5, intensity: 6, durScale: 0.05},
		{name: "toy-160", cons: func() *constellation.Constellation { return constellation.Toy(8, 10) }, minElevDeg: 5, intensity: 10, durScale: 0.05},
	}
}

func fullScales() []scaleSpec {
	return []scaleSpec{
		{name: "iridium-66", cons: constellation.Iridium, minElevDeg: 5, intensity: 12, durScale: 0.05},
		{name: "midsize-396", cons: constellation.MidSize1, minElevDeg: 10, intensity: 125, durScale: 0.05},
		{name: "midsize-1584", cons: constellation.MidSize2, minElevDeg: 25, intensity: 250, durScale: 0.05},
		{name: "starlink-4236", cons: constellation.StarlinkPhase1, minElevDeg: 25, intensity: 500, durScale: 0.05},
	}
}

func scales(opt Options) []scaleSpec {
	if opt.Full {
		return fullScales()
	}
	return ciScales()
}

// newScenario builds a sim scenario for a scale spec.
func newScenario(sc scaleSpec, mode topology.CrossShellMode, intensity float64, seed int64) *sim.Scenario {
	if intensity == 0 {
		intensity = sc.intensity
	}
	return sim.NewScenario(sc.cons(), sim.ScenarioConfig{
		Mode:              mode,
		Intensity:         intensity,
		Seed:              seed,
		MinElevDeg:        sc.minElevDeg,
		FlowDurationScale: sc.durScale,
	})
}

// labelSolver returns the reference solver used for training labels and
// offline optima (the commercial-solver role).
func labelSolver() baselines.Solver { return baselines.LPAuto{} }

// trainSaTE generates nSamples problems spaced over time from the scenario,
// labels them with the reference solver, and trains a fresh SaTE model.
func trainSaTE(s *sim.Scenario, nSamples, epochs int, seed int64) (*core.Model, time.Duration, error) {
	samples, err := makeSamples(s, nSamples)
	if err != nil {
		return nil, 0, err
	}
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	m := core.NewModel(cfg)
	tc := core.DefaultTrainConfig()
	tc.Epochs = epochs
	start := time.Now()
	if _, err := core.Train(m, samples, tc); err != nil {
		return nil, 0, err
	}
	return m, time.Since(start), nil
}

// makeSamples builds labelled training samples from a scenario at spaced
// instants (different topologies and traffic states).
func makeSamples(s *sim.Scenario, n int) ([]*core.Sample, error) {
	solver := labelSolver()
	var out []*core.Sample
	for i := 0; i < n; i++ {
		// Steady-state instants, spaced and unaligned with topology periods.
		t := ciTrainStart + float64(i)*97
		p, _, _, err := s.ProblemAt(t)
		if err != nil {
			return nil, err
		}
		if len(p.Flows) == 0 {
			continue
		}
		ref, err := solver.Solve(p)
		if err != nil {
			return nil, err
		}
		out = append(out, core.NewSample(p, ref))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no non-empty samples generated")
	}
	return out, nil
}

// evalSatisfied computes the mean offline satisfied demand of an allocator
// over nTest unseen problems starting at tStart.
func evalSatisfied(s *sim.Scenario, al sim.Allocator, nTest int, tStart float64) (float64, error) {
	var sum float64
	count := 0
	for i := 0; i < nTest; i++ {
		p, _, _, err := s.ProblemAt(tStart + float64(i)*23)
		if err != nil {
			return 0, err
		}
		if len(p.Flows) == 0 {
			continue
		}
		a, err := al.Solve(p)
		if err != nil {
			return 0, err
		}
		sum += p.SatisfiedDemand(a)
		count++
	}
	if count == 0 {
		return 0, fmt.Errorf("experiments: no test problems")
	}
	return sum / float64(count), nil
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f ms", float64(d.Nanoseconds())/1e6)
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// percentile returns the p-quantile (0..1) of sorted-copied data.
func percentile(data []float64, p float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), data...)
	sort.Float64s(s)
	idx := p * float64(len(s)-1)
	lo := int(idx)
	hi := lo + 1
	if hi >= len(s) {
		return s[len(s)-1]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// solveLatency times one Solve call.
func solveLatency(al sim.Allocator, p *te.Problem) (time.Duration, error) {
	start := time.Now()
	_, err := al.Solve(p)
	return time.Since(start), err
}

// CSV renders the report as RFC-4180 CSV (header row + data rows), for
// downstream plotting of the figures.
func (r *Report) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(r.Header) // error is sticky; checked once after Flush
	for _, row := range r.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		// Unreachable: strings.Builder writes cannot fail.
		panic("experiments: rendering CSV: " + err.Error())
	}
	return b.String()
}
