package experiments

import (
	"fmt"

	"sate/internal/baselines"
	"sate/internal/core"
	"sate/internal/sim"
	"sate/internal/te"
	"sate/internal/topology"
)

func init() {
	register("fig8a", Fig8aLatency)
	register("fig8b", Fig8bLatencyCDF)
}

// tealFor builds a Teal model bound to the scenario's t=0 snapshot and the
// problem's candidate paths; returns nil if the dense layout exceeds memory
// (the Starlink-scale failure of Sec. 5.1).
func tealFor(s *sim.Scenario, p *te.Problem, memLimit int64) *baselines.Teal {
	snap := s.SnapshotAt(ciTrainStart)
	pp := make(map[[2]topology.NodeID][][]topology.NodeID)
	for _, f := range p.Flows {
		var ps [][]topology.NodeID
		for _, path := range f.Paths {
			ps = append(ps, path.Nodes)
		}
		pp[[2]topology.NodeID{f.Src, f.Dst}] = ps
	}
	teal, err := baselines.NewTeal(snap, pp, s.Build.K, 16, memLimit, 1)
	if err != nil {
		return nil
	}
	return teal
}

// Fig8aLatency reproduces Fig. 8 (a): TE computation latency vs constellation
// scale for SaTE and the baselines. SaTE's latency should stay near-constant
// while the solver baselines grow steeply; Teal drops out when its dense
// layout exceeds memory.
func Fig8aLatency(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig8a",
		Title:  "TE computation latency vs scale",
		Header: []string{"scale", "flows", "sate", "lp (gurobi role)", "pop", "ecmp-wf", "harp", "teal"},
	}
	memLimit := int64(512 << 20) // models a memory ceiling proportional to CPU-scale runs
	for _, sc := range scales(opt) {
		s := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+21)
		p, _, _, err := s.ProblemAt(ciTrainStart)
		if err != nil {
			return nil, err
		}
		sate := core.NewModel(core.DefaultConfig())
		lat := func(al sim.Allocator) string {
			d, err := solveLatency(al, p)
			if err != nil {
				return "err"
			}
			return ms(d)
		}
		// Warm up SaTE once (first inference pays allocation warmup).
		if _, err := sate.Solve(p); err != nil {
			return nil, err
		}
		tealCell := "OOM"
		if teal := tealFor(s, p, memLimit); teal != nil {
			tealCell = lat(teal)
		}
		pop := &baselines.POP{K: 4, Seed: opt.Seed}
		popCell := "err"
		if _, err := pop.Solve(p); err == nil {
			popCell = ms(pop.MaxSubLatency) // parallel-deployment latency
		}
		r.AddRow(sc.name,
			fmt.Sprintf("%d", len(p.Flows)),
			lat(sate),
			lat(baselines.LPAuto{}),
			popCell,
			lat(baselines.ECMPWF{}),
			lat(baselines.NewHarp(16, 1)),
			tealCell,
		)
	}
	r.Note("paper (GPU): SaTE 17 ms at 4236 sats; 2738x vs Gurobi, 1462x vs POP, >1013x vs ECMP-WF; HARP ~4x SaTE; Teal OOM at Starlink")
	r.Note("CPU absolute numbers differ; the reproduced shape: SaTE near-flat vs scale, solvers grow steeply, Teal hits the memory gate")
	return r, nil
}

// Fig8bLatencyCDF reproduces Fig. 8 (b): the distribution of SaTE's
// computation latency across repeated inferences per scale.
func Fig8bLatencyCDF(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig8b",
		Title:  "SaTE inference latency distribution",
		Header: []string{"scale", "n", "mean", "p50", "p90", "p99", "max"},
	}
	reps := 15
	if opt.Full {
		reps = 40
	}
	for _, sc := range scales(opt) {
		s := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+31)
		sate := core.NewModel(core.DefaultConfig())
		var lats []float64
		for i := 0; i < reps; i++ {
			p, _, _, err := s.ProblemAt(ciTrainStart + float64(i)*13)
			if err != nil {
				return nil, err
			}
			d, err := solveLatency(sate, p)
			if err != nil {
				return nil, err
			}
			lats = append(lats, d.Seconds()*1000)
		}
		mean := 0.0
		for _, l := range lats {
			mean += l
		}
		mean /= float64(len(lats))
		r.AddRow(sc.name, fmt.Sprintf("%d", len(lats)),
			fmt.Sprintf("%.2f ms", mean),
			fmt.Sprintf("%.2f ms", percentile(lats, 0.5)),
			fmt.Sprintf("%.2f ms", percentile(lats, 0.9)),
			fmt.Sprintf("%.2f ms", percentile(lats, 0.99)),
			fmt.Sprintf("%.2f ms", percentile(lats, 1.0)))
	}
	r.Note("paper: mean 17 ms, stddev 87 us on Starlink (A100); slight growth with scale from memory effects")
	return r, nil
}
