package experiments

import (
	"fmt"

	"sate/internal/core"
	"sate/internal/topology"
)

func init() {
	register("tab1", Table1Volumes)
}

// Table1Volumes reproduces Table 1: per-data-point volume of the traffic and
// path datasets, original (dense, DNN-style fixed layout) vs pruned (sparse
// non-zero entries only), across constellation scales. Absolute bytes follow
// the storage model documented in internal/core/volume.go; the reproduced
// claim is the scaling of the reduction factor with constellation size.
func Table1Volumes(opt Options) (*Report, error) {
	r := &Report{
		ID:    "tab1",
		Title: "Data-point volume: original vs pruned (traffic + paths)",
		Header: []string{"scale", "flows", "traffic orig", "traffic pruned",
			"paths orig", "paths pruned", "reduction"},
	}
	scs := scales(opt)
	for _, sc := range scs {
		s := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+11)
		p, _, _, err := s.ProblemAt(ciTrainStart)
		if err != nil {
			return nil, err
		}
		maxHops := 16
		if s.Cons.Size() > 1000 {
			maxHops = 40
		}
		v := core.MeasureVolume(p, s.Cons.Size(), s.Build.K, maxHops)
		r.AddRow(sc.name,
			fmt.Sprintf("%d", len(p.Flows)),
			bytesStr(v.TrafficOriginal), bytesStr(v.TrafficPruned),
			bytesStr(v.PathOriginal), bytesStr(v.PathPruned),
			fmt.Sprintf("%.0fx", v.Reduction()))
	}
	r.Note("paper (their storage constants): 132x at 66 sats up to 22,381x at 4236 sats (335 GB -> 15 MB)")
	r.Note("reduction factor must grow with constellation size; absolute bytes depend on the storage model")
	return r, nil
}

func bytesStr(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
