package experiments

import (
	"testing"
	"time"

	"sate/internal/baselines"
	"sate/internal/core"
	"sate/internal/topology"
)

func TestProfileScales(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling only")
	}
	for _, sc := range ciScales() {
		s := newScenario(sc, topology.CrossShellLasers, 0, 21)
		start := time.Now()
		p, _, _, err := s.ProblemAt(30)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: flows=%d vars=%d links=%d build=%v", sc.name, len(p.Flows), p.NumPaths(), len(p.Links), time.Since(start))

		m := core.NewModel(core.DefaultConfig())
		start = time.Now()
		m.Solve(p)
		t.Logf("  sate: %v", time.Since(start))

		start = time.Now()
		(baselines.GK{Epsilon: 0.05}).Solve(p)
		t.Logf("  gk: %v", time.Since(start))

		start = time.Now()
		(baselines.LPAuto{}).Solve(p)
		t.Logf("  lpauto: %v", time.Since(start))

		start = time.Now()
		baselines.NewHarp(16, 1).Solve(p)
		t.Logf("  harp: %v", time.Since(start))
	}
}
