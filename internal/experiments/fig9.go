package experiments

import (
	"fmt"
	"time"

	"sate/internal/autodiff"
	"sate/internal/baselines"
	"sate/internal/core"
	"sate/internal/graphembed"
	"sate/internal/topology"
)

func init() {
	register("fig9a", Fig9aTrainingTime)
	register("fig9b", Fig9bTopologyPruning)
}

// Fig9aTrainingTime reproduces Fig. 9 (a): wall-clock training time of SaTE
// vs the learned baselines across scales, same hardware, same data budget.
func Fig9aTrainingTime(opt Options) (*Report, error) {
	r := &Report{
		ID:     "fig9a",
		Title:  "Training time vs scale (same data budget)",
		Header: []string{"scale", "sate", "teal", "harp"},
	}
	nSamples, epochs := 2, 5
	if opt.Full {
		nSamples, epochs = 6, 15
	}
	scs := scales(opt)
	if opt.Full {
		scs = scs[:2] // learned-baseline training above 396 sats is days on 1 core
	}
	for _, sc := range scs {
		s := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+41)

		_, sateTime, err := trainSaTE(s, nSamples, epochs, opt.Seed)
		if err != nil {
			return nil, err
		}

		// Teal: trained per topology on the same sample count.
		tealCell := "OOM"
		p0, _, _, err := s.ProblemAt(ciTrainStart)
		if err != nil {
			return nil, err
		}
		if teal := tealFor(s, p0, 512<<20); teal != nil {
			ref, err := labelSolver().Solve(p0)
			if err != nil {
				return nil, err
			}
			opt2 := autodiff.NewAdam(3e-3, teal.Params()...)
			start := time.Now()
			for e := 0; e < epochs*nSamples; e++ {
				if _, err := teal.TrainStep(p0, ref, opt2); err != nil {
					return nil, err
				}
			}
			tealCell = ms(time.Since(start))
		}

		// HARP: self-supervised MLU training on the same problems.
		harp := baselines.NewHarp(16, opt.Seed)
		hOpt := autodiff.NewAdam(3e-3, harp.Params()...)
		hOpt.ClipNorm = 5
		start := time.Now()
		for e := 0; e < epochs; e++ {
			for i := 0; i < nSamples; i++ {
				p, _, _, err := s.ProblemAt(ciTrainStart + float64(i)*97)
				if err != nil {
					return nil, err
				}
				if len(p.Flows) == 0 {
					continue
				}
				if _, err := harp.TrainStep(p, hOpt); err != nil {
					return nil, err
				}
			}
		}
		harpTime := time.Since(start)

		r.AddRow(sc.name, ms(sateTime), tealCell, ms(harpTime))
	}
	r.Note("paper: SaTE 0.268 h at 66 sats (1.06x vs Teal), 2.25 h at 396 (2.8x), 5.1 h at Starlink (1.7x vs HARP)")
	r.Note("reproduced shape: SaTE grows slowest; Teal cost explodes with scale and is per-topology")
	return r, nil
}

// Fig9bTopologyPruning reproduces Fig. 9 (b): satisfied demand of models
// trained on DPP-selected representative topology sets of growing size,
// evaluated on unseen topologies and traffic. Performance should rise and
// saturate well below the full pool size.
func Fig9bTopologyPruning(opt Options) (*Report, error) {
	sc := scales(opt)[0]
	s := newScenario(sc, topology.CrossShellLasers, 0, opt.Seed+51)

	// Pool of candidate training instants; embed their topologies.
	poolSize := 24
	sizes := []int{1, 2, 4, 8}
	epochs := 10
	if opt.Full {
		poolSize = 120
		sizes = []int{4, 16, 64}
		epochs = 20
	}
	type instant struct {
		t    float64
		snap *topology.Snapshot
	}
	var pool []instant
	var vecs [][]float64
	for i := 0; i < poolSize; i++ {
		t := ciTrainStart + float64(i)*41
		snap := s.SnapshotAt(t)
		pool = append(pool, instant{t: t, snap: snap})
		vecs = append(vecs, graphembed.Embed(snap, 64, 3))
	}

	// Shared held-out evaluation on later, unseen instants.
	evalModel := func(m *core.Model) (float64, error) {
		return evalSatisfied(s, m, 4, ciTrainStart+float64(poolSize)*41+100)
	}

	r := &Report{
		ID:     "fig9b",
		Title:  "Satisfied demand vs #representative topologies (DPP pruning)",
		Header: []string{"#topologies", "satisfied (unseen)"},
	}
	solver := labelSolver()
	for _, k := range sizes {
		sel := graphembed.DPPSelect(vecs, k)
		var samples []*core.Sample
		for _, idx := range sel {
			p, _, _, err := s.ProblemAt(pool[idx].t)
			if err != nil {
				return nil, err
			}
			if len(p.Flows) == 0 {
				continue
			}
			ref, err := solver.Solve(p)
			if err != nil {
				return nil, err
			}
			samples = append(samples, core.NewSample(p, ref))
		}
		if len(samples) == 0 {
			continue
		}
		cfg := core.DefaultConfig()
		cfg.Seed = opt.Seed
		m := core.NewModel(cfg)
		tc := core.DefaultTrainConfig()
		tc.Epochs = epochs
		if _, err := core.Train(m, samples, tc); err != nil {
			return nil, err
		}
		sat, err := evalModel(m)
		if err != nil {
			return nil, err
		}
		r.AddRow(fmt.Sprintf("%d", k), pct(sat))
	}
	// Reference: the offline optimum on the same held-out instants.
	refSat, err := evalSatisfied(s, labelSolver(), 4, ciTrainStart+float64(poolSize)*41+100)
	if err == nil {
		r.AddRow("optimal (ref)", pct(refSat))
	}
	r.Note("paper: strong by 128 topologies; 512 reaches >99%% of a model trained on 8000 random topologies")
	return r, nil
}
