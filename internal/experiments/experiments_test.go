package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig4a", "fig4b", "fig4c", "tab1",
		"fig8a", "fig8b", "fig9a", "fig9b",
		"fig10ab", "fig10c", "fig10d",
		"fig13", "fig14", "fig15a", "fig15b", "fig16",
		"abl-graph", "abl-prune", "abl-dpp", "abl-attn", "abl-mwu", "abl-loss",
		"fig12", "appc-paths", "disc-finetune",
		"pktlat",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "t", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.Note("hello %d", 5)
	s := r.String()
	for _, want := range []string{"== x — t ==", "a", "bb", "hello 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q in:\n%s", want, s)
		}
	}
}

// runExperiment runs a driver at CI scale and sanity-checks the report.
func runExperiment(t *testing.T, id string) *Report {
	t.Helper()
	d, ok := Registry[id]
	if !ok {
		t.Fatalf("experiment %q missing", id)
	}
	r, err := d(Options{Seed: 1})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if r.ID != id {
		t.Errorf("%s: report ID %q", id, r.ID)
	}
	if len(r.Rows) == 0 {
		t.Errorf("%s: empty report", id)
	}
	t.Logf("\n%s", r)
	return r
}

func TestFig4a(t *testing.T)   { runExperiment(t, "fig4a") }
func TestFig4b(t *testing.T)   { runExperiment(t, "fig4b") }
func TestFig4c(t *testing.T)   { runExperiment(t, "fig4c") }
func TestTable1(t *testing.T)  { runExperiment(t, "tab1") }
func TestFig8a(t *testing.T)   { runExperiment(t, "fig8a") }
func TestFig8b(t *testing.T)   { runExperiment(t, "fig8b") }
func TestFig9a(t *testing.T)   { runExperiment(t, "fig9a") }
func TestFig9b(t *testing.T)   { runExperiment(t, "fig9b") }
func TestFig10ab(t *testing.T) { runExperiment(t, "fig10ab") }
func TestFig10c(t *testing.T)  { runExperiment(t, "fig10c") }
func TestFig10d(t *testing.T)  { runExperiment(t, "fig10d") }
func TestFig13(t *testing.T)   { runExperiment(t, "fig13") }
func TestFig14(t *testing.T)   { runExperiment(t, "fig14") }
func TestFig15a(t *testing.T)  { runExperiment(t, "fig15a") }
func TestFig15b(t *testing.T)  { runExperiment(t, "fig15b") }
func TestFig16(t *testing.T)   { runExperiment(t, "fig16") }

func TestAblGraph(t *testing.T) { runExperiment(t, "abl-graph") }
func TestAblPrune(t *testing.T) { runExperiment(t, "abl-prune") }
func TestAblDPP(t *testing.T)   { runExperiment(t, "abl-dpp") }
func TestAblAttn(t *testing.T)  { runExperiment(t, "abl-attn") }
func TestAblMWU(t *testing.T)   { runExperiment(t, "abl-mwu") }

func TestFig12(t *testing.T)        { runExperiment(t, "fig12") }
func TestAppCPaths(t *testing.T)    { runExperiment(t, "appc-paths") }
func TestDiscFineTune(t *testing.T) { runExperiment(t, "disc-finetune") }

func TestAblLoss(t *testing.T) { runExperiment(t, "abl-loss") }

func TestPktLat(t *testing.T) { runExperiment(t, "pktlat") }
