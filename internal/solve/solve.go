// Package solve defines the unified solver-call surface: every TE solver in
// the repo — the SaTE model, the LP references, the heuristics and the
// learned baselines — exposes the same entry point,
//
//	Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error)
//
// where the variadic options select the objective (throughput vs. MLU),
// inject an observability registry, or override the worker budget for the
// call. Call sites that pass no options are unchanged from the pre-redesign
// signatures, so the old `Solve(p)` spelling still compiles everywhere.
//
// Solvers apply the options with two lines:
//
//	o := solve.Build(opts...)
//	defer solve.Begin(o, s.Name()).End()
//
// Begin/End record the per-solve latency histogram keyed by solver name
// (sate_solve_seconds{solver=...}) and scope any worker override to the
// call. Both are no-ops when the corresponding option is absent, and neither
// allocates when the options slice is pre-built — the instrumented solve
// hot paths stay at 0 allocs/op (TestSolveObsAddsZeroAllocs).
package solve

import (
	"sate/internal/obs"
	"sate/internal/par"
)

// Objective selects what a solver optimises.
type Objective uint8

const (
	// Throughput maximises satisfied demand (the paper's main objective).
	Throughput Objective = iota
	// MLU minimises maximum link utilisation (Appendix H.2). Solvers that
	// have no MLU mode ignore the objective and solve for throughput.
	MLU
)

// String returns the objective's metric-label spelling.
func (o Objective) String() string {
	if o == MLU {
		return "mlu"
	}
	return "throughput"
}

// Dtype selects the floating-point element type a solver computes in.
type Dtype uint8

const (
	// Float64 is the default: full-precision inference, bitwise identical to
	// the pre-dtype solvers.
	Float64 Dtype = iota
	// Float32 requests the half-memory-traffic inference path. Solvers
	// without a float32 implementation (all baselines, and SaTE's MLU head)
	// ignore the request and compute in float64.
	Float32
)

// String returns the dtype's metric-label spelling.
func (d Dtype) String() string {
	if d == Float32 {
		return "float32"
	}
	return "float64"
}

// Options is the resolved option set a solver sees. The zero value means:
// throughput objective, no instrumentation, default worker budget.
type Options struct {
	// Objective selects throughput (default) or MLU.
	Objective Objective
	// Registry receives per-solve latency histograms and phase spans; nil
	// disables instrumentation (every obs handle degrades to a no-op).
	Registry *obs.Registry
	// Workers overrides the par worker budget for the duration of the call;
	// 0 keeps the process-wide setting. The override is process-global while
	// active (par's budget is), so concurrent solves with different
	// overrides race on it — use per-call overrides from one driver loop.
	Workers int
	// Dtype selects the element type of the solver's numeric kernels.
	// Solvers without a narrower implementation ignore it (see Dtype).
	Dtype Dtype
	// Warm carries solver-specific cross-call state for temporal-coherence
	// reuse (e.g. core.CycleState for SaTE: reused graph storage and cached
	// R1 embeddings). The concrete type is owned by the solver; a solver
	// that does not recognise the value ignores it. The state is mutated by
	// the solve, so callers must not share one value across concurrent
	// solves.
	Warm any
	// Shards asks a decomposition-capable solver to split the problem into
	// this many region subproblems for the call (the shard package's solver;
	// see shard.Solver). Like Dtype, solvers without a sharded implementation
	// ignore the request; 0 keeps the solver's configured default and 1 is an
	// explicit monolithic solve.
	Shards int
}

// Option mutates Options. Options values are cheap closures built once at
// the call site; hot loops build the []Option slice outside the loop and
// pass it with `opts...` so no per-call allocation occurs.
type Option func(*Options)

// WithObjective selects the optimisation objective.
func WithObjective(obj Objective) Option { return func(o *Options) { o.Objective = obj } }

// WithRegistry attaches an observability registry to the call.
func WithRegistry(r *obs.Registry) Option { return func(o *Options) { o.Registry = r } }

// WithWorkers overrides the worker budget for the call (n <= 0 keeps the
// current budget).
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithDtype selects the floating-point element type for the call.
func WithDtype(d Dtype) Option { return func(o *Options) { o.Dtype = d } }

// WithWarm attaches solver-specific warm-start state to the call; pass the
// same value on every cycle of a replay loop to let the solver reuse work
// across topologically-coherent problems.
func WithWarm(w any) Option { return func(o *Options) { o.Warm = w } }

// WithShards overrides the shard count for a decomposition-capable solver
// (k <= 0 keeps the solver's default; solvers without a sharded
// implementation ignore it).
func WithShards(k int) Option { return func(o *Options) { o.Shards = k } }

// Build folds a variadic option list into an Options value.
func Build(opts ...Option) Options {
	var o Options
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// solveSeconds is the per-solve latency histogram family, keyed by solver
// name (DESIGN.md §9).
const solveSeconds = "sate_solve_seconds"

// SolveHistogram resolves the per-solver latency histogram on a registry —
// exposed for tests and dashboards that assert on recorded counts.
func SolveHistogram(r *obs.Registry, solver string) *obs.Histogram {
	return r.HistogramVec(solveSeconds, "solver", obs.DefLatencyBuckets).With(solver)
}

// Active is an in-flight instrumented solve; see Begin.
type Active struct {
	sp      obs.Span
	restore func()
}

// Begin starts the per-solve instrumentation for a solver name: it applies
// the worker override (if any) and opens the latency span. The returned
// Active must be End()ed; the idiomatic form is
//
//	defer solve.Begin(o, s.Name()).End()
//
// With no registry and no worker override both Begin and End are no-ops,
// and with a registry they perform no heap allocation (Active and the span
// are stack values; the histogram lookup is a map read).
func Begin(o Options, solver string) Active {
	var a Active
	if o.Workers > 0 {
		a.restore = par.SetWorkers(o.Workers)
	}
	if o.Registry != nil {
		a.sp = obs.StartTimer(SolveHistogram(o.Registry, solver))
	}
	return a
}

// End records the solve latency and restores any worker override.
func (a Active) End() {
	a.sp.End()
	if a.restore != nil {
		a.restore()
	}
}
