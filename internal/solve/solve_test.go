package solve

import (
	"testing"

	"sate/internal/obs"
	"sate/internal/par"
)

func TestBuildFoldsOptions(t *testing.T) {
	reg := obs.NewRegistry()
	o := Build(WithObjective(MLU), WithRegistry(reg), WithWorkers(3), nil)
	if o.Objective != MLU || o.Registry != reg || o.Workers != 3 {
		t.Fatalf("Build = %+v", o)
	}
	zero := Build()
	if zero.Objective != Throughput || zero.Registry != nil || zero.Workers != 0 {
		t.Fatalf("zero Build = %+v", zero)
	}
}

func TestObjectiveString(t *testing.T) {
	if Throughput.String() != "throughput" || MLU.String() != "mlu" {
		t.Fatalf("objective strings: %q %q", Throughput.String(), MLU.String())
	}
}

func TestBeginRecordsLatency(t *testing.T) {
	reg := obs.NewRegistry()
	Begin(Build(WithRegistry(reg)), "test-solver").End()
	h := SolveHistogram(reg, "test-solver")
	if got := h.Count(); got != 1 {
		t.Fatalf("solve histogram count = %d, want 1", got)
	}
}

func TestBeginScopesWorkerOverride(t *testing.T) {
	restore := par.SetWorkers(2)
	defer restore()
	a := Begin(Build(WithWorkers(5)), "x")
	if got := par.Workers(); got != 5 {
		t.Fatalf("workers during solve = %d, want 5", got)
	}
	a.End()
	if got := par.Workers(); got != 2 {
		t.Fatalf("workers after solve = %d, want 2", got)
	}
}

func TestBeginNoRegistryIsNoOp(t *testing.T) {
	// Must not panic and must not record anywhere.
	Begin(Build(), "x").End()
}
