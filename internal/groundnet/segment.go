package groundnet

import (
	"math/rand"

	"sate/internal/constellation"
	"sate/internal/orbit"
)

// Segment is the instantiated ground segment of a scenario: user clusters,
// Internet gateways, and ground relays, all placed from the same
// population-driven distribution (Appendix G). Users are represented as
// weighted clusters (one per occupied grid cell) rather than 3 million
// individual points; the per-cluster Users weight preserves the aggregate
// demand statistics while keeping the simulation tractable.
type Segment struct {
	UserClusters []UserCluster
	Gateways     []Site
	Relays       []Site
}

// UserCluster is a group of users sharing a grid cell.
type UserCluster struct {
	Site
	Users int // number of users represented by this cluster
}

// Config controls ground-segment generation.
type Config struct {
	Users        int     // total user count to distribute (paper: 3,000,000)
	UserClusters int     // number of user cluster sites (resolution of the user field)
	Gateways     int     // paper: 1000
	Relays       int     // paper: 222 real-world relay locations
	Gamma        float64 // smoothing factor of Eq. 8
	Seed         int64
}

// DefaultConfig returns the paper's scenario parameters with a cluster
// resolution suitable for simulation.
func DefaultConfig() Config {
	return Config{
		Users:        3_000_000,
		UserClusters: 2000,
		Gateways:     1000,
		Relays:       222,
		Gamma:        0.05,
		Seed:         1,
	}
}

// Build places the ground segment on the given population grid.
func Build(grid *PopulationGrid, cfg Config) *Segment {
	rng := rand.New(rand.NewSource(cfg.Seed))
	probs := grid.Probabilities(cfg.Gamma)
	seg := &Segment{}

	clusterSites := PlaceSites(cfg.UserClusters, probs, rng)
	// Users are multinomially distributed over the clusters in proportion to
	// the cluster cells' probabilities. A proportional allocation with
	// remainder rounding keeps it deterministic and exact in total.
	var wsum float64
	weights := make([]float64, len(clusterSites))
	for i, s := range clusterSites {
		weights[i] = probs[s.Cell]
		wsum += weights[i]
	}
	assigned := 0
	seg.UserClusters = make([]UserCluster, len(clusterSites))
	for i, s := range clusterSites {
		n := int(float64(cfg.Users) * weights[i] / wsum)
		seg.UserClusters[i] = UserCluster{Site: s, Users: n}
		assigned += n
	}
	for i := 0; assigned < cfg.Users; i++ { // distribute rounding remainder
		seg.UserClusters[i%len(seg.UserClusters)].Users++
		assigned++
	}

	seg.Gateways = PlaceSites(cfg.Gateways, probs, rng)
	// Relays are infrastructure: placed on populated land (no smoothing), as
	// the paper's 222 real-world locations are.
	seg.Relays = PlaceSites(cfg.Relays, grid.Probabilities(0), rng)
	return seg
}

// TotalUsers returns the number of users across all clusters.
func (s *Segment) TotalUsers() int {
	n := 0
	for _, c := range s.UserClusters {
		n += c.Users
	}
	return n
}

// SatLocator answers nearest-visible-satellite queries using a latitude/
// longitude bucket index over satellite sub-points. Rebuild it (via Update)
// whenever satellite positions move.
type SatLocator struct {
	cons    *constellation.Constellation
	pos     []orbit.Vec3
	buckets [][]constellation.SatID // 10-degree cells: 18 x 36
}

const (
	locRows = 18
	locCols = 36
)

// NewSatLocator creates a locator; call Update before querying.
func NewSatLocator(c *constellation.Constellation) *SatLocator {
	return &SatLocator{
		cons:    c,
		buckets: make([][]constellation.SatID, locRows*locCols),
	}
}

func locBucket(latDeg, lonDeg float64) int {
	r := int((latDeg + 90) / 10)
	c := int((lonDeg + 180) / 10)
	if r < 0 {
		r = 0
	} else if r >= locRows {
		r = locRows - 1
	}
	if c < 0 {
		c = 0
	} else if c >= locCols {
		c = locCols - 1
	}
	return r*locCols + c
}

// Update reindexes the locator with satellite positions at time t.
// The positions slice is retained (not copied).
func (l *SatLocator) Update(pos []orbit.Vec3) {
	l.pos = pos
	for i := range l.buckets {
		l.buckets[i] = l.buckets[i][:0]
	}
	for id, p := range pos {
		lat, lon, _ := orbit.ECEFToGeodetic(p)
		b := locBucket(orbit.Rad2Deg(lat), orbit.Rad2Deg(lon))
		l.buckets[b] = append(l.buckets[b], constellation.SatID(id))
	}
}

// NearestVisible returns the satellite with the highest elevation above
// minElevRad as seen from the site, or (-1, false) if none is visible. The
// search scans the site's bucket ring outward; LEO shells guarantee a hit
// within the first ring or two at mid latitudes.
func (l *SatLocator) NearestVisible(site Site, minElevRad float64) (constellation.SatID, bool) {
	sp := site.ECEF()
	best := constellation.SatID(-1)
	bestElev := minElevRad
	found := false
	r0 := int((site.LatDeg + 90) / 10)
	c0 := int((site.LonDeg + 180) / 10)
	for ring := 0; ring <= 3; ring++ {
		for dr := -ring; dr <= ring; dr++ {
			for dc := -ring; dc <= ring; dc++ {
				if max(abs(dr), abs(dc)) != ring {
					continue // only the ring perimeter; inner cells already done
				}
				r := r0 + dr
				if r < 0 || r >= locRows {
					continue
				}
				c := ((c0+dc)%locCols + locCols) % locCols
				for _, id := range l.buckets[r*locCols+c] {
					e := orbit.ElevationAngle(sp, l.pos[id])
					if e >= bestElev {
						best, bestElev, found = id, e, true
					}
				}
			}
		}
		if found {
			return best, true
		}
	}
	return -1, false
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
