// Package groundnet models the ground segment of a satellite network: a
// global population-density grid, the placement of users, Internet gateways
// and ground relays according to that density (Appendix G, Eq. 8), and the
// mapping from ground sites to serving satellites.
//
// The paper uses the GPWv4 population raster; that dataset is not available
// offline, so the grid here is a deterministic synthetic density field with
// the same statistical character: continent-scale clusters, heavy-tailed city
// hotspots, and empty oceans/deserts (see DESIGN.md substitution table). The
// smoothing factor gamma of Eq. 8 is implemented verbatim.
package groundnet

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"sate/internal/orbit"
)

// GridRows and GridCols define the paper's 360 x 180 one-degree grid.
const (
	GridRows = 180 // latitude bands, from -90 to +90
	GridCols = 360 // longitude bands, from -180 to +180
)

// PopulationGrid is a density field over the one-degree grid. Density values
// are relative weights (people per cell, arbitrary unit).
type PopulationGrid struct {
	Density []float64 // row-major, len GridRows*GridCols
}

// CellIndex returns the flat index of the cell containing (lat, lon) degrees.
func CellIndex(latDeg, lonDeg float64) int {
	r := int(math.Floor(latDeg + 90))
	c := int(math.Floor(lonDeg + 180))
	if r < 0 {
		r = 0
	} else if r >= GridRows {
		r = GridRows - 1
	}
	if c < 0 {
		c = 0
	} else if c >= GridCols {
		c = GridCols - 1
	}
	return r*GridCols + c
}

// CellCenter returns the latitude and longitude (degrees) of a cell's centre.
func CellCenter(idx int) (latDeg, lonDeg float64) {
	r := idx / GridCols
	c := idx % GridCols
	return float64(r) - 90 + 0.5, float64(c) - 180 + 0.5
}

// continentCluster is one component of the synthetic density mixture.
type continentCluster struct {
	lat, lon   float64 // centre, degrees
	sLat, sLon float64 // spread, degrees
	weight     float64
}

// Rough centroids of the major populated landmasses. The exact values are
// unimportant; what matters is that density is spatially clustered, that a
// large fraction of the Earth (oceans, poles) is near-zero, and that the
// distribution is heavy-tailed — the properties SaTE's traffic pruning
// exploits.
var continents = []continentCluster{
	{lat: 30, lon: 105, sLat: 14, sLon: 22, weight: 3.2},  // East Asia
	{lat: 22, lon: 79, sLat: 10, sLon: 13, weight: 3.0},   // South Asia
	{lat: 50, lon: 12, sLat: 9, sLon: 16, weight: 1.5},    // Europe
	{lat: 39, lon: -95, sLat: 10, sLon: 18, weight: 1.3},  // North America
	{lat: -12, lon: -55, sLat: 12, sLon: 12, weight: 0.9}, // South America
	{lat: 8, lon: 10, sLat: 12, sLon: 14, weight: 1.1},    // West/Central Africa
	{lat: 31, lon: 32, sLat: 8, sLon: 12, weight: 0.6},    // Middle East / N. Africa
	{lat: -2, lon: 112, sLat: 8, sLon: 14, weight: 1.0},   // Maritime SE Asia
	{lat: -30, lon: 140, sLat: 8, sLon: 14, weight: 0.25}, // Australia
	{lat: 56, lon: 60, sLat: 7, sLon: 28, weight: 0.4},    // Russia belt
}

// SyntheticPopulation builds the deterministic synthetic density grid:
// a mixture of continent clusters plus seeded city hotspots.
func SyntheticPopulation(seed int64) *PopulationGrid {
	g := &PopulationGrid{Density: make([]float64, GridRows*GridCols)}
	for idx := range g.Density {
		lat, lon := CellCenter(idx)
		var d float64
		for _, cc := range continents {
			dl := (lat - cc.lat) / cc.sLat
			dn := angleDiffDeg(lon, cc.lon) / cc.sLon
			d += cc.weight * math.Exp(-(dl*dl+dn*dn)/2)
		}
		// Cells at extreme latitudes have almost nobody.
		if math.Abs(lat) > 65 {
			d *= 0.02
		}
		g.Density[idx] = d
	}
	// Heavy-tailed city hotspots: a few hundred point masses placed by the
	// smooth field itself, with Zipf-like weights.
	rng := rand.New(rand.NewSource(seed))
	cum := cumulative(g.Density)
	for i := 0; i < 400; i++ {
		idx := sampleCumulative(cum, rng.Float64())
		g.Density[idx] += (2.0 / float64(i+1)) * 40
	}
	return g
}

func angleDiffDeg(a, b float64) float64 {
	d := math.Mod(a-b+540, 360) - 180
	return d
}

// Probabilities returns the per-cell placement probabilities of Eq. 8:
// p_a = (density_a + gamma) / sum(density + gamma). The smoothing factor
// gamma lifts sparsely populated cells so that remote areas retain some user
// representation.
func (g *PopulationGrid) Probabilities(gamma float64) []float64 {
	p := make([]float64, len(g.Density))
	var sum float64
	for i, d := range g.Density {
		p[i] = d + gamma
		sum += p[i]
	}
	if sum > 0 {
		for i := range p {
			p[i] /= sum
		}
	}
	return p
}

// TotalDensity returns the sum of all cell densities.
func (g *PopulationGrid) TotalDensity() float64 {
	var s float64
	for _, d := range g.Density {
		s += d
	}
	return s
}

func cumulative(w []float64) []float64 {
	c := make([]float64, len(w))
	var s float64
	for i, v := range w {
		s += v
		c[i] = s
	}
	return c
}

// sampleCumulative draws an index from a cumulative weight array given a
// uniform sample u in [0,1).
func sampleCumulative(cum []float64, u float64) int {
	total := cum[len(cum)-1]
	target := u * total
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Site is a ground location (user cluster, gateway, or relay).
type Site struct {
	LatDeg, LonDeg float64
	Cell           int // grid cell index
}

// ECEF returns the Earth-fixed position of the site at the surface.
func (s Site) ECEF() orbit.Vec3 {
	return orbit.GeodeticToECEF(orbit.Deg(s.LatDeg), orbit.Deg(s.LonDeg), 0)
}

// PlaceSites draws n sites from the given per-cell probability distribution,
// jittering each site uniformly within its one-degree cell. Deterministic for
// a given rng state.
func PlaceSites(n int, probs []float64, rng *rand.Rand) []Site {
	cum := cumulative(probs)
	sites := make([]Site, n)
	for i := range sites {
		idx := sampleCumulative(cum, rng.Float64())
		lat, lon := CellCenter(idx)
		sites[i] = Site{
			LatDeg: lat - 0.5 + rng.Float64(),
			LonDeg: lon - 0.5 + rng.Float64(),
			Cell:   idx,
		}
	}
	return sites
}

// LoadPopulationCSV reads a density grid from CSV with rows
// "lat_deg,lon_deg,density" (header optional). Cells not mentioned stay at
// zero. This is the bridge to real rasters such as GPWv4 (the paper's
// source): export the raster to CSV at one-degree resolution and feed it
// here instead of SyntheticPopulation.
func LoadPopulationCSV(r io.Reader) (*PopulationGrid, error) {
	g := &PopulationGrid{Density: make([]float64, GridRows*GridCols)}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("groundnet: population CSV line %d: %w", line+1, err)
		}
		line++
		lat, err1 := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64)
		if err1 != nil && line == 1 {
			continue // header row ("lat_deg,lon_deg,density")
		}
		lon, err2 := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		den, err3 := strconv.ParseFloat(strings.TrimSpace(rec[2]), 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("groundnet: population CSV line %d: non-numeric fields %v", line, rec)
		}
		if lat < -90 || lat > 90 || lon < -180 || lon > 180 {
			return nil, fmt.Errorf("groundnet: population CSV line %d: coordinates out of range", line)
		}
		if den < 0 {
			return nil, fmt.Errorf("groundnet: population CSV line %d: negative density", line)
		}
		g.Density[CellIndex(lat, lon)] += den
	}
	if g.TotalDensity() == 0 {
		return nil, fmt.Errorf("groundnet: population CSV contains no density")
	}
	return g, nil
}

// WritePopulationCSV exports the grid in the format LoadPopulationCSV reads
// (non-zero cells only).
func (g *PopulationGrid) WritePopulationCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"lat_deg", "lon_deg", "density"}); err != nil {
		return err
	}
	for idx, d := range g.Density {
		if d == 0 {
			continue
		}
		lat, lon := CellCenter(idx)
		if err := cw.Write([]string{
			strconv.FormatFloat(lat, 'g', -1, 64),
			strconv.FormatFloat(lon, 'g', -1, 64),
			strconv.FormatFloat(d, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
