package groundnet

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"sate/internal/constellation"
	"sate/internal/orbit"
)

func TestCellIndexRoundTrip(t *testing.T) {
	f := func(latSeed, lonSeed float64) bool {
		lat := math.Mod(latSeed, 89.9)
		lon := math.Mod(lonSeed, 179.9)
		idx := CellIndex(lat, lon)
		cLat, cLon := CellCenter(idx)
		return math.Abs(cLat-lat) <= 0.5+1e-9 && math.Abs(cLon-lon) <= 0.5+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCellIndexClamps(t *testing.T) {
	if CellIndex(95, 0) != CellIndex(89.9, 0) {
		t.Error("latitude above 90 should clamp to top row")
	}
	if CellIndex(0, 185) != CellIndex(0, 179.9) {
		t.Error("longitude above 180 should clamp to last column")
	}
}

func TestSyntheticPopulationShape(t *testing.T) {
	g := SyntheticPopulation(1)
	if len(g.Density) != GridRows*GridCols {
		t.Fatalf("density len %d", len(g.Density))
	}
	// Density must be spatially concentrated: the top 10% of cells should
	// hold well over half of the mass (heavy-tailed distribution that the
	// paper's traffic pruning exploits).
	total := g.TotalDensity()
	if total <= 0 {
		t.Fatal("empty population")
	}
	sorted := append([]float64(nil), g.Density...)
	// simple selection of top decile mass
	sortFloats(sorted)
	var top float64
	for i := len(sorted) - len(sorted)/10; i < len(sorted); i++ {
		top += sorted[i]
	}
	if top/total < 0.5 {
		t.Errorf("top decile holds only %.2f of mass; want clustered density", top/total)
	}
	// Mid-Pacific must be near-empty.
	pacific := g.Density[CellIndex(0, -140)]
	asia := g.Density[CellIndex(30, 105)]
	if pacific > asia/100 {
		t.Errorf("pacific %v vs asia %v: oceans should be near-empty", pacific, asia)
	}
}

func sortFloats(x []float64) { sort.Float64s(x) }

func TestProbabilitiesNormalized(t *testing.T) {
	g := SyntheticPopulation(1)
	for _, gamma := range []float64{0, 0.05, 1} {
		p := g.Probabilities(gamma)
		var s float64
		for _, v := range p {
			if v < 0 {
				t.Fatal("negative probability")
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("gamma=%v: sum=%v", gamma, s)
		}
	}
}

func TestGammaLiftsRemoteCells(t *testing.T) {
	g := SyntheticPopulation(1)
	p0 := g.Probabilities(0)
	p1 := g.Probabilities(0.5)
	pacific := CellIndex(0, -140)
	if p1[pacific] <= p0[pacific] {
		t.Error("smoothing should raise remote-cell probability")
	}
}

func TestSampleCumulative(t *testing.T) {
	cum := cumulative([]float64{1, 0, 3})
	if got := sampleCumulative(cum, 0.0); got != 0 {
		t.Errorf("u=0 -> %d", got)
	}
	if got := sampleCumulative(cum, 0.3); got != 2 {
		t.Errorf("u=0.3 -> %d (weight 0 cell must not be selected)", got)
	}
	if got := sampleCumulative(cum, 0.999); got != 2 {
		t.Errorf("u=0.999 -> %d", got)
	}
}

func TestPlaceSitesDeterministic(t *testing.T) {
	g := SyntheticPopulation(1)
	p := g.Probabilities(0.05)
	a := PlaceSites(50, p, rand.New(rand.NewSource(7)))
	b := PlaceSites(50, p, rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("placement must be deterministic for equal seeds")
		}
	}
	for _, s := range a {
		if s.LatDeg < -90 || s.LatDeg > 90 || s.LonDeg < -180 || s.LonDeg > 180 {
			t.Fatalf("site out of range: %+v", s)
		}
	}
}

func TestBuildSegment(t *testing.T) {
	g := SyntheticPopulation(1)
	cfg := Config{Users: 10000, UserClusters: 100, Gateways: 20, Relays: 10, Gamma: 0.05, Seed: 3}
	seg := Build(g, cfg)
	if got := seg.TotalUsers(); got != cfg.Users {
		t.Errorf("users = %d want %d", got, cfg.Users)
	}
	if len(seg.Gateways) != 20 || len(seg.Relays) != 10 {
		t.Errorf("gateways/relays = %d/%d", len(seg.Gateways), len(seg.Relays))
	}
	if len(seg.UserClusters) != 100 {
		t.Errorf("clusters = %d", len(seg.UserClusters))
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Users != 3_000_000 {
		t.Errorf("users = %d, want 3M (Sec. 4)", cfg.Users)
	}
	if cfg.Gateways != 1000 {
		t.Errorf("gateways = %d, want 1000", cfg.Gateways)
	}
	if cfg.Relays != 222 {
		t.Errorf("relays = %d, want 222 (Sec. 2.3.1)", cfg.Relays)
	}
}

func TestSatLocatorFindsOverheadSat(t *testing.T) {
	c := constellation.StarlinkPhase1()
	pos := c.PositionsECEF(0, nil)
	loc := NewSatLocator(c)
	loc.Update(pos)

	// Pick the sub-point of a known satellite; the locator must find a
	// satellite at high elevation there.
	lat, lon, _ := orbit.ECEFToGeodetic(pos[100])
	site := Site{LatDeg: orbit.Rad2Deg(lat), LonDeg: orbit.Rad2Deg(lon)}
	id, ok := loc.NearestVisible(site, orbit.Deg(25))
	if !ok {
		t.Fatal("no satellite visible directly under a satellite")
	}
	e := orbit.ElevationAngle(site.ECEF(), pos[id])
	if e < orbit.Deg(60) {
		t.Errorf("best elevation only %v deg", orbit.Rad2Deg(e))
	}
}

func TestSatLocatorRespectsMinElevation(t *testing.T) {
	// A single-satellite "constellation" far from the site: nothing visible.
	c := constellation.SingleShell(1, 1)
	pos := c.PositionsECEF(0, nil)
	loc := NewSatLocator(c)
	loc.Update(pos)
	lat, lon, _ := orbit.ECEFToGeodetic(pos[0])
	anti := Site{LatDeg: -orbit.Rad2Deg(lat), LonDeg: orbit.Rad2Deg(lon) + 180}
	if anti.LonDeg > 180 {
		anti.LonDeg -= 360
	}
	if _, ok := loc.NearestVisible(anti, orbit.Deg(25)); ok {
		t.Error("satellite on the far side of Earth must not be visible")
	}
}

func TestStarlinkCoverageMidLatitudes(t *testing.T) {
	// With 4236 satellites every mid-latitude site should see a satellite at
	// >= 25 degrees elevation.
	c := constellation.StarlinkPhase1()
	pos := c.PositionsECEF(500, nil)
	loc := NewSatLocator(c)
	loc.Update(pos)
	misses := 0
	for lat := -50.0; lat <= 50; lat += 10 {
		for lon := -170.0; lon <= 170; lon += 20 {
			if _, ok := loc.NearestVisible(Site{LatDeg: lat, LonDeg: lon}, orbit.Deg(25)); !ok {
				misses++
			}
		}
	}
	if misses > 0 {
		t.Errorf("%d mid-latitude sites without coverage", misses)
	}
}

func TestPopulationCSVRoundTrip(t *testing.T) {
	g := SyntheticPopulation(1)
	var buf strings.Builder
	if err := g.WritePopulationCSV(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadPopulationCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.TotalDensity()-g2.TotalDensity()) > 1e-6 {
		t.Errorf("total density %v vs %v", g.TotalDensity(), g2.TotalDensity())
	}
	for i := range g.Density {
		if math.Abs(g.Density[i]-g2.Density[i]) > 1e-9 {
			t.Fatalf("cell %d density %v vs %v", i, g.Density[i], g2.Density[i])
		}
	}
}

func TestLoadPopulationCSVValidation(t *testing.T) {
	cases := map[string]string{
		"empty":         "lat_deg,lon_deg,density\n",
		"bad latitude":  "95,0,1\n",
		"negative":      "10,10,-5\n",
		"non-numeric":   "10,10,abc\n20,20,1\n",
		"wrong columns": "10,10\n",
	}
	for name, in := range cases {
		if _, err := LoadPopulationCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Header + valid rows accepted; densities in the same cell accumulate.
	g, err := LoadPopulationCSV(strings.NewReader("lat,lon,density\n10.2,10.7,3\n10.4,10.1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Density[CellIndex(10.5, 10.5)]; got != 5 {
		t.Errorf("accumulated density = %v want 5", got)
	}
}
