package constellation

import (
	"math"
	"testing"

	"sate/internal/orbit"
)

func TestStarlinkPhase1Count(t *testing.T) {
	c := StarlinkPhase1()
	if got := c.Size(); got != 4236 {
		t.Fatalf("Starlink Phase 1 size = %d, want 4236 (Table 4)", got)
	}
	if len(c.Shells) != 4 {
		t.Fatalf("shells = %d, want 4", len(c.Shells))
	}
	wantAlt := []float64{540, 550, 560, 570}
	for i, sh := range c.Shells {
		//lint:ignore no-float-equality preset altitudes are exact configured literals
		if sh.AltitudeKm != wantAlt[i] {
			t.Errorf("shell %d altitude = %v, want %v", i, sh.AltitudeKm, wantAlt[i])
		}
	}
}

func TestIridiumCount(t *testing.T) {
	c := Iridium()
	if got := c.Size(); got != 66 {
		t.Fatalf("Iridium size = %d, want 66", got)
	}
	if c.Shells[0].InclinationDeg != 86.4 {
		t.Errorf("inclination = %v", c.Shells[0].InclinationDeg)
	}
}

func TestMidSizeCounts(t *testing.T) {
	if got := MidSize1().Size(); got != 396 {
		t.Errorf("MidSize1 = %d, want 396", got)
	}
	if got := MidSize2().Size(); got != 1584 {
		t.Errorf("MidSize2 = %d, want 1584", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bad", []Shell{{AltitudeKm: 550, Planes: 0, SatsPerPlane: 5}}); err == nil {
		t.Error("expected error for zero planes")
	}
	if _, err := New("bad", []Shell{{AltitudeKm: -1, Planes: 2, SatsPerPlane: 5}}); err == nil {
		t.Error("expected error for negative altitude")
	}
}

func TestIDGridRoundTrip(t *testing.T) {
	c := Toy(6, 8)
	for i := range c.Sats {
		s := &c.Sats[i]
		got := c.SatAt(s.Grid)
		if got.ID != s.ID {
			t.Fatalf("SatAt(%+v) = %d, want %d", s.Grid, got.ID, s.ID)
		}
	}
}

func TestShellSats(t *testing.T) {
	c := Toy(4, 5)
	s0 := c.ShellSats(0)
	s1 := c.ShellSats(1)
	if len(s0) != 20 || len(s1) != 20 {
		t.Fatalf("shell sizes %d %d", len(s0), len(s1))
	}
	for _, s := range s0 {
		if s.Grid.Shell != 0 {
			t.Fatal("shell 0 contains foreign satellite")
		}
	}
	if s1[0].ID != 20 {
		t.Fatalf("shell 1 starts at %d", s1[0].ID)
	}
}

func TestNeighborWraps(t *testing.T) {
	c := SingleShell(6, 11)
	g := GridCoord{Shell: 0, Plane: 0, Slot: 0}
	if n := c.Neighbor(g, -1, 0); n.Plane != 5 {
		t.Errorf("plane wrap: %+v", n)
	}
	if n := c.Neighbor(g, 0, -1); n.Slot != 10 {
		t.Errorf("slot wrap: %+v", n)
	}
	if n := c.Neighbor(g, 6, 11); n != g {
		t.Errorf("full wrap: %+v", n)
	}
}

func TestRAANSpacing(t *testing.T) {
	c := SingleShell(4, 3)
	// Planes spaced by 90 degrees.
	for p := 0; p < 4; p++ {
		want := orbit.Deg(90 * float64(p))
		got := c.SatAt(GridCoord{Plane: p}).Orbit.RAANRad
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("plane %d RAAN = %v, want %v", p, got, want)
		}
	}
}

func TestIridiumStarPattern(t *testing.T) {
	c := Iridium()
	// Star pattern: last plane RAAN < 180 degrees.
	last := c.SatAt(GridCoord{Plane: 5}).Orbit.RAANRad
	if last >= orbit.Deg(180) {
		t.Errorf("Iridium plane 5 RAAN = %v deg, want < 180", orbit.Rad2Deg(last))
	}
}

func TestPositionsECEFReuse(t *testing.T) {
	c := Toy(3, 4)
	buf := c.PositionsECEF(0, nil)
	if len(buf) != c.Size() {
		t.Fatalf("positions len %d", len(buf))
	}
	buf2 := c.PositionsECEF(10, buf)
	if &buf2[0] != &buf[0] {
		t.Error("buffer was not reused")
	}
	// All satellites at correct radius.
	for i, p := range buf2 {
		wantR := c.Sats[i].Orbit.SemiMajorAxisKm()
		if math.Abs(p.Norm()-wantR) > 1e-6 {
			t.Fatalf("sat %d radius %v want %v", i, p.Norm(), wantR)
		}
	}
}

func TestSatsUniqueInitialPositions(t *testing.T) {
	c := SingleShell(6, 11)
	// Use a generic time: at special instants (e.g. epoch) two satellites in
	// RAAN-symmetric planes can legitimately pass through the same orbital
	// crossing point.
	pos := c.PositionsECEF(137.0, nil)
	for i := 0; i < len(pos); i++ {
		for j := i + 1; j < len(pos); j++ {
			if pos[i].Distance(pos[j]) < 1.0 {
				t.Fatalf("sats %d and %d nearly coincide", i, j)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"starlink", "iridium", "midsize1", "midsize2"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}
