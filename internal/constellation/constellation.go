// Package constellation defines satellite constellations as sets of orbital
// shells and generates per-satellite orbits from shell parameters.
//
// A shell is a Walker-delta-style layer: P orbital planes spaced evenly in
// RAAN, S satellites per plane spaced evenly in argument of latitude, with an
// optional inter-plane phase factor. The constellations of the paper (Table 4)
// are provided as constructors: Starlink Phase 1 (4 shells, 4236 satellites),
// Iridium (66), and the two mid-size Starlink subsets (396 and 1584
// satellites) used in the scale sweeps.
package constellation

import (
	"fmt"
	"math"

	"sate/internal/orbit"
)

// Shell describes one orbital shell of a constellation.
type Shell struct {
	Name           string
	AltitudeKm     float64
	InclinationDeg float64
	Planes         int     // number of orbital planes
	SatsPerPlane   int     // satellites per plane
	PhaseFactor    float64 // inter-plane phasing F in Walker notation (0..Planes-1)
	RAANSpanDeg    float64 // total RAAN span covered by planes; 360 for delta patterns
}

// Count returns the number of satellites in the shell.
func (s Shell) Count() int { return s.Planes * s.SatsPerPlane }

// SatID identifies a satellite globally within a constellation.
type SatID int

// GridCoord locates a satellite within its shell's plane/slot grid. The paper
// labels each satellite by (orbit number, intra-orbit satellite number); the
// k-shortest-path algorithm of Appendix C operates on these coordinates.
type GridCoord struct {
	Shell int // shell index within the constellation
	Plane int // orbital plane index within the shell
	Slot  int // position within the plane
}

// Satellite is one propagable satellite.
type Satellite struct {
	ID    SatID
	Grid  GridCoord
	Orbit orbit.Orbit
}

// Constellation is a fully instantiated set of satellites organised in shells.
type Constellation struct {
	Name   string
	Shells []Shell
	Sats   []Satellite

	shellOffset []int // starting SatID of each shell
}

// New instantiates a constellation from shell descriptions. Satellite IDs are
// assigned shell by shell, plane-major within each shell, so that
// ID = shellOffset + plane*SatsPerPlane + slot.
func New(name string, shells []Shell) (*Constellation, error) {
	c := &Constellation{Name: name, Shells: shells}
	id := SatID(0)
	for si, sh := range shells {
		if sh.Planes <= 0 || sh.SatsPerPlane <= 0 {
			return nil, fmt.Errorf("constellation %s shell %d: planes and sats per plane must be positive", name, si)
		}
		if sh.AltitudeKm <= 0 {
			return nil, fmt.Errorf("constellation %s shell %d: altitude must be positive", name, si)
		}
		span := sh.RAANSpanDeg
		if span == 0 {
			span = 360
		}
		c.shellOffset = append(c.shellOffset, int(id))
		for p := 0; p < sh.Planes; p++ {
			raan := orbit.Deg(span) * float64(p) / float64(sh.Planes)
			for s := 0; s < sh.SatsPerPlane; s++ {
				u0 := 2 * math.Pi * (float64(s)/float64(sh.SatsPerPlane) +
					sh.PhaseFactor*float64(p)/float64(sh.Planes*sh.SatsPerPlane))
				c.Sats = append(c.Sats, Satellite{
					ID:   id,
					Grid: GridCoord{Shell: si, Plane: p, Slot: s},
					Orbit: orbit.Orbit{
						AltitudeKm:     sh.AltitudeKm,
						InclinationRad: orbit.Deg(sh.InclinationDeg),
						RAANRad:        raan,
						ArgLatRad:      u0,
					},
				})
				id++
			}
		}
	}
	return c, nil
}

// MustNew is New but panics on error; for the built-in, known-good presets.
func MustNew(name string, shells []Shell) *Constellation {
	c, err := New(name, shells)
	if err != nil {
		panic(err)
	}
	return c
}

// Size returns the total number of satellites.
func (c *Constellation) Size() int { return len(c.Sats) }

// ShellOf returns the shell index of a satellite.
func (c *Constellation) ShellOf(id SatID) int { return c.Sats[id].Grid.Shell }

// SatAt returns the satellite at the given grid coordinate.
func (c *Constellation) SatAt(g GridCoord) *Satellite {
	sh := c.Shells[g.Shell]
	idx := c.shellOffset[g.Shell] + g.Plane*sh.SatsPerPlane + g.Slot
	return &c.Sats[idx]
}

// ShellSats returns the satellites of one shell, in ID order.
func (c *Constellation) ShellSats(shell int) []Satellite {
	start := c.shellOffset[shell]
	end := start + c.Shells[shell].Count()
	return c.Sats[start:end]
}

// PositionsECEF computes Earth-fixed positions of all satellites at time t
// (seconds after epoch). The result is indexed by SatID. If dst is non-nil and
// has the right length it is reused to avoid allocation.
func (c *Constellation) PositionsECEF(tSec float64, dst []orbit.Vec3) []orbit.Vec3 {
	if len(dst) != len(c.Sats) {
		dst = make([]orbit.Vec3, len(c.Sats))
	}
	for i := range c.Sats {
		dst[i] = c.Sats[i].Orbit.PositionECEF(tSec)
	}
	return dst
}

// Neighbor returns the grid coordinate displaced by dPlane planes and dSlot
// slots within the same shell, with toroidal wrap-around in both dimensions.
func (c *Constellation) Neighbor(g GridCoord, dPlane, dSlot int) GridCoord {
	sh := c.Shells[g.Shell]
	p := ((g.Plane+dPlane)%sh.Planes + sh.Planes) % sh.Planes
	s := ((g.Slot+dSlot)%sh.SatsPerPlane + sh.SatsPerPlane) % sh.SatsPerPlane
	return GridCoord{Shell: g.Shell, Plane: p, Slot: s}
}
