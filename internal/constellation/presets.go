package constellation

// Presets encoding Table 4 of the paper (orbital parameters for Starlink
// Phase 1 and Iridium) and the mid-size constellations of Sec. 4 / Appendix G.

// StarlinkPhase1 returns the four completed Starlink orbital shells as of
// April 2024: 4236 satellites total (Table 4).
//
//	Shell 1: 540 km, 53.2 deg, 72 planes x 22 sats
//	Shell 2: 550 km, 53.0 deg, 72 planes x 22 sats
//	Shell 3: 560 km, 97.6 deg,  6 planes x 58 sats
//	Shell 4: 570 km, 70.0 deg, 36 planes x 20 sats
func StarlinkPhase1() *Constellation {
	return MustNew("starlink-phase1", []Shell{
		{Name: "shell1", AltitudeKm: 540, InclinationDeg: 53.2, Planes: 72, SatsPerPlane: 22, PhaseFactor: 39},
		{Name: "shell2", AltitudeKm: 550, InclinationDeg: 53.0, Planes: 72, SatsPerPlane: 22, PhaseFactor: 17},
		{Name: "shell3", AltitudeKm: 560, InclinationDeg: 97.6, Planes: 6, SatsPerPlane: 58, PhaseFactor: 1},
		{Name: "shell4", AltitudeKm: 570, InclinationDeg: 70.0, Planes: 36, SatsPerPlane: 20, PhaseFactor: 11},
	})
}

// Iridium returns the 66-satellite Iridium constellation: a single shell at
// 781 km, 86.4 deg inclination, 6 planes of 11 satellites (Table 4). Iridium
// is a Walker-star pattern: planes span ~180 degrees of RAAN.
func Iridium() *Constellation {
	return MustNew("iridium", []Shell{
		{Name: "iridium", AltitudeKm: 781, InclinationDeg: 86.4, Planes: 6, SatsPerPlane: 11, PhaseFactor: 2, RAANSpanDeg: 180},
	})
}

// MidSize1 returns the 396-satellite constellation of Sec. 4: Starlink shells
// 1 and 2 with the number of orbital planes reduced by a factor of 8
// (72/8 = 9 planes each, 22 sats per plane: 2 x 9 x 22 = 396).
func MidSize1() *Constellation {
	return MustNew("midsize-396", []Shell{
		{Name: "shell1/8", AltitudeKm: 540, InclinationDeg: 53.2, Planes: 9, SatsPerPlane: 22, PhaseFactor: 5},
		{Name: "shell2/8", AltitudeKm: 550, InclinationDeg: 53.0, Planes: 9, SatsPerPlane: 22, PhaseFactor: 2},
	})
}

// MidSize2 returns the 1584-satellite constellation of Sec. 4: Starlink shells
// 1 and 2 with the number of orbital planes reduced by a factor of 2
// (36 planes each, 22 sats per plane: 2 x 36 x 22 = 1584).
func MidSize2() *Constellation {
	return MustNew("midsize-1584", []Shell{
		{Name: "shell1/2", AltitudeKm: 540, InclinationDeg: 53.2, Planes: 36, SatsPerPlane: 22, PhaseFactor: 19},
		{Name: "shell2/2", AltitudeKm: 550, InclinationDeg: 53.0, Planes: 36, SatsPerPlane: 22, PhaseFactor: 8},
	})
}

// Toy returns a small two-shell constellation for unit tests and examples:
// deterministic, fast to propagate, and structurally similar to Starlink
// (two shells at slightly different altitudes with grid topology).
func Toy(planes, satsPerPlane int) *Constellation {
	return MustNew("toy", []Shell{
		{Name: "low", AltitudeKm: 540, InclinationDeg: 53.2, Planes: planes, SatsPerPlane: satsPerPlane, PhaseFactor: 1},
		{Name: "high", AltitudeKm: 560, InclinationDeg: 53.0, Planes: planes, SatsPerPlane: satsPerPlane, PhaseFactor: 1},
	})
}

// SingleShell returns a one-shell test constellation.
func SingleShell(planes, satsPerPlane int) *Constellation {
	return MustNew("single", []Shell{
		{Name: "only", AltitudeKm: 550, InclinationDeg: 53.0, Planes: planes, SatsPerPlane: satsPerPlane, PhaseFactor: 1},
	})
}

// ByName returns a preset constellation by its short name, for CLI tools:
// "starlink", "iridium", "midsize1", "midsize2".
func ByName(name string) (*Constellation, bool) {
	switch name {
	case "starlink":
		return StarlinkPhase1(), true
	case "iridium":
		return Iridium(), true
	case "midsize1":
		return MidSize1(), true
	case "midsize2":
		return MidSize2(), true
	default:
		return nil, false
	}
}
