// Package traffic generates satellite traffic workloads: Poisson flow
// arrivals between population-weighted ground sites, the flow classes of
// Table 2 (voice, video, file transfer), a flow-lifetime engine, and sparse
// traffic matrices aggregated per satellite pair (Sec. 4, Appendix G).
package traffic

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"

	"sate/internal/constellation"
	"sate/internal/groundnet"
)

// Class describes one business type of Table 2.
type Class struct {
	Name           string
	DemandMbps     float64
	MinDurationSec float64
	MaxDurationSec float64
	Weight         float64 // relative arrival share
	GatewayToUser  bool    // gateway-to-user (Internet access) vs user-to-user
}

// DefaultClasses returns the flow parameters of Table 2.
//
//	Voice:         64 Kbps (G.711), 1-10 minutes, user-to-user
//	Video:          8 Mbps (1080p), 5-30 minutes, user-to-user
//	File transfer: 50 Mbps, 26-130 minutes (10-50 GB), gateway-to-user
func DefaultClasses() []Class {
	return []Class{
		{Name: "voice", DemandMbps: 0.064, MinDurationSec: 60, MaxDurationSec: 600, Weight: 0.55},
		{Name: "video", DemandMbps: 8, MinDurationSec: 300, MaxDurationSec: 1800, Weight: 0.35},
		{Name: "file", DemandMbps: 50, MinDurationSec: 1560, MaxDurationSec: 7800, Weight: 0.10, GatewayToUser: true},
	}
}

// FlowID identifies an active flow.
type FlowID int64

// Flow is one end-to-end traffic flow between ground sites.
type Flow struct {
	ID         FlowID
	Class      int // index into the generator's class table
	DemandMbps float64
	StartSec   float64
	EndSec     float64
	Src, Dst   groundnet.Site
}

// Config controls flow generation.
type Config struct {
	// Intensity is the Poisson arrival rate lambda in flows per second
	// (paper: 125-500 flows/s for Starlink).
	Intensity float64
	Classes   []Class
	Seed      int64
	// AccessMbps caps each connection's uplink and downlink (paper: 50 Mbps
	// per connection); exposed so the TE layer can build per-satellite
	// access-capacity constraints.
	AccessMbps float64
}

// DefaultConfig returns the paper's traffic parameters at a given intensity.
func DefaultConfig(intensity float64, seed int64) Config {
	return Config{
		Intensity:  intensity,
		Classes:    DefaultClasses(),
		Seed:       seed,
		AccessMbps: 50,
	}
}

// Generator maintains the set of ongoing flows as simulated time advances.
// Flows arrive as a Poisson process and expire after their sampled duration.
type Generator struct {
	cfg     Config
	seg     *groundnet.Segment
	rng     *rand.Rand
	nextID  FlowID
	nowSec  float64
	active  map[FlowID]*Flow
	expires expiryHeap
	cumW    []float64 // cumulative class weights
	// site sampling: user clusters weighted by population
	userCum []float64
}

// NewGenerator builds a traffic generator over a ground segment.
func NewGenerator(seg *groundnet.Segment, cfg Config) *Generator {
	if len(cfg.Classes) == 0 {
		cfg.Classes = DefaultClasses()
	}
	g := &Generator{
		cfg:    cfg,
		seg:    seg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		active: make(map[FlowID]*Flow),
	}
	var w float64
	for _, c := range cfg.Classes {
		w += c.Weight
		g.cumW = append(g.cumW, w)
	}
	var u float64
	for _, c := range seg.UserClusters {
		u += float64(c.Users)
		g.userCum = append(g.userCum, u)
	}
	return g
}

// Now returns the generator's current simulated time.
func (g *Generator) Now() float64 { return g.nowSec }

// ActiveFlows returns the currently ongoing flows. The returned map is the
// generator's own; callers must not modify it.
func (g *Generator) ActiveFlows() map[FlowID]*Flow { return g.active }

// ActiveCount returns the number of ongoing flows.
func (g *Generator) ActiveCount() int { return len(g.active) }

// AdvanceTo moves simulated time forward, expiring finished flows and
// generating Poisson arrivals in the elapsed interval.
func (g *Generator) AdvanceTo(tSec float64) {
	if tSec < g.nowSec {
		return
	}
	// Expire flows that end within the interval.
	for g.expires.Len() > 0 && g.expires[0].EndSec <= tSec {
		f := heap.Pop(&g.expires).(*Flow)
		delete(g.active, f.ID)
	}
	// Poisson arrivals: number in the interval ~ Poisson(lambda*dt); each
	// arrival time uniform in the interval.
	dt := tSec - g.nowSec
	n := poissonSample(g.rng, g.cfg.Intensity*dt)
	for i := 0; i < n; i++ {
		at := g.nowSec + g.rng.Float64()*dt
		g.spawn(at)
	}
	g.nowSec = tSec
	// Arrivals may already have expired within the same interval.
	for g.expires.Len() > 0 && g.expires[0].EndSec <= tSec {
		f := heap.Pop(&g.expires).(*Flow)
		delete(g.active, f.ID)
	}
}

func (g *Generator) spawn(atSec float64) {
	ci := g.pickClass()
	c := g.cfg.Classes[ci]
	dur := c.MinDurationSec + g.rng.Float64()*(c.MaxDurationSec-c.MinDurationSec)
	var src, dst groundnet.Site
	if c.GatewayToUser && len(g.seg.Gateways) > 0 {
		src = g.seg.Gateways[g.rng.Intn(len(g.seg.Gateways))]
		dst = g.pickUserSite()
	} else {
		src = g.pickUserSite()
		dst = g.pickUserSite()
	}
	f := &Flow{
		ID:         g.nextID,
		Class:      ci,
		DemandMbps: c.DemandMbps,
		StartSec:   atSec,
		EndSec:     atSec + dur,
		Src:        src,
		Dst:        dst,
	}
	g.nextID++
	g.active[f.ID] = f
	heap.Push(&g.expires, f)
}

func (g *Generator) pickClass() int {
	u := g.rng.Float64() * g.cumW[len(g.cumW)-1]
	for i, w := range g.cumW {
		if u < w {
			return i
		}
	}
	return len(g.cumW) - 1
}

func (g *Generator) pickUserSite() groundnet.Site {
	u := g.rng.Float64() * g.userCum[len(g.userCum)-1]
	lo, hi := 0, len(g.userCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.userCum[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return g.seg.UserClusters[lo].Site
}

// poissonSample draws from Poisson(mean). For small means it uses Knuth's
// method; for large means a normal approximation (accurate and O(1)).
func poissonSample(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := mean + math.Sqrt(mean)*rng.NormFloat64()
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// expiryHeap orders flows by end time.
type expiryHeap []*Flow

func (h expiryHeap) Len() int            { return len(h) }
func (h expiryHeap) Less(i, j int) bool  { return h[i].EndSec < h[j].EndSec }
func (h expiryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x interface{}) { *h = append(*h, x.(*Flow)) }
func (h *expiryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	f := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return f
}

// Demand is one entry of the (sparse) traffic matrix: the aggregated demand
// between a source and destination satellite.
type Demand struct {
	Src, Dst   constellation.SatID
	DemandMbps float64
	Flows      []FlowID // the individual flows aggregated into this entry
}

// Matrix is a sparse traffic matrix (Sec. 3.4: only non-zero entries are
// retained; this is the traffic pruning SaTE's graph design enables).
type Matrix struct {
	NumSats int
	Entries []Demand
}

// Total returns the total demand in Mbps.
func (m *Matrix) Total() float64 {
	var s float64
	for _, e := range m.Entries {
		s += e.DemandMbps
	}
	return s
}

// NonZeroPairs returns the number of non-zero entries.
func (m *Matrix) NonZeroPairs() int { return len(m.Entries) }

// DensityFraction returns the fraction of the full N x N matrix that is
// non-zero — the sparsity that traffic pruning exploits.
func (m *Matrix) DensityFraction() float64 {
	n := float64(m.NumSats)
	if n == 0 {
		return 0
	}
	return float64(len(m.Entries)) / (n * n)
}

// BuildMatrix aggregates the active flows into a sparse traffic matrix by
// mapping each flow endpoint to its serving satellite via the locator.
// Flows whose endpoints resolve to the same satellite, or that have no
// visible satellite, are skipped (they do not traverse the network).
func BuildMatrix(flows map[FlowID]*Flow, loc *groundnet.SatLocator, minElevRad float64, numSats int) *Matrix {
	// Aggregate in FlowID order: float summation order must not depend on
	// map iteration, or the same scenario yields last-ulp-different demands
	// across runs (breaking the bitwise determinism contract downstream).
	ids := make([]FlowID, 0, len(flows))
	for id := range flows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	type key struct{ s, d constellation.SatID }
	agg := make(map[key]*Demand)
	for _, id := range ids {
		f := flows[id]
		s, ok1 := loc.NearestVisible(f.Src, minElevRad)
		d, ok2 := loc.NearestVisible(f.Dst, minElevRad)
		if !ok1 || !ok2 || s == d {
			continue
		}
		k := key{s, d}
		e := agg[k]
		if e == nil {
			e = &Demand{Src: s, Dst: d}
			agg[k] = e
		}
		e.DemandMbps += f.DemandMbps
		e.Flows = append(e.Flows, f.ID)
	}
	m := &Matrix{NumSats: numSats}
	m.Entries = make([]Demand, 0, len(agg))
	for _, e := range agg {
		m.Entries = append(m.Entries, *e)
	}
	sortDemands(m.Entries)
	return m
}

func sortDemands(ds []Demand) {
	// Deterministic order: by (src, dst).
	sort.Slice(ds, func(i, j int) bool { return demandLess(ds[i], ds[j]) })
}

func demandLess(a, b Demand) bool {
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Dst < b.Dst
}
