package traffic

import (
	"math"
	"testing"

	"sate/internal/constellation"
	"sate/internal/groundnet"
	"sate/internal/orbit"
)

func testSegment() *groundnet.Segment {
	grid := groundnet.SyntheticPopulation(1)
	return groundnet.Build(grid, groundnet.Config{
		Users: 5000, UserClusters: 120, Gateways: 15, Relays: 8, Gamma: 0.05, Seed: 9,
	})
}

func TestDefaultClassesMatchTable2(t *testing.T) {
	cls := DefaultClasses()
	if len(cls) != 3 {
		t.Fatalf("classes = %d", len(cls))
	}
	byName := map[string]Class{}
	for _, c := range cls {
		byName[c.Name] = c
	}
	v := byName["voice"]
	if v.DemandMbps != 0.064 || v.MinDurationSec != 60 || v.MaxDurationSec != 600 {
		t.Errorf("voice = %+v", v)
	}
	vid := byName["video"]
	if vid.DemandMbps != 8 || vid.MinDurationSec != 300 || vid.MaxDurationSec != 1800 {
		t.Errorf("video = %+v", vid)
	}
	f := byName["file"]
	if f.DemandMbps != 50 || f.MinDurationSec != 1560 || f.MaxDurationSec != 7800 {
		t.Errorf("file = %+v", f)
	}
	if !f.GatewayToUser || v.GatewayToUser || vid.GatewayToUser {
		t.Error("file transfer is gateway-to-user; voice/video are user-to-user")
	}
}

func TestPoissonSampleMean(t *testing.T) {
	g := NewGenerator(testSegment(), DefaultConfig(10, 42))
	for _, mean := range []float64{0.5, 5, 100} {
		var sum float64
		n := 3000
		for i := 0; i < n; i++ {
			sum += float64(poissonSample(g.rng, mean))
		}
		got := sum / float64(n)
		if math.Abs(got-mean) > 4*math.Sqrt(mean/float64(n))+0.05*mean {
			t.Errorf("mean %v: sample mean %v", mean, got)
		}
	}
	if poissonSample(g.rng, 0) != 0 {
		t.Error("Poisson(0) must be 0")
	}
	if poissonSample(g.rng, -1) != 0 {
		t.Error("negative mean must yield 0")
	}
}

func TestGeneratorArrivalRate(t *testing.T) {
	g := NewGenerator(testSegment(), DefaultConfig(50, 7))
	g.AdvanceTo(20) // expect ~1000 arrivals, few expirations (min duration 60 s)
	got := float64(g.ActiveCount())
	if got < 800 || got > 1200 {
		t.Errorf("active flows after 20 s at lambda=50: %v", got)
	}
}

func TestGeneratorFlowsExpire(t *testing.T) {
	cfg := DefaultConfig(5, 3)
	// One class with a tiny lifetime.
	cfg.Classes = []Class{{Name: "blip", DemandMbps: 1, MinDurationSec: 1, MaxDurationSec: 2, Weight: 1}}
	g := NewGenerator(testSegment(), cfg)
	g.AdvanceTo(10)
	active10 := g.ActiveCount()
	g.AdvanceTo(100)
	// All flows born before t=98 expired; only the last ~2 s of arrivals live.
	if g.ActiveCount() > 30 {
		t.Errorf("flows did not expire: %d active (was %d)", g.ActiveCount(), active10)
	}
	for _, f := range g.ActiveFlows() {
		if f.EndSec <= 100 {
			t.Fatal("expired flow still active")
		}
	}
}

func TestAdvanceToBackwardsNoop(t *testing.T) {
	g := NewGenerator(testSegment(), DefaultConfig(10, 1))
	g.AdvanceTo(5)
	n := g.ActiveCount()
	g.AdvanceTo(1) // ignored
	if g.Now() != 5 || g.ActiveCount() != n {
		t.Error("backwards advance must be a no-op")
	}
}

func TestGatewayClassUsesGateways(t *testing.T) {
	cfg := DefaultConfig(20, 11)
	cfg.Classes = []Class{{Name: "file", DemandMbps: 50, MinDurationSec: 1000, MaxDurationSec: 2000, Weight: 1, GatewayToUser: true}}
	seg := testSegment()
	gwCells := map[int]bool{}
	for _, gw := range seg.Gateways {
		gwCells[gw.Cell] = true
	}
	g := NewGenerator(seg, cfg)
	g.AdvanceTo(10)
	if g.ActiveCount() == 0 {
		t.Fatal("no flows")
	}
	for _, f := range g.ActiveFlows() {
		if !gwCells[f.Src.Cell] {
			t.Fatal("gateway-to-user flow source is not a gateway site")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewGenerator(testSegment(), DefaultConfig(30, 99))
	b := NewGenerator(testSegment(), DefaultConfig(30, 99))
	a.AdvanceTo(15)
	b.AdvanceTo(15)
	if a.ActiveCount() != b.ActiveCount() {
		t.Fatalf("determinism violated: %d vs %d", a.ActiveCount(), b.ActiveCount())
	}
	for id, f := range a.ActiveFlows() {
		g := b.ActiveFlows()[id]
		if g == nil || *g != cloneNoSlice(*f) && *f != cloneNoSlice(*g) {
			// compare field-wise (Flow has no slices, direct compare is fine)
			if g == nil || *g != *f {
				t.Fatalf("flow %d differs", id)
			}
		}
	}
}

func cloneNoSlice(f Flow) Flow { return f }

func TestBuildMatrixAggregates(t *testing.T) {
	cons := constellation.StarlinkPhase1()
	pos := cons.PositionsECEF(0, nil)
	loc := groundnet.NewSatLocator(cons)
	loc.Update(pos)

	seg := testSegment()
	g := NewGenerator(seg, DefaultConfig(100, 21))
	g.AdvanceTo(30)
	m := BuildMatrix(g.ActiveFlows(), loc, orbit.Deg(25), cons.Size())
	if m.NumSats != cons.Size() {
		t.Fatalf("numSats = %d", m.NumSats)
	}
	if len(m.Entries) == 0 {
		t.Fatal("empty matrix")
	}
	// Aggregation invariants.
	var flowSum float64
	seen := map[[2]constellation.SatID]bool{}
	for _, e := range m.Entries {
		if e.Src == e.Dst {
			t.Fatal("same-satellite entry must be dropped")
		}
		if e.DemandMbps <= 0 {
			t.Fatal("non-positive demand entry")
		}
		k := [2]constellation.SatID{e.Src, e.Dst}
		if seen[k] {
			t.Fatal("duplicate (src,dst) entry")
		}
		seen[k] = true
		flowSum += e.DemandMbps
		if len(e.Flows) == 0 {
			t.Fatal("entry without contributing flows")
		}
	}
	// Matrix must be sparse relative to N^2 (population is clustered).
	if m.DensityFraction() > 0.01 {
		t.Errorf("matrix density %.4f; expected sparse", m.DensityFraction())
	}
	if math.Abs(m.Total()-flowSum) > 1e-9 {
		t.Errorf("Total() = %v, sum = %v", m.Total(), flowSum)
	}
}

func TestMatrixDeterministicOrder(t *testing.T) {
	cons := constellation.MidSize1()
	pos := cons.PositionsECEF(0, nil)
	loc := groundnet.NewSatLocator(cons)
	loc.Update(pos)
	seg := testSegment()
	g := NewGenerator(seg, DefaultConfig(80, 5))
	g.AdvanceTo(20)
	m1 := BuildMatrix(g.ActiveFlows(), loc, orbit.Deg(25), cons.Size())
	m2 := BuildMatrix(g.ActiveFlows(), loc, orbit.Deg(25), cons.Size())
	if len(m1.Entries) != len(m2.Entries) {
		t.Fatal("nondeterministic entry count")
	}
	for i := range m1.Entries {
		if m1.Entries[i].Src != m2.Entries[i].Src || m1.Entries[i].Dst != m2.Entries[i].Dst {
			t.Fatal("nondeterministic entry order")
		}
	}
}

func TestIntensityScalesLoad(t *testing.T) {
	seg := testSegment()
	lo := NewGenerator(seg, DefaultConfig(20, 4))
	hi := NewGenerator(seg, DefaultConfig(200, 4))
	lo.AdvanceTo(30)
	hi.AdvanceTo(30)
	if hi.ActiveCount() < 5*lo.ActiveCount() {
		t.Errorf("intensity scaling weak: lo=%d hi=%d", lo.ActiveCount(), hi.ActiveCount())
	}
}

func TestMatrixConservationProperty(t *testing.T) {
	// Property: the matrix total equals the sum of demands of exactly the
	// flows it aggregated (every flow is either represented once or dropped
	// for lack of visibility / same-satellite endpoints).
	cons := constellation.MidSize1()
	pos := cons.PositionsECEF(0, nil)
	loc := groundnet.NewSatLocator(cons)
	loc.Update(pos)
	seg := testSegment()
	g := NewGenerator(seg, DefaultConfig(60, 29))
	g.AdvanceTo(25)
	m := BuildMatrix(g.ActiveFlows(), loc, orbit.Deg(10), cons.Size())
	counted := make(map[FlowID]bool)
	var sum float64
	for _, e := range m.Entries {
		for _, id := range e.Flows {
			if counted[id] {
				t.Fatalf("flow %d aggregated twice", id)
			}
			counted[id] = true
			f := g.ActiveFlows()[id]
			if f == nil {
				t.Fatalf("matrix references unknown flow %d", id)
			}
			sum += f.DemandMbps
		}
	}
	if math.Abs(sum-m.Total()) > 1e-9 {
		t.Errorf("matrix total %v != sum of aggregated flows %v", m.Total(), sum)
	}
	if len(counted) > g.ActiveCount() {
		t.Error("more aggregated flows than active")
	}
}
