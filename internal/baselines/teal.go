package baselines

import (
	"fmt"
	"math/rand"

	"sate/internal/autodiff"
	"sate/internal/gnn"
	"sate/internal/solve"
	"sate/internal/te"
	"sate/internal/topology"
)

// Teal reproduces the architecture class of Teal [Xu et al., SIGCOMM'23] as
// characterised in Sec. 2.4: a GNN over the physical topology (capturing only
// link connectivity) feeding DNN layers whose input layout is FIXED at build
// time — one slot per source-destination pair of the topology with k path
// positions each. The consequences the paper evaluates follow directly:
//
//   - The dense pair layout means input size grows with N^2 and cannot be
//     pruned (Sec. 3.4: "DNNs require fixed-size and position-specific input
//     structures"). Build refuses when the data-point estimate exceeds
//     MemoryLimitBytes, reproducing "Teal cannot fit into GPU memory when
//     scaling to Starlink".
//   - The DNN is tied to the path set captured at build time: when topology
//     changes, stale paths degrade quality, and a different topology needs a
//     new model (re-training).
type Teal struct {
	NumNodes int
	K        int
	EmbedDim int
	// MemoryLimitBytes models the accelerator memory ceiling (default 2 GiB
	// for CPU-scale runs; the paper's A100 has 80 GB).
	MemoryLimitBytes int64

	pairIndex map[[2]topology.NodeID]int // fixed pair slots
	pairPaths [][][]int                  // per pair, per path: link indices (frozen)
	refLinks  []topology.Link
	gnnStack  *gnn.Stack
	decoder   *gnn.MLP // per (pair, path): [demand, mean link emb] -> score
	params    []*autodiff.Value

	solveTapes tapePool
	trainTape  *autodiff.Tape // reused across TrainStep calls (training is serial)
}

// TealDataPointBytes estimates the dense data-point volume Teal requires:
// an N x N float traffic matrix plus N^2 x K path slots of maxHops node IDs
// (the fixed-position layout its DNN consumes).
func TealDataPointBytes(n, k, maxHops int) int64 {
	nn := int64(n) * int64(n)
	return nn*8 + nn*int64(k)*int64(maxHops)*4
}

// NewTeal builds a Teal model bound to one topology snapshot and its
// preconfigured paths. It returns an error when the dense representation
// exceeds the memory limit — the Starlink-scale failure mode of Sec. 5.1.
func NewTeal(snap *topology.Snapshot, pathsPerPair map[[2]topology.NodeID][][]topology.NodeID, k, embedDim int, memLimit int64, seed int64) (*Teal, error) {
	if memLimit == 0 {
		memLimit = 2 << 30
	}
	const maxHops = 32
	if need := TealDataPointBytes(snap.NumNodes, k, maxHops); need > memLimit {
		return nil, fmt.Errorf("teal: data point needs %d bytes (limit %d): dense pair layout cannot be pruned", need, memLimit)
	}
	rng := rand.New(rand.NewSource(seed))
	t := &Teal{
		NumNodes:         snap.NumNodes,
		K:                k,
		EmbedDim:         embedDim,
		MemoryLimitBytes: memLimit,
		pairIndex:        make(map[[2]topology.NodeID]int),
		refLinks:         append([]topology.Link(nil), snap.Links...),
	}
	linkIdx := make(map[uint64]int, len(snap.Links))
	for i, l := range snap.Links {
		linkIdx[uint64(l.A)<<32|uint64(uint32(l.B))] = i
	}
	for pair, ps := range pathsPerPair {
		slot := len(t.pairPaths)
		t.pairIndex[pair] = slot
		var perPath [][]int
		for pi, nodes := range ps {
			if pi >= k {
				break
			}
			var lis []int
			ok := true
			for i := 0; i+1 < len(nodes); i++ {
				l := topology.MakeLink(nodes[i], nodes[i+1], topology.IntraOrbit)
				li, found := linkIdx[uint64(l.A)<<32|uint64(uint32(l.B))]
				if !found {
					ok = false
					break
				}
				lis = append(lis, li)
			}
			if ok {
				perPath = append(perPath, lis)
			}
		}
		t.pairPaths = append(t.pairPaths, perPath)
	}
	t.gnnStack = gnn.NewStack(rng, 2, embedDim, embedDim, 1)
	t.decoder = gnn.NewMLP(rng, 1+embedDim, 2*embedDim, 1)
	t.params = append(t.params, t.gnnStack.Params()...)
	t.params = append(t.params, t.decoder.Params()...)
	return t, nil
}

// Params returns the trainable parameters.
func (t *Teal) Params() []*autodiff.Value { return t.params }

// Name implements Solver.
func (t *Teal) Name() string { return "teal" }

// forward computes per-(flow, path) scores for the problem using the frozen
// pair layout. Flows whose pair slot or frozen paths are missing get no
// allocation (the stale-path degradation of changing topologies).
func (t *Teal) forward(tp *autodiff.Tape, p *te.Problem) (scores *autodiff.Value, varFlow []int, varPath []int) {
	// Node embeddings from degree, refined over the *reference* topology.
	deg := make([]float64, t.NumNodes)
	rel := gnn.EdgeList{}
	var eFeat []float64
	for _, l := range t.refLinks {
		rel.Src = append(rel.Src, int(l.A), int(l.B))
		rel.Dst = append(rel.Dst, int(l.B), int(l.A))
		eFeat = append(eFeat, 1, 1)
		deg[l.A]++
		deg[l.B]++
	}
	// Position-specific inputs: Teal's DNN layout assigns every node a fixed
	// slot, so nodes carry a fixed positional encoding alongside degree.
	// (Without it, a vertex-transitive grid makes all embeddings identical.)
	nodeIn := tp.Zeros(t.NumNodes, t.EmbedDim)
	for i := 0; i < t.NumNodes; i++ {
		nodeIn.Set(i, 0, deg[i]*0.25)
		h := uint64(i)
		for c := 1; c < t.EmbedDim && c < 9; c++ {
			h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
			nodeIn.Set(i, c, float64(int64(h%1000))/1000-0.5)
		}
	}
	edgeIn := tp.Zeros(rel.Len(), t.EmbedDim)
	for i := range eFeat {
		edgeIn.Set(i, 0, eFeat[i])
	}
	nodeEmb := t.gnnStack.Forward(tp, tp.Const(nodeIn), tp.Const(edgeIn), rel)

	// The DNN consumes its FIXED dense layout: one input row for every
	// (source-destination pair, path slot) of the topology — N^2 * K rows —
	// with zero features in inactive slots. This is the position-specific
	// structure of Sec. 2.4 that prevents pruning: compute and memory grow
	// with N^2 regardless of how sparse the live demand is.
	denseRows := t.NumNodes * t.NumNodes * t.K
	input := tp.Zeros(denseRows, 1+t.EmbedDim)
	var activeRows []int
	for fi := range p.Flows {
		f := &p.Flows[fi]
		slot, ok := t.pairIndex[[2]topology.NodeID{f.Src, f.Dst}]
		if !ok {
			continue
		}
		base := (int(f.Src)*t.NumNodes + int(f.Dst)) * t.K
		for pi := range t.pairPaths[slot] {
			if pi >= len(f.Paths) || pi >= t.K {
				break
			}
			varFlow = append(varFlow, fi)
			varPath = append(varPath, pi)
			row := base + pi
			activeRows = append(activeRows, row)
			// Fixed-position features: demand plus the embedding of the
			// frozen path's representative (mid-link) node.
			input.Set(row, 0, f.DemandMbps*0.02)
			lis := t.pairPaths[slot][pi]
			rep := int(f.Src)
			if len(lis) > 0 {
				rep = int(t.refLinks[lis[len(lis)/2]].A)
			}
			for c := 0; c < t.EmbedDim; c++ {
				input.Set(row, 1+c, nodeEmb.Val.At(rep, c))
			}
		}
	}
	if len(activeRows) == 0 {
		return nil, nil, nil
	}
	// Note: copying node embeddings into the dense block detaches them from
	// the GNN gradient — matching Teal's two-stage design where the flow DNN
	// dominates; the positional inputs keep the decoder trainable.
	allScores := t.decoder.Forward(tp, tp.Const(input)) // N^2*K x 1
	scores = tp.Gather(allScores, activeRows)
	return scores, varFlow, varPath
}

// Solve implements Solver: per-flow softmax over frozen path slots scaled by
// demand, then trim.
func (t *Teal) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	defer solve.Begin(solve.Build(opts...), "teal").End()
	alloc := te.NewAllocation(p)
	tp := t.solveTapes.get()
	defer t.solveTapes.put(tp)
	scores, varFlow, varPath := t.forward(tp, p)
	if scores == nil {
		p.Trim(alloc)
		return alloc, nil
	}
	alpha := tp.SegmentSoftmax(scores, varFlow, len(p.Flows))
	for j := range varFlow {
		fi, pi := varFlow[j], varPath[j]
		alloc.X[fi][pi] = alpha.Val.Data[j] * p.Flows[fi].DemandMbps
	}
	p.Trim(alloc)
	return alloc, nil
}

// TrainStep performs one supervised step toward reference allocations,
// returning the loss. Teal trains per fixed topology (its models are "tied to
// a single topology").
func (t *Teal) TrainStep(p *te.Problem, ref *te.Allocation, opt *autodiff.Adam) (float64, error) {
	if t.trainTape == nil {
		t.trainTape = autodiff.NewTape()
	}
	tp := t.trainTape
	tp.Reset()
	scores, varFlow, varPath := t.forward(tp, p)
	if scores == nil {
		return 0, nil
	}
	alpha := tp.SegmentSoftmax(scores, varFlow, len(p.Flows))
	target := tp.Zeros(len(varFlow), 1)
	for j := range varFlow {
		fi, pi := varFlow[j], varPath[j]
		tot := ref.FlowThroughput(fi)
		if tot > 0 {
			target.Data[j] = ref.X[fi][pi] / tot
		} else {
			target.Data[j] = 1 / float64(len(p.Flows[fi].Paths))
		}
	}
	loss := tp.MSE(alpha, tp.Const(target))
	opt.ZeroGrad()
	tp.Backward(loss)
	opt.Step()
	return loss.Val.Data[0], nil
}
