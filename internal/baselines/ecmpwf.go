package baselines

import (
	"math"

	"sate/internal/solve"
	"sate/internal/te"
)

// ECMPWF implements "ECMP with water filling" [35]: each flow splits traffic
// equally across its minimum-hop candidate paths, and all flows are raised
// together max-min style until paths saturate. Flows freeze when any resource
// on their equal-cost paths is exhausted or their demand is met; remaining
// flows keep filling.
type ECMPWF struct {
	// Rounds bounds the water-filling iterations (default 64).
	Rounds int
}

// Name implements Solver.
func (ECMPWF) Name() string { return "ecmp-wf" }

// Solve implements Solver.
func (s ECMPWF) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	defer solve.Begin(solve.Build(opts...), "ecmp-wf").End()
	rounds := s.Rounds
	if rounds <= 0 {
		rounds = 64
	}
	alloc := te.NewAllocation(p)
	_, bounds, colOf := buildRows(p)
	residual := append([]float64(nil), bounds...)

	// Equal-cost path sets: minimum-hop candidates per flow.
	type fstate struct {
		paths  []int   // indices of min-hop paths
		rows   [][]int // resource rows per such path
		rate   float64 // per-path rate
		frozen bool
	}
	fs := make([]fstate, len(p.Flows))
	active := 0
	for fi, f := range p.Flows {
		if len(f.Paths) == 0 {
			fs[fi].frozen = true
			continue
		}
		minHops := math.MaxInt32
		for _, path := range f.Paths {
			if h := path.Hops(); h < minHops {
				minHops = h
			}
		}
		for pi, path := range f.Paths {
			if path.Hops() == minHops {
				fs[fi].paths = append(fs[fi].paths, pi)
				fs[fi].rows = append(fs[fi].rows, colOf(fi, pi))
			}
		}
		active++
	}

	for r := 0; r < rounds && active > 0; r++ {
		// Largest uniform per-path increment every unfrozen flow can take:
		// for each resource, capacity is consumed by every unfrozen path
		// through it, so increment <= residual / users.
		users := make([]float64, len(residual))
		for fi := range fs {
			if fs[fi].frozen {
				continue
			}
			for _, rows := range fs[fi].rows {
				for _, rr := range rows {
					users[rr]++
				}
			}
		}
		inc := math.Inf(1)
		for rr := range residual {
			if users[rr] > 0 {
				if v := residual[rr] / users[rr]; v < inc {
					inc = v
				}
			}
		}
		if math.IsInf(inc, 1) || inc <= 1e-12 {
			break
		}
		// Apply the increment, freeze flows at exhausted resources or at
		// demand (demand rows are resources too, so both freeze uniformly).
		for fi := range fs {
			st := &fs[fi]
			if st.frozen {
				continue
			}
			st.rate += inc
			for pj, pi := range st.paths {
				alloc.X[fi][pi] += inc
				for _, rr := range st.rows[pj] {
					residual[rr] -= inc
				}
			}
		}
		for fi := range fs {
			st := &fs[fi]
			if st.frozen {
				continue
			}
			for _, rows := range st.rows {
				for _, rr := range rows {
					if residual[rr] <= 1e-9 {
						st.frozen = true
					}
				}
			}
			if st.frozen {
				active--
			}
		}
	}
	p.Trim(alloc)
	return alloc, nil
}
