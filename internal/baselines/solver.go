// Package baselines implements the six competing schemes of Sec. 4:
//
//   - LPExact: exact LP via primal simplex — the role of the commercial
//     solver (Gurobi) in the paper, exact at any scale it can afford.
//   - GK: Garg–Könemann / Fleischer multiplicative-weights packing solver,
//     (1-O(eps))-optimal with polynomial runtime; LPAuto switches between the
//     two by problem size, mirroring how a commercial solver is the
//     high-quality/slow reference at every scale.
//   - POP: random flow partition into k subproblems with 1/k capacities [55].
//   - ECMPWF: equal split over minimum-hop paths with water filling [35].
//   - Backpressure: distributed queue-differential satellite routing [56].
//   - Teal-like and HARP-like learned baselines live in this package too
//     (teal.go, harp.go), built on the same autodiff substrate as SaTE.
package baselines

import (
	"math"
	"time"

	"sate/internal/lp"
	"sate/internal/obs"
	"sate/internal/solve"
	"sate/internal/te"
)

// Solver computes a feasible TE allocation for a problem. Every solver in
// the repo shares the unified variadic signature of the solve package:
// options select the objective, inject an obs registry, or override the
// worker budget, and `Solve(p)` with no options behaves exactly as the
// pre-redesign methods did.
type Solver interface {
	Name() string
	Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error)
}

// LPExact solves the TE LP exactly with the dense simplex. Suitable for
// small and mid-size instances; cost grows polynomially (the behaviour the
// paper reports for commercial solvers).
type LPExact struct{}

// Name implements Solver.
func (LPExact) Name() string { return "lp-exact" }

// Solve implements Solver.
func (LPExact) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	o := solve.Build(opts...)
	defer solve.Begin(o, "lp-exact").End()
	rows, b, colOf := buildRows(p)
	n := p.NumPaths()
	c := make([]float64, n)
	a := make([][]float64, len(b))
	for i := range a {
		a[i] = make([]float64, n)
	}
	j := 0
	for fi := range p.Flows {
		for pi := range p.Flows[fi].Paths {
			c[j] = 1
			for _, r := range colOf(fi, pi) {
				a[r][j] = 1
			}
			j++
		}
	}
	_ = rows
	sp := o.Registry.StartSpan(obs.PhaseLPSolve)
	res, err := lp.Maximize(c, a, b)
	sp.End()
	if err != nil {
		return nil, err
	}
	alloc := te.NewAllocation(p)
	j = 0
	for fi := range p.Flows {
		for pi := range p.Flows[fi].Paths {
			alloc.X[fi][pi] = res.X[j]
			j++
		}
	}
	p.Trim(alloc) // numerical hygiene
	return alloc, nil
}

// resource kinds for row construction
const (
	resLink = iota
	resUp
	resDown
	resDemand
)

type resourceKey struct {
	kind int
	id   int
}

// buildRows enumerates the packing rows actually reachable by some path
// variable: used links, finite up/down caps of active endpoints, and one
// demand row per flow. It returns the row count via len(b), the bounds, and
// a function giving the row indices of a (flow, path) column.
func buildRows(p *te.Problem) (rows map[resourceKey]int, b []float64, colOf func(fi, pi int) []int) {
	rows = make(map[resourceKey]int)
	addRow := func(k resourceKey, bound float64) int {
		if i, ok := rows[k]; ok {
			return i
		}
		i := len(b)
		rows[k] = i
		b = append(b, bound)
		return i
	}
	// Demand rows.
	for fi, f := range p.Flows {
		addRow(resourceKey{resDemand, fi}, f.DemandMbps)
	}
	// Link and access rows for links/nodes actually used by candidate paths.
	for fi, f := range p.Flows {
		for pi := range f.Paths {
			for _, li := range p.PathLinks(fi, pi) {
				addRow(resourceKey{resLink, li}, p.LinkCap[li])
			}
		}
		if len(f.Paths) > 0 {
			if len(p.UpCap) > 0 && !math.IsInf(p.UpCap[f.Src], 1) {
				addRow(resourceKey{resUp, int(f.Src)}, p.UpCap[f.Src])
			}
			if len(p.DownCap) > 0 && !math.IsInf(p.DownCap[f.Dst], 1) {
				addRow(resourceKey{resDown, int(f.Dst)}, p.DownCap[f.Dst])
			}
		}
	}
	colOf = func(fi, pi int) []int {
		f := &p.Flows[fi]
		var out []int
		out = append(out, rows[resourceKey{resDemand, fi}])
		for _, li := range p.PathLinks(fi, pi) {
			out = append(out, rows[resourceKey{resLink, li}])
		}
		if len(p.UpCap) > 0 {
			if r, ok := rows[resourceKey{resUp, int(f.Src)}]; ok {
				out = append(out, r)
			}
		}
		if len(p.DownCap) > 0 {
			if r, ok := rows[resourceKey{resDown, int(f.Dst)}]; ok {
				out = append(out, r)
			}
		}
		return out
	}
	return rows, b, colOf
}

// LPAuto is the commercial-solver stand-in: exact simplex when the dense
// tableau is affordable, Garg–Könemann otherwise. Either way it is the
// slow, high-quality reference the paper calls "Gurobi".
type LPAuto struct {
	// MaxDenseCells bounds m*n for the simplex path (default 4e6).
	MaxDenseCells int
	// Epsilon for the GK path (default 0.05).
	Epsilon float64
}

// Name implements Solver.
func (LPAuto) Name() string { return "lp-auto" }

// Solve implements Solver. Options are forwarded to the solver the
// size heuristic picks, so instrumented runs record the latency under both
// "lp-auto" and the concrete solver's name.
func (s LPAuto) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	o := solve.Build(opts...)
	defer solve.Begin(o, "lp-auto").End()
	maxCells := s.MaxDenseCells
	if maxCells == 0 {
		maxCells = 4_000_000
	}
	n := p.NumPaths()
	_, b, _ := buildRows(p)
	if len(b)*n <= maxCells {
		return LPExact{}.Solve(p, opts...)
	}
	eps := s.Epsilon
	if eps == 0 {
		eps = 0.05
	}
	return GK{Epsilon: eps}.Solve(p, opts...)
}

// Timed wraps a solver and records wall-clock solve latency.
type Timed struct {
	Inner Solver
	// LastLatency is the duration of the most recent Solve call.
	LastLatency time.Duration
}

// Name implements Solver.
func (t *Timed) Name() string { return t.Inner.Name() }

// Solve implements Solver.
func (t *Timed) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	start := time.Now()
	a, err := t.Inner.Solve(p, opts...)
	t.LastLatency = time.Since(start)
	return a, err
}
