package baselines

import (
	"math"
	"math/rand"
	"time"

	"sate/internal/solve"
	"sate/internal/te"
)

// POP implements the resource-allocation decomposition of Narayanan et al.
// [SOSP'21]: flows are randomly partitioned into K groups; each group is
// solved against a copy of the network with capacities scaled by 1/K; the
// sub-allocations are combined. Subproblems are independent, so a K-way
// parallel deployment takes max (not sum) of subproblem latencies;
// MaxSubLatency records that for the latency experiments.
type POP struct {
	// K is the group count: 0 picks the default (4), 1 degenerates to a
	// single unscaled subproblem (equivalent to the inner solver alone).
	K     int
	Seed  int64
	Inner Solver // solver for subproblems; LPAuto if nil

	// MaxSubLatency is the latency of the slowest subproblem in the most
	// recent Solve (the parallel-execution latency model of Fig. 8).
	MaxSubLatency time.Duration
}

// Name implements Solver.
func (POP) Name() string { return "pop" }

// Solve implements Solver. Options are forwarded to the subproblem solver,
// so instrumented runs also record per-subproblem latencies under the inner
// solver's name.
func (s *POP) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	defer solve.Begin(solve.Build(opts...), "pop").End()
	k := s.K
	if k <= 0 {
		k = 4
	}
	inner := s.Inner
	if inner == nil {
		inner = LPAuto{}
	}
	rng := rand.New(rand.NewSource(s.Seed))
	group := make([]int, len(p.Flows))
	for i := range group {
		group[i] = rng.Intn(k)
	}

	alloc := te.NewAllocation(p)
	s.MaxSubLatency = 0
	for gi := 0; gi < k; gi++ {
		sub := &te.Problem{
			NumNodes: p.NumNodes,
			Links:    p.Links,
			LinkCap:  scaleSlice(p.LinkCap, 1/float64(k)),
		}
		if len(p.UpCap) > 0 {
			sub.UpCap = scaleSlice(p.UpCap, 1/float64(k))
			sub.DownCap = scaleSlice(p.DownCap, 1/float64(k))
		}
		var back []int // sub flow index -> original flow index
		for fi, f := range p.Flows {
			if group[fi] != gi {
				continue
			}
			sub.Flows = append(sub.Flows, f)
			back = append(back, fi)
		}
		if len(sub.Flows) == 0 {
			continue
		}
		if err := sub.Finalize(); err != nil {
			return nil, err
		}
		start := time.Now()
		sa, err := inner.Solve(sub, opts...)
		if el := time.Since(start); el > s.MaxSubLatency {
			s.MaxSubLatency = el
		}
		if err != nil {
			return nil, err
		}
		for sfi, fi := range back {
			copy(alloc.X[fi], sa.X[sfi])
		}
	}
	p.Trim(alloc)
	return alloc, nil
}

func scaleSlice(x []float64, s float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		if math.IsInf(v, 1) {
			out[i] = v
			continue
		}
		out[i] = v * s
	}
	return out
}
