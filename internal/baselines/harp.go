package baselines

import (
	"math"
	"math/rand"

	"sate/internal/autodiff"
	"sate/internal/gnn"
	"sate/internal/solve"
	"sate/internal/te"
)

// Harp reproduces the architecture class of HARP [AlQiam et al.,
// SIGCOMM'24] as characterised in Secs. 4-5: a GNN-based TE model that
// transfers across changing topologies and is designed for MLU minimisation
// rather than throughput maximisation. Its distinguishing cost is an
// edge-path embedding transformer: every candidate path attends over ALL
// edge embeddings of the network, so per-inference complexity grows with
// network size (the paper measures ~4x SaTE latency and slower training).
//
// Allocation is a per-flow softmax over candidate paths (all demand routed —
// the MLU problem's convention), trained self-supervised by minimising a
// differentiable soft-MLU; in throughput experiments the routed demand is
// trimmed to capacity, which is why HARP trails throughput-objective methods
// there ("not inherently adaptable to throughput maximization").
type Harp struct {
	EmbedDim int

	gnnStack *gnn.Stack
	query    *autodiff.Value // EmbedDim x EmbedDim path->edge attention
	decoder  *gnn.MLP
	params   []*autodiff.Value

	solveTapes tapePool
	trainTape  *autodiff.Tape // reused across TrainStep calls (training is serial)
}

// NewHarp builds a HARP-like model.
func NewHarp(embedDim int, seed int64) *Harp {
	rng := rand.New(rand.NewSource(seed))
	h := &Harp{EmbedDim: embedDim}
	h.gnnStack = gnn.NewStack(rng, 2, embedDim, embedDim, 1)
	h.query = autodiff.Param(autodiff.NewTensor(embedDim, embedDim).Randn(rng, math.Sqrt(1/float64(embedDim))))
	h.decoder = gnn.NewMLP(rng, embedDim, 2*embedDim, 1)
	h.params = append(h.params, h.gnnStack.Params()...)
	h.params = append(h.params, h.query)
	h.params = append(h.params, h.decoder.Params()...)
	return h
}

// Params returns the trainable parameters.
func (h *Harp) Params() []*autodiff.Value { return h.params }

// Name implements Solver.
func (h *Harp) Name() string { return "harp" }

// forward returns per-variable path scores. The edge-path transformer:
// path embedding = attention(query=mean node emb of path, keys/values=ALL
// link embeddings) — the O(paths x links) term that scales with network size.
func (h *Harp) forward(tp *autodiff.Tape, p *te.Problem) (*autodiff.Value, []int) {
	n := p.NumNodes
	deg := make([]float64, n)
	rel := gnn.EdgeList{}
	for _, l := range p.Links {
		rel.Src = append(rel.Src, int(l.A), int(l.B))
		rel.Dst = append(rel.Dst, int(l.B), int(l.A))
		deg[l.A]++
		deg[l.B]++
	}
	nodeIn := tp.Zeros(n, h.EmbedDim)
	for i := 0; i < n; i++ {
		nodeIn.Set(i, 0, deg[i]*0.25)
	}
	edgeIn := tp.Zeros(rel.Len(), h.EmbedDim)
	for i := 0; i < rel.Len(); i++ {
		edgeIn.Set(i, 0, 1)
	}
	nodeEmb := h.gnnStack.Forward(tp, tp.Const(nodeIn), tp.Const(edgeIn), rel)

	// Link embeddings: mean of endpoint node embeddings.
	var aIdx, bIdx []int
	for _, l := range p.Links {
		aIdx = append(aIdx, int(l.A))
		bIdx = append(bIdx, int(l.B))
	}
	if len(aIdx) == 0 {
		return nil, nil
	}
	linkEmb := tp.Scale(tp.Add(tp.Gather(nodeEmb, aIdx), tp.Gather(nodeEmb, bIdx)), 0.5)

	// Path queries: mean node embedding along each path.
	var varFlow []int
	var pathRows [][]int
	for fi := range p.Flows {
		for pi := range p.Flows[fi].Paths {
			var nodes []int
			for _, nd := range p.Flows[fi].Paths[pi].Nodes {
				nodes = append(nodes, int(nd))
			}
			pathRows = append(pathRows, nodes)
			varFlow = append(varFlow, fi)
		}
	}
	if len(pathRows) == 0 {
		return nil, nil
	}
	// Mean over path nodes via gather + scatter.
	var gIdx, sIdx []int
	for pi, nodes := range pathRows {
		for _, nd := range nodes {
			gIdx = append(gIdx, nd)
			sIdx = append(sIdx, pi)
		}
	}
	gathered := tp.Gather(nodeEmb, gIdx)
	sums := tp.ScatterAddRows(gathered, sIdx, len(pathRows))
	invLen := tp.Zeros(len(pathRows), 1)
	for pi, nodes := range pathRows {
		invLen.Data[pi] = 1 / float64(len(nodes))
	}
	pathQuery := tp.MulColBroadcast(sums, tp.Const(invLen))

	// Edge-path transformer: every path attends over ALL link embeddings —
	// the dense P x E attention whose compute cost scales with network size.
	q := tp.MatMul(pathQuery, h.query) // P x d
	dots := tp.MatMulT(q, linkEmb)     // P x E
	attn := tp.RowSoftmax(tp.Scale(dots, 1/math.Sqrt(float64(h.EmbedDim))))
	pathEmb := tp.MatMul(attn, linkEmb) // P x d

	scores := h.decoder.Forward(tp, pathEmb)
	return scores, varFlow
}

// Solve implements Solver: full-demand softmax routing then trim.
func (h *Harp) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	defer solve.Begin(solve.Build(opts...), "harp").End()
	alloc := te.NewAllocation(p)
	tp := h.solveTapes.get()
	defer h.solveTapes.put(tp)
	scores, varFlow := h.forward(tp, p)
	if scores == nil {
		p.Trim(alloc)
		return alloc, nil
	}
	alpha := tp.SegmentSoftmax(scores, varFlow, len(p.Flows))
	j := 0
	for fi := range p.Flows {
		for pi := range p.Flows[fi].Paths {
			alloc.X[fi][pi] = alpha.Val.Data[j] * p.Flows[fi].DemandMbps
			j++
		}
	}
	p.Trim(alloc)
	return alloc, nil
}

// TrainStep minimises a differentiable soft-MLU (log-sum-exp over link
// utilisations of the softmax-routed demand). Self-supervised: no labels
// needed, as in HARP's MLU objective.
func (h *Harp) TrainStep(p *te.Problem, opt *autodiff.Adam) (float64, error) {
	if h.trainTape == nil {
		h.trainTape = autodiff.NewTape()
	}
	tp := h.trainTape
	tp.Reset()
	scores, varFlow := h.forward(tp, p)
	if scores == nil {
		return 0, nil
	}
	alpha := tp.SegmentSoftmax(scores, varFlow, len(p.Flows))
	demands := tp.Zeros(len(varFlow), 1)
	j := 0
	var varIdx, linkIdx []int
	for fi := range p.Flows {
		for pi := range p.Flows[fi].Paths {
			demands.Data[j] = p.Flows[fi].DemandMbps
			for _, li := range p.PathLinks(fi, pi) {
				varIdx = append(varIdx, j)
				linkIdx = append(linkIdx, li)
			}
			j++
		}
	}
	x := tp.Mul(alpha, tp.Const(demands))
	if len(varIdx) == 0 {
		return 0, nil
	}
	loads := tp.ScatterAddRows(tp.Gather(x, varIdx), linkIdx, len(p.Links))
	invCap := tp.Zeros(len(p.Links), 1)
	for i, c := range p.LinkCap {
		if c > 0 {
			invCap.Data[i] = 1 / c
		}
	}
	util := tp.Mul(loads, tp.Const(invCap))
	// soft-MLU: (1/beta) log sum exp(beta * util).
	const beta = 8.0
	softMax := tp.Scale(tp.SumAll(tp.Exp(tp.Scale(util, beta))), 1)
	// log via a 1x1 trick: loss = log(sum)/beta. Implement log through
	// monotone surrogate: minimise sum exp(beta*util) directly (same argmin).
	loss := tp.Scale(softMax, 1/beta)
	opt.ZeroGrad()
	tp.Backward(loss)
	opt.Step()
	return p.MLU(allocFromSoftmax(p, alpha)), nil
}

func allocFromSoftmax(p *te.Problem, alpha *autodiff.Value) *te.Allocation {
	alloc := te.NewAllocation(p)
	j := 0
	for fi := range p.Flows {
		for pi := range p.Flows[fi].Paths {
			alloc.X[fi][pi] = alpha.Val.Data[j] * p.Flows[fi].DemandMbps
			j++
		}
	}
	return alloc
}

// HarpAttentionCost returns the P x E attention size — the term that makes
// HARP latency grow with network scale (for the Fig. 8 commentary).
func HarpAttentionCost(p *te.Problem) int {
	return p.NumPaths() * len(p.Links)
}
