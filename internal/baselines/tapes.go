package baselines

import (
	"sync"

	"sate/internal/autodiff"
)

// tapePool recycles inference tapes across Solve calls so the autodiff arena
// stays warm: after the first solve of a given problem size, subsequent
// solves run near-allocation-free (DESIGN.md §8).
type tapePool struct{ pool sync.Pool }

func (tp *tapePool) get() *autodiff.Tape {
	if t, ok := tp.pool.Get().(*autodiff.Tape); ok {
		return t
	}
	return autodiff.NewInferenceTape()
}

func (tp *tapePool) put(t *autodiff.Tape) {
	t.Reset()
	tp.pool.Put(t)
}
