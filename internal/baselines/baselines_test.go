package baselines

import (
	"math"
	"testing"

	"sate/internal/constellation"
	"sate/internal/groundnet"
	"sate/internal/orbit"
	"sate/internal/paths"
	"sate/internal/te"
	"sate/internal/topology"
	"sate/internal/traffic"
)

// diamond: flow 0->3 over two 2-hop paths with caps 10 each -> optimum 20 at
// demand 30, or demand at low load.
func diamond(demand float64) *te.Problem {
	links := []topology.Link{
		topology.MakeLink(0, 1, topology.IntraOrbit),
		topology.MakeLink(1, 3, topology.IntraOrbit),
		topology.MakeLink(0, 2, topology.IntraOrbit),
		topology.MakeLink(2, 3, topology.IntraOrbit),
	}
	p := &te.Problem{
		NumNodes: 4,
		Links:    links,
		LinkCap:  []float64{10, 10, 10, 10},
		Flows: []te.FlowDemand{{
			Src: 0, Dst: 3, DemandMbps: demand,
			Paths: []paths.Path{paths.NewPath(0, 1, 3), paths.NewPath(0, 2, 3)},
		}},
	}
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}

// scenario builds a realistic small problem from the full pipeline.
func scenario(tb testing.TB, intensity float64, seed int64) *te.Problem {
	tb.Helper()
	cons := constellation.Toy(5, 6)
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	grid := groundnet.SyntheticPopulation(1)
	seg := groundnet.Build(grid, groundnet.Config{
		Users: 2000, UserClusters: 60, Gateways: 8, Relays: 4, Gamma: 0.15, Seed: seed,
	})
	loc := groundnet.NewSatLocator(cons)
	loc.Update(snap.Pos[:snap.NumSats])
	tg := traffic.NewGenerator(seg, traffic.DefaultConfig(intensity, seed))
	tg.AdvanceTo(20)
	m := traffic.BuildMatrix(tg.ActiveFlows(), loc, orbit.Deg(5), cons.Size())
	if len(m.Entries) == 0 {
		tb.Fatal("no demand generated")
	}
	db := paths.NewDB(cons, snap, 4)
	p, err := te.Build(snap, m, db, te.DefaultBuildConfig())
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func TestLPExactDiamond(t *testing.T) {
	p := diamond(30)
	a, err := LPExact{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Throughput(); math.Abs(got-20) > 1e-6 {
		t.Errorf("throughput = %v want 20 (both paths saturated)", got)
	}
	if v := p.Check(a); v.Any(1e-6) {
		t.Errorf("violations: %+v", v)
	}
	// Low demand: fully satisfied.
	p2 := diamond(5)
	a2, _ := LPExact{}.Solve(p2)
	if got := a2.Throughput(); math.Abs(got-5) > 1e-6 {
		t.Errorf("low-load throughput = %v want 5", got)
	}
}

func TestGKNearOptimal(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		p := scenario(t, 60, seed)
		exact, err := LPExact{}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := GK{Epsilon: 0.05}.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		if v := p.Check(approx); v.Any(1e-6) {
			t.Fatalf("GK infeasible: %+v", v)
		}
		opt := exact.Throughput()
		got := approx.Throughput()
		if opt <= 0 {
			t.Fatal("zero optimum")
		}
		if got < 0.85*opt {
			t.Errorf("seed %d: GK = %.1f vs exact %.1f (%.1f%%)", seed, got, opt, 100*got/opt)
		}
		if got > opt*(1+1e-6) {
			t.Errorf("seed %d: GK above optimum?! %v > %v", seed, got, opt)
		}
	}
}

func TestGKDiamondSplit(t *testing.T) {
	p := diamond(30)
	a, err := GK{Epsilon: 0.03}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Throughput(); got < 18 {
		t.Errorf("GK throughput = %v want ~20", got)
	}
}

func TestLPAutoDispatch(t *testing.T) {
	p := scenario(t, 40, 7)
	// Force GK path with a tiny dense budget.
	small := LPAuto{MaxDenseCells: 1}
	a1, err := small.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Force simplex path.
	big := LPAuto{MaxDenseCells: 1 << 30}
	a2, err := big.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Throughput() > a2.Throughput()*(1+1e-6) {
		t.Errorf("approx beat exact: %v > %v", a1.Throughput(), a2.Throughput())
	}
	if a1.Throughput() < 0.7*a2.Throughput() {
		t.Errorf("GK too weak: %v vs %v", a1.Throughput(), a2.Throughput())
	}
}

func TestPOP(t *testing.T) {
	p := scenario(t, 60, 13)
	pop := &POP{K: 4, Seed: 1}
	a, err := pop.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Check(a); v.Any(1e-6) {
		t.Fatalf("POP infeasible: %+v", v)
	}
	exact, _ := LPExact{}.Solve(p)
	if a.Throughput() > exact.Throughput()*(1+1e-6) {
		t.Error("POP above optimum")
	}
	// POP should be a reasonable fraction of optimal (paper: competitive).
	if a.Throughput() < 0.5*exact.Throughput() {
		t.Errorf("POP = %v vs exact %v", a.Throughput(), exact.Throughput())
	}
	if pop.MaxSubLatency <= 0 {
		t.Error("MaxSubLatency not recorded")
	}
}

func TestPOPSingleGroupMatchesInner(t *testing.T) {
	p := scenario(t, 60, 13)
	a, err := (&POP{K: 1, Seed: 1}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (LPAuto{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// K=1 is one unscaled subproblem over every flow: the partition and the
	// 1/K capacity scaling both vanish, so the result must match the inner
	// solver up to the final feasibility trim's rounding.
	if len(a.X) != len(want.X) {
		t.Fatalf("row count %d vs %d", len(a.X), len(want.X))
	}
	for fi := range a.X {
		for pi := range a.X[fi] {
			if d := math.Abs(a.X[fi][pi] - want.X[fi][pi]); d > 1e-9 {
				t.Fatalf("flow %d path %d: %v vs inner %v", fi, pi, a.X[fi][pi], want.X[fi][pi])
			}
		}
	}
}

func TestPOPMoreGroupsThanFlows(t *testing.T) {
	p := scenario(t, 60, 13)
	k := len(p.Flows) * 3
	pop := &POP{K: k, Seed: 1}
	a, err := pop.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Most groups are empty and every flow competes against capacities
	// scaled by 1/K; the result must stay feasible and, with K far above the
	// flow count, each flow is alone in its group — positive throughput.
	if v := p.Check(a); v.Any(1e-6) {
		t.Fatalf("POP K=%d infeasible: %+v", k, v)
	}
	if len(p.Flows) > 0 && a.Throughput() <= 0 {
		t.Fatalf("POP K=%d: zero throughput on a solvable instance", k)
	}
}

func TestECMPWF(t *testing.T) {
	p := scenario(t, 60, 17)
	a, err := ECMPWF{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Check(a); v.Any(1e-6) {
		t.Fatalf("ECMP-WF infeasible: %+v", v)
	}
	exact, _ := LPExact{}.Solve(p)
	if a.Throughput() > exact.Throughput()*(1+1e-6) {
		t.Error("ECMP-WF above optimum")
	}
	if a.Throughput() <= 0 {
		t.Error("ECMP-WF allocated nothing")
	}
}

func TestECMPWFDiamondEqualSplit(t *testing.T) {
	p := diamond(12)
	a, err := ECMPWF{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Both paths have equal hops: traffic splits equally, 6 and 6.
	if math.Abs(a.X[0][0]-a.X[0][1]) > 1e-6 {
		t.Errorf("unequal split: %v", a.X[0])
	}
	if got := a.Throughput(); math.Abs(got-12) > 1e-6 {
		t.Errorf("throughput = %v want 12", got)
	}
}

func TestBackpressureDelivers(t *testing.T) {
	p := diamond(10)
	bp := Backpressure{SlotSec: 0.05, HorizonSec: 20}
	frac := bp.Evaluate(p)
	if frac <= 0.3 || frac > 1 {
		t.Errorf("backpressure satisfied = %v", frac)
	}
}

func TestBackpressureWorseUnderLoad(t *testing.T) {
	light := Backpressure{SlotSec: 0.05, HorizonSec: 15}.Evaluate(diamond(5))
	heavy := Backpressure{SlotSec: 0.05, HorizonSec: 15}.Evaluate(diamond(200))
	if heavy > light+1e-9 {
		t.Errorf("backpressure better under overload: %v vs %v", heavy, light)
	}
	if heavy > 0.25 {
		t.Errorf("heavy overload should saturate: %v", heavy)
	}
}

func TestBackpressureEmptyProblem(t *testing.T) {
	p := &te.Problem{NumNodes: 2}
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if frac := (Backpressure{}).Evaluate(p); frac != 1 {
		t.Errorf("empty problem satisfied = %v want 1", frac)
	}
}

func TestTimedWrapper(t *testing.T) {
	p := diamond(10)
	tm := &Timed{Inner: LPExact{}}
	if _, err := tm.Solve(p); err != nil {
		t.Fatal(err)
	}
	if tm.LastLatency <= 0 {
		t.Error("latency not recorded")
	}
	if tm.Name() != "lp-exact" {
		t.Errorf("name = %q", tm.Name())
	}
}

func TestSolversOrderingUnderLoad(t *testing.T) {
	// The quality ordering the paper reports offline: exact >= GK ~ POP >=
	// ECMP-WF (heuristics below optimal under load).
	p := scenario(t, 120, 23)
	exact, err := LPExact{}.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	gk, _ := GK{Epsilon: 0.05}.Solve(p)
	pop, _ := (&POP{K: 4, Seed: 2}).Solve(p)
	ecmp, _ := ECMPWF{}.Solve(p)
	o := exact.Throughput()
	for name, a := range map[string]*te.Allocation{"gk": gk, "pop": pop, "ecmp": ecmp} {
		if a.Throughput() > o*(1+1e-6) {
			t.Errorf("%s exceeded optimum: %v > %v", name, a.Throughput(), o)
		}
	}
}

func TestMaxMinFairFeasibleAndFairer(t *testing.T) {
	p := scenario(t, 120, 31)
	mm, err := (MaxMinFair{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Check(mm); v.Any(1e-6) {
		t.Fatalf("max-min infeasible: %+v", v)
	}
	exact, err := (LPExact{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if mm.Throughput() > exact.Throughput()*(1+1e-6) {
		t.Error("max-min above throughput optimum")
	}
	// The fairness-first allocation should not be less fair than the
	// throughput-maximizing one (Jain's index).
	jMM := p.JainIndex(mm)
	jLP := p.JainIndex(exact)
	if jMM < jLP-0.05 {
		t.Errorf("max-min less fair than LP: %.3f vs %.3f", jMM, jLP)
	}
	if mm.Throughput() <= 0 {
		t.Error("max-min allocated nothing")
	}
}

func TestMaxMinFairDiamond(t *testing.T) {
	p := diamond(8)
	a, err := (MaxMinFair{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Single flow under capacity: fully satisfied.
	if got := a.Throughput(); math.Abs(got-8) > 1e-6 {
		t.Errorf("throughput = %v want 8", got)
	}
}

func TestJainAndLogUtility(t *testing.T) {
	p := diamond(10)
	a, _ := (LPExact{}).Solve(p)
	if j := p.JainIndex(a); math.Abs(j-1) > 1e-9 {
		t.Errorf("single satisfied flow Jain = %v want 1", j)
	}
	if u := p.LogUtility(a); u <= 0 {
		t.Errorf("log utility = %v", u)
	}
	zero := te.NewAllocation(p)
	if u := p.LogUtility(zero); u != 0 {
		t.Errorf("zero allocation utility = %v", u)
	}
}
