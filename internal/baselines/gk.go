package baselines

import (
	"math"

	"sate/internal/solve"
	"sate/internal/te"
)

// GK is a Garg–Könemann-style multiplicative-weights solver for the TE
// packing LP, with Fleischer's phase organisation: per phase, every flow
// keeps routing along its cheapest candidate path while that path's weighted
// length stays within (1+eps) of the phase lower bound. The final primal is
// scaled to feasibility by the standard log factor and trimmed.
//
// Guarantee: (1 - O(eps)) of optimal. At eps = 0.05 the solutions are within
// a few percent of the simplex optimum (cross-checked in tests), with runtime
// polynomial in the number of resources — the scalable "commercial solver"
// path for mega-constellation instances.
type GK struct {
	Epsilon float64
}

// Name implements Solver.
func (GK) Name() string { return "gk" }

// Solve implements Solver.
func (g GK) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	defer solve.Begin(solve.Build(opts...), "gk").End()
	eps := g.Epsilon
	if eps <= 0 || eps >= 1 {
		eps = 0.1
	}
	_, bounds, colOf := buildRows(p)
	m := len(bounds)
	alloc := te.NewAllocation(p)
	if m == 0 || p.NumPaths() == 0 {
		return alloc, nil
	}

	// Column cache: resource rows per (flow, path).
	type column struct {
		fi, pi int
		rows   []int
	}
	cols := make([][]column, len(p.Flows)) // per flow
	for fi := range p.Flows {
		for pi := range p.Flows[fi].Paths {
			cols[fi] = append(cols[fi], column{fi, pi, colOf(fi, pi)})
		}
	}

	delta := (1 + eps) * math.Pow((1+eps)*float64(m), -1/eps)
	y := make([]float64, m)
	for i := range y {
		y[i] = delta / bounds[i]
	}
	// D = sum_i y_i * b_i; algorithm stops when D >= 1.
	d := delta * float64(m)

	x := make([][]float64, len(p.Flows))
	for fi := range p.Flows {
		x[fi] = make([]float64, len(p.Flows[fi].Paths))
	}

	lenOf := func(c column) float64 {
		var s float64
		for _, r := range c.rows {
			s += y[r]
		}
		return s
	}

	// Initial phase bound: the global minimum column length.
	alpha := math.Inf(1)
	for fi := range cols {
		for _, c := range cols[fi] {
			if l := lenOf(c); l < alpha {
				alpha = l
			}
		}
	}
	if math.IsInf(alpha, 1) {
		return alloc, nil
	}

	maxPhases := int(math.Ceil(math.Log(1/delta)/math.Log(1+eps))) + 2
	for phase := 0; phase < maxPhases && d < 1; phase++ {
		for fi := range cols {
			if d >= 1 {
				break
			}
			for {
				// Cheapest candidate path of this flow.
				best := -1
				bestLen := math.Inf(1)
				for ci, c := range cols[fi] {
					if l := lenOf(c); l < bestLen {
						bestLen, best = l, ci
					}
				}
				if best < 0 || bestLen > (1+eps)*alpha {
					break
				}
				c := cols[fi][best]
				// Bottleneck amount over the column's resources.
				amt := math.Inf(1)
				for _, r := range c.rows {
					if bounds[r] < amt {
						amt = bounds[r]
					}
				}
				if amt <= 0 || math.IsInf(amt, 1) {
					break
				}
				x[c.fi][c.pi] += amt
				for _, r := range c.rows {
					grow := eps * amt / bounds[r]
					d += y[r] * bounds[r] * grow
					y[r] *= 1 + grow
				}
				if d >= 1 {
					break
				}
			}
		}
		alpha *= 1 + eps
	}

	// Scale to feasibility: every resource r satisfies
	// sum_cols x * 1 <= b_r * log_{1+eps}(1/delta).
	scale := math.Log(1/delta) / math.Log(1+eps)
	if scale <= 0 {
		scale = 1
	}
	for fi := range x {
		for pi := range x[fi] {
			alloc.X[fi][pi] = x[fi][pi] / scale
		}
	}
	p.Trim(alloc) // exact feasibility (scaling bound is slightly loose)
	return alloc, nil
}
