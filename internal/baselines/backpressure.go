package baselines

import (
	"sate/internal/te"
	"sate/internal/topology"
)

// Backpressure implements distributed backpressure satellite routing [56,64]:
// a time-slotted queue simulation in which every link serves the commodity
// (destination) with the largest queue differential. It has no centralized
// controller and no preconfigured paths; the paper compares only its
// performance (not computational latency), which this type exposes through
// Evaluate: the fraction of injected demand delivered over a horizon.
type Backpressure struct {
	// SlotSec is the slot duration (default 0.1 s).
	SlotSec float64
	// HorizonSec is the simulated duration (default 30 s).
	HorizonSec float64
}

// Name identifies the scheme.
func (Backpressure) Name() string { return "backpressure" }

// Evaluate runs the queue simulation against a problem's links and demands
// and returns the satisfied-demand fraction (delivered / injected).
func (bp Backpressure) Evaluate(p *te.Problem) float64 {
	slot := bp.SlotSec
	if slot <= 0 {
		slot = 0.1
	}
	horizon := bp.HorizonSec
	if horizon <= 0 {
		horizon = 30
	}
	steps := int(horizon / slot)
	if steps < 1 {
		steps = 1
	}

	// Commodities: distinct destinations.
	dstIdx := make(map[topology.NodeID]int)
	for _, f := range p.Flows {
		if _, ok := dstIdx[f.Dst]; !ok {
			dstIdx[f.Dst] = len(dstIdx)
		}
	}
	nc := len(dstIdx)
	if nc == 0 {
		return 1
	}
	n := p.NumNodes
	// queues[node*nc + commodity] in Mbit.
	queues := make([]float64, n*nc)

	injectedPerSlot := make([]float64, n*nc)
	var totalInjectRate float64
	for _, f := range p.Flows {
		ci := dstIdx[f.Dst]
		injectedPerSlot[int(f.Src)*nc+ci] += f.DemandMbps * slot
		totalInjectRate += f.DemandMbps
	}
	if totalInjectRate == 0 {
		return 1
	}

	var delivered float64
	for s := 0; s < steps; s++ {
		// Inject.
		for i, v := range injectedPerSlot {
			queues[i] += v
		}
		// Serve each link: pick the commodity with max differential and move
		// up to cap*slot in the beneficial direction. Each link decides
		// independently on the queue state at slot start (distributed).
		for li, l := range p.Links {
			cap := p.LinkCap[li] * slot
			bestC, bestDiff, bestDir := -1, 0.0, 0
			for c := 0; c < nc; c++ {
				qa := queues[int(l.A)*nc+c]
				qb := queues[int(l.B)*nc+c]
				if d := qa - qb; d > bestDiff {
					bestDiff, bestC, bestDir = d, c, 0
				}
				if d := qb - qa; d > bestDiff {
					bestDiff, bestC, bestDir = d, c, 1
				}
			}
			if bestC < 0 {
				continue
			}
			from, to := int(l.A), int(l.B)
			if bestDir == 1 {
				from, to = to, from
			}
			amt := queues[from*nc+bestC]
			if amt > cap {
				amt = cap
			}
			queues[from*nc+bestC] -= amt
			queues[to*nc+bestC] += amt
		}
		// Drain commodities that reached their destination.
		for dst, c := range dstIdx {
			i := int(dst)*nc + c
			delivered += queues[i]
			queues[i] = 0
		}
	}
	injected := totalInjectRate * slot * float64(steps)
	frac := delivered / injected
	if frac > 1 {
		frac = 1
	}
	return frac
}
