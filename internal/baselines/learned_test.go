package baselines

import (
	"testing"

	"sate/internal/autodiff"
	"sate/internal/constellation"
	"sate/internal/te"
	"sate/internal/topology"
)

// tealScenario builds a Teal model bound to the scenario's snapshot/paths.
func tealScenario(t *testing.T, p *te.Problem, snap *topology.Snapshot, memLimit int64) (*Teal, error) {
	t.Helper()
	pp := make(map[[2]topology.NodeID][][]topology.NodeID)
	for _, f := range p.Flows {
		var ps [][]topology.NodeID
		for _, path := range f.Paths {
			ps = append(ps, path.Nodes)
		}
		pp[[2]topology.NodeID{f.Src, f.Dst}] = ps
	}
	return NewTeal(snap, pp, 4, 16, memLimit, 1)
}

func scenarioWithSnap(t *testing.T, intensity float64, seed int64) (*te.Problem, *topology.Snapshot) {
	t.Helper()
	cons := constellation.Toy(5, 6)
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	p := scenario(t, intensity, seed)
	_ = cons
	return p, snap
}

func TestTealMemoryGate(t *testing.T) {
	p, snap := scenarioWithSnap(t, 50, 3)
	// Starlink-scale dense layout must be refused at a realistic limit.
	if _, err := tealScenario(t, p, snap, 1<<20); err == nil {
		t.Error("expected memory-gate error at 1 MiB limit")
	}
	// Generous limit builds fine.
	if _, err := tealScenario(t, p, snap, 1<<33); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
	// Volume formula mirrors N^2 growth.
	if TealDataPointBytes(4236, 10, 32) <= 1000*TealDataPointBytes(66, 10, 32)/2 {
		t.Error("dense volume should grow ~N^2")
	}
}

func TestTealSolveFeasibleAndTrains(t *testing.T) {
	p, snap := scenarioWithSnap(t, 60, 5)
	teal, err := tealScenario(t, p, snap, 1<<33)
	if err != nil {
		t.Fatal(err)
	}
	a, err := teal.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Check(a); v.Any(1e-6) {
		t.Fatalf("Teal infeasible: %+v", v)
	}
	ref, err := (LPExact{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	opt := autodiff.NewAdam(5e-3, teal.Params()...)
	var first, last float64
	for i := 0; i < 30; i++ {
		l, err := teal.TrainStep(p, ref, opt)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = l
		}
		last = l
	}
	if last >= first {
		t.Errorf("Teal loss did not decrease: %v -> %v", first, last)
	}
}

func TestHarpSolveFeasible(t *testing.T) {
	p, _ := scenarioWithSnap(t, 60, 7)
	h := NewHarp(16, 1)
	a, err := h.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Check(a); v.Any(1e-6) {
		t.Fatalf("HARP infeasible: %+v", v)
	}
	if a.Throughput() <= 0 {
		t.Error("HARP allocated nothing")
	}
}

func TestHarpTrainingReducesMLU(t *testing.T) {
	p, _ := scenarioWithSnap(t, 80, 9)
	h := NewHarp(16, 2)
	opt := autodiff.NewAdam(3e-3, h.Params()...)
	opt.ClipNorm = 5
	var first, last float64
	for i := 0; i < 25; i++ {
		mlu, err := h.TrainStep(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = mlu
		}
		last = mlu
	}
	if last > first*1.05 {
		t.Errorf("HARP MLU did not improve: %v -> %v", first, last)
	}
}

func TestHarpAttentionCostGrowsWithScale(t *testing.T) {
	small, _ := scenarioWithSnap(t, 40, 11)
	big := scenario(t, 120, 11)
	cs := HarpAttentionCost(small)
	cb := HarpAttentionCost(big)
	if cs <= 0 || cb <= 0 {
		t.Fatal("zero attention cost")
	}
	// More flows -> more paths -> bigger P x E attention.
	if cb <= cs {
		t.Logf("note: attention cost small=%d big=%d", cs, cb)
	}
}

func TestTealStalePathsDegrade(t *testing.T) {
	// Bind Teal to t=0 paths, then evaluate on a problem built much later:
	// some frozen paths no longer match and get no allocation.
	cons := constellation.Toy(5, 6)
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap0 := gen.Snapshot(0)
	p := scenario(t, 60, 13)
	teal, err := tealScenario(t, p, snap0, 1<<33)
	if err != nil {
		t.Fatal(err)
	}
	a, err := teal.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Feasibility still guaranteed by trim.
	if v := p.Check(a); v.Any(1e-6) {
		t.Fatalf("infeasible: %+v", v)
	}
}
