package baselines

import (
	"math"

	"sate/internal/solve"
	"sate/internal/te"
)

// MaxMinFair implements progressive-filling max-min fair allocation over the
// candidate paths: all unfrozen flows' rates rise together; a flow freezes
// when its demand is met or every incremental path it uses hits a saturated
// resource. This is the fairness-first point of the efficiency-fairness
// trade-off the paper discusses in Appendix A (Eq. 3's utility objectives);
// it complements the throughput-maximising solvers.
type MaxMinFair struct {
	// Rounds bounds the filling iterations (default 128).
	Rounds int
}

// Name implements Solver.
func (MaxMinFair) Name() string { return "maxmin-fair" }

// Solve implements Solver.
func (s MaxMinFair) Solve(p *te.Problem, opts ...solve.Option) (*te.Allocation, error) {
	defer solve.Begin(solve.Build(opts...), "maxmin-fair").End()
	rounds := s.Rounds
	if rounds <= 0 {
		rounds = 128
	}
	alloc := te.NewAllocation(p)
	_, bounds, colOf := buildRows(p)
	residual := append([]float64(nil), bounds...)

	type fstate struct {
		rows   [][]int // resource rows per candidate path
		frozen bool
	}
	fs := make([]fstate, len(p.Flows))
	active := 0
	for fi, f := range p.Flows {
		if len(f.Paths) == 0 {
			fs[fi].frozen = true
			continue
		}
		for pi := range f.Paths {
			fs[fi].rows = append(fs[fi].rows, colOf(fi, pi))
		}
		active++
	}

	for r := 0; r < rounds && active > 0; r++ {
		// Each unfrozen flow routes its increment along its single best
		// (most-residual-bottleneck) path this round; compute the largest
		// uniform increment all can take together.
		bestPath := make([]int, len(p.Flows))
		users := make([]float64, len(residual))
		for fi := range fs {
			st := &fs[fi]
			if st.frozen {
				continue
			}
			bestPath[fi] = -1
			bestBottleneck := 0.0
			for pi, rows := range st.rows {
				b := math.Inf(1)
				for _, rr := range rows {
					if residual[rr] < b {
						b = residual[rr]
					}
				}
				if b > bestBottleneck {
					bestBottleneck, bestPath[fi] = b, pi
				}
			}
			if bestPath[fi] < 0 || bestBottleneck <= 1e-9 {
				st.frozen = true
				active--
				continue
			}
			for _, rr := range st.rows[bestPath[fi]] {
				users[rr]++
			}
		}
		if active == 0 {
			break
		}
		inc := math.Inf(1)
		for rr := range residual {
			if users[rr] > 0 {
				if v := residual[rr] / users[rr]; v < inc {
					inc = v
				}
			}
		}
		if math.IsInf(inc, 1) || inc <= 1e-12 {
			break
		}
		for fi := range fs {
			st := &fs[fi]
			if st.frozen || bestPath[fi] < 0 {
				continue
			}
			alloc.X[fi][bestPath[fi]] += inc
			for _, rr := range st.rows[bestPath[fi]] {
				residual[rr] -= inc
			}
		}
		// Freeze flows whose chosen path hit a saturated resource (includes
		// the demand row, so met demands freeze too).
		for fi := range fs {
			st := &fs[fi]
			if st.frozen || bestPath[fi] < 0 {
				continue
			}
			for _, rr := range st.rows[bestPath[fi]] {
				if residual[rr] <= 1e-9 {
					// Only freeze if ALL paths are exhausted; otherwise the
					// next round re-picks a path.
					allDead := true
					for _, rows := range st.rows {
						ok := true
						for _, r2 := range rows {
							if residual[r2] <= 1e-9 {
								ok = false
								break
							}
						}
						if ok {
							allDead = false
							break
						}
					}
					if allDead {
						st.frozen = true
						active--
					}
					break
				}
			}
		}
	}
	p.Trim(alloc)
	return alloc, nil
}
