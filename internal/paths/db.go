package paths

import (
	"sort"

	"sate/internal/constellation"
	"sate/internal/par"
	"sate/internal/topology"
)

// Pair identifies a source-destination satellite pair.
type Pair struct {
	Src, Dst constellation.SatID
}

// DB is the preconfigured-path database of the TE workflow (Sec. 2.2 step 3).
// It lazily computes k candidate paths per requested pair and maintains them
// incrementally: when the topology changes, only paths that traverse a
// removed link are recomputed (Sec. 4: "<2% of paths per second, 56 ms").
//
// Bulk operations (Precompute, the recompute inside Update) fan the
// independent per-pair k-shortest searches out across the par worker pool;
// only the link-index merge runs serially. DB itself is not safe for
// concurrent use — the parallelism is internal.
type DB struct {
	Cons *constellation.Constellation
	K    int

	router *GridRouter
	snap   *topology.Snapshot
	paths  map[Pair][]Path
	// linkIndex maps a link key to the pairs whose current paths use it.
	linkIndex map[uint64]map[Pair]struct{}

	// Stats accumulates incremental-update accounting.
	Stats UpdateStats
}

// UpdateStats records how much work incremental updates performed.
type UpdateStats struct {
	Updates         int // calls to Update
	PairsTotal      int // pair-path sets held at last update
	PairsRecomputed int // pair-path sets recomputed across all updates
}

// NewDB creates a path database over an initial snapshot. Any warm pairs are
// precomputed immediately (in parallel across the worker pool).
func NewDB(c *constellation.Constellation, s *topology.Snapshot, k int, warm ...Pair) *DB {
	db := &DB{
		Cons:      c,
		K:         k,
		router:    NewGridRouter(c, s),
		snap:      s,
		paths:     make(map[Pair][]Path),
		linkIndex: make(map[uint64]map[Pair]struct{}),
	}
	if len(warm) > 0 {
		db.Precompute(warm)
	}
	return db
}

// Snapshot returns the snapshot the database currently reflects.
func (db *DB) Snapshot() *topology.Snapshot { return db.snap }

// Paths returns the candidate paths for a pair, computing them on first use.
//
//sate:hotpath per-flow candidate lookup in the problem-build loop
func (db *DB) Paths(src, dst constellation.SatID) []Path {
	p := Pair{src, dst}
	if ps, ok := db.paths[p]; ok {
		return ps
	}
	//lint:ignore hotpath-no-alloc cache-miss branch computes a pair's paths once; replay steady state hits the cache above
	ps := db.router.KShortest(src, dst, db.K)
	//lint:ignore hotpath-no-alloc cache-miss branch computes a pair's paths once; replay steady state hits the cache above
	db.paths[p] = ps
	//lint:ignore hotpath-no-alloc cache-miss branch computes a pair's paths once; replay steady state hits the cache above
	db.index(p, ps)
	return ps
}

// Precompute computes and caches the candidate paths of every not-yet-known
// pair in the list, fanning the independent searches out across the worker
// pool. Afterwards Paths for those pairs is a cache hit. Duplicate and
// already-known pairs are skipped.
func (db *DB) Precompute(pairs []Pair) {
	// Early out without allocating: in a replay loop most cycles request
	// pair sets that are already fully cached.
	nMissing := 0
	for _, p := range pairs {
		if _, ok := db.paths[p]; !ok {
			nMissing++
		}
	}
	if nMissing == 0 {
		return
	}
	missing := make([]Pair, 0, nMissing)
	seen := make(map[Pair]struct{}, nMissing)
	for _, p := range pairs {
		if _, ok := db.paths[p]; ok {
			continue
		}
		if _, ok := seen[p]; ok {
			continue
		}
		seen[p] = struct{}{}
		missing = append(missing, p)
	}
	results := db.computeAll(missing)
	for i, p := range missing {
		db.paths[p] = results[i]
		db.index(p, results[i])
	}
}

// computeAll runs the k-shortest search for each pair concurrently. The
// searches share only the read-only router (its lazy generic graph is built
// under a sync.Once), and each writes its own result slot, so the output is
// identical to a serial loop.
func (db *DB) computeAll(pairs []Pair) [][]Path {
	out := make([][]Path, len(pairs))
	par.For(len(pairs), 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = db.router.KShortest(pairs[i].Src, pairs[i].Dst, db.K)
		}
	})
	return out
}

func (db *DB) index(pair Pair, ps []Path) {
	for _, p := range ps {
		for _, l := range p.Links() {
			k := linkKey(l)
			m := db.linkIndex[k]
			if m == nil {
				m = make(map[Pair]struct{})
				db.linkIndex[k] = m
			}
			m[pair] = struct{}{}
		}
	}
}

func (db *DB) unindex(pair Pair, ps []Path) {
	for _, p := range ps {
		for _, l := range p.Links() {
			k := linkKey(l)
			if m := db.linkIndex[k]; m != nil {
				delete(m, pair)
				if len(m) == 0 {
					delete(db.linkIndex, k)
				}
			}
		}
	}
}

// Update moves the database to a new snapshot, recomputing only the pairs
// whose paths traverse a removed link. The router is rebased incrementally
// over the link churn instead of rebuilt from scratch. The independent
// recomputations run in parallel; the index merge is serial and processes
// pairs in sorted order so the update is deterministic. It returns the
// number of pairs recomputed.
//
//sate:hotpath incremental path refresh each topology cycle
func (db *DB) Update(s *topology.Snapshot) int {
	added, removed := db.snap.Diff(s)
	db.snap = s
	db.router.Rebase(s, added, removed)
	n := 0
	if len(added) > 0 || len(removed) > 0 {
		n = db.recomputeDirty(removed)
	}
	// With no link churn (positions may still have moved) every cached path
	// remains valid and nothing is recomputed.
	db.Stats.Updates++
	db.Stats.PairsTotal = len(db.paths)
	db.Stats.PairsRecomputed += n
	return n
}

// recomputeDirty recomputes every pair whose cached paths traverse a removed
// link, fanning the searches out across the worker pool and merging results
// serially in sorted pair order (deterministic). Returns the pair count.
//
//lint:ignore hotpath-no-alloc link-churn branch: work and allocation are proportional to the dirty pairs (<2% per cycle); no-churn cycles never enter
func (db *DB) recomputeDirty(removed []topology.Link) int {
	dirtySet := make(map[Pair]struct{})
	for _, l := range removed {
		for pair := range db.linkIndex[linkKey(l)] {
			dirtySet[pair] = struct{}{}
		}
	}
	dirty := make([]Pair, 0, len(dirtySet))
	for pair := range dirtySet {
		dirty = append(dirty, pair)
	}
	sort.Slice(dirty, func(i, j int) bool {
		if dirty[i].Src != dirty[j].Src {
			return dirty[i].Src < dirty[j].Src
		}
		return dirty[i].Dst < dirty[j].Dst
	})
	if len(dirty) > 0 {
		// Build the generic fallback graph before the fan-out so the
		// parallel searches do not serialise behind its lazy construction.
		db.router.Prewarm()
	}
	results := db.computeAll(dirty)
	for i, pair := range dirty {
		db.unindex(pair, db.paths[pair])
		db.paths[pair] = results[i]
		db.index(pair, results[i])
	}
	return len(dirty)
}

// KnownPairs returns the number of pairs currently held.
func (db *DB) KnownPairs() int { return len(db.paths) }

// ObsoleteFraction reports, for a set of configured paths computed against a
// reference snapshot, the fraction that are no longer valid in the given
// snapshot (Fig. 4 b).
func ObsoleteFraction(configured []Path, s *topology.Snapshot) float64 {
	if len(configured) == 0 {
		return 0
	}
	links := s.LinkSet()
	obsolete := 0
	for _, p := range configured {
		if !p.ValidIn(links) {
			obsolete++
		}
	}
	return float64(obsolete) / float64(len(configured))
}
