package paths

import (
	"testing"

	"sate/internal/constellation"
	"sate/internal/topology"
)

// TestGridKShortestSteadyAllocs pins the steady-state allocation cost of a
// pooled KShortest query. A warm query allocates only the returned paths
// (the result slice plus each path's node storage — a few dozen objects for
// k=10); the search itself runs on the router's recycled slab heap and
// scratch. The bound is a generous margin over the ~80 objects a
// long-route query returns, and two orders of magnitude below the
// thousands/op that BENCH_2026-08-05.json recorded when a short -benchtime
// run amortised the lazily-built generic fallback graph into the per-query
// figure (see BenchmarkGridKShortestStarlink's Prewarm).
func TestGridKShortestSteadyAllocs(t *testing.T) {
	cons := constellation.StarlinkPhase1()
	gen := topology.NewGenerator(cons, topology.DefaultConfig(topology.CrossShellLasers))
	snap := gen.Snapshot(0)
	router := NewGridRouter(cons, snap)
	router.Prewarm()
	const limit = 128
	for _, q := range [][2]int{{0, cons.Size() / 2}, {97, 390}, {485, 1}} {
		a, c := constellation.SatID(q[0]), constellation.SatID(q[1])
		router.KShortest(a, c, 10) // warm per-query pools
		n := testing.AllocsPerRun(20, func() { router.KShortest(a, c, 10) })
		if n > limit {
			t.Errorf("KShortest(%d, %d, 10): %.0f allocs/query, want <= %d", a, c, n, limit)
		}
	}
}
