package paths

import (
	"container/heap"
	"math"

	"sate/internal/orbit"
	"sate/internal/topology"
)

// Graph is an adjacency view over a snapshot used by the generic algorithms.
type Graph struct {
	N   int
	Adj [][]topology.NodeID
}

// GraphFrom builds a Graph from a snapshot.
func GraphFrom(s *topology.Snapshot) *Graph {
	return &Graph{N: s.NumNodes, Adj: s.Adjacency()}
}

// KShortest returns up to k loop-free minimum-hop-first paths from src to dst
// using the label-correcting k-shortest-walk algorithm (each node may be
// settled up to k times; walks with repeated nodes are discarded). Paths are
// returned in nondecreasing hop count. This is the generic engine used when
// grid enumeration does not apply (e.g. links missing at high latitudes).
func (g *Graph) KShortest(src, dst topology.NodeID, k int) []Path {
	if src == dst || k <= 0 {
		return nil
	}
	pq := &labelHeap{}
	heap.Push(pq, &labelEntry{l: &pathLabel{node: src}, cost: 0})
	count := make([]int, g.N)
	var out []Path
	for pq.Len() > 0 {
		e := heap.Pop(pq).(*labelEntry)
		l := e.l
		if count[l.node] >= k {
			continue
		}
		count[l.node]++
		if l.node == dst {
			out = append(out, l.path())
			if len(out) >= k {
				return out
			}
			continue
		}
		for _, nb := range g.Adj[l.node] {
			if l.contains(nb) {
				continue // loop-free walks only
			}
			heap.Push(pq, &labelEntry{l: &pathLabel{node: nb, hops: l.hops + 1, prev: l}, cost: l.hops + 1})
		}
	}
	return out
}

// pathLabel is a node on a partial-path chain in the k-shortest search.
type pathLabel struct {
	node topology.NodeID
	hops int
	prev *pathLabel
}

// contains reports whether the chain up to this label visits n.
func (l *pathLabel) contains(n topology.NodeID) bool {
	for x := l; x != nil; x = x.prev {
		if x.node == n {
			return true
		}
	}
	return false
}

// path materializes the chain as a Path.
func (l *pathLabel) path() Path {
	var rev []topology.NodeID
	for x := l; x != nil; x = x.prev {
		rev = append(rev, x.node)
	}
	nodes := make([]topology.NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes}
}

type labelEntry struct {
	l    *pathLabel
	cost int
}

type labelHeap []*labelEntry

func (h labelHeap) Len() int            { return len(h) }
func (h labelHeap) Less(i, j int) bool  { return h[i].cost < h[j].cost }
func (h labelHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *labelHeap) Push(x interface{}) { *h = append(*h, x.(*labelEntry)) }
func (h *labelHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// ShortestHops runs a BFS from src and returns hop distances to all nodes
// (math.MaxInt32 where unreachable).
func (g *Graph) ShortestHops(src topology.NodeID) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = math.MaxInt32
	}
	dist[src] = 0
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if dist[v] == math.MaxInt32 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns one minimum-hop path from src to dst, or false if
// disconnected.
func (g *Graph) ShortestPath(src, dst topology.NodeID) (Path, bool) {
	if src == dst {
		return Path{Nodes: []topology.NodeID{src}}, true
	}
	prev := make([]topology.NodeID, g.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		for _, v := range g.Adj[u] {
			if prev[v] == -1 {
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	if prev[dst] == -1 {
		return Path{}, false
	}
	var rev []topology.NodeID
	for x := dst; ; x = prev[x] {
		rev = append(rev, x)
		if x == src {
			break
		}
	}
	nodes := make([]topology.NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes}, true
}

// YenKShortest computes the k shortest loopless paths with Yen's algorithm
// [Yen 1971]. It is the classical method the paper identifies as too slow for
// mega-constellations (Appendix C); it serves as the correctness baseline for
// the grid algorithm and as a latency comparison point.
func (g *Graph) YenKShortest(src, dst topology.NodeID, k int) []Path {
	first, ok := g.ShortestPath(src, dst)
	if !ok || k <= 0 {
		return nil
	}
	A := []Path{first}
	var B []Path
	for len(A) < k {
		prev := A[len(A)-1]
		for i := 0; i < prev.Hops(); i++ {
			spurNode := prev.Nodes[i]
			rootPath := Path{Nodes: append([]topology.NodeID(nil), prev.Nodes[:i+1]...)}
			// Ban links used by previous A-paths sharing the root, and ban
			// root nodes (except the spur) to force looplessness.
			banned := make(map[[2]topology.NodeID]bool)
			for _, a := range A {
				if i < len(a.Nodes)-1 && samePrefix(a.Nodes, prev.Nodes, i+1) {
					banned[[2]topology.NodeID{a.Nodes[i], a.Nodes[i+1]}] = true
					banned[[2]topology.NodeID{a.Nodes[i+1], a.Nodes[i]}] = true
				}
			}
			blockedNodes := make(map[topology.NodeID]bool)
			for _, n := range rootPath.Nodes[:len(rootPath.Nodes)-1] {
				blockedNodes[n] = true
			}
			spur, ok := g.shortestPathFiltered(spurNode, dst, banned, blockedNodes)
			if !ok {
				continue
			}
			if total, ok := Concat(rootPath, spur); ok {
				B = append(B, total)
			}
		}
		if len(B) == 0 {
			break
		}
		B = Dedup(B)
		// Pick the shortest candidate not already in A.
		bestIdx := -1
		for idx, c := range B {
			if containsPath(A, c) {
				continue
			}
			if bestIdx == -1 || c.Hops() < B[bestIdx].Hops() {
				bestIdx = idx
			}
		}
		if bestIdx == -1 {
			break
		}
		A = append(A, B[bestIdx])
		B = append(B[:bestIdx], B[bestIdx+1:]...)
	}
	return A
}

func samePrefix(a, b []topology.NodeID, n int) bool {
	if len(a) < n || len(b) < n {
		return false
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, p Path) bool {
	k := p.Key()
	for _, q := range ps {
		if q.Key() == k {
			return true
		}
	}
	return false
}

func (g *Graph) shortestPathFiltered(src, dst topology.NodeID, bannedEdges map[[2]topology.NodeID]bool, blockedNodes map[topology.NodeID]bool) (Path, bool) {
	prev := make([]topology.NodeID, g.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		for _, v := range g.Adj[u] {
			if prev[v] != -1 || blockedNodes[v] || bannedEdges[[2]topology.NodeID{u, v}] {
				continue
			}
			prev[v] = u
			queue = append(queue, v)
		}
	}
	if dst == src {
		return Path{Nodes: []topology.NodeID{src}}, true
	}
	if prev[dst] == -1 {
		return Path{}, false
	}
	var rev []topology.NodeID
	for x := dst; ; x = prev[x] {
		rev = append(rev, x)
		if x == src {
			break
		}
	}
	nodes := make([]topology.NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes}, true
}

// ShortestPathByDistance returns the minimum geometric-length path between
// two nodes using Dijkstra over Euclidean link lengths. This is the
// delay-optimal route (propagation delay is length/c); the hop-count paths of
// the grid algorithm optimise switching cost instead.
func (g *Graph) ShortestPathByDistance(src, dst topology.NodeID, pos []orbit.Vec3) (Path, float64, bool) {
	if src == dst {
		return Path{Nodes: []topology.NodeID{src}}, 0, true
	}
	dist := make([]float64, g.N)
	prev := make([]topology.NodeID, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := &distHeap{{node: src}}
	for pq.Len() > 0 {
		e := heap.Pop(pq).(distEntry)
		if e.dist > dist[e.node] {
			continue
		}
		if e.node == dst {
			break
		}
		for _, nb := range g.Adj[e.node] {
			d := e.dist + pos[e.node].Distance(pos[nb])
			if d < dist[nb] {
				dist[nb] = d
				prev[nb] = e.node
				heap.Push(pq, distEntry{node: nb, dist: d})
			}
		}
	}
	if prev[dst] == -1 {
		return Path{}, 0, false
	}
	var rev []topology.NodeID
	for x := dst; ; x = prev[x] {
		rev = append(rev, x)
		if x == src {
			break
		}
	}
	nodes := make([]topology.NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes}, dist[dst], true
}

type distEntry struct {
	node topology.NodeID
	dist float64
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
