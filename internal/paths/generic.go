package paths

import (
	"container/heap"
	"math"
	"sync"

	"sate/internal/orbit"
	"sate/internal/topology"
)

// Graph is an adjacency view over a snapshot used by the generic algorithms.
type Graph struct {
	N   int
	Adj [][]topology.NodeID
}

// GraphFrom builds a Graph from a snapshot.
//
//lint:ignore hotpath-no-alloc builds the generic fallback graph once per rebase (lazily, under the router lock)
func GraphFrom(s *topology.Snapshot) *Graph {
	return &Graph{N: s.NumNodes, Adj: s.Adjacency()}
}

// KShortest returns up to k loop-free minimum-hop-first paths from src to dst
// using the label-correcting k-shortest-walk algorithm (each node may be
// settled up to k times; walks with repeated nodes are discarded). Paths are
// returned in nondecreasing hop count. This is the generic engine used when
// grid enumeration does not apply (e.g. links missing at high latitudes).
//
// Labels live in a pooled index-linked slab rather than a pointer-chained
// heap graph: one allocation per search instead of two per expansion, and no
// pointers for the GC to trace. The priority queue mirrors container/heap's
// sift algorithms exactly, so the pop order — including ties — matches the
// previous heap-of-pointers implementation bit for bit.
//
//lint:ignore hotpath-no-alloc Yen search allocates the returned paths plus amortized retained scratch by contract
func (g *Graph) KShortest(src, dst topology.NodeID, k int) (out []Path) {
	if src == dst || k <= 0 {
		return nil
	}
	sc := kspPool.Get().(*kspScratch)
	defer kspPool.Put(sc)
	sc.reset(g.N)
	sc.labels = append(sc.labels, kspLabel{node: src, hops: 0, prev: -1})
	sc.push(0)
	for len(sc.heap) > 0 {
		li := sc.pop()
		l := sc.labels[li]
		if sc.count[l.node] >= k {
			continue
		}
		sc.count[l.node]++
		if l.node == dst {
			out = append(out, sc.path(li))
			if len(out) >= k {
				return out
			}
			continue
		}
		for _, nb := range g.Adj[l.node] {
			if sc.chainContains(li, nb) {
				continue // loop-free walks only
			}
			sc.labels = append(sc.labels, kspLabel{node: nb, hops: l.hops + 1, prev: li})
			sc.push(int32(len(sc.labels) - 1))
		}
	}
	return out
}

// kspLabel is a node on a partial-path chain in the k-shortest search; prev
// indexes the owning scratch slab (-1 at the source).
type kspLabel struct {
	node topology.NodeID
	hops int32
	prev int32
}

// kspScratch is the per-search state of KShortest, pooled across calls so a
// search costs O(1) allocations. The heap holds label indices ordered by hop
// count.
type kspScratch struct {
	labels []kspLabel
	heap   []int32
	count  []int
}

var kspPool = sync.Pool{New: func() interface{} { return new(kspScratch) }}

func (sc *kspScratch) reset(n int) {
	sc.labels = sc.labels[:0]
	sc.heap = sc.heap[:0]
	if cap(sc.count) < n {
		sc.count = make([]int, n)
	} else {
		sc.count = sc.count[:n]
		for i := range sc.count {
			sc.count[i] = 0
		}
	}
}

func (sc *kspScratch) less(i, j int) bool {
	return sc.labels[sc.heap[i]].hops < sc.labels[sc.heap[j]].hops
}

// push and pop replicate container/heap's Push/Pop (up/down sifts verbatim)
// over the index slice.
func (sc *kspScratch) push(li int32) {
	sc.heap = append(sc.heap, li)
	i := len(sc.heap) - 1
	for {
		parent := (i - 1) / 2
		if parent == i || !sc.less(i, parent) {
			break
		}
		sc.heap[parent], sc.heap[i] = sc.heap[i], sc.heap[parent]
		i = parent
	}
}

func (sc *kspScratch) pop() int32 {
	h := sc.heap
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && sc.less(j2, j1) {
			j = j2
		}
		if !sc.less(j, i) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	top := h[n]
	sc.heap = h[:n]
	return top
}

// chainContains reports whether the chain ending at label li visits n.
func (sc *kspScratch) chainContains(li int32, n topology.NodeID) bool {
	for x := li; x >= 0; x = sc.labels[x].prev {
		if sc.labels[x].node == n {
			return true
		}
	}
	return false
}

// path materializes the chain ending at label li as a Path (source first).
func (sc *kspScratch) path(li int32) Path {
	nodes := make([]topology.NodeID, sc.labels[li].hops+1)
	for x := li; x >= 0; x = sc.labels[x].prev {
		nodes[sc.labels[x].hops] = sc.labels[x].node
	}
	return Path{Nodes: nodes}
}

// ShortestHops runs a BFS from src and returns hop distances to all nodes
// (math.MaxInt32 where unreachable).
func (g *Graph) ShortestHops(src topology.NodeID) []int {
	dist := make([]int, g.N)
	for i := range dist {
		dist[i] = math.MaxInt32
	}
	dist[src] = 0
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Adj[u] {
			if dist[v] == math.MaxInt32 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns one minimum-hop path from src to dst, or false if
// disconnected.
func (g *Graph) ShortestPath(src, dst topology.NodeID) (Path, bool) {
	if src == dst {
		return Path{Nodes: []topology.NodeID{src}}, true
	}
	prev := make([]topology.NodeID, g.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		for _, v := range g.Adj[u] {
			if prev[v] == -1 {
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	if prev[dst] == -1 {
		return Path{}, false
	}
	var rev []topology.NodeID
	for x := dst; ; x = prev[x] {
		rev = append(rev, x)
		if x == src {
			break
		}
	}
	nodes := make([]topology.NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes}, true
}

// YenKShortest computes the k shortest loopless paths with Yen's algorithm
// [Yen 1971]. It is the classical method the paper identifies as too slow for
// mega-constellations (Appendix C); it serves as the correctness baseline for
// the grid algorithm and as a latency comparison point.
func (g *Graph) YenKShortest(src, dst topology.NodeID, k int) []Path {
	first, ok := g.ShortestPath(src, dst)
	if !ok || k <= 0 {
		return nil
	}
	A := []Path{first}
	var B []Path
	for len(A) < k {
		prev := A[len(A)-1]
		for i := 0; i < prev.Hops(); i++ {
			spurNode := prev.Nodes[i]
			rootPath := Path{Nodes: append([]topology.NodeID(nil), prev.Nodes[:i+1]...)}
			// Ban links used by previous A-paths sharing the root, and ban
			// root nodes (except the spur) to force looplessness.
			banned := make(map[[2]topology.NodeID]bool)
			for _, a := range A {
				if i < len(a.Nodes)-1 && samePrefix(a.Nodes, prev.Nodes, i+1) {
					banned[[2]topology.NodeID{a.Nodes[i], a.Nodes[i+1]}] = true
					banned[[2]topology.NodeID{a.Nodes[i+1], a.Nodes[i]}] = true
				}
			}
			blockedNodes := make(map[topology.NodeID]bool)
			for _, n := range rootPath.Nodes[:len(rootPath.Nodes)-1] {
				blockedNodes[n] = true
			}
			spur, ok := g.shortestPathFiltered(spurNode, dst, banned, blockedNodes)
			if !ok {
				continue
			}
			if total, ok := Concat(rootPath, spur); ok {
				B = append(B, total)
			}
		}
		if len(B) == 0 {
			break
		}
		B = Dedup(B)
		// Pick the shortest candidate not already in A.
		bestIdx := -1
		for idx, c := range B {
			if containsPath(A, c) {
				continue
			}
			if bestIdx == -1 || c.Hops() < B[bestIdx].Hops() {
				bestIdx = idx
			}
		}
		if bestIdx == -1 {
			break
		}
		A = append(A, B[bestIdx])
		B = append(B[:bestIdx], B[bestIdx+1:]...)
	}
	return A
}

func samePrefix(a, b []topology.NodeID, n int) bool {
	if len(a) < n || len(b) < n {
		return false
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(ps []Path, p Path) bool {
	k := p.Key()
	for _, q := range ps {
		if q.Key() == k {
			return true
		}
	}
	return false
}

func (g *Graph) shortestPathFiltered(src, dst topology.NodeID, bannedEdges map[[2]topology.NodeID]bool, blockedNodes map[topology.NodeID]bool) (Path, bool) {
	prev := make([]topology.NodeID, g.N)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	queue := []topology.NodeID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			break
		}
		for _, v := range g.Adj[u] {
			if prev[v] != -1 || blockedNodes[v] || bannedEdges[[2]topology.NodeID{u, v}] {
				continue
			}
			prev[v] = u
			queue = append(queue, v)
		}
	}
	if dst == src {
		return Path{Nodes: []topology.NodeID{src}}, true
	}
	if prev[dst] == -1 {
		return Path{}, false
	}
	var rev []topology.NodeID
	for x := dst; ; x = prev[x] {
		rev = append(rev, x)
		if x == src {
			break
		}
	}
	nodes := make([]topology.NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes}, true
}

// ShortestPathByDistance returns the minimum geometric-length path between
// two nodes using Dijkstra over Euclidean link lengths. This is the
// delay-optimal route (propagation delay is length/c); the hop-count paths of
// the grid algorithm optimise switching cost instead.
func (g *Graph) ShortestPathByDistance(src, dst topology.NodeID, pos []orbit.Vec3) (Path, float64, bool) {
	if src == dst {
		return Path{Nodes: []topology.NodeID{src}}, 0, true
	}
	dist := make([]float64, g.N)
	prev := make([]topology.NodeID, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := &distHeap{{node: src}}
	for pq.Len() > 0 {
		e := heap.Pop(pq).(distEntry)
		if e.dist > dist[e.node] {
			continue
		}
		if e.node == dst {
			break
		}
		for _, nb := range g.Adj[e.node] {
			d := e.dist + pos[e.node].Distance(pos[nb])
			if d < dist[nb] {
				dist[nb] = d
				prev[nb] = e.node
				heap.Push(pq, distEntry{node: nb, dist: d})
			}
		}
	}
	if prev[dst] == -1 {
		return Path{}, 0, false
	}
	var rev []topology.NodeID
	for x := dst; ; x = prev[x] {
		rev = append(rev, x)
		if x == src {
			break
		}
	}
	nodes := make([]topology.NodeID, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	return Path{Nodes: nodes}, dist[dst], true
}

type distEntry struct {
	node topology.NodeID
	dist float64
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
