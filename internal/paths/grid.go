package paths

import (
	"sync"

	"sate/internal/constellation"
	"sate/internal/topology"
)

// GridRouter implements the fast k-shortest path algorithm of Appendix C,
// specialised to the multi-shell grid structure of mega-constellations:
//
//   - Intra-shell: minimum hops equal the toroidal Manhattan distance between
//     (plane, slot) coordinates; up to C(dx+dy, dx) minimum-hop lattice paths
//     are enumerated directly, no graph search.
//   - Inter-shell: a ring recursion finds the nearest satellite to the source
//     that carries a cross-shell link toward the destination shell; intra-
//     shell segments are concatenated through it (minimising hops on higher,
//     sparser shells).
//   - Ground relays: the source-side satellite with a relay link is found by
//     direct distance ranking (relays are few), then the path is stitched
//     src -> alpha -> relay -> gamma -> dst.
//
// Enumerated paths are validated against the live snapshot (inter-orbit links
// vanish at high latitudes; cross links re-pair); the generic engine fills in
// when the grid enumeration cannot produce enough valid paths.
type GridRouter struct {
	Cons *constellation.Constellation
	Snap *topology.Snapshot

	links map[uint64]topology.Link
	// graph is the lazily built generic-engine view; graphMu guards the
	// build so KShortest is safe to call from many goroutines at once (the
	// router is otherwise read-only between Rebase calls). Rebase drops the
	// graph; the next fallback (or Prewarm) rebuilds it from the new
	// snapshot.
	graphMu sync.Mutex
	graph   *Graph
	// crossLinks[sat] lists cross-shell or relay partners of sat.
	crossLinks map[topology.NodeID][]topology.NodeID
}

// NewGridRouter builds a router for one snapshot.
func NewGridRouter(c *constellation.Constellation, s *topology.Snapshot) *GridRouter {
	r := &GridRouter{
		Cons:       c,
		Snap:       s,
		links:      s.LinkSet(),
		crossLinks: make(map[topology.NodeID][]topology.NodeID),
	}
	for _, l := range s.Links {
		if l.Kind == topology.CrossShellLaser || l.Kind == topology.GroundRelayLink {
			r.crossLinks[l.A] = append(r.crossLinks[l.A], l.B)
			r.crossLinks[l.B] = append(r.crossLinks[l.B], l.A)
		}
	}
	return r
}

func (r *GridRouter) generic() *Graph {
	r.graphMu.Lock()
	defer r.graphMu.Unlock()
	if r.graph == nil {
		r.graph = GraphFrom(r.Snap)
	}
	return r.graph
}

// Prewarm eagerly builds the generic-engine fallback graph, so a following
// parallel KShortest fan-out does not serialise its first fallbacks behind
// the lazy build.
func (r *GridRouter) Prewarm() { r.generic() }

// Rebase moves the router to a new snapshot given the link churn between the
// old and new one, patching the link set and cross-link adjacency in place
// instead of rebuilding them from the full link list. The generic fallback
// graph is dropped (positions move every snapshot) and rebuilt lazily.
// The caller must not be running concurrent KShortest queries.
//
//lint:ignore hotpath-no-alloc patches link maps in place; allocation proportional to the added links of one cycle's churn
func (r *GridRouter) Rebase(s *topology.Snapshot, added, removed []topology.Link) {
	r.Snap = s
	for _, l := range removed {
		delete(r.links, linkKey(l))
		if l.Kind == topology.CrossShellLaser || l.Kind == topology.GroundRelayLink {
			r.crossLinks[l.A] = dropNode(r.crossLinks[l.A], l.B)
			r.crossLinks[l.B] = dropNode(r.crossLinks[l.B], l.A)
		}
	}
	for _, l := range added {
		r.links[linkKey(l)] = l
		if l.Kind == topology.CrossShellLaser || l.Kind == topology.GroundRelayLink {
			r.crossLinks[l.A] = append(r.crossLinks[l.A], l.B)
			r.crossLinks[l.B] = append(r.crossLinks[l.B], l.A)
		}
	}
	r.graphMu.Lock()
	r.graph = nil
	r.graphMu.Unlock()
}

// dropNode removes every occurrence of id, preserving order.
func dropNode(s []topology.NodeID, id topology.NodeID) []topology.NodeID {
	out := s[:0]
	for _, n := range s {
		if n != id {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// torusDelta returns the signed shortest displacement from a to b modulo n.
func torusDelta(a, b, n int) int {
	d := (b - a) % n
	if d < 0 {
		d += n
	}
	if d > n/2 {
		d -= n
	}
	return d
}

// IntraShellPaths enumerates up to k minimum-hop lattice paths between two
// satellites of the same shell and filters them against live links. Paths are
// deterministic: plane-steps and slot-steps interleavings in lexicographic
// order.
func (r *GridRouter) IntraShellPaths(src, dst constellation.SatID, k int) []Path {
	gs := r.Cons.Sats[src].Grid
	gd := r.Cons.Sats[dst].Grid
	if gs.Shell != gd.Shell {
		return nil
	}
	sh := r.Cons.Shells[gs.Shell]
	dp := torusDelta(gs.Plane, gd.Plane, sh.Planes)
	ds := torusDelta(gs.Slot, gd.Slot, sh.SatsPerPlane)
	if dp == 0 && ds == 0 {
		return nil
	}
	var out []Path
	r.enumerateLattice(gs, dp, ds, k, &out)
	return out
}

// enumerateLattice walks all interleavings of |dp| plane-steps and |ds|
// slot-steps (up to k results), validating each hop against live links.
//
//lint:ignore hotpath-no-alloc allocates only the enumerated candidate paths by contract (TestGridKShortestSteadyAllocs caps the query)
func (r *GridRouter) enumerateLattice(start constellation.GridCoord, dp, ds, k int, out *[]Path) {
	stepP := 1
	if dp < 0 {
		stepP = -1
	}
	stepS := 1
	if ds < 0 {
		stepS = -1
	}
	var rec func(g constellation.GridCoord, remP, remS int, acc []topology.NodeID)
	rec = func(g constellation.GridCoord, remP, remS int, acc []topology.NodeID) {
		if len(*out) >= k {
			return
		}
		if remP == 0 && remS == 0 {
			*out = append(*out, NewPath(acc...))
			return
		}
		cur := topology.NodeID(r.Cons.SatAt(g).ID)
		// Plane step first (lexicographic: plane moves before slot moves).
		if remP != 0 {
			ng := r.Cons.Neighbor(g, stepP, 0)
			nid := topology.NodeID(r.Cons.SatAt(ng).ID)
			if r.linkAlive(cur, nid) {
				rec(ng, remP-stepP, remS, append(acc, nid))
			}
		}
		if remS != 0 {
			ng := r.Cons.Neighbor(g, 0, stepS)
			nid := topology.NodeID(r.Cons.SatAt(ng).ID)
			if r.linkAlive(cur, nid) {
				rec(ng, remP, remS-stepS, append(acc, nid))
			}
		}
	}
	first := topology.NodeID(r.Cons.SatAt(start).ID)
	rec(start, dp, ds, []topology.NodeID{first})
}

func (r *GridRouter) linkAlive(a, b topology.NodeID) bool {
	l := topology.MakeLink(a, b, topology.IntraOrbit)
	_, ok := r.links[linkKey(l)]
	return ok
}

// nearestWithCrossLink runs the ring recursion of Appendix C: it explores
// satellites at increasing grid distance m from src within src's shell and
// returns the first found that has a cross link whose far end lies in
// wantShell (or is a relay node when wantShell < 0 means "any relay").
func (r *GridRouter) nearestWithCrossLink(src constellation.SatID, wantShell int) (alpha topology.NodeID, beta topology.NodeID, ok bool) {
	g0 := r.Cons.Sats[src].Grid
	sh := r.Cons.Shells[g0.Shell]
	maxRing := sh.Planes + sh.SatsPerPlane
	for m := 0; m <= maxRing; m++ {
		// All grid coords at Manhattan ring m.
		for dp := -m; dp <= m; dp++ {
			dsAbs := m - absI(dp)
			for _, ds := range ringSlots(dsAbs) {
				g := r.Cons.Neighbor(g0, dp, ds)
				cand := topology.NodeID(r.Cons.SatAt(g).ID)
				for _, far := range r.crossLinks[cand] {
					if int(far) >= r.Snap.NumSats {
						if wantShell < 0 { // relay wanted
							return cand, far, true
						}
						continue
					}
					if wantShell >= 0 && r.Cons.ShellOf(constellation.SatID(far)) == wantShell {
						return cand, far, true
					}
				}
			}
		}
	}
	return 0, 0, false
}

func ringSlots(dsAbs int) []int {
	if dsAbs == 0 {
		return []int{0}
	}
	return []int{dsAbs, -dsAbs}
}

func absI(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// KShortest computes up to k candidate paths between two satellites using the
// grid algorithm with generic-engine fallback. It always returns loop-free,
// snapshot-valid paths (possibly fewer than k).
//
//sate:hotpath steady-state K-shortest query (TestGridKShortestSteadyAllocs caps it)
func (r *GridRouter) KShortest(src, dst constellation.SatID, k int) []Path {
	if src == dst {
		return nil
	}
	var out []Path
	gs := r.Cons.Sats[src].Grid
	gd := r.Cons.Sats[dst].Grid
	if gs.Shell == gd.Shell {
		out = r.IntraShellPaths(src, dst, k)
	} else {
		out = r.interShellPaths(src, dst, k)
	}
	out = Dedup(out)
	if len(out) < k {
		// Fallback: generic k-shortest on the live graph fills the deficit.
		gen := r.generic().KShortest(topology.NodeID(src), topology.NodeID(dst), k)
		//lint:ignore hotpath-no-alloc merges the fallback candidates into the returned slice by contract
		out = Dedup(append(out, gen...))
		if len(out) > k {
			out = out[:k]
		}
	}
	return out
}

// interShellPaths implements the three-step composition of Appendix C for a
// source and destination in different shells, including the ground-relay
// variant.
//
//lint:ignore hotpath-no-alloc builds the returned inter-shell candidate paths by contract (TestGridKShortestSteadyAllocs caps the query)
func (r *GridRouter) interShellPaths(src, dst constellation.SatID, k int) []Path {
	dstShell := r.Cons.ShellOf(dst)
	srcShell := r.Cons.ShellOf(src)

	// Step 1: nearest satellite alpha (in src's shell) with a cross link to a
	// node beta toward the destination shell. Lasers only join adjacent
	// shells, so aim for the neighbouring shell in the destination's
	// direction; the recursion below advances shell by shell. With relays,
	// beta is the relay node and any shell is reachable in one bent-pipe hop.
	wantShell := dstShell
	if dstShell > srcShell+1 {
		wantShell = srcShell + 1
	} else if dstShell < srcShell-1 {
		wantShell = srcShell - 1
	}
	alpha, beta, ok := r.nearestWithCrossLink(src, wantShell)
	viaRelay := false
	if !ok {
		alpha, beta, ok = r.nearestWithCrossLink(src, -1) // any relay
		viaRelay = ok
	}
	if !ok {
		return nil
	}

	// Head segment: one shortest intra-shell path src -> alpha.
	var head Path
	if topology.NodeID(src) == alpha {
		head = NewPath(topology.NodeID(src))
	} else {
		hs := r.IntraShellPaths(src, constellation.SatID(alpha), 1)
		if len(hs) == 0 {
			return nil
		}
		head = hs[0]
	}

	// Middle: the cross hop(s).
	mid := Path{Nodes: []topology.NodeID{alpha, beta}}
	entry := beta // node in (or toward) the destination shell
	if viaRelay {
		// beta is a relay: pick a satellite gamma in the destination shell
		// linked to the same relay.
		gamma := topology.NodeID(-1)
		for _, far := range r.crossLinks[beta] {
			if int(far) < r.Snap.NumSats && r.Cons.ShellOf(constellation.SatID(far)) == dstShell {
				gamma = far
				break
			}
		}
		if gamma < 0 {
			return nil
		}
		mid = Path{Nodes: []topology.NodeID{alpha, beta, gamma}}
		entry = gamma
	}

	// If the laser hop landed in an intermediate shell, recurse toward dst.
	if int(entry) < r.Snap.NumSats && r.Cons.ShellOf(constellation.SatID(entry)) != dstShell {
		var out []Path
		for _, tail := range r.interShellPaths(constellation.SatID(entry), dst, k) {
			if hm, ok := Concat(head, mid); ok {
				if full, ok := Concat(hm, tail); ok {
					out = append(out, full)
				}
			}
		}
		return out
	}

	// Step 2: up to k minimum-hop intra-shell paths entry -> dst.
	var tails []Path
	if entry == topology.NodeID(dst) {
		tails = []Path{NewPath(entry)}
	} else {
		tails = r.IntraShellPaths(constellation.SatID(entry), dst, k)
	}

	// Step 3: concatenate.
	var out []Path
	for _, tail := range tails {
		if hm, ok := Concat(head, mid); ok {
			if full, ok := Concat(hm, tail); ok {
				out = append(out, full)
			}
		}
	}
	return out
}
