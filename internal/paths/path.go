// Package paths computes candidate paths for satellite TE: the grid-based
// k-shortest path algorithm of Appendix C (Manhattan enumeration within a
// shell, recursive cross-shell composition), a generic k-shortest-path engine
// and Yen's algorithm as the classical baseline, and an incrementally
// maintained path database that recomputes only the paths affected by
// topology changes (Sec. 4: fewer than 2% of paths per second).
package paths

import (
	"fmt"
	"strings"

	"sate/internal/topology"
)

// Path is a loop-free node sequence from source to destination.
type Path struct {
	Nodes []topology.NodeID
}

// NewPath copies the node sequence into a Path.
func NewPath(nodes ...topology.NodeID) Path {
	return Path{Nodes: append([]topology.NodeID(nil), nodes...)}
}

// Src returns the first node.
func (p Path) Src() topology.NodeID { return p.Nodes[0] }

// Dst returns the last node.
func (p Path) Dst() topology.NodeID { return p.Nodes[len(p.Nodes)-1] }

// Hops returns the number of links in the path.
func (p Path) Hops() int { return len(p.Nodes) - 1 }

// Links returns the canonical links traversed by the path.
func (p Path) Links() []topology.Link {
	out := make([]topology.Link, 0, p.Hops())
	for i := 0; i+1 < len(p.Nodes); i++ {
		out = append(out, topology.MakeLink(p.Nodes[i], p.Nodes[i+1], topology.IntraOrbit))
	}
	return out
}

// Key returns a canonical string identity for the path.
func (p Path) Key() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%d", int(n))
	}
	return b.String()
}

// HasLoop reports whether any node repeats.
func (p Path) HasLoop() bool {
	seen := make(map[topology.NodeID]struct{}, len(p.Nodes))
	for _, n := range p.Nodes {
		if _, ok := seen[n]; ok {
			return true
		}
		seen[n] = struct{}{}
	}
	return false
}

// ValidIn reports whether every hop of the path is a live link in the
// snapshot. An obsolete configured path (Fig. 4 b) is one for which this
// returns false.
func (p Path) ValidIn(links map[uint64]topology.Link) bool {
	for i := 0; i+1 < len(p.Nodes); i++ {
		l := topology.MakeLink(p.Nodes[i], p.Nodes[i+1], topology.IntraOrbit)
		if _, ok := links[linkKey(l)]; !ok {
			return false
		}
	}
	return true
}

// linkKey mirrors topology.Link's canonical pair encoding.
func linkKey(l topology.Link) uint64 { return uint64(l.A)<<32 | uint64(uint32(l.B)) }

// WithinRange reports whether every node of the path lies in [lo, hi). The
// sharded solver uses it to classify a flow as shard-internal: a flow whose
// candidate paths all stay inside one shard's node range never touches
// another shard's links, so it can be solved inside that shard alone.
//
//sate:hotpath per-flow shard classification, every path each TE cycle
func (p Path) WithinRange(lo, hi topology.NodeID) bool {
	for _, n := range p.Nodes {
		if n < lo || n >= hi {
			return false
		}
	}
	return true
}

// LengthKm returns the geometric length of the path in a snapshot.
func (p Path) LengthKm(s *topology.Snapshot) float64 {
	var d float64
	for i := 0; i+1 < len(p.Nodes); i++ {
		d += s.Pos[p.Nodes[i]].Distance(s.Pos[p.Nodes[i+1]])
	}
	return d
}

// Concat joins two paths sharing an endpoint: a ends where b begins. It
// returns false if they do not join or the result has a loop.
func Concat(a, b Path) (Path, bool) {
	if len(a.Nodes) == 0 || len(b.Nodes) == 0 || a.Dst() != b.Src() {
		return Path{}, false
	}
	nodes := make([]topology.NodeID, 0, len(a.Nodes)+len(b.Nodes)-1)
	nodes = append(nodes, a.Nodes...)
	nodes = append(nodes, b.Nodes[1:]...)
	p := Path{Nodes: nodes}
	if p.HasLoop() {
		return Path{}, false
	}
	return p, true
}

// SameNodes reports whether two paths traverse the identical node sequence.
func SameNodes(a, b Path) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i, n := range a.Nodes {
		if n != b.Nodes[i] {
			return false
		}
	}
	return true
}

// Dedup removes duplicate paths (same node sequence), preserving order. The
// comparison is quadratic in the candidate count but allocation-free —
// KShortest calls it with k≈10 candidates on the hot path, where the former
// per-path string keys dominated its cost.
//
//lint:ignore hotpath-no-alloc filters into the returned slice by contract (bounded by the candidate count)
func Dedup(ps []Path) []Path {
	out := ps[:0]
	for _, p := range ps {
		dup := false
		for _, q := range out {
			if SameNodes(p, q) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}
